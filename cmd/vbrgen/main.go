// Command vbrgen generates synthetic VBR video traffic from the paper's
// four-parameter source model (§4): fractional ARIMA(0, d, 0) noise from
// Hosking's exact algorithm, transformed to the hybrid Gamma/Pareto
// marginal via Eq. 13.
//
// Examples:
//
//	vbrgen -n 171000 -o model.bin                  # paper parameters
//	vbrgen -n 171000 -hurst 0.85 -tail 9 -o x.bin  # custom parameters
//	vbrgen -n 50000 -variant gaussian -csv g.csv   # Fig. 16 ablation
//	vbrgen -n 10000 -generator hosking             # the paper's O(n²) path
package main

import (
	"flag"
	"fmt"
	"log"
	"math/rand/v2"
	"os"

	"vbr/internal/core"
	"vbr/internal/lrd"
	"vbr/internal/stats"
	"vbr/internal/trace"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("vbrgen: ")

	var (
		n       = flag.Int("n", 171000, "frames to generate")
		mu      = flag.Float64("mean", 27791, "μ_Γ: Gamma-body mean (bytes/frame)")
		sigma   = flag.Float64("std", 6254, "σ_Γ: Gamma-body std (bytes/frame)")
		tail    = flag.Float64("tail", 12, "m_T: Pareto tail slope")
		hurst   = flag.Float64("hurst", 0.8, "H: Hurst parameter")
		gen     = flag.String("generator", "davies-harte", "LRD engine: hosking (the paper's exact O(n²) algorithm) | davies-harte (O(n log n))")
		variant = flag.String("variant", "full", "model variant: full | gaussian | iid")
		tabSize = flag.Int("table", 10000, "marginal mapping table size (paper: 10000)")
		seed    = flag.Uint64("seed", 1, "random seed")
		spf     = flag.Int("slices", 30, "slices per frame in the output trace (0 = none)")
		outBin  = flag.String("o", "", "output path for binary trace")
		outCSV  = flag.String("csv", "", "output path for CSV frame series")
		verify  = flag.Bool("verify", true, "measure the realization against the model")
	)
	flag.Parse()

	model := core.Model{MuGamma: *mu, SigmaGamma: *sigma, TailSlope: *tail, Hurst: *hurst}
	if err := model.Validate(); err != nil {
		log.Fatal(err)
	}
	opts := core.GenOptions{TableSize: *tabSize, Standardize: true, Seed: *seed}
	switch *gen {
	case "hosking":
		opts.Generator = core.HoskingExact
		if *n > 50000 {
			fmt.Fprintf(os.Stderr, "note: Hosking is O(n²); %d points will take a while (the paper: \"10 hours on a 1994 workstation\")\n", *n)
		}
	case "davies-harte":
		opts.Generator = core.DaviesHarteFast
	default:
		log.Fatalf("unknown generator %q", *gen)
	}

	var frames []float64
	var err error
	switch *variant {
	case "full":
		frames, err = model.Generate(*n, opts)
	case "gaussian":
		frames, err = model.GenerateGaussian(*n, opts)
	case "iid":
		frames, err = model.GenerateIID(*n, opts)
	default:
		log.Fatalf("unknown variant %q", *variant)
	}
	if err != nil {
		log.Fatal(err)
	}

	if *verify {
		s, err := stats.Summarize(frames)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("generated %d frames: mean %.0f, std %.0f, CoV %.2f, peak/mean %.2f\n",
			s.N, s.Mean, s.Std, s.CoV, s.PeakMean)
		if *variant == "full" && *n >= 1000 {
			vt, err := lrd.VarianceTime(frames, 1, 0, 0)
			if err == nil {
				fmt.Printf("variance-time H of realization: %.3f (model: %.3f)\n", vt.H, model.Hurst)
			}
		}
	}

	tr := &trace.Trace{Frames: frames, FrameRate: 24}
	if *spf > 0 {
		rng := rand.New(rand.NewPCG(*seed, 0x517ce))
		if err := tr.SlicesFromFrames(*spf, 0.3, rng.Float64); err != nil {
			log.Fatal(err)
		}
	}
	if *outBin != "" {
		f, err := os.Create(*outBin)
		if err != nil {
			log.Fatal(err)
		}
		if err := tr.WriteBinary(f); err != nil {
			log.Fatal(err)
		}
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("wrote binary trace to %s\n", *outBin)
	}
	if *outCSV != "" {
		f, err := os.Create(*outCSV)
		if err != nil {
			log.Fatal(err)
		}
		if err := tr.WriteCSV(f); err != nil {
			log.Fatal(err)
		}
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("wrote CSV frame series to %s\n", *outCSV)
	}
}
