// Command vbrgen generates synthetic VBR video traffic from the paper's
// four-parameter source model (§4): fractional ARIMA(0, d, 0) noise from
// Hosking's exact algorithm, transformed to the hybrid Gamma/Pareto
// marginal via Eq. 13.
//
// Long Hosking runs (O(n²); the paper reports 10 hours for its 171,000
// frames on a 1994 workstation) are interruptible: with -checkpoint set,
// Ctrl-C saves the recursion state and -resume continues it later,
// producing output bitwise-identical to an uninterrupted run.
//
// Examples:
//
//	vbrgen -n 171000 -o model.bin                  # paper parameters
//	vbrgen -n 171000 -hurst 0.85 -tail 9 -o x.bin  # custom parameters
//	vbrgen -n 50000 -variant gaussian -csv g.csv   # Fig. 16 ablation
//	vbrgen -n 171000 -backend auto -o x.bin        # policy picks the engine
//	vbrgen -n 171000 -backend hosking -checkpoint gen.ckpt -o x.bin
//	vbrgen -n 171000 -backend hosking -checkpoint gen.ckpt -resume -o x.bin
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"math/rand/v2"
	"os"
	"sort"

	"vbr/internal/backend"
	"vbr/internal/checkpoint"
	"vbr/internal/cli"
	"vbr/internal/core"
	"vbr/internal/errs"
	"vbr/internal/fgn"
	"vbr/internal/lrd"
	"vbr/internal/stats"
	"vbr/internal/trace"
)

func main() {
	os.Exit(cli.Main("vbrgen", run))
}

func run(ctx context.Context, args []string, stdout, stderr io.Writer) (retErr error) {
	fs := flag.NewFlagSet("vbrgen", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		n        = fs.Int("n", 171000, "frames to generate")
		mu       = fs.Float64("mean", 27791, "μ_Γ: Gamma-body mean (bytes/frame)")
		sigma    = fs.Float64("std", 6254, "σ_Γ: Gamma-body std (bytes/frame)")
		tail     = fs.Float64("tail", 12, "m_T: Pareto tail slope")
		hurst    = fs.Float64("hurst", 0.8, "H: Hurst parameter")
		bk       = fs.String("backend", "", "Gaussian backend: hosking (the paper's exact O(n²) algorithm) | davies-harte | paxson (both O(n log n)) | auto (exact when short, paxson when long)")
		gen      = fs.String("generator", "", "deprecated alias for -backend")
		variant  = fs.String("variant", "full", "model variant: full | gaussian | iid")
		tabSize  = fs.Int("table", 10000, "marginal mapping table size (paper: 10000)")
		seed     = fs.Uint64("seed", 1, "random seed")
		spf      = fs.Int("slices", 30, "slices per frame in the output trace (0 = none)")
		outBin   = fs.String("o", "", "output path for binary trace")
		outCSV   = fs.String("csv", "", "output path for CSV frame series")
		verify   = fs.Bool("verify", true, "measure the realization against the model")
		ckptPath = fs.String("checkpoint", "", "checkpoint file: on interrupt the Hosking state is saved here")
		resume   = fs.Bool("resume", false, "continue an interrupted generation from -checkpoint")
		every    = fs.Int("checkpoint-every", 5000, "with -checkpoint, also save the state every this many points (0 = only on interrupt)")
	)
	ob := cli.RegisterObsFlags(fs)
	if err := cli.ParseFlags(fs, args); err != nil {
		return err
	}
	ctx, finish, err := ob.Observe(ctx, stderr)
	if err != nil {
		return err
	}
	defer cli.FinishObs(finish, &retErr)

	model := core.Model{MuGamma: *mu, SigmaGamma: *sigma, TailSlope: *tail, Hurst: *hurst}
	if err := model.Validate(); err != nil {
		return err
	}
	opts := core.GenOptions{TableSize: *tabSize, Standardize: true, Seed: *seed}
	spec := *bk
	if *gen != "" {
		if *bk != "" && *bk != *gen {
			return cli.Usagef("-generator is a deprecated alias for -backend; they disagree (%q vs %q)", *gen, *bk)
		}
		spec = *gen
	}
	if spec == "" {
		spec = "davies-harte"
	}
	b, err := backend.Parse(spec)
	if err != nil {
		return err
	}
	opts.Generator = b
	if b.Resolve(*n, false) == backend.Hosking && *n > 50000 {
		fmt.Fprintf(stderr, "note: Hosking is O(n²); %d points will take a while (the paper: \"10 hours on a 1994 workstation\")\n", *n)
	}
	if *ckptPath != "" && (b != backend.Hosking || *variant != "full") {
		return cli.Usagef("-checkpoint requires -backend hosking and -variant full")
	}
	if *resume && *ckptPath == "" {
		return cli.Usagef("-resume requires -checkpoint")
	}

	var frames []float64
	switch *variant {
	case "full":
		if *ckptPath != "" {
			frames, err = generateCheckpointed(ctx, model, *n, opts, *ckptPath, *resume, *every, stderr)
		} else {
			frames, err = model.GenerateCtx(ctx, *n, opts)
		}
	case "gaussian":
		frames, err = model.GenerateGaussianCtx(ctx, *n, opts)
	case "iid":
		frames, err = model.GenerateIIDCtx(ctx, *n, opts)
	default:
		return cli.Usagef("unknown variant %q", *variant)
	}
	if err != nil {
		return err
	}

	if *verify {
		s, err := stats.Summarize(frames)
		if err != nil {
			return err
		}
		fmt.Fprintf(stdout, "generated %d frames: mean %.0f, std %.0f, CoV %.2f, peak/mean %.2f\n",
			s.N, s.Mean, s.Std, s.CoV, s.PeakMean)
		if *variant == "full" && *n >= 1000 {
			vt, err := lrd.VarianceTime(frames, 1, 0, 0)
			if err == nil {
				fmt.Fprintf(stdout, "variance-time H of realization: %.3f (model: %.3f)\n", vt.H, model.Hurst)
			}
		}
	}

	tr := &trace.Trace{Frames: frames, FrameRate: 24}
	if *spf > 0 {
		rng := rand.New(rand.NewPCG(*seed, 0x517ce))
		if err := tr.SlicesFromFrames(*spf, 0.3, rng.Float64); err != nil {
			return err
		}
	}
	if *outBin != "" {
		if err := writeTrace(*outBin, tr.WriteBinary); err != nil {
			return err
		}
		fmt.Fprintf(stdout, "wrote binary trace to %s\n", *outBin)
	}
	if *outCSV != "" {
		if err := writeTrace(*outCSV, tr.WriteCSV); err != nil {
			return err
		}
		fmt.Fprintf(stdout, "wrote CSV frame series to %s\n", *outCSV)
	}
	return nil
}

// genMeta identifies a generation run inside a checkpoint so a resume
// with different parameters is rejected instead of silently producing a
// series from mixed states.
func genMeta(m core.Model, n int, opts core.GenOptions) map[string]string {
	return map[string]string{
		"n":     fmt.Sprint(n),
		"seed":  fmt.Sprint(opts.Seed),
		"table": fmt.Sprint(opts.TableSize),
		"mu":    fmt.Sprint(m.MuGamma),
		"sigma": fmt.Sprint(m.SigmaGamma),
		"tail":  fmt.Sprint(m.TailSlope),
		"hurst": fmt.Sprint(m.Hurst),
	}
}

// generateCheckpointed runs the resumable Hosking generation: on
// interruption the recursion state is flushed to ckptPath before the
// error propagates, a positive every additionally saves the state after
// each block of that many points (so a crash, not just a signal, loses
// bounded work); on success a consumed checkpoint is removed.
func generateCheckpointed(ctx context.Context, m core.Model, n int, opts core.GenOptions, ckptPath string, resume bool, every int, stderr io.Writer) ([]float64, error) {
	meta := genMeta(m, n, opts)
	if every > 0 {
		opts.SnapshotEvery = every
		opts.Snapshot = func(st *fgn.HoskingState) error {
			rec := &checkpoint.HoskingRecord{Meta: meta, State: st}
			if err := checkpoint.SaveHosking(ckptPath, rec); err != nil {
				return fmt.Errorf("saving periodic checkpoint: %w", err)
			}
			return nil
		}
	}
	var state *fgn.HoskingState
	if resume {
		rec, err := checkpoint.LoadHosking(ckptPath)
		if err != nil {
			return nil, fmt.Errorf("loading checkpoint: %w", err)
		}
		// Sorted keys so a mismatch always reports the same field first.
		keys := make([]string, 0, len(meta))
		for k := range meta {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			want := meta[k]
			if got := rec.Meta[k]; got != want {
				return nil, fmt.Errorf("checkpoint %s was written with %s=%s, current run has %s: %w",
					ckptPath, k, got, want, errs.ErrCheckpointMismatch)
			}
		}
		state = rec.State
		fmt.Fprintf(stderr, "resuming from %s at frame %d of %d\n", ckptPath, state.K, n)
	}
	frames, snap, err := m.GenerateResumable(ctx, n, opts, state)
	if err != nil {
		if snap != nil {
			rec := &checkpoint.HoskingRecord{Meta: meta, State: snap}
			if serr := checkpoint.SaveHosking(ckptPath, rec); serr != nil {
				return nil, errors.Join(err, fmt.Errorf("saving checkpoint: %w", serr))
			}
			fmt.Fprintf(stderr, "interrupted at frame %d of %d; state saved to %s (continue with -resume)\n",
				snap.K, n, ckptPath)
		}
		return nil, err
	}
	if resume || every > 0 {
		// The checkpoint is consumed (or superseded by the completed
		// run); leaving it behind would invite a second resume into an
		// already-finished run.
		if rmErr := os.Remove(ckptPath); rmErr != nil && !errors.Is(rmErr, os.ErrNotExist) {
			fmt.Fprintf(stderr, "warning: could not remove consumed checkpoint %s: %v\n", ckptPath, rmErr)
		}
	}
	return frames, nil
}

// writeTrace creates path and streams the trace through write, closing
// the file even on error.
func writeTrace(path string, write func(io.Writer) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := write(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
