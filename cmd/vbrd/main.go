// Command vbrd is the trace-serving daemon: it exposes the §4 generator
// and the §5 queueing simulator over HTTP, streaming frame-size traces
// block by block in bounded memory instead of materializing them.
//
// Endpoints:
//
//	GET  /v1/trace     stream a synthetic trace (chunked NDJSON or
//	                   raw little-endian float64; parameters n, mean,
//	                   std, tail, hurst, seed, backend, block, overlap,
//	                   format)
//	POST /v1/simulate  enqueue an async queueing-simulation job
//	GET  /v1/jobs/{id} poll a job
//	GET  /healthz      liveness + job-queue depth
//
// The obs registry is served on the shared -debug-addr listener
// (expvar + pprof). On SIGINT/SIGTERM the daemon stops accepting,
// lets in-flight streams finish within -drain, then exits 0.
//
// Examples:
//
//	vbrd -addr :8080
//	curl 'http://localhost:8080/v1/trace?n=171000&seed=7' | wc -l
//	curl -X POST -d '{"n":10000,"capacity_bps":6e6,"buffer_bytes":250000}' \
//	     http://localhost:8080/v1/simulate
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"time"

	"vbr/internal/cli"
	"vbr/internal/genpool"
	"vbr/internal/server"
)

func main() {
	os.Exit(cli.Main("vbrd", run))
}

func run(ctx context.Context, args []string, stdout, stderr io.Writer) (retErr error) {
	fs := flag.NewFlagSet("vbrd", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		addr       = fs.String("addr", "127.0.0.1:8080", "listen address (host:port; port 0 picks a free port)")
		drain      = fs.Duration("drain", 30*time.Second, "graceful-drain budget for in-flight requests on shutdown")
		maxFrames  = fs.Int("max-frames", 4<<20, "per-request trace length cap")
		simWorkers = fs.Int("sim-workers", 2, "concurrent simulation-job workers")
		poolBytes  = fs.Int64("pool-bytes", genpool.DefaultMaxBytes, "generation-cache budget in bytes (coefficient schedules, eigenvalues, mapping tables shared across requests); values <= 0 select the default")
		readHeader = fs.Duration("read-header-timeout", 10*time.Second, "budget for a client to finish sending request headers; slow-header (slowloris) connections are cut past it")
		idle       = fs.Duration("idle-timeout", 120*time.Second, "keep-alive idle budget before an inactive connection is closed")
		writeBud   = fs.Duration("write-budget", 30*time.Second, "write budget for non-streaming responses (simulate accept, job polls, healthz); 0 disables; /v1/trace streams are exempt")
		workerID   = fs.String("worker-id", "", "fleet worker identity; stamps X-Vbr-Worker on responses and prefixes job IDs (empty outside a fleet)")
		jobQueue   = fs.Int("job-queue", 0, "accepted-but-unfinished simulation job bound before 503 shedding; 0 selects the default (256)")
	)
	obsFlags := cli.RegisterObsFlags(fs)
	if err := cli.ParseFlags(fs, args); err != nil {
		return err
	}
	if fs.NArg() != 0 {
		return cli.Usagef("vbrd takes no positional arguments, got %q", fs.Args())
	}

	obsCtx, finish, err := obsFlags.Observe(ctx, stderr)
	if err != nil {
		return err
	}
	defer cli.FinishObs(finish, &retErr)

	// The serving base context carries the obs scope but NOT the signal
	// cancellation: a SIGTERM must drain in-flight streams gracefully,
	// not sever every response mid-body. The hard stop below is what
	// bounds how long that grace lasts.
	base := context.WithoutCancel(obsCtx)
	srv := server.New(base, server.Config{
		MaxFrames:     *maxFrames,
		SimWorkers:    *simWorkers,
		Pool:          genpool.New(*poolBytes),
		WorkerID:      *workerID,
		WriteBudget:   *writeBud,
		JobQueueDepth: *jobQueue,
	})

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return fmt.Errorf("listening on %s: %w", *addr, err)
	}
	// ReadHeaderTimeout and IdleTimeout bound the two ways a client can
	// hold a connection without a request in flight: trickling headers
	// (slowloris) and parking a keep-alive. There is deliberately no
	// WriteTimeout — it would sever legitimate long trace streams; the
	// non-streaming endpoints get their write budget per-handler via
	// server.Config.WriteBudget instead.
	httpSrv := &http.Server{
		Handler:           srv.Handler(),
		BaseContext:       func(net.Listener) context.Context { return base },
		ReadHeaderTimeout: *readHeader,
		IdleTimeout:       *idle,
	}
	cli.AnnounceListen(stdout, "vbrd", ln.Addr().String())

	serveErr := make(chan error, 1)
	go func() { serveErr <- httpSrv.Serve(ln) }()

	select {
	case err := <-serveErr:
		return fmt.Errorf("serving on %s: %w", ln.Addr(), err)
	case <-ctx.Done():
	}

	// Drain: stop accepting, give in-flight requests the -drain budget,
	// then cut the stragglers. Shutdown's context deadline is that
	// budget; Close afterwards force-closes whatever remained.
	fmt.Fprintf(stderr, "vbrd draining (budget %s)\n", *drain)
	drainCtx, cancel := context.WithTimeout(base, *drain)
	defer cancel()
	if err := httpSrv.Shutdown(drainCtx); err != nil {
		if closeErr := httpSrv.Close(); closeErr != nil {
			fmt.Fprintf(stderr, "warning: force close: %v\n", closeErr)
		}
		fmt.Fprintf(stderr, "vbrd drained with stragglers: %v\n", err)
		<-serveErr // Serve has returned ErrServerClosed by now
		return nil
	}
	<-serveErr
	if errors.Is(ctx.Err(), context.Canceled) {
		fmt.Fprintln(stdout, "vbrd drained cleanly")
	}
	return nil
}
