// Command vbrsim runs the trace-driven and model-based queueing
// simulations of §5 of the paper: the Fig. 14 Q–C tradeoff curves, the
// Fig. 15 statistical-multiplexing-gain analysis, the Fig. 16 model
// comparison, the Fig. 17 error-process study, and one-off simulations of
// a single operating point.
//
// Examples:
//
//	vbrsim -frames 30000 -fig14
//	vbrsim -frames 171000 -fig15 -slices
//	vbrsim -in trace.bin -point -n 5 -capacity 20e6 -tmax 2ms
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"vbr/internal/experiments"
	"vbr/internal/queue"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("vbrsim: ")

	var (
		in     = flag.String("in", "", "binary trace file; empty = regenerate synthetic movie")
		frames = flag.Int("frames", 30000, "frames to generate when -in is empty")
		seed   = flag.Uint64("seed", 1994, "seed for regeneration")
		slices = flag.Bool("slices", false, "simulate at slice granularity (the paper's resolution; ~30× slower)")

		fig14 = flag.Bool("fig14", false, "Fig 14: Q-C tradeoff curves")
		fig15 = flag.Bool("fig15", false, "Fig 15: statistical multiplexing gain")
		fig16 = flag.Bool("fig16", false, "Fig 16: trace vs model variants")
		fig17 = flag.Bool("fig17", false, "Fig 17: windowed error process")

		point    = flag.Bool("point", false, "simulate one operating point")
		nSources = flag.Int("n", 1, "multiplexed sources (-point)")
		capacity = flag.Float64("capacity", 6e6, "channel capacity, bits/s (-point)")
		tmax     = flag.Duration("tmax", 2*time.Millisecond, "max buffer delay Q/(N·C) (-point)")
	)
	flag.Parse()

	suite, err := loadOrGenerate(*in, *frames, *seed)
	if err != nil {
		log.Fatal(err)
	}
	suite.UseSlices = *slices

	any := false
	if *fig14 {
		any = true
		r, err := suite.Fig14()
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(r.Format())
	}
	if *fig15 {
		any = true
		r, err := suite.Fig15()
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(r.Format())
	}
	if *fig16 {
		any = true
		r, err := suite.Fig16()
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(r.Format())
	}
	if *fig17 {
		any = true
		r, err := suite.Fig17()
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(r.Format())
	}
	if *point {
		any = true
		mux, err := queue.NewMux(suite.Trace, *nSources, 1000, *seed)
		if err != nil {
			log.Fatal(err)
		}
		q := tmax.Seconds() * *capacity / 8
		r, err := mux.AverageLoss(*capacity, q, *slices, queue.Options{})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("N=%d  C=%.3f Mb/s (%.3f Mb/s per source)  T_max=%v  Q=%.0f bytes\n",
			*nSources, *capacity/1e6, *capacity/float64(*nSources)/1e6, *tmax, q)
		fmt.Printf("P_l      = %.3g\n", r.Pl)
		fmt.Printf("P_l-WES  = %.3g\n", r.PlWES)
		fmt.Printf("max backlog = %.0f bytes\n", r.MaxBacklog)
	}

	if !any {
		fmt.Fprintln(os.Stderr, "no simulation selected; use -fig14/-fig15/-fig16/-fig17/-point")
		os.Exit(2)
	}
}

// loadOrGenerate reads a binary trace when a path is given, otherwise
// regenerates the synthetic movie.
func loadOrGenerate(path string, frames int, seed uint64) (*experiments.Suite, error) {
	if path == "" {
		return experiments.GenerateSuite(frames, seed)
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return experiments.LoadSuite(f)
}
