// Command vbrsim runs the trace-driven and model-based queueing
// simulations of §5 of the paper: the Fig. 14 Q–C tradeoff curves, the
// Fig. 15 statistical-multiplexing-gain analysis, the Fig. 16 model
// comparison, the Fig. 17 error-process study, and one-off simulations of
// a single operating point — optionally under a deterministic schedule of
// server faults.
//
// The Fig. 14 study (the slowest) is interruptible: with -checkpoint
// set, Ctrl-C saves the completed and partial curves and -resume
// continues the sweep where it stopped.
//
// Examples:
//
//	vbrsim -frames 30000 -fig14
//	vbrsim -frames 30000 -fig14 -checkpoint f14.ckpt            # Ctrl-C safe
//	vbrsim -frames 30000 -fig14 -checkpoint f14.ckpt -resume
//	vbrsim -frames 171000 -fig15 -slices
//	vbrsim -in trace.bin -point -n 5 -capacity 20e6 -tmax 2ms
//	vbrsim -in trace.bin -point -faults -fault-gap 800 -fault-outage 0.3
//
// Instead of a trace, -point can multiplex scenario-zoo models
// (see vbrgen or the README's zoo table for the registry):
//
//	vbrsim -point -source gop -n 5 -capacity 20e6
//	vbrsim -point -mix 'farima*3+onoff:fps=24*2' -capacity 30e6
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"vbr/internal/backend"
	"vbr/internal/checkpoint"
	"vbr/internal/cli"
	"vbr/internal/errs"
	"vbr/internal/experiments"
	"vbr/internal/queue"
	"vbr/internal/source"
)

func main() {
	os.Exit(cli.Main("vbrsim", run))
}

func run(ctx context.Context, args []string, stdout, stderr io.Writer) (retErr error) {
	fs := flag.NewFlagSet("vbrsim", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		in     = fs.String("in", "", "binary trace file; empty = regenerate synthetic movie")
		frames = fs.Int("frames", 30000, "frames to generate when -in is empty")
		seed   = fs.Uint64("seed", 1994, "seed for regeneration")
		bk     = fs.String("backend", "", "Gaussian backend for regeneration: hosking | davies-harte | paxson | auto (default davies-harte)")
		slices = fs.Bool("slices", false, "simulate at slice granularity (the paper's resolution; ~30× slower)")

		fig14 = fs.Bool("fig14", false, "Fig 14: Q-C tradeoff curves")
		fig15 = fs.Bool("fig15", false, "Fig 15: statistical multiplexing gain")
		fig16 = fs.Bool("fig16", false, "Fig 16: trace vs model variants")
		fig17 = fs.Bool("fig17", false, "Fig 17: windowed error process")

		point    = fs.Bool("point", false, "simulate one operating point")
		nSources = fs.Int("n", 1, "multiplexed sources (-point)")
		srcSpec  = fs.String("source", "", "scenario-zoo model for -point, e.g. gop or cascade:depth=10; -n copies are multiplexed")
		mixSpec  = fs.String("mix", "", "scenario-zoo mix spec for -point, e.g. 'farima*3+onoff:fps=24*2'")
		capacity = fs.Float64("capacity", 6e6, "channel capacity, bits/s (-point)")
		tmax     = fs.Duration("tmax", 2*time.Millisecond, "max buffer delay Q/(N·C) (-point)")

		ckptPath = fs.String("checkpoint", "", "checkpoint file for the Fig 14 sweep (saved on interrupt)")
		resume   = fs.Bool("resume", false, "continue an interrupted Fig 14 sweep from -checkpoint")

		faults      = fs.Bool("faults", false, "inject a deterministic server fault schedule (-point)")
		faultSeed   = fs.Uint64("fault-seed", 1, "fault schedule seed")
		faultGap    = fs.Float64("fault-gap", 2000, "mean clean intervals between fault episodes")
		faultLen    = fs.Float64("fault-len", 40, "mean fault episode length in intervals")
		faultOutage = fs.Float64("fault-outage", 0.2, "probability an episode is a full outage")
		faultFactor = fs.Float64("fault-factor", 0.5, "minimum capacity factor of partial degradations")
	)
	ob := cli.RegisterObsFlags(fs)
	if err := cli.ParseFlags(fs, args); err != nil {
		return err
	}
	ctx, finish, err := ob.Observe(ctx, stderr)
	if err != nil {
		return err
	}
	defer cli.FinishObs(finish, &retErr)
	if *ckptPath != "" && !*fig14 {
		return cli.Usagef("-checkpoint applies to the -fig14 sweep")
	}
	if *resume && *ckptPath == "" {
		return cli.Usagef("-resume requires -checkpoint")
	}
	if *faults && !*point {
		return cli.Usagef("-faults applies to -point simulations")
	}
	genBackend := backend.DaviesHarte
	if *bk != "" {
		if *in != "" {
			return cli.Usagef("-backend applies to regeneration; it conflicts with -in")
		}
		if genBackend, err = backend.Parse(*bk); err != nil {
			return err
		}
	}
	zooSpec, err := resolveZooSpec(*srcSpec, *mixSpec, *nSources)
	if err != nil {
		return err
	}
	if zooSpec != "" {
		switch {
		case !*point:
			return cli.Usagef("-source/-mix apply to -point simulations")
		case *in != "":
			return cli.Usagef("-source/-mix conflict with -in: zoo models replace the trace")
		case *slices:
			return cli.Usagef("scenario-zoo sources simulate at frame granularity; drop -slices")
		}
	}

	var suite *experiments.Suite
	if *fig14 || *fig15 || *fig16 || *fig17 || (*point && zooSpec == "") {
		suite, err = loadOrGenerate(*in, *frames, *seed, genBackend)
		if err != nil {
			return err
		}
		suite.UseSlices = *slices
	}

	any := false
	if *fig14 {
		any = true
		if err := runFig14(ctx, suite, *ckptPath, *resume, stdout, stderr); err != nil {
			return err
		}
	}
	if *fig15 {
		any = true
		r, err := suite.Fig15Ctx(ctx)
		if err != nil {
			return err
		}
		fmt.Fprintln(stdout, r.Format())
	}
	if *fig16 {
		any = true
		r, err := suite.Fig16Ctx(ctx)
		if err != nil {
			return err
		}
		fmt.Fprintln(stdout, r.Format())
	}
	if *fig17 {
		any = true
		r, err := suite.Fig17Ctx(ctx)
		if err != nil {
			return err
		}
		fmt.Fprintln(stdout, r.Format())
	}
	if *point {
		any = true
		var agg queue.Aggregator
		intervals := *frames
		if zooSpec != "" {
			agg, err = zooAggregator(zooSpec, *frames, *seed)
			if err != nil {
				return err
			}
		} else {
			mux, err := queue.NewMuxFromConfig(queue.MuxConfig{Trace: suite.Trace, N: *nSources, MinLagFrames: 1000, Seed: *seed})
			if err != nil {
				return err
			}
			agg = mux
			intervals = len(suite.Trace.Frames)
			if *slices {
				intervals = len(suite.Trace.Slices)
			}
		}
		opts := queue.Options{}
		if *faults {
			sched, err := queue.GenerateFaults(*faultSeed, intervals, queue.FaultConfig{
				MeanGap:    *faultGap,
				MeanLength: *faultLen,
				OutageProb: *faultOutage,
				MinFactor:  *faultFactor,
			})
			if err != nil {
				return err
			}
			opts.Faults = sched
			outages := 0
			for _, e := range sched.Episodes {
				//vbrlint:ignore floateq Factor 0 is the exact outage sentinel assigned from config literals, never computed
				if e.Factor == 0 {
					outages++
				}
			}
			fmt.Fprintf(stdout, "fault schedule: %d episodes (%d outages), %.2f%% of intervals degraded\n",
				len(sched.Episodes), outages,
				100*float64(sched.DegradedIntervals(intervals))/float64(intervals))
		}
		q := tmax.Seconds() * *capacity / 8
		r, err := agg.AverageLossCtx(ctx, *capacity, q, *slices, opts)
		if err != nil {
			return err
		}
		n := agg.NSources()
		fmt.Fprintf(stdout, "N=%d  C=%.3f Mb/s (%.3f Mb/s per source)  T_max=%v  Q=%.0f bytes\n",
			n, *capacity/1e6, *capacity/float64(n)/1e6, *tmax, q)
		fmt.Fprintf(stdout, "P_l      = %.3g\n", r.Pl)
		fmt.Fprintf(stdout, "P_l-WES  = %.3g\n", r.PlWES)
		fmt.Fprintf(stdout, "max backlog = %.0f bytes\n", r.MaxBacklog)
		if r.CombosUsed < r.CombosTotal {
			fmt.Fprintf(stdout, "note: averaged over %d of %d lag combinations\n", r.CombosUsed, r.CombosTotal)
			for _, cerr := range r.ComboErrors {
				fmt.Fprintf(stderr, "  combo excluded: %v\n", cerr)
			}
		}
	}

	if !any {
		return cli.Usagef("no simulation selected; use -fig14/-fig15/-fig16/-fig17/-point")
	}
	return nil
}

// resolveZooSpec folds the -source/-mix flags into one registry spec:
// -source names a single model replicated -n times, -mix gives the
// population spec verbatim. Empty when neither flag is set.
func resolveZooSpec(src, mix string, n int) (string, error) {
	if src != "" && mix != "" {
		return "", cli.Usagef("-source and -mix are mutually exclusive")
	}
	if src != "" {
		if strings.ContainsAny(src, "+*") {
			return "", cli.Usagef("-source takes a single model (got %q); use -mix for populations", src)
		}
		if n > 1 {
			return fmt.Sprintf("%s*%d", src, n), nil
		}
		return src, nil
	}
	return mix, nil
}

// zooAggregator builds the scenario-zoo multiplexer for a -point run.
// An unknown model name is a usage error (exit 2), matching how bad
// flag combinations are reported.
func zooAggregator(spec string, frames int, seed uint64) (queue.Aggregator, error) {
	specs, err := source.ParseSpec(spec)
	if err != nil {
		if errors.Is(err, errs.ErrUnknownModel) {
			return nil, cli.Usagef("%v", err)
		}
		return nil, err
	}
	srcs, err := source.NewPopulation(specs, seed)
	if err != nil {
		return nil, err
	}
	return queue.NewSourceMuxFromConfig(queue.SourceMuxConfig{Sources: srcs, Frames: frames, Seed: seed})
}

// runFig14 drives the checkpointable Q–C sweep: progress is loaded from
// and flushed to ckptPath around the (possibly interrupted) run.
func runFig14(ctx context.Context, suite *experiments.Suite, ckptPath string, resume bool, stdout, stderr io.Writer) error {
	var progress *checkpoint.SearchState
	if ckptPath != "" {
		progress = &checkpoint.SearchState{}
		if resume {
			rec, err := checkpoint.LoadSearch(ckptPath)
			if err != nil {
				return fmt.Errorf("loading checkpoint: %w", err)
			}
			progress = rec.State
			done := 0
			for _, c := range progress.Curves {
				if c.Done {
					done++
				}
			}
			fmt.Fprintf(stderr, "resuming Fig 14 from %s: %d curves complete, %d in progress\n",
				ckptPath, done, len(progress.Curves)-done)
		}
	}
	r, err := suite.Fig14Ctx(ctx, progress)
	if err != nil {
		if progress != nil && len(progress.Curves) > 0 && errors.Is(err, errs.ErrCancelled) {
			rec := &checkpoint.SearchRecord{
				Meta:  map[string]string{"frames": fmt.Sprint(len(suite.Trace.Frames))},
				State: progress,
			}
			if serr := checkpoint.SaveSearch(ckptPath, rec); serr != nil {
				return errors.Join(err, fmt.Errorf("saving checkpoint: %w", serr))
			}
			fmt.Fprintf(stderr, "interrupted; Fig 14 progress saved to %s (continue with -resume)\n", ckptPath)
		}
		return err
	}
	if resume && ckptPath != "" {
		if rmErr := os.Remove(ckptPath); rmErr != nil && !errors.Is(rmErr, os.ErrNotExist) {
			fmt.Fprintf(stderr, "warning: could not remove consumed checkpoint %s: %v\n", ckptPath, rmErr)
		}
	}
	fmt.Fprintln(stdout, r.Format())
	return nil
}

// loadOrGenerate reads a binary trace when a path is given, otherwise
// regenerates the synthetic movie with the selected Gaussian backend.
func loadOrGenerate(path string, frames int, seed uint64, b backend.Backend) (*experiments.Suite, error) {
	if path == "" {
		return experiments.GenerateSuiteBackend(frames, seed, b)
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return experiments.LoadSuite(f)
}
