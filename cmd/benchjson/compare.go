package main

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"
)

// loadSnapshot reads a committed benchjson snapshot.
func loadSnapshot(path string) (*Snapshot, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var snap Snapshot
	if err := json.NewDecoder(f).Decode(&snap); err != nil {
		return nil, fmt.Errorf("benchjson: decoding %s: %w", path, err)
	}
	if len(snap.Benchmarks) == 0 {
		return nil, fmt.Errorf("benchjson: %s holds no benchmarks", path)
	}
	return &snap, nil
}

// runCompare diffs two snapshots and fails when any benchmark present
// in both regressed its ns/op by more than threshold. Benchmarks that
// exist on only one side are reported but never fail the run: adding or
// retiring a benchmark is not a regression.
func runCompare(stdout io.Writer, oldPath, newPath string, threshold float64) error {
	oldSnap, err := loadSnapshot(oldPath)
	if err != nil {
		return err
	}
	newSnap, err := loadSnapshot(newPath)
	if err != nil {
		return err
	}

	names := make([]string, 0, len(oldSnap.Benchmarks))
	for name := range oldSnap.Benchmarks {
		names = append(names, name)
	}
	for name := range newSnap.Benchmarks {
		if _, ok := oldSnap.Benchmarks[name]; !ok {
			names = append(names, name)
		}
	}
	sort.Strings(names)

	tw := newColumnWriter(stdout)
	tw.row("benchmark", "old ns/op", "new ns/op", "delta", "")
	var regressions []string
	for _, name := range names {
		o, haveOld := oldSnap.Benchmarks[name]
		n, haveNew := newSnap.Benchmarks[name]
		switch {
		case !haveNew:
			tw.row(name, formatNs(o.NsPerOp), "-", "removed", "")
		case !haveOld:
			tw.row(name, "-", formatNs(n.NsPerOp), "added", "")
		default:
			delta := (n.NsPerOp - o.NsPerOp) / o.NsPerOp
			mark := ""
			if delta > threshold {
				mark = "REGRESSION"
				regressions = append(regressions, fmt.Sprintf("%s (+%.1f%%)", name, delta*100))
			}
			tw.row(name, formatNs(o.NsPerOp), formatNs(n.NsPerOp), fmt.Sprintf("%+.1f%%", delta*100), mark)
		}
	}
	tw.flush()

	if len(regressions) > 0 {
		return fmt.Errorf("benchjson: %d benchmark(s) regressed beyond %.0f%%: %s",
			len(regressions), threshold*100, strings.Join(regressions, ", "))
	}
	fmt.Fprintf(stdout, "no regression beyond %.0f%%\n", threshold*100)
	return nil
}

// formatNs prints an ns/op figure with the precision go test uses.
func formatNs(v float64) string {
	switch {
	case v >= 100:
		return fmt.Sprintf("%.0f", v)
	case v >= 10:
		return fmt.Sprintf("%.1f", v)
	default:
		return fmt.Sprintf("%.2f", v)
	}
}

// columnWriter right-pads cells into aligned columns. text/tabwriter
// would do, but buffering rows keeps the output deterministic and the
// dependency surface identical to the rest of the command.
type columnWriter struct {
	out  io.Writer
	rows [][]string
}

func newColumnWriter(out io.Writer) *columnWriter { return &columnWriter{out: out} }

func (c *columnWriter) row(cells ...string) { c.rows = append(c.rows, cells) }

func (c *columnWriter) flush() {
	var width []int
	for _, row := range c.rows {
		for i, cell := range row {
			if i >= len(width) {
				width = append(width, 0)
			}
			if len(cell) > width[i] {
				width[i] = len(cell)
			}
		}
	}
	for _, row := range c.rows {
		var b strings.Builder
		for i, cell := range row {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(cell)
			if i < len(row)-1 {
				b.WriteString(strings.Repeat(" ", width[i]-len(cell)))
			}
		}
		fmt.Fprintln(c.out, strings.TrimRight(b.String(), " "))
	}
}
