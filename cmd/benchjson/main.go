// Command benchjson converts `go test -bench` text output into a stable
// JSON snapshot, so benchmark results can be committed (BENCH_<n>.json)
// and diffed across PRs or collected as CI artifacts.
//
// Repeated runs of the same benchmark (-count > 1) are collapsed to the
// fastest run — the one least disturbed by scheduling noise — and the
// GOMAXPROCS suffix (-8) is stripped from names so snapshots from
// machines with different core counts stay comparable.
//
// With -compare, benchjson instead diffs two snapshots and prints the
// per-benchmark deltas; it exits 1 when any shared benchmark regressed
// by more than -threshold (relative ns/op growth), making it usable as
// a CI tripwire against a committed baseline.
//
//	go test -run '^$' -bench . -benchmem -count=3 . > bench.out
//	benchjson -o BENCH_1.json bench.out
//	benchjson -compare -threshold 0.25 BENCH_0.json BENCH_1.json
package main

import (
	"bufio"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"vbr/internal/cli"
)

func main() {
	os.Exit(cli.Main("benchjson", run))
}

// Bench is one benchmark's collapsed result.
type Bench struct {
	Runs        int     `json:"runs"`
	Iterations  int64   `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
}

// Snapshot is the serialized form: environment header plus one entry per
// benchmark name. encoding/json sorts the map keys, so the output is
// deterministic for a fixed set of results.
type Snapshot struct {
	Goos       string           `json:"goos,omitempty"`
	Goarch     string           `json:"goarch,omitempty"`
	Pkg        string           `json:"pkg,omitempty"`
	CPU        string           `json:"cpu,omitempty"`
	Benchmarks map[string]Bench `json:"benchmarks"`
}

func run(ctx context.Context, args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("benchjson", flag.ContinueOnError)
	fs.SetOutput(stderr)
	outPath := fs.String("o", "", "output path (default stdout)")
	compare := fs.Bool("compare", false, "compare two snapshots: benchjson -compare OLD NEW")
	threshold := fs.Float64("threshold", 0.25, "relative ns/op regression that fails -compare (0.25 = +25%)")
	if err := cli.ParseFlags(fs, args); err != nil {
		return err
	}
	if *compare {
		if fs.NArg() != 2 {
			return cli.Usagef("-compare needs exactly two snapshot files (OLD NEW), got %d", fs.NArg())
		}
		if !(*threshold > 0) {
			return cli.Usagef("-threshold must be positive, got %v", *threshold)
		}
		return runCompare(stdout, fs.Arg(0), fs.Arg(1), *threshold)
	}
	if fs.NArg() > 1 {
		return cli.Usagef("at most one input file (default stdin), got %d", fs.NArg())
	}

	in := io.Reader(os.Stdin)
	if fs.NArg() == 1 {
		f, err := os.Open(fs.Arg(0))
		if err != nil {
			return err
		}
		defer f.Close()
		in = f
	}
	snap, err := parse(in)
	if err != nil {
		return err
	}
	if len(snap.Benchmarks) == 0 {
		return fmt.Errorf("benchjson: no benchmark lines in input")
	}

	out := io.Writer(stdout)
	if *outPath != "" {
		f, err := os.Create(*outPath)
		if err != nil {
			return err
		}
		defer f.Close()
		out = f
	}
	enc := json.NewEncoder(out)
	enc.SetIndent("", "  ")
	if err := enc.Encode(snap); err != nil {
		return fmt.Errorf("benchjson: encoding snapshot: %w", err)
	}
	return nil
}

// parse reads `go test -bench` output, keeping the fastest run per name.
func parse(in io.Reader) (*Snapshot, error) {
	snap := &Snapshot{Benchmarks: make(map[string]Bench)}
	sc := bufio.NewScanner(in)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "goos: "):
			snap.Goos = strings.TrimPrefix(line, "goos: ")
		case strings.HasPrefix(line, "goarch: "):
			snap.Goarch = strings.TrimPrefix(line, "goarch: ")
		case strings.HasPrefix(line, "pkg: "):
			snap.Pkg = strings.TrimPrefix(line, "pkg: ")
		case strings.HasPrefix(line, "cpu: "):
			snap.CPU = strings.TrimPrefix(line, "cpu: ")
		case strings.HasPrefix(line, "Benchmark"):
			name, b, err := parseBenchLine(line)
			if err != nil {
				return nil, err
			}
			if prev, ok := snap.Benchmarks[name]; ok {
				runs := prev.Runs + 1
				if prev.NsPerOp < b.NsPerOp {
					b = prev
				}
				b.Runs = runs
			}
			snap.Benchmarks[name] = b
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("benchjson: reading input: %w", err)
	}
	return snap, nil
}

// parseBenchLine splits one result line:
//
//	BenchmarkName-8   	  175	 7174588 ns/op	  112 B/op	  1 allocs/op
func parseBenchLine(line string) (string, Bench, error) {
	fields := strings.Fields(line)
	if len(fields) < 4 {
		return "", Bench{}, fmt.Errorf("benchjson: malformed benchmark line %q", line)
	}
	name := strings.TrimPrefix(fields[0], "Benchmark")
	if i := strings.LastIndex(name, "-"); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			name = name[:i] // GOMAXPROCS suffix
		}
	}
	b := Bench{Runs: 1}
	var err error
	if b.Iterations, err = strconv.ParseInt(fields[1], 10, 64); err != nil {
		return "", Bench{}, fmt.Errorf("benchjson: iteration count in %q: %w", line, err)
	}
	// The remainder is value/unit pairs; unknown units are ignored so new
	// -benchmem-style metrics don't break old snapshots.
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return "", Bench{}, fmt.Errorf("benchjson: value %q in %q: %w", fields[i], line, err)
		}
		switch fields[i+1] {
		case "ns/op":
			b.NsPerOp = v
		case "B/op":
			b.BytesPerOp = int64(v)
		case "allocs/op":
			b.AllocsPerOp = int64(v)
		}
	}
	if !(b.NsPerOp > 0) {
		return "", Bench{}, fmt.Errorf("benchjson: no ns/op in %q", line)
	}
	return name, b, nil
}
