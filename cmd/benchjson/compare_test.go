package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// writeSnap commits a snapshot to a temp file.
func writeSnap(t *testing.T, dir, name string, benches map[string]Bench) string {
	t.Helper()
	path := filepath.Join(dir, name)
	data, err := json.Marshal(Snapshot{Benchmarks: benches})
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestComparePasses(t *testing.T) {
	dir := t.TempDir()
	oldPath := writeSnap(t, dir, "old.json", map[string]Bench{
		"Fast":    {NsPerOp: 100},
		"Slow":    {NsPerOp: 1e6},
		"Retired": {NsPerOp: 50},
	})
	newPath := writeSnap(t, dir, "new.json", map[string]Bench{
		"Fast":  {NsPerOp: 110},   // +10% — inside threshold
		"Slow":  {NsPerOp: 0.9e6}, // improvement
		"Added": {NsPerOp: 42},
	})
	var out bytes.Buffer
	if err := runCompare(&out, oldPath, newPath, 0.25); err != nil {
		t.Fatalf("runCompare: %v\n%s", err, out.String())
	}
	text := out.String()
	for _, want := range []string{"Fast", "+10.0%", "removed", "added", "no regression"} {
		if !strings.Contains(text, want) {
			t.Errorf("output missing %q:\n%s", want, text)
		}
	}
	if strings.Contains(text, "REGRESSION") {
		t.Errorf("unexpected regression mark:\n%s", text)
	}
}

func TestCompareFailsOnRegression(t *testing.T) {
	dir := t.TempDir()
	oldPath := writeSnap(t, dir, "old.json", map[string]Bench{
		"Hot": {NsPerOp: 100},
		"OK":  {NsPerOp: 200},
	})
	newPath := writeSnap(t, dir, "new.json", map[string]Bench{
		"Hot": {NsPerOp: 140}, // +40% over a 25% threshold
		"OK":  {NsPerOp: 201},
	})
	var out bytes.Buffer
	err := runCompare(&out, oldPath, newPath, 0.25)
	if err == nil {
		t.Fatalf("runCompare passed despite regression:\n%s", out.String())
	}
	if !strings.Contains(err.Error(), "Hot") || !strings.Contains(err.Error(), "+40.0%") {
		t.Errorf("error %q should name the regressed benchmark and delta", err)
	}
	if !strings.Contains(out.String(), "REGRESSION") {
		t.Errorf("table should mark the regression:\n%s", out.String())
	}
}

func TestCompareRejectsBadInput(t *testing.T) {
	dir := t.TempDir()
	good := writeSnap(t, dir, "good.json", map[string]Bench{"A": {NsPerOp: 1}})
	empty := filepath.Join(dir, "empty.json")
	if err := os.WriteFile(empty, []byte(`{"benchmarks":{}}`), 0o644); err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	if err := runCompare(&out, filepath.Join(dir, "missing.json"), good, 0.25); err == nil {
		t.Error("missing old snapshot accepted")
	}
	if err := runCompare(&out, good, empty, 0.25); err == nil {
		t.Error("empty new snapshot accepted")
	}
}
