package main

import (
	"strings"
	"testing"
)

const sample = `goos: linux
goarch: amd64
pkg: vbr
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkAblation_Hosking10k     	       8	 129020965 ns/op	  327680 B/op	       4 allocs/op
BenchmarkAblation_Hosking10k     	       8	 134057768 ns/op	  327680 B/op	       4 allocs/op
BenchmarkAblation_Hosking10k     	       9	 128561402 ns/op	  327680 B/op	       4 allocs/op
BenchmarkAblation_QueueFluid-8   	     175	   7174588 ns/op	     112 B/op	       1 allocs/op
PASS
ok  	vbr	20.357s
`

func TestParseCollapsesToFastestRun(t *testing.T) {
	snap, err := parse(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	if snap.Goos != "linux" || snap.Goarch != "amd64" || snap.Pkg != "vbr" {
		t.Errorf("header = %q/%q/%q", snap.Goos, snap.Goarch, snap.Pkg)
	}
	if !strings.Contains(snap.CPU, "Xeon") {
		t.Errorf("cpu = %q", snap.CPU)
	}
	if len(snap.Benchmarks) != 2 {
		t.Fatalf("benchmarks = %v, want 2 entries", snap.Benchmarks)
	}

	h := snap.Benchmarks["Ablation_Hosking10k"]
	if h.Runs != 3 {
		t.Errorf("runs = %d, want 3", h.Runs)
	}
	if h.NsPerOp != 128561402 {
		t.Errorf("ns_per_op = %v, want the fastest of the three runs", h.NsPerOp)
	}
	if h.Iterations != 9 || h.BytesPerOp != 327680 || h.AllocsPerOp != 4 {
		t.Errorf("fastest run fields = %+v", h)
	}

	// The -8 GOMAXPROCS suffix must be stripped from the map key.
	q, ok := snap.Benchmarks["Ablation_QueueFluid"]
	if !ok {
		t.Fatalf("suffix not stripped: keys %v", snap.Benchmarks)
	}
	if q.Runs != 1 || q.NsPerOp != 7174588 {
		t.Errorf("queue fluid entry = %+v", q)
	}
}

func TestParseRejectsMalformedLines(t *testing.T) {
	bad := []string{
		"BenchmarkX 12",                   // too few fields
		"BenchmarkX notanint 5 ns/op",     // bad iteration count
		"BenchmarkX 12 nan-like ns/oops",  // no ns/op unit
		"BenchmarkX 12 bogus ns/op extra", // unparsable value
	}
	for _, line := range bad {
		if _, err := parse(strings.NewReader(line + "\n")); err == nil {
			t.Errorf("malformed line accepted: %q", line)
		}
	}
	// A benchmark whose name genuinely ends in -<digits> before the
	// GOMAXPROCS suffix loses only the final suffix.
	snap, err := parse(strings.NewReader("BenchmarkTable-100-8 5 10 ns/op\n"))
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := snap.Benchmarks["Table-100"]; !ok {
		t.Errorf("keys = %v, want Table-100", snap.Benchmarks)
	}
}
