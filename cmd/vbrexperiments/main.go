// Command vbrexperiments runs the complete reproduction: every table and
// figure of the paper's evaluation, end to end, printing paper-style
// summaries. Its output is the source of EXPERIMENTS.md.
//
//	vbrexperiments                 # quick scale (30,000 frames, seconds)
//	vbrexperiments -scale paper    # full scale (171,000 frames, minutes)
//	vbrexperiments -scale paper -slices  # slice-granularity queueing
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"strings"

	"vbr/internal/cli"
	"vbr/internal/experiments"
	"vbr/internal/obs"
)

func main() {
	os.Exit(cli.Main("vbrexperiments", run))
}

func run(ctx context.Context, args []string, stdout, stderr io.Writer) (retErr error) {
	fs := flag.NewFlagSet("vbrexperiments", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		scaleFlag  = fs.String("scale", "quick", "quick | paper")
		slices     = fs.Bool("slices", false, "queueing simulations at slice granularity")
		extensions = fs.Bool("extensions", true, "also run the future-work extension studies")
	)
	ob := cli.RegisterObsFlags(fs)
	if err := cli.ParseFlags(fs, args); err != nil {
		return err
	}
	ctx, finish, err := ob.Observe(ctx, stderr)
	if err != nil {
		return err
	}
	defer cli.FinishObs(finish, &retErr)
	scope := obs.From(ctx)

	var scale experiments.Scale
	switch *scaleFlag {
	case "quick":
		scale = experiments.QuickScale
	case "paper":
		scale = experiments.PaperScale
	default:
		return cli.Usagef("unknown scale %q (want quick or paper)", *scaleFlag)
	}

	//vbrlint:ignore determinism wall-clock is display-only here: elapsed-time banner, never fed into generation
	start := time.Now()
	suite, err := experiments.NewSuite(scale)
	if err != nil {
		return err
	}
	suite.UseSlices = *slices
	fmt.Fprintf(stdout, "=== VBR video reproduction suite: %s scale, %d frames (generated in %v) ===\n\n",
		*scaleFlag, len(suite.Trace.Frames), time.Since(start).Round(time.Millisecond))

	step := func(name string, fn func() (interface{ Format() string }, error)) error {
		if err := ctx.Err(); err != nil {
			return err
		}
		//vbrlint:ignore determinism wall-clock is display-only here: per-step timing line, never fed into results
		t0 := time.Now()
		endStep := scope.Span("experiments.step." + strings.ReplaceAll(strings.ToLower(name), " ", ""))
		r, err := fn()
		endStep()
		if err != nil {
			return fmt.Errorf("%s: %w", name, err)
		}
		fmt.Fprintln(stdout, r.Format())
		fmt.Fprintf(stdout, "[%s completed in %v]\n\n", name, time.Since(t0).Round(time.Millisecond))
		return nil
	}
	// summary runs one of the Figure 1–12 analyses and prints the compact
	// one-line digest produced by report.
	summary := func(fn func() error) error {
		if err := ctx.Err(); err != nil {
			return err
		}
		return fn()
	}

	if err := step("Table 1", func() (interface{ Format() string }, error) { return suite.Table1() }); err != nil {
		return err
	}
	if err := step("Table 2", func() (interface{ Format() string }, error) { return suite.Table2() }); err != nil {
		return err
	}
	if err := step("Table 3", func() (interface{ Format() string }, error) { return suite.Table3() }); err != nil {
		return err
	}

	// Figures 1–12: print compact summaries.
	if err := summary(func() error {
		r, err := suite.Fig1Ctx(ctx, 2000)
		if err != nil {
			return err
		}
		fmt.Fprintf(stdout, "Figure 1: full time series; major peaks at frames %v\n\n", r.PeakFrames)
		return nil
	}); err != nil {
		return err
	}
	if err := summary(func() error {
		r, err := suite.Fig2Ctx(ctx)
		if err != nil {
			return err
		}
		lo, hi := r.Y[0], r.Y[0]
		for _, v := range r.Y {
			if v < lo {
				lo = v
			}
			if v > hi {
				hi = v
			}
		}
		fmt.Fprintf(stdout, "Figure 2: %s; swing %.0f..%.0f bytes/frame\n\n", r.Label, lo, hi)
		return nil
	}); err != nil {
		return err
	}
	if err := summary(func() error {
		r, err := suite.Fig3Ctx(ctx)
		if err != nil {
			return err
		}
		fmt.Fprintf(stdout, "Figure 3: max KS distance of a 2-minute segment from the full marginal: %.3f\n\n", r.MaxKS)
		return nil
	}); err != nil {
		return err
	}
	if err := summary(func() error {
		r, err := suite.Fig4Ctx(ctx)
		if err != nil {
			return err
		}
		fmt.Fprintf(stdout, "Figure 4: right-tail log-log errors: normal %.2f, lognormal %.2f, gamma %.2f, gamma/pareto %.2f (m_T=%.2f)\n\n",
			r.TailErr["normal"], r.TailErr["lognormal"], r.TailErr["gamma"], r.TailErr["gamma/pareto"], r.ParetoSlope)
		return nil
	}); err != nil {
		return err
	}
	if err := summary(func() error {
		r, err := suite.Fig5Ctx(ctx)
		if err != nil {
			return err
		}
		fmt.Fprintf(stdout, "Figure 5: left-tail log-log errors: normal %.2f, lognormal %.2f, gamma %.2f, gamma/pareto %.2f\n\n",
			r.TailErr["normal"], r.TailErr["lognormal"], r.TailErr["gamma"], r.TailErr["gamma/pareto"])
		return nil
	}); err != nil {
		return err
	}
	if err := summary(func() error {
		r, err := suite.Fig6Ctx(ctx)
		if err != nil {
			return err
		}
		fmt.Fprintf(stdout, "Figure 6: Gamma/Pareto density fit, KS distance %.4f\n\n", r.KS)
		return nil
	}); err != nil {
		return err
	}
	if err := summary(func() error {
		r, err := suite.Fig7Ctx(ctx)
		if err != nil {
			return err
		}
		fmt.Fprintf(stdout, "Figure 7: acf departs from exponential fit at lag %d; acf(500)=%.3f acf(2000)=%.3f\n\n",
			r.DepartLag, r.ACF.Y[500], r.ACF.Y[min(2000, len(r.ACF.Y)-1)])
		return nil
	}); err != nil {
		return err
	}
	if err := summary(func() error {
		r, err := suite.Fig8Ctx(ctx)
		if err != nil {
			return err
		}
		fmt.Fprintf(stdout, "Figure 8: low-frequency spectrum ~ ω^-α with α=%.3f (H=%.3f)\n\n", r.Alpha, r.H)
		return nil
	}); err != nil {
		return err
	}
	if err := summary(func() error {
		r, err := suite.Fig9Ctx(ctx)
		if err != nil {
			return err
		}
		fmt.Fprintf(stdout, "Figure 9: iid 95%% CI misses the final mean for %d of %d prefixes; LRD-corrected CI misses %d\n\n",
			r.IIDMisses, len(r.Points)-1, r.LRDMisses)
		return nil
	}); err != nil {
		return err
	}
	if err := summary(func() error {
		r, err := suite.Fig10Ctx(ctx)
		if err != nil {
			return err
		}
		fmt.Fprintf(stdout, "Figure 10: aggregated CoVs %v — structure retained under aggregation\n\n", fmtFloats(r.CoVs))
		return nil
	}); err != nil {
		return err
	}
	if err := summary(func() error {
		r, err := suite.Fig11Ctx(ctx)
		if err != nil {
			return err
		}
		fmt.Fprintf(stdout, "Figure 11: variance-time β=%.3f, H=%.3f (paper: 0.78)\n\n", r.Beta, r.H)
		return nil
	}); err != nil {
		return err
	}
	if err := summary(func() error {
		r, err := suite.Fig12Ctx(ctx)
		if err != nil {
			return err
		}
		fmt.Fprintf(stdout, "Figure 12: R/S pox H=%.3f (paper: 0.83)\n\n", r.H)
		return nil
	}); err != nil {
		return err
	}

	if err := step("Figure 14", func() (interface{ Format() string }, error) { return suite.Fig14Ctx(ctx, nil) }); err != nil {
		return err
	}
	if err := step("Figure 15", func() (interface{ Format() string }, error) { return suite.Fig15Ctx(ctx) }); err != nil {
		return err
	}
	if err := step("Figure 16", func() (interface{ Format() string }, error) { return suite.Fig16Ctx(ctx) }); err != nil {
		return err
	}
	if err := step("Figure 17", func() (interface{ Format() string }, error) { return suite.Fig17Ctx(ctx) }); err != nil {
		return err
	}

	if *extensions {
		fmt.Fprintln(stdout, "=== extension studies (the paper's stated future work) ===")
		fmt.Fprintln(stdout)
		if err := step("Transport modes", func() (interface{ Format() string }, error) { return suite.ExtTransport() }); err != nil {
			return err
		}
		if err := step("Bufferless admission", func() (interface{ Format() string }, error) { return suite.ExtAdmissionCtx(ctx) }); err != nil {
			return err
		}
		if err := step("SRD augmentations", func() (interface{ Format() string }, error) { return suite.ExtSRDCtx(ctx) }); err != nil {
			return err
		}
		if err := step("Interframe coding", func() (interface{ Format() string }, error) { return suite.ExtInterframe() }); err != nil {
			return err
		}
		if err := step("Scene detection", func() (interface{ Format() string }, error) { return suite.ExtScenesCtx(ctx) }); err != nil {
			return err
		}
		if err := step("Server faults", func() (interface{ Format() string }, error) { return suite.ExtFaultsCtx(ctx) }); err != nil {
			return err
		}
		if err := step("Tail fidelity", func() (interface{ Format() string }, error) { return suite.ExtTailFidelityCtx(ctx) }); err != nil {
			return err
		}
		if err := step("Heterogeneous mixes", func() (interface{ Format() string }, error) { return suite.ExtMixCtx(ctx) }); err != nil {
			return err
		}
	}

	fmt.Fprintf(stdout, "=== complete in %v ===\n", time.Since(start).Round(time.Millisecond))
	return nil
}

func fmtFloats(xs []float64) []string {
	out := make([]string, len(xs))
	for i, v := range xs {
		out[i] = fmt.Sprintf("%.3f", v)
	}
	return out
}
