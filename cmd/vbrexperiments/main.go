// Command vbrexperiments runs the complete reproduction: every table and
// figure of the paper's evaluation, end to end, printing paper-style
// summaries. Its output is the source of EXPERIMENTS.md.
//
//	vbrexperiments                 # quick scale (30,000 frames, seconds)
//	vbrexperiments -scale paper    # full scale (171,000 frames, minutes)
//	vbrexperiments -scale paper -slices  # slice-granularity queueing
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	"vbr/internal/experiments"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("vbrexperiments: ")

	var (
		scaleFlag  = flag.String("scale", "quick", "quick | paper")
		slices     = flag.Bool("slices", false, "queueing simulations at slice granularity")
		extensions = flag.Bool("extensions", true, "also run the future-work extension studies")
	)
	flag.Parse()

	var scale experiments.Scale
	switch *scaleFlag {
	case "quick":
		scale = experiments.QuickScale
	case "paper":
		scale = experiments.PaperScale
	default:
		log.Fatalf("unknown scale %q", *scaleFlag)
	}

	start := time.Now()
	suite, err := experiments.NewSuite(scale)
	if err != nil {
		log.Fatal(err)
	}
	suite.UseSlices = *slices
	fmt.Printf("=== VBR video reproduction suite: %s scale, %d frames (generated in %v) ===\n\n",
		*scaleFlag, len(suite.Trace.Frames), time.Since(start).Round(time.Millisecond))

	step := func(name string, fn func() (interface{ Format() string }, error)) {
		t0 := time.Now()
		r, err := fn()
		if err != nil {
			log.Fatalf("%s: %v", name, err)
		}
		fmt.Println(r.Format())
		fmt.Printf("[%s completed in %v]\n\n", name, time.Since(t0).Round(time.Millisecond))
	}

	step("Table 1", func() (interface{ Format() string }, error) { return suite.Table1() })
	step("Table 2", func() (interface{ Format() string }, error) { return suite.Table2() })
	step("Table 3", func() (interface{ Format() string }, error) { return suite.Table3() })

	// Figures 1–12: print compact summaries.
	if r, err := suite.Fig1(2000); err != nil {
		log.Fatal(err)
	} else {
		fmt.Printf("Figure 1: full time series; major peaks at frames %v\n\n", r.PeakFrames)
	}
	if r, err := suite.Fig2(); err != nil {
		log.Fatal(err)
	} else {
		lo, hi := r.Y[0], r.Y[0]
		for _, v := range r.Y {
			if v < lo {
				lo = v
			}
			if v > hi {
				hi = v
			}
		}
		fmt.Printf("Figure 2: %s; swing %.0f..%.0f bytes/frame\n\n", r.Label, lo, hi)
	}
	if r, err := suite.Fig3(); err != nil {
		log.Fatal(err)
	} else {
		fmt.Printf("Figure 3: max KS distance of a 2-minute segment from the full marginal: %.3f\n\n", r.MaxKS)
	}
	if r, err := suite.Fig4(); err != nil {
		log.Fatal(err)
	} else {
		fmt.Printf("Figure 4: right-tail log-log errors: normal %.2f, lognormal %.2f, gamma %.2f, gamma/pareto %.2f (m_T=%.2f)\n\n",
			r.TailErr["normal"], r.TailErr["lognormal"], r.TailErr["gamma"], r.TailErr["gamma/pareto"], r.ParetoSlope)
	}
	if r, err := suite.Fig5(); err != nil {
		log.Fatal(err)
	} else {
		fmt.Printf("Figure 5: left-tail log-log errors: normal %.2f, lognormal %.2f, gamma %.2f, gamma/pareto %.2f\n\n",
			r.TailErr["normal"], r.TailErr["lognormal"], r.TailErr["gamma"], r.TailErr["gamma/pareto"])
	}
	if r, err := suite.Fig6(); err != nil {
		log.Fatal(err)
	} else {
		fmt.Printf("Figure 6: Gamma/Pareto density fit, KS distance %.4f\n\n", r.KS)
	}
	if r, err := suite.Fig7(); err != nil {
		log.Fatal(err)
	} else {
		fmt.Printf("Figure 7: acf departs from exponential fit at lag %d; acf(500)=%.3f acf(2000)=%.3f\n\n",
			r.DepartLag, r.ACF.Y[500], r.ACF.Y[min(2000, len(r.ACF.Y)-1)])
	}
	if r, err := suite.Fig8(); err != nil {
		log.Fatal(err)
	} else {
		fmt.Printf("Figure 8: low-frequency spectrum ~ ω^-α with α=%.3f (H=%.3f)\n\n", r.Alpha, r.H)
	}
	if r, err := suite.Fig9(); err != nil {
		log.Fatal(err)
	} else {
		fmt.Printf("Figure 9: iid 95%% CI misses the final mean for %d of %d prefixes; LRD-corrected CI misses %d\n\n",
			r.IIDMisses, len(r.Points)-1, r.LRDMisses)
	}
	if r, err := suite.Fig10(); err != nil {
		log.Fatal(err)
	} else {
		fmt.Printf("Figure 10: aggregated CoVs %v — structure retained under aggregation\n\n", fmtFloats(r.CoVs))
	}
	if r, err := suite.Fig11(); err != nil {
		log.Fatal(err)
	} else {
		fmt.Printf("Figure 11: variance-time β=%.3f, H=%.3f (paper: 0.78)\n\n", r.Beta, r.H)
	}
	if r, err := suite.Fig12(); err != nil {
		log.Fatal(err)
	} else {
		fmt.Printf("Figure 12: R/S pox H=%.3f (paper: 0.83)\n\n", r.H)
	}

	step("Figure 14", func() (interface{ Format() string }, error) { return suite.Fig14() })
	step("Figure 15", func() (interface{ Format() string }, error) { return suite.Fig15() })
	step("Figure 16", func() (interface{ Format() string }, error) { return suite.Fig16() })
	step("Figure 17", func() (interface{ Format() string }, error) { return suite.Fig17() })

	if *extensions {
		fmt.Println("=== extension studies (the paper's stated future work) ===")
		fmt.Println()
		step("Transport modes", func() (interface{ Format() string }, error) { return suite.ExtTransport() })
		step("Bufferless admission", func() (interface{ Format() string }, error) { return suite.ExtAdmission() })
		step("SRD augmentations", func() (interface{ Format() string }, error) { return suite.ExtSRD() })
		step("Interframe coding", func() (interface{ Format() string }, error) { return suite.ExtInterframe() })
		step("Scene detection", func() (interface{ Format() string }, error) { return suite.ExtScenes() })
		step("Tail fidelity", func() (interface{ Format() string }, error) { return suite.ExtTailFidelity() })
	}

	fmt.Printf("=== complete in %v ===\n", time.Since(start).Round(time.Millisecond))
}

func fmtFloats(xs []float64) []string {
	out := make([]string, len(xs))
	for i, v := range xs {
		out[i] = fmt.Sprintf("%.3f", v)
	}
	return out
}
