// Command vbrfleet runs a self-healing fleet of vbrd workers behind
// one front door. It spawns -workers daemon processes on loopback
// ports, health-checks them, restarts crashed or wedged workers under
// an exponential-backoff schedule, and reverse-proxies the serving API
// with consistent-hash routing: requests for the same model parameters
// land on the same worker, keeping its generation cache hot.
//
// Failure semantics at the front door:
//
//	GET  /v1/trace     idempotent and deterministic — on a mid-stream
//	                   worker death the request is retried on the next
//	                   ring node, resuming at the byte offset already
//	                   delivered; the client sees one complete stream
//	POST /v1/simulate  never replayed once a worker may have seen it;
//	                   only dial failures (request provably never sent)
//	                   move to the next replica
//	GET  /v1/jobs/{id} routed to the owning worker via the job id's
//	                   w<worker>- prefix; 503 + Retry-After while that
//	                   worker is restarting (job state is worker memory)
//	GET  /healthz      fleet aggregate: per-worker state, PID, restart
//	                   and stream counts
//
// On SIGINT/SIGTERM the front door drains in-flight requests first,
// then forwards the signal to every worker and waits out their own
// graceful drains.
//
// Examples:
//
//	vbrfleet -addr :8080 -workers 3
//	curl 'http://localhost:8080/v1/trace?n=171000&seed=7' | wc -l
//	curl http://localhost:8080/healthz | jq .workers
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strconv"
	"time"

	"vbr/internal/cli"
	"vbr/internal/fleet"
	"vbr/internal/genpool"
)

func main() {
	os.Exit(cli.Main("vbrfleet", run))
}

func run(ctx context.Context, args []string, stdout, stderr io.Writer) (retErr error) {
	fs := flag.NewFlagSet("vbrfleet", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		addr        = fs.String("addr", "127.0.0.1:8080", "front-door listen address (host:port; port 0 picks a free port)")
		workers     = fs.Int("workers", 3, "worker processes to supervise")
		vbrdPath    = fs.String("vbrd", "", "vbrd binary to spawn (default: vbrd next to this binary, else $PATH)")
		drain       = fs.Duration("drain", 30*time.Second, "front-door graceful-drain budget on shutdown")
		workerDrain = fs.Duration("worker-drain", 30*time.Second, "per-worker drain budget after the SIGTERM fan-out")
		healthEvery = fs.Duration("health-interval", 250*time.Millisecond, "worker /healthz polling period")
		healthTime  = fs.Duration("health-timeout", 2*time.Second, "single health-probe budget")
		startTime   = fs.Duration("start-timeout", 10*time.Second, "budget for a fresh worker to announce its port and pass a probe")
		backoffMin  = fs.Duration("backoff-min", 250*time.Millisecond, "first restart delay; doubles per consecutive restart")
		backoffMax  = fs.Duration("backoff-max", 5*time.Second, "restart delay cap")
		downAfter   = fs.Int("down-after", 3, "consecutive probe/request failures before a worker is taken down for restart")
		retries     = fs.Int("retries", 3, "ring nodes one trace request may visit before giving up")
		perTry      = fs.Duration("per-try-timeout", 5*time.Second, "per-attempt budget for dial plus response headers")
		seed        = fs.Uint64("seed", 1, "restart-jitter seed (decorrelated per worker)")
		maxFrames   = fs.Int("max-frames", 4<<20, "per-request trace length cap, forwarded to workers")
		simWorkers  = fs.Int("sim-workers", 2, "simulation-job workers per daemon, forwarded to workers")
		poolBytes   = fs.Int64("pool-bytes", genpool.DefaultMaxBytes, "per-worker generation-cache budget in bytes, forwarded to workers")
		jobQueue    = fs.Int("job-queue", 0, "per-worker simulation job bound before 503 shedding; 0 selects the worker default")
	)
	obsFlags := cli.RegisterObsFlags(fs)
	if err := cli.ParseFlags(fs, args); err != nil {
		return err
	}
	if fs.NArg() != 0 {
		return cli.Usagef("vbrfleet takes no positional arguments, got %q", fs.Args())
	}
	if *workers < 1 {
		return cli.Usagef("-workers must be ≥ 1, got %d", *workers)
	}

	bin, err := findVBRD(*vbrdPath)
	if err != nil {
		return err
	}

	obsCtx, finish, err := obsFlags.Observe(ctx, stderr)
	if err != nil {
		return err
	}
	defer cli.FinishObs(finish, &retErr)

	// Like vbrd, the serving/supervision base context carries the obs
	// scope but not the signal cancellation: the signal triggers an
	// ordered drain (front door first, then the workers), not an
	// everything-at-once teardown.
	base := context.WithoutCancel(obsCtx)

	sup, err := fleet.NewSupervisor(fleet.Config{
		Bin: bin,
		Args: func(workerID int) []string {
			return []string{
				"-addr", "127.0.0.1:0",
				"-worker-id", strconv.Itoa(workerID),
				"-drain", workerDrain.String(),
				"-max-frames", strconv.Itoa(*maxFrames),
				"-sim-workers", strconv.Itoa(*simWorkers),
				"-pool-bytes", strconv.FormatInt(*poolBytes, 10),
				"-job-queue", strconv.Itoa(*jobQueue),
			}
		},
		Workers:        *workers,
		HealthInterval: *healthEvery,
		HealthTimeout:  *healthTime,
		StartTimeout:   *startTime,
		Breaker: fleet.BreakerConfig{
			DownAfter:  *downAfter,
			MinBackoff: *backoffMin,
			MaxBackoff: *backoffMax,
		},
		Seed:         *seed,
		WorkerStderr: stderr,
		Logf: func(format string, a ...any) {
			fmt.Fprintf(stderr, format+"\n", a...)
		},
	})
	if err != nil {
		return err
	}
	sup.Start(base)
	stopFleet := func() {
		if n := sup.Stop(base, *workerDrain); n > 0 {
			fmt.Fprintf(stderr, "vbrfleet: %d worker(s) killed past the drain budget\n", n)
		}
	}

	// Hold the front door closed until the whole fleet passed its first
	// health probe, so the announced address never serves a cold start.
	readyCtx, cancelReady := context.WithTimeout(obsCtx, 2*(*startTime))
	err = sup.WaitReady(readyCtx, *workers)
	cancelReady()
	if err != nil {
		stopFleet()
		return fmt.Errorf("starting fleet: %w", err)
	}

	proxy := fleet.NewProxy(sup, fleet.ProxyConfig{
		MaxAttempts:   *retries,
		PerTryTimeout: *perTry,
		RetryAfter:    *backoffMin,
	})

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		stopFleet()
		return fmt.Errorf("listening on %s: %w", *addr, err)
	}
	httpSrv := &http.Server{
		Handler:           proxy.Handler(),
		BaseContext:       func(net.Listener) context.Context { return base },
		ReadHeaderTimeout: 10 * time.Second,
		IdleTimeout:       120 * time.Second,
	}
	cli.AnnounceListen(stdout, "vbrfleet", ln.Addr().String())

	serveErr := make(chan error, 1)
	go func() { serveErr <- httpSrv.Serve(ln) }()

	select {
	case err := <-serveErr:
		stopFleet()
		return fmt.Errorf("serving on %s: %w", ln.Addr(), err)
	case <-ctx.Done():
	}

	// Drain order matters: shut the front door first so in-flight
	// proxied streams finish while their workers are still alive, THEN
	// fan the signal out to the workers.
	fmt.Fprintf(stderr, "vbrfleet draining (front door %s, workers %s)\n", *drain, *workerDrain)
	drainCtx, cancel := context.WithTimeout(base, *drain)
	defer cancel()
	if err := httpSrv.Shutdown(drainCtx); err != nil {
		if closeErr := httpSrv.Close(); closeErr != nil {
			fmt.Fprintf(stderr, "warning: force close: %v\n", closeErr)
		}
		fmt.Fprintf(stderr, "vbrfleet front door drained with stragglers: %v\n", err)
	}
	<-serveErr // Serve has returned ErrServerClosed by now
	stopFleet()
	if errors.Is(ctx.Err(), context.Canceled) {
		fmt.Fprintln(stdout, "vbrfleet drained cleanly")
	}
	return nil
}

// findVBRD resolves the worker binary: an explicit -vbrd path wins,
// then a vbrd sitting next to the vbrfleet binary (the common install
// and test layout), then $PATH.
func findVBRD(explicit string) (string, error) {
	if explicit != "" {
		if _, err := os.Stat(explicit); err != nil {
			return "", fmt.Errorf("vbrd binary: %w", err)
		}
		return explicit, nil
	}
	if self, err := os.Executable(); err == nil {
		sibling := filepath.Join(filepath.Dir(self), "vbrd")
		if _, err := os.Stat(sibling); err == nil {
			return sibling, nil
		}
	}
	path, err := exec.LookPath("vbrd")
	if err != nil {
		return "", fmt.Errorf("finding vbrd (set -vbrd explicitly): %w", err)
	}
	return path, nil
}
