// Command vbrtrace synthesizes the empirical-substitute VBR video trace
// (§2 of the paper) and writes it to disk.
//
// Two generation paths are available:
//
//   - activity (default): the scene-structured activity process is mapped
//     directly to bytes-per-frame through the calibrated Gamma/Pareto
//     marginal. Fast; reproduces Tables 1–2 at full length in seconds.
//   - codec: the activity process drives a procedural frame renderer and
//     every frame is compressed by the real 8×8 DCT / run-length /
//     Huffman intraframe coder; bit counts become the trace. This is the
//     paper's actual pipeline (the authors burned 6 weeks of 1990 CPU on
//     it) and costs O(frames·pixels).
//
// Examples:
//
//	vbrtrace -frames 171000 -o trace.bin
//	vbrtrace -mode codec -frames 2000 -width 504 -height 480 -o coded.bin
//	vbrtrace -frames 30000 -csv trace.csv
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"

	"vbr/internal/backend"
	"vbr/internal/cli"
	"vbr/internal/codec"
	"vbr/internal/obs"
	"vbr/internal/synth"
	"vbr/internal/trace"
)

// slicesFor returns the preferred slice count if it divides the frame's
// block rows, otherwise the largest divisor of the block rows not
// exceeding it (so reduced test resolutions keep working).
func slicesFor(height, preferred int) int {
	blockRows := height / 8
	if blockRows < 1 {
		return 1
	}
	for s := min(preferred, blockRows); s > 1; s-- {
		if blockRows%s == 0 {
			return s
		}
	}
	return 1
}

func main() {
	os.Exit(cli.Main("vbrtrace", run))
}

func run(ctx context.Context, args []string, stdout, stderr io.Writer) (retErr error) {
	fs := flag.NewFlagSet("vbrtrace", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		mode    = fs.String("mode", "activity", "generation path: activity | codec | interframe")
		gop     = fs.Int("gop", 12, "GOP size (interframe mode)")
		search  = fs.Int("search", 4, "motion search range in pels (interframe mode)")
		bframes = fs.Int("bframes", 2, "B frames between references (interframe mode)")
		frames  = fs.Int("frames", 171000, "number of frames")
		seed    = fs.Uint64("seed", 1994, "random seed")
		bk      = fs.String("backend", "davies-harte", "Gaussian backend behind the activity backbone: hosking | davies-harte | paxson | auto")
		hurst   = fs.Float64("hurst", 0.8, "Hurst parameter of the activity process")
		mean    = fs.Float64("mean", 27791, "Gamma-body mean, bytes/frame (activity mode)")
		std     = fs.Float64("std", 6254, "Gamma-body std, bytes/frame (activity mode)")
		tail    = fs.Float64("tail", 12, "Pareto tail slope m_T (activity mode)")
		width   = fs.Int("width", 504, "frame width (codec mode)")
		height  = fs.Int("height", 480, "frame height (codec mode)")
		quant   = fs.Float64("quant", 8, "quantizer step (codec mode)")
		train   = fs.Int("train", 64, "Huffman training frames (codec mode)")
		outBin  = fs.String("o", "", "output path for binary trace")
		outCSV  = fs.String("csv", "", "output path for CSV frame series")
		summary = fs.Bool("summary", true, "print Table 1/2 style summary")
	)
	ob := cli.RegisterObsFlags(fs)
	if err := cli.ParseFlags(fs, args); err != nil {
		return err
	}
	ctx, finish, err := ob.Observe(ctx, stderr)
	if err != nil {
		return err
	}
	defer cli.FinishObs(finish, &retErr)
	scope := obs.From(ctx) // synthesis runs in seconds even at paper scale, so ctx is otherwise unused

	cfg := synth.DefaultConfig()
	cfg.Frames = *frames
	cfg.Seed = *seed
	cfg.Hurst = *hurst
	cfg.MeanBytes = *mean
	cfg.StdBytes = *std
	cfg.TailSlope = *tail
	if cfg.Backend, err = backend.Parse(*bk); err != nil {
		return err
	}

	endGen := scope.Span("trace.synth")
	var tr *trace.Trace
	switch *mode {
	case "activity":
		tr, err = synth.Generate(cfg)
	case "codec":
		ccfg := codec.DefaultCoderConfig()
		ccfg.Width = *width
		ccfg.Height = *height
		ccfg.QuantStep = *quant
		ccfg.SlicesPerFrame = slicesFor(*height, ccfg.SlicesPerFrame)
		var coder *codec.Coder
		coder, err = codec.NewCoder(ccfg)
		if err == nil {
			cfg.SlicesPerFrame = 0 // the coder produces slice data itself
			tr, err = coder.GenerateTrace(cfg, *train)
		}
	case "interframe":
		icfg := codec.DefaultInterCoderConfig()
		icfg.Width = *width
		icfg.Height = *height
		icfg.QuantStep = *quant
		icfg.GOPSize = *gop
		icfg.SearchRange = *search
		icfg.BFrames = *bframes
		icfg.SlicesPerFrame = slicesFor(*height, icfg.SlicesPerFrame)
		var coder *codec.InterCoder
		coder, err = codec.NewInterCoder(icfg)
		if err == nil {
			cfg.SlicesPerFrame = 0
			tr, err = coder.GenerateTrace(cfg, *train)
		}
	default:
		return cli.Usagef("unknown mode %q (want activity, codec or interframe)", *mode)
	}
	endGen()
	if err != nil {
		return err
	}
	scope.Count("trace.frames", int64(len(tr.Frames)))
	scope.Count("trace.slices", int64(len(tr.Slices)))

	if *summary {
		fs, err := tr.FrameStats()
		if err != nil {
			return err
		}
		fmt.Fprintf(stdout, "frames:        %d (%.2f h at %.0f fps)\n", len(tr.Frames), tr.Duration()/3600, tr.FrameRate)
		fmt.Fprintf(stdout, "avg bandwidth: %.2f Mb/s\n", tr.MeanRate()/1e6)
		fmt.Fprintf(stdout, "mean/frame:    %.0f bytes   std: %.0f   CoV: %.2f\n", fs.Mean, fs.Std, fs.CoV)
		fmt.Fprintf(stdout, "min/max:       %.0f / %.0f bytes   peak/mean: %.2f\n", fs.Min, fs.Max, fs.PeakMean)
		if tr.Slices != nil {
			ss, err := tr.SliceStats()
			if err != nil {
				return err
			}
			fmt.Fprintf(stdout, "slice mean:    %.1f bytes   CoV: %.2f\n", ss.Mean, ss.CoV)
		}
	}

	if *outBin != "" {
		if err := writeFile(*outBin, tr.WriteBinary); err != nil {
			return err
		}
		fmt.Fprintf(stdout, "wrote binary trace to %s\n", *outBin)
	}
	if *outCSV != "" {
		if err := writeFile(*outCSV, tr.WriteCSV); err != nil {
			return err
		}
		fmt.Fprintf(stdout, "wrote CSV frame series to %s\n", *outCSV)
	}
	return nil
}

// writeFile creates path and streams through write, closing the file
// even on error.
func writeFile(path string, write func(io.Writer) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := write(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
