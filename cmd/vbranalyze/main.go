// Command vbranalyze reproduces the statistical analyses of §3 of the
// paper — Tables 2–3 and the data behind Figs. 1–12 — on a VBR trace.
//
// The trace is either read from a file written by vbrtrace (-in) or
// regenerated from the built-in synthetic movie (-frames). Individual
// experiments are selected with flags; -all runs everything.
//
// Examples:
//
//	vbranalyze -in trace.bin -table2 -table3
//	vbranalyze -frames 171000 -all
//	vbranalyze -in trace.bin -fig7 -series
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"vbr/internal/cli"
	"vbr/internal/experiments"
	"vbr/internal/lrd"
	"vbr/internal/obs"
	"vbr/internal/plot"
	"vbr/internal/scenes"
)

// renderPlot converts experiment series to plot series and prints the
// ASCII chart.
func renderPlot(series []experiments.SeriesResult, opts plot.Options) error {
	ps := make([]plot.Series, len(series))
	for i, s := range series {
		ps[i] = plot.Series{Label: s.Label, X: s.X, Y: s.Y}
	}
	out, err := plot.Render(ps, opts)
	if err != nil {
		return err
	}
	fmt.Println(out)
	return nil
}

func main() {
	os.Exit(cli.Main("vbranalyze", run))
}

func run(ctx context.Context, args []string, stdout, stderr io.Writer) (retErr error) {
	fs := flag.NewFlagSet("vbranalyze", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		in     = fs.String("in", "", "binary trace file (from vbrtrace); empty = regenerate")
		frames = fs.Int("frames", 171000, "frames to generate when -in is empty")
		seed   = fs.Uint64("seed", 1994, "seed for regeneration")
		series = fs.Bool("series", false, "print data series, not just summaries")
		doPlot = fs.Bool("plot", false, "render ASCII plots of the figures")

		all    = fs.Bool("all", false, "run every analysis")
		table1 = fs.Bool("table1", false, "Table 1: generation parameters")
		table2 = fs.Bool("table2", false, "Table 2: trace statistics")
		table3 = fs.Bool("table3", false, "Table 3: Hurst estimates")
		fig1   = fs.Bool("fig1", false, "Fig 1: time series and peaks")
		fig2   = fs.Bool("fig2", false, "Fig 2: low-frequency content")
		fig3   = fs.Bool("fig3", false, "Fig 3: segment histograms")
		fig4   = fs.Bool("fig4", false, "Fig 4: CCDF right tail vs models")
		fig5   = fs.Bool("fig5", false, "Fig 5: CDF left tail vs models")
		fig6   = fs.Bool("fig6", false, "Fig 6: density vs Gamma/Pareto")
		fig7   = fs.Bool("fig7", false, "Fig 7: autocorrelation")
		fig8   = fs.Bool("fig8", false, "Fig 8: periodogram")
		fig9   = fs.Bool("fig9", false, "Fig 9: mean convergence CIs")
		fig10  = fs.Bool("fig10", false, "Fig 10: aggregated self-similarity")
		fig11  = fs.Bool("fig11", false, "Fig 11: variance-time plot")
		fig12  = fs.Bool("fig12", false, "Fig 12: R/S pox diagram")
		scn    = fs.Bool("scenes", false, "scene detection and scene-level model (§4.2 extension)")

		calibrate = fs.Bool("calibrate", false, "run the estimator calibration battery on synthesized known-H fGn (ignores -in/-frames)")
		calSeeds  = fs.Int("calibrate-seeds", 32, "calibration: realizations per (H, n) cell")
		calHs     = fs.String("calibrate-hurst", "", "calibration: comma-separated true-H grid (default 0.6,0.7,0.8,0.9)")
		calNs     = fs.String("calibrate-frames", "", "calibration: comma-separated series lengths (default 4096,16384,65536)")
		calJSON   = fs.String("calibrate-json", "", "calibration: also write the JSON artifact to this path")
		calGo     = fs.String("calibrate-go", "", "calibration: also write the generated Go table (internal/lrd/calibration_table.go) to this path")
	)
	ob := cli.RegisterObsFlags(fs)
	if err := cli.ParseFlags(fs, args); err != nil {
		return err
	}
	ctx, finish, err := ob.Observe(ctx, stderr)
	if err != nil {
		return err
	}
	defer cli.FinishObs(finish, &retErr)
	scope := obs.From(ctx)

	if *calibrate {
		return runCalibrate(ctx, *seed, *calSeeds, *calHs, *calNs, *calJSON, *calGo)
	}

	suite, err := loadOrGenerate(*in, *frames, *seed)
	if err != nil {
		return err
	}
	scope.Count("trace.frames", int64(len(suite.Trace.Frames)))

	any := false
	run := func(enabled bool, fn func() error) {
		if err != nil || ctx.Err() != nil {
			return
		}
		if *all || enabled {
			any = true
			scope.Count("analyze.analyses", 1)
			err = fn()
		}
	}

	run(*table1, func() error {
		r, err := suite.Table1()
		if err != nil {
			return err
		}
		fmt.Println(r.Format())
		return nil
	})
	run(*table2, func() error {
		r, err := suite.Table2()
		if err != nil {
			return err
		}
		fmt.Println(r.Format())
		return nil
	})
	run(*table3, func() error {
		r, err := suite.Table3()
		if err != nil {
			return err
		}
		fmt.Println(r.Format())
		if *series {
			// The paper's "plot (not shown here)": Ĥ(m) with 95% CIs
			// against the aggregation level m.
			ladder, err := lrd.WhittleLadder(suite.Trace.Frames, true, 128)
			if err != nil {
				return err
			}
			fmt.Println("Whittle aggregation ladder Ĥ(m) ± 95% CI:")
			for _, p := range ladder {
				fmt.Printf("  m=%6d  H=%.3f ± %.3f\n", p.M, p.H, p.CI95)
			}
			fmt.Println()
		}
		return nil
	})
	run(*fig1, func() error {
		r, err := suite.Fig1(2000)
		if err != nil {
			return err
		}
		fmt.Printf("Figure 1: time series, %d display points; major peaks at frames %v\n",
			len(r.Series.X), r.PeakFrames)
		if *doPlot {
			if err := renderPlot([]experiments.SeriesResult{r.Series}, plot.Options{
				Title: "Fig 1: bytes per frame over the movie", XLabel: "frame", YLabel: "bytes",
			}); err != nil {
				return err
			}
		}
		if *series {
			fmt.Print(experiments.FormatSeries(r.Series, 40))
		}
		return nil
	})
	run(*fig2, func() error {
		r, err := suite.Fig2()
		if err != nil {
			return err
		}
		fmt.Printf("Figure 2: %s, %d points\n", r.Label, len(r.X))
		if *doPlot {
			if err := renderPlot([]experiments.SeriesResult{*r}, plot.Options{
				Title: "Fig 2: low-frequency content", XLabel: "frame", YLabel: "bytes",
			}); err != nil {
				return err
			}
		}
		if *series {
			fmt.Print(experiments.FormatSeries(*r, 40))
		}
		return nil
	})
	run(*fig3, func() error {
		r, err := suite.Fig3()
		if err != nil {
			return err
		}
		fmt.Printf("Figure 3: five 2-minute segment histograms vs complete trace; max segment KS = %.3f\n", r.MaxKS)
		if *series {
			for _, seg := range r.Segments {
				fmt.Print(experiments.FormatSeries(seg, 15))
			}
			fmt.Print(experiments.FormatSeries(r.Full, 15))
		}
		return nil
	})
	run(*fig4, func() error {
		r, err := suite.Fig4()
		if err != nil {
			return err
		}
		fmt.Printf("Figure 4: log-log CCDF right tail; fitted Pareto slope m_T = %.2f\n", r.ParetoSlope)
		fmt.Println("max |log10 model - log10 empirical| over the tail:")
		for _, name := range []string{"normal", "lognormal", "gamma", "gamma/pareto"} {
			fmt.Printf("  %-14s %.3f\n", name, r.TailErr[name])
		}
		if *doPlot {
			all := append([]experiments.SeriesResult{r.Empirical}, r.Models...)
			if err := renderPlot(all, plot.Options{
				Title: "Fig 4: log-log CCDF right tail", XLabel: "bytes/frame", YLabel: "P(X>x)",
				LogX: true, LogY: true,
			}); err != nil {
				return err
			}
		}
		if *series {
			fmt.Print(experiments.FormatSeries(r.Empirical, 25))
		}
		return nil
	})
	run(*fig5, func() error {
		r, err := suite.Fig5()
		if err != nil {
			return err
		}
		fmt.Println("Figure 5: log-log CDF left tail; max |log10 model - log10 empirical|:")
		for _, name := range []string{"normal", "lognormal", "gamma", "gamma/pareto"} {
			fmt.Printf("  %-14s %.3f\n", name, r.TailErr[name])
		}
		if *series {
			fmt.Print(experiments.FormatSeries(r.Empirical, 25))
		}
		return nil
	})
	run(*fig6, func() error {
		r, err := suite.Fig6()
		if err != nil {
			return err
		}
		fmt.Printf("Figure 6: density vs Gamma/Pareto model; KS distance = %.4f\n", r.KS)
		if *series {
			fmt.Print(experiments.FormatSeries(r.Empirical, 25))
			fmt.Print(experiments.FormatSeries(r.Model, 25))
		}
		return nil
	})
	run(*fig7, func() error {
		r, err := suite.Fig7()
		if err != nil {
			return err
		}
		fmt.Printf("Figure 7: autocorrelation to lag %d; departs from exponential fit at lag %d\n",
			len(r.ACF.Y)-1, r.DepartLag)
		if *doPlot {
			if err := renderPlot([]experiments.SeriesResult{r.ACF, r.ExpFit}, plot.Options{
				Title: "Fig 7: autocorrelation", XLabel: "lag", YLabel: "r(n)",
			}); err != nil {
				return err
			}
		}
		if *series {
			fmt.Print(experiments.FormatSeries(r.ACF, 40))
		}
		return nil
	})
	run(*fig8, func() error {
		r, err := suite.Fig8()
		if err != nil {
			return err
		}
		fmt.Printf("Figure 8: periodogram; low-frequency power law ω^-α with α = %.3f (H = %.3f)\n",
			r.Alpha, r.H)
		if *doPlot {
			if err := renderPlot([]experiments.SeriesResult{r.Periodogram}, plot.Options{
				Title: "Fig 8: periodogram", XLabel: "frequency (rad)", YLabel: "I(w)",
				LogX: true, LogY: true,
			}); err != nil {
				return err
			}
		}
		if *series {
			fmt.Print(experiments.FormatSeries(r.Periodogram, 40))
		}
		return nil
	})
	run(*fig9, func() error {
		r, err := suite.Fig9()
		if err != nil {
			return err
		}
		fmt.Printf("Figure 9: mean estimates on growing prefixes (final mean %.0f)\n", r.FinalMean)
		fmt.Printf("  %10s  %12s  %12s  %12s\n", "n", "mean", "±95% iid", "±95% LRD")
		for _, ci := range r.Points {
			fmt.Printf("  %10d  %12.1f  %12.1f  %12.1f\n", ci.N, ci.Mean, ci.HalfIID, ci.HalfLRD)
		}
		fmt.Printf("prefixes whose iid CI misses the final mean: %d of %d (LRD CI: %d)\n",
			r.IIDMisses, len(r.Points)-1, r.LRDMisses)
		return nil
	})
	run(*fig10, func() error {
		r, err := suite.Fig10()
		if err != nil {
			return err
		}
		fmt.Println("Figure 10: aggregated processes retain structure (self-similarity)")
		for i, sr := range r.Aggregated {
			fmt.Printf("  %-10s CoV = %.3f\n", sr.Label, r.CoVs[i])
		}
		return nil
	})
	run(*fig11, func() error {
		r, err := suite.Fig11()
		if err != nil {
			return err
		}
		fmt.Printf("Figure 11: variance-time plot; β = %.3f, H = %.3f (paper: 0.78)\n", r.Beta, r.H)
		if *doPlot {
			if err := renderPlot([]experiments.SeriesResult{r.Points}, plot.Options{
				Title: "Fig 11: variance-time plot (log10-log10)", XLabel: "log10 m", YLabel: "log10 var",
			}); err != nil {
				return err
			}
		}
		if *series {
			fmt.Print(experiments.FormatSeries(r.Points, 40))
		}
		return nil
	})
	run(*fig12, func() error {
		r, err := suite.Fig12()
		if err != nil {
			return err
		}
		fmt.Printf("Figure 12: R/S pox diagram; H = %.3f (paper: 0.83), %d points\n",
			r.H, len(r.Points.X))
		if *doPlot {
			if err := renderPlot([]experiments.SeriesResult{r.Points}, plot.Options{
				Title: "Fig 12: pox diagram of R/S (log10-log10)", XLabel: "log10 lag", YLabel: "log10 R/S",
			}); err != nil {
				return err
			}
		}
		if *series {
			fmt.Print(experiments.FormatSeries(r.Points, 40))
		}
		return nil
	})

	run(*scn, func() error {
		dcfg := scenes.DefaultConfig()
		detected, err := scenes.Detect(suite.Trace.Frames, dcfg)
		if err != nil {
			return err
		}
		lm, err := scenes.FitLevelModel(detected)
		if err != nil {
			return err
		}
		fmt.Printf("Scene detection (window %d frames, threshold %.1f medians):\n", dcfg.Window, dcfg.Thresh)
		fmt.Printf("  %d scenes; mean duration %.0f frames (%.1f s)\n",
			lm.NumScenes, lm.MeanDuration, lm.MeanDuration/suite.Trace.FrameRate)
		fmt.Printf("  scene level %.0f ± %.0f bytes/frame; within-scene σ %.0f\n",
			lm.LevelMean, lm.LevelStd, lm.WithinStdMean)
		if *series {
			fmt.Printf("  %10s  %10s  %12s  %12s\n", "start", "length", "mean", "std")
			for _, sc := range detected {
				fmt.Printf("  %10d  %10d  %12.0f  %12.0f\n", sc.Start, sc.Length, sc.Mean, sc.Std)
			}
		}
		return nil
	})

	if err != nil {
		return err
	}
	if err := ctx.Err(); err != nil {
		return err
	}
	if !any {
		return cli.Usagef("no analysis selected; use -all or individual flags (see -help)")
	}
	return nil
}

// parseFloatList parses a comma-separated float list ("0.6,0.7").
func parseFloatList(s string) ([]float64, error) {
	if s == "" {
		return nil, nil
	}
	var out []float64
	for _, part := range strings.Split(s, ",") {
		v, err := strconv.ParseFloat(strings.TrimSpace(part), 64)
		if err != nil {
			return nil, err
		}
		out = append(out, v)
	}
	return out, nil
}

// parseIntList parses a comma-separated integer list ("4096,16384").
func parseIntList(s string) ([]int, error) {
	if s == "" {
		return nil, nil
	}
	var out []int
	for _, part := range strings.Split(s, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil {
			return nil, err
		}
		out = append(out, v)
	}
	return out, nil
}

// runCalibrate runs the estimator calibration battery and writes the
// table, plus the optional JSON artifact and generated Go table used to
// refresh the committed internal/lrd calibration.
func runCalibrate(ctx context.Context, seed uint64, seeds int, hs, ns, jsonPath, goPath string) error {
	cfg := experiments.DefaultCalibrationConfig()
	cfg.BaseSeed = seed
	if seeds > 0 {
		cfg.Seeds = seeds
	}
	hlist, err := parseFloatList(hs)
	if err != nil {
		return cli.Usagef("bad -calibrate-hurst: %v", err)
	}
	if hlist != nil {
		cfg.Hs = hlist
	}
	nlist, err := parseIntList(ns)
	if err != nil {
		return cli.Usagef("bad -calibrate-frames: %v", err)
	}
	if nlist != nil {
		cfg.Ns = nlist
	}
	res, err := experiments.Calibrate(ctx, cfg)
	if err != nil {
		return err
	}
	fmt.Println(res.Format())
	for _, out := range []struct {
		path  string
		write func(io.Writer) error
	}{
		{jsonPath, res.WriteJSON},
		{goPath, res.WriteGo},
	} {
		if out.path == "" {
			continue
		}
		f, err := os.Create(out.path)
		if err != nil {
			return err
		}
		if err := out.write(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", out.path)
	}
	return nil
}

// loadOrGenerate reads a binary trace when a path is given, otherwise
// regenerates the synthetic movie.
func loadOrGenerate(path string, frames int, seed uint64) (*experiments.Suite, error) {
	if path == "" {
		return experiments.GenerateSuite(frames, seed)
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return experiments.LoadSuite(f)
}
