// Command vbrlint runs the repo's domain static-analysis suite: ten
// analyzers (determinism, floateq, ctxcheck, wrapcheck, seedplumb,
// goleak, lockguard, atomicmix, wgdiscipline, hotalloc) built purely on
// the standard library's go/ast and go/types, enforcing the
// reproducibility and concurrency invariants the paper's figures and
// the serving stack depend on. Stale //vbrlint:ignore directives —
// suppressions that no longer suppress anything — are reported as
// findings too.
//
//	vbrlint ./...                 # lint the whole module
//	vbrlint -json ./internal/fgn  # machine-readable diagnostics + summary
//	vbrlint -run floateq,ctxcheck ./...
//	vbrlint -tests ./internal/fleet ./internal/server
//
// Exit codes: 0 clean, 1 findings (including stale ignores), 2 usage,
// load or type-check failure.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"vbr/internal/cli"
	"vbr/internal/lint"
	"vbr/internal/obs"
)

func main() {
	os.Exit(cli.Main("vbrlint", run))
}

// errFindings makes findings exit with cli.ExitFailure (1) while load
// and usage problems surface as usage errors (2).
var errFindings = fmt.Errorf("findings reported")

func run(ctx context.Context, args []string, stdout, stderr io.Writer) (retErr error) {
	fs := flag.NewFlagSet("vbrlint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		jsonOut  = fs.Bool("json", false, "emit diagnostics and a per-analyzer summary as JSON")
		runSel   = fs.String("run", "", "comma-separated analyzer subset (default: all)")
		list     = fs.Bool("list", false, "list analyzers and exit")
		modDir   = fs.String("C", "", "module root (default: nearest go.mod above the working directory)")
		withTest = fs.Bool("tests", false, "also lint in-package _test.go files of the matched packages (concurrency analyzers only)")
	)
	ob := cli.RegisterObsFlags(fs)
	fs.Usage = func() {
		fmt.Fprintf(stderr, "usage: vbrlint [-json] [-run names] [-tests] [-C dir] patterns...\n")
		fs.PrintDefaults()
	}
	if err := cli.ParseFlags(fs, args); err != nil {
		return err
	}
	ctx, finish, err := ob.Observe(ctx, stderr)
	if err != nil {
		return err
	}
	defer cli.FinishObs(finish, &retErr)
	scope := obs.From(ctx)
	if *list {
		for _, a := range lint.Analyzers() {
			fmt.Fprintf(stdout, "%-12s %s\n", a.Name, a.Doc)
		}
		return nil
	}
	patterns := fs.Args()
	if len(patterns) == 0 {
		return cli.Usagef("no packages to lint (try vbrlint ./...)")
	}

	analyzers, err := selectAnalyzers(*runSel)
	if err != nil {
		return err
	}

	loader, err := lint.NewLoader(*modDir)
	if err != nil {
		return cli.Usagef("%v", err)
	}
	loader.WithTests = *withTest
	// Load and type-check failures exit 2, distinct from exit 1 for
	// findings: CI can tell "the tree is dirty" from "the tool could
	// not run".
	pkgs, err := loader.Load(patterns...)
	if err != nil {
		return cli.Usagef("%v", err)
	}
	if err := ctx.Err(); err != nil {
		return err
	}

	endLint := scope.Span("lint.run")
	diags := lint.RunAnalyzers(pkgs, analyzers)
	endLint()
	scope.Count("lint.packages", int64(len(pkgs)))
	scope.Count("lint.findings", int64(len(diags)))
	for i := range diags {
		if rel, err := filepath.Rel(loader.ModDir, diags[i].File); err == nil && !strings.HasPrefix(rel, "..") {
			diags[i].File = rel
		}
	}

	if *jsonOut {
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(jsonReport(diags, len(pkgs))); err != nil {
			return fmt.Errorf("vbrlint: encoding diagnostics: %w", err)
		}
	} else {
		for _, d := range diags {
			fmt.Fprintf(stdout, "%s:%d:%d: %s [%s]\n", d.File, d.Line, d.Col, d.Message, d.Analyzer)
		}
		fmt.Fprintf(stdout, "%d finding(s) in %d package(s)\n", len(diags), len(pkgs))
	}
	if len(diags) > 0 {
		return errFindings
	}
	return nil
}

// report is the -json document: the diagnostics plus a per-analyzer
// summary block so dashboards can trend counts without re-aggregating.
type report struct {
	Diagnostics []lint.Diagnostic `json:"diagnostics"`
	Summary     summary           `json:"summary"`
}

type summary struct {
	Findings   int            `json:"findings"`
	Packages   int            `json:"packages"`
	ByAnalyzer map[string]int `json:"by_analyzer"`
}

func jsonReport(diags []lint.Diagnostic, pkgs int) report {
	by := map[string]int{}
	for _, d := range diags {
		by[d.Analyzer]++
	}
	if diags == nil {
		diags = []lint.Diagnostic{}
	}
	return report{
		Diagnostics: diags,
		Summary:     summary{Findings: len(diags), Packages: pkgs, ByAnalyzer: by},
	}
}

func selectAnalyzers(sel string) ([]*lint.Analyzer, error) {
	all := lint.Analyzers()
	if sel == "" {
		return all, nil
	}
	byName := map[string]*lint.Analyzer{}
	for _, a := range all {
		byName[a.Name] = a
	}
	var out []*lint.Analyzer
	for _, name := range strings.Split(sel, ",") {
		name = strings.TrimSpace(name)
		a, ok := byName[name]
		if !ok {
			return nil, cli.Usagef("unknown analyzer %q (known: %s)", name, strings.Join(lint.AnalyzerNames(), ", "))
		}
		out = append(out, a)
	}
	return out, nil
}
