// Command vbrload is the serving benchmark for vbrd: it opens N
// concurrent streaming clients against a running daemon, verifies every
// stream arrives complete, and reports throughput plus time-to-first-
// byte and per-stream latency histograms through the obs registry
// (visible via -metrics-json and -debug-addr).
//
// Examples:
//
//	vbrd -addr :8080 &
//	vbrload -url http://localhost:8080 -clients 8 -frames 10000
//	vbrload -url http://localhost:8080 -clients 8 -metrics-json load.json
package main

import (
	"bufio"
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"time"

	"vbr/internal/cli"
	"vbr/internal/obs"
	"vbr/internal/runner"
)

func main() {
	os.Exit(cli.Main("vbrload", run))
}

// clientStats is one client's accounting (one stream per client in
// the default mode, many in -soak mode).
type clientStats struct {
	streams int
	frames  int
	bytes   int64
}

func run(ctx context.Context, args []string, stdout, stderr io.Writer) (retErr error) {
	fs := flag.NewFlagSet("vbrload", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		baseURL = fs.String("url", "", "base URL of a running vbrd (e.g. http://localhost:8080)")
		clients = fs.Int("clients", 8, "concurrent streaming clients")
		frames  = fs.Int("frames", 10_000, "frames requested per stream")
		seed    = fs.Uint64("seed", 1, "seed of client 0; client i uses seed+i")
		backend = fs.String("backend", "davies-harte", "generator backend to request")
		format  = fs.String("format", "bin", "wire format: bin or ndjson")
		soak    = fs.Duration("soak", 0, "keep each client streaming back-to-back for this long (0 = one stream per client); a stream cut by the deadline itself is not a drop")
	)
	obsFlags := cli.RegisterObsFlags(fs)
	if err := cli.ParseFlags(fs, args); err != nil {
		return err
	}
	if *baseURL == "" {
		return cli.Usagef("vbrload needs -url pointing at a vbrd instance")
	}
	if *clients < 1 || *frames < 1 {
		return cli.Usagef("-clients and -frames must be ≥ 1")
	}
	if *format != "bin" && *format != "ndjson" {
		return cli.Usagef("-format must be bin or ndjson, got %q", *format)
	}

	obsCtx, finish, err := obsFlags.Observe(ctx, stderr)
	if err != nil {
		return err
	}
	defer cli.FinishObs(finish, &retErr)
	scope := obs.From(obsCtx)

	runCtx := obsCtx
	if *soak > 0 {
		// The deadline is the soak budget; soakClient treats a stream the
		// deadline itself cut short as a clean finish, not a drop.
		var cancel context.CancelFunc
		runCtx, cancel = context.WithTimeout(obsCtx, *soak)
		defer cancel()
	}

	//vbrlint:ignore determinism load-test wall clock is display-only; it never feeds generation or simulation
	start := time.Now()
	results := runner.Run(runCtx, *clients, runner.Options{
		Workers: *clients,
		Label:   func(i int) string { return fmt.Sprintf("client-%d", i) },
	}, func(ctx context.Context, i int) (clientStats, error) {
		if *soak > 0 {
			return soakClient(ctx, *baseURL, *frames, *seed, i, *clients, *backend, *format)
		}
		st, err := streamOnce(ctx, *baseURL, *frames, *seed+uint64(i), *backend, *format)
		st.streams = 1
		return st, err
	})
	elapsed := time.Since(start)

	ok, failed := runner.Split(results)
	var totalStreams, totalFrames, totalBytes int64
	for _, r := range ok {
		totalStreams += int64(r.Value.streams)
		totalFrames += int64(r.Value.frames)
		totalBytes += r.Value.bytes
	}
	scope.Count("load.streams.ok", totalStreams)
	scope.Count("load.streams.dropped", int64(len(failed)))
	scope.Count("load.frames", totalFrames)
	scope.Count("load.bytes", totalBytes)
	sec := elapsed.Seconds()
	if sec > 0 {
		scope.SetGauge("load.frames_per_sec", float64(totalFrames)/sec)
		scope.SetGauge("load.mbytes_per_sec", float64(totalBytes)/1e6/sec)
	}

	attempted := totalStreams + int64(len(failed))
	fmt.Fprintf(stdout, "vbrload: %d/%d streams complete, %d frames (%.1f MB) in %v (%.0f frames/s)\n",
		totalStreams, attempted, totalFrames, float64(totalBytes)/1e6, elapsed.Round(time.Millisecond),
		float64(totalFrames)/sec)

	if len(failed) > 0 {
		for _, r := range failed {
			fmt.Fprintf(stderr, "vbrload: %s: %v\n", r.Label, r.Err)
		}
		return fmt.Errorf("%d of %d clients dropped a stream", len(failed), *clients)
	}
	return nil
}

// soakClient streams back-to-back until the soak deadline. Stream i of
// client c uses seed base+c+i*clients, so no two streams in a soak
// repeat a seed. A stream interrupted by the soak deadline itself is a
// clean finish — the acceptance signal is "no stream failed while the
// server was supposed to be up", not "the last stream beat the clock".
func soakClient(ctx context.Context, baseURL string, frames int, seedBase uint64, client, clients int, backend, format string) (clientStats, error) {
	var agg clientStats
	for iter := 0; ; iter++ {
		seed := seedBase + uint64(client) + uint64(iter)*uint64(clients)
		st, err := streamOnce(ctx, baseURL, frames, seed, backend, format)
		agg.frames += st.frames
		agg.bytes += st.bytes
		if err != nil {
			if ctx.Err() != nil {
				return agg, nil
			}
			return agg, fmt.Errorf("stream %d (seed %d): %w", iter, seed, err)
		}
		agg.streams++
		if ctx.Err() != nil {
			return agg, nil
		}
	}
}

// streamOnce runs one full trace download and verifies it is complete.
// The ttfb and stream spans populate the "load.ttfb.seconds" and
// "load.stream.seconds" histograms.
func streamOnce(ctx context.Context, baseURL string, frames int, seed uint64, backend, format string) (clientStats, error) {
	scope := obs.From(ctx)
	endStream := scope.Span("load.stream")
	endTTFB := scope.Span("load.ttfb")

	url := fmt.Sprintf("%s/v1/trace?n=%d&seed=%d&backend=%s&format=%s", baseURL, frames, seed, backend, format)
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return clientStats{}, fmt.Errorf("building request: %w", err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return clientStats{}, fmt.Errorf("opening stream: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return clientStats{}, fmt.Errorf("stream rejected: HTTP %d", resp.StatusCode)
	}

	var st clientStats
	br := bufio.NewReaderSize(resp.Body, 64<<10)
	first := true
	tick := func(n int) {
		if first {
			endTTFB()
			first = false
		}
		st.bytes += int64(n)
	}
	if format == "bin" {
		buf := make([]byte, 8<<10)
		for {
			n, err := br.Read(buf)
			if n > 0 {
				tick(n)
			}
			if errors.Is(err, io.EOF) {
				break
			}
			if err != nil {
				return st, fmt.Errorf("mid-stream after %d bytes: %w", st.bytes, err)
			}
		}
		if st.bytes%8 != 0 {
			return st, fmt.Errorf("truncated frame: %d bytes is not a multiple of 8", st.bytes)
		}
		st.frames = int(st.bytes / 8)
	} else {
		for {
			line, err := br.ReadBytes('\n')
			if len(line) > 0 {
				tick(len(line))
				st.frames++
			}
			if errors.Is(err, io.EOF) {
				break
			}
			if err != nil {
				return st, fmt.Errorf("mid-stream after %d frames: %w", st.frames, err)
			}
		}
	}
	if st.frames != frames {
		return st, fmt.Errorf("dropped stream: got %d of %d frames", st.frames, frames)
	}
	endStream()
	scope.Count("load.client.frames", int64(st.frames))
	return st, nil
}
