// Package vbr is a Go implementation of the VBR video traffic analysis,
// modeling and generation system of Garrett & Willinger, "Analysis,
// Modeling and Generation of Self-Similar VBR Video Traffic"
// (SIGCOMM 1994).
//
// The package is a facade over the internal subsystems:
//
//   - Trace representation and the intraframe DCT/RLE/Huffman coder that
//     produces bandwidth traces from (synthetic) video (§2 of the paper).
//   - The statistical toolkit: marginal distribution fitting with the
//     hybrid Gamma/Pareto model, autocorrelation, periodogram, and four
//     Hurst-parameter estimators (§3).
//   - The four-parameter (μ_Γ, σ_Γ, m_T, H) source model: exact Hosking
//     fractional ARIMA(0, d, 0) generation with the Eq. 13 marginal
//     transform, plus the Fig. 16 ablation variants (§4).
//   - The trace-driven FIFO queueing simulator with multiplexing,
//     capacity search, Q–C tradeoff curves and statistical multiplexing
//     gain analysis (§5).
//   - A cross-request generation cache (GenPool) and a parallel batch
//     engine (Model.GenerateBatch) that amortize the seed-independent
//     precomputations — Hosking coefficient schedules, Davies–Harte
//     eigenvalues, Eq. 13 mapping tables — across requests without
//     changing a single output bit.
//
// # Context-first convention
//
// Every operation that can run long takes a context in its primary,
// ...Ctx-suffixed form (FitCtx, Model.GenerateCtx, OpenStreamCtx,
// QCCurveCtx, ...): cancellation and deadlines propagate into the
// O(n²) recursions and simulation sweeps, and the context's obs scope
// collects metrics. The context-free spellings remain for call sites
// that genuinely have no context, and each is equivalent to calling
// its Ctx form with context.Background().
//
// Quick start:
//
//	ctx := context.Background()
//	tr, err := vbr.GenerateMovie(vbr.DefaultMovieConfig()) // empirical substitute
//	model, err := vbr.FitCtx(ctx, tr.Frames, vbr.DefaultFitOptions())
//	frames, err := model.GenerateCtx(ctx, 171000, vbr.DefaultGenOptions())
//
// To generate many traces, or many requests with shared parameters,
// attach a pool and let the precomputations be paid once:
//
//	pool := vbr.NewGenPool(0) // default 256 MiB budget
//	opts := vbr.DefaultGenOptions()
//	opts.Pool = pool
//	traces, err := model.GenerateBatch(ctx, 16, 171000, opts)
package vbr

import (
	"context"
	"io"

	"vbr/internal/arma"
	"vbr/internal/backend"
	"vbr/internal/core"
	"vbr/internal/dist"
	"vbr/internal/errs"
	"vbr/internal/genpool"
	"vbr/internal/lrd"
	"vbr/internal/queue"
	"vbr/internal/scenes"
	"vbr/internal/source"
	"vbr/internal/stats"
	"vbr/internal/stream"
	"vbr/internal/synth"
	"vbr/internal/trace"
)

// Trace is a VBR video bandwidth trace (bytes per frame, optionally bytes
// per slice).
type Trace = trace.Trace

// ReadTraceBinary reads a trace in the package's binary format.
func ReadTraceBinary(r io.Reader) (*Trace, error) { return trace.ReadBinary(r) }

// ReadTraceCSV reads a "frame,bytes" CSV trace.
func ReadTraceCSV(r io.Reader, frameRate float64) (*Trace, error) {
	return trace.ReadCSV(r, frameRate)
}

// MovieConfig parameterizes the synthetic scene-structured movie used as
// the empirical substitute for the paper's Star Wars trace.
type MovieConfig = synth.Config

// MovieEffect is a deterministic special-effects burst in the synthetic
// movie (e.g. the "jump to hyperspace" peak of Fig. 1).
type MovieEffect = synth.Effect

// DefaultMovieConfig is calibrated to Tables 1–2 of the paper.
func DefaultMovieConfig() MovieConfig { return synth.DefaultConfig() }

// GenerateMovie synthesizes the empirical-substitute VBR trace.
func GenerateMovie(cfg MovieConfig) (*Trace, error) { return synth.Generate(cfg) }

// Model is the paper's four-parameter VBR video source model
// (μ_Γ, σ_Γ, m_T, H).
type Model = core.Model

// FitOptions controls model estimation from a trace.
type FitOptions = core.FitOptions

// DefaultFitOptions mirrors the paper's estimation procedure.
func DefaultFitOptions() FitOptions { return core.DefaultFitOptions() }

// FitCtx estimates the four model parameters from a frame-size series:
// μ_Γ and σ_Γ by sample moments, m_T by regression on the log-log CCDF
// tail, H by the aggregated Whittle estimator (§3.2.3). Cancellation is
// checked between estimation stages.
func FitCtx(ctx context.Context, frames []float64, opts FitOptions) (Model, error) {
	return core.FitCtx(ctx, frames, opts)
}

// Fit is equivalent to FitCtx(context.Background(), ...).
func Fit(frames []float64, opts FitOptions) (Model, error) { return core.Fit(frames, opts) }

// GenOptions controls synthetic traffic generation, including the
// optional Pool that shares precomputations across calls.
type GenOptions = core.GenOptions

// Backend selects the fGn Gaussian engine behind every generation
// path — batch, streaming and the synthetic movie backbone:
//
//   - BackendHosking: the paper's exact O(n²) recursion, the bitwise
//     reference.
//   - BackendDaviesHarte: exact circulant embedding, O(n log n).
//   - BackendPaxson: FFT spectral approximation (Paxson 1997),
//     O(n log n) with the smallest constants; approximate but passes
//     the committed fidelity battery.
//   - BackendAuto: policy choice — exact for short batch runs, Paxson
//     for long or streamed ones.
type Backend = backend.Backend

// Backend choices.
const (
	BackendHosking     = backend.Hosking
	BackendDaviesHarte = backend.DaviesHarte
	BackendPaxson      = backend.Paxson
	BackendAuto        = backend.Auto
)

// ParseBackend resolves a backend name ("hosking", "davies-harte",
// "paxson", "auto" and common aliases) to its Backend; unknown names
// return an error matching ErrUnknownBackend.
func ParseBackend(s string) (Backend, error) { return backend.Parse(s) }

// Generator selects the LRD Gaussian engine.
//
// Deprecated: Generator is an alias of Backend kept for source
// compatibility; use Backend.
type Generator = core.Generator

// Deprecated generator spellings; use BackendHosking and
// BackendDaviesHarte.
const (
	HoskingExact    = core.HoskingExact
	DaviesHarteFast = core.DaviesHarteFast
)

// DefaultGenOptions mirrors the paper's generation procedure (Hosking,
// 10,000-point marginal table).
func DefaultGenOptions() GenOptions { return core.DefaultGenOptions() }

// GammaPareto is the paper's hybrid marginal distribution F_{Γ/P}.
type GammaPareto = dist.GammaPareto

// GammaParetoParams are the marginal's three parameters (μ_Γ, σ_Γ, m_T)
// with their names attached.
type GammaParetoParams = dist.GammaParetoParams

// NewGammaParetoFromParams constructs the hybrid marginal.
func NewGammaParetoFromParams(p GammaParetoParams) (*GammaPareto, error) {
	return dist.NewGammaParetoFromParams(p)
}

// Distribution is the common interface of all marginal models
// (Normal, Lognormal, Gamma, Pareto, Gamma/Pareto, ...).
type Distribution = dist.Distribution

// HurstEstimates bundles the Table 3 estimators' results, including the
// calibrated error bars of the five primary estimators.
type HurstEstimates = lrd.Estimates

// HurstBar is one estimator's calibrated report: the raw point
// estimate, the bias-corrected value, and the ±1.96σ half-width, both
// read off the committed calibration battery.
type HurstBar = lrd.HBar

// MAVARResult is the modified-Allan-variance estimate of H: the
// per-octave Mod σ²_y(τ) plot points, the fitted range and the slope-
// derived Ĥ.
type MAVARResult = lrd.MAVARResult

// OnlineMAVAR is the streaming form of the MAVAR estimator: feed
// observations one at a time in O(1) memory and read Ĥ at any point.
// Feeding a whole series through it is exactly EstimateMAVAR.
type OnlineMAVAR = lrd.OnlineMAVAR

// EstimateHurst runs every §3.2.3 estimator on a series; aggM is the
// aggregation level for the aggregated variants (hundreds, as in the
// paper).
func EstimateHurst(xs []float64, aggM int) (*HurstEstimates, error) {
	return lrd.EstimateAll(xs, aggM)
}

// EstimateMAVAR estimates H from the modified Allan variance of the
// series (a post-paper estimator: octave-spaced log–log regression of
// Mod σ²_y(τ), H = 1 + µ/2). Zero fitLo/fitHi select the calibrated
// default fit range.
func EstimateMAVAR(xs []float64, fitLo, fitHi int) (*MAVARResult, error) {
	return lrd.MAVAR(xs, fitLo, fitHi)
}

// NewOnlineMAVAR builds a streaming MAVAR estimator tracking octaves
// up to maxTau observations.
func NewOnlineMAVAR(maxTau int) *OnlineMAVAR { return lrd.NewOnlineMAVAR(maxTau) }

// MaxMavarTau returns the largest octave-spaced observation interval
// worth tracking for a series of n frames — the natural maxTau argument
// for NewOnlineMAVAR when the stream length is known in advance.
func MaxMavarTau(n int) int { return lrd.MaxMavarTau(n) }

// SummaryStats are the Table 2 descriptive statistics.
type SummaryStats = stats.Summary

// Summarize computes Table 2 statistics for a series.
func Summarize(xs []float64) (SummaryStats, error) { return stats.Summarize(xs) }

// Workload is an arrival process for the queueing simulator.
type Workload = queue.Workload

// SimOptions controls queue simulation instrumentation.
type SimOptions = queue.Options

// SimResult summarizes a queue simulation run.
type SimResult = queue.Result

// Simulate runs the fluid FIFO queue of Fig. 13: capacity in bits/s,
// buffer in bytes.
func Simulate(w Workload, capacityBps, bufferBytes float64, opts SimOptions) (*SimResult, error) {
	return queue.Simulate(w, capacityBps, bufferBytes, opts)
}

// Mux multiplexes N randomly lagged copies of a trace (§5.1).
type Mux = queue.Mux

// MuxConfig parameterizes a multiplexer: the shared trace, the number
// of lagged copies, the paper's minimum pairwise lag and the seed for
// lag-combination draws.
type MuxConfig = queue.MuxConfig

// NewMuxFromConfig constructs a multiplexer with the paper's
// minimum-lag rule.
func NewMuxFromConfig(cfg MuxConfig) (*Mux, error) {
	return queue.NewMuxFromConfig(cfg)
}

// Aggregator is the multiplexer contract the capacity search and Q–C
// sweeps consume; Mux and SourceMux both implement it.
type Aggregator = queue.Aggregator

// SourceMux multiplexes a heterogeneous scenario-zoo population
// (independently seeded model replications instead of lagged trace
// copies) behind the same Aggregator contract as Mux.
type SourceMux = queue.SourceMux

// SourceMuxConfig parameterizes a scenario-zoo multiplexer.
type SourceMuxConfig = queue.SourceMuxConfig

// NewSourceMuxFromConfig validates and constructs a zoo multiplexer.
func NewSourceMuxFromConfig(cfg SourceMuxConfig) (*SourceMux, error) {
	return queue.NewSourceMuxFromConfig(cfg)
}

// LossTarget is a QOS target for capacity searches.
type LossTarget = queue.LossTarget

// QCPoint is one point of a Fig. 14 Q–C tradeoff curve.
type QCPoint = queue.QCPoint

// QCCurveConfig parameterizes a Q–C sweep.
type QCCurveConfig = queue.QCCurveConfig

// QCCurve computes a Fig. 14 curve.
func QCCurve(cfg QCCurveConfig) ([]QCPoint, error) { return queue.QCCurve(cfg) }

// MinCapacityFn bisects for the minimum capacity meeting a loss target,
// given any monotone loss(capacity) function — the primitive under
// QCCurve and SMG, exported for custom allocation studies.
func MinCapacityFn(loss func(capacityBps float64) (float64, error), loBps, hiBps float64, target LossTarget) (float64, error) {
	return queue.MinCapacity(loss, loBps, hiBps, target)
}

// Knee locates a Q–C curve's knee, the paper's natural operating point.
func Knee(points []QCPoint) (QCPoint, error) { return queue.Knee(points) }

// SMGPoint and SMGConfig support the Fig. 15 statistical multiplexing
// gain analysis.
type (
	SMGPoint  = queue.SMGPoint
	SMGConfig = queue.SMGConfig
)

// SMG computes required per-source allocation against N (Fig. 15).
func SMG(cfg SMGConfig) ([]SMGPoint, error) { return queue.SMG(cfg) }

// RealizedGain is the fraction of peak-to-mean gain achieved (72% at
// N = 5 in the paper).
func RealizedGain(perSourceBps, peakBps, meanBps float64) (float64, error) {
	return queue.RealizedGain(perSourceBps, peakBps, meanBps)
}

// ------------------------------------------------------------------
// Extensions beyond the paper's evaluation (its stated future work).

// ARMA is a stationary ARMA(p, q) short-range filter; composing it with
// the model's LRD backbone yields fractional ARIMA(p, d, q) traffic
// (Model.GenerateWithARMA) — the §4 "ARMA filter" augmentation.
type ARMA = arma.Model

// MarkovChain is a level-modulating Markov chain for scene-like
// short-range structure (Model.GenerateMarkovModulated).
type MarkovChain = arma.MarkovChain

// SceneChain builds a three-state quiet/normal/action chain with the
// given mean sojourn (in frames) and level spread.
func SceneChain(meanSojourn, spread float64) (*MarkovChain, error) {
	return arma.SceneChain(meanSojourn, spread)
}

// FitAR estimates AR(p) coefficients from data (Yule–Walker).
func FitAR(xs []float64, p int) (ARMA, float64, error) { return arma.FitAR(xs, p) }

// LayeredWorkload is a two-priority (base + enhancement) arrival
// process for the §5.3 layered-coding study.
type LayeredWorkload = queue.LayeredWorkload

// LayeredResult reports per-layer loss from the priority queue.
type LayeredResult = queue.LayeredResult

// SplitLayers divides a workload into base and enhancement layers.
func SplitLayers(w Workload, baseFrac float64) (LayeredWorkload, error) {
	return queue.SplitLayers(w, baseFrac)
}

// SimulatePriority runs the two-priority partial-buffer-sharing queue:
// enhancement traffic is admitted only below thresholdBytes of backlog.
func SimulatePriority(lw LayeredWorkload, capacityBps, bufferBytes, thresholdBytes float64) (*LayeredResult, error) {
	return queue.SimulatePriority(lw, capacityBps, bufferBytes, thresholdBytes)
}

// CBRRate returns the constant (circuit) rate needed to carry the
// workload within a smoothing-delay budget — the CBR side of the paper's
// CBR-vs-VBR motivation.
func CBRRate(w Workload, maxDelay float64) (float64, error) {
	return queue.CBRRate(w, maxDelay)
}

// ZeroLossCapacityExact computes the exact zero-loss capacity for a
// buffer, by the convex-hull max-burst dual of the fluid queue.
func ZeroLossCapacityExact(w Workload, bufferBytes float64) (float64, error) {
	return queue.ZeroLossCapacityExact(w, bufferBytes)
}

// MarginalAllocation prices bufferless (rate-envelope) admission from
// the N-fold convolution of the per-source marginal — the §4.2
// convolution table applied to connection admission control.
func MarginalAllocation(d Distribution, n int, intervalSec, eps float64, tablePts int) (float64, error) {
	return queue.MarginalAllocation(d, n, intervalSec, eps, tablePts)
}

// AdmissibleSources returns the largest N admissible at a capacity under
// the bufferless overflow budget eps.
func AdmissibleSources(d Distribution, capacityBps, intervalSec, eps float64, tablePts, maxN int) (int, error) {
	return queue.AdmissibleSources(d, capacityBps, intervalSec, eps, tablePts, maxN)
}

// SceneConfig parameterizes the scene-change detector (the §4.2 open
// question: measuring and representing scene structure).
type SceneConfig = scenes.Config

// DetectedScene is one detected scene segment with level statistics.
type DetectedScene = scenes.Scene

// DefaultSceneConfig returns detector defaults tuned on the synthetic
// movie's ground truth.
func DefaultSceneConfig() SceneConfig { return scenes.DefaultConfig() }

// DetectScenes segments a frame-size series into scenes.
func DetectScenes(frames []float64, cfg SceneConfig) ([]DetectedScene, error) {
	return scenes.Detect(frames, cfg)
}

// SceneCuts returns detected scene-change positions.
func SceneCuts(frames []float64, cfg SceneConfig) ([]int, error) {
	return scenes.Cuts(frames, cfg)
}

// ------------------------------------------------------------------
// Resilient execution: error taxonomy, cancellation, fault injection.
//
// Long-running entry points have context-aware variants on their own
// types (Model.GenerateCtx, Mux.AverageLossCtx, QCCurveCtx below); the
// plain forms are equivalent to passing context.Background(). Failures
// across the package wrap the sentinel errors re-exported here, so
// callers classify them with errors.Is rather than string matching.
// The panic-isolating parallel runner (internal/runner) is generic and
// cannot be re-exported as a type alias under this module's Go version;
// its behavior surfaces through SimResult-style combo error reporting
// on Mux.AverageLossCtx.

// Sentinel errors, matchable with errors.Is. Cancellation errors also
// match context.Canceled / context.DeadlineExceeded.
var (
	ErrCancelled          = errs.ErrCancelled
	ErrInvalidTrace       = errs.ErrInvalidTrace
	ErrInvalidModel       = errs.ErrInvalidModel
	ErrInvalidWorkload    = errs.ErrInvalidWorkload
	ErrInfeasibleLags     = errs.ErrInfeasibleLags
	ErrCheckpointVersion  = errs.ErrCheckpointVersion
	ErrCheckpointCorrupt  = errs.ErrCheckpointCorrupt
	ErrCheckpointMismatch = errs.ErrCheckpointMismatch
	ErrTargetUnreachable  = errs.ErrTargetUnreachable
	ErrAllCombosFailed    = errs.ErrAllCombosFailed
	ErrInvalidSeries      = errs.ErrInvalidSeries
	ErrUnknownModel       = errs.ErrUnknownModel
	ErrUnknownBackend     = errs.ErrUnknownBackend
)

// QCCurveCtx computes a Fig. 14 curve under a context: cancellation
// returns the completed points alongside an error matching ErrCancelled,
// and cfg.Resume skips grid points carried over from a previous partial
// run.
func QCCurveCtx(ctx context.Context, cfg QCCurveConfig) ([]QCPoint, error) {
	return queue.QCCurveCtx(ctx, cfg)
}

// SMGCtx computes the Fig. 15 analysis under a context.
func SMGCtx(ctx context.Context, cfg SMGConfig) ([]SMGPoint, error) {
	return queue.SMGCtx(ctx, cfg)
}

// MinCapacityFnCtx is MinCapacityFn under a context, checked between
// bisection iterations.
func MinCapacityFnCtx(ctx context.Context, loss func(capacityBps float64) (float64, error), loBps, hiBps float64, target LossTarget) (float64, error) {
	return queue.MinCapacityCtx(ctx, loss, loBps, hiBps, target)
}

// FaultEpisode is one capacity-degradation or outage episode of a
// deterministic server fault schedule.
type FaultEpisode = queue.FaultEpisode

// FaultSchedule is a reproducible schedule of server faults applied to
// the FIFO server during simulation (SimOptions.Faults).
type FaultSchedule = queue.FaultSchedule

// FaultConfig parameterizes random fault schedule generation.
type FaultConfig = queue.FaultConfig

// GenerateFaults draws a deterministic fault schedule over n arrival
// intervals: identical seeds and configs yield identical schedules.
func GenerateFaults(seed uint64, n int, cfg FaultConfig) (*FaultSchedule, error) {
	return queue.GenerateFaults(seed, n, cfg)
}

// StreamConfig parameterizes incremental block-based trace generation:
// the model, total length, block size, Davies–Harte overlap, seed and
// backend. Zero tuning fields select defaults.
type StreamConfig = stream.Config

// StreamBackend selects the Gaussian engine behind a stream.
//
// Deprecated: StreamBackend is an alias of Backend kept for source
// compatibility; use Backend.
type StreamBackend = stream.Backend

// Deprecated stream-backend spellings; use BackendHosking and
// BackendDaviesHarte (streams also accept BackendPaxson and
// BackendAuto).
const (
	StreamHosking     = stream.Hosking
	StreamDaviesHarte = stream.DaviesHarte
)

// BlockSource produces consecutive frame-size blocks under bounded
// memory; the returned slice is valid only until the next call.
type BlockSource = stream.BlockSource

// Stream is a BlockSource over the full §4 pipeline (LRD Gaussian →
// Eq. 13 marginal), validated online by a running mean/σ and a
// streaming variance–time Ĥ probe.
type Stream = stream.Stream

// StreamProbe is the online-validation snapshot of a Stream.
type StreamProbe = stream.Probe

// OpenStreamCtx builds a Stream for cfg. The context bounds the setup
// work — for a pooled Hosking stream that includes extending the shared
// coefficient schedule — and its obs scope receives cache counters.
func OpenStreamCtx(ctx context.Context, cfg StreamConfig) (*Stream, error) {
	return stream.OpenCtx(ctx, cfg)
}

// OpenStream is equivalent to OpenStreamCtx(context.Background(), cfg).
func OpenStream(cfg StreamConfig) (*Stream, error) { return stream.Open(cfg) }

// CollectStream drains a BlockSource into one materialized series, for
// consumers that need the whole trace at once.
func CollectStream(ctx context.Context, src BlockSource) ([]float64, error) {
	return stream.Collect(ctx, src)
}

// ------------------------------------------------------------------
// Scenario zoo: pluggable per-frame traffic sources.

// Source is the scenario-zoo contract: a deterministic per-frame byte
// supplier with Reset(seed), Next(ctx) and self-describing Meta.
type Source = source.Source

// SourceMeta describes a source: model name, mean/peak rates, frame
// rate and frame-type tags.
type SourceMeta = source.Meta

// SourceParams are a model's named numeric parameters.
type SourceParams = source.Params

// SourceSpec is one parsed term of a mix specification.
type SourceSpec = source.Spec

// MixSource sums the per-frame bytes of member sources sharing a
// frame rate.
type MixSource = source.Mix

// SourceModels lists the registered zoo models, sorted.
func SourceModels() []string { return source.Names() }

// NewSource builds a source from a spec like "gop:cv=0.3" or a mix
// spec like "farima*3+onoff*2". Unknown models return an error
// matching ErrUnknownModel.
func NewSource(spec string, seed uint64) (Source, error) { return source.New(spec, seed) }

// NewSourcePopulation expands a mix spec (honoring "+" terms and
// *count multipliers) into independently seeded sources — the natural
// input for SourceMuxConfig.Sources.
func NewSourcePopulation(spec string, seed uint64) ([]Source, error) {
	specs, err := source.ParseSpec(spec)
	if err != nil {
		return nil, err
	}
	return source.NewPopulation(specs, seed)
}

// SourceBlockAdapter drives any zoo Source as a BlockSource with an
// online Hurst/mean probe attached.
type SourceBlockAdapter = source.BlockAdapter

// SourceBlocks adapts src to n frames of block-sized output.
func SourceBlocks(src Source, n, block int) (*SourceBlockAdapter, error) {
	return source.Blocks(src, n, block)
}

// SourceSubSeed derives the seed of population member i from a base
// seed, the same splitmix64 schedule used by batch generation.
func SourceSubSeed(base uint64, i int) uint64 { return source.SubSeed(base, i) }

// ------------------------------------------------------------------
// Cross-request generation cache and parallel batch engine.

// GenPool is a concurrency-safe, byte-bounded cache for the generator's
// seed-independent precomputations: Hosking coefficient schedules
// (keyed by H, with prefix reuse across lengths), Davies–Harte
// eigenvalue vectors (keyed by H and block length) and Eq. 13 marginal
// mapping tables (keyed by the marginal parameters and resolution).
// Attach one to GenOptions.Pool or StreamConfig.Pool; generated output
// is bitwise-identical with or without a pool.
type GenPool = genpool.Pool

// GenPoolStats is a point-in-time view of a pool's traffic and
// residency.
type GenPoolStats = genpool.Stats

// DefaultGenPoolBytes is the default pool budget (256 MiB).
const DefaultGenPoolBytes = genpool.DefaultMaxBytes

// NewGenPool builds a generation cache bounded to maxBytes of resident
// precomputation; maxBytes ≤ 0 selects DefaultGenPoolBytes.
func NewGenPool(maxBytes int64) *GenPool { return genpool.New(maxBytes) }

// BatchSeed derives the seed of trace i in a Model.GenerateBatch run
// from the batch seed, so any single batch member can be regenerated
// solo with Generate.
func BatchSeed(base uint64, i int) uint64 { return core.BatchSeed(base, i) }
