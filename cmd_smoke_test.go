package vbr

import (
	"bytes"
	"encoding/json"
	"errors"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"
)

// The command binaries are built once into a shared temp dir and then
// exercised end to end: generation → analysis → simulation round trips
// through real files and flags.
var (
	buildOnce sync.Once
	binDir    string
	buildErr  error
)

func binaries(t *testing.T) string {
	t.Helper()
	buildOnce.Do(func() {
		binDir, buildErr = os.MkdirTemp("", "vbrbin")
		if buildErr != nil {
			return
		}
		for _, cmd := range []string{"vbrtrace", "vbranalyze", "vbrgen", "vbrsim", "vbrexperiments", "vbrlint", "vbrd", "vbrload", "vbrfleet", "benchjson"} {
			out, err := exec.Command("go", "build", "-o", filepath.Join(binDir, cmd), "./cmd/"+cmd).CombinedOutput()
			if err != nil {
				buildErr = err
				buildErr = &buildError{cmd: cmd, out: string(out), err: err}
				return
			}
		}
	})
	if buildErr != nil {
		t.Fatal(buildErr)
	}
	return binDir
}

// TestMain removes the shared binary directory after all tests.
func TestMain(m *testing.M) {
	code := m.Run()
	if binDir != "" {
		os.RemoveAll(binDir)
	}
	os.Exit(code)
}

type buildError struct {
	cmd string
	out string
	err error
}

func (e *buildError) Error() string {
	return "building " + e.cmd + ": " + e.err.Error() + "\n" + e.out
}

func runCmd(t *testing.T, name string, args ...string) string {
	t.Helper()
	out, err := exec.Command(filepath.Join(binaries(t), name), args...).CombinedOutput()
	if err != nil {
		t.Fatalf("%s %v failed: %v\n%s", name, args, err, out)
	}
	return string(out)
}

func TestCLITraceAnalyzeRoundTrip(t *testing.T) {
	if testing.Short() {
		t.Skip("CLI smoke tests skipped in -short mode")
	}
	dir := t.TempDir()
	traceFile := filepath.Join(dir, "t.bin")
	csvFile := filepath.Join(dir, "t.csv")

	out := runCmd(t, "vbrtrace", "-frames", "8000", "-o", traceFile, "-csv", csvFile)
	if !strings.Contains(out, "avg bandwidth") {
		t.Errorf("vbrtrace output missing summary:\n%s", out)
	}
	if fi, err := os.Stat(traceFile); err != nil || fi.Size() == 0 {
		t.Fatalf("binary trace not written: %v", err)
	}
	if fi, err := os.Stat(csvFile); err != nil || fi.Size() == 0 {
		t.Fatalf("CSV trace not written: %v", err)
	}

	out = runCmd(t, "vbranalyze", "-in", traceFile, "-table1", "-table2", "-fig11")
	for _, want := range []string{"Table 1", "Table 2", "variance-time"} {
		if !strings.Contains(out, want) {
			t.Errorf("vbranalyze output missing %q:\n%s", want, out)
		}
	}

	out = runCmd(t, "vbrsim", "-in", traceFile, "-point", "-n", "2", "-capacity", "12e6")
	if !strings.Contains(out, "P_l") {
		t.Errorf("vbrsim output missing loss report:\n%s", out)
	}
}

func TestCLIGenVariants(t *testing.T) {
	if testing.Short() {
		t.Skip("CLI smoke tests skipped in -short mode")
	}
	dir := t.TempDir()
	for _, variant := range []string{"full", "gaussian", "iid"} {
		outFile := filepath.Join(dir, variant+".bin")
		out := runCmd(t, "vbrgen", "-n", "3000", "-variant", variant, "-o", outFile)
		if !strings.Contains(out, "generated 3000 frames") {
			t.Errorf("variant %s: missing summary:\n%s", variant, out)
		}
		if fi, err := os.Stat(outFile); err != nil || fi.Size() == 0 {
			t.Errorf("variant %s: trace not written", variant)
		}
	}
	// The Hosking path (the paper's algorithm) on a short series, via
	// the deprecated -generator spelling.
	out := runCmd(t, "vbrgen", "-n", "2000", "-generator", "hosking")
	if !strings.Contains(out, "variance-time H") {
		t.Errorf("hosking run missing verification:\n%s", out)
	}
	// The FFT-approximate Paxson backend and the Auto policy (which at
	// this length picks the exact engine) both run end to end.
	for _, bk := range []string{"paxson", "auto"} {
		out := runCmd(t, "vbrgen", "-n", "3000", "-backend", bk)
		if !strings.Contains(out, "generated 3000 frames") {
			t.Errorf("-backend %s run missing summary:\n%s", bk, out)
		}
	}
}

func TestCLICodecModes(t *testing.T) {
	if testing.Short() {
		t.Skip("CLI smoke tests skipped in -short mode")
	}
	out := runCmd(t, "vbrtrace", "-mode", "codec", "-frames", "120", "-width", "64", "-height", "64", "-train", "8")
	if !strings.Contains(out, "mean/frame") {
		t.Errorf("codec mode missing summary:\n%s", out)
	}
	out = runCmd(t, "vbrtrace", "-mode", "interframe", "-frames", "120", "-width", "64", "-height", "64", "-train", "12", "-gop", "6")
	if !strings.Contains(out, "mean/frame") {
		t.Errorf("interframe mode missing summary:\n%s", out)
	}
}

func TestCLIPlot(t *testing.T) {
	if testing.Short() {
		t.Skip("CLI smoke tests skipped in -short mode")
	}
	out := runCmd(t, "vbranalyze", "-frames", "8000", "-fig11", "-plot")
	if !strings.Contains(out, "|") || !strings.Contains(out, "log10 m") {
		t.Errorf("plot output missing canvas:\n%s", out)
	}
}

// runCmdExit runs a binary expecting it to fail, returning its exit code
// and combined output.
func runCmdExit(t *testing.T, name string, args ...string) (int, string) {
	t.Helper()
	out, err := exec.Command(filepath.Join(binaries(t), name), args...).CombinedOutput()
	if err == nil {
		return 0, string(out)
	}
	var ee *exec.ExitError
	if !errors.As(err, &ee) {
		t.Fatalf("%s %v: %v\n%s", name, args, err, out)
	}
	return ee.ExitCode(), string(out)
}

// TestCLIExitCodes pins the exit-code contract shared by all binaries:
// 0 on success, 2 on usage errors, so shell pipelines and CI scripts can
// distinguish "bad invocation" from "the computation failed".
func TestCLIExitCodes(t *testing.T) {
	if testing.Short() {
		t.Skip("CLI smoke tests skipped in -short mode")
	}
	cases := []struct {
		name string
		args []string
		want int
		msg  string
	}{
		{"vbrgen", []string{"-no-such-flag"}, 2, "flag provided but not defined"},
		{"vbrgen", []string{"-generator", "bogus"}, 2, "names no engine"},
		{"vbrgen", []string{"-backend", "bogus"}, 2, "names no engine"},
		{"vbrgen", []string{"-backend", "paxson", "-generator", "hosking"}, 2, "deprecated alias"},
		{"vbrgen", []string{"-resume"}, 2, "-resume requires -checkpoint"},
		{"vbrgen", []string{"-checkpoint", "x.ckpt"}, 2, "-checkpoint requires"},
		{"vbrgen", []string{"-backend", "paxson", "-checkpoint", "x.ckpt"}, 2, "-checkpoint requires -backend hosking"},
		{"vbrsim", []string{"-frames", "2000"}, 2, "no simulation selected"},
		{"vbrsim", []string{"-frames", "2000", "-faults"}, 2, "-faults applies to -point"},
		{"vbrsim", []string{"-backend", "fourier", "-point"}, 2, "names no engine"},
		{"vbrsim", []string{"-backend", "paxson", "-in", "x.bin", "-point"}, 2, "conflicts with -in"},
		{"vbranalyze", []string{"-frames", "2000"}, 2, "no analysis selected"},
		{"vbrtrace", []string{"-mode", "bogus", "-frames", "10"}, 2, "unknown mode"},
		{"vbrtrace", []string{"-backend", "bogus", "-frames", "10"}, 2, "names no engine"},
		{"vbrexperiments", []string{"-scale", "bogus"}, 2, "unknown scale"},
	}
	for _, c := range cases {
		code, out := runCmdExit(t, c.name, c.args...)
		if code != c.want {
			t.Errorf("%s %v: exit %d, want %d\n%s", c.name, c.args, code, c.want, out)
		}
		if !strings.Contains(out, c.msg) {
			t.Errorf("%s %v: output missing %q:\n%s", c.name, c.args, c.msg, out)
		}
	}
	// -h prints usage and exits 0, matching the flag package convention.
	if code, out := runCmdExit(t, "vbrgen", "-h"); code != 0 || !strings.Contains(out, "Usage") {
		t.Errorf("vbrgen -h: exit %d\n%s", code, out)
	}
}

// TestCLILint pins the vbrlint contract: exit 0 on the repo itself
// (the tree stays lint-clean), exit 1 with file:line diagnostics on the
// fixture packages, and valid JSON under -json.
func TestCLILint(t *testing.T) {
	if testing.Short() {
		t.Skip("CLI smoke tests skipped in -short mode")
	}
	out := runCmd(t, "vbrlint", "./...")
	if !strings.Contains(out, "0 finding(s)") {
		t.Errorf("vbrlint ./... should report a clean tree:\n%s", out)
	}

	code, out := runCmdExit(t, "vbrlint", "./internal/lint/testdata/src/floateq")
	if code != 1 {
		t.Errorf("vbrlint on fixtures: exit %d, want 1\n%s", code, out)
	}
	if !strings.Contains(out, "fixture.go:5:11:") || !strings.Contains(out, "[floateq]") {
		t.Errorf("vbrlint diagnostics missing file:line anchors:\n%s", out)
	}

	code, out = runCmdExit(t, "vbrlint", "-json", "./internal/lint/testdata/src/seedplumb")
	if code != 1 {
		t.Errorf("vbrlint -json on fixtures: exit %d, want 1\n%s", code, out)
	}
	jsonStart := strings.Index(out, "{")
	jsonEnd := strings.LastIndex(out, "}")
	if jsonStart < 0 || jsonEnd < jsonStart {
		t.Fatalf("vbrlint -json produced no JSON object:\n%s", out)
	}
	var rep struct {
		Diagnostics []struct {
			Analyzer string `json:"analyzer"`
			File     string `json:"file"`
			Line     int    `json:"line"`
			Message  string `json:"message"`
		} `json:"diagnostics"`
		Summary struct {
			Findings   int            `json:"findings"`
			Packages   int            `json:"packages"`
			ByAnalyzer map[string]int `json:"by_analyzer"`
		} `json:"summary"`
	}
	if err := json.Unmarshal([]byte(out[jsonStart:jsonEnd+1]), &rep); err != nil {
		t.Fatalf("vbrlint -json output is not valid JSON: %v\n%s", err, out)
	}
	if len(rep.Diagnostics) == 0 || rep.Diagnostics[0].Analyzer != "seedplumb" || rep.Diagnostics[0].Line == 0 {
		t.Errorf("vbrlint -json diagnostics malformed: %+v", rep.Diagnostics)
	}
	if rep.Summary.Findings != len(rep.Diagnostics) || rep.Summary.Packages != 1 {
		t.Errorf("vbrlint -json summary inconsistent: %+v", rep.Summary)
	}
	if rep.Summary.ByAnalyzer["seedplumb"] == 0 {
		t.Errorf("vbrlint -json summary missing per-analyzer count: %+v", rep.Summary.ByAnalyzer)
	}

	// -tests extends the concurrency analyzers over in-package test
	// files; the supervision and serving test suites stay clean.
	out = runCmd(t, "vbrlint", "-tests", "./internal/fleet", "./internal/server")
	if !strings.Contains(out, "0 finding(s) in 2 package(s)") {
		t.Errorf("vbrlint -tests fleet/server should be clean:\n%s", out)
	}

	// Exit codes split tool failures from findings: unknown analyzer
	// selection and unloadable patterns are usage errors (2), distinct
	// from exit 1 for a dirty tree.
	if code, out := runCmdExit(t, "vbrlint", "-run", "nosuch", "./internal/errs"); code != 2 {
		t.Errorf("vbrlint -run nosuch: exit %d, want 2\n%s", code, out)
	}
	if code, out := runCmdExit(t, "vbrlint", "./internal/nosuchpkg"); code != 2 {
		t.Errorf("vbrlint on missing package: exit %d, want 2\n%s", code, out)
	}
}

// TestCLIFaultInjection smoke-tests the -faults path of vbrsim and its
// determinism at the process level.
func TestCLIFaultInjection(t *testing.T) {
	if testing.Short() {
		t.Skip("CLI smoke tests skipped in -short mode")
	}
	args := []string{"-frames", "4000", "-point", "-n", "2", "-capacity", "11e6",
		"-faults", "-fault-seed", "7", "-fault-gap", "300", "-fault-len", "30", "-fault-outage", "0.5"}
	out1 := runCmd(t, "vbrsim", args...)
	out2 := runCmd(t, "vbrsim", args...)
	if out1 != out2 {
		t.Errorf("faulted simulation not deterministic:\n--- run 1:\n%s--- run 2:\n%s", out1, out2)
	}
	if !strings.Contains(out1, "fault schedule:") || !strings.Contains(out1, "P_l") {
		t.Errorf("fault run missing report:\n%s", out1)
	}
}

// TestCLIZooSim exercises vbrsim's scenario-zoo flags end to end:
// -source replicates one registry model, -mix multiplexes a
// heterogeneous population, both deterministic at the process level,
// and bad specs or flag combinations are usage errors (exit 2).
func TestCLIZooSim(t *testing.T) {
	if testing.Short() {
		t.Skip("CLI smoke tests skipped in -short mode")
	}
	args := []string{"-point", "-source", "gop", "-n", "3", "-frames", "4096", "-capacity", "14e6"}
	out1 := runCmd(t, "vbrsim", args...)
	out2 := runCmd(t, "vbrsim", args...)
	if out1 != out2 {
		t.Errorf("zoo simulation not deterministic:\n--- run 1:\n%s--- run 2:\n%s", out1, out2)
	}
	if !strings.Contains(out1, "N=3") || !strings.Contains(out1, "P_l") {
		t.Errorf("zoo -source run missing report:\n%s", out1)
	}

	out := runCmd(t, "vbrsim", "-point", "-mix", "farima:n=4096*2+onoff:fps=24", "-frames", "4096", "-capacity", "24e6")
	if !strings.Contains(out, "N=3") || !strings.Contains(out, "P_l") {
		t.Errorf("zoo -mix run missing report:\n%s", out)
	}

	for _, c := range []struct {
		args []string
		msg  string
	}{
		{[]string{"-point", "-source", "nosuchmodel"}, "unknown traffic model"},
		{[]string{"-point", "-mix", "gop+nosuchmodel"}, "unknown traffic model"},
		{[]string{"-point", "-source", "gop", "-mix", "poisson"}, "mutually exclusive"},
		{[]string{"-point", "-source", "gop*3"}, "use -mix for populations"},
		{[]string{"-source", "gop"}, "-source/-mix apply to -point"},
		{[]string{"-point", "-source", "gop", "-slices"}, "frame granularity"},
	} {
		code, out := runCmdExit(t, "vbrsim", c.args...)
		if code != 2 {
			t.Errorf("vbrsim %v: exit %d, want 2\n%s", c.args, code, out)
		}
		if !strings.Contains(out, c.msg) {
			t.Errorf("vbrsim %v: output missing %q:\n%s", c.args, c.msg, out)
		}
	}
}

// TestCLIInterruptResume is the end-to-end resilience check: a Hosking
// generation is interrupted with SIGINT, must save a checkpoint and exit
// 130, and the resumed run must produce output bitwise-identical to an
// uninterrupted one.
func TestCLIInterruptResume(t *testing.T) {
	if testing.Short() {
		t.Skip("CLI smoke tests skipped in -short mode")
	}
	dir := t.TempDir()
	ckpt := filepath.Join(dir, "gen.ckpt")
	resumed := filepath.Join(dir, "resumed.bin")
	straight := filepath.Join(dir, "straight.bin")
	gen := filepath.Join(binaries(t), "vbrgen")
	args := []string{"-n", "60000", "-generator", "hosking", "-seed", "42", "-checkpoint", ckpt}

	// Start the long O(n²) run and interrupt it mid-recursion.
	cmd := exec.Command(gen, append(args, "-o", resumed)...)
	var buf strings.Builder
	cmd.Stdout = &buf
	cmd.Stderr = &buf
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	// Give it time to get into the recursion, then interrupt. If the run
	// finishes before the signal lands the test still passes trivially,
	// but 60k Hosking points take far longer than a second.
	time.Sleep(1 * time.Second)
	if err := cmd.Process.Signal(os.Interrupt); err != nil {
		t.Fatal(err)
	}
	err := cmd.Wait()
	var ee *exec.ExitError
	if !errors.As(err, &ee) {
		t.Fatalf("interrupted run: expected exit error, got %v\n%s", err, buf.String())
	}
	if code := ee.ExitCode(); code != 130 {
		t.Fatalf("interrupted run: exit %d, want 130\n%s", code, buf.String())
	}
	if !strings.Contains(buf.String(), "state saved to") {
		t.Fatalf("interrupted run did not report a checkpoint:\n%s", buf.String())
	}
	if fi, err := os.Stat(ckpt); err != nil || fi.Size() == 0 {
		t.Fatalf("checkpoint not written: %v", err)
	}

	// Resume to completion, then compare with an uninterrupted run.
	out := runCmd(t, "vbrgen", append(args, "-resume", "-o", resumed)...)
	if !strings.Contains(out, "generated 60000 frames") {
		t.Fatalf("resumed run did not finish:\n%s", out)
	}
	if _, err := os.Stat(ckpt); !errors.Is(err, os.ErrNotExist) {
		t.Errorf("consumed checkpoint was not removed: %v", err)
	}
	runCmd(t, "vbrgen", "-n", "60000", "-generator", "hosking", "-seed", "42", "-o", straight)

	got, err := os.ReadFile(resumed)
	if err != nil {
		t.Fatal(err)
	}
	want, err := os.ReadFile(straight)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("resumed output differs from uninterrupted run (%d vs %d bytes)", len(got), len(want))
	}
}

// TestCLIFig14CheckpointResume exercises the search-state checkpoint of
// the Fig 14 sweep through the binary: interrupt, verify the checkpoint,
// resume, and check the sweep completes.
func TestCLIFig14CheckpointResume(t *testing.T) {
	if testing.Short() {
		t.Skip("CLI smoke tests skipped in -short mode")
	}
	dir := t.TempDir()
	ckpt := filepath.Join(dir, "f14.ckpt")
	sim := filepath.Join(binaries(t), "vbrsim")

	cmd := exec.Command(sim, "-frames", "120000", "-fig14", "-checkpoint", ckpt)
	var buf strings.Builder
	cmd.Stdout = &buf
	cmd.Stderr = &buf
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	// The sweep at this scale runs ~9s; 4s lands the signal well inside
	// the bisection searches but safely past trace generation.
	time.Sleep(4 * time.Second)
	if err := cmd.Process.Signal(os.Interrupt); err != nil {
		t.Fatal(err)
	}
	err := cmd.Wait()
	var ee *exec.ExitError
	if !errors.As(err, &ee) || ee.ExitCode() != 130 {
		t.Skipf("fig14 sweep finished before the interrupt landed (err=%v); nothing to resume", err)
	}
	if fi, serr := os.Stat(ckpt); serr != nil || fi.Size() == 0 {
		t.Fatalf("fig14 checkpoint not written after interrupt: %v\n%s", serr, buf.String())
	}

	out := runCmd(t, "vbrsim", "-frames", "120000", "-fig14", "-checkpoint", ckpt, "-resume")
	if !strings.Contains(out, "resuming Fig 14 from") || !strings.Contains(out, "Figure 14") {
		t.Fatalf("resumed fig14 sweep incomplete:\n%s", out)
	}
}
