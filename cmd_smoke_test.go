package vbr

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"testing"
)

// The command binaries are built once into a shared temp dir and then
// exercised end to end: generation → analysis → simulation round trips
// through real files and flags.
var (
	buildOnce sync.Once
	binDir    string
	buildErr  error
)

func binaries(t *testing.T) string {
	t.Helper()
	buildOnce.Do(func() {
		binDir, buildErr = os.MkdirTemp("", "vbrbin")
		if buildErr != nil {
			return
		}
		for _, cmd := range []string{"vbrtrace", "vbranalyze", "vbrgen", "vbrsim", "vbrexperiments"} {
			out, err := exec.Command("go", "build", "-o", filepath.Join(binDir, cmd), "./cmd/"+cmd).CombinedOutput()
			if err != nil {
				buildErr = err
				buildErr = &buildError{cmd: cmd, out: string(out), err: err}
				return
			}
		}
	})
	if buildErr != nil {
		t.Fatal(buildErr)
	}
	return binDir
}

// TestMain removes the shared binary directory after all tests.
func TestMain(m *testing.M) {
	code := m.Run()
	if binDir != "" {
		os.RemoveAll(binDir)
	}
	os.Exit(code)
}

type buildError struct {
	cmd string
	out string
	err error
}

func (e *buildError) Error() string {
	return "building " + e.cmd + ": " + e.err.Error() + "\n" + e.out
}

func runCmd(t *testing.T, name string, args ...string) string {
	t.Helper()
	out, err := exec.Command(filepath.Join(binaries(t), name), args...).CombinedOutput()
	if err != nil {
		t.Fatalf("%s %v failed: %v\n%s", name, args, err, out)
	}
	return string(out)
}

func TestCLITraceAnalyzeRoundTrip(t *testing.T) {
	if testing.Short() {
		t.Skip("CLI smoke tests skipped in -short mode")
	}
	dir := t.TempDir()
	traceFile := filepath.Join(dir, "t.bin")
	csvFile := filepath.Join(dir, "t.csv")

	out := runCmd(t, "vbrtrace", "-frames", "8000", "-o", traceFile, "-csv", csvFile)
	if !strings.Contains(out, "avg bandwidth") {
		t.Errorf("vbrtrace output missing summary:\n%s", out)
	}
	if fi, err := os.Stat(traceFile); err != nil || fi.Size() == 0 {
		t.Fatalf("binary trace not written: %v", err)
	}
	if fi, err := os.Stat(csvFile); err != nil || fi.Size() == 0 {
		t.Fatalf("CSV trace not written: %v", err)
	}

	out = runCmd(t, "vbranalyze", "-in", traceFile, "-table1", "-table2", "-fig11")
	for _, want := range []string{"Table 1", "Table 2", "variance-time"} {
		if !strings.Contains(out, want) {
			t.Errorf("vbranalyze output missing %q:\n%s", want, out)
		}
	}

	out = runCmd(t, "vbrsim", "-in", traceFile, "-point", "-n", "2", "-capacity", "12e6")
	if !strings.Contains(out, "P_l") {
		t.Errorf("vbrsim output missing loss report:\n%s", out)
	}
}

func TestCLIGenVariants(t *testing.T) {
	if testing.Short() {
		t.Skip("CLI smoke tests skipped in -short mode")
	}
	dir := t.TempDir()
	for _, variant := range []string{"full", "gaussian", "iid"} {
		outFile := filepath.Join(dir, variant+".bin")
		out := runCmd(t, "vbrgen", "-n", "3000", "-variant", variant, "-o", outFile)
		if !strings.Contains(out, "generated 3000 frames") {
			t.Errorf("variant %s: missing summary:\n%s", variant, out)
		}
		if fi, err := os.Stat(outFile); err != nil || fi.Size() == 0 {
			t.Errorf("variant %s: trace not written", variant)
		}
	}
	// The Hosking path (the paper's algorithm) on a short series.
	out := runCmd(t, "vbrgen", "-n", "2000", "-generator", "hosking")
	if !strings.Contains(out, "variance-time H") {
		t.Errorf("hosking run missing verification:\n%s", out)
	}
}

func TestCLICodecModes(t *testing.T) {
	if testing.Short() {
		t.Skip("CLI smoke tests skipped in -short mode")
	}
	out := runCmd(t, "vbrtrace", "-mode", "codec", "-frames", "120", "-width", "64", "-height", "64", "-train", "8")
	if !strings.Contains(out, "mean/frame") {
		t.Errorf("codec mode missing summary:\n%s", out)
	}
	out = runCmd(t, "vbrtrace", "-mode", "interframe", "-frames", "120", "-width", "64", "-height", "64", "-train", "12", "-gop", "6")
	if !strings.Contains(out, "mean/frame") {
		t.Errorf("interframe mode missing summary:\n%s", out)
	}
}

func TestCLIPlot(t *testing.T) {
	if testing.Short() {
		t.Skip("CLI smoke tests skipped in -short mode")
	}
	out := runCmd(t, "vbranalyze", "-frames", "8000", "-fig11", "-plot")
	if !strings.Contains(out, "|") || !strings.Contains(out, "log10 m") {
		t.Errorf("plot output missing canvas:\n%s", out)
	}
}
