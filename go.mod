module vbr

go 1.22
