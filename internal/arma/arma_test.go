package arma

import (
	"math"
	"math/rand/v2"
	"testing"
	"testing/quick"

	"vbr/internal/stats"
)

func approx(t *testing.T, name string, got, want, tol float64) {
	t.Helper()
	diff := math.Abs(got - want)
	if diff > tol && diff > tol*math.Abs(want) {
		t.Errorf("%s = %v, want %v (tol %v)", name, got, want, tol)
	}
}

func TestValidateStationarity(t *testing.T) {
	good := []Model{
		{},
		{Phi: []float64{0.5}},
		{Phi: []float64{0.9}},
		{Phi: []float64{0.5, -0.3}},
		{Phi: []float64{1.2, -0.4}}, // roots outside unit circle despite φ1 > 1
		{Theta: []float64{0.7}},
	}
	for i, m := range good {
		if err := m.Validate(); err != nil {
			t.Errorf("model %d should be stationary: %v", i, err)
		}
	}
	bad := []Model{
		{Phi: []float64{1.0}},
		{Phi: []float64{1.5}},
		{Phi: []float64{0.5, 0.5}}, // φ(1) = 0: unit root
		{Phi: []float64{0.2, 0.9}}, // explosive
	}
	for i, m := range bad {
		if err := m.Validate(); err == nil {
			t.Errorf("model %d should be non-stationary", i)
		}
	}
}

func TestFilterAR1ClosedForm(t *testing.T) {
	// AR(1) filter of a unit impulse is φ^t.
	m := Model{Phi: []float64{0.7}}
	innov := make([]float64, 10)
	innov[0] = 1
	out, err := m.Filter(innov)
	if err != nil {
		t.Fatal(err)
	}
	for tt := range out {
		approx(t, "impulse response", out[tt], math.Pow(0.7, float64(tt)), 1e-12)
	}
}

func TestFilterMA1(t *testing.T) {
	m := Model{Theta: []float64{0.5}}
	innov := []float64{1, 0, 0, 2}
	out, err := m.Filter(innov)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{1, 0.5, 0, 2}
	for i := range want {
		approx(t, "ma filter", out[i], want[i], 1e-12)
	}
}

func TestARVarianceClosedForm(t *testing.T) {
	// AR(1): Var = 1/(1-φ²).
	m := Model{Phi: []float64{0.8}}
	v, err := m.ARVariance()
	if err != nil {
		t.Fatal(err)
	}
	approx(t, "ar1 variance", v, 1/(1-0.64), 1e-10)
	// White noise.
	v0, err := Model{}.ARVariance()
	if err != nil || v0 != 1 {
		t.Errorf("white noise variance %v err %v", v0, err)
	}
	// AR(2) known value: Var = (1-φ2) / ((1+φ2)((1-φ2)²-φ1²)).
	phi1, phi2 := 0.5, -0.3
	m2 := Model{Phi: []float64{phi1, phi2}}
	v2, err := m2.ARVariance()
	if err != nil {
		t.Fatal(err)
	}
	want := (1 - phi2) / ((1 + phi2) * ((1-phi2)*(1-phi2) - phi1*phi1))
	approx(t, "ar2 variance", v2, want, 1e-10)
	if _, err := (Model{Theta: []float64{0.5}}).ARVariance(); err == nil {
		t.Error("MA model should be rejected")
	}
}

func TestACFAR1(t *testing.T) {
	m := Model{Phi: []float64{0.6}}
	rho, err := m.ACF(10)
	if err != nil {
		t.Fatal(err)
	}
	for k := 0; k <= 10; k++ {
		approx(t, "ar1 acf", rho[k], math.Pow(0.6, float64(k)), 1e-10)
	}
}

func TestACFAR2MatchesSimulation(t *testing.T) {
	m := Model{Phi: []float64{0.5, -0.3}}
	rho, err := m.ACF(5)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewPCG(1, 2))
	xs, err := m.Generate(300000, rng)
	if err != nil {
		t.Fatal(err)
	}
	emp, err := stats.Autocorrelation(xs, 5)
	if err != nil {
		t.Fatal(err)
	}
	for k := 1; k <= 5; k++ {
		approx(t, "ar2 acf vs sim", rho[k], emp[k], 0.03)
	}
}

func TestGenerateMoments(t *testing.T) {
	m := Model{Phi: []float64{0.8}}
	rng := rand.New(rand.NewPCG(3, 4))
	xs, err := m.Generate(200000, rng)
	if err != nil {
		t.Fatal(err)
	}
	approx(t, "mean", stats.Mean(xs), 0, 0.05)
	want, _ := m.ARVariance()
	approx(t, "variance", stats.Variance(xs), want, 0.05*want)
	if _, err := m.Generate(0, rng); err == nil {
		t.Error("n=0 should fail")
	}
	if _, err := (Model{Phi: []float64{1.1}}).Generate(10, rng); err == nil {
		t.Error("non-stationary generate should fail")
	}
}

func TestFitARRecoversCoefficients(t *testing.T) {
	truth := Model{Phi: []float64{0.6, -0.25}}
	rng := rand.New(rand.NewPCG(5, 6))
	xs, err := truth.Generate(200000, rng)
	if err != nil {
		t.Fatal(err)
	}
	fit, innovVar, err := FitAR(xs, 2)
	if err != nil {
		t.Fatal(err)
	}
	approx(t, "phi1", fit.Phi[0], 0.6, 0.03)
	approx(t, "phi2", fit.Phi[1], -0.25, 0.03)
	approx(t, "innovation variance", innovVar, 1, 0.05)
}

func TestFitARErrors(t *testing.T) {
	if _, _, err := FitAR(make([]float64, 5), 1); err == nil {
		t.Error("short series should fail")
	}
	if _, _, err := FitAR(make([]float64, 100), 0); err == nil {
		t.Error("order 0 should fail")
	}
	constant := make([]float64, 100)
	if _, _, err := FitAR(constant, 1); err == nil {
		t.Error("constant series should fail")
	}
}

func TestFitARWhiteNoiseNearZero(t *testing.T) {
	rng := rand.New(rand.NewPCG(7, 8))
	xs := make([]float64, 100000)
	for i := range xs {
		xs[i] = rng.NormFloat64()
	}
	fit, _, err := FitAR(xs, 3)
	if err != nil {
		t.Fatal(err)
	}
	for i, phi := range fit.Phi {
		if math.Abs(phi) > 0.02 {
			t.Errorf("white noise φ%d = %v", i+1, phi)
		}
	}
}

func TestFilterPreservesLengthProperty(t *testing.T) {
	f := func(seed uint64) bool {
		rng := rand.New(rand.NewPCG(seed, 11))
		n := 1 + int(seed%500)
		innov := make([]float64, n)
		for i := range innov {
			innov[i] = rng.NormFloat64()
		}
		m := Model{Phi: []float64{0.5}, Theta: []float64{0.3}}
		out, err := m.Filter(innov)
		return err == nil && len(out) == n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestMarkovChainValidate(t *testing.T) {
	bad := []*MarkovChain{
		{},
		{P: [][]float64{{1}}, Levels: []float64{1, 2}},
		{P: [][]float64{{0.5, 0.4}, {0.5, 0.5}}, Levels: []float64{1, 2}},
		{P: [][]float64{{1.5, -0.5}, {0.5, 0.5}}, Levels: []float64{1, 2}},
		{P: [][]float64{{1, 0, 0}}, Levels: []float64{1}},
	}
	for i, mc := range bad {
		if err := mc.Validate(); err == nil {
			t.Errorf("chain %d should be invalid", i)
		}
	}
}

func TestMarkovStationary(t *testing.T) {
	mc := &MarkovChain{
		P:      [][]float64{{0.9, 0.1}, {0.5, 0.5}},
		Levels: []float64{0, 1},
	}
	pi, err := mc.Stationary()
	if err != nil {
		t.Fatal(err)
	}
	// Balance: π0·0.1 = π1·0.5 → π = (5/6, 1/6).
	approx(t, "pi0", pi[0], 5.0/6, 1e-9)
	approx(t, "pi1", pi[1], 1.0/6, 1e-9)
	m, err := mc.StationaryMean()
	if err != nil {
		t.Fatal(err)
	}
	approx(t, "stationary mean", m, 1.0/6, 1e-9)
}

func TestMarkovPathStatistics(t *testing.T) {
	mc, err := SceneChain(240, 1)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewPCG(9, 10))
	path, err := mc.Path(400000, rng)
	if err != nil {
		t.Fatal(err)
	}
	// Centered levels → near-zero mean.
	approx(t, "path mean", stats.Mean(path), 0, 0.05)
	// Sojourn persistence: lag-1 autocorrelation ≈ stay probability
	// adjusted; must be strongly positive.
	r, err := stats.Autocorrelation(path, 2)
	if err != nil {
		t.Fatal(err)
	}
	if r[1] < 0.9 {
		t.Errorf("lag-1 acf %v; sojourns too short for mean 240", r[1])
	}
	if _, err := mc.Path(0, rng); err == nil {
		t.Error("n=0 should fail")
	}
}

func TestSceneChainValidation(t *testing.T) {
	if _, err := SceneChain(1, 1); err == nil {
		t.Error("sojourn ≤ 1 should fail")
	}
	if _, err := SceneChain(10, -1); err == nil {
		t.Error("negative spread should fail")
	}
	mc, err := SceneChain(48, 0.8)
	if err != nil {
		t.Fatal(err)
	}
	m, err := mc.StationaryMean()
	if err != nil {
		t.Fatal(err)
	}
	approx(t, "scene chain centered", m, 0, 1e-9)
}
