package arma

import (
	"fmt"
	"math/rand/v2"
)

// MarkovChain is a discrete-time, finite-state Markov chain with a level
// attached to each state — the paper's second suggested short-range
// mechanism ("modulating it with the state of a Markov chain"), natural
// for scene-structured video: states are activity classes (e.g. quiet
// dialogue / normal / action) and the chain's sojourn times produce
// scene-like level persistence.
type MarkovChain struct {
	// P[i][j] is the transition probability from state i to state j;
	// rows must sum to 1.
	P [][]float64
	// Levels[i] is the modulation level emitted in state i.
	Levels []float64
}

// Validate checks stochasticity and shape.
func (mc *MarkovChain) Validate() error {
	n := len(mc.P)
	if n == 0 {
		return fmt.Errorf("arma: empty Markov chain")
	}
	if len(mc.Levels) != n {
		return fmt.Errorf("arma: %d levels for %d states", len(mc.Levels), n)
	}
	for i, row := range mc.P {
		if len(row) != n {
			return fmt.Errorf("arma: row %d has %d entries, want %d", i, len(row), n)
		}
		var sum float64
		for j, p := range row {
			if p < 0 || p > 1 {
				return fmt.Errorf("arma: P[%d][%d] = %v out of [0,1]", i, j, p)
			}
			sum += p
		}
		if sum < 1-1e-9 || sum > 1+1e-9 {
			return fmt.Errorf("arma: row %d sums to %v, want 1", i, sum)
		}
	}
	return nil
}

// Stationary returns the stationary distribution π solving πP = π by
// power iteration (the chains used here are small and ergodic).
func (mc *MarkovChain) Stationary() ([]float64, error) {
	if err := mc.Validate(); err != nil {
		return nil, err
	}
	n := len(mc.P)
	pi := make([]float64, n)
	for i := range pi {
		pi[i] = 1 / float64(n)
	}
	next := make([]float64, n)
	for iter := 0; iter < 10000; iter++ {
		for j := range next {
			next[j] = 0
		}
		for i := range pi {
			for j := 0; j < n; j++ {
				next[j] += pi[i] * mc.P[i][j]
			}
		}
		var diff float64
		for j := range next {
			d := next[j] - pi[j]
			if d < 0 {
				d = -d
			}
			diff += d
		}
		copy(pi, next)
		if diff < 1e-14 {
			break
		}
	}
	return pi, nil
}

// StationaryMean returns E[level] under the stationary distribution.
func (mc *MarkovChain) StationaryMean() (float64, error) {
	pi, err := mc.Stationary()
	if err != nil {
		return 0, err
	}
	var m float64
	for i, p := range pi {
		m += p * mc.Levels[i]
	}
	return m, nil
}

// Path simulates n steps of the chain from a stationary start and
// returns the emitted level series.
func (mc *MarkovChain) Path(n int, rng *rand.Rand) ([]float64, error) {
	if n < 1 {
		return nil, fmt.Errorf("arma: path length must be ≥ 1, got %d", n)
	}
	pi, err := mc.Stationary()
	if err != nil {
		return nil, err
	}
	state := sample(pi, rng)
	out := make([]float64, n)
	for t := 0; t < n; t++ {
		out[t] = mc.Levels[state]
		state = sample(mc.P[state], rng)
	}
	return out, nil
}

// sample draws an index from a probability vector.
func sample(p []float64, rng *rand.Rand) int {
	u := rng.Float64()
	var cum float64
	for i, v := range p {
		cum += v
		if u < cum {
			return i
		}
	}
	return len(p) - 1
}

// SceneChain builds a three-state (quiet / normal / action) chain whose
// mean sojourn time is meanSojourn steps and whose levels are centered
// (stationary mean 0) with the given spread, ready to modulate a
// standardized activity process.
func SceneChain(meanSojourn, spread float64) (*MarkovChain, error) {
	if meanSojourn <= 1 {
		return nil, fmt.Errorf("arma: mean sojourn must be > 1, got %v", meanSojourn)
	}
	if spread < 0 {
		return nil, fmt.Errorf("arma: spread must be ≥ 0, got %v", spread)
	}
	stay := 1 - 1/meanSojourn
	move := (1 - stay) / 2
	mc := &MarkovChain{
		P: [][]float64{
			{stay, 2 * move, 0},
			{move, stay, move},
			{0, 2 * move, stay},
		},
		Levels: []float64{-spread, 0, spread},
	}
	if err := mc.Validate(); err != nil {
		return nil, err
	}
	return mc, nil
}
