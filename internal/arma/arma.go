// Package arma implements autoregressive moving-average processes and
// the fractional ARIMA(p, d, q) composition the paper defers to future
// work in §4: "An additional set of short-term correlation parameters may
// be included by combining this model with an ARMA filter or modulating
// it with the state of a Markov chain."
//
// The package provides:
//
//   - AR(p) / MA(q) / ARMA(p, q) definitions with exact stationary
//     autocovariances (AR via Yule–Walker, ARMA via simulation-free
//     recursions for the cases used here);
//   - Yule–Walker estimation of AR coefficients from data
//     (Levinson–Durbin on the sample autocovariance);
//   - filtering of an innovation series through an ARMA recursion, which
//     composes with the fgn package to give fractional ARIMA(p, d, q):
//     the fARIMA(0, d, 0) realization becomes the innovation stream of
//     the ARMA filter, adding tunable short-range structure on top of
//     the long-range dependent backbone without changing H;
//   - a discrete-state Markov chain with level modulation, the paper's
//     second suggested mechanism for scene-like short-term behaviour.
package arma

import (
	"fmt"
	"math"
	"math/rand/v2"
)

// Model is an ARMA(p, q) process
//
//	X_t = Σ_i φ_i X_{t-i} + ε_t + Σ_j θ_j ε_{t-j}
//
// driven by an innovation series ε.
type Model struct {
	Phi   []float64 // AR coefficients φ_1..φ_p
	Theta []float64 // MA coefficients θ_1..θ_q
}

// Validate checks stationarity (AR polynomial roots outside the unit
// circle, tested via the Levinson–Durbin reflection-coefficient
// criterion) and invertibility is not enforced (not needed for
// generation).
func (m Model) Validate() error {
	p := len(m.Phi)
	if p == 0 {
		return nil
	}
	// Convert AR coefficients to partial autocorrelations by reverse
	// Levinson–Durbin; stationarity ⇔ all reflection coefficients in
	// (-1, 1).
	a := make([]float64, p+1)
	copy(a[1:], m.Phi)
	for k := p; k >= 1; k-- {
		rk := a[k]
		if math.Abs(rk) >= 1 {
			return fmt.Errorf("arma: AR polynomial not stationary (reflection coefficient %v at lag %d)", rk, k)
		}
		if k == 1 {
			break
		}
		prev := make([]float64, k)
		den := 1 - rk*rk
		for j := 1; j < k; j++ {
			prev[j] = (a[j] + rk*a[k-j]) / den
		}
		copy(a[1:k], prev[1:k])
	}
	return nil
}

// Filter runs the innovations through the ARMA recursion, returning a
// series of the same length. Initial conditions are zero; callers
// discarding a burn-in prefix obtain a (near-)stationary sample.
func (m Model) Filter(innov []float64) ([]float64, error) {
	if err := m.Validate(); err != nil {
		return nil, err
	}
	p, q := len(m.Phi), len(m.Theta)
	out := make([]float64, len(innov))
	for t := range innov {
		v := innov[t]
		for j := 1; j <= q && t-j >= 0; j++ {
			v += m.Theta[j-1] * innov[t-j]
		}
		for i := 1; i <= p && t-i >= 0; i++ {
			v += m.Phi[i-1] * out[t-i]
		}
		out[t] = v
	}
	return out, nil
}

// Generate draws n points with standard Gaussian innovations, discarding
// a burn-in of max(p, q)·50 points.
func (m Model) Generate(n int, rng *rand.Rand) ([]float64, error) {
	if n < 1 {
		return nil, fmt.Errorf("arma: length must be ≥ 1, got %d", n)
	}
	burn := 50 * (len(m.Phi) + len(m.Theta) + 1)
	innov := make([]float64, n+burn)
	for i := range innov {
		innov[i] = rng.NormFloat64()
	}
	x, err := m.Filter(innov)
	if err != nil {
		return nil, err
	}
	return x[burn:], nil
}

// ARVariance returns the stationary variance of a pure AR(p) model with
// unit innovation variance, via the Yule–Walker system.
func (m Model) ARVariance() (float64, error) {
	if len(m.Theta) != 0 {
		return 0, fmt.Errorf("arma: ARVariance requires a pure AR model")
	}
	if err := m.Validate(); err != nil {
		return 0, err
	}
	p := len(m.Phi)
	if p == 0 {
		return 1, nil
	}
	// Solve for autocovariances γ_0..γ_p by Gaussian elimination on the
	// Yule–Walker equations with the variance equation appended:
	//   γ_k = Σ_i φ_i γ_{k-i}  (k=1..p),   γ_0 = Σ_i φ_i γ_i + 1.
	n := p + 1
	a := make([][]float64, n)
	b := make([]float64, n)
	for i := range a {
		a[i] = make([]float64, n)
	}
	// Row 0: γ_0 - Σ φ_i γ_i = 1.
	a[0][0] = 1
	for i := 1; i <= p; i++ {
		a[0][i] -= m.Phi[i-1]
	}
	b[0] = 1
	// Rows k = 1..p: γ_k - Σ_i φ_i γ_{|k-i|} = 0.
	for k := 1; k <= p; k++ {
		a[k][k] += 1
		for i := 1; i <= p; i++ {
			a[k][abs(k-i)] -= m.Phi[i-1]
		}
		b[k] = 0
	}
	gamma, err := solve(a, b)
	if err != nil {
		return 0, err
	}
	return gamma[0], nil
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}

// solve performs Gaussian elimination with partial pivoting.
func solve(a [][]float64, b []float64) ([]float64, error) {
	n := len(a)
	for col := 0; col < n; col++ {
		// Pivot.
		piv := col
		for r := col + 1; r < n; r++ {
			if math.Abs(a[r][col]) > math.Abs(a[piv][col]) {
				piv = r
			}
		}
		if math.Abs(a[piv][col]) < 1e-14 {
			return nil, fmt.Errorf("arma: singular Yule-Walker system")
		}
		a[col], a[piv] = a[piv], a[col]
		b[col], b[piv] = b[piv], b[col]
		for r := col + 1; r < n; r++ {
			f := a[r][col] / a[col][col]
			for c := col; c < n; c++ {
				a[r][c] -= f * a[col][c]
			}
			b[r] -= f * b[col]
		}
	}
	x := make([]float64, n)
	for r := n - 1; r >= 0; r-- {
		v := b[r]
		for c := r + 1; c < n; c++ {
			v -= a[r][c] * x[c]
		}
		x[r] = v / a[r][r]
	}
	return x, nil
}

// FitAR estimates AR(p) coefficients from data by solving the
// Yule–Walker equations with the Levinson–Durbin recursion on the sample
// autocorrelation. It returns the model and the innovation variance.
func FitAR(xs []float64, p int) (Model, float64, error) {
	if p < 1 {
		return Model{}, 0, fmt.Errorf("arma: order must be ≥ 1, got %d", p)
	}
	if len(xs) < 10*p {
		return Model{}, 0, fmt.Errorf("arma: need ≥ %d points for AR(%d), got %d", 10*p, p, len(xs))
	}
	// Sample autocorrelations r_0..r_p.
	n := len(xs)
	var mean float64
	for _, v := range xs {
		mean += v
	}
	mean /= float64(n)
	r := make([]float64, p+1)
	var c0 float64
	for _, v := range xs {
		c0 += (v - mean) * (v - mean)
	}
	//vbrlint:ignore floateq exact-zero guard: only a literally constant series has zero energy c0
	if c0 == 0 {
		return Model{}, 0, fmt.Errorf("arma: constant series")
	}
	r[0] = 1
	for k := 1; k <= p; k++ {
		var ck float64
		for t := 0; t+k < n; t++ {
			ck += (xs[t] - mean) * (xs[t+k] - mean)
		}
		r[k] = ck / c0
	}
	// Levinson–Durbin.
	phi := make([]float64, p+1)
	prev := make([]float64, p+1)
	v := 1.0
	for k := 1; k <= p; k++ {
		acc := r[k]
		for j := 1; j < k; j++ {
			acc -= prev[j] * r[k-j]
		}
		rk := acc / v
		phi[k] = rk
		for j := 1; j < k; j++ {
			phi[j] = prev[j] - rk*prev[k-j]
		}
		v *= 1 - rk*rk
		copy(prev, phi)
	}
	sampleVar := c0 / float64(n)
	return Model{Phi: phi[1 : p+1]}, v * sampleVar, nil
}

// ACF returns the theoretical autocorrelation ρ_0..ρ_maxLag of a pure
// AR(p) model (Yule–Walker extension).
func (m Model) ACF(maxLag int) ([]float64, error) {
	if len(m.Theta) != 0 {
		return nil, fmt.Errorf("arma: ACF implemented for pure AR models")
	}
	if maxLag < 0 {
		return nil, fmt.Errorf("arma: maxLag must be ≥ 0")
	}
	p := len(m.Phi)
	if p == 0 {
		out := make([]float64, maxLag+1)
		out[0] = 1
		return out, nil
	}
	// Solve the first p Yule–Walker equations for ρ_1..ρ_p, then extend
	// by the recursion ρ_k = Σ φ_i ρ_{k-i}.
	variance, err := m.ARVariance()
	if err != nil {
		return nil, err
	}
	_ = variance
	a := make([][]float64, p)
	b := make([]float64, p)
	for k := 1; k <= p; k++ {
		a[k-1] = make([]float64, p)
		for i := 1; i <= p; i++ {
			lag := abs(k - i)
			if lag == 0 {
				b[k-1] += m.Phi[i-1] // ρ_0 = 1 moves to the RHS
				continue
			}
			a[k-1][lag-1] -= m.Phi[i-1]
		}
		a[k-1][k-1] += 1
	}
	rho1p, err := solve(a, b)
	if err != nil {
		return nil, err
	}
	rho := make([]float64, maxLag+1)
	rho[0] = 1
	for k := 1; k <= maxLag; k++ {
		if k <= p {
			rho[k] = rho1p[k-1]
			continue
		}
		var v float64
		for i := 1; i <= p; i++ {
			v += m.Phi[i-1] * rho[k-i]
		}
		rho[k] = v
	}
	return rho, nil
}
