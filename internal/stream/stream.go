// Package stream generates the paper's §4 source model incrementally:
// instead of materializing a whole trace in memory (the batch
// core.Model.Generate path), a BlockSource hands out frame-size blocks
// one at a time under bounded memory, which is what a long-running
// serving daemon or an in-loop simulation consumer needs.
//
// Three Gaussian backends feed the Eq. 13 marginal transform:
//
//   - Hosking: the exact O(n²) recursion, advanced block by block
//     (fgn.HoskingStream). The concatenated output is bitwise-identical
//     to the batch generator with the same seed; the recursion's own
//     O(n) state is inherent to exactness, but no extra O(n) output
//     buffering is added.
//   - DaviesHarte: successive independent O(B log B) circulant-embedding
//     blocks joined by power-preserving overlap stitching, giving true
//     O(block) memory for arbitrarily long traces at the cost of an
//     approximate correlation structure across block seams.
//   - Paxson: the same overlap-stitched chunking over independent
//     FFT-approximate spectral-synthesis chunks — the fastest backend,
//     approximate both within chunks and across seams.
//
// The Auto policy resolves to Paxson for streams (bounded memory at any
// length); selection is shared with the batch path via internal/backend.
//
// Every stream is validated online: a Monitor tracks the running
// mean/σ and a streaming variance–time Ĥ probe, so a drifting stream
// self-reports through the obs gauges and the Probe API instead of
// silently serving bad traffic.
package stream

import (
	"context"
	"errors"
	"fmt"
	"io"
	"math"
	"math/rand/v2"

	"vbr/internal/backend"
	"vbr/internal/core"
	"vbr/internal/dist"
	"vbr/internal/fgn"
	"vbr/internal/genpool"
	"vbr/internal/obs"
	"vbr/internal/specfn"
)

// Backend selects the Gaussian engine behind a stream.
//
// Deprecated: Backend is the unified backend.Backend under its
// historical name. New code should use backend.Backend (re-exported as
// vbr.Backend) and its constants; the aliases remain so existing
// callers keep compiling.
type Backend = backend.Backend

const (
	// Hosking streams the paper's exact recursion; output is
	// bitwise-identical to the batch generator (with Standardize off).
	//
	// Deprecated: use backend.Hosking (vbr.BackendHosking).
	Hosking = backend.Hosking
	// DaviesHarte streams independent circulant-embedding blocks with
	// overlap stitching: O(block) memory, approximate seams.
	//
	// Deprecated: use backend.DaviesHarte (vbr.BackendDaviesHarte).
	DaviesHarte = backend.DaviesHarte
)

// ParseBackend maps the CLI/API spelling to a Backend.
//
// Deprecated: use backend.Parse (vbr.ParseBackend), which this
// forwards to.
func ParseBackend(s string) (Backend, error) {
	return backend.Parse(s)
}

// gaussStreamSalt is the PCG stream selector of the batch generator's
// Gaussian stage (core.gaussianCtx); the Hosking backend must use the
// same salt for its output to be bitwise-identical to Model.Generate.
const gaussStreamSalt = 0x6a55

// dhStreamSalt offsets the per-block PCG streams of the Davies–Harte
// backend; block i draws from stream dhStreamSalt+i of the same seed, so
// blocks are mutually independent yet the whole trace is reproducible.
const dhStreamSalt = 0xd41e5

// paxsonStreamSalt is the Paxson backend's counterpart of dhStreamSalt,
// disjoint from it so the two chunked backends draw from unrelated PCG
// streams of the same seed.
const paxsonStreamSalt = 0x9ac50

// Config parameterizes a stream. The zero values of BlockSize, Overlap
// and TableSize select defaults; Model, N and (for reproducibility)
// Seed are the caller's.
type Config struct {
	// Model is the four-parameter (μ_Γ, σ_Γ, m_T, H) source model.
	Model core.Model
	// N is the total number of frames the stream will produce.
	N int
	// BlockSize is the number of frames per block (default 4096).
	BlockSize int
	// Overlap is the stitch length in frames for the chunked backends
	// (Davies–Harte, Paxson; default BlockSize/4, ignored by the
	// Hosking backend). It must stay below BlockSize.
	Overlap int
	// TableSize is the marginal mapping table resolution (default
	// 10000, the paper's choice).
	TableSize int
	// Seed drives all randomness; equal configs yield equal streams.
	Seed uint64
	// Backend selects the Gaussian engine.
	Backend Backend
	// Pool, when non-nil, serves the stream's seed-independent
	// precomputations (Hosking coefficient schedule, per-chunk
	// Davies–Harte eigenvalues, the Eq. 13 mapping table) from a shared
	// cross-request cache. The emitted frames are bitwise identical with
	// or without a pool; nil preserves the cold per-stream behavior.
	Pool *genpool.Pool
}

// withDefaults fills the zero-valued tuning knobs.
func (c Config) withDefaults() Config {
	if c.BlockSize == 0 {
		c.BlockSize = 4096
	}
	if c.Overlap == 0 {
		c.Overlap = c.BlockSize / 4
	}
	if c.TableSize == 0 {
		c.TableSize = 10000
	}
	return c
}

// Validate checks the (defaulted) configuration.
func (c Config) Validate() error {
	if err := c.Model.Validate(); err != nil {
		return err
	}
	if c.N < 1 {
		return fmt.Errorf("stream: N must be ≥ 1, got %d", c.N)
	}
	if c.BlockSize < 1 {
		return fmt.Errorf("stream: block size must be ≥ 1, got %d", c.BlockSize)
	}
	stitched := c.Backend.Resolve(c.N, true) != backend.Hosking
	if c.Overlap < 0 || (stitched && c.BlockSize > 1 && c.Overlap >= c.BlockSize) {
		return fmt.Errorf("stream: overlap must be in [0, block size), got %d with block %d", c.Overlap, c.BlockSize)
	}
	if c.TableSize < 2 {
		return fmt.Errorf("stream: table size must be ≥ 2, got %d", c.TableSize)
	}
	if err := c.Backend.Validate(); err != nil {
		return fmt.Errorf("stream: %w", err)
	}
	return nil
}

// BlockSource produces consecutive blocks of a frame-size series. It is
// the contract between generation backends and serving consumers: the
// returned slice is only valid until the following Next call (sources
// reuse their block buffer — that reuse is what bounds memory), and the
// final call after the last block returns (nil, io.EOF).
type BlockSource interface {
	// Next returns the next block of frames, io.EOF after the last one,
	// or an error matching errs.ErrCancelled when ctx fires mid-stream.
	Next(ctx context.Context) ([]float64, error)
	// Pos reports how many frames have been produced so far.
	Pos() int
}

// gaussian is the internal contract of the Gaussian backends: fill dst
// from the front, report how many points were produced, io.EOF when the
// series is exhausted.
type gaussian interface {
	Next(ctx context.Context, dst []float64) (int, error)
}

// Stream is a BlockSource producing model traffic: a Gaussian backend
// block, the Eq. 13 Gamma/Pareto transform applied in place, and the
// online Monitor updated — all in O(BlockSize) working memory.
type Stream struct {
	cfg      Config
	resolved backend.Backend // concrete engine after Auto resolution
	gauss    gaussian
	tab      *dist.QuantileTable
	gbuf     []float64
	out      []float64
	mon      *Monitor
	pos      int

	wantMean float64 // finite marginal mean, 0 when divergent
	wantStd  float64 // finite marginal σ, 0 when divergent
}

// driftTol is the relative deviation of the running mean (and σ) from
// the model marginal beyond which a stream self-reports drift, once at
// least driftMinFrames frames are in the monitor. The tolerance is
// deliberately loose: LRD series converge slowly (§4.2), so tight
// bounds would false-alarm on healthy streams.
//
// Hurst drift, by contrast, is a calibrated test: the monitor's MAVAR
// Ĥ carries a battery-derived 1.96σ half-width, so the stream flags
// drift when the configured H falls outside Ĥ ± hurstDriftSigma·σ.
// Five sigma keeps the per-block alarm rate negligible even though
// consecutive probes of one stream are strongly correlated, while a
// genuinely mis-generated stream (wrong H by ≳ 0.05 at 16k frames)
// still trips it within a few blocks.
const (
	driftTol        = 0.25
	driftMinFrames  = 1 << 14
	hurstDriftSigma = 5
)

// Open is equivalent to OpenCtx(context.Background(), cfg).
func Open(cfg Config) (*Stream, error) {
	return OpenCtx(context.Background(), cfg)
}

// OpenCtx builds a stream for cfg. The context bounds the setup work —
// for a pooled Hosking stream that includes extending the shared
// coefficient schedule to cfg.N, the dominant cost on a cold cache —
// and its obs scope receives the pool's hit/miss counters.
func OpenCtx(ctx context.Context, cfg Config) (*Stream, error) {
	cfg = cfg.withDefaults()
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	gp, err := cfg.Model.Marginal()
	if err != nil {
		return nil, err
	}
	// A nil pool computes cold, so this single call covers both modes.
	tab, err := cfg.Pool.QuantileTable(ctx, cfg.Model.MuGamma, cfg.Model.SigmaGamma, cfg.Model.TailSlope, cfg.TableSize)
	if err != nil {
		return nil, err
	}
	s := &Stream{
		cfg:  cfg,
		tab:  tab,
		gbuf: make([]float64, cfg.BlockSize),
		out:  make([]float64, cfg.BlockSize),
		mon:  NewMonitor(cfg.N),
	}
	if mu := gp.Mean(); !math.IsInf(mu, 0) && mu > 0 {
		s.wantMean = mu
	}
	if v := gp.Variance(); !math.IsInf(v, 0) && v > 0 {
		s.wantStd = math.Sqrt(v)
	}
	// A stream always has a concrete engine: Auto resolves here (to
	// Paxson — streamed output wants bounded memory at any length) and
	// the resolution is observable via Stream.Backend, which the HTTP
	// layer echoes in X-Vbr-Backend.
	s.resolved = cfg.Backend.Resolve(cfg.N, true)
	switch s.resolved {
	case backend.Hosking:
		rng := rand.New(rand.NewPCG(cfg.Seed, gaussStreamSalt))
		var hs *fgn.HoskingStream
		if cfg.Pool != nil {
			var c *fgn.HoskingCoeffs
			if c, err = cfg.Pool.HoskingCoeffs(ctx, cfg.Model.Hurst, cfg.N); err != nil {
				return nil, err
			}
			hs, err = fgn.NewHoskingStreamWithCoeffs(cfg.N, c, rng)
		} else {
			hs, err = fgn.NewHoskingStream(cfg.N, cfg.Model.Hurst, rng)
		}
		if err != nil {
			return nil, err
		}
		s.gauss = hs
	case backend.DaviesHarte:
		s.gauss = newDHStitch(cfg)
	case backend.Paxson:
		s.gauss = newPaxsonStitch(cfg)
	}
	return s, nil
}

// Backend returns the concrete Gaussian engine behind the stream: the
// configured backend, or what Auto resolved to at open time.
func (s *Stream) Backend() backend.Backend { return s.resolved }

// Len returns the total number of frames the stream will produce.
func (s *Stream) Len() int { return s.cfg.N }

// Pos implements BlockSource.
func (s *Stream) Pos() int { return s.pos }

// Probe returns the current online-validation snapshot.
func (s *Stream) Probe() Probe { return s.mon.Probe() }

// Next implements BlockSource: one Gaussian block, transformed to the
// Gamma/Pareto marginal in place and folded into the monitor. The obs
// scope on ctx receives per-block counters, the validation gauges
// (stream.mean, stream.std, stream.hhat) and drift warnings.
//vbrlint:hotpath
func (s *Stream) Next(ctx context.Context) ([]float64, error) {
	n, err := s.gauss.Next(ctx, s.gbuf)
	if err != nil {
		if errors.Is(err, io.EOF) {
			return nil, io.EOF
		}
		return nil, err
	}
	out := s.out[:n]
	for i, v := range s.gbuf[:n] {
		y := s.tab.Value(specfn.NormCDF(v))
		out[i] = y
		s.mon.Add(y)
	}
	s.pos += n

	scope := obs.From(ctx)
	scope.Count("stream.blocks", 1)
	scope.Count("stream.frames", int64(n))
	p := s.mon.Probe()
	scope.SetGauge("stream.mean", p.Mean)
	scope.SetGauge("stream.std", p.Std)
	if !math.IsNaN(p.H) {
		scope.SetGauge("stream.hhat", p.H)
	}
	if !math.IsNaN(p.HMavar) {
		scope.SetGauge("stream.hhat.mavar", p.HMavar)
	}
	if !math.IsNaN(p.HMavarErr) {
		scope.SetGauge("stream.hhat.mavar.err", p.HMavarErr)
	}
	if p.N >= driftMinFrames {
		if s.wantMean > 0 && math.Abs(p.Mean-s.wantMean) > driftTol*s.wantMean {
			scope.Count("stream.drift.mean", 1)
		}
		if s.wantStd > 0 && math.Abs(p.Std-s.wantStd) > driftTol*s.wantStd {
			scope.Count("stream.drift.std", 1)
		}
		if !math.IsNaN(p.HMavar) && !math.IsNaN(p.HMavarErr) &&
			math.Abs(p.HMavar-s.cfg.Model.Hurst) > hurstDriftSigma/1.96*p.HMavarErr {
			scope.Count("stream.drift.hurst", 1)
		}
	}
	return out, nil
}

// Collect drains src into one materialized series. It exists for
// consumers that genuinely need the whole trace at once (the queueing
// simulator, tests); streaming consumers should iterate Next instead.
func Collect(ctx context.Context, src BlockSource) ([]float64, error) {
	var out []float64
	for {
		blk, err := src.Next(ctx)
		if errors.Is(err, io.EOF) {
			return out, nil
		}
		if err != nil {
			return nil, err
		}
		out = append(out, blk...)
	}
}
