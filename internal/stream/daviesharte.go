package stream

import (
	"context"
	"fmt"
	"io"
	"math"
	"math/rand/v2"

	"vbr/internal/fgn"
	"vbr/internal/genpool"
)

// dhStitch streams fractional Gaussian noise in O(block) memory by
// generating independent Davies–Harte chunks of length block+overlap
// and crossfading consecutive chunks over the overlap region.
//
// Chunk i covers absolute frames [i·B, (i+1)·B+L): the first L samples
// are blended with the tail carried over from chunk i−1, the middle B−L
// are emitted as-is, and the final L become the carry for chunk i+1.
// The blend uses power-preserving weights
//
//	out[j] = cos(θ_j)·carry[j] + sin(θ_j)·fresh[j],  θ_j = (j+½)/L · π/2
//
// so cos²+sin² = 1 keeps the mix of two independent N(0,1) samples
// exactly N(0,1): the marginal is preserved everywhere, and only the
// autocorrelation across a seam is approximate (each chunk is
// internally an exact FGN segment). The seam error is what the KS and
// Whittle-Ĥ tolerance tests bound.
type dhStitch struct {
	n       int
	block   int
	overlap int
	h       float64
	seed    uint64
	// pool, when non-nil, caches the chunk eigenvalue vector: every
	// chunk has the same length block+overlap, so one cached FFT serves
	// all chunks of this stream — and every other stream with the same
	// (H, chunk length). nil falls back to the one-shot sampler.
	pool *genpool.Pool

	idx   int // next chunk index
	pos   int // frames emitted
	carry []float64
}

// Next implements the gaussian contract: it emits one stitched block per
// call (the final block may be short), reusing dst as the only
// caller-visible buffer.
//vbrlint:hotpath
func (d *dhStitch) Next(ctx context.Context, dst []float64) (int, error) {
	if d.pos >= d.n {
		return 0, io.EOF
	}
	if len(dst) < d.block {
		return 0, fmt.Errorf("stream: davies-harte block buffer too small: %d < %d", len(dst), d.block)
	}
	// Each chunk draws from its own PCG stream of the shared seed, so
	// chunks are independent and any block is regenerable in isolation.
	rng := rand.New(rand.NewPCG(d.seed, dhStreamSalt+uint64(d.idx)))
	var chunk []float64
	var err error
	if d.pool != nil {
		var lam []float64
		if lam, err = d.pool.DaviesHarteEigen(ctx, d.h, d.block+d.overlap); err == nil {
			chunk, err = fgn.DaviesHarteFromEigenCtx(ctx, d.block+d.overlap, lam, rng)
		}
	} else {
		chunk, err = fgn.DaviesHarteCtx(ctx, d.block+d.overlap, d.h, rng)
	}
	if err != nil {
		return 0, fmt.Errorf("stream: davies-harte chunk %d: %w", d.idx, err)
	}
	emit := d.block
	if rem := d.n - d.pos; emit > rem {
		emit = rem
	}
	start := 0
	if d.idx > 0 && d.overlap > 0 {
		for ; start < d.overlap && start < emit; start++ {
			theta := (float64(start) + 0.5) / float64(d.overlap) * (math.Pi / 2)
			dst[start] = math.Cos(theta)*d.carry[start] + math.Sin(theta)*chunk[start]
		}
	}
	copy(dst[start:emit], chunk[start:emit])
	if d.overlap > 0 {
		d.carry = append(d.carry[:0], chunk[d.block:]...)
	}
	d.idx++
	d.pos += emit
	return emit, nil
}
