package stream

import (
	"context"
	"math"
	"testing"

	"vbr/internal/core"
	"vbr/internal/genpool"
)

// TestStreamPooledBitwise pins the cache invariant at the stream layer:
// for both backends, a pooled stream emits exactly the frames of a
// pool-free stream — on a cold pool and again on a warm one.
func TestStreamPooledBitwise(t *testing.T) {
	base := Config{
		Model: core.Model{MuGamma: 27791, SigmaGamma: 6254, TailSlope: 12, Hurst: 0.8},
		N:     6000, BlockSize: 512, Seed: 31,
	}
	ctx := context.Background()
	for _, backend := range []Backend{Hosking, DaviesHarte} {
		cfg := base
		cfg.Backend = backend
		cold, err := Open(cfg)
		if err != nil {
			t.Fatal(err)
		}
		want, err := Collect(ctx, cold)
		if err != nil {
			t.Fatal(err)
		}
		pool := genpool.New(0)
		for round := 0; round < 2; round++ { // cold pool, then warm
			cfg.Pool = pool
			s, err := OpenCtx(ctx, cfg)
			if err != nil {
				t.Fatal(err)
			}
			got, err := Collect(ctx, s)
			if err != nil {
				t.Fatal(err)
			}
			if len(got) != len(want) {
				t.Fatalf("%v round %d: %d frames, want %d", backend, round, len(got), len(want))
			}
			for i := range want {
				if math.Float64bits(got[i]) != math.Float64bits(want[i]) {
					t.Fatalf("%v round %d: frame %d differs", backend, round, i)
				}
			}
		}
		if st := pool.Stats(); st.Hits == 0 {
			t.Fatalf("%v: warm round never hit the pool: %+v", backend, st)
		}
	}
}
