package stream

import (
	"math"

	"vbr/internal/lrd"
)

// minAggSamples is the minimum number of aggregated points a level must
// hold before its variance enters the Ĥ fit; below that the sample
// variance is too noisy to regress on.
const minAggSamples = 8

// aggLevel accumulates the variance of the m-aggregated series
// X^(m)_i = (X_{im+1}+…+X_{(i+1)m})/m with Welford's update, the
// streaming half of the §4.1 variance–time plot.
type aggLevel struct {
	m    int
	acc  float64
	fill int

	n    int64
	mean float64
	m2   float64
}

//vbrlint:hotpath
func (l *aggLevel) add(v float64) {
	l.acc += v
	l.fill++
	if l.fill < l.m {
		return
	}
	s := l.acc / float64(l.m)
	l.acc, l.fill = 0, 0
	l.n++
	d := s - l.mean
	l.mean += d / float64(l.n)
	l.m2 += d * (s - l.mean)
}

func (l *aggLevel) variance() float64 {
	if l.n < 2 {
		return math.NaN()
	}
	return l.m2 / float64(l.n)
}

// Monitor validates a stream online with two independent Ĥ probes plus
// running moments, all in O(log n) state regardless of how many frames
// pass through:
//
//   - Welford moments at geometrically spaced aggregation levels
//     m = 1, 4, 16, … feed the variance–time relation
//     Var(X^(m)) ∝ m^(2H−2), i.e. H = 1 + slope/2 of log Var against
//     log m — the cheap, classical drift alarm.
//   - An lrd.OnlineMAVAR tracks the modified Allan variance across
//     octave-spaced τ; its Ĥ gets a bias correction and a calibrated
//     ±1.96σ half-width from the committed battery table, so snapshots
//     report honest uncertainty, not a bare point value.
type Monitor struct {
	levels []*aggLevel
	mavar  *lrd.OnlineMAVAR
}

// maxAggLevel picks the largest aggregation level worth tracking for a
// stream of n frames: the level must be able to accumulate at least
// minAggSamples aggregated points.
func maxAggLevel(n int) int {
	m := 1
	for m*4*minAggSamples <= n {
		m *= 4
	}
	return m
}

// NewMonitor builds a monitor sized for a stream of n frames:
// aggregation levels 1, 4, 16, … up to maxAggLevel(n), and MAVAR
// octaves 1, 2, 4, … up to lrd.MaxMavarTau(n).
func NewMonitor(n int) *Monitor {
	mo := &Monitor{mavar: lrd.NewOnlineMAVAR(lrd.MaxMavarTau(n))}
	for m := 1; m <= maxAggLevel(n); m *= 4 {
		mo.levels = append(mo.levels, &aggLevel{m: m})
	}
	return mo
}

// Add folds one frame into every aggregation level and the MAVAR
// accumulators.
//vbrlint:hotpath
func (mo *Monitor) Add(v float64) {
	for _, l := range mo.levels {
		l.add(v)
	}
	mo.mavar.Add(v)
}

// Probe is a point-in-time validation snapshot of a stream.
type Probe struct {
	// N is the number of frames observed.
	N int64
	// Mean and Std are the running sample moments of the raw series.
	Mean, Std float64
	// H is the streaming variance–time estimate of the Hurst parameter,
	// NaN until at least two aggregation levels hold minAggSamples
	// points. The estimator trades precision for O(1) state — treat it
	// as a drift alarm, not a substitute for the Whittle estimator.
	H float64
	// Levels is the number of aggregation levels behind H.
	Levels int
	// HMavar is the streaming modified-Allan-variance estimate of the
	// Hurst parameter, bias-corrected against the committed calibration
	// battery; NaN until at least two octaves hold enough windows.
	HMavar float64
	// HMavarErr is the calibrated 1.96σ (95%) half-width around HMavar,
	// NaN when the battery has no applicable cell.
	HMavarErr float64
	// MavarOctaves is the number of τ octaves behind HMavar.
	MavarOctaves int
}

// maxProbeLevels bounds the log-log regression scratch in Probe.
// Levels are geometrically spaced (m = 1, 4, 16, …), so 32 levels
// would need a stream of 4³¹ frames — the fixed arrays always suffice
// and keep the per-block probe allocation-free.
const maxProbeLevels = 32

// Probe summarizes the monitor's current state.
//
//vbrlint:hotpath
func (mo *Monitor) Probe() Probe {
	base := mo.levels[0]
	p := Probe{N: base.n, Mean: base.mean, H: math.NaN(), HMavar: math.NaN(), HMavarErr: math.NaN()}
	if v := base.variance(); !math.IsNaN(v) {
		p.Std = math.Sqrt(v)
	}
	if raw, oct := mo.mavar.Estimate(); !math.IsNaN(raw) {
		bar := lrd.DefaultCalibration().Bar(lrd.EstMAVAR, raw, int(base.n))
		p.HMavar = bar.H
		p.HMavarErr = bar.CI95
		p.MavarOctaves = oct
	}
	var lxa, lya [maxProbeLevels]float64
	lx, ly := lxa[:0], lya[:0]
	for _, l := range mo.levels {
		if l.n < minAggSamples {
			continue
		}
		v := l.variance()
		if math.IsNaN(v) || v <= 0 {
			continue
		}
		lx = append(lx, math.Log(float64(l.m)))
		ly = append(ly, math.Log(v))
	}
	if len(lx) >= 2 {
		p.H = 1 + slope(lx, ly)/2
		p.Levels = len(lx)
	}
	return p
}

// slope is the least-squares slope of y against x.
func slope(x, y []float64) float64 {
	n := float64(len(x))
	var sx, sy, sxx, sxy float64
	for i := range x {
		sx += x[i]
		sy += y[i]
		sxx += x[i] * x[i]
		sxy += x[i] * y[i]
	}
	return (n*sxy - sx*sy) / (n*sxx - sx*sx)
}
