package stream

import (
	"context"
	"fmt"
	"io"
	"math"
	"math/rand/v2"

	"vbr/internal/fgn"
)

// stitch streams fractional Gaussian noise in O(block) memory by
// generating independent fGn chunks of length block+overlap and
// crossfading consecutive chunks over the overlap region. The chunk
// synthesis is pluggable — Davies–Harte and Paxson share every line of
// the seam logic and differ only in how a chunk is drawn.
//
// Chunk i covers absolute frames [i·B, (i+1)·B+L): the first L samples
// are blended with the tail carried over from chunk i−1, the middle B−L
// are emitted as-is, and the final L become the carry for chunk i+1.
// The blend uses power-preserving weights
//
//	out[j] = cos(θ_j)·carry[j] + sin(θ_j)·fresh[j],  θ_j = (j+½)/L · π/2
//
// so cos²+sin² = 1 keeps the mix of two independent N(0,1) samples
// exactly N(0,1): the marginal is preserved everywhere, and only the
// autocorrelation across a seam is approximate (each chunk is
// internally one backend draw). The seam error is what the KS and
// Whittle-Ĥ tolerance tests bound.
type stitch struct {
	n       int
	block   int
	overlap int
	name    string // backend name for error messages
	// chunk synthesizes independent chunk idx: block+overlap points of
	// fGn drawn from the chunk's own rng stream, so any block is
	// regenerable in isolation.
	chunk func(ctx context.Context, idx int) ([]float64, error)

	idx   int // next chunk index
	pos   int // frames emitted
	carry []float64
}

// newDHStitch builds the Davies–Harte chunked backend: exact circulant
// embedding within chunks. With a pool, the chunk eigenvalue vector is
// cached — every chunk has the same length block+overlap, so one cached
// FFT serves all chunks of this stream and every other stream with the
// same (H, chunk length).
func newDHStitch(cfg Config) *stitch {
	clen := cfg.BlockSize + cfg.Overlap
	return &stitch{
		n: cfg.N, block: cfg.BlockSize, overlap: cfg.Overlap,
		name: "davies-harte",
		chunk: func(ctx context.Context, idx int) ([]float64, error) {
			rng := rand.New(rand.NewPCG(cfg.Seed, dhStreamSalt+uint64(idx)))
			if cfg.Pool != nil {
				lam, err := cfg.Pool.DaviesHarteEigen(ctx, cfg.Model.Hurst, clen)
				if err != nil {
					return nil, err
				}
				return fgn.DaviesHarteFromEigenCtx(ctx, clen, lam, rng)
			}
			return fgn.DaviesHarteCtx(ctx, clen, cfg.Model.Hurst, rng)
		},
	}
}

// newPaxsonStitch builds the Paxson chunked backend: FFT-approximate
// spectral synthesis within chunks, the fastest engine. With a pool,
// the (H, chunk length)-keyed expected-power vector is cached the same
// way the Davies–Harte eigenvalues are. Chunks draw from their own PCG
// streams under paxsonStreamSalt, so a Paxson stream and a
// Davies–Harte stream of the same seed stay independent.
func newPaxsonStitch(cfg Config) *stitch {
	clen := cfg.BlockSize + cfg.Overlap
	return &stitch{
		n: cfg.N, block: cfg.BlockSize, overlap: cfg.Overlap,
		name: "paxson",
		chunk: func(ctx context.Context, idx int) ([]float64, error) {
			rng := rand.New(rand.NewPCG(cfg.Seed, paxsonStreamSalt+uint64(idx)))
			if cfg.Pool != nil {
				p, err := cfg.Pool.PaxsonSpectrum(ctx, cfg.Model.Hurst, clen)
				if err != nil {
					return nil, err
				}
				return fgn.PaxsonFromSpectrumCtx(ctx, clen, p, rng)
			}
			return fgn.PaxsonCtx(ctx, clen, cfg.Model.Hurst, rng)
		},
	}
}

// Next implements the gaussian contract: it emits one stitched block per
// call (the final block may be short), reusing dst as the only
// caller-visible buffer.
//vbrlint:hotpath
func (d *stitch) Next(ctx context.Context, dst []float64) (int, error) {
	if d.pos >= d.n {
		return 0, io.EOF
	}
	if len(dst) < d.block {
		return 0, fmt.Errorf("stream: %s block buffer too small: %d < %d", d.name, len(dst), d.block)
	}
	chunk, err := d.chunk(ctx, d.idx)
	if err != nil {
		return 0, fmt.Errorf("stream: %s chunk %d: %w", d.name, d.idx, err)
	}
	emit := d.block
	if rem := d.n - d.pos; emit > rem {
		emit = rem
	}
	start := 0
	if d.idx > 0 && d.overlap > 0 {
		for ; start < d.overlap && start < emit; start++ {
			theta := (float64(start) + 0.5) / float64(d.overlap) * (math.Pi / 2)
			dst[start] = math.Cos(theta)*d.carry[start] + math.Sin(theta)*chunk[start]
		}
	}
	copy(dst[start:emit], chunk[start:emit])
	if d.overlap > 0 {
		d.carry = append(d.carry[:0], chunk[d.block:]...)
	}
	d.idx++
	d.pos += emit
	return emit, nil
}
