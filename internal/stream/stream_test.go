package stream

import (
	"context"
	"errors"
	"io"
	"math"
	"math/rand/v2"
	"runtime"
	"testing"

	"vbr/internal/backend"
	"vbr/internal/core"
	"vbr/internal/dist"
	"vbr/internal/errs"
	"vbr/internal/lrd"
)

// paperModel mirrors the Table 4 Star Wars parameters used across the
// repo's tests.
func paperModel() core.Model {
	return core.Model{MuGamma: 27791, SigmaGamma: 6254, TailSlope: 12, Hurst: 0.8}
}

func collect(t *testing.T, cfg Config) []float64 {
	t.Helper()
	s, err := Open(cfg)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	out, err := Collect(context.Background(), s)
	if err != nil {
		t.Fatalf("Collect: %v", err)
	}
	if len(out) != cfg.N {
		t.Fatalf("collected %d frames, want %d", len(out), cfg.N)
	}
	if s.Pos() != cfg.N {
		t.Fatalf("Pos()=%d after drain, want %d", s.Pos(), cfg.N)
	}
	return out
}

// TestHoskingStreamBitwiseMatchesBatch is the block-boundary correctness
// contract for the exact backend: streaming must not change a single
// bit relative to the batch generator. Standardize is off because it is
// a whole-series operation by definition; the streamed pipeline is
// otherwise the full Gaussian→Eq. 13 path.
func TestHoskingStreamBitwiseMatchesBatch(t *testing.T) {
	const n, seed = 3000, 7
	m := paperModel()
	batch, err := m.Generate(n, core.GenOptions{
		Generator: core.HoskingExact, TableSize: 10000, Standardize: false, Seed: seed,
	})
	if err != nil {
		t.Fatalf("batch Generate: %v", err)
	}
	streamed := collect(t, Config{Model: m, N: n, BlockSize: 256, Seed: seed, Backend: Hosking})
	for i := range batch {
		if math.Float64bits(batch[i]) != math.Float64bits(streamed[i]) {
			t.Fatalf("frame %d differs: batch %v stream %v", i, batch[i], streamed[i])
		}
	}
}

// TestHoskingStreamBlockSizeInvariance: the block size is a transport
// detail and must not alter the series.
func TestHoskingStreamBlockSizeInvariance(t *testing.T) {
	const n, seed = 1200, 3
	m := paperModel()
	ref := collect(t, Config{Model: m, N: n, BlockSize: n, Seed: seed, Backend: Hosking})
	for _, bs := range []int{1, 97, 256, 5000} {
		got := collect(t, Config{Model: m, N: n, BlockSize: bs, Seed: seed, Backend: Hosking})
		for i := range ref {
			if math.Float64bits(ref[i]) != math.Float64bits(got[i]) {
				t.Fatalf("block size %d: frame %d differs (%v vs %v)", bs, i, got[i], ref[i])
			}
		}
	}
}

// TestDaviesHarteStreamMarginal: overlap stitching must preserve the
// Gamma/Pareto marginal. The KS tolerance is looser than an iid bound
// because LRD correlation inflates the empirical-CDF deviation.
func TestDaviesHarteStreamMarginal(t *testing.T) {
	m := paperModel()
	cfg := Config{Model: m, N: 1 << 16, BlockSize: 4096, Overlap: 1024, Seed: 11, Backend: DaviesHarte}
	frames := collect(t, cfg)
	gp, err := m.Marginal()
	if err != nil {
		t.Fatalf("Marginal: %v", err)
	}
	d, err := dist.KolmogorovDistance(frames, gp)
	if err != nil {
		t.Fatalf("KolmogorovDistance: %v", err)
	}
	if d > 0.02 {
		t.Errorf("KS distance to model marginal = %v, want ≤ 0.02", d)
	}
}

// TestDaviesHarteStreamHurst: stitching seams must not destroy the
// long-range dependence. The Whittle estimator carries a small upward
// bias on the heavy-tailed marginal (it lands near 0.86 for H=0.8 even
// on the batch generator), so the test compares the streamed series
// against an equally long batch Davies–Harte run: stitching must not
// move Ĥ beyond the combined confidence intervals.
func TestDaviesHarteStreamHurst(t *testing.T) {
	const n = 1 << 16
	m := paperModel()
	frames := collect(t, Config{Model: m, N: n, BlockSize: 4096, Overlap: 1024, Seed: 5, Backend: DaviesHarte})
	ws, err := lrd.Whittle(frames)
	if err != nil {
		t.Fatalf("Whittle(stream): %v", err)
	}
	batch, err := m.Generate(n, core.GenOptions{
		Generator: core.DaviesHarteFast, TableSize: 10000, Standardize: true, Seed: 5,
	})
	if err != nil {
		t.Fatalf("batch Generate: %v", err)
	}
	wb, err := lrd.Whittle(batch)
	if err != nil {
		t.Fatalf("Whittle(batch): %v", err)
	}
	if tol := ws.CI95 + wb.CI95 + 0.01; math.Abs(ws.H-wb.H) > tol {
		t.Errorf("stream Ĥ = %v vs batch Ĥ = %v, want within %v", ws.H, wb.H, tol)
	}
	// And the absolute estimate must still be unambiguously LRD near the
	// model's H, not pulled toward 0.5 by the seams.
	if ws.H < 0.75 || ws.H > 0.95 {
		t.Errorf("stream Ĥ = %v, want in [0.75, 0.95] for model H=%v", ws.H, m.Hurst)
	}
}

// TestDaviesHarteShortFinalBlock: N not a multiple of the block size
// must still drain exactly N frames.
func TestDaviesHarteShortFinalBlock(t *testing.T) {
	cfg := Config{Model: paperModel(), N: 10_000, BlockSize: 4096, Overlap: 512, Seed: 2, Backend: DaviesHarte}
	frames := collect(t, cfg)
	for i, f := range frames {
		if math.IsNaN(f) || f < 0 {
			t.Fatalf("frame %d invalid: %v", i, f)
		}
	}
}

// TestDaviesHarteBoundedMemory is the O(block) acceptance check: a
// 400k-frame stream must not grow the live heap anywhere near the
// ~3.2 MB an O(n) float64 buffer would need. The streamed blocks are
// consumed and dropped, so only the stream's own state may be live.
func TestDaviesHarteBoundedMemory(t *testing.T) {
	if testing.Short() {
		t.Skip("memory profile in -short mode")
	}
	const n, block = 400_000, 2048
	s, err := Open(Config{Model: paperModel(), N: n, BlockSize: block, Overlap: 512, Seed: 9, Backend: DaviesHarte})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	ctx := context.Background()

	var ms runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&ms)
	base := ms.HeapAlloc

	var maxLive uint64
	blocks := 0
	var sum float64
	for {
		blk, err := s.Next(ctx)
		if errors.Is(err, io.EOF) {
			break
		}
		if err != nil {
			t.Fatalf("Next: %v", err)
		}
		for _, v := range blk {
			sum += v
		}
		blocks++
		if blocks%32 == 0 {
			runtime.GC()
			runtime.ReadMemStats(&ms)
			if ms.HeapAlloc > maxLive {
				maxLive = ms.HeapAlloc
			}
		}
	}
	if sum <= 0 {
		t.Fatalf("stream produced non-positive total %v", sum)
	}
	if s.Pos() != n {
		t.Fatalf("Pos()=%d, want %d", s.Pos(), n)
	}
	// An O(n) pipeline holds ≥ n·8 B ≈ 3.2 MB of frames alive; the
	// stream's own state is a few block-sized buffers plus the quantile
	// table (~0.3 MB). 1.5 MB of headroom separates the two regimes.
	const limit = 1_500_000
	if maxLive > base+limit {
		t.Errorf("live heap grew by %d bytes (base %d, max %d), want < %d — stream is not O(block)",
			maxLive-base, base, maxLive, limit)
	}
}

// TestStreamCancellation: a cancelled context surfaces as
// errs.ErrCancelled from both backends.
func TestStreamCancellation(t *testing.T) {
	for _, b := range []Backend{Hosking, DaviesHarte} {
		s, err := Open(Config{Model: paperModel(), N: 50_000, BlockSize: 1024, Seed: 1, Backend: b})
		if err != nil {
			t.Fatalf("%v: Open: %v", b, err)
		}
		ctx, cancel := context.WithCancel(context.Background())
		if _, err := s.Next(ctx); err != nil {
			t.Fatalf("%v: first block: %v", b, err)
		}
		cancel()
		_, err = s.Next(ctx)
		if !errors.Is(err, errs.ErrCancelled) {
			t.Errorf("%v: after cancel got %v, want errs.ErrCancelled", b, err)
		}
	}
}

// TestStreamProbeTracksMoments: after a long Hosking stream the online
// probe must sit near the model marginal and the configured H.
func TestStreamProbeTracksMoments(t *testing.T) {
	m := paperModel()
	s, err := Open(Config{Model: m, N: 1 << 16, BlockSize: 4096, Seed: 13, Backend: DaviesHarte})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	if _, err := Collect(context.Background(), s); err != nil {
		t.Fatalf("Collect: %v", err)
	}
	p := s.Probe()
	if p.N != 1<<16 {
		t.Fatalf("probe N=%d", p.N)
	}
	gp, err := m.Marginal()
	if err != nil {
		t.Fatalf("Marginal: %v", err)
	}
	if rel := math.Abs(p.Mean-gp.Mean()) / gp.Mean(); rel > 0.1 {
		t.Errorf("probe mean %v vs marginal %v (rel %v)", p.Mean, gp.Mean(), rel)
	}
	sd := math.Sqrt(gp.Variance())
	if rel := math.Abs(p.Std-sd) / sd; rel > 0.25 {
		t.Errorf("probe σ %v vs marginal %v (rel %v)", p.Std, sd, rel)
	}
	if math.IsNaN(p.H) || p.Levels < 2 {
		t.Fatalf("probe Ĥ unavailable: %+v", p)
	}
	if p.H < 0.55 || p.H > 1.05 {
		t.Errorf("probe Ĥ = %v, want within drift-alarm range of H=0.8", p.H)
	}
	if math.IsNaN(p.HMavar) || p.MavarOctaves < 2 {
		t.Fatalf("probe MAVAR Ĥ unavailable: %+v", p)
	}
	if !(p.HMavarErr > 0) || p.HMavarErr > 0.2 {
		t.Errorf("probe MAVAR error bar = %v, want a finite calibrated half-width", p.HMavarErr)
	}
	// The calibrated MAVAR probe is the precise one: its 95% band around
	// the configured H=0.8 is a few hundredths wide at 64k frames. Allow
	// double the half-width for the marginal transform and stitching.
	if math.Abs(p.HMavar-0.8) > 2*p.HMavarErr+0.04 {
		t.Errorf("probe MAVAR Ĥ = %v ± %v, want near H=0.8", p.HMavar, p.HMavarErr)
	}
}

// TestMonitorIIDBaseline: white noise must probe near H = 0.5 with unit
// moments — the monitor's sanity anchor.
func TestMonitorIIDBaseline(t *testing.T) {
	mo := NewMonitor(1 << 16)
	rng := rand.New(rand.NewPCG(42, 0))
	for i := 0; i < 1<<16; i++ {
		mo.Add(rng.NormFloat64())
	}
	p := mo.Probe()
	if math.Abs(p.Mean) > 0.05 {
		t.Errorf("iid mean %v", p.Mean)
	}
	if math.Abs(p.Std-1) > 0.05 {
		t.Errorf("iid σ %v", p.Std)
	}
	if math.Abs(p.H-0.5) > 0.12 {
		t.Errorf("iid Ĥ = %v, want ≈ 0.5", p.H)
	}
}

// TestMonitorBoundedMemory pins the O(1)-state claim of the monitor
// itself: feeding 400k frames through both Ĥ probes (variance–time
// levels and the MAVAR octave accumulators) must not grow the live heap
// measurably — all state is the fixed per-level scalars allocated at
// construction.
func TestMonitorBoundedMemory(t *testing.T) {
	if testing.Short() {
		t.Skip("memory profile in -short mode")
	}
	const n = 400_000
	mo := NewMonitor(n)
	rng := rand.New(rand.NewPCG(7, 0))

	var ms runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&ms)
	base := ms.HeapAlloc

	for i := 0; i < n; i++ {
		mo.Add(rng.NormFloat64())
	}
	p := mo.Probe()

	runtime.GC()
	runtime.ReadMemStats(&ms)
	if grew := ms.HeapAlloc - base; ms.HeapAlloc > base && grew > 64<<10 {
		t.Errorf("live heap grew by %d bytes over %d frames, want ≈ 0 — monitor is not O(1)", grew, n)
	}
	if p.N != n || math.IsNaN(p.HMavar) || !(p.HMavarErr > 0) {
		t.Fatalf("probe after %d frames = %+v, want MAVAR Ĥ with calibrated error bar", n, p)
	}
	// White noise is H = 0.5; the battery grid starts at 0.6, so the
	// corrected estimate clamps to the edge cell — still near 0.5.
	if math.Abs(p.HMavar-0.5) > 0.1 {
		t.Errorf("iid MAVAR Ĥ = %v, want ≈ 0.5", p.HMavar)
	}
}

// TestMonitorZeroAlloc pins the hotpath guarantee hotalloc enforces
// statically: per-frame Add and per-block Probe never allocate. Probe's
// log-log regression scratch lives in fixed arrays, so validating a
// stream adds no GC pressure to the serving path.
func TestMonitorZeroAlloc(t *testing.T) {
	mo := NewMonitor(1 << 14)
	rng := rand.New(rand.NewPCG(42, 0))
	for i := 0; i < 1<<14; i++ {
		mo.Add(rng.NormFloat64())
	}
	if allocs := testing.AllocsPerRun(100, func() { mo.Add(1.0) }); allocs != 0 {
		t.Errorf("Monitor.Add allocates %v per call, want 0", allocs)
	}
	var sink Probe
	if allocs := testing.AllocsPerRun(100, func() { sink = mo.Probe() }); allocs != 0 {
		t.Errorf("Monitor.Probe allocates %v per call, want 0", allocs)
	}
	if sink.Levels < 2 {
		t.Fatalf("probe used %d levels, want ≥ 2 so the regression actually ran", sink.Levels)
	}
}

func TestConfigValidate(t *testing.T) {
	base := Config{Model: paperModel(), N: 100}
	cases := []struct {
		name string
		mut  func(*Config)
	}{
		{"zero N", func(c *Config) { c.N = 0 }},
		{"negative overlap", func(c *Config) { c.Overlap = -1 }},
		{"overlap ≥ block (DH)", func(c *Config) { c.Backend = DaviesHarte; c.BlockSize = 64; c.Overlap = 64 }},
		{"overlap ≥ block (Paxson)", func(c *Config) { c.Backend = backend.Paxson; c.BlockSize = 64; c.Overlap = 64 }},
		{"overlap ≥ block (Auto)", func(c *Config) { c.Backend = backend.Auto; c.BlockSize = 64; c.Overlap = 64 }},
		{"tiny table", func(c *Config) { c.TableSize = 1 }},
		{"bad backend", func(c *Config) { c.Backend = Backend(99) }},
		{"bad model", func(c *Config) { c.Model.Hurst = 1.5 }},
	}
	for _, tc := range cases {
		cfg := base
		tc.mut(&cfg)
		if _, err := Open(cfg); err == nil {
			t.Errorf("%s: Open accepted invalid config", tc.name)
		}
	}
	// An out-of-range backend must fail through the shared sentinel so
	// CLI and HTTP classify it as a request error.
	bad := base
	bad.Backend = Backend(99)
	if _, err := Open(bad); !errors.Is(err, errs.ErrUnknownBackend) {
		t.Errorf("Backend(99): got %v, want ErrUnknownBackend", err)
	}
}

func TestBackendRoundTrip(t *testing.T) {
	for _, b := range []Backend{Hosking, DaviesHarte, backend.Paxson, backend.Auto} {
		got, err := ParseBackend(b.String())
		if err != nil || got != b {
			t.Errorf("round trip %v: got %v, %v", b, got, err)
		}
	}
	if _, err := ParseBackend("fourier"); !errors.Is(err, errs.ErrUnknownBackend) {
		t.Error("ParseBackend(junk) must fail with ErrUnknownBackend")
	}
}
