package stream

import (
	"context"
	"math"
	"testing"

	"vbr/internal/backend"
	"vbr/internal/core"
	"vbr/internal/dist"
	"vbr/internal/genpool"
	"vbr/internal/lrd"
)

// TestPaxsonStreamMarginal: the Paxson chunked backend must preserve
// the Gamma/Pareto marginal through both the approximate synthesis and
// the stitching seams.
func TestPaxsonStreamMarginal(t *testing.T) {
	m := paperModel()
	cfg := Config{Model: m, N: 1 << 16, BlockSize: 4096, Overlap: 1024, Seed: 11, Backend: backend.Paxson}
	frames := collect(t, cfg)
	gp, err := m.Marginal()
	if err != nil {
		t.Fatalf("Marginal: %v", err)
	}
	d, err := dist.KolmogorovDistance(frames, gp)
	if err != nil {
		t.Fatalf("KolmogorovDistance: %v", err)
	}
	if d > 0.02 {
		t.Errorf("KS distance to model marginal = %v, want ≤ 0.02", d)
	}
}

// TestPaxsonBlockAdapterVsBatch is the block-adapter tolerance contract:
// a stitched Paxson stream and a batch Paxson generation of the same
// length must agree on Ĥ within the combined Whittle confidence
// intervals — the seams and the independent-chunk structure must not
// move the estimate beyond sampling error.
func TestPaxsonBlockAdapterVsBatch(t *testing.T) {
	const n = 1 << 16
	m := paperModel()
	frames := collect(t, Config{Model: m, N: n, BlockSize: 4096, Overlap: 1024, Seed: 5, Backend: backend.Paxson})
	ws, err := lrd.Whittle(frames)
	if err != nil {
		t.Fatalf("Whittle(stream): %v", err)
	}
	batch, err := m.Generate(n, core.GenOptions{
		Generator: backend.Paxson, TableSize: 10000, Standardize: true, Seed: 5,
	})
	if err != nil {
		t.Fatalf("batch Generate: %v", err)
	}
	wb, err := lrd.Whittle(batch)
	if err != nil {
		t.Fatalf("Whittle(batch): %v", err)
	}
	if tol := ws.CI95 + wb.CI95 + 0.01; math.Abs(ws.H-wb.H) > tol {
		t.Errorf("stream Ĥ = %v vs batch Ĥ = %v, want within %v", ws.H, wb.H, tol)
	}
	if ws.H < 0.75 || ws.H > 0.95 {
		t.Errorf("stream Ĥ = %v, want in [0.75, 0.95] for model H=%v", ws.H, m.Hurst)
	}
}

// TestPaxsonShortFinalBlock: N not a multiple of the block size must
// still drain exactly N valid frames.
func TestPaxsonShortFinalBlock(t *testing.T) {
	cfg := Config{Model: paperModel(), N: 10_000, BlockSize: 4096, Overlap: 512, Seed: 2, Backend: backend.Paxson}
	frames := collect(t, cfg)
	for i, f := range frames {
		if math.IsNaN(f) || f < 0 {
			t.Fatalf("frame %d invalid: %v", i, f)
		}
	}
}

// TestStreamAutoResolvesToPaxson pins the streaming half of the Auto
// policy: a stream is long-running by construction, so Auto always
// resolves to Paxson, and the resolution is visible via Backend() (the
// value the HTTP layer echoes). Concrete backends pass through.
func TestStreamAutoResolvesToPaxson(t *testing.T) {
	cases := []struct {
		in   Backend
		want Backend
	}{
		{backend.Auto, backend.Paxson},
		{backend.Paxson, backend.Paxson},
		{backend.DaviesHarte, backend.DaviesHarte},
		{backend.Hosking, backend.Hosking},
	}
	for _, c := range cases {
		s, err := Open(Config{Model: paperModel(), N: 64, Seed: 1, Backend: c.in})
		if err != nil {
			t.Fatalf("Open(%v): %v", c.in, err)
		}
		if got := s.Backend(); got != c.want {
			t.Errorf("Open(%v).Backend() = %v, want %v", c.in, got, c.want)
		}
	}
}

// TestPaxsonStreamPooledBitwise: serving the chunk spectrum from a
// shared pool must not change a single output bit, and repeated chunks
// must hit the cache (one spectrum serves every chunk of the stream).
func TestPaxsonStreamPooledBitwise(t *testing.T) {
	cfg := Config{Model: paperModel(), N: 1 << 14, BlockSize: 2048, Overlap: 512, Seed: 9, Backend: backend.Paxson}
	cold := collect(t, cfg)
	pooled := cfg
	pooled.Pool = genpool.New(0)
	warm := collect(t, pooled)
	for i := range cold {
		if math.Float64bits(cold[i]) != math.Float64bits(warm[i]) {
			t.Fatalf("frame %d differs: cold %v pooled %v", i, cold[i], warm[i])
		}
	}
	st := pooled.Pool.Stats()
	if st.Hits == 0 {
		t.Errorf("expected cache hits across chunks, got %+v", st)
	}
}

// TestPaxsonStreamDeterministic: same config, same bits — and block
// size is part of the Paxson stream's identity (chunks are independent
// per index), so this only pins identical configurations.
func TestPaxsonStreamDeterministic(t *testing.T) {
	cfg := Config{Model: paperModel(), N: 8192, BlockSize: 1024, Overlap: 256, Seed: 21, Backend: backend.Paxson}
	a := collect(t, cfg)
	b := collect(t, cfg)
	for i := range a {
		if math.Float64bits(a[i]) != math.Float64bits(b[i]) {
			t.Fatalf("frame %d not deterministic", i)
		}
	}
}

// TestPaxsonStreamIndependentOfDH: a Paxson stream and a Davies–Harte
// stream with the same seed draw from disjoint PCG stream salts; their
// Gaussian stages must not be correlated copies of each other.
func TestPaxsonStreamIndependentOfDH(t *testing.T) {
	base := Config{Model: paperModel(), N: 4096, BlockSize: 1024, Overlap: 256, Seed: 3}
	px := base
	px.Backend = backend.Paxson
	dh := base
	dh.Backend = backend.DaviesHarte
	a := collect(t, px)
	b := collect(t, dh)
	same := 0
	for i := range a {
		if math.Float64bits(a[i]) == math.Float64bits(b[i]) {
			same++
		}
	}
	if same > len(a)/100 {
		t.Errorf("%d of %d frames identical across backends sharing a seed", same, len(a))
	}
}

// TestPaxsonStreamBoundedMemory mirrors the Davies–Harte bound: the
// stitched Paxson backend holds only chunk-sized state.
func TestPaxsonStreamBoundedMemory(t *testing.T) {
	s, err := Open(Config{Model: paperModel(), N: 200_000, BlockSize: 2048, Overlap: 512, Seed: 1, Backend: backend.Paxson})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	for {
		if _, err := s.Next(ctx); err != nil {
			break
		}
	}
	if s.Pos() != 200_000 {
		t.Fatalf("drained %d frames, want 200000", s.Pos())
	}
}
