package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sync"
	"sync/atomic"
)

// Registry holds named metrics. Metric lookup takes a mutex; the hot
// path — updating a metric already in hand — is purely atomic, so
// instrumented code should hold on to returned metrics when updating in
// a loop. All methods are safe for concurrent use.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
}

// NewRegistry builds an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
	}
}

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it on first use.
func (r *Registry) Histogram(name string) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if !ok {
		h = newHistogram()
		r.hists[name] = h
	}
	return h
}

// Snapshot captures a point-in-time copy of every metric. The maps are
// fresh on every call; encoding/json renders map keys sorted, so the
// serialized form is deterministic for a fixed set of values.
type Snapshot struct {
	Counters   map[string]int64             `json:"counters"`
	Gauges     map[string]float64           `json:"gauges"`
	Histograms map[string]HistogramSnapshot `json:"histograms"`
}

// Snapshot reads all metrics atomically per metric (not globally: a
// concurrent writer may land between two metric reads).
func (r *Registry) Snapshot() Snapshot {
	r.mu.Lock()
	defer r.mu.Unlock()
	s := Snapshot{
		Counters:   make(map[string]int64, len(r.counters)),
		Gauges:     make(map[string]float64, len(r.gauges)),
		Histograms: make(map[string]HistogramSnapshot, len(r.hists)),
	}
	for name, c := range r.counters {
		s.Counters[name] = c.Value()
	}
	for name, g := range r.gauges {
		s.Gauges[name] = g.Value()
	}
	for name, h := range r.hists {
		s.Histograms[name] = h.Snapshot()
	}
	return s
}

// WriteJSON writes the registry snapshot as indented JSON.
func (r *Registry) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(r.Snapshot()); err != nil {
		return fmt.Errorf("obs: encoding metrics snapshot: %w", err)
	}
	return nil
}

// Counter is a monotonic (by convention) atomic int64.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter by delta.
func (c *Counter) Add(delta int64) { c.v.Add(delta) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is an atomic float64 holding the latest set value.
type Gauge struct {
	bits atomic.Uint64
}

// Set stores v.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add atomically adds delta to the gauge via a CAS loop.
func (g *Gauge) Add(delta float64) {
	for {
		old := g.bits.Load()
		if g.bits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+delta)) {
			return
		}
	}
}

// Value returns the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }
