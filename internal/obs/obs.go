// Package obs is the stdlib-only observability layer of the pipeline: an
// atomic metrics registry (counters, gauges, log-scale histograms),
// span-style wall-clock timers, and a typed progress-event stream.
//
// Everything hangs off a *Scope, which is nil-safe by convention: every
// method no-ops on a nil receiver, so uninstrumented call paths pay one
// pointer check and instrumented packages never need to guard call
// sites. Scopes travel through the call tree on the context (With/From),
// which the hot entry points already carry for cancellation.
//
// Wall-clock time read inside this package (span timers, progress rate
// and ETA) is display-only: it never feeds back into generation or
// simulation results, which stay bit-reproducible from their seeds. The
// time.Now sites therefore carry vbrlint ignore directives instead of a
// package-wide determinism exemption; see DESIGN.md.
package obs

import (
	"context"
	"time"
)

// Scope binds a metrics registry to an optional progress sink. The zero
// of *Scope — nil — is a valid, fully inert scope.
type Scope struct {
	reg  *Registry
	sink EventSink
}

// New builds a scope over reg (a fresh registry when nil) reporting
// progress to sink (may be nil for metrics-only scopes).
func New(reg *Registry, sink EventSink) *Scope {
	if reg == nil {
		reg = NewRegistry()
	}
	return &Scope{reg: reg, sink: sink}
}

// Registry exposes the underlying registry; nil on a nil scope.
func (s *Scope) Registry() *Registry {
	if s == nil {
		return nil
	}
	return s.reg
}

// Count adds delta to the named counter.
func (s *Scope) Count(name string, delta int64) {
	if s == nil {
		return
	}
	s.reg.Counter(name).Add(delta)
}

// SetGauge sets the named gauge to v.
func (s *Scope) SetGauge(name string, v float64) {
	if s == nil {
		return
	}
	s.reg.Gauge(name).Set(v)
}

// Observe records v into the named histogram.
func (s *Scope) Observe(name string, v float64) {
	if s == nil {
		return
	}
	s.reg.Histogram(name).Observe(v)
}

// Span starts a wall-clock timer and returns the function that stops it,
// recording the elapsed seconds into the histogram "<name>.seconds".
// Typical use: defer scope.Span("fgn.hosking")().
func (s *Scope) Span(name string) func() {
	if s == nil {
		return func() {}
	}
	//vbrlint:ignore determinism span timers are display-only wall time; they never influence generated or simulated values
	start := time.Now()
	return func() {
		s.reg.Histogram(name + ".seconds").Observe(time.Since(start).Seconds())
	}
}

// Progress emits a progress event for stage. total ≤ 0 means the total
// is unknown. Emission is synchronous; sinks are expected to be cheap
// and to rate-limit themselves.
func (s *Scope) Progress(stage string, done, total int64) {
	if s == nil || s.sink == nil {
		return
	}
	s.sink.Emit(Event{Stage: stage, Done: done, Total: total})
}

// ctxKey is the private context key carrying a *Scope.
type ctxKey struct{}

// With returns a context carrying s.
func With(ctx context.Context, s *Scope) context.Context {
	return context.WithValue(ctx, ctxKey{}, s)
}

// From extracts the scope from ctx, or nil when none was attached — the
// nil result is itself a valid inert scope.
func From(ctx context.Context) *Scope {
	if ctx == nil {
		return nil
	}
	s, _ := ctx.Value(ctxKey{}).(*Scope)
	return s
}
