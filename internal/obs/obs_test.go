package obs

import (
	"bytes"
	"context"
	"encoding/json"
	"math"
	"sync"
	"testing"
)

// TestNilScopeNoOps locks in the package's central convention: every
// Scope method must be callable on a nil receiver without panicking or
// allocating state.
func TestNilScopeNoOps(t *testing.T) {
	var s *Scope
	s.Count("c", 1)
	s.SetGauge("g", 2)
	s.Observe("h", 3)
	s.Progress("stage", 1, 10)
	end := s.Span("span")
	if end == nil {
		t.Fatal("nil scope Span returned nil, want callable no-op")
	}
	end()
	if s.Registry() != nil {
		t.Error("nil scope Registry() != nil")
	}
}

func TestScopeContextRoundTrip(t *testing.T) {
	if got := From(context.Background()); got != nil {
		t.Errorf("From(bare context) = %v, want nil", got)
	}
	if got := From(nil); got != nil { //nolint:staticcheck // nil ctx is an explicit supported input
		t.Errorf("From(nil) = %v, want nil", got)
	}
	s := New(nil, nil)
	ctx := With(context.Background(), s)
	if got := From(ctx); got != s {
		t.Errorf("From(With(ctx, s)) = %p, want %p", got, s)
	}
}

func TestScopeMetricsReachRegistry(t *testing.T) {
	reg := NewRegistry()
	s := New(reg, nil)
	s.Count("points", 41)
	s.Count("points", 1)
	s.SetGauge("temp", 2.5)
	s.Observe("sizes", 100)
	end := s.Span("work")
	end()

	snap := reg.Snapshot()
	if snap.Counters["points"] != 42 {
		t.Errorf("counter points = %d, want 42", snap.Counters["points"])
	}
	if snap.Gauges["temp"] != 2.5 {
		t.Errorf("gauge temp = %g, want 2.5", snap.Gauges["temp"])
	}
	if snap.Histograms["sizes"].Count != 1 {
		t.Errorf("histogram sizes count = %d, want 1", snap.Histograms["sizes"].Count)
	}
	sp, ok := snap.Histograms["work.seconds"]
	if !ok || sp.Count != 1 {
		t.Errorf("span histogram work.seconds = %+v ok=%v, want one observation", sp, ok)
	}
	if sp.Min < 0 {
		t.Errorf("span duration %g < 0", sp.Min)
	}
}

func TestNewWithNilRegistry(t *testing.T) {
	s := New(nil, nil)
	if s.Registry() == nil {
		t.Fatal("New(nil, nil) scope has nil registry")
	}
	s.Count("c", 1)
	if got := s.Registry().Counter("c").Value(); got != 1 {
		t.Errorf("counter = %d, want 1", got)
	}
}

// recordingSink captures emitted events for assertions.
type recordingSink struct {
	mu     sync.Mutex
	events []Event
}

func (r *recordingSink) Emit(ev Event) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.events = append(r.events, ev)
}

func TestScopeProgressEmits(t *testing.T) {
	sink := &recordingSink{}
	s := New(nil, sink)
	s.Progress("gen", 5, 10)
	s.Progress("gen", 10, 10)
	if len(sink.events) != 2 {
		t.Fatalf("got %d events, want 2", len(sink.events))
	}
	if sink.events[0] != (Event{Stage: "gen", Done: 5, Total: 10}) {
		t.Errorf("event 0 = %+v", sink.events[0])
	}
	if !sink.events[1].Final() {
		t.Errorf("event done=total not Final: %+v", sink.events[1])
	}
	if (Event{Stage: "gen", Done: 3, Total: 0}).Final() {
		t.Error("unknown-total event reported Final")
	}
}

// TestRegistryConcurrentExactTotals drives 32 goroutines through every
// metric kind and checks the totals are exact — run under -race this
// also proves the lock/atomic discipline.
func TestRegistryConcurrentExactTotals(t *testing.T) {
	const goroutines = 32
	const perG = 1000
	reg := NewRegistry()
	s := New(reg, nil)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				s.Count("total", 1)
				reg.Gauge("acc").Add(1)
				s.Observe("obs", 2)
			}
		}()
	}
	wg.Wait()
	const want = goroutines * perG
	if got := reg.Counter("total").Value(); got != want {
		t.Errorf("counter = %d, want %d", got, want)
	}
	if got := reg.Gauge("acc").Value(); got != want {
		t.Errorf("gauge = %g, want %d", got, want)
	}
	h := reg.Histogram("obs").Snapshot()
	if h.Count != want {
		t.Errorf("histogram count = %d, want %d", h.Count, want)
	}
	if h.Sum != 2*want {
		t.Errorf("histogram sum = %g, want %d", h.Sum, 2*want)
	}
}

func TestWriteJSONRoundTrips(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("a.count").Add(7)
	reg.Gauge("b.level").Set(1.25)
	reg.Histogram("c.sizes").Observe(512)

	var buf bytes.Buffer
	if err := reg.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var snap Snapshot
	if err := json.Unmarshal(buf.Bytes(), &snap); err != nil {
		t.Fatalf("output is not valid JSON: %v\n%s", err, buf.String())
	}
	if snap.Counters["a.count"] != 7 {
		t.Errorf("counters = %+v", snap.Counters)
	}
	if snap.Gauges["b.level"] != 1.25 {
		t.Errorf("gauges = %+v", snap.Gauges)
	}
	h := snap.Histograms["c.sizes"]
	if h.Count != 1 || h.Sum != 512 || h.Min != 512 || h.Max != 512 {
		t.Errorf("histogram = %+v", h)
	}
	if len(h.Buckets) != 1 || h.Buckets[0].Lo != 512 || h.Buckets[0].Le != 1024 {
		t.Errorf("buckets = %+v, want one bucket [512, 1024)", h.Buckets)
	}
}

// TestWriteJSONWithNonFinites checks the one encoding trap: histograms
// that saw NaN or ±Inf must still serialize (those values are kept out
// of Sum/Min/Max by design).
func TestWriteJSONWithNonFinites(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("weird")
	h.Observe(1)
	h.Observe(math.NaN())
	h.Observe(math.Inf(1))
	h.Observe(math.Inf(-1))

	var buf bytes.Buffer
	if err := reg.WriteJSON(&buf); err != nil {
		t.Fatalf("WriteJSON with non-finite observations: %v", err)
	}
	var snap Snapshot
	if err := json.Unmarshal(buf.Bytes(), &snap); err != nil {
		t.Fatal(err)
	}
	w := snap.Histograms["weird"]
	if w.Count != 4 || w.Sum != 1 || w.Min != 1 || w.Max != 1 {
		t.Errorf("snapshot = %+v, want count 4 with finite aggregates from the single 1", w)
	}
}
