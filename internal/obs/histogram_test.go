package obs

import (
	"math"
	"sync"
	"testing"
)

func TestBucketIndexEdgeCases(t *testing.T) {
	last := histBuckets - 1
	cases := []struct {
		name string
		v    float64
		want int
	}{
		{"zero", 0, 0},
		{"negative", -1, 0},
		{"negative infinity", math.Inf(-1), 0},
		{"NaN", math.NaN(), 0},
		{"smallest subnormal", 5e-324, 0},
		{"largest subnormal", math.Float64frombits(0x000fffffffffffff), 0},
		{"just below range", math.Ldexp(1, histMinExp-1), 0},
		{"bottom of bucket 1", math.Ldexp(1, histMinExp), 1},
		{"top of bucket 1", math.Nextafter(math.Ldexp(1, histMinExp+1), 0), 1},
		{"one", 1, 1 - histMinExp},
		{"just below one", math.Nextafter(1, 0), -histMinExp},
		{"two", 2, 2 - histMinExp},
		{"top finite bucket", math.Nextafter(math.Ldexp(1, histMaxExp), 0), histBuckets - 2},
		{"at overflow bound", math.Ldexp(1, histMaxExp), last},
		{"max float", math.MaxFloat64, last},
		{"positive infinity", math.Inf(1), last},
	}
	for _, c := range cases {
		if got := bucketIndex(c.v); got != c.want {
			t.Errorf("%s: bucketIndex(%g) = %d, want %d", c.name, c.v, got, c.want)
		}
	}
}

func TestBucketLowerMatchesIndex(t *testing.T) {
	// Every finite bucket's lower bound must map back into that bucket,
	// and the value just below it into the previous one.
	for i := 1; i <= histBuckets-2; i++ {
		lo := bucketLower(i)
		if got := bucketIndex(lo); got != i {
			t.Fatalf("bucketIndex(bucketLower(%d)=%g) = %d", i, lo, got)
		}
		below := math.Nextafter(lo, 0)
		if got := bucketIndex(below); got != i-1 {
			t.Fatalf("bucketIndex(just below bucket %d) = %d, want %d", i, got, i-1)
		}
	}
}

func TestHistogramNonFiniteObservations(t *testing.T) {
	h := newHistogram()
	h.Observe(math.NaN())
	h.Observe(math.Inf(1))
	h.Observe(math.Inf(-1))
	s := h.Snapshot()
	if s.Count != 3 {
		t.Errorf("Count = %d, want 3 (non-finite observations still count)", s.Count)
	}
	if s.Sum != 0 || s.Min != 0 || s.Max != 0 {
		t.Errorf("Sum/Min/Max = %g/%g/%g, want all zero with no finite observations", s.Sum, s.Min, s.Max)
	}
	if s.Overflow != 1 {
		t.Errorf("Overflow = %d, want 1 (+Inf only)", s.Overflow)
	}
	// NaN and -Inf share the underflow/invalid bucket, whose Lo is 0.
	if len(s.Buckets) != 1 || s.Buckets[0].Lo != 0 || s.Buckets[0].N != 2 {
		t.Errorf("Buckets = %+v, want one underflow bucket with N=2", s.Buckets)
	}
}

func TestHistogramFiniteAggregates(t *testing.T) {
	h := newHistogram()
	for _, v := range []float64{4, 0.25, 1, 1.5, 0} {
		h.Observe(v)
	}
	s := h.Snapshot()
	if s.Count != 5 {
		t.Errorf("Count = %d, want 5", s.Count)
	}
	if s.Sum != 6.75 {
		t.Errorf("Sum = %g, want 6.75", s.Sum)
	}
	// Zero is invalid (bucket 0) but finite, so it participates in
	// Min/Max and Sum: the recorded minimum is 0, not 0.25.
	if s.Min != 0 || s.Max != 4 {
		t.Errorf("Min/Max = %g/%g, want 0/4", s.Min, s.Max)
	}
	// Buckets must come out in ascending order with contiguous bounds.
	for i := 1; i < len(s.Buckets); i++ {
		if s.Buckets[i].Lo < s.Buckets[i-1].Le {
			t.Errorf("buckets out of order: %+v", s.Buckets)
		}
	}
	var total int64
	for _, b := range s.Buckets {
		total += b.N
	}
	if total+s.Overflow != s.Count {
		t.Errorf("bucket totals %d + overflow %d != count %d", total, s.Overflow, s.Count)
	}
}

func TestHistogramConcurrentObserve(t *testing.T) {
	const goroutines = 32
	const perG = 1000
	h := newHistogram()
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				h.Observe(1)
			}
		}()
	}
	wg.Wait()
	s := h.Snapshot()
	if s.Count != goroutines*perG {
		t.Errorf("Count = %d, want %d", s.Count, goroutines*perG)
	}
	// Integer-valued partial sums are exact in float64 at this scale, so
	// the CAS-accumulated sum must be exact too.
	if s.Sum != goroutines*perG {
		t.Errorf("Sum = %g, want %d", s.Sum, goroutines*perG)
	}
	if s.Min != 1 || s.Max != 1 {
		t.Errorf("Min/Max = %g/%g, want 1/1", s.Min, s.Max)
	}
	if len(s.Buckets) != 1 || s.Buckets[0].N != goroutines*perG {
		t.Errorf("Buckets = %+v, want all %d observations in one bucket", s.Buckets, goroutines*perG)
	}
}

func TestHistogramConcurrentMinMax(t *testing.T) {
	const goroutines = 32
	h := newHistogram()
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			// Each goroutine observes a distinct power of two, so the true
			// extremes are known regardless of interleaving.
			h.Observe(math.Ldexp(1, g-16))
		}(g)
	}
	wg.Wait()
	s := h.Snapshot()
	if s.Min != math.Ldexp(1, -16) {
		t.Errorf("Min = %g, want 2^-16", s.Min)
	}
	if s.Max != math.Ldexp(1, 15) {
		t.Errorf("Max = %g, want 2^15", s.Max)
	}
}
