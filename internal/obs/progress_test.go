package obs

import (
	"bytes"
	"strings"
	"testing"
	"time"
)

func TestLineEmitterFormat(t *testing.T) {
	var buf bytes.Buffer
	e := NewLineEmitter(&buf, 0)
	e.Emit(Event{Stage: "gen", Done: 25, Total: 100})
	line := buf.String()
	if !strings.HasPrefix(line, "progress gen: 25/100 (25.0%)") {
		t.Errorf("line = %q, want prefix %q", line, "progress gen: 25/100 (25.0%)")
	}
}

func TestLineEmitterUnknownTotal(t *testing.T) {
	var buf bytes.Buffer
	e := NewLineEmitter(&buf, 0)
	e.Emit(Event{Stage: "scan", Done: 7})
	line := buf.String()
	if !strings.HasPrefix(line, "progress scan: 7") {
		t.Errorf("line = %q", line)
	}
	if strings.Contains(line, "%") || strings.Contains(line, "eta") {
		t.Errorf("unknown-total line should carry no percentage or ETA: %q", line)
	}
}

func TestLineEmitterRateLimit(t *testing.T) {
	var buf bytes.Buffer
	// An hour-long gap guarantees every non-final event after the first
	// falls inside the window.
	e := NewLineEmitter(&buf, time.Hour)
	e.Emit(Event{Stage: "gen", Done: 1, Total: 10})
	e.Emit(Event{Stage: "gen", Done: 2, Total: 10}) // suppressed
	e.Emit(Event{Stage: "gen", Done: 3, Total: 10}) // suppressed
	e.Emit(Event{Stage: "gen", Done: 10, Total: 10})
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("got %d lines, want 2 (first + final):\n%s", len(lines), buf.String())
	}
	if !strings.Contains(lines[0], "1/10") {
		t.Errorf("first line = %q", lines[0])
	}
	if !strings.Contains(lines[1], "10/10 (100.0%)") {
		t.Errorf("final line = %q, want the completion event to bypass the rate limit", lines[1])
	}
}

func TestLineEmitterStagesIndependent(t *testing.T) {
	var buf bytes.Buffer
	e := NewLineEmitter(&buf, time.Hour)
	e.Emit(Event{Stage: "a", Done: 1, Total: 10})
	e.Emit(Event{Stage: "b", Done: 1, Total: 10})
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("got %d lines, want 2 (per-stage rate limits):\n%s", len(lines), buf.String())
	}
}

func TestLineEmitterConcurrent(t *testing.T) {
	var buf bytes.Buffer
	e := NewLineEmitter(&buf, 0)
	done := make(chan struct{})
	for g := 0; g < 8; g++ {
		go func(g int) {
			defer func() { done <- struct{}{} }()
			for i := int64(1); i <= 50; i++ {
				e.Emit(Event{Stage: "par", Done: i, Total: 50})
			}
		}(g)
	}
	for g := 0; g < 8; g++ {
		<-done
	}
	// The mutex must keep lines whole: every line starts with the prefix.
	for _, line := range strings.Split(strings.TrimSpace(buf.String()), "\n") {
		if !strings.HasPrefix(line, "progress par: ") {
			t.Fatalf("interleaved output line: %q", line)
		}
	}
}
