package obs

import (
	"math"
	"sync/atomic"
)

// Histogram buckets are fixed powers of two: bucket i (1 ≤ i ≤
// histBuckets-2) covers [2^(histMinExp+i-1), 2^(histMinExp+i)). Bucket 0
// is the underflow/invalid bucket — zero, negatives, NaN, -Inf, and
// anything below 2^histMinExp, subnormals included. The last bucket is
// overflow: +Inf and anything at or above 2^histMaxExp. The range spans
// sub-nanosecond span durations (2^-30 s ≈ 0.93 ns) up to terabyte-scale
// byte counts (2^40 ≈ 1.1e12), so one fixed layout serves every metric.
const (
	histMinExp  = -30
	histMaxExp  = 40
	histBuckets = histMaxExp - histMinExp + 2
)

// bucketIndex maps an observation to its bucket.
func bucketIndex(v float64) int {
	if math.IsNaN(v) || v <= 0 {
		return 0
	}
	if math.IsInf(v, 1) {
		return histBuckets - 1
	}
	// Frexp writes v = frac · 2^exp with frac ∈ [0.5, 1), so v lies in
	// [2^(exp-1), 2^exp) and its bucket is exp - histMinExp.
	_, exp := math.Frexp(v)
	i := exp - histMinExp
	if i < 1 {
		return 0
	}
	if i > histBuckets-2 {
		return histBuckets - 1
	}
	return i
}

// bucketLower returns the inclusive lower bound of bucket i ≥ 1.
func bucketLower(i int) float64 {
	return math.Ldexp(1, histMinExp+i-1)
}

// Histogram is a lock-free fixed-bucket log-scale histogram. Count
// includes every observation; Sum, Min and Max cover only finite
// observations (NaN and ±Inf land in their buckets but would poison the
// aggregates — and could not be serialized to JSON). Build histograms
// through a Registry: the zero value records observations but reports
// zero Min/Max extremes.
type Histogram struct {
	count   atomic.Int64
	finite  atomic.Int64
	sumBits atomic.Uint64
	minBits atomic.Uint64
	maxBits atomic.Uint64
	buckets [histBuckets]atomic.Int64
}

// newHistogram seeds the extremes at ±Inf so the min/max CAS races
// cleanly from the first observation on.
func newHistogram() *Histogram {
	h := &Histogram{}
	h.minBits.Store(math.Float64bits(math.Inf(1)))
	h.maxBits.Store(math.Float64bits(math.Inf(-1)))
	return h
}

// Observe records one observation.
func (h *Histogram) Observe(v float64) {
	h.count.Add(1)
	h.buckets[bucketIndex(v)].Add(1)
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return
	}
	h.finite.Add(1)
	for {
		old := h.sumBits.Load()
		if h.sumBits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+v)) {
			break
		}
	}
	casFloat(&h.minBits, v, func(cur float64) bool { return v < cur })
	casFloat(&h.maxBits, v, func(cur float64) bool { return v > cur })
}

// casFloat installs v while better(current) holds, retrying on
// contention.
func casFloat(bits *atomic.Uint64, v float64, better func(cur float64) bool) {
	for {
		old := bits.Load()
		if !better(math.Float64frombits(old)) {
			return
		}
		if bits.CompareAndSwap(old, math.Float64bits(v)) {
			return
		}
	}
}

// Count returns the total number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the sum of finite observations.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sumBits.Load()) }

// BucketCount is one occupied bucket of a snapshot: N observations in
// [Lo, Le), where Lo is 0 for the underflow/invalid bucket.
type BucketCount struct {
	Lo float64 `json:"lo"`
	Le float64 `json:"le"`
	N  int64   `json:"n"`
}

// HistogramSnapshot is a point-in-time copy of a histogram. Occupied
// finite buckets are listed in ascending order; Overflow counts
// observations at or above the largest bound (including +Inf). Min and
// Max are zero when no finite observation was recorded.
type HistogramSnapshot struct {
	Count    int64         `json:"count"`
	Sum      float64       `json:"sum"`
	Min      float64       `json:"min"`
	Max      float64       `json:"max"`
	Buckets  []BucketCount `json:"buckets,omitempty"`
	Overflow int64         `json:"overflow,omitempty"`
}

// Snapshot copies the histogram. Each field is read atomically; a
// concurrent Observe may straddle the reads, so totals are only exact
// once writers have quiesced.
func (h *Histogram) Snapshot() HistogramSnapshot {
	s := HistogramSnapshot{Count: h.count.Load(), Sum: h.Sum()}
	if h.finite.Load() > 0 {
		s.Min = math.Float64frombits(h.minBits.Load())
		s.Max = math.Float64frombits(h.maxBits.Load())
	}
	for i := 0; i < histBuckets-1; i++ {
		n := h.buckets[i].Load()
		if n == 0 {
			continue
		}
		b := BucketCount{Le: bucketLower(i + 1), N: n}
		if i > 0 {
			b.Lo = bucketLower(i)
		}
		s.Buckets = append(s.Buckets, b)
	}
	s.Overflow = h.buckets[histBuckets-1].Load()
	return s
}
