package obs

import (
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"
)

func TestDebugServerServesExpvarAndPprof(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("fgn.hosking.points").Add(123)
	srv, err := StartDebugServer("127.0.0.1:0", reg)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	body := get(t, "http://"+srv.Addr()+"/debug/vars")
	var vars struct {
		VBR Snapshot `json:"vbr"`
	}
	if err := json.Unmarshal([]byte(body), &vars); err != nil {
		t.Fatalf("/debug/vars is not valid JSON: %v", err)
	}
	if vars.VBR.Counters["fgn.hosking.points"] != 123 {
		t.Errorf("vbr counters = %+v, want fgn.hosking.points=123", vars.VBR.Counters)
	}

	if idx := get(t, "http://"+srv.Addr()+"/debug/pprof/"); !strings.Contains(idx, "goroutine") {
		t.Errorf("pprof index does not list profiles:\n%s", idx)
	}
}

// TestDebugServerRestartRebinds covers the expvar duplicate-publish
// trap: a second server (fresh registry) must start cleanly and export
// the new registry's values.
func TestDebugServerRestartRebinds(t *testing.T) {
	first := NewRegistry()
	first.Counter("run").Add(1)
	srv1, err := StartDebugServer("127.0.0.1:0", first)
	if err != nil {
		t.Fatal(err)
	}
	srv1.Close()

	second := NewRegistry()
	second.Counter("run").Add(2)
	srv2, err := StartDebugServer("127.0.0.1:0", second)
	if err != nil {
		t.Fatalf("second StartDebugServer: %v", err)
	}
	defer srv2.Close()

	var vars struct {
		VBR Snapshot `json:"vbr"`
	}
	if err := json.Unmarshal([]byte(get(t, "http://"+srv2.Addr()+"/debug/vars")), &vars); err != nil {
		t.Fatal(err)
	}
	if vars.VBR.Counters["run"] != 2 {
		t.Errorf("run = %d, want 2 (latest registry wins)", vars.VBR.Counters["run"])
	}
}

func get(t *testing.T, url string) string {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: status %d", url, resp.StatusCode)
	}
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}
