package obs

import (
	"expvar"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"sync"
	"sync/atomic"
)

// expvar's registry is process-global and Publish panics on duplicate
// names, so the "vbr" variable is published once and indirects through
// an atomic pointer to whatever registry the latest debug server wants
// exported.
var (
	expvarReg  atomic.Pointer[Registry]
	expvarOnce sync.Once
)

// publishRegistry exports reg under the expvar name "vbr".
func publishRegistry(reg *Registry) {
	expvarReg.Store(reg)
	expvarOnce.Do(func() {
		expvar.Publish("vbr", expvar.Func(func() any {
			if r := expvarReg.Load(); r != nil {
				return r.Snapshot()
			}
			return nil
		}))
	})
}

// DebugServer is the opt-in diagnostics HTTP server behind -debug-addr:
// /debug/vars serves expvar (with the metrics registry under "vbr") and
// /debug/pprof/* serves the standard profiles.
type DebugServer struct {
	ln  net.Listener
	srv *http.Server
}

// StartDebugServer listens on addr (port 0 picks a free port) and serves
// in a background goroutine until Close.
func StartDebugServer(addr string, reg *Registry) (*DebugServer, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("obs: debug listener on %s: %w", addr, err)
	}
	publishRegistry(reg)
	mux := http.NewServeMux()
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	d := &DebugServer{ln: ln, srv: &http.Server{Handler: mux}}
	go func() {
		// ErrServerClosed (and the listener-closed error on Close) is the
		// normal shutdown path; the server is best-effort diagnostics, so
		// other serve failures are dropped rather than crashing the run.
		_ = d.srv.Serve(ln)
	}()
	return d, nil
}

// Addr returns the bound address, useful with ":0" listeners.
func (d *DebugServer) Addr() string { return d.ln.Addr().String() }

// Close immediately shuts the server down.
func (d *DebugServer) Close() error {
	if err := d.srv.Close(); err != nil {
		return fmt.Errorf("obs: closing debug server: %w", err)
	}
	return nil
}
