package obs

import (
	"fmt"
	"io"
	"sync"
	"time"
)

// Event is one progress report from an instrumented stage. Done counts
// completed work units; Total ≤ 0 means the total is unknown.
type Event struct {
	Stage string
	Done  int64
	Total int64
}

// Final reports whether the event marks stage completion.
func (e Event) Final() bool { return e.Total > 0 && e.Done >= e.Total }

// EventSink consumes progress events. Implementations must be safe for
// concurrent use: parallel stages emit from multiple goroutines.
type EventSink interface {
	Emit(Event)
}

// LineEmitter renders progress events as single-line reports on a
// writer (typically stderr), rate-limited per stage so tight emitters
// cost one mutexed time read per event. Final events (done == total)
// always print, so every stage's completion is visible.
type LineEmitter struct {
	mu     sync.Mutex
	w      io.Writer
	minGap time.Duration
	stages map[string]*stageClock
}

// stageClock tracks per-stage emission state.
type stageClock struct {
	start    time.Time
	lastEmit time.Time
}

// NewLineEmitter builds a line emitter printing to w at most once per
// minGap per stage (0 disables rate limiting).
func NewLineEmitter(w io.Writer, minGap time.Duration) *LineEmitter {
	return &LineEmitter{w: w, minGap: minGap, stages: make(map[string]*stageClock)}
}

// Emit implements EventSink. Rate and ETA are computed from the elapsed
// wall time since the stage's first event; both are display-only.
func (e *LineEmitter) Emit(ev Event) {
	e.mu.Lock()
	defer e.mu.Unlock()
	//vbrlint:ignore determinism progress rate/ETA display is the one legitimate wall-clock consumer; it never feeds results
	now := time.Now()
	sc, ok := e.stages[ev.Stage]
	if !ok {
		sc = &stageClock{start: now}
		e.stages[ev.Stage] = sc
	}
	if !ev.Final() && !sc.lastEmit.IsZero() && now.Sub(sc.lastEmit) < e.minGap {
		return
	}
	sc.lastEmit = now

	line := fmt.Sprintf("progress %s: %d", ev.Stage, ev.Done)
	if ev.Total > 0 {
		line += fmt.Sprintf("/%d (%.1f%%)", ev.Total, 100*float64(ev.Done)/float64(ev.Total))
	}
	elapsed := now.Sub(sc.start).Seconds()
	if elapsed > 0 && ev.Done > 0 {
		rate := float64(ev.Done) / elapsed
		line += fmt.Sprintf(" %.0f/s", rate)
		if ev.Total > ev.Done {
			eta := float64(ev.Total-ev.Done) / rate
			line += fmt.Sprintf(" eta %s", (time.Duration(eta * float64(time.Second))).Round(time.Second))
		}
	}
	fmt.Fprintln(e.w, line)
}
