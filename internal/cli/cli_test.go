package cli

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"testing"

	"vbr/internal/errs"
)

func TestExitCode(t *testing.T) {
	cases := []struct {
		err  error
		want int
	}{
		{nil, ExitOK},
		{flag.ErrHelp, ExitOK},
		{Usagef("bad flag %q", "-x"), ExitUsage},
		{fmt.Errorf("wrapped: %w", Usagef("nope")), ExitUsage},
		{errs.Cancelled(cancelledCtx()), ExitInterrupt},
		{context.Canceled, ExitInterrupt},
		{errors.New("boom"), ExitFailure},
		{io.ErrUnexpectedEOF, ExitFailure},
	}
	for _, c := range cases {
		if got := ExitCode(c.err); got != c.want {
			t.Errorf("ExitCode(%v) = %d, want %d", c.err, got, c.want)
		}
	}
}

func cancelledCtx() context.Context {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	return ctx
}

func TestParseFlags(t *testing.T) {
	fs := flag.NewFlagSet("t", flag.ContinueOnError)
	fs.SetOutput(io.Discard)
	n := fs.Int("n", 1, "")
	if err := ParseFlags(fs, []string{"-n", "5"}); err != nil || *n != 5 {
		t.Fatalf("good args: err=%v n=%d", err, *n)
	}

	fs2 := flag.NewFlagSet("t", flag.ContinueOnError)
	fs2.SetOutput(io.Discard)
	err := ParseFlags(fs2, []string{"-no-such-flag"})
	var ue *UsageError
	if !errors.As(err, &ue) {
		t.Fatalf("bad args: got %v, want UsageError", err)
	}
	if got := ExitCode(err); got != ExitUsage {
		t.Errorf("bad args exit code %d, want %d", got, ExitUsage)
	}

	fs3 := flag.NewFlagSet("t", flag.ContinueOnError)
	fs3.SetOutput(io.Discard)
	if err := ParseFlags(fs3, []string{"-h"}); !errors.Is(err, flag.ErrHelp) {
		t.Fatalf("help: got %v, want flag.ErrHelp", err)
	}
}
