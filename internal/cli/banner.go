package cli

import (
	"fmt"
	"io"
	"strings"
)

// listenMarker is the phrase shared by every daemon's first stdout
// line; AnnounceListen writes it and ParseListenBanner recovers the
// address, so a supervisor can learn a child's dynamically bound port
// without any IPC beyond the pipe it already holds.
const listenMarker = " listening on "

// AnnounceListen prints the canonical "<name> listening on <addr>"
// banner. Daemons must emit it as their first stdout line once the
// listener is bound.
func AnnounceListen(w io.Writer, name, addr string) {
	fmt.Fprintf(w, "%s%s%s\n", name, listenMarker, addr)
}

// ParseListenBanner extracts the listen address from an AnnounceListen
// line; ok is false when the line is not a banner.
func ParseListenBanner(line string) (addr string, ok bool) {
	_, rest, found := strings.Cut(line, listenMarker)
	if !found {
		return "", false
	}
	addr = strings.TrimSpace(rest)
	return addr, addr != ""
}
