// Package cli provides the shared process scaffolding of the command
// binaries: a signal-aware context, error-to-exit-code mapping, and a
// typed usage error. Commands are written as run(ctx, args, stdout,
// stderr) error functions so deferred cleanup (file flushes, checkpoint
// writes) always executes — os.Exit is called exactly once, in Main,
// after every defer has run.
package cli

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"syscall"

	"vbr/internal/errs"
)

// UsageError marks a command-line usage problem; Main exits 2.
type UsageError struct{ Msg string }

// Error implements the error interface.
func (e *UsageError) Error() string { return e.Msg }

// Usagef builds a *UsageError.
func Usagef(format string, args ...any) error {
	return &UsageError{Msg: fmt.Sprintf(format, args...)}
}

// Exit codes follow the shell convention: 2 for usage errors and 130
// (128+SIGINT) for interrupted runs.
const (
	ExitOK        = 0
	ExitFailure   = 1
	ExitUsage     = 2
	ExitInterrupt = 130
)

// ExitCode maps an error to its process exit code.
func ExitCode(err error) int {
	var ue *UsageError
	switch {
	case err == nil, errors.Is(err, flag.ErrHelp):
		return ExitOK
	case errors.As(err, &ue):
		return ExitUsage
	case errors.Is(err, errs.ErrUnknownModel), errors.Is(err, errs.ErrUnknownBackend):
		// Request-shaped failures: the command line named a traffic
		// model or generation backend that does not exist.
		return ExitUsage
	case errors.Is(err, errs.ErrCancelled), errors.Is(err, context.Canceled):
		return ExitInterrupt
	default:
		return ExitFailure
	}
}

// Main runs a command body under a context that cancels on SIGINT or
// SIGTERM, prints a non-nil error to stderr with the command prefix, and
// returns the exit code for os.Exit. The first signal cancels the
// context so the body can checkpoint and unwind; a second signal kills
// the process via the restored default handler.
func Main(name string, body func(ctx context.Context, args []string, stdout, stderr io.Writer) error) int {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	err := body(ctx, os.Args[1:], os.Stdout, os.Stderr)
	if err != nil && !errors.Is(err, flag.ErrHelp) {
		fmt.Fprintf(os.Stderr, "%s: %v\n", name, err)
	}
	return ExitCode(err)
}

// ParseFlags parses args into fs, converting parse failures into usage
// errors (help requests pass through as flag.ErrHelp).
func ParseFlags(fs *flag.FlagSet, args []string) error {
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return err
		}
		return &UsageError{Msg: err.Error()}
	}
	return nil
}
