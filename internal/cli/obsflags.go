package cli

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"vbr/internal/obs"
)

// ObsFlags are the observability flags shared by every command:
// -progress, -metrics-json, and -debug-addr.
type ObsFlags struct {
	Progress    bool
	MetricsPath string
	DebugAddr   string
}

// RegisterObsFlags installs the shared observability flags on fs.
func RegisterObsFlags(fs *flag.FlagSet) *ObsFlags {
	f := &ObsFlags{}
	fs.BoolVar(&f.Progress, "progress", false, "emit rate-limited progress lines on stderr")
	fs.StringVar(&f.MetricsPath, "metrics-json", "", "write an end-of-run metrics snapshot as JSON to `path`")
	fs.StringVar(&f.DebugAddr, "debug-addr", "", "serve net/http/pprof and expvar (metrics under \"vbr\") on `host:port`")
	return f
}

// progressMinGap rate-limits stderr progress lines per stage.
const progressMinGap = 250 * time.Millisecond

// Observe builds the run's observability scope from the parsed flags,
// attaches it to ctx, and returns a finish function that must run after
// the command body (typically deferred): it closes the whole-run
// "proc.run" span, stops the debug server, and writes the metrics
// snapshot. The snapshot is written even when the body failed or was
// interrupted, so aborted runs still leave their metrics behind.
func (f *ObsFlags) Observe(ctx context.Context, stderr io.Writer) (context.Context, func() error, error) {
	reg := obs.NewRegistry()
	var sink obs.EventSink
	if f.Progress {
		sink = obs.NewLineEmitter(stderr, progressMinGap)
	}
	scope := obs.New(reg, sink)
	endRun := scope.Span("proc.run")

	var dbg *obs.DebugServer
	if f.DebugAddr != "" {
		var err error
		dbg, err = obs.StartDebugServer(f.DebugAddr, reg)
		if err != nil {
			return ctx, nil, err
		}
		fmt.Fprintf(stderr, "debug server listening on http://%s/debug/vars\n", dbg.Addr())
	}

	finish := func() error {
		endRun()
		if dbg != nil {
			if err := dbg.Close(); err != nil {
				fmt.Fprintf(stderr, "warning: %v\n", err)
			}
		}
		if f.MetricsPath == "" {
			return nil
		}
		out, err := os.Create(f.MetricsPath)
		if err != nil {
			return fmt.Errorf("creating metrics file: %w", err)
		}
		if err := reg.WriteJSON(out); err != nil {
			out.Close()
			return err
		}
		if err := out.Close(); err != nil {
			return fmt.Errorf("closing metrics file: %w", err)
		}
		return nil
	}
	return obs.With(ctx, scope), finish, nil
}

// FinishObs runs finish and folds its error into the command result
// without masking a primary failure. Use with a named return:
//
//	defer cli.FinishObs(finish, &retErr)
func FinishObs(finish func() error, retErr *error) {
	if err := finish(); err != nil && *retErr == nil {
		*retErr = fmt.Errorf("writing metrics: %w", err)
	}
}
