package core

import (
	"context"
	"fmt"
	"math/rand/v2"

	"vbr/internal/arma"
	"vbr/internal/dist"
	"vbr/internal/fgn"
	"vbr/internal/specfn"
)

// This file implements the short-range-dependence augmentations §4 of
// the paper defers to future work: "An additional set of short-term
// correlation parameters may be included by combining this model with an
// ARMA filter or modulating it with the state of a Markov chain. The SRD
// structure is by default self-similar to the long-term structure."
//
// Both augmentations operate on the standardized Gaussian stage of the
// generator, before the Eq. 13 marginal transform, so the marginal
// distribution remains exactly the hybrid Gamma/Pareto and the
// asymptotic (long-lag) correlation structure — hence H — is unchanged:
// an ARMA filter has a summable impulse response and the Markov
// modulation has geometrically decaying correlations, so neither alters
// the hyperbolic tail of the autocorrelation.

// GenerateWithARMA is equivalent to
// GenerateWithARMACtx(context.Background(), ...).
func (m Model) GenerateWithARMA(n int, srd arma.Model, opts GenOptions) ([]float64, error) {
	return m.GenerateWithARMACtx(context.Background(), n, srd, opts)
}

// GenerateWithARMACtx generates n frames of the full model with extra
// short-range structure: the fARIMA(0, d, 0) realization is passed
// through the given (stationary) ARMA filter — yielding a fractional
// ARIMA(p, d, q) process — restandardized, and transformed to the
// Gamma/Pareto marginal. Cancellation propagates through the Gaussian
// backbone generation.
func (m Model) GenerateWithARMACtx(ctx context.Context, n int, srd arma.Model, opts GenOptions) ([]float64, error) {
	if err := m.Validate(); err != nil {
		return nil, err
	}
	if err := srd.Validate(); err != nil {
		return nil, err
	}
	x, err := m.gaussianCtx(ctx, n, opts)
	if err != nil {
		return nil, err
	}
	x, err = srd.Filter(x)
	if err != nil {
		return nil, err
	}
	fgn.Standardize(x)
	return m.transformCtx(ctx, x, opts)
}

// GenerateMarkovModulated generates n frames with the activity level
// modulated by a Markov chain: Z = √(1-w²)·X + w·M where X is the LRD
// Gaussian backbone and M the (standardized) chain level path. weight w
// in [0, 1) sets the share of variance carried by the scene process.
func (m Model) GenerateMarkovModulated(n int, chain *arma.MarkovChain, weight float64, opts GenOptions) ([]float64, error) {
	return m.GenerateMarkovModulatedCtx(context.Background(), n, chain, weight, opts)
}

// GenerateMarkovModulatedCtx is GenerateMarkovModulated with
// cooperative cancellation through the Gaussian backbone generation.
func (m Model) GenerateMarkovModulatedCtx(ctx context.Context, n int, chain *arma.MarkovChain, weight float64, opts GenOptions) ([]float64, error) {
	if err := m.Validate(); err != nil {
		return nil, err
	}
	if chain == nil {
		return nil, fmt.Errorf("core: nil Markov chain")
	}
	if weight < 0 || weight >= 1 {
		return nil, fmt.Errorf("core: modulation weight must be in [0,1), got %v", weight)
	}
	x, err := m.gaussianCtx(ctx, n, opts)
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewPCG(opts.Seed, 0x3a7c0f))
	path, err := chain.Path(n, rng)
	if err != nil {
		return nil, err
	}
	fgn.Standardize(path)
	w := weight
	for i := range x {
		x[i] = (1-w)*x[i] + w*path[i]
	}
	fgn.Standardize(x)
	return m.transformCtx(ctx, x, opts)
}

// transformCtx applies the Eq. 13 marginal map to a standardized
// Gaussian series, drawing the mapping table from the options' pool
// when one is set (the table depends only on the model parameters and
// the resolution, never the data, so pooling cannot change the output).
func (m Model) transformCtx(ctx context.Context, x []float64, opts GenOptions) ([]float64, error) {
	if opts.TableSize < 2 {
		return nil, fmt.Errorf("core: table size must be ≥ 2, got %d", opts.TableSize)
	}
	var tab *dist.QuantileTable
	var err error
	if opts.Pool != nil {
		tab, err = opts.Pool.QuantileTable(ctx, m.MuGamma, m.SigmaGamma, m.TailSlope, opts.TableSize)
	} else {
		var gp *dist.GammaPareto
		if gp, err = m.Marginal(); err != nil {
			return nil, err
		}
		tab, err = gp.QuantileTable(opts.TableSize)
	}
	if err != nil {
		return nil, err
	}
	out := make([]float64, len(x))
	for i, v := range x {
		out[i] = tab.Value(specfn.NormCDF(v))
	}
	return out, nil
}
