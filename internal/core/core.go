package core
