package core

import (
	"context"
	"fmt"
	"runtime"
	"sync"

	"vbr/internal/errs"
	"vbr/internal/genpool"
	"vbr/internal/obs"
)

// GenerateBatch produces k independent realizations of the model, each
// n frames, fanning the work over min(GOMAXPROCS, k) workers. The
// traces are independently seeded by a deterministic derivation from
// opts.Seed (splitmix64 over the trace index), so the result depends
// only on (model, k, n, opts) — never on scheduling — and trace i of a
// batch equals a solo Generate call with the derived seed.
//
// The workers share one generation pool: the O(n²) Hosking coefficient
// schedule (or the Davies–Harte eigenvalue vector) and the Eq. 13
// mapping table are computed once and reused by every trace, which is
// where the batch speedup over k sequential Generate calls comes from.
// opts.Pool is used when set (sharing warmth with other callers);
// otherwise a private pool spans just this batch.
//
// The first failure cancels the remaining work; the error identifies
// the trace ("core: batch trace %d: ...") and wraps the cause.
func (m Model) GenerateBatch(ctx context.Context, k, n int, opts GenOptions) ([][]float64, error) {
	if err := m.Validate(); err != nil {
		return nil, err
	}
	if k < 1 {
		return nil, fmt.Errorf("core: batch size must be ≥ 1, got %d", k)
	}
	if n < 1 {
		return nil, fmt.Errorf("core: length must be ≥ 1, got %d", n)
	}
	if opts.Pool == nil {
		opts.Pool = genpool.New(0)
	}
	// Snapshots are a solo-run facility; a batch has no single recursion
	// to checkpoint.
	opts.SnapshotEvery, opts.Snapshot = 0, nil

	scope := obs.From(ctx)
	defer scope.Span("core.batch")()

	workers := runtime.GOMAXPROCS(0)
	if workers > k {
		workers = k
	}
	bctx, cancel := context.WithCancel(ctx)
	defer cancel()

	out := make([][]float64, k)
	idx := make(chan int)
	var wg sync.WaitGroup
	var once sync.Once
	var firstErr error
	fail := func(err error) {
		once.Do(func() {
			firstErr = err
			cancel()
		})
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				o := opts
				o.Seed = BatchSeed(opts.Seed, i)
				tr, err := m.GenerateCtx(bctx, n, o)
				if err != nil {
					fail(fmt.Errorf("core: batch trace %d: %w", i, err))
					return
				}
				out[i] = tr
				scope.Count("core.batch.traces", 1)
			}
		}()
	}
feed:
	for i := 0; i < k; i++ {
		select {
		case idx <- i:
		case <-bctx.Done():
			break feed
		}
	}
	close(idx)
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}
	if err := ctx.Err(); err != nil {
		return nil, errs.Cancelled(ctx)
	}
	return out, nil
}

// BatchSeed derives the seed of trace i in a batch from the batch seed:
// the splitmix64 output function over base + (i+1)·golden-ratio
// increments. The derivation is part of the API contract — trace i of
// GenerateBatch(seed) is bitwise-identical to Generate with
// Seed = BatchSeed(seed, i) — so callers can regenerate any single
// batch member without rerunning the batch.
func BatchSeed(base uint64, i int) uint64 {
	z := base + uint64(i+1)*0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}
