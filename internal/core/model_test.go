package core

import (
	"math"
	"testing"

	"vbr/internal/stats"
	"vbr/internal/synth"
)

// paperModel returns the model with the paper's fitted parameters.
func paperModel() Model {
	return Model{MuGamma: 27791, SigmaGamma: 6254, TailSlope: 12, Hurst: 0.8}
}

func TestValidate(t *testing.T) {
	if err := paperModel().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []Model{
		{MuGamma: 0, SigmaGamma: 1, TailSlope: 1, Hurst: 0.8},
		{MuGamma: 1, SigmaGamma: 0, TailSlope: 1, Hurst: 0.8},
		{MuGamma: 1, SigmaGamma: 1, TailSlope: 0, Hurst: 0.8},
		{MuGamma: 1, SigmaGamma: 1, TailSlope: 1, Hurst: 0},
		{MuGamma: 1, SigmaGamma: 1, TailSlope: 1, Hurst: 1},
	}
	for i, m := range bad {
		if err := m.Validate(); err == nil {
			t.Errorf("model %d should be invalid", i)
		}
	}
}

func TestGenerateFullModel(t *testing.T) {
	m := paperModel()
	opts := DefaultGenOptions()
	opts.Generator = DaviesHarteFast // fast path for the big series
	frames, err := m.Generate(50000, opts)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := m.VerifyRealization(frames)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(rep.Mean-rep.WantMean)/rep.WantMean > 0.05 {
		t.Errorf("mean %v, want %v", rep.Mean, rep.WantMean)
	}
	if math.Abs(rep.Std-rep.WantStd)/rep.WantStd > 0.15 {
		t.Errorf("std %v, want %v", rep.Std, rep.WantStd)
	}
	if math.Abs(rep.H-0.8) > 0.1 {
		t.Errorf("H %v, want 0.8", rep.H)
	}
	// All positive.
	for _, v := range frames {
		if v <= 0 {
			t.Fatal("generated bandwidth must be positive")
		}
	}
}

func TestGenerateHoskingMatchesPaperAlgorithm(t *testing.T) {
	m := paperModel()
	opts := DefaultGenOptions()
	opts.Generator = HoskingExact
	frames, err := m.Generate(8000, opts)
	if err != nil {
		t.Fatal(err)
	}
	mean := stats.Mean(frames)
	if math.Abs(mean-27791)/27791 > 0.1 {
		t.Errorf("Hosking-path mean %v", mean)
	}
	// LRD check on the short series: lag-100 autocorrelation clearly
	// positive (exponential SRD would be ~0).
	r, err := stats.Autocorrelation(frames, 200)
	if err != nil {
		t.Fatal(err)
	}
	if r[100] < 0.05 {
		t.Errorf("lag-100 acf %v; Hosking output not LRD", r[100])
	}
}

func TestGenerateErrors(t *testing.T) {
	m := paperModel()
	if _, err := m.Generate(0, DefaultGenOptions()); err == nil {
		t.Error("n=0 should fail")
	}
	opts := DefaultGenOptions()
	opts.TableSize = 1
	if _, err := m.Generate(100, opts); err == nil {
		t.Error("bad table size should fail")
	}
	opts = DefaultGenOptions()
	opts.Generator = Generator(99)
	if _, err := m.Generate(100, opts); err == nil {
		t.Error("unknown generator should fail")
	}
	bad := Model{}
	if _, err := bad.Generate(100, DefaultGenOptions()); err == nil {
		t.Error("invalid model should fail")
	}
}

func TestGenerateGaussianVariant(t *testing.T) {
	m := paperModel()
	opts := DefaultGenOptions()
	opts.Generator = DaviesHarteFast
	frames, err := m.GenerateGaussian(50000, opts)
	if err != nil {
		t.Fatal(err)
	}
	mean := stats.Mean(frames)
	if math.Abs(mean-27791)/27791 > 0.06 {
		t.Errorf("gaussian variant mean %v", mean)
	}
	for _, v := range frames {
		if v < 0 {
			t.Fatal("clamped gaussian must be nonnegative")
		}
	}
	// Gaussian variant must lack the heavy upper tail of the full model:
	// its empirical max should be far below the hybrid's extreme quantile.
	maxv := 0.0
	for _, v := range frames {
		maxv = math.Max(maxv, v)
	}
	if maxv > 27791+8*6254 {
		t.Errorf("gaussian variant max %v suspiciously heavy", maxv)
	}
}

func TestGenerateIIDVariant(t *testing.T) {
	m := paperModel()
	frames, err := m.GenerateIID(50000, DefaultGenOptions())
	if err != nil {
		t.Fatal(err)
	}
	// Right marginal...
	mean := stats.Mean(frames)
	if math.Abs(mean-27791)/27791 > 0.05 {
		t.Errorf("iid variant mean %v", mean)
	}
	// ...but no correlation.
	r, err := stats.Autocorrelation(frames, 10)
	if err != nil {
		t.Fatal(err)
	}
	for k := 1; k <= 10; k++ {
		if math.Abs(r[k]) > 0.05 {
			t.Errorf("iid variant acf lag %d = %v", k, r[k])
		}
	}
}

func TestVariantsShareLoad(t *testing.T) {
	// Fig. 16 compares the three variants at equal offered load: their
	// means must agree within sampling error.
	m := paperModel()
	opts := DefaultGenOptions()
	opts.Generator = DaviesHarteFast
	full, err := m.Generate(30000, opts)
	if err != nil {
		t.Fatal(err)
	}
	gauss, err := m.GenerateGaussian(30000, opts)
	if err != nil {
		t.Fatal(err)
	}
	iid, err := m.GenerateIID(30000, opts)
	if err != nil {
		t.Fatal(err)
	}
	mf, mg, mi := stats.Mean(full), stats.Mean(gauss), stats.Mean(iid)
	if math.Abs(mf-mg)/mf > 0.08 || math.Abs(mf-mi)/mf > 0.08 {
		t.Errorf("variant means diverge: full %v gauss %v iid %v", mf, mg, mi)
	}
}

func TestFitRecoversSynthTraceParameters(t *testing.T) {
	// Fit the model to the synthetic empirical trace and check the
	// parameters come back near the generator's configuration — the §4.2
	// "realizations were tested and found to agree" loop.
	cfg := synth.DefaultConfig()
	cfg.Frames = 60000
	cfg.SlicesPerFrame = 0
	tr, err := synth.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	opts := DefaultFitOptions()
	opts.AggM = 0
	m, err := Fit(tr.Frames, opts)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(m.MuGamma-27791)/27791 > 0.05 {
		t.Errorf("fitted μ_Γ %v", m.MuGamma)
	}
	if math.Abs(m.SigmaGamma-6254)/6254 > 0.25 {
		t.Errorf("fitted σ_Γ %v", m.SigmaGamma)
	}
	if m.TailSlope < 6 || m.TailSlope > 20 {
		t.Errorf("fitted m_T %v, configured 12", m.TailSlope)
	}
	if m.Hurst < 0.6 || m.Hurst > 0.98 {
		t.Errorf("fitted H %v, configured 0.8", m.Hurst)
	}
}

func TestFitErrors(t *testing.T) {
	if _, err := Fit(make([]float64, 10), DefaultFitOptions()); err == nil {
		t.Error("short series should fail")
	}
	xs := make([]float64, 2000)
	for i := range xs {
		xs[i] = 100 + float64(i%7)
	}
	opts := DefaultFitOptions()
	opts.TailFrac = 0
	if _, err := Fit(xs, opts); err == nil {
		t.Error("bad tail fraction should fail")
	}
	opts = DefaultFitOptions()
	opts.AggM = -1
	if _, err := Fit(xs, opts); err == nil {
		t.Error("bad aggM should fail")
	}
}

func TestRoundTripFitGenerate(t *testing.T) {
	// Generate from known parameters, fit, and compare: the model's own
	// consistency loop.
	truth := paperModel()
	opts := DefaultGenOptions()
	opts.Generator = DaviesHarteFast
	opts.Seed = 77
	frames, err := truth.Generate(60000, opts)
	if err != nil {
		t.Fatal(err)
	}
	fitOpts := DefaultFitOptions()
	fitOpts.AggM = 0
	got, err := Fit(frames, fitOpts)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got.MuGamma-truth.MuGamma)/truth.MuGamma > 0.05 {
		t.Errorf("μ_Γ %v, want %v", got.MuGamma, truth.MuGamma)
	}
	if math.Abs(got.Hurst-truth.Hurst) > 0.12 {
		t.Errorf("H %v, want %v", got.Hurst, truth.Hurst)
	}
	if got.TailSlope < truth.TailSlope*0.5 || got.TailSlope > truth.TailSlope*2 {
		t.Errorf("m_T %v, want ≈ %v", got.TailSlope, truth.TailSlope)
	}
}

func TestGenerateTrace(t *testing.T) {
	m := paperModel()
	opts := DefaultGenOptions()
	opts.Generator = DaviesHarteFast
	tr, err := m.GenerateTrace(2000, 24, 30, 0.3, opts)
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(tr.Slices) != 2000*30 {
		t.Fatalf("slices %d", len(tr.Slices))
	}
	// No slices requested.
	tr2, err := m.GenerateTrace(100, 24, 0, 0, opts)
	if err != nil {
		t.Fatal(err)
	}
	if tr2.Slices != nil {
		t.Error("slices should be absent")
	}
}

func TestDeterministicBySeed(t *testing.T) {
	m := paperModel()
	opts := DefaultGenOptions()
	opts.Generator = DaviesHarteFast
	a, _ := m.Generate(500, opts)
	b, _ := m.Generate(500, opts)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed must reproduce")
		}
	}
	opts.Seed = 2
	c, _ := m.Generate(500, opts)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seed should differ")
	}
}

func TestMarginalAndEffectiveMoments(t *testing.T) {
	m := paperModel()
	mu, sd, err := m.effectiveMoments()
	if err != nil {
		t.Fatal(err)
	}
	if mu < 27791*0.95 || mu > 27791*1.1 {
		t.Errorf("effective mean %v", mu)
	}
	if sd <= 0 {
		t.Errorf("effective sd %v", sd)
	}
	// Infinite-variance tail falls back to σ_Γ.
	heavy := Model{MuGamma: 27791, SigmaGamma: 6254, TailSlope: 1.5, Hurst: 0.8}
	_, sd2, err := heavy.effectiveMoments()
	if err != nil {
		t.Fatal(err)
	}
	if sd2 != 6254 {
		t.Errorf("heavy-tail fallback sd %v", sd2)
	}
}
