package core

import (
	"context"
	"fmt"
	"math"
	"math/rand/v2"

	"vbr/internal/errs"
)

// This file implements a TES-style (Transform-Expand-Sample) traffic
// generator after Jagerman & Melamed [JAGE92], which §4.2 cites as the
// uniform-marginal sibling of the paper's Eq. 13 transform: "A similar
// technique for distorting the marginals is used where the original
// process is distributed Uniformly rather than Normally."
//
// A TES⁺ background process is a modulo-1 random walk
//
//	U_0 ~ U[0,1),   U_k = ⟨U_{k-1} + V_k⟩,   V_k ~ U[−α/2, α/2),
//
// where ⟨·⟩ is the fractional part. Each U_k is exactly uniform on
// [0, 1) (the modulo-1 walk preserves uniformity), so the composition
// Y_k = F⁻¹_{Γ/P}(U_k) has exactly the hybrid marginal while the
// innovation spread α tunes the autocorrelation: small α gives slowly
// wandering, strongly correlated traffic; α = 1 gives i.i.d. traffic.
//
// TES correlations decay geometrically — it is an SRD model. It is
// included as a third ablation flank for Fig. 16-style comparisons:
// exact marginal, tunable short-range correlation, no long-range
// dependence.

// GenerateTES produces n frames with the model's Gamma/Pareto marginal
// driven by a TES⁺ background process with innovation spread alpha in
// (0, 1]. Smaller alpha means stronger (but always short-range)
// correlation.
func (m Model) GenerateTES(n int, alpha float64, opts GenOptions) ([]float64, error) {
	return m.GenerateTESCtx(context.Background(), n, alpha, opts)
}

// GenerateTESCtx is GenerateTES with cooperative cancellation, checked
// every 4096 points of the modulo-1 walk.
func (m Model) GenerateTESCtx(ctx context.Context, n int, alpha float64, opts GenOptions) ([]float64, error) {
	if err := m.Validate(); err != nil {
		return nil, err
	}
	if n < 1 {
		return nil, fmt.Errorf("core: length must be ≥ 1, got %d", n)
	}
	if !(alpha > 0 && alpha <= 1) {
		return nil, fmt.Errorf("core: TES spread must be in (0,1], got %v", alpha)
	}
	gp, err := m.Marginal()
	if err != nil {
		return nil, err
	}
	if opts.TableSize < 2 {
		return nil, fmt.Errorf("core: table size must be ≥ 2, got %d", opts.TableSize)
	}
	tab, err := gp.QuantileTable(opts.TableSize)
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewPCG(opts.Seed, 0x7e5))
	u := rng.Float64()
	out := make([]float64, n)
	for k := range out {
		if k%4096 == 0 && ctx.Err() != nil {
			return nil, errs.Cancelled(ctx)
		}
		out[k] = tab.Value(u)
		u += alpha * (rng.Float64() - 0.5)
		u -= math.Floor(u) // fractional part, handles negatives
	}
	return out, nil
}
