package core

import (
	"math"
	"testing"

	"vbr/internal/lrd"
	"vbr/internal/stats"
)

func TestGenerateTESMarginal(t *testing.T) {
	m := paperModel()
	frames, err := m.GenerateTES(60000, 0.3, fastOpts(1))
	if err != nil {
		t.Fatal(err)
	}
	s, err := stats.Summarize(frames)
	if err != nil {
		t.Fatal(err)
	}
	// The modulo-1 walk keeps U exactly uniform, so the marginal moments
	// match the hybrid's.
	gp, err := m.Marginal()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(s.Mean-gp.Mean())/gp.Mean() > 0.03 {
		t.Errorf("TES mean %v, want %v", s.Mean, gp.Mean())
	}
	for _, v := range frames {
		if v <= 0 {
			t.Fatal("bandwidth must be positive")
		}
	}
}

func TestGenerateTESCorrelationTunable(t *testing.T) {
	m := paperModel()
	strong, err := m.GenerateTES(40000, 0.1, fastOpts(2))
	if err != nil {
		t.Fatal(err)
	}
	weak, err := m.GenerateTES(40000, 1.0, fastOpts(2))
	if err != nil {
		t.Fatal(err)
	}
	rs, err := stats.Autocorrelation(strong, 5)
	if err != nil {
		t.Fatal(err)
	}
	rw, err := stats.Autocorrelation(weak, 5)
	if err != nil {
		t.Fatal(err)
	}
	if rs[1] < 0.5 {
		t.Errorf("α=0.1 lag-1 acf %v; should be strongly correlated", rs[1])
	}
	if math.Abs(rw[1]) > 0.05 {
		t.Errorf("α=1 lag-1 acf %v; should be ≈ i.i.d.", rw[1])
	}
}

func TestGenerateTESIsSRD(t *testing.T) {
	// TES has geometric correlations: the variance-time slope beyond its
	// correlation length must look like H ≈ 0.5, unlike the full model.
	m := paperModel()
	frames, err := m.GenerateTES(80000, 0.3, fastOpts(3))
	if err != nil {
		t.Fatal(err)
	}
	vt, err := lrd.VarianceTime(frames, 100, 100, 0)
	if err != nil {
		t.Fatal(err)
	}
	if vt.H > 0.65 {
		t.Errorf("TES variance-time H = %v; should be SRD (≈0.5)", vt.H)
	}
}

func TestGenerateTESValidation(t *testing.T) {
	m := paperModel()
	if _, err := m.GenerateTES(0, 0.3, fastOpts(1)); err == nil {
		t.Error("n=0 should fail")
	}
	if _, err := m.GenerateTES(100, 0, fastOpts(1)); err == nil {
		t.Error("alpha=0 should fail")
	}
	if _, err := m.GenerateTES(100, 1.5, fastOpts(1)); err == nil {
		t.Error("alpha>1 should fail")
	}
	bad := Model{}
	if _, err := bad.GenerateTES(100, 0.3, fastOpts(1)); err == nil {
		t.Error("invalid model should fail")
	}
	opts := fastOpts(1)
	opts.TableSize = 1
	if _, err := m.GenerateTES(100, 0.3, opts); err == nil {
		t.Error("bad table should fail")
	}
}

func TestGenerateTESDeterminism(t *testing.T) {
	m := paperModel()
	a, _ := m.GenerateTES(500, 0.3, fastOpts(7))
	b, _ := m.GenerateTES(500, 0.3, fastOpts(7))
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed must reproduce")
		}
	}
}
