// Package core implements the paper's VBR video source model (§4): a
// four-parameter (μ_Γ, σ_Γ, m_T, H) non-Markovian traffic model combining
// a fractional ARIMA(0, d, 0) long-range dependent Gaussian process
// (generated exactly by Hosking's algorithm, Eqs. 6–12) with a hybrid
// Gamma/Pareto marginal distribution applied through the transform
//
//	Y_k = F⁻¹_{Γ/P}(F_N(X_k))                      (Eq. 13)
//
// It also provides the two ablated model variants simulated in Fig. 16:
// the fractional ARIMA model with plain Gaussian marginals, and an
// i.i.d. process with Gamma/Pareto marginals. Either captures only one of
// the two phenomena (LRD, heavy tails) that the full model combines.
package core

import (
	"context"
	"fmt"
	"math"
	"math/rand/v2"

	"vbr/internal/backend"
	"vbr/internal/dist"
	"vbr/internal/errs"
	"vbr/internal/fgn"
	"vbr/internal/genpool"
	"vbr/internal/lrd"
	"vbr/internal/trace"
)

// Model is the paper's four-parameter VBR video source model.
type Model struct {
	MuGamma    float64 // μ_Γ: equivalent Gamma-body mean (bytes per frame)
	SigmaGamma float64 // σ_Γ: equivalent Gamma-body standard deviation
	TailSlope  float64 // m_T: Pareto tail index (log-log CCDF slope)
	Hurst      float64 // H: long-range dependence parameter
}

// Validate checks the parameter ranges. Failures match
// errs.ErrInvalidModel.
func (m Model) Validate() error {
	switch {
	case !(m.MuGamma > 0):
		return fmt.Errorf("core: μ_Γ must be positive, got %v: %w", m.MuGamma, errs.ErrInvalidModel)
	case !(m.SigmaGamma > 0):
		return fmt.Errorf("core: σ_Γ must be positive, got %v: %w", m.SigmaGamma, errs.ErrInvalidModel)
	case !(m.TailSlope > 0):
		return fmt.Errorf("core: m_T must be positive, got %v: %w", m.TailSlope, errs.ErrInvalidModel)
	case !(m.Hurst > 0 && m.Hurst < 1):
		return fmt.Errorf("core: H must be in (0,1), got %v: %w", m.Hurst, errs.ErrInvalidModel)
	}
	return nil
}

// Marginal returns the model's hybrid Gamma/Pareto marginal distribution.
func (m Model) Marginal() (*dist.GammaPareto, error) {
	if err := m.Validate(); err != nil {
		return nil, err
	}
	return dist.NewGammaParetoFromParams(dist.GammaParetoParams{MuGamma: m.MuGamma, SigmaGamma: m.SigmaGamma, TailSlope: m.TailSlope})
}

// FitOptions controls parameter estimation from an empirical trace.
type FitOptions struct {
	// TailFrac is the upper fraction of the sample used for the Pareto
	// tail regression (the paper's trace has ≈3% of mass in the tail).
	TailFrac float64
	// AggM, when positive, fixes the aggregation level of the Whittle H
	// estimate (the paper reads Ĥ at m ≈ 700 for its 171,000-frame
	// trace). When zero, the estimate is read automatically where the
	// Ĥ(m) aggregation ladder stabilizes — the programmatic version of
	// the paper's procedure.
	AggM int
}

// DefaultFitOptions mirrors the paper's estimation choices with the
// automatic ladder stabilization.
func DefaultFitOptions() FitOptions {
	return FitOptions{TailFrac: 0.03, AggM: 0}
}

// Fit estimates all four model parameters from a frame-size series:
// μ_Γ and σ_Γ as the sample moments (sufficient when the tail holds only
// a few percent of the data, §4.2), m_T by least-squares regression on
// the empirical log-log CCDF tail (the Fig. 4 straight line), and H by
// the aggregated Whittle estimator of §3.2.3.
func Fit(frames []float64, opts FitOptions) (Model, error) {
	return FitCtx(context.Background(), frames, opts)
}

// FitCtx is Fit with cooperative cancellation, checked between the
// estimation stages (the Whittle minimization dominates at paper scale).
func FitCtx(ctx context.Context, frames []float64, opts FitOptions) (Model, error) {
	if len(frames) < 1000 {
		return Model{}, fmt.Errorf("core: need ≥ 1000 frames to fit, got %d", len(frames))
	}
	if !(opts.TailFrac > 0 && opts.TailFrac < 1) {
		return Model{}, fmt.Errorf("core: tail fraction must be in (0,1), got %v", opts.TailFrac)
	}
	if opts.AggM < 0 {
		return Model{}, fmt.Errorf("core: aggregation level must be ≥ 0, got %d", opts.AggM)
	}
	mean, sd, err := dist.SampleMoments(frames)
	if err != nil {
		return Model{}, err
	}
	a, _, err := dist.FitParetoTail(frames, opts.TailFrac)
	if err != nil {
		return Model{}, fmt.Errorf("core: tail fit: %w", err)
	}
	if ctx.Err() != nil {
		return Model{}, errs.Cancelled(ctx)
	}

	positive := true
	for _, v := range frames {
		if v <= 0 {
			positive = false
			break
		}
	}
	var wh *lrd.WhittleResult
	if opts.AggM > 0 {
		wh, err = lrd.WhittleAggregated(frames, opts.AggM, positive)
	} else {
		wh, err = lrd.WhittleStabilized(frames, positive)
	}
	if err != nil {
		return Model{}, fmt.Errorf("core: Whittle fit: %w", err)
	}
	if ctx.Err() != nil {
		return Model{}, errs.Cancelled(ctx)
	}
	h := wh.H
	if h >= 0.98 {
		// The feasible aggregation ladder never crossed the trace's
		// short-range correlation scale (scene length), so Whittle
		// saturated at the stationarity boundary. Fall back to the
		// variance–time estimator fitted beyond that scale — the same
		// remedy §3.2.3 applies by measuring from ≈200 frames upward.
		vt, vtErr := lrd.VarianceTime(frames, 1, 200, 0)
		if vtErr != nil {
			return Model{}, fmt.Errorf("core: variance-time fallback: %w", vtErr)
		}
		h = vt.H
	}
	// Clamp into the stationary LRD range.
	if h <= 0.5 {
		h = 0.5 + 1e-6
	}
	if h >= 0.999 {
		h = 0.999
	}

	m := Model{MuGamma: mean, SigmaGamma: sd, TailSlope: a, Hurst: h}
	return m, m.Validate()
}

// Generator selects the Gaussian LRD engine.
//
// Deprecated: Generator is the unified backend.Backend under its
// historical name. New code should use backend.Backend (re-exported as
// vbr.Backend) and its constants; the aliases remain so existing
// callers keep compiling.
type Generator = backend.Backend

const (
	// HoskingExact is the paper's generator (Eqs. 6–12): exact but O(n²).
	//
	// Deprecated: use backend.Hosking (vbr.BackendHosking).
	HoskingExact = backend.Hosking
	// DaviesHarteFast is the O(n log n) circulant-embedding FGN
	// generator, this repository's speed ablation.
	//
	// Deprecated: use backend.DaviesHarte (vbr.BackendDaviesHarte).
	DaviesHarteFast = backend.DaviesHarte
)

// GenOptions controls synthetic traffic generation.
type GenOptions struct {
	Generator Generator
	// TableSize is the resolution of the Gaussian→Gamma/Pareto mapping
	// table (the paper uses 10,000 points).
	TableSize int
	// Standardize renormalizes the Gaussian realization to exactly zero
	// mean and unit variance before the marginal transform, compensating
	// the slow LRD sampling convergence discussed in §4.2.
	Standardize bool
	Seed        uint64
	// SnapshotEvery, when positive together with a non-nil Snapshot,
	// makes GenerateResumable persist a recursion checkpoint after each
	// block of this many generated points, bounding the work lost to a
	// crash (not just a signal). Ignored by the other generators.
	SnapshotEvery int
	// Snapshot receives the periodic checkpoints; see
	// fgn.HoskingCheckpointed for the exact semantics.
	Snapshot fgn.SnapshotFunc
	// Pool, when non-nil, serves the seed-independent precomputations —
	// Hosking coefficient schedules, Davies–Harte eigenvalue vectors and
	// Eq. 13 quantile tables — from a shared cross-request cache instead
	// of recomputing them per call. The generated output is bitwise
	// identical either way (the cached quantities do not depend on the
	// seed); nil preserves the cold per-call behavior exactly.
	Pool *genpool.Pool
}

// DefaultGenOptions mirrors the paper's generation procedure.
func DefaultGenOptions() GenOptions {
	return GenOptions{Generator: HoskingExact, TableSize: 10000, Standardize: true, Seed: 1}
}

// Generate produces n frames of synthetic VBR video traffic from the full
// model: LRD Gaussian noise mapped through Eq. 13.
func (m Model) Generate(n int, opts GenOptions) ([]float64, error) {
	return m.GenerateCtx(context.Background(), n, opts)
}

// GenerateCtx is Generate with cooperative cancellation: the O(n²)
// Hosking recursion checks the context each outer iteration and returns
// an error matching errs.ErrCancelled promptly when it fires.
func (m Model) GenerateCtx(ctx context.Context, n int, opts GenOptions) ([]float64, error) {
	if err := m.Validate(); err != nil {
		return nil, err
	}
	x, err := m.gaussianCtx(ctx, n, opts)
	if err != nil {
		return nil, err
	}
	return m.transformCtx(ctx, x, opts)
}

// GenerateGaussian produces the Fig. 16 ablation with LRD but Gaussian
// marginals N(μ, σ²) where μ, σ are the *overall* mean and standard
// deviation of the full model's marginal, so the two variants carry the
// same load. Negative values (possible for a Gaussian) are clamped to
// zero, as a bandwidth process requires.
func (m Model) GenerateGaussian(n int, opts GenOptions) ([]float64, error) {
	return m.GenerateGaussianCtx(context.Background(), n, opts)
}

// GenerateGaussianCtx is GenerateGaussian with cooperative cancellation.
func (m Model) GenerateGaussianCtx(ctx context.Context, n int, opts GenOptions) ([]float64, error) {
	if err := m.Validate(); err != nil {
		return nil, err
	}
	x, err := m.gaussianCtx(ctx, n, opts)
	if err != nil {
		return nil, err
	}
	mu, sd, err := m.effectiveMoments()
	if err != nil {
		return nil, err
	}
	out := make([]float64, n)
	for i, v := range x {
		y := mu + sd*v
		if y < 0 {
			y = 0
		}
		out[i] = y
	}
	return out, nil
}

// GenerateIID produces the Fig. 16 ablation with the right heavy-tailed
// marginal but no time correlation at all.
func (m Model) GenerateIID(n int, opts GenOptions) ([]float64, error) {
	return m.GenerateIIDCtx(context.Background(), n, opts)
}

// GenerateIIDCtx is GenerateIID with cooperative cancellation, checked
// every few thousand draws.
func (m Model) GenerateIIDCtx(ctx context.Context, n int, opts GenOptions) ([]float64, error) {
	if err := m.Validate(); err != nil {
		return nil, err
	}
	gp, err := m.Marginal()
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewPCG(opts.Seed, 0x11d))
	out := make([]float64, n)
	for i := range out {
		if i%4096 == 0 && ctx.Err() != nil {
			return nil, errs.Cancelled(ctx)
		}
		out[i] = gp.Sample(rng)
	}
	return out, nil
}

// gaussianCtx runs the selected LRD engine under a context and
// optionally standardizes. With a pool in the options the
// seed-independent half of the chosen engine (coefficient schedule or
// eigenvalue vector) is served from cache; the seeded half draws from
// rng in exactly the cold order, keeping the output bitwise identical.
func (m Model) gaussianCtx(ctx context.Context, n int, opts GenOptions) ([]float64, error) {
	if n < 1 {
		return nil, fmt.Errorf("core: length must be ≥ 1, got %d", n)
	}
	rng := rand.New(rand.NewPCG(opts.Seed, 0x6a55))
	var x []float64
	var err error
	// Auto resolves per request: exact Hosking below the cutoff, Paxson
	// above it. A resolved concrete backend passes through unchanged.
	switch opts.Generator.Resolve(n, false) {
	case backend.Hosking:
		if opts.Pool != nil {
			var c *fgn.HoskingCoeffs
			if c, err = opts.Pool.HoskingCoeffs(ctx, m.Hurst, n); err == nil {
				x, err = fgn.HoskingFromCoeffs(ctx, n, c, rng)
			}
		} else {
			x, err = fgn.HoskingCtx(ctx, n, m.Hurst, rng)
		}
	case backend.DaviesHarte:
		if opts.Pool != nil {
			var lam []float64
			if lam, err = opts.Pool.DaviesHarteEigen(ctx, m.Hurst, n); err == nil {
				x, err = fgn.DaviesHarteFromEigenCtx(ctx, n, lam, rng)
			}
		} else {
			x, err = fgn.DaviesHarteCtx(ctx, n, m.Hurst, rng)
		}
	case backend.Paxson:
		if opts.Pool != nil {
			var p []float64
			if p, err = opts.Pool.PaxsonSpectrum(ctx, m.Hurst, n); err == nil {
				x, err = fgn.PaxsonFromSpectrumCtx(ctx, n, p, rng)
			}
		} else {
			x, err = fgn.PaxsonCtx(ctx, n, m.Hurst, rng)
		}
	default:
		return nil, fmt.Errorf("core: generator %d: %w", int(opts.Generator), errs.ErrUnknownBackend)
	}
	if err != nil {
		return nil, err
	}
	if opts.Standardize {
		fgn.Standardize(x)
	}
	return x, nil
}

// GenerateResumable is the checkpointable variant of Generate, restricted
// to the HoskingExact engine (the O(n²) recursion is the run worth
// checkpointing; Davies–Harte finishes in seconds). On cancellation it
// returns a nil series together with a snapshot of the recursion that,
// passed back as resume in a later call with the same n and options,
// continues the computation and yields a series bitwise-identical to an
// uninterrupted run. On completion the returned state is nil.
//
// Standardization and the Eq. 13 transform run only after the Gaussian
// stage completes, so they need no state of their own.
func (m Model) GenerateResumable(ctx context.Context, n int, opts GenOptions, resume *fgn.HoskingState) ([]float64, *fgn.HoskingState, error) {
	if err := m.Validate(); err != nil {
		return nil, nil, err
	}
	if opts.Generator != HoskingExact {
		return nil, nil, fmt.Errorf("core: checkpoint/resume requires the Hosking generator")
	}
	if n < 1 {
		return nil, nil, fmt.Errorf("core: length must be ≥ 1, got %d", n)
	}
	// Same derivation as gaussianCtx, so an uninterrupted resumable run
	// matches Generate exactly. Periodic snapshots observe the recursion
	// without consuming randomness, so they cannot perturb the output.
	src := rand.NewPCG(opts.Seed, 0x6a55)
	x, st, err := fgn.HoskingCheckpointed(ctx, n, m.Hurst, src, resume, opts.SnapshotEvery, opts.Snapshot)
	if err != nil {
		return nil, st, err
	}
	if opts.Standardize {
		fgn.Standardize(x)
	}
	out, err := m.transformCtx(ctx, x, opts)
	return out, nil, err
}

// effectiveMoments returns the mean and standard deviation of the full
// model's marginal, falling back to (μ_Γ, σ_Γ) when the Pareto tail makes
// them divergent.
func (m Model) effectiveMoments() (mu, sd float64, err error) {
	gp, err := m.Marginal()
	if err != nil {
		return 0, 0, err
	}
	mu, v := gp.Mean(), gp.Variance()
	if math.IsInf(mu, 0) {
		mu = m.MuGamma
	}
	if math.IsInf(v, 0) {
		sd = m.SigmaGamma
	} else {
		sd = math.Sqrt(v)
	}
	return mu, sd, nil
}

// GenerateTrace wraps Generate in a trace.Trace with slice-level data
// derived by even division plus jitter, ready for the §5 simulations.
func (m Model) GenerateTrace(n int, frameRate float64, slicesPerFrame int, sliceJitter float64, opts GenOptions) (*trace.Trace, error) {
	return m.GenerateTraceCtx(context.Background(), n, frameRate, slicesPerFrame, sliceJitter, opts)
}

// GenerateTraceCtx is GenerateTrace with cooperative cancellation.
func (m Model) GenerateTraceCtx(ctx context.Context, n int, frameRate float64, slicesPerFrame int, sliceJitter float64, opts GenOptions) (*trace.Trace, error) {
	frames, err := m.GenerateCtx(ctx, n, opts)
	if err != nil {
		return nil, err
	}
	tr := &trace.Trace{Frames: frames, FrameRate: frameRate}
	if slicesPerFrame > 0 {
		rng := rand.New(rand.NewPCG(opts.Seed, 0x517ce))
		if err := tr.SlicesFromFrames(slicesPerFrame, sliceJitter, rng.Float64); err != nil {
			return nil, err
		}
	}
	if err := tr.Validate(); err != nil {
		return nil, err
	}
	return tr, nil
}

// VerifyRealization checks a generated series against the model the way
// §4.2 reports: the sample mean/σ against the marginal's, the fitted
// tail slope against m_T, and the variance-time H against the model's H.
// It returns a report rather than pass/fail so callers can print it.
type RealizationReport struct {
	Mean, WantMean float64
	Std, WantStd   float64
	TailSlope      float64
	H, WantH       float64
}

// VerifyRealization measures a generated series.
func (m Model) VerifyRealization(frames []float64) (*RealizationReport, error) {
	if err := m.Validate(); err != nil {
		return nil, err
	}
	mu, sd, err := m.effectiveMoments()
	if err != nil {
		return nil, err
	}
	gotMean, gotSd, err := dist.SampleMoments(frames)
	if err != nil {
		return nil, err
	}
	rep := &RealizationReport{
		Mean: gotMean, WantMean: mu,
		Std: gotSd, WantStd: sd,
		WantH: m.Hurst,
	}
	if a, _, err := dist.FitParetoTail(frames, 0.02); err == nil {
		rep.TailSlope = a
	}
	vt, err := lrd.VarianceTime(frames, 1, 0, 0)
	if err != nil {
		return nil, err
	}
	rep.H = vt.H
	return rep, nil
}
