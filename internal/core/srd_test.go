package core

import (
	"math"
	"testing"

	"vbr/internal/arma"
	"vbr/internal/lrd"
	"vbr/internal/stats"
)

func fastOpts(seed uint64) GenOptions {
	opts := DefaultGenOptions()
	opts.Generator = DaviesHarteFast
	opts.Seed = seed
	return opts
}

func TestGenerateWithARMAPreservesMarginal(t *testing.T) {
	m := paperModel()
	srd := arma.Model{Phi: []float64{0.6}}
	frames, err := m.GenerateWithARMA(50000, srd, fastOpts(1))
	if err != nil {
		t.Fatal(err)
	}
	s, err := stats.Summarize(frames)
	if err != nil {
		t.Fatal(err)
	}
	// The marginal transform runs after restandardization, so the
	// moments must match the plain model's.
	if math.Abs(s.Mean-27791)/27791 > 0.05 {
		t.Errorf("mean %v", s.Mean)
	}
	for _, v := range frames {
		if v <= 0 {
			t.Fatal("bandwidth must be positive")
		}
	}
}

func TestGenerateWithARMABoostsShortRangeCorrelation(t *testing.T) {
	m := paperModel()
	plain, err := m.Generate(40000, fastOpts(2))
	if err != nil {
		t.Fatal(err)
	}
	srd := arma.Model{Phi: []float64{0.85}}
	augmented, err := m.GenerateWithARMA(40000, srd, fastOpts(2))
	if err != nil {
		t.Fatal(err)
	}
	rPlain, err := stats.Autocorrelation(plain, 5)
	if err != nil {
		t.Fatal(err)
	}
	rAug, err := stats.Autocorrelation(augmented, 5)
	if err != nil {
		t.Fatal(err)
	}
	// The AR filter must raise the short-lag correlations materially.
	if rAug[1] < rPlain[1]+0.1 {
		t.Errorf("lag-1 acf: augmented %v vs plain %v; filter ineffective", rAug[1], rPlain[1])
	}
}

func TestGenerateWithARMAPreservesH(t *testing.T) {
	// "The SRD structure is by default self-similar to the long-term
	// structure": an ARMA filter must not change H. Fit the
	// variance-time slope beyond the ARMA correlation length.
	m := paperModel()
	srd := arma.Model{Phi: []float64{0.8}}
	frames, err := m.GenerateWithARMA(80000, srd, fastOpts(3))
	if err != nil {
		t.Fatal(err)
	}
	vt, err := lrd.VarianceTime(frames, 30, 30, 0)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(vt.H-0.8) > 0.12 {
		t.Errorf("H after ARMA filtering %v, want ≈ 0.8", vt.H)
	}
}

func TestGenerateWithARMAErrors(t *testing.T) {
	m := paperModel()
	if _, err := m.GenerateWithARMA(100, arma.Model{Phi: []float64{1.1}}, fastOpts(1)); err == nil {
		t.Error("non-stationary filter should fail")
	}
	bad := Model{}
	if _, err := bad.GenerateWithARMA(100, arma.Model{}, fastOpts(1)); err == nil {
		t.Error("invalid model should fail")
	}
	if _, err := m.GenerateWithARMA(0, arma.Model{}, fastOpts(1)); err == nil {
		t.Error("n=0 should fail")
	}
}

func TestGenerateMarkovModulated(t *testing.T) {
	m := paperModel()
	chain, err := arma.SceneChain(240, 1)
	if err != nil {
		t.Fatal(err)
	}
	frames, err := m.GenerateMarkovModulated(50000, chain, 0.5, fastOpts(4))
	if err != nil {
		t.Fatal(err)
	}
	s, err := stats.Summarize(frames)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(s.Mean-27791)/27791 > 0.05 {
		t.Errorf("mean %v", s.Mean)
	}
	// Scene persistence: strong correlation at lags within a scene.
	r, err := stats.Autocorrelation(frames, 100)
	if err != nil {
		t.Fatal(err)
	}
	if r[50] < 0.2 {
		t.Errorf("lag-50 acf %v; modulation not visible", r[50])
	}
}

func TestGenerateMarkovModulatedErrors(t *testing.T) {
	m := paperModel()
	chain, _ := arma.SceneChain(100, 1)
	if _, err := m.GenerateMarkovModulated(100, nil, 0.5, fastOpts(1)); err == nil {
		t.Error("nil chain should fail")
	}
	if _, err := m.GenerateMarkovModulated(100, chain, 1.0, fastOpts(1)); err == nil {
		t.Error("weight 1 should fail")
	}
	if _, err := m.GenerateMarkovModulated(100, chain, -0.1, fastOpts(1)); err == nil {
		t.Error("negative weight should fail")
	}
	bad := Model{}
	if _, err := bad.GenerateMarkovModulated(100, chain, 0.5, fastOpts(1)); err == nil {
		t.Error("invalid model should fail")
	}
}

func TestMarkovModulationZeroWeightMatchesPlain(t *testing.T) {
	m := paperModel()
	chain, _ := arma.SceneChain(100, 1)
	plain, err := m.Generate(5000, fastOpts(5))
	if err != nil {
		t.Fatal(err)
	}
	mod, err := m.GenerateMarkovModulated(5000, chain, 0, fastOpts(5))
	if err != nil {
		t.Fatal(err)
	}
	for i := range plain {
		if math.Abs(plain[i]-mod[i]) > 1e-9*plain[i] {
			t.Fatalf("weight 0 differs from plain at %d: %v vs %v", i, plain[i], mod[i])
		}
	}
}
