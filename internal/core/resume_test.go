package core

import (
	"context"
	"errors"
	"testing"

	"vbr/internal/errs"
)

// interruptCtx cancels deterministically after limit Err() calls.
type interruptCtx struct {
	context.Context
	calls, limit int
}

func (c *interruptCtx) Err() error {
	c.calls++
	if c.calls > c.limit {
		return context.Canceled
	}
	return nil
}

func testModel() Model {
	return Model{MuGamma: 27791, SigmaGamma: 6254, TailSlope: 12.6, Hurst: 0.8}
}

func TestGenerateResumableMatchesGenerate(t *testing.T) {
	m := testModel()
	opts := DefaultGenOptions()
	opts.Seed = 7
	const n = 2000

	want, err := m.Generate(n, opts)
	if err != nil {
		t.Fatal(err)
	}

	// Uninterrupted resumable run.
	got, st, err := m.GenerateResumable(context.Background(), n, opts, nil)
	if err != nil || st != nil {
		t.Fatalf("uninterrupted resumable run: err=%v st=%v", err, st)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("uninterrupted resumable output differs at %d: %v vs %v", i, got[i], want[i])
		}
	}

	// Interrupted halfway, then resumed: still bitwise-identical.
	cctx := &interruptCtx{Context: context.Background(), limit: n / 2}
	_, snap, err := m.GenerateResumable(cctx, n, opts, nil)
	if !errors.Is(err, errs.ErrCancelled) {
		t.Fatalf("interrupted run: err=%v, want ErrCancelled", err)
	}
	if snap == nil || snap.K <= 0 || snap.K >= n {
		t.Fatalf("interrupted run returned unusable snapshot: %+v", snap)
	}
	resumed, st2, err := m.GenerateResumable(context.Background(), n, opts, snap)
	if err != nil || st2 != nil {
		t.Fatalf("resume: err=%v", err)
	}
	for i := range want {
		if resumed[i] != want[i] {
			t.Fatalf("resumed output differs at %d: %v vs %v", i, resumed[i], want[i])
		}
	}
}

func TestGenerateResumableRejectsDaviesHarte(t *testing.T) {
	m := testModel()
	opts := DefaultGenOptions()
	opts.Generator = DaviesHarteFast
	if _, _, err := m.GenerateResumable(context.Background(), 100, opts, nil); err == nil {
		t.Fatal("expected an error for the non-checkpointable generator")
	}
}

func TestGenerateCtxCancelled(t *testing.T) {
	m := testModel()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := m.GenerateCtx(ctx, 5000, DefaultGenOptions()); !errors.Is(err, errs.ErrCancelled) {
		t.Fatalf("GenerateCtx: got %v, want ErrCancelled", err)
	}
	if _, err := m.GenerateIIDCtx(ctx, 100000, DefaultGenOptions()); !errors.Is(err, errs.ErrCancelled) {
		t.Fatalf("GenerateIIDCtx: got %v, want ErrCancelled", err)
	}
	if _, err := m.GenerateGaussianCtx(ctx, 5000, DefaultGenOptions()); !errors.Is(err, errs.ErrCancelled) {
		t.Fatalf("GenerateGaussianCtx: got %v, want ErrCancelled", err)
	}
}

func TestValidateMatchesSentinel(t *testing.T) {
	bad := Model{MuGamma: -1, SigmaGamma: 1, TailSlope: 1, Hurst: 0.8}
	if err := bad.Validate(); !errors.Is(err, errs.ErrInvalidModel) {
		t.Fatalf("got %v, want ErrInvalidModel", err)
	}
}
