package core

import (
	"context"
	"errors"
	"math"
	"testing"

	"vbr/internal/errs"
	"vbr/internal/genpool"
)

// TestGenerateBatchDeterministic: a batch is a pure function of
// (model, k, n, opts) — re-running it yields identical traces, and
// trace i equals a solo Generate with the documented derived seed.
func TestGenerateBatchDeterministic(t *testing.T) {
	m := Model{MuGamma: 27791, SigmaGamma: 6254, TailSlope: 12, Hurst: 0.8}
	opts := DefaultGenOptions()
	opts.Seed = 99
	const k, n = 6, 1500

	a, err := m.GenerateBatch(context.Background(), k, n, opts)
	if err != nil {
		t.Fatal(err)
	}
	b, err := m.GenerateBatch(context.Background(), k, n, opts)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < k; i++ {
		solo := opts
		solo.Seed = BatchSeed(opts.Seed, i)
		want, err := m.Generate(n, solo)
		if err != nil {
			t.Fatal(err)
		}
		for j := range want {
			if math.Float64bits(a[i][j]) != math.Float64bits(b[i][j]) {
				t.Fatalf("batch not reproducible: trace %d frame %d", i, j)
			}
			if math.Float64bits(a[i][j]) != math.Float64bits(want[j]) {
				t.Fatalf("trace %d frame %d differs from solo Generate with BatchSeed", i, j)
			}
		}
	}

	// Distinct traces must actually be distinct realizations.
	same := true
	for j := range a[0] {
		if math.Float64bits(a[0][j]) != math.Float64bits(a[1][j]) {
			same = false
			break
		}
	}
	if same {
		t.Fatal("traces 0 and 1 are identical; seed derivation collapsed")
	}
}

// TestGenerateBatchSharedPool: a caller-supplied pool is reused across
// the whole batch — the coefficient schedule is computed once, and the
// rest of the traces hit it.
func TestGenerateBatchSharedPool(t *testing.T) {
	m := Model{MuGamma: 27791, SigmaGamma: 6254, TailSlope: 12, Hurst: 0.8}
	opts := DefaultGenOptions()
	opts.Pool = genpool.New(0)
	if _, err := m.GenerateBatch(context.Background(), 4, 800, opts); err != nil {
		t.Fatal(err)
	}
	st := opts.Pool.Stats()
	if st.Hits == 0 {
		t.Fatalf("batch never hit the shared pool: %+v", st)
	}
	if st.Entries != 2 { // one Hosking schedule + one quantile table
		t.Fatalf("expected 2 pool entries, got %+v", st)
	}
}

// TestGenerateBatchCancellation: cancelling mid-batch surfaces an
// errs.ErrCancelled-matching error rather than a partial result.
func TestGenerateBatchCancellation(t *testing.T) {
	m := Model{MuGamma: 27791, SigmaGamma: 6254, TailSlope: 12, Hurst: 0.8}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := m.GenerateBatch(ctx, 4, 5000, DefaultGenOptions())
	if err == nil || !errors.Is(err, errs.ErrCancelled) {
		t.Fatalf("want cancellation error, got %v", err)
	}
}

// TestGenerateBatchValidation covers the argument gate.
func TestGenerateBatchValidation(t *testing.T) {
	m := Model{MuGamma: 27791, SigmaGamma: 6254, TailSlope: 12, Hurst: 0.8}
	if _, err := m.GenerateBatch(context.Background(), 0, 100, DefaultGenOptions()); err == nil {
		t.Fatal("k=0 accepted")
	}
	if _, err := m.GenerateBatch(context.Background(), 1, 0, DefaultGenOptions()); err == nil {
		t.Fatal("n=0 accepted")
	}
	if _, err := (Model{}).GenerateBatch(context.Background(), 1, 100, DefaultGenOptions()); err == nil {
		t.Fatal("invalid model accepted")
	}
}
