package scenes

import (
	"math"
	"math/rand/v2"
	"testing"

	"vbr/internal/synth"
)

// stepSeries builds a piecewise-constant series with noise and known
// cuts.
func stepSeries(levels []float64, segLen int, noise float64, seed uint64) (frames []float64, cuts []int) {
	rng := rand.New(rand.NewPCG(seed, 1))
	for i, l := range levels {
		if i > 0 {
			cuts = append(cuts, i*segLen)
		}
		for j := 0; j < segLen; j++ {
			frames = append(frames, l+noise*rng.NormFloat64())
		}
	}
	return frames, cuts
}

func TestCutsOnCleanSteps(t *testing.T) {
	// Segments must be long relative to the window for the median
	// self-calibration to see mostly within-scene differences (the
	// detector's resolution limit; the synthetic-movie test below covers
	// the realistic 10-second-scene regime).
	frames, truth := stepSeries([]float64{100, 200, 120, 300}, 600, 5, 1)
	cuts, err := Cuts(frames, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	p, r := MatchStats(cuts, truth, 12)
	if p < 0.99 || r < 0.99 {
		t.Errorf("precision %v recall %v on clean steps (cuts %v, truth %v)", p, r, cuts, truth)
	}
}

func TestCutsNoFalsePositivesOnNoise(t *testing.T) {
	rng := rand.New(rand.NewPCG(2, 3))
	frames := make([]float64, 3000)
	for i := range frames {
		frames[i] = 100 + 10*rng.NormFloat64()
	}
	cuts, err := Cuts(frames, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(cuts) > 2 {
		t.Errorf("%d false cuts on stationary noise", len(cuts))
	}
}

func TestCutsValidation(t *testing.T) {
	frames := make([]float64, 100)
	cfg := DefaultConfig()
	cfg.Window = 1
	if _, err := Cuts(frames, cfg); err == nil {
		t.Error("tiny window should fail")
	}
	cfg = DefaultConfig()
	cfg.Window = 50
	if _, err := Cuts(frames, cfg); err == nil {
		t.Error("window too large for series should fail")
	}
	cfg = DefaultConfig()
	cfg.Thresh = 0
	if _, err := Cuts(frames, cfg); err == nil {
		t.Error("zero threshold should fail")
	}
	cfg = DefaultConfig()
	cfg.MinScene = 0
	if _, err := Cuts(frames, cfg); err == nil {
		t.Error("zero min scene should fail")
	}
}

func TestDetectSceneStatistics(t *testing.T) {
	frames, _ := stepSeries([]float64{100, 200}, 300, 4, 5)
	scenes, err := Detect(frames, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(scenes) != 2 {
		t.Fatalf("detected %d scenes, want 2", len(scenes))
	}
	// Coverage: scenes tile the series.
	pos := 0
	for _, sc := range scenes {
		if sc.Start != pos {
			t.Fatalf("gap at %d", pos)
		}
		pos += sc.Length
	}
	if pos != len(frames) {
		t.Fatalf("scenes cover %d of %d", pos, len(frames))
	}
	if math.Abs(scenes[0].Mean-100) > 3 || math.Abs(scenes[1].Mean-200) > 3 {
		t.Errorf("scene means %v, %v", scenes[0].Mean, scenes[1].Mean)
	}
	if scenes[0].Std > 8 {
		t.Errorf("scene std %v, want ≈ 4", scenes[0].Std)
	}
}

func TestMatchStats(t *testing.T) {
	p, r := MatchStats([]int{100, 200, 305}, []int{100, 300}, 10)
	// 100 matches; 305 matches 300; 200 is a false positive.
	if math.Abs(p-2.0/3) > 1e-12 || math.Abs(r-1) > 1e-12 {
		t.Errorf("precision %v recall %v", p, r)
	}
	p, r = MatchStats(nil, nil, 10)
	if p != 1 || r != 1 {
		t.Error("empty/empty should be perfect")
	}
	p, r = MatchStats(nil, []int{5}, 10)
	if p != 1 || r != 0 {
		t.Errorf("miss case: %v %v", p, r)
	}
	p, r = MatchStats([]int{5}, nil, 10)
	if p != 0 || r != 1 {
		t.Errorf("false positive case: %v %v", p, r)
	}
	// A truth cut can only be matched once.
	p, _ = MatchStats([]int{100, 101}, []int{100}, 10)
	if math.Abs(p-0.5) > 1e-12 {
		t.Errorf("double match not prevented: %v", p)
	}
}

func TestDetectOnSyntheticMovie(t *testing.T) {
	// End-to-end against the generator's ground truth: the synthetic
	// movie has known scene boundaries; the detector should recover a
	// solid fraction of the larger cuts without drowning in false
	// positives. (Small adjacent-level cuts are genuinely undetectable —
	// two scenes at nearly equal complexity produce no level shift.)
	cfg := synth.DefaultConfig()
	cfg.Frames = 20000
	cfg.SlicesPerFrame = 0
	cfg.MeanSceneFrames = 240
	// Dialogue scenes alternate camera shots every few seconds — real
	// level shifts the detector rightly reports but the ground-truth cut
	// list does not contain; exclude them from the precision evaluation.
	cfg.DialogueProb = 0
	z, truth, err := synth.ActivityProcess(cfg)
	if err != nil {
		t.Fatal(err)
	}
	frames, err := synth.MarginalMap(z, cfg)
	if err != nil {
		t.Fatal(err)
	}
	var truthCuts []int
	for _, sc := range truth[1:] {
		truthCuts = append(truthCuts, sc.Start)
	}
	dcfg := DefaultConfig()
	cuts, err := Cuts(frames, dcfg)
	if err != nil {
		t.Fatal(err)
	}
	p, r := MatchStats(cuts, truthCuts, dcfg.Window)
	if p < 0.7 {
		t.Errorf("precision %v too low (%d detected, %d true)", p, len(cuts), len(truthCuts))
	}
	if r < 0.2 {
		t.Errorf("recall %v too low (%d detected, %d true)", r, len(cuts), len(truthCuts))
	}
}

func TestFitLevelModel(t *testing.T) {
	frames, _ := stepSeries([]float64{100, 200, 150, 250, 120}, 240, 5, 9)
	scenes, err := Detect(frames, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	m, err := FitLevelModel(scenes)
	if err != nil {
		t.Fatal(err)
	}
	if m.NumScenes != len(scenes) {
		t.Errorf("scene count %d", m.NumScenes)
	}
	if math.Abs(m.MeanDuration-float64(len(frames))/float64(len(scenes))) > 1 {
		t.Errorf("mean duration %v", m.MeanDuration)
	}
	if m.LevelStd < 30 {
		t.Errorf("level std %v should reflect 100..250 spread", m.LevelStd)
	}
	if m.WithinStdMean > 10 {
		t.Errorf("within-scene std %v, want ≈ 5", m.WithinStdMean)
	}
	if _, err := FitLevelModel(nil); err == nil {
		t.Error("empty scenes should fail")
	}
}
