// Package scenes implements scene-change detection and scene-level
// modeling on VBR bandwidth traces — the open question §4.2 of the paper
// flags explicitly: "It is also common for the camera to switch between
// two scenes ... We have not attempted to explicitly model such
// scene-dependent structure, and it remains an open question whether
// this is necessary, and if so, how to measure and represent the
// scenes."
//
// Because an intraframe coder's output level tracks scene complexity,
// scene cuts appear as level shifts of the frame-size series. The
// detector is a two-sided sliding-window mean-shift test: the statistic
// d(t) = |mean[t, t+w) − mean[t−w, t)| is compared against the series'
// own median window difference, so the threshold self-calibrates to the
// within-scene noise — including its serial correlation, which would
// badly miscalibrate a nominal-σ threshold (within-scene video noise is
// strongly AR-correlated). A cut is declared at local maxima exceeding
// Thresh medians, at least MinScene frames apart.
package scenes

import (
	"fmt"
	"math"
	"sort"
)

// Config parameterizes the detector.
type Config struct {
	// Window is the half-window w in frames (default 72, three seconds:
	// longer windows average away the serially-correlated within-scene
	// noise that dominates short-window differences).
	Window int
	// Thresh is the detection threshold as a multiple of the series'
	// median adjacent-window mean difference (default 5).
	Thresh float64
	// MinScene is the minimum accepted scene length in frames
	// (default 36, a second and a half).
	MinScene int
}

// DefaultConfig returns the detector defaults, tuned on the synthetic
// movie's ground truth for high precision (≈0.85) at the recall the data
// supports (≈0.2–0.3 — cuts between scenes of similar complexity produce
// no level shift and are undetectable from the bandwidth series alone,
// which is presumably why the paper left scene modeling open).
func DefaultConfig() Config {
	return Config{Window: 72, Thresh: 5, MinScene: 36}
}

func (c *Config) validate(n int) error {
	if c.Window < 2 {
		return fmt.Errorf("scenes: window must be ≥ 2, got %d", c.Window)
	}
	if 2*c.Window >= n {
		return fmt.Errorf("scenes: series of %d too short for window %d", n, c.Window)
	}
	if !(c.Thresh > 0) {
		return fmt.Errorf("scenes: threshold must be positive, got %v", c.Thresh)
	}
	if c.MinScene < 1 {
		return fmt.Errorf("scenes: min scene must be ≥ 1, got %d", c.MinScene)
	}
	return nil
}

// Scene is one detected segment with its level statistics.
type Scene struct {
	Start, Length int
	Mean, Std     float64
}

// Detect segments the frame-size series into scenes and returns the
// scenes in order. The first scene starts at 0; scene boundaries are the
// detected cuts.
func Detect(frames []float64, cfg Config) ([]Scene, error) {
	cuts, err := Cuts(frames, cfg)
	if err != nil {
		return nil, err
	}
	bounds := append([]int{0}, cuts...)
	bounds = append(bounds, len(frames))
	scenes := make([]Scene, 0, len(bounds)-1)
	for i := 0; i+1 < len(bounds); i++ {
		lo, hi := bounds[i], bounds[i+1]
		var mean float64
		for _, v := range frames[lo:hi] {
			mean += v
		}
		mean /= float64(hi - lo)
		var ss float64
		for _, v := range frames[lo:hi] {
			ss += (v - mean) * (v - mean)
		}
		scenes = append(scenes, Scene{
			Start:  lo,
			Length: hi - lo,
			Mean:   mean,
			Std:    math.Sqrt(ss / float64(hi-lo)),
		})
	}
	return scenes, nil
}

// Cuts returns the detected cut positions (each the first frame of a new
// scene), in increasing order.
func Cuts(frames []float64, cfg Config) ([]int, error) {
	n := len(frames)
	if err := cfg.validate(n); err != nil {
		return nil, err
	}
	w := cfg.Window

	// Prefix sums for O(1) window means.
	sum := make([]float64, n+1)
	for i, v := range frames {
		sum[i+1] = sum[i] + v
	}
	winMean := func(lo, hi int) float64 { return (sum[hi] - sum[lo]) / float64(hi-lo) }

	// Detection statistic d(t) = |mean_right − mean_left|, and its median
	// over the series as the self-calibrating noise scale.
	stat := make([]float64, n)
	valid := make([]float64, 0, n)
	for t := w; t+w <= n; t++ {
		stat[t] = math.Abs(winMean(t, t+w) - winMean(t-w, t))
		valid = append(valid, stat[t])
	}
	sort.Float64s(valid)
	noise := valid[len(valid)/2]
	//vbrlint:ignore floateq exact-zero guard: the median deviation is zero only for piecewise-constant input
	if noise == 0 {
		// Piecewise-exactly-constant input: any nonzero difference is a
		// cut; use the smallest positive difference as the scale.
		for _, v := range valid {
			if v > 0 {
				noise = v / cfg.Thresh
				break
			}
		}
		//vbrlint:ignore floateq exact-zero guard: a zero fallback scale means a literally constant series
		if noise == 0 {
			return nil, nil // constant series: no cuts
		}
	}

	// Local maxima above threshold. A single cut produces a statistic
	// plateau ≈ 2w wide, so maxima are suppressed over ±w and accepted
	// cuts must be at least max(MinScene, w) apart — cuts closer than
	// the window are not separately resolvable at this w anyway.
	minGap := cfg.MinScene
	if w > minGap {
		minGap = w
	}
	var cuts []int
	last := -minGap
	for t := w; t+w <= n; t++ {
		if stat[t] < cfg.Thresh*noise {
			continue
		}
		isMax := true
		for dt := -w; dt <= w; dt++ {
			if t+dt >= 0 && t+dt < n && stat[t+dt] > stat[t] {
				isMax = false
				break
			}
		}
		if !isMax || t-last < minGap {
			continue
		}
		cuts = append(cuts, t)
		last = t
	}
	return cuts, nil
}

// MatchStats compares detected cuts with ground-truth cuts within a
// tolerance (frames), returning precision and recall — the evaluation a
// scene-modeling study needs.
func MatchStats(detected, truth []int, tol int) (precision, recall float64) {
	if len(detected) == 0 && len(truth) == 0 {
		return 1, 1
	}
	matchedTruth := make([]bool, len(truth))
	tp := 0
	for _, d := range detected {
		for j, g := range truth {
			if !matchedTruth[j] && abs(d-g) <= tol {
				matchedTruth[j] = true
				tp++
				break
			}
		}
	}
	if len(detected) > 0 {
		precision = float64(tp) / float64(len(detected))
	} else {
		precision = 1
	}
	if len(truth) > 0 {
		recall = float64(tp) / float64(len(truth))
	} else {
		recall = 1
	}
	return precision, recall
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}

// LevelModel summarizes the scene-level representation §4.2 asks about:
// the distribution of scene durations and of scene levels, sufficient to
// re-synthesize scene-structured traffic.
type LevelModel struct {
	NumScenes      int
	MeanDuration   float64
	LogDurationStd float64 // lognormal shape of durations
	LevelMean      float64
	LevelStd       float64 // across-scene level variability
	WithinStdMean  float64 // average within-scene std
}

// FitLevelModel measures the scene-level representation from detected
// scenes.
func FitLevelModel(scenes []Scene) (*LevelModel, error) {
	if len(scenes) == 0 {
		return nil, fmt.Errorf("scenes: no scenes to fit")
	}
	m := &LevelModel{NumScenes: len(scenes)}
	var sumDur, sumLog, sumLog2, sumLvl, sumLvl2, sumWithin float64
	for _, sc := range scenes {
		d := float64(sc.Length)
		sumDur += d
		l := math.Log(d)
		sumLog += l
		sumLog2 += l * l
		sumLvl += sc.Mean
		sumLvl2 += sc.Mean * sc.Mean
		sumWithin += sc.Std
	}
	n := float64(len(scenes))
	m.MeanDuration = sumDur / n
	m.LogDurationStd = math.Sqrt(math.Max(0, sumLog2/n-(sumLog/n)*(sumLog/n)))
	m.LevelMean = sumLvl / n
	m.LevelStd = math.Sqrt(math.Max(0, sumLvl2/n-(sumLvl/n)*(sumLvl/n)))
	m.WithinStdMean = sumWithin / n
	return m, nil
}
