// Package specfn implements the special functions needed by the
// distribution and estimation code: the gamma function and its logarithm,
// the regularized incomplete gamma functions P and Q with their inverse,
// the error function pair, and the inverse of the standard normal CDF.
//
// Everything is implemented from scratch on top of package math so that the
// module has no dependencies outside the Go standard library. Accuracy is
// roughly 1e-10 relative over the ranges exercised by the VBR video model,
// which is far below the statistical noise of any experiment in the paper.
package specfn

import "math"

// Gamma returns the gamma function Γ(x). It delegates to math.Gamma, which
// implements the Lanczos approximation; it exists so callers inside this
// module depend only on specfn.
func Gamma(x float64) float64 { return math.Gamma(x) }

// LnGamma returns ln|Γ(x)|. The sign is discarded because every caller in
// this module uses x > 0.
func LnGamma(x float64) float64 {
	v, _ := math.Lgamma(x)
	return v
}

const (
	gammaEps    = 1e-14
	gammaItMax  = 500
	gammaFPBig  = 1e300
	gammaFPTiny = 1e-300
)

// GammaP returns the regularized lower incomplete gamma function
// P(a, x) = γ(a, x) / Γ(a) for a > 0, x ≥ 0.
func GammaP(a, x float64) float64 {
	switch {
	case a <= 0 || math.IsNaN(a) || math.IsNaN(x):
		return math.NaN()
	case x <= 0:
		return 0
	case x < a+1:
		return gammaSeriesP(a, x)
	default:
		return 1 - gammaContFracQ(a, x)
	}
}

// GammaQ returns the regularized upper incomplete gamma function
// Q(a, x) = 1 - P(a, x).
func GammaQ(a, x float64) float64 {
	switch {
	case a <= 0 || math.IsNaN(a) || math.IsNaN(x):
		return math.NaN()
	case x <= 0:
		return 1
	case x < a+1:
		return 1 - gammaSeriesP(a, x)
	default:
		return gammaContFracQ(a, x)
	}
}

// gammaSeriesP evaluates P(a,x) by the power series, accurate for x < a+1.
func gammaSeriesP(a, x float64) float64 {
	ap := a
	sum := 1 / a
	del := sum
	for i := 0; i < gammaItMax; i++ {
		ap++
		del *= x / ap
		sum += del
		if math.Abs(del) < math.Abs(sum)*gammaEps {
			break
		}
	}
	return sum * math.Exp(-x+a*math.Log(x)-LnGamma(a))
}

// gammaContFracQ evaluates Q(a,x) by the modified Lentz continued fraction,
// accurate for x ≥ a+1.
func gammaContFracQ(a, x float64) float64 {
	b := x + 1 - a
	c := gammaFPBig
	d := 1 / b
	h := d
	for i := 1; i <= gammaItMax; i++ {
		an := -float64(i) * (float64(i) - a)
		b += 2
		d = an*d + b
		if math.Abs(d) < gammaFPTiny {
			d = gammaFPTiny
		}
		c = b + an/c
		if math.Abs(c) < gammaFPTiny {
			c = gammaFPTiny
		}
		d = 1 / d
		del := d * c
		h *= del
		if math.Abs(del-1) < gammaEps {
			break
		}
	}
	return h * math.Exp(-x+a*math.Log(x)-LnGamma(a))
}

// GammaPInv returns x such that P(a, x) = p, for a > 0 and p in [0, 1).
// It uses the initial guess of Abramowitz & Stegun 26.2.22/26.4.17 followed
// by Halley iterations on P, as in Numerical Recipes §6.2.1.
func GammaPInv(a, p float64) float64 {
	if a <= 0 || p < 0 || p >= 1 || math.IsNaN(a) || math.IsNaN(p) {
		//vbrlint:ignore floateq p is compared against the exact unit-interval boundary, a representable constant
		if p == 1 {
			return math.Inf(1)
		}
		return math.NaN()
	}
	//vbrlint:ignore floateq p is compared against the exact unit-interval boundary, a representable constant
	if p == 0 {
		return 0
	}

	gln := LnGamma(a)
	a1 := a - 1
	var lna1, afac float64
	if a > 1 {
		lna1 = math.Log(a1)
		afac = math.Exp(a1*(lna1-1) - gln)
	}

	var x float64
	if a > 1 {
		// Initial guess via the Wilson–Hilferty transformation.
		pp := p
		if p >= 0.5 {
			pp = 1 - p
		}
		t := math.Sqrt(-2 * math.Log(pp))
		x = (2.30753 + t*0.27061) / (1 + t*(0.99229+t*0.04481))
		x = t - x
		if p < 0.5 {
			x = -x
		}
		x = math.Max(1e-3, a*math.Pow(1-1/(9*a)-x/(3*math.Sqrt(a)), 3))
	} else {
		t := 1 - a*(0.253+a*0.12)
		if p < t {
			x = math.Pow(p/t, 1/a)
		} else {
			x = 1 - math.Log(1-(p-t)/(1-t))
		}
	}

	for j := 0; j < 32; j++ {
		if x <= 0 {
			return 0
		}
		err := GammaP(a, x) - p
		var t float64
		if a > 1 {
			t = afac * math.Exp(-(x-a1)+a1*(math.Log(x)-lna1))
		} else {
			t = math.Exp(-x + a1*math.Log(x) - gln)
		}
		u := err / t
		// Halley step.
		t = u / (1 - 0.5*math.Min(1, u*(a1/x-1)))
		x -= t
		if x <= 0 {
			x = 0.5 * (x + t)
		}
		if math.Abs(t) < gammaEps*x {
			break
		}
	}
	return x
}

// Erf returns the error function erf(x); Erfc its complement. Delegation
// keeps specfn the single in-module authority for special functions.
func Erf(x float64) float64  { return math.Erf(x) }
func Erfc(x float64) float64 { return math.Erfc(x) }

// NormCDF returns Φ(x), the standard normal cumulative distribution
// function, computed from erfc for full accuracy in both tails.
func NormCDF(x float64) float64 {
	return 0.5 * math.Erfc(-x/math.Sqrt2)
}

// NormPDF returns φ(x), the standard normal density.
func NormPDF(x float64) float64 {
	return math.Exp(-0.5*x*x) / math.Sqrt(2*math.Pi)
}

// NormCDFInv returns Φ⁻¹(p) for p in (0, 1) using the rational
// approximation of Peter Acklam refined with one Halley step, giving
// roughly full double precision everywhere.
func NormCDFInv(p float64) float64 {
	if math.IsNaN(p) || p <= 0 || p >= 1 {
		switch {
		//vbrlint:ignore floateq p is compared against the exact unit-interval boundary, a representable constant
		case p == 0:
			return math.Inf(-1)
		//vbrlint:ignore floateq p is compared against the exact unit-interval boundary, a representable constant
		case p == 1:
			return math.Inf(1)
		}
		return math.NaN()
	}

	// Coefficients for the central and tail rational approximations.
	a := [6]float64{
		-3.969683028665376e+01, 2.209460984245205e+02,
		-2.759285104469687e+02, 1.383577518672690e+02,
		-3.066479806614716e+01, 2.506628277459239e+00,
	}
	b := [5]float64{
		-5.447609879822406e+01, 1.615858368580409e+02,
		-1.556989798598866e+02, 6.680131188771972e+01,
		-1.328068155288572e+01,
	}
	c := [6]float64{
		-7.784894002430293e-03, -3.223964580411365e-01,
		-2.400758277161838e+00, -2.549732539343734e+00,
		4.374664141464968e+00, 2.938163982698783e+00,
	}
	d := [4]float64{
		7.784695709041462e-03, 3.224671290700398e-01,
		2.445134137142996e+00, 3.754408661907416e+00,
	}

	const pLow = 0.02425
	var x float64
	switch {
	case p < pLow:
		q := math.Sqrt(-2 * math.Log(p))
		x = (((((c[0]*q+c[1])*q+c[2])*q+c[3])*q+c[4])*q + c[5]) /
			((((d[0]*q+d[1])*q+d[2])*q+d[3])*q + 1)
	case p <= 1-pLow:
		q := p - 0.5
		r := q * q
		x = (((((a[0]*r+a[1])*r+a[2])*r+a[3])*r+a[4])*r + a[5]) * q /
			(((((b[0]*r+b[1])*r+b[2])*r+b[3])*r+b[4])*r + 1)
	default:
		q := math.Sqrt(-2 * math.Log(1-p))
		x = -(((((c[0]*q+c[1])*q+c[2])*q+c[3])*q+c[4])*q + c[5]) /
			((((d[0]*q+d[1])*q+d[2])*q+d[3])*q + 1)
	}

	// One Halley refinement step.
	e := NormCDF(x) - p
	u := e * math.Sqrt(2*math.Pi) * math.Exp(x*x/2)
	x -= u / (1 + x*u/2)
	return x
}

// Digamma returns ψ(x) = d/dx ln Γ(x) for x > 0, by upward recurrence into
// the asymptotic series. Used by the Whittle estimator's information term
// and by maximum-likelihood Gamma fitting.
func Digamma(x float64) float64 {
	if math.IsNaN(x) || x <= 0 {
		return math.NaN()
	}
	var result float64
	for x < 6 {
		result -= 1 / x
		x++
	}
	inv := 1 / x
	inv2 := inv * inv
	// Asymptotic expansion: ln x - 1/2x - Σ B_{2n}/(2n x^{2n}).
	result += math.Log(x) - 0.5*inv
	result -= inv2 * (1.0/12 - inv2*(1.0/120-inv2*(1.0/252-inv2*(1.0/240-inv2/132*0.5))))
	return result
}
