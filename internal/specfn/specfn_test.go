package specfn

import (
	"math"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, tol float64) bool {
	if math.IsInf(a, 0) || math.IsInf(b, 0) {
		return a == b
	}
	diff := math.Abs(a - b)
	if diff <= tol {
		return true
	}
	return diff <= tol*math.Max(math.Abs(a), math.Abs(b))
}

func TestGammaKnownValues(t *testing.T) {
	cases := []struct{ x, want float64 }{
		{1, 1},
		{2, 1},
		{3, 2},
		{4, 6},
		{5, 24},
		{0.5, math.Sqrt(math.Pi)},
		{1.5, 0.5 * math.Sqrt(math.Pi)},
	}
	for _, c := range cases {
		if got := Gamma(c.x); !almostEqual(got, c.want, 1e-12) {
			t.Errorf("Gamma(%v) = %v, want %v", c.x, got, c.want)
		}
	}
}

func TestLnGammaMatchesGamma(t *testing.T) {
	for x := 0.1; x < 30; x += 0.37 {
		want := math.Log(Gamma(x))
		if x > 20 {
			// Gamma overflows precision sooner than Lgamma.
			want = math.Log(math.Gamma(x))
		}
		if got := LnGamma(x); !almostEqual(got, want, 1e-10) {
			t.Errorf("LnGamma(%v) = %v, want %v", x, got, want)
		}
	}
}

func TestGammaPBoundaries(t *testing.T) {
	if got := GammaP(2.5, 0); got != 0 {
		t.Errorf("GammaP(2.5, 0) = %v, want 0", got)
	}
	if got := GammaP(2.5, 1e10); !almostEqual(got, 1, 1e-12) {
		t.Errorf("GammaP(2.5, 1e10) = %v, want 1", got)
	}
	if !math.IsNaN(GammaP(-1, 1)) {
		t.Error("GammaP with a <= 0 should be NaN")
	}
}

func TestGammaPKnownValues(t *testing.T) {
	// P(1, x) = 1 - e^{-x} (exponential distribution CDF).
	for _, x := range []float64{0.1, 0.5, 1, 2, 5, 10} {
		want := 1 - math.Exp(-x)
		if got := GammaP(1, x); !almostEqual(got, want, 1e-12) {
			t.Errorf("GammaP(1, %v) = %v, want %v", x, got, want)
		}
	}
	// P(1/2, x) = erf(sqrt(x)).
	for _, x := range []float64{0.1, 0.5, 1, 2, 5} {
		want := math.Erf(math.Sqrt(x))
		if got := GammaP(0.5, x); !almostEqual(got, want, 1e-12) {
			t.Errorf("GammaP(0.5, %v) = %v, want %v", x, got, want)
		}
	}
	// P(n, x) for integer n equals the Poisson tail identity:
	// P(3, x) = 1 - e^{-x}(1 + x + x²/2).
	for _, x := range []float64{0.5, 1, 3, 7} {
		want := 1 - math.Exp(-x)*(1+x+x*x/2)
		if got := GammaP(3, x); !almostEqual(got, want, 1e-12) {
			t.Errorf("GammaP(3, %v) = %v, want %v", x, got, want)
		}
	}
}

func TestGammaPQComplementary(t *testing.T) {
	for a := 0.2; a < 50; a *= 1.7 {
		for x := 0.01; x < 100; x *= 2.1 {
			p, q := GammaP(a, x), GammaQ(a, x)
			if !almostEqual(p+q, 1, 1e-10) {
				t.Errorf("P+Q != 1 at a=%v x=%v: %v", a, x, p+q)
			}
		}
	}
}

func TestGammaPMonotone(t *testing.T) {
	for _, a := range []float64{0.3, 1, 2.5, 10, 40} {
		prev := -1.0
		for x := 0.0; x < 200; x += 0.5 {
			p := GammaP(a, x)
			if p < prev-1e-14 {
				t.Fatalf("GammaP(%v, ·) not monotone at x=%v: %v < %v", a, x, p, prev)
			}
			prev = p
		}
	}
}

func TestGammaPInvRoundTrip(t *testing.T) {
	for _, a := range []float64{0.3, 0.9, 1, 2.5, 10, 19.7, 100} {
		for _, p := range []float64{1e-8, 1e-4, 0.01, 0.1, 0.5, 0.9, 0.99, 0.9999, 1 - 1e-9} {
			x := GammaPInv(a, p)
			got := GammaP(a, x)
			if !almostEqual(got, p, 1e-8) {
				t.Errorf("GammaP(%v, GammaPInv(%v, %v)=%v) = %v", a, a, p, x, got)
			}
		}
	}
}

func TestGammaPInvEdges(t *testing.T) {
	if got := GammaPInv(2, 0); got != 0 {
		t.Errorf("GammaPInv(2, 0) = %v, want 0", got)
	}
	if got := GammaPInv(2, 1); !math.IsInf(got, 1) {
		t.Errorf("GammaPInv(2, 1) = %v, want +Inf", got)
	}
	if !math.IsNaN(GammaPInv(-1, 0.5)) {
		t.Error("GammaPInv with a <= 0 should be NaN")
	}
	if !math.IsNaN(GammaPInv(2, -0.1)) {
		t.Error("GammaPInv with p < 0 should be NaN")
	}
}

func TestNormCDFKnownValues(t *testing.T) {
	cases := []struct{ x, want float64 }{
		{0, 0.5},
		{1.959963984540054, 0.975},
		{-1.959963984540054, 0.025},
		{1, 0.8413447460685429},
		{-3, 0.0013498980316300933},
	}
	for _, c := range cases {
		if got := NormCDF(c.x); !almostEqual(got, c.want, 1e-10) {
			t.Errorf("NormCDF(%v) = %v, want %v", c.x, got, c.want)
		}
	}
}

func TestNormCDFInvRoundTrip(t *testing.T) {
	for _, p := range []float64{1e-12, 1e-6, 0.001, 0.025, 0.2, 0.5, 0.8, 0.975, 0.999, 1 - 1e-10} {
		x := NormCDFInv(p)
		if got := NormCDF(x); !almostEqual(got, p, 1e-9) {
			t.Errorf("NormCDF(NormCDFInv(%v)=%v) = %v", p, x, got)
		}
	}
}

func TestNormCDFInvProperty(t *testing.T) {
	f := func(u float64) bool {
		p := math.Abs(math.Mod(u, 1))
		if p == 0 || p == 1 || math.IsNaN(p) {
			return true
		}
		x := NormCDFInv(p)
		// Symmetry: Φ⁻¹(1-p) = -Φ⁻¹(p).
		y := NormCDFInv(1 - p)
		return almostEqual(x, -y, 1e-7) && almostEqual(NormCDF(x), p, 1e-8)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestNormCDFInvEdges(t *testing.T) {
	if !math.IsInf(NormCDFInv(0), -1) {
		t.Error("NormCDFInv(0) should be -Inf")
	}
	if !math.IsInf(NormCDFInv(1), 1) {
		t.Error("NormCDFInv(1) should be +Inf")
	}
	if !math.IsNaN(NormCDFInv(-0.5)) || !math.IsNaN(NormCDFInv(1.5)) {
		t.Error("NormCDFInv outside [0,1] should be NaN")
	}
}

func TestNormPDFIntegratesToOne(t *testing.T) {
	// Trapezoid over [-10, 10].
	const n = 200000
	h := 20.0 / n
	sum := 0.5 * (NormPDF(-10) + NormPDF(10))
	for i := 1; i < n; i++ {
		sum += NormPDF(-10 + float64(i)*h)
	}
	sum *= h
	if !almostEqual(sum, 1, 1e-8) {
		t.Errorf("∫φ = %v, want 1", sum)
	}
}

func TestDigammaKnownValues(t *testing.T) {
	const eulerGamma = 0.5772156649015329
	cases := []struct{ x, want float64 }{
		{1, -eulerGamma},
		{2, 1 - eulerGamma},
		{3, 1.5 - eulerGamma},
		{0.5, -eulerGamma - 2*math.Ln2},
	}
	for _, c := range cases {
		if got := Digamma(c.x); !almostEqual(got, c.want, 1e-9) {
			t.Errorf("Digamma(%v) = %v, want %v", c.x, got, c.want)
		}
	}
}

func TestDigammaRecurrence(t *testing.T) {
	// ψ(x+1) = ψ(x) + 1/x.
	for x := 0.1; x < 20; x += 0.31 {
		lhs := Digamma(x + 1)
		rhs := Digamma(x) + 1/x
		if !almostEqual(lhs, rhs, 1e-9) {
			t.Errorf("recurrence fails at x=%v: %v vs %v", x, lhs, rhs)
		}
	}
}

func TestErfDelegation(t *testing.T) {
	for x := -3.0; x <= 3; x += 0.5 {
		if Erf(x) != math.Erf(x) || Erfc(x) != math.Erfc(x) {
			t.Fatalf("Erf/Erfc delegation mismatch at %v", x)
		}
	}
}
