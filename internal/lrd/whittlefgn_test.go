package lrd

import (
	"math"
	"math/rand/v2"
	"testing"

	"vbr/internal/fgn"
)

func TestFGNSpectrumShape(t *testing.T) {
	// Near the origin f(λ) ~ λ^{1-2H}: check the log-log slope between
	// two small frequencies.
	for _, h := range []float64{0.6, 0.8, 0.9} {
		l1, l2 := 0.001, 0.002
		slope := (math.Log(fgnSpectrum(l2, h)) - math.Log(fgnSpectrum(l1, h))) / (math.Log(l2) - math.Log(l1))
		want := 1 - 2*h
		if math.Abs(slope-want) > 0.02 {
			t.Errorf("H=%v: origin slope %v, want %v", h, slope, want)
		}
	}
	// H = 0.5 must be flat (white noise): the spectrum ratio between two
	// frequencies is ≈ 1... for FGN H=0.5 f is exactly constant.
	r := fgnSpectrum(0.3, 0.5) / fgnSpectrum(2.5, 0.5)
	if math.Abs(r-1) > 0.01 {
		t.Errorf("H=0.5 spectrum not flat: ratio %v", r)
	}
	// Positive everywhere.
	for lam := 0.01; lam <= math.Pi; lam += 0.1 {
		if fgnSpectrum(lam, 0.8) <= 0 {
			t.Fatalf("nonpositive spectrum at %v", lam)
		}
	}
}

func TestWhittleFGNRecoversH(t *testing.T) {
	// On FGN input (its own model) the estimator should be tight and the
	// CI should cover the truth.
	for _, h := range []float64{0.6, 0.8} {
		rng := rand.New(rand.NewPCG(uint64(h*100), 5))
		xs, err := fgn.DaviesHarte(20000, h, rng)
		if err != nil {
			t.Fatal(err)
		}
		res, err := WhittleFGN(xs)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(res.H-h) > 3*res.StdErr+0.02 {
			t.Errorf("true H=%v: estimate %v ± %v", h, res.H, res.StdErr)
		}
	}
}

func TestWhittleFGNvsFarimaAgreeOnSelfSimilarInput(t *testing.T) {
	rng := rand.New(rand.NewPCG(7, 8))
	xs, err := fgn.DaviesHarte(20000, 0.8, rng)
	if err != nil {
		t.Fatal(err)
	}
	a, err := Whittle(xs)
	if err != nil {
		t.Fatal(err)
	}
	b, err := WhittleFGN(xs)
	if err != nil {
		t.Fatal(err)
	}
	// Both models share the λ^{1-2H} origin behaviour, so both estimates
	// land near the truth; but full-band Whittle sees the whole spectrum
	// and the fARIMA model absorbs FGN's high-frequency shape into d, so
	// on FGN data the FGN model must be at least as accurate — the
	// specification-check property this ablation exists to expose.
	if math.Abs(b.H-0.8) > 0.03 {
		t.Errorf("FGN-model estimate %v not tight on its own data", b.H)
	}
	if math.Abs(a.H-0.8) > 0.09 {
		t.Errorf("fARIMA-model estimate %v too far off", a.H)
	}
	if math.Abs(b.H-0.8) > math.Abs(a.H-0.8) {
		t.Errorf("FGN model (%v) less accurate than fARIMA (%v) on FGN data", b.H, a.H)
	}
}

func TestWhittleFGNErrors(t *testing.T) {
	if _, err := WhittleFGN(make([]float64, 16)); err == nil {
		t.Error("short series should fail")
	}
}

func TestWhittleFGNWhiteNoise(t *testing.T) {
	rng := rand.New(rand.NewPCG(11, 12))
	xs := make([]float64, 20000)
	for i := range xs {
		xs[i] = rng.NormFloat64()
	}
	res, err := WhittleFGN(xs)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.H-0.5) > 3*res.StdErr+0.02 {
		t.Errorf("white noise H = %v ± %v", res.H, res.StdErr)
	}
}
