package lrd

import (
	"fmt"
	"math"

	"vbr/internal/errs"
)

// This file implements the Modified Allan Variance (MAVAR) Hurst
// estimator of Bregni & Primerano (arxiv cs/0510006), the repository's
// fifth Ĥ estimator. The traffic rate series y_i (bytes per frame) is
// integrated into "phase" data x_i = Σ_{k≤i} y_k — the byte count —
// and the modified Allan variance at observation interval τ = n·τ0 is
// the averaged squared second difference of n-averaged phase:
//
//	Mod σ²_y(n) = ⟨ ( x̄_{j+2n} − 2 x̄_{j+n} + x̄_j )² ⟩ / (2 τ²),
//	x̄_j = (1/n) Σ_{i=j}^{j+n−1} x_i.
//
// For a rate process with the power-law spectrum S(f) ~ f^{1−2H} of
// long-range dependence, Mod σ²_y(τ) ~ τ^μ with μ = 2H − 2, so H is
// read off a log–log regression over octave-spaced τ — the same slope
// convention as the variance–time plot, but with second differencing
// (robust to level shifts and linear trends) and strictly better
// convergence per the paper.
//
// The implementation is the *decimated* form: instead of averaging
// windows at every phase offset j (which needs an O(τ) sliding buffer
// per octave), windows advance with stride τ/4 — each octave keeps the
// phase sum of the sub-block being filled plus a fixed 12-slot ring of
// completed sub-block sums, an O(1)-memory accumulator. Stationarity of
// the increments makes the strided average an unbiased estimate of the
// same modified Allan variance; the 75%-overlapped windows keep most of
// the fully-overlapped estimator's averaging, and the calibration
// battery (calibration_table.go) quantifies what variance remains. That
// bounded accumulator is what makes the streaming OnlineMAVAR form
// possible; the batch MAVAR entry point simply feeds the whole series
// through the same accumulators, so batch and online results are
// bitwise identical by construction.

const (
	// maxMavarOctaves bounds the per-snapshot regression scratch: octave
	// τ = 2^39 would need a 1.6-trillion-frame stream, so fixed arrays of
	// this size always suffice and keep Estimate allocation-free.
	maxMavarOctaves = 40
	// minMavarWindows is the minimum number of second-difference windows
	// an octave must hold before its variance enters the fit; below that
	// the χ²-noisy point would destabilize the regression.
	minMavarWindows = 8
	// defaultMavarFitLo is the default smallest fitted τ. τ = 1 is
	// excluded because the MAVAR transfer constant has not settled there
	// (the phase-averaging window is a single sample, making the point an
	// AVAR value, not a MAVAR one). τ ≥ 2 stays in the fit: the small
	// octaves carry a mild transition bias (≈ −0.02 Ĥ, corrected by the
	// committed calibration table) but thousands of windows, and that
	// averaging is what keeps MAVAR's sample std below variance–time's
	// even on 4k-frame series — see calibration_table.go.
	defaultMavarFitLo = 2
)

// mavarSubs is the number of sub-blocks per averaging window: windows
// advance with stride τ/mavarSubs, so each completed sub-block yields
// one second-difference window once the ring holds 3·mavarSubs sums.
const mavarSubs = 4

// mavarLevel is one octave's decimating accumulator: the phase sum of
// the sub-block being filled, a fixed ring of the last 3·f completed
// sub-block sums (f = min(τ, mavarSubs)), and the running
// second-difference statistics.
type mavarLevel struct {
	tau int
	sub int // sub-block length: max(1, τ/mavarSubs)
	f   int // sub-blocks per window block: τ/sub

	acc  float64 // phase sum of the current, partially filled sub-block
	fill int
	ring [3 * mavarSubs]float64 // last 3f completed sub-block sums
	head int                    // next ring write position (mod 3f)
	subs int64                  // completed sub-blocks

	sumSq float64 // Σ (B₂ − 2B₁ + B₀)² over strided windows
	count int64   // second-difference windows folded into sumSq
}

// mavarWindows returns how many second-difference windows the octave τ
// completes on a series of n observations.
func mavarWindows(n, tau int) int64 {
	sub := tau / mavarSubs
	if sub < 1 {
		sub = 1
	}
	w := int64(n/sub) - int64(3*(tau/sub)) + 1
	if w < 0 {
		return 0
	}
	return w
}

// modVar returns the level's modified Allan variance estimate
// Σ D² / (2 n⁴ τ0² M) with τ0 = 1 frame, and NaN before any window
// completed.
func (l *mavarLevel) modVar() float64 {
	if l.count == 0 {
		return math.NaN()
	}
	n := float64(l.tau)
	return l.sumSq / (2 * n * n * n * n * float64(l.count))
}

// OnlineMAVAR is the streaming MAVAR estimator: one decimating
// accumulator per octave τ = 1, 2, 4, …, maxTau, fed one observation at
// a time in O(1) memory and O(log maxTau) time per observation. Feeding
// it a series in any block partitioning yields bitwise-identical state,
// and the batch MAVAR function is defined as feeding the whole series.
type OnlineMAVAR struct {
	phase  float64
	n      int64
	levels []mavarLevel
}

// MaxMavarTau returns the largest octave-spaced observation interval τ
// worth tracking for a series of n frames: the level must be able to
// complete at least minMavarWindows second-difference windows.
func MaxMavarTau(n int) int {
	tau := 1
	for mavarWindows(n, 2*tau) >= minMavarWindows {
		tau *= 2
	}
	return tau
}

// NewOnlineMAVAR builds a streaming estimator with octaves
// 1, 2, 4, …, maxTau (rounded down to a power of two).
func NewOnlineMAVAR(maxTau int) *OnlineMAVAR {
	o := &OnlineMAVAR{}
	for tau := 1; tau <= maxTau && len(o.levels) < maxMavarOctaves; tau *= 2 {
		sub := tau / mavarSubs
		if sub < 1 {
			sub = 1
		}
		o.levels = append(o.levels, mavarLevel{tau: tau, sub: sub, f: tau / sub})
	}
	return o
}

// N reports how many observations have been folded in.
func (o *OnlineMAVAR) N() int64 { return o.n }

// MaxTau reports the largest tracked octave.
func (o *OnlineMAVAR) MaxTau() int { return o.levels[len(o.levels)-1].tau }

// Add folds one rate observation into every octave accumulator. It
// allocates nothing and runs in O(number of octaves).
//
//vbrlint:hotpath
func (o *OnlineMAVAR) Add(v float64) {
	o.phase += v
	o.n++
	for i := range o.levels {
		l := &o.levels[i]
		l.acc += o.phase
		l.fill++
		if l.fill < l.sub {
			continue
		}
		size := 3 * l.f
		l.ring[l.head] = l.acc
		l.head++
		if l.head == size {
			l.head = 0
		}
		l.subs++
		l.acc, l.fill = 0, 0
		if l.subs < int64(size) {
			continue
		}
		// The ring now holds the last 3f sub-block sums, oldest at the
		// next write position; the three window blocks B₀, B₁, B₂ are f
		// consecutive sub-blocks each.
		var b0, b1, b2 float64
		idx := l.head
		for j := 0; j < l.f; j++ {
			b0 += l.ring[idx]
			if idx++; idx == size {
				idx = 0
			}
		}
		for j := 0; j < l.f; j++ {
			b1 += l.ring[idx]
			if idx++; idx == size {
				idx = 0
			}
		}
		for j := 0; j < l.f; j++ {
			b2 += l.ring[idx]
			if idx++; idx == size {
				idx = 0
			}
		}
		d := b2 - 2*b1 + b0
		l.sumSq += d * d
		l.count++
	}
}

// Estimate returns the current Ĥ from the weighted log–log fit over the
// default τ range, plus the number of octave points behind it. It is
// allocation-free (fixed scratch; safe inside hot monitor probes) and
// returns (NaN, 0) until at least two octaves hold minMavarWindows
// windows.
//
//vbrlint:hotpath
func (o *OnlineMAVAR) Estimate() (h float64, octaves int) {
	mu, _, _, n := o.fit(defaultMavarFitLo, 0)
	if n < 2 {
		return math.NaN(), 0
	}
	return 1 + mu/2, n
}

// fit runs the weighted least-squares regression of log Mod σ²(τ)
// against log τ over octaves with τ ∈ [fitLo, fitHi] (fitHi ≤ 0 means
// unbounded) and at least minMavarWindows windows. Points are weighted
// by their window count — the variance of log Mod σ̂² scales as
// 2/count, so this is the usual inverse-variance weighting and keeps
// the sparse top octaves from dominating the noise budget. It reports
// the slope, the τ range actually used, and the point count; slope is
// NaN when fewer than two usable octaves exist.
func (o *OnlineMAVAR) fit(fitLo, fitHi int) (mu float64, usedLo, usedHi, n int) {
	var sw, sx, sy, sxx, sxy float64
	for i := range o.levels {
		l := &o.levels[i]
		if l.count < minMavarWindows || l.tau < fitLo || (fitHi > 0 && l.tau > fitHi) {
			continue
		}
		mv := l.modVar()
		if !(mv > 0) || math.IsInf(mv, 0) {
			continue
		}
		x := math.Log(float64(l.tau))
		y := math.Log(mv)
		w := float64(l.count)
		sw += w
		sx += w * x
		sy += w * y
		sxx += w * x * x
		sxy += w * x * y
		if n == 0 {
			usedLo = l.tau
		}
		usedHi = l.tau
		n++
	}
	den := sw*sxx - sx*sx
	//vbrlint:ignore floateq exact-zero guard: the weighted denominator vanishes only with < 2 distinct octaves
	if n < 2 || den == 0 {
		return math.NaN(), usedLo, usedHi, n
	}
	return (sw*sxy - sx*sy) / den, usedLo, usedHi, n
}

// MAVARPoint is one octave of the MAVAR plot: observation interval τ
// (in frames), the modified Allan variance, and the number of
// second-difference windows averaged into it.
type MAVARPoint struct {
	Tau     int
	ModVar  float64
	Windows int64
}

// MAVARResult carries the log–log plot points, the fitted τ range, and
// the estimate.
type MAVARResult struct {
	Points       []MAVARPoint
	FitLo, FitHi int     // τ range the regression actually used
	Octaves      int     // number of octave points in the fit
	Mu           float64 // fitted slope: Mod σ²(τ) ~ τ^μ
	H            float64 // H = 1 + μ/2
}

// Result snapshots the accumulated state into a MAVARResult, fitting
// over τ ∈ [fitLo, fitHi] (0, 0 selects the default range: τ ≥ 8,
// unbounded above). It fails with an error matching
// errs.ErrInvalidSeries while fewer than two octaves are usable.
func (o *OnlineMAVAR) Result(fitLo, fitHi int) (*MAVARResult, error) {
	if fitLo <= 0 {
		fitLo = defaultMavarFitLo
	}
	res := &MAVARResult{Points: make([]MAVARPoint, 0, len(o.levels))}
	for i := range o.levels {
		l := &o.levels[i]
		if l.count == 0 {
			continue
		}
		res.Points = append(res.Points, MAVARPoint{Tau: l.tau, ModVar: l.modVar(), Windows: l.count})
	}
	mu, usedLo, usedHi, n := o.fit(fitLo, fitHi)
	if n < 2 || math.IsNaN(mu) {
		return nil, fmt.Errorf("lrd: MAVAR fit needs ≥ 2 usable octaves in τ ∈ [%d, %d], got %d: %w",
			fitLo, fitHi, n, errs.ErrInvalidSeries)
	}
	res.FitLo, res.FitHi = usedLo, usedHi
	res.Octaves = n
	res.Mu = mu
	res.H = 1 + mu/2
	return res, nil
}

// MAVAR estimates the Hurst parameter of xs by modified Allan variance
// over octave-spaced observation intervals, fitting the log–log slope
// over τ ∈ [fitLo, fitHi] (pass 0, 0 for the default range). It is the
// batch entry point of the streaming estimator: the series is fed
// through OnlineMAVAR, so batch and block-by-block results are bitwise
// identical.
func MAVAR(xs []float64, fitLo, fitHi int) (*MAVARResult, error) {
	if len(xs) < 256 {
		return nil, fmt.Errorf("lrd: MAVAR needs ≥ 256 points, got %d: %w", len(xs), errs.ErrInvalidSeries)
	}
	if err := checkFinite(xs); err != nil {
		return nil, fmt.Errorf("lrd: MAVAR: %w", err)
	}
	o := NewOnlineMAVAR(MaxMavarTau(len(xs)))
	for _, v := range xs {
		o.Add(v)
	}
	return o.Result(fitLo, fitHi)
}
