package lrd

import (
	"fmt"
	"math"

	"vbr/internal/errs"
	"vbr/internal/stats"
)

// This file adds the fractional-Gaussian-noise spectral model to the
// Whittle estimator as an ablation to the fARIMA(0, d, 0) model used by
// Whittle(). The two models share the same λ^{1-2H} behaviour at the
// origin but differ at high frequencies, so comparing the two estimates
// is a practical specification check: on exactly self-similar input they
// agree; a gap reveals short-range structure the fARIMA model absorbs
// into d.

// fgnSpectrum returns the (unscaled) spectral density of fractional
// Gaussian noise at frequency λ ∈ (0, π] for Hurst parameter h, via the
// standard infinite-sum representation
//
//	f(λ; H) ∝ (1 − cos λ) · Σ_{j=-∞}^{∞} |λ + 2πj|^{−2H−1},
//
// with the sum truncated at |j| ≤ K and the tails replaced by the
// integral approximation (Paxson's method):
//
//	Σ_{j>K} ((2πj+λ)^{-2H-1} + (2πj-λ)^{-2H-1})
//	  ≈ [ (2πK+π+λ)^{-2H} + (2πK+π-λ)^{-2H} ] / (4πH)·2  (midpoint rule)
func fgnSpectrum(lambda, h float64) float64 {
	// K = 16 with the integral tail keeps the relative error below 1e-5
	// across H ∈ (0, 1) while keeping the estimator fast enough to run
	// inside golden-section search over thousands of frequencies.
	const k = 16
	exp := -2*h - 1
	sum := math.Pow(math.Abs(lambda), exp)
	twoPi := 2 * math.Pi
	for j := 1; j <= k; j++ {
		sum += math.Pow(twoPi*float64(j)+lambda, exp) + math.Pow(twoPi*float64(j)-lambda, exp)
	}
	// Integral tail correction: ∫_{K+1/2}^{∞} over both signs.
	a := twoPi*(float64(k)+0.5) + lambda
	b := twoPi*(float64(k)+0.5) - lambda
	sum += (math.Pow(a, -2*h) + math.Pow(b, -2*h)) / (2 * twoPi * h)
	return (1 - math.Cos(lambda)) * sum
}

// WhittleFGN computes the Whittle approximate MLE of H under the exact
// FGN spectral model. The asymptotic standard error is evaluated
// numerically from the Fisher information of the FGN spectrum.
func WhittleFGN(xs []float64) (*WhittleResult, error) {
	n := len(xs)
	if n < 128 {
		return nil, fmt.Errorf("lrd: Whittle needs ≥ 128 points, got %d: %w", n, errs.ErrInvalidSeries)
	}
	if err := checkFinite(xs); err != nil {
		return nil, fmt.Errorf("lrd: Whittle (FGN): %w", err)
	}
	freqs, ords := stats.Periodogram(xs)

	objective := func(h float64) float64 {
		var sumRatio, sumLogF float64
		for j := range freqs {
			f := fgnSpectrum(freqs[j], h)
			sumRatio += ords[j] / f
			sumLogF += math.Log(f)
		}
		m := float64(len(freqs))
		return math.Log(sumRatio/m) + sumLogF/m
	}
	h := goldenMin(objective, 0.01, 0.99, 1e-6)

	// Numeric Fisher information for the FGN model:
	// I(H) = (1/4π) ∫_{-π}^{π} (∂ log f/∂H)² dλ, by central differences.
	const steps = 4000
	const dh = 1e-4
	var info float64
	for i := 1; i < steps; i++ {
		lam := math.Pi * float64(i) / steps
		g := (math.Log(fgnSpectrum(lam, h+dh)) - math.Log(fgnSpectrum(lam, h-dh))) / (2 * dh)
		info += g * g
	}
	info *= math.Pi / steps
	info = 2 * info / (4 * math.Pi)
	se := 1 / math.Sqrt(info*float64(n))

	return &WhittleResult{H: h, StdErr: se, CI95: 1.96 * se}, nil
}
