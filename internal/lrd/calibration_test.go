package lrd

import (
	"math"
	"testing"
)

// TestCommittedCalibrationTable asserts the acceptance properties of the
// committed battery output (calibration_table.go). These are claims the
// README makes about the estimator battery; if a MAVAR change degrades
// them, regenerating the table via `make calibrate` must surface the
// regression here rather than silently shipping worse error bars.
func TestCommittedCalibrationTable(t *testing.T) {
	byKey := map[string]map[[2]float64]CalibrationCell{}
	for _, c := range builtinCalibrationCells {
		if c.Seeds < 32 {
			t.Errorf("cell %s H=%g n=%d: only %d seeds, want ≥ 32", c.Estimator, c.H, c.N, c.Seeds)
		}
		if math.IsNaN(c.Bias) || math.IsNaN(c.Std) || c.Std <= 0 {
			t.Errorf("cell %s H=%g n=%d: degenerate stats bias=%v std=%v", c.Estimator, c.H, c.N, c.Bias, c.Std)
		}
		m := byKey[c.Estimator]
		if m == nil {
			m = map[[2]float64]CalibrationCell{}
			byKey[c.Estimator] = m
		}
		m[[2]float64{c.H, float64(c.N)}] = c
	}

	for _, name := range EstimatorNames {
		if len(byKey[name]) == 0 {
			t.Errorf("committed table has no cells for estimator %q", name)
		}
	}

	// The battery grid must cover the documented range.
	for _, h := range []float64{0.6, 0.7, 0.8, 0.9} {
		for _, n := range []float64{4096, 16384, 65536} {
			if _, ok := byKey[EstMAVAR][[2]float64{h, n}]; !ok {
				t.Fatalf("committed table missing mavar cell H=%g n=%g", h, n)
			}
			if _, ok := byKey[EstVarianceTime][[2]float64{h, n}]; !ok {
				t.Fatalf("committed table missing variance-time cell H=%g n=%g", h, n)
			}
		}
	}

	// Acceptance: MAVAR |bias| ≤ 0.03 on the longest series, and MAVAR's
	// sample std no worse than variance–time's at EVERY (H, n) cell —
	// i.e. the new estimator strictly dominates the classical one's
	// precision across the calibrated grid.
	for key, mc := range byKey[EstMAVAR] {
		if key[1] == 65536 && math.Abs(mc.Bias) > 0.03 {
			t.Errorf("mavar H=%g n=%g: |bias| = %.4f > 0.03", key[0], key[1], math.Abs(mc.Bias))
		}
		vt, ok := byKey[EstVarianceTime][key]
		if !ok {
			t.Fatalf("no variance-time cell matching mavar cell H=%g n=%g", key[0], key[1])
		}
		if mc.Std > vt.Std {
			t.Errorf("mavar H=%g n=%g: std %.4f exceeds variance-time std %.4f", key[0], key[1], mc.Std, vt.Std)
		}
	}
}

// TestCalibrationLookup exercises the bilinear interpolation and its
// clamping policy on a synthetic two-by-two grid.
func TestCalibrationLookup(t *testing.T) {
	cells := []CalibrationCell{
		{Estimator: "e", H: 0.6, N: 4096, Bias: 0.10, Std: 0.010, Seeds: 8},
		{Estimator: "e", H: 0.6, N: 16384, Bias: 0.20, Std: 0.020, Seeds: 8},
		{Estimator: "e", H: 0.8, N: 4096, Bias: 0.30, Std: 0.030, Seeds: 8},
		{Estimator: "e", H: 0.8, N: 16384, Bias: 0.40, Std: 0.040, Seeds: 8},
	}
	c := NewCalibration(cells)

	check := func(h float64, n int, wantBias, wantStd float64) {
		t.Helper()
		bias, std, ok := c.Lookup("e", h, n)
		if !ok {
			t.Fatalf("Lookup(e, %g, %d): not ok", h, n)
		}
		if math.Abs(bias-wantBias) > 1e-12 || math.Abs(std-wantStd) > 1e-12 {
			t.Fatalf("Lookup(e, %g, %d) = (%.4f, %.4f), want (%.4f, %.4f)", h, n, bias, std, wantBias, wantStd)
		}
	}

	// Exact grid points.
	check(0.6, 4096, 0.10, 0.010)
	check(0.8, 16384, 0.40, 0.040)
	// Midpoints: n = 8192 is the log₂ midpoint of [4096, 16384].
	check(0.7, 4096, 0.20, 0.020)
	check(0.6, 8192, 0.15, 0.015)
	check(0.7, 8192, 0.25, 0.025)
	// Clamped outside the grid.
	check(0.5, 1024, 0.10, 0.010)
	check(0.95, 1<<20, 0.40, 0.040)

	if _, _, ok := c.Lookup("missing", 0.7, 8192); ok {
		t.Fatal("Lookup on unknown estimator reported ok")
	}
	if _, _, ok := c.Lookup("e", math.NaN(), 8192); ok {
		t.Fatal("Lookup with NaN H reported ok")
	}

	// Bar: bias-corrected center, 1.96σ half-width.
	b := c.Bar("e", 0.7, 8192)
	if math.Abs(b.H-(0.7-0.25)) > 1e-12 || math.Abs(b.CI95-1.96*0.025) > 1e-12 {
		t.Fatalf("Bar = %+v, want H=0.45 CI95=%.4f", b, 1.96*0.025)
	}
	if b.Raw != 0.7 || b.Estimator != "e" {
		t.Fatalf("Bar metadata = %+v", b)
	}
	// No applicable cell: raw passes through with NaN half-width.
	b = c.Bar("missing", 0.7, 8192)
	if b.H != 0.7 || !math.IsNaN(b.CI95) {
		t.Fatalf("Bar without cell = %+v, want passthrough with NaN CI95", b)
	}
	b = c.Bar("e", math.NaN(), 8192)
	if !math.IsNaN(b.H) || !math.IsNaN(b.CI95) {
		t.Fatalf("Bar with NaN raw = %+v, want NaN center and half-width", b)
	}
}

// TestDefaultCalibrationServesCommittedTable spot-checks that the
// package-level calibration is built from the committed cells.
func TestDefaultCalibrationServesCommittedTable(t *testing.T) {
	c := DefaultCalibration()
	for _, cell := range builtinCalibrationCells[:4] {
		bias, std, ok := c.Lookup(cell.Estimator, cell.H, cell.N)
		if !ok || bias != cell.Bias || std != cell.Std {
			t.Fatalf("Lookup(%s, %g, %d) = (%v, %v, %v), want committed (%v, %v)",
				cell.Estimator, cell.H, cell.N, bias, std, ok, cell.Bias, cell.Std)
		}
	}
}
