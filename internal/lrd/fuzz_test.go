package lrd

import (
	"encoding/binary"
	"errors"
	"math"
	"testing"

	"vbr/internal/errs"
)

// maxFuzzFrames caps how much of a corpus entry a robustness target
// decodes, so fuzzing stays a crash hunt rather than a stress test.
const maxFuzzFrames = 8 << 10

// fuzzSeries reinterprets raw fuzz bytes as a float64 series — every
// bit pattern is admitted, including NaN, ±Inf and subnormals, which is
// exactly the hostile input the estimators must reject gracefully.
func fuzzSeries(data []byte) []float64 {
	n := len(data) / 8
	if n > maxFuzzFrames {
		n = maxFuzzFrames
	}
	xs := make([]float64, n)
	for i := range xs {
		xs[i] = math.Float64frombits(binary.LittleEndian.Uint64(data[i*8:]))
	}
	return xs
}

// seedEstimatorCorpus adds the degenerate shapes every estimator must
// survive: empty, too-short, constant, NaN- and Inf-poisoned, and a
// plausible well-behaved series.
func seedEstimatorCorpus(f *testing.F) {
	enc := func(xs []float64) []byte {
		b := make([]byte, 8*len(xs))
		for i, v := range xs {
			binary.LittleEndian.PutUint64(b[i*8:], math.Float64bits(v))
		}
		return b
	}
	f.Add([]byte{})
	f.Add(enc([]float64{1, 2, 3}))
	constant := make([]float64, 512)
	for i := range constant {
		constant[i] = 4.25
	}
	f.Add(enc(constant))
	poisoned := make([]float64, 512)
	for i := range poisoned {
		poisoned[i] = float64(i % 17)
	}
	poisoned[100] = math.NaN()
	poisoned[200] = math.Inf(1)
	poisoned[300] = math.Inf(-1)
	f.Add(enc(poisoned))
	healthy := make([]float64, 1024)
	s := 0.0
	for i := range healthy {
		s = 0.9*s + float64((i*2654435761)%1000)/1000 - 0.5
		healthy[i] = s
	}
	f.Add(enc(healthy))
}

// checkEstimator is the shared oracle: the estimator must not panic,
// and any failure must wrap the errs.ErrInvalidSeries sentinel so
// callers can distinguish "bad series" from infrastructure errors.
func checkEstimator(t *testing.T, name string, h float64, err error) {
	t.Helper()
	if err != nil {
		if !errors.Is(err, errs.ErrInvalidSeries) {
			t.Fatalf("%s error does not wrap errs.ErrInvalidSeries: %v", name, err)
		}
		return
	}
	if math.IsNaN(h) || math.IsInf(h, 0) {
		t.Fatalf("%s returned non-finite Ĥ = %v without an error", name, h)
	}
}

func FuzzVarianceTime(f *testing.F) {
	seedEstimatorCorpus(f)
	f.Fuzz(func(t *testing.T, data []byte) {
		h, err := EstimateBy(EstVarianceTime, fuzzSeries(data))
		checkEstimator(t, EstVarianceTime, h, err)
	})
}

func FuzzRS(f *testing.F) {
	seedEstimatorCorpus(f)
	f.Fuzz(func(t *testing.T, data []byte) {
		h, err := EstimateBy(EstRS, fuzzSeries(data))
		checkEstimator(t, EstRS, h, err)
	})
}

func FuzzWhittle(f *testing.F) {
	seedEstimatorCorpus(f)
	f.Fuzz(func(t *testing.T, data []byte) {
		h, err := EstimateBy(EstWhittle, fuzzSeries(data))
		checkEstimator(t, EstWhittle, h, err)
	})
}

func FuzzMAVAR(f *testing.F) {
	seedEstimatorCorpus(f)
	f.Fuzz(func(t *testing.T, data []byte) {
		xs := fuzzSeries(data)
		h, err := EstimateBy(EstMAVAR, xs)
		checkEstimator(t, EstMAVAR, h, err)
		if err != nil {
			return
		}
		// On success the structured result must be coherent too.
		r, err := MAVAR(xs, 0, 0)
		if err != nil {
			t.Fatalf("MAVAR failed after EstimateBy succeeded: %v", err)
		}
		if len(r.Points) < 2 || r.FitLo > r.FitHi || r.Octaves < 2 {
			t.Fatalf("degenerate MAVAR result: %+v", r)
		}
	})
}
