package lrd

import (
	"math"
	"testing"
)

// goldenBar pins one calibrated error bar to exact bit patterns.
type goldenBar struct {
	estimator  string
	raw, h, ci uint64
}

// goldenEstimates pins EstimateAll's complete output on a fixed-seed
// Davies–Harte fGn series (testSeries seed derivation, n = 16384,
// aggM = 64) to exact Float64bits. Any change to an estimator's
// numerics, the fit ranges, the calibration table, or the generator's
// sampling order shows up here as a bit-level diff — deliberate changes
// regenerate the constants, silent drift fails the build. The suite
// runs on amd64 CI where Go performs no FMA contraction, so the bit
// patterns are stable across compiler releases.
var goldenEstimates = []struct {
	h      float64
	fields map[string]uint64
	bars   []goldenBar
}{
	{
		h: 0.6,
		fields: map[string]uint64{
			"VarianceTime": 0x3fe2414b701975b8, // 0.5704705419008667
			"RS":           0x3fe39bc3c5b02f20, // 0.6127642499063519
			"RSAggregated": 0x3fe3f8035818fbfe, // 0.6240250321060328
			"RSSweepMin":   0x3fe36cca50ac560e, // 0.6070300651214795
			"RSSweepMax":   0x3fe3e54ca2e1b8df, // 0.6217406445773824
			"Whittle":      0x3fe38301172ad0f8, // 0.6097417309270261
			"WhittleCI95":  0x3fb87e58dfa2bccb, // 0.09567790469985764
			"Periodogram":  0x3fe347cb92e874bf, // 0.6025140637681473
			"MAVAR":        0x3fe2671109df37ca, // 0.57508136680712
		},
		bars: []goldenBar{
			{"variance-time", 0x3fe2414b701975b8, 0x3fe27574abd0fefb, 0x3fa86ddf3621cab0}, // raw 0.5704705419008667, H 0.5768378597058182 ± 0.04771325622359279
			{"rs", 0x3fe39bc3c5b02f20, 0x3fe2bdb0d0852fda, 0x3f9ee1ad8717ebba},            // raw 0.6127642499063519, H 0.5856556008015972 ± 0.030157767649125346
			{"periodogram", 0x3fe347cb92e874bf, 0x3fe35f7aeb22e42a, 0x3fa6ea32508e0fac},   // raw 0.6025140637681473, H 0.6054052917962782 ± 0.044755527814259594
			{"whittle", 0x3fe3f326e045571e, 0x3fe3161f9b2bf0e2, 0x3f86abbc61ccf28f},       // raw 0.6234316234865422, H 0.5964506178566149 ± 0.011069747671734546
			{"mavar", 0x3fe2671109df37ca, 0x3fe3615588993d1c, 0x3f8cfb1159383d8e},         // raw 0.57508136680712, H 0.6056316059056459 ± 0.014150748763340795
		},
	},
	{
		h: 0.8,
		fields: map[string]uint64{
			"VarianceTime": 0x3fe8cafdf3c65e49, // 0.774779296992116
			"RS":           0x3fe8a713339a3235, // 0.7703948982103329
			"RSAggregated": 0x3fe7faad783fe70f, // 0.7493502949357395
			"RSSweepMin":   0x3fe8696ff35d46af, // 0.7628707650385048
			"RSSweepMax":   0x3fe8be7893ec5159, // 0.7732508553622593
			"Whittle":      0x3feb5c66b803244a, // 0.8550294488897034
			"WhittleCI95":  0x3fb87e58dfa2bccb, // 0.09567790469985764
			"Periodogram":  0x3fea735bd9565650, // 0.8265818829410794
			"MAVAR":        0x3fe95d700d784e4a, // 0.7926559699139457
		},
		bars: []goldenBar{
			{"variance-time", 0x3fe8cafdf3c65e49, 0x3fe981b6b9f5dbef, 0x3fae948067e00d98}, // raw 0.774779296992116, H 0.7970842010535061 ± 0.05972672718055633
			{"rs", 0x3fe8a713339a3235, 0x3fe8e406bdc9fa51, 0x3fa06062b082091d},            // raw 0.7703948982103329, H 0.7778352457824643 ± 0.03198536305082398
			{"periodogram", 0x3fea735bd9565650, 0x3fea499b0eea4bc9, 0x3fa9e897a34de822},   // raw 0.8265818829410794, H 0.8214850703537816 ± 0.050602663693055897
			{"whittle", 0x3feb68caba412cc6, 0x3fe928290694f082, 0x3f8821744518b56e},       // raw 0.8565419805321646, H 0.7861523750830346 ± 0.011782558783205412
			{"mavar", 0x3fe95d700d784e4a, 0x3fea090223a45e6f, 0x3f936cea49707225},         // raw 0.7926559699139457, H 0.8135996528753376 ± 0.01897016595113334
		},
	},
	{
		h: 0.9,
		fields: map[string]uint64{
			"VarianceTime": 0x3fe96cab3e79eab6, // 0.7945152492751137
			"RS":           0x3fe9fe62d59a982c, // 0.8123029872847431
			"RSAggregated": 0x3fe682fd6163d7ac, // 0.7034899618290544
			"RSSweepMin":   0x3fe9fe62d59a982c, // 0.8123029872847431
			"RSSweepMax":   0x3fea6d448a647500, // 0.8258383467652095
			"Whittle":      0x3fed7d38a6f7ae90, // 0.921535802944577
			"WhittleCI95":  0x3fb87e58dfa2bccb, // 0.09567790469985764
			"Periodogram":  0x3fec8a86ff226150, // 0.8919100745288606
			"MAVAR":        0x3fec0e9c4a0af54c, // 0.8767835088871521
		},
		bars: []goldenBar{
			{"variance-time", 0x3fe96cab3e79eab6, 0x3fea27cca9956b95, 0x3faf71281dca1eb9}, // raw 0.7945152492751137, H 0.817358332841979 ± 0.06141019214288463
			{"rs", 0x3fe9fe62d59a982c, 0x3fea9e04bce6b510, 0x3fa0545d198cec95},            // raw 0.8123029872847431, H 0.8317893685795372 ± 0.031893643731074985
			{"periodogram", 0x3fec8a86ff226150, 0x3fec6199cb85b4c2, 0x3fa31384aa599cb3},   // raw 0.8919100745288606, H 0.8869141554875102 ± 0.037258287234004504
			{"whittle", 0x3fef723b942aafcd, 0x3fecfaf4a1131cf9, 0x3f8756d25ce9afc3},       // raw 0.9826944249994028, H 0.9056342264165372 ± 0.011396068058466718
			{"mavar", 0x3fec0e9c4a0af54c, 0x3feca7d21a97c5c4, 0x3f905fe8ffb0fa16},         // raw 0.8767835088871521, H 0.895485927523787 ± 0.01599086819282477
		},
	},
}

func TestEstimateAllGolden(t *testing.T) {
	for _, g := range goldenEstimates {
		e, err := EstimateAll(testSeries(t, g.h, 16384), 64)
		if err != nil {
			t.Fatalf("H=%g: EstimateAll: %v", g.h, err)
		}
		got := map[string]float64{
			"VarianceTime": e.VarianceTime, "RS": e.RS, "RSAggregated": e.RSAggregated,
			"RSSweepMin": e.RSSweepMin, "RSSweepMax": e.RSSweepMax,
			"Whittle": e.Whittle, "WhittleCI95": e.WhittleCI95,
			"Periodogram": e.Periodogram, "MAVAR": e.MAVAR,
		}
		for name, want := range g.fields {
			if bits := math.Float64bits(got[name]); bits != want {
				t.Errorf("H=%g: %s = %v (0x%016x), want bits 0x%016x — estimator output drifted",
					g.h, name, got[name], bits, want)
			}
		}
		if len(e.Bars) != len(g.bars) {
			t.Fatalf("H=%g: %d bars, want %d", g.h, len(e.Bars), len(g.bars))
		}
		for i, want := range g.bars {
			b := e.Bars[i]
			if b.Estimator != want.estimator {
				t.Errorf("H=%g: bar %d estimator %q, want %q", g.h, i, b.Estimator, want.estimator)
				continue
			}
			if math.Float64bits(b.Raw) != want.raw || math.Float64bits(b.H) != want.h ||
				math.Float64bits(b.CI95) != want.ci {
				t.Errorf("H=%g: bar %s = raw %v / H %v / CI %v (0x%016x/0x%016x/0x%016x), want 0x%016x/0x%016x/0x%016x",
					g.h, b.Estimator, b.Raw, b.H, b.CI95,
					math.Float64bits(b.Raw), math.Float64bits(b.H), math.Float64bits(b.CI95),
					want.raw, want.h, want.ci)
			}
		}
	}
}
