// Package lrd implements the Hurst-parameter estimators of §3.2.3 of the
// paper: the variance–time plot (Fig. 11), the rescaled-adjusted-range
// (R/S) pox diagram (Fig. 12) including the aggregated and
// partition-swept variants of Table 3, a periodogram-regression estimator
// for the spectral power law of Fig. 8, and Whittle's approximate maximum
// likelihood estimator with its central-limit confidence interval.
package lrd

import (
	"fmt"
	"math"
	"sort"

	"vbr/internal/errs"
	"vbr/internal/stats"
)

// checkFinite rejects series containing NaN or ±Inf observations: every
// estimator's regression would silently propagate them into Ĥ.
func checkFinite(xs []float64) error {
	for i, v := range xs {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return fmt.Errorf("lrd: non-finite observation %v at index %d: %w", v, i, errs.ErrInvalidSeries)
		}
	}
	return nil
}

// regress fits y = a + b·x by ordinary least squares and returns the
// slope b. It requires at least two distinct x values.
func regress(x, y []float64) (slope float64, err error) {
	if len(x) != len(y) || len(x) < 2 {
		return 0, fmt.Errorf("lrd: regression needs ≥ 2 paired points, got %d/%d: %w", len(x), len(y), errs.ErrInvalidSeries)
	}
	var sx, sy, sxx, sxy float64
	n := float64(len(x))
	for i := range x {
		sx += x[i]
		sy += y[i]
		sxx += x[i] * x[i]
		sxy += x[i] * y[i]
	}
	den := n*sxx - sx*sx
	//vbrlint:ignore floateq exact-zero guard: the regression denominator vanishes only for a constant abscissa
	if den == 0 {
		return 0, fmt.Errorf("lrd: regression degenerate (constant abscissa): %w", errs.ErrInvalidSeries)
	}
	return (n*sxy - sx*sy) / den, nil
}

// logSpacedInts returns up to count distinct integers log-spaced in
// [lo, hi].
func logSpacedInts(lo, hi, count int) []int {
	if hi < lo || count < 1 {
		return nil
	}
	out := make([]int, 0, count)
	prev := 0
	for i := 0; i < count; i++ {
		f := float64(i) / float64(max(count-1, 1))
		v := int(math.Round(float64(lo) * math.Pow(float64(hi)/float64(lo), f)))
		if v <= prev {
			v = prev + 1
		}
		if v > hi {
			break
		}
		out = append(out, v)
		prev = v
	}
	return out
}

// VTPoint is one point of the variance–time plot: aggregation level m and
// the normalized variance Var(X^(m)) / Var(X).
type VTPoint struct {
	M       int
	NormVar float64
}

// VarianceTimeResult carries the plot points and the fitted estimate.
type VarianceTimeResult struct {
	Points []VTPoint
	Beta   float64 // fitted slope magnitude: Var(X^(m)) ~ m^{-β}
	H      float64 // H = 1 - β/2
}

// VarianceTime produces the variance–time plot of Fig. 11 and estimates H
// from the slope of log(Var(X^(m))/Var(X)) against log m, fitted over
// aggregation levels in [fitLo, fitHi]. Levels are log-spaced between
// minM and n/10 (so each aggregated series retains ≥ 10 blocks).
func VarianceTime(xs []float64, minM, fitLo, fitHi int) (*VarianceTimeResult, error) {
	n := len(xs)
	if n < 100 {
		return nil, fmt.Errorf("lrd: variance-time needs ≥ 100 points, got %d: %w", n, errs.ErrInvalidSeries)
	}
	if err := checkFinite(xs); err != nil {
		return nil, fmt.Errorf("lrd: variance-time: %w", err)
	}
	if minM < 1 {
		minM = 1
	}
	maxM := n / 10
	if maxM < minM {
		return nil, fmt.Errorf("lrd: series too short for minM=%d: %w", minM, errs.ErrInvalidSeries)
	}
	if fitLo <= 0 {
		fitLo = minM
	}
	if fitHi <= 0 || fitHi > maxM {
		fitHi = maxM
	}
	v0 := stats.Variance(xs)
	//vbrlint:ignore floateq exact-zero guard: only a literally constant series has zero variance
	if v0 == 0 {
		return nil, fmt.Errorf("lrd: constant series has no variance-time structure: %w", errs.ErrInvalidSeries)
	}
	ms := logSpacedInts(minM, maxM, 40)
	res := &VarianceTimeResult{Points: make([]VTPoint, 0, len(ms))}
	var lx, ly []float64
	for _, m := range ms {
		agg, err := stats.Aggregate(xs, m)
		if err != nil {
			return nil, err
		}
		nv := stats.Variance(agg) / v0
		res.Points = append(res.Points, VTPoint{M: m, NormVar: nv})
		if m >= fitLo && m <= fitHi && nv > 0 {
			lx = append(lx, math.Log(float64(m)))
			ly = append(ly, math.Log(nv))
		}
	}
	slope, err := regress(lx, ly)
	if err != nil {
		return nil, fmt.Errorf("lrd: variance-time fit: %w", err)
	}
	res.Beta = -slope
	res.H = 1 - res.Beta/2
	return res, nil
}

// RSPoint is one point of the R/S pox diagram: block length n (lag), the
// block's starting index, and the rescaled adjusted range R/S.
type RSPoint struct {
	Lag   int
	Start int
	RS    float64
}

// RSResult carries the pox-diagram points and the fitted estimate.
type RSResult struct {
	Points []RSPoint
	H      float64
}

// rsStatistic computes R(n)/S(n) over xs[start : start+n] following
// Hurst's definition quoted in §3.2.3: adjusted partial sums
// W_j = Σ_{i≤j} X_i − j·mean, R = max(0, W_1..W_n) − min(0, W_1..W_n),
// S = sample standard deviation.
func rsStatistic(xs []float64) (float64, bool) {
	n := len(xs)
	if n < 2 {
		return 0, false
	}
	var sum float64
	for _, v := range xs {
		sum += v
	}
	mean := sum / float64(n)

	var w, maxW, minW, ss float64
	for _, v := range xs {
		w += v - mean
		if w > maxW {
			maxW = w
		}
		if w < minW {
			minW = w
		}
		ss += (v - mean) * (v - mean)
	}
	s := math.Sqrt(ss / float64(n))
	//vbrlint:ignore floateq exact-zero guard: only a literally constant window has zero deviation
	if s == 0 {
		return 0, false
	}
	return (maxW - minW) / s, true
}

// RS computes the pox diagram of R/S (Fig. 12): for numLags log-spaced
// block lengths between minLag and len(xs)/2, the R/S statistic is
// evaluated on numStarts evenly spaced blocks. H is the least-squares
// slope of log(R/S) against log(lag), fitted over lags in [fitLo, fitHi]
// (pass 0 to use all lags) — mirroring the paper's use of the highlighted
// central points of the diagram.
func RS(xs []float64, minLag, numLags, numStarts, fitLo, fitHi int) (*RSResult, error) {
	n := len(xs)
	if n < 100 {
		return nil, fmt.Errorf("lrd: R/S needs ≥ 100 points, got %d: %w", n, errs.ErrInvalidSeries)
	}
	if err := checkFinite(xs); err != nil {
		return nil, fmt.Errorf("lrd: R/S: %w", err)
	}
	if minLag < 4 {
		minLag = 4
	}
	maxLag := n / 2
	if maxLag < minLag {
		return nil, fmt.Errorf("lrd: series too short for minLag=%d: %w", minLag, errs.ErrInvalidSeries)
	}
	if numLags < 2 {
		numLags = 20
	}
	if numStarts < 1 {
		numStarts = 10
	}
	if fitLo <= 0 {
		fitLo = minLag
	}
	if fitHi <= 0 || fitHi > maxLag {
		fitHi = maxLag
	}

	lags := logSpacedInts(minLag, maxLag, numLags)
	res := &RSResult{}
	var lx, ly []float64
	for _, lag := range lags {
		// Evenly spaced starting points; for long lags fewer blocks fit.
		maxStart := n - lag
		step := maxStart / numStarts
		if step < 1 {
			step = 1
		}
		for start := 0; start <= maxStart; start += step {
			rs, ok := rsStatistic(xs[start : start+lag])
			if !ok {
				continue
			}
			res.Points = append(res.Points, RSPoint{Lag: lag, Start: start, RS: rs})
			if lag >= fitLo && lag <= fitHi && rs > 0 {
				lx = append(lx, math.Log(float64(lag)))
				ly = append(ly, math.Log(rs))
			}
		}
	}
	slope, err := regress(lx, ly)
	if err != nil {
		return nil, fmt.Errorf("lrd: R/S fit: %w", err)
	}
	res.H = slope
	return res, nil
}

// RSAggregated applies the R/S analysis to the aggregated process X^(m),
// the Table 3 variant that filters out short-range structure before
// estimating H (aggregation leaves H unchanged for self-similar input).
func RSAggregated(xs []float64, m, minLag, numLags, numStarts int) (*RSResult, error) {
	agg, err := stats.Aggregate(xs, m)
	if err != nil {
		return nil, err
	}
	return RS(agg, minLag, numLags, numStarts, 0, 0)
}

// RSSweep runs the R/S estimate across several (numLags, numStarts)
// partitions of the observations — the "R/S with n, M varied" row of
// Table 3 — and returns the min and max fitted H, demonstrating the
// estimator's robustness to the partition choice.
func RSSweep(xs []float64, lagCounts, startCounts []int) (hMin, hMax float64, err error) {
	if len(lagCounts) == 0 || len(startCounts) == 0 {
		return 0, 0, fmt.Errorf("lrd: sweep needs at least one lag and start count")
	}
	first := true
	for _, nl := range lagCounts {
		for _, ns := range startCounts {
			r, err := RS(xs, 0, nl, ns, 0, 0)
			if err != nil {
				return 0, 0, err
			}
			if first {
				hMin, hMax = r.H, r.H
				first = false
				continue
			}
			hMin = math.Min(hMin, r.H)
			hMax = math.Max(hMax, r.H)
		}
	}
	return hMin, hMax, nil
}

// PeriodogramResult carries the low-frequency power-law fit of Fig. 8.
type PeriodogramResult struct {
	Alpha float64 // spectrum ~ ω^{-α} near the origin
	H     float64 // H = (1 + α) / 2
	Used  int     // number of low-frequency ordinates in the regression
}

// PeriodogramH estimates H from the slope of log I(λ) against log λ over
// the lowest lowFrac fraction of Fourier frequencies (the
// Geweke–Porter-Hudak style regression implied by the paper's
// "power law of the form ω^{-α}" definition of LRD).
func PeriodogramH(xs []float64, lowFrac float64) (*PeriodogramResult, error) {
	if !(lowFrac > 0 && lowFrac <= 1) {
		return nil, fmt.Errorf("lrd: lowFrac must be in (0,1], got %v", lowFrac)
	}
	if err := checkFinite(xs); err != nil {
		return nil, fmt.Errorf("lrd: periodogram: %w", err)
	}
	freqs, ords := stats.Periodogram(xs)
	if len(freqs) < 10 {
		return nil, fmt.Errorf("lrd: series too short for periodogram regression: %w", errs.ErrInvalidSeries)
	}
	k := int(lowFrac * float64(len(freqs)))
	if k < 5 {
		k = 5
	}
	var lx, ly []float64
	for j := 0; j < k; j++ {
		if ords[j] <= 0 {
			continue
		}
		lx = append(lx, math.Log(freqs[j]))
		ly = append(ly, math.Log(ords[j]))
	}
	slope, err := regress(lx, ly)
	if err != nil {
		return nil, fmt.Errorf("lrd: periodogram fit: %w", err)
	}
	alpha := -slope
	return &PeriodogramResult{Alpha: alpha, H: (1 + alpha) / 2, Used: len(lx)}, nil
}

// WhittleResult is the Whittle approximate-MLE estimate with its 95%
// confidence half-width from the estimator's central limit theorem.
type WhittleResult struct {
	H      float64
	StdErr float64 // asymptotic standard deviation of Ĥ
	CI95   float64 // 1.96 · StdErr
}

// Whittle computes the approximate maximum likelihood estimate of H for a
// fractional ARIMA(0, d, 0) spectral model f(λ; d) ∝ |2 sin(λ/2)|^{-2d},
// minimizing the profile Whittle objective
//
//	L(d) = log( (1/m) Σ_j I(λ_j)/f*(λ_j; d) ) + (1/m) Σ_j log f*(λ_j; d)
//
// over d ∈ (-½, ½) by golden-section search; H = d + ½. The asymptotic
// variance is Var(Ĥ) = [n · (1/4π)∫(∂ log f/∂d)² dλ]⁻¹, which for this
// model evaluates to 6/(π²n); it is computed numerically so the code
// remains correct if the spectral model is changed.
func Whittle(xs []float64) (*WhittleResult, error) {
	n := len(xs)
	if n < 128 {
		return nil, fmt.Errorf("lrd: Whittle needs ≥ 128 points, got %d: %w", n, errs.ErrInvalidSeries)
	}
	if err := checkFinite(xs); err != nil {
		return nil, fmt.Errorf("lrd: Whittle: %w", err)
	}
	freqs, ords := stats.Periodogram(xs)
	logs := make([]float64, len(freqs))
	for j, f := range freqs {
		logs[j] = math.Log(2 * math.Sin(f/2))
	}

	objective := func(d float64) float64 {
		var sumRatio, sumLogF float64
		for j := range freqs {
			logf := -2 * d * logs[j]
			sumRatio += ords[j] * math.Exp(-logf)
			sumLogF += logf
		}
		m := float64(len(freqs))
		return math.Log(sumRatio/m) + sumLogF/m
	}

	d := goldenMin(objective, -0.499, 0.499, 1e-10)

	// Numeric Fisher information: (1/4π) ∫_{-π}^{π} (2 ln 2 sin(λ/2))² dλ.
	const steps = 20000
	var info float64
	for i := 1; i < steps; i++ {
		lam := math.Pi * float64(i) / steps
		g := 2 * math.Log(2*math.Sin(lam/2))
		info += g * g
	}
	info *= math.Pi / steps // ∫_0^π
	info = 2 * info / (4 * math.Pi)
	se := 1 / math.Sqrt(info*float64(n))

	return &WhittleResult{H: d + 0.5, StdErr: se, CI95: 1.96 * se}, nil
}

// WhittleAggregated applies Whittle to the log-transformed, aggregated
// series — the §3.2.3 procedure: {log X_i} is approximately Normal with
// the same H, and aggregating by m filters high-frequency (short-range)
// components. The paper reports Ĥ = 0.8 ± 0.088 at m ≈ 700; note that
// aggregation shrinks the sample and therefore widens the CI.
func WhittleAggregated(xs []float64, m int, useLog bool) (*WhittleResult, error) {
	series := xs
	if useLog {
		var err error
		series, err = stats.LogSeries(xs)
		if err != nil {
			return nil, err
		}
	}
	agg, err := stats.Aggregate(series, m)
	if err != nil {
		return nil, err
	}
	return Whittle(agg)
}

// LadderPoint is one Whittle estimate along the aggregation ladder.
type LadderPoint struct {
	M int
	WhittleResult
}

// WhittleLadder computes the Whittle estimate on the aggregated
// (optionally log-transformed) series for a log-spaced ladder of
// aggregation levels m, keeping at least minBlocks blocks per level.
// This is the paper's §3.2.3 plot of Ĥ(m) with confidence intervals
// against m.
func WhittleLadder(xs []float64, useLog bool, minBlocks int) ([]LadderPoint, error) {
	if minBlocks < 128 {
		minBlocks = 128
	}
	n := len(xs)
	maxM := n / minBlocks
	if maxM < 1 {
		return nil, fmt.Errorf("lrd: series of %d too short for a Whittle ladder: %w", n, errs.ErrInvalidSeries)
	}
	series := xs
	if useLog {
		var err error
		series, err = stats.LogSeries(xs)
		if err != nil {
			return nil, err
		}
	}
	var out []LadderPoint
	for _, m := range logSpacedInts(1, maxM, 12) {
		agg, err := stats.Aggregate(series, m)
		if err != nil {
			return nil, err
		}
		w, err := Whittle(agg)
		if err != nil {
			return nil, err
		}
		out = append(out, LadderPoint{M: m, WhittleResult: *w})
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("lrd: empty Whittle ladder: %w", errs.ErrInvalidSeries)
	}
	return out, nil
}

// WhittleStabilized implements the paper's procedure for choosing the
// final Whittle estimate: aggregation filters out high-frequency
// (short-range) structure, so Ĥ(m) starts biased by SRD components and
// settles as m crosses the short-range correlation scale. The estimate is
// read where the ladder stabilizes — here, the adjacent pair of
// largest-half ladder levels whose estimates differ least, averaged.
// Saturated values (Ĥ ≥ 0.98, the stationarity boundary) are never
// selected unless nothing else exists.
func WhittleStabilized(xs []float64, useLog bool) (*WhittleResult, error) {
	ladder, err := WhittleLadder(xs, useLog, 128)
	if err != nil {
		return nil, err
	}
	// Consider only non-saturated points.
	interior := make([]LadderPoint, 0, len(ladder))
	for _, p := range ladder {
		if p.H < 0.98 {
			interior = append(interior, p)
		}
	}
	if len(interior) == 0 {
		last := ladder[len(ladder)-1]
		return &last.WhittleResult, nil
	}
	if len(interior) == 1 {
		return &interior[0].WhittleResult, nil
	}
	// Among the larger-m half, pick the flattest adjacent pair.
	start := len(interior) / 2
	if start > len(interior)-2 {
		start = len(interior) - 2
	}
	bestI, bestD := start, math.Inf(1)
	for i := start; i < len(interior)-1; i++ {
		d := math.Abs(interior[i+1].H - interior[i].H)
		if d < bestD {
			bestD, bestI = d, i
		}
	}
	a, b := interior[bestI], interior[bestI+1]
	return &WhittleResult{
		H:      (a.H + b.H) / 2,
		StdErr: math.Max(a.StdErr, b.StdErr),
		CI95:   1.96 * math.Max(a.StdErr, b.StdErr),
	}, nil
}

// goldenMin minimizes f over [a, b] by golden-section search.
func goldenMin(f func(float64) float64, a, b, tol float64) float64 {
	const phi = 0.6180339887498949 // (√5-1)/2
	x1 := b - phi*(b-a)
	x2 := a + phi*(b-a)
	f1, f2 := f(x1), f(x2)
	for b-a > tol {
		if f1 < f2 {
			b, x2, f2 = x2, x1, f1
			x1 = b - phi*(b-a)
			f1 = f(x1)
		} else {
			a, x1, f1 = x1, x2, f2
			x2 = a + phi*(b-a)
			f2 = f(x2)
		}
	}
	return (a + b) / 2
}

// Canonical estimator names, shared by EstimateBy, the calibration
// battery, and the committed calibration table.
const (
	EstVarianceTime = "variance-time"
	EstRS           = "rs"
	EstPeriodogram  = "periodogram"
	EstWhittle      = "whittle"
	EstMAVAR        = "mavar"
)

// EstimatorNames lists the five primary estimators in canonical order.
var EstimatorNames = []string{EstVarianceTime, EstRS, EstPeriodogram, EstWhittle, EstMAVAR}

// EstimateBy runs one primary estimator under its canonical settings —
// the exact configuration the calibration battery characterizes, so the
// committed bias/variance cells apply to its output. Whittle here is
// the plain (unaggregated, untransformed) estimator.
func EstimateBy(name string, xs []float64) (float64, error) {
	switch name {
	case EstVarianceTime:
		r, err := VarianceTime(xs, 1, 0, 0)
		if err != nil {
			return math.NaN(), err
		}
		return r.H, nil
	case EstRS:
		r, err := RS(xs, 0, 25, 12, 0, 0)
		if err != nil {
			return math.NaN(), err
		}
		return r.H, nil
	case EstPeriodogram:
		r, err := PeriodogramH(xs, 0.1)
		if err != nil {
			return math.NaN(), err
		}
		return r.H, nil
	case EstWhittle:
		r, err := Whittle(xs)
		if err != nil {
			return math.NaN(), err
		}
		return r.H, nil
	case EstMAVAR:
		r, err := MAVAR(xs, 0, 0)
		if err != nil {
			return math.NaN(), err
		}
		return r.H, nil
	}
	return math.NaN(), fmt.Errorf("lrd: unknown estimator %q", name)
}

// HBar is one estimator's calibrated report: the raw point estimate
// under canonical settings, the bias-corrected value, and the ±1.96σ
// error bar — both read off the committed calibration table for the
// estimator at this series length. Bias and CI95 are NaN when the
// calibration grid has no applicable cell.
type HBar struct {
	Estimator string
	Raw       float64 // point estimate, canonical settings
	H         float64 // Raw − interpolated bias
	CI95      float64 // 1.96 × calibrated sample σ
}

// Estimates bundles every estimator's output on one series, mirroring
// Table 3 of the paper, plus the §3.2.3-style agreement check: the
// calibrated error bars of the five primary estimators.
type Estimates struct {
	VarianceTime float64
	RS           float64
	RSAggregated float64
	RSSweepMin   float64
	RSSweepMax   float64
	Whittle      float64
	WhittleCI95  float64
	Periodogram  float64
	MAVAR        float64

	// Bars holds the five primary estimators' bias-corrected estimates
	// with calibrated error bars, in EstimatorNames order. Note the
	// whittle bar is the plain Whittle estimator on the raw series (the
	// calibrated configuration), not the aggregated/log variant reported
	// in the Whittle field.
	Bars []HBar
}

// EstimateAll runs every Hurst estimator with the paper's settings
// (aggregation level aggM for the aggregated variants; the paper uses
// m in the hundreds) and collects the results.
func EstimateAll(xs []float64, aggM int) (*Estimates, error) {
	if aggM < 1 {
		return nil, fmt.Errorf("lrd: aggregation level must be ≥ 1, got %d", aggM)
	}
	out := &Estimates{}

	vt, err := VarianceTime(xs, 1, 0, 0)
	if err != nil {
		return nil, fmt.Errorf("variance-time: %w", err)
	}
	out.VarianceTime = vt.H

	rs, err := RS(xs, 0, 25, 12, 0, 0)
	if err != nil {
		return nil, fmt.Errorf("R/S: %w", err)
	}
	out.RS = rs.H

	rsa, err := RSAggregated(xs, aggM, 0, 20, 8)
	if err != nil {
		return nil, fmt.Errorf("aggregated R/S: %w", err)
	}
	out.RSAggregated = rsa.H

	lo, hi, err := RSSweep(xs, []int{15, 25, 40}, []int{6, 12, 24})
	if err != nil {
		return nil, fmt.Errorf("R/S sweep: %w", err)
	}
	out.RSSweepMin, out.RSSweepMax = lo, hi

	positive := true
	for _, v := range xs {
		if v <= 0 {
			positive = false
			break
		}
	}
	var wh *WhittleResult
	if positive {
		wh, err = WhittleAggregated(xs, aggM, true)
	} else {
		wh, err = WhittleAggregated(xs, aggM, false)
	}
	if err != nil {
		return nil, fmt.Errorf("Whittle: %w", err)
	}
	out.Whittle = wh.H
	out.WhittleCI95 = wh.CI95

	pg, err := PeriodogramH(xs, 0.1)
	if err != nil {
		return nil, fmt.Errorf("periodogram: %w", err)
	}
	out.Periodogram = pg.H

	mv, err := MAVAR(xs, 0, 0)
	if err != nil {
		return nil, fmt.Errorf("MAVAR: %w", err)
	}
	out.MAVAR = mv.H

	// Calibrated error bars for the five primary estimators. The raw
	// values above already use the canonical settings except Whittle,
	// which EstimateAll reports aggregated/log-transformed; its bar
	// re-runs the plain estimator the table was calibrated against. A
	// bar whose estimator fails on this series (e.g. plain Whittle on a
	// very short series) carries NaN rather than failing the bundle.
	cal := DefaultCalibration()
	raws := []float64{out.VarianceTime, out.RS, out.Periodogram, math.NaN(), out.MAVAR}
	if pw, err := Whittle(xs); err == nil {
		raws[3] = pw.H
	}
	out.Bars = make([]HBar, len(EstimatorNames))
	for i, name := range EstimatorNames {
		out.Bars[i] = cal.Bar(name, raws[i], len(xs))
	}

	return out, nil
}

// Median returns the median of the point estimates in e, a robust
// consensus value for reporting.
func (e *Estimates) Median() float64 {
	hs := []float64{e.VarianceTime, e.RS, e.RSAggregated, e.Whittle, e.Periodogram, e.MAVAR}
	sort.Float64s(hs)
	return hs[len(hs)/2]
}
