package lrd

import (
	"math"
	"math/rand/v2"
	"testing"

	"vbr/internal/fgn"
)

// fgnSeries caches test series so the expensive generators run once.
var seriesCache = map[float64][]float64{}

func testSeries(t testing.TB, h float64, n int) []float64 {
	t.Helper()
	if s, ok := seriesCache[h]; ok && len(s) >= n {
		return s[:n]
	}
	rng := rand.New(rand.NewPCG(uint64(h*1e6), 99))
	s, err := fgn.DaviesHarte(n, h, rng)
	if err != nil {
		t.Fatal(err)
	}
	seriesCache[h] = s
	return s
}

func whiteNoise(n int, seed uint64) []float64 {
	rng := rand.New(rand.NewPCG(seed, 1))
	xs := make([]float64, n)
	for i := range xs {
		xs[i] = rng.NormFloat64()
	}
	return xs
}

func TestVarianceTimeRecoversH(t *testing.T) {
	for _, h := range []float64{0.6, 0.8, 0.9} {
		xs := testSeries(t, h, 100000)
		res, err := VarianceTime(xs, 1, 0, 0)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(res.H-h) > 0.08 {
			t.Errorf("H=%v: variance-time estimate %v", h, res.H)
		}
		if len(res.Points) < 10 {
			t.Errorf("too few plot points: %d", len(res.Points))
		}
	}
}

func TestVarianceTimeWhiteNoise(t *testing.T) {
	xs := whiteNoise(100000, 7)
	res, err := VarianceTime(xs, 1, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	// i.i.d. data: β = 1, H = 0.5.
	if math.Abs(res.Beta-1) > 0.1 {
		t.Errorf("white noise β = %v, want 1", res.Beta)
	}
	if math.Abs(res.H-0.5) > 0.05 {
		t.Errorf("white noise H = %v, want 0.5", res.H)
	}
}

func TestVarianceTimeErrors(t *testing.T) {
	if _, err := VarianceTime(make([]float64, 50), 1, 0, 0); err == nil {
		t.Error("short series should fail")
	}
	if _, err := VarianceTime(make([]float64, 1000), 1, 0, 0); err == nil {
		t.Error("constant series should fail")
	}
}

func TestRSRecoversH(t *testing.T) {
	for _, h := range []float64{0.6, 0.8} {
		xs := testSeries(t, h, 100000)
		res, err := RS(xs, 16, 25, 12, 0, 0)
		if err != nil {
			t.Fatal(err)
		}
		// R/S has known small-sample transient bias toward 0.5-0.6 for
		// short lags; allow a wider band but require clear separation
		// from 0.5 for persistent series.
		if math.Abs(res.H-h) > 0.12 {
			t.Errorf("H=%v: R/S estimate %v", h, res.H)
		}
		if len(res.Points) == 0 {
			t.Error("no pox points")
		}
	}
}

func TestRSWhiteNoiseNearHalf(t *testing.T) {
	xs := whiteNoise(100000, 13)
	res, err := RS(xs, 32, 25, 12, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Small-sample R/S is biased slightly above 0.5 (Feller transient).
	if res.H < 0.45 || res.H > 0.65 {
		t.Errorf("white noise R/S H = %v", res.H)
	}
}

func TestRSStatisticHandCase(t *testing.T) {
	// xs = {1, 2, 3}: mean 2, W = {-1, -1, 0}; R = max(0,W)-min(0,W) = 1.
	// S = sqrt(2/3).
	rs, ok := rsStatistic([]float64{1, 2, 3})
	if !ok {
		t.Fatal("statistic undefined")
	}
	want := 1.0 / math.Sqrt(2.0/3.0)
	if math.Abs(rs-want) > 1e-12 {
		t.Errorf("R/S = %v, want %v", rs, want)
	}
	if _, ok := rsStatistic([]float64{5}); ok {
		t.Error("single point should be undefined")
	}
	if _, ok := rsStatistic([]float64{3, 3, 3}); ok {
		t.Error("constant block should be undefined (S=0)")
	}
}

func TestRSAggregatedCloseToPlain(t *testing.T) {
	xs := testSeries(t, 0.8, 100000)
	plain, err := RS(xs, 16, 25, 12, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	agg, err := RSAggregated(xs, 10, 0, 20, 8)
	if err != nil {
		t.Fatal(err)
	}
	// Self-similarity: aggregation must not change H much.
	if math.Abs(plain.H-agg.H) > 0.15 {
		t.Errorf("plain %v vs aggregated %v", plain.H, agg.H)
	}
}

func TestRSSweepRobust(t *testing.T) {
	xs := testSeries(t, 0.8, 60000)
	lo, hi, err := RSSweep(xs, []int{15, 30}, []int{8, 16})
	if err != nil {
		t.Fatal(err)
	}
	if lo > hi {
		t.Errorf("sweep inverted: %v > %v", lo, hi)
	}
	// Robustness claim of Table 3: spread should be small.
	if hi-lo > 0.15 {
		t.Errorf("sweep spread too wide: [%v, %v]", lo, hi)
	}
	if _, _, err := RSSweep(xs, nil, []int{8}); err == nil {
		t.Error("empty sweep should fail")
	}
}

func TestPeriodogramHRecovers(t *testing.T) {
	xs := testSeries(t, 0.8, 100000)
	res, err := PeriodogramH(xs, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.H-0.8) > 0.1 {
		t.Errorf("periodogram H = %v", res.H)
	}
	if res.Used < 5 {
		t.Errorf("too few ordinates used: %d", res.Used)
	}
	if _, err := PeriodogramH(xs, 0); err == nil {
		t.Error("lowFrac 0 should fail")
	}
	if _, err := PeriodogramH(make([]float64, 8), 0.5); err == nil {
		t.Error("short series should fail")
	}
}

func TestPeriodogramHWhiteNoise(t *testing.T) {
	xs := whiteNoise(100000, 23)
	res, err := PeriodogramH(xs, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.H-0.5) > 0.08 {
		t.Errorf("white noise periodogram H = %v", res.H)
	}
}

func TestWhittleRecoversH(t *testing.T) {
	// Whittle on fARIMA data (its own model) should be tight.
	rng := rand.New(rand.NewPCG(31, 32))
	xs, err := fgn.Hosking(20000, 0.8, rng)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Whittle(xs)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.H-0.8) > 3*res.StdErr+0.02 {
		t.Errorf("Whittle H = %v ± %v, want 0.8", res.H, res.StdErr)
	}
	// Asymptotic SE formula check: σ = sqrt(6/(π² n)).
	want := math.Sqrt(6 / (math.Pi * math.Pi * 20000))
	if math.Abs(res.StdErr-want) > 0.05*want {
		t.Errorf("Whittle SE = %v, want %v", res.StdErr, want)
	}
	if math.Abs(res.CI95-1.96*res.StdErr) > 1e-12 {
		t.Error("CI95 must be 1.96·SE")
	}
}

func TestWhittleWhiteNoise(t *testing.T) {
	xs := whiteNoise(20000, 37)
	res, err := Whittle(xs)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.H-0.5) > 3*res.StdErr+0.01 {
		t.Errorf("white noise Whittle H = %v ± %v", res.H, res.StdErr)
	}
}

func TestWhittleErrors(t *testing.T) {
	if _, err := Whittle(make([]float64, 64)); err == nil {
		t.Error("short series should fail")
	}
}

func TestWhittleAggregated(t *testing.T) {
	xs := testSeries(t, 0.8, 100000)
	// Shift positive so the log transform is defined.
	shifted := make([]float64, len(xs))
	for i, v := range xs {
		shifted[i] = math.Exp(v*0.25 + 3)
	}
	res, err := WhittleAggregated(shifted, 50, true)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.H-0.8) > 0.12 {
		t.Errorf("aggregated Whittle H = %v", res.H)
	}
	if _, err := WhittleAggregated([]float64{-1, 2, 3}, 1, true); err == nil {
		t.Error("log of nonpositive data should fail")
	}
	if _, err := WhittleAggregated(xs, 0, false); err == nil {
		t.Error("aggregation 0 should fail")
	}
}

func TestWhittleLadder(t *testing.T) {
	xs := testSeries(t, 0.8, 60000)
	ladder, err := WhittleLadder(xs, false, 128)
	if err != nil {
		t.Fatal(err)
	}
	if len(ladder) < 5 {
		t.Fatalf("ladder has %d points", len(ladder))
	}
	prevM := 0
	for _, p := range ladder {
		if p.M <= prevM {
			t.Fatalf("ladder not increasing in m: %d after %d", p.M, prevM)
		}
		prevM = p.M
		// CIs widen as aggregation shrinks the sample.
		if p.H < 0.4 || p.H > 1.0 {
			t.Errorf("m=%d: H=%v implausible for true H=0.8", p.M, p.H)
		}
		if p.CI95 <= 0 {
			t.Errorf("m=%d: missing CI", p.M)
		}
	}
	for i := 1; i < len(ladder); i++ {
		if ladder[i].CI95 < ladder[i-1].CI95 {
			t.Errorf("CI shrank with aggregation at m=%d", ladder[i].M)
		}
	}
	// Log-transform path with positive data.
	pos := make([]float64, len(xs))
	for i, v := range xs {
		pos[i] = math.Exp(0.25 * v)
	}
	if _, err := WhittleLadder(pos, true, 128); err != nil {
		t.Fatal(err)
	}
	// Errors.
	if _, err := WhittleLadder(make([]float64, 64), false, 128); err == nil {
		t.Error("short series should fail")
	}
	if _, err := WhittleLadder([]float64{-1, 1}, true, 128); err == nil {
		t.Error("log of negative data should fail")
	}
}

func TestWhittleStabilizedOnPureFGN(t *testing.T) {
	// On exactly self-similar input the ladder is flat, so the
	// stabilized estimate should match the plain Whittle estimate and
	// the truth.
	xs := testSeries(t, 0.8, 60000)
	res, err := WhittleStabilized(xs, false)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.H-0.8) > 0.08 {
		t.Errorf("stabilized H = %v, want 0.8", res.H)
	}
	if res.CI95 <= 0 {
		t.Error("missing CI")
	}
}

func TestWhittleStabilizedFiltersSRD(t *testing.T) {
	// A strongly low-passed process (heavy AR(1) on top of LRD) saturates
	// full-resolution Whittle; the stabilized ladder must land closer to
	// the backbone H than the m=1 estimate does.
	rng := rand.New(rand.NewPCG(51, 52))
	base, err := fgn.DaviesHarte(80000, 0.8, rng)
	if err != nil {
		t.Fatal(err)
	}
	xs := make([]float64, len(base))
	ar := 0.0
	for i, v := range base {
		ar = 0.95*ar + 0.3*rng.NormFloat64()
		xs[i] = v + ar
	}
	plain, err := Whittle(xs)
	if err != nil {
		t.Fatal(err)
	}
	stab, err := WhittleStabilized(xs, false)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(stab.H-0.8) > math.Abs(plain.H-0.8)+0.02 {
		t.Errorf("stabilized (%v) no better than plain (%v) for true 0.8", stab.H, plain.H)
	}
}

func TestEstimateAllConsensus(t *testing.T) {
	xs := testSeries(t, 0.8, 100000)
	shifted := make([]float64, len(xs))
	for i, v := range xs {
		shifted[i] = math.Exp(v*0.25 + 3)
	}
	est, err := EstimateAll(shifted, 50)
	if err != nil {
		t.Fatal(err)
	}
	med := est.Median()
	if math.Abs(med-0.8) > 0.1 {
		t.Errorf("consensus H = %v (estimates %+v)", med, est)
	}
	// Every individual estimator should land in a broad sane band.
	for name, h := range map[string]float64{
		"variance-time": est.VarianceTime,
		"R/S":           est.RS,
		"R/S agg":       est.RSAggregated,
		"Whittle":       est.Whittle,
		"periodogram":   est.Periodogram,
	} {
		if h < 0.6 || h > 1.0 {
			t.Errorf("%s estimate %v far from 0.8", name, h)
		}
	}
	if est.RSSweepMin > est.RSSweepMax {
		t.Error("sweep range inverted")
	}
	if _, err := EstimateAll(xs, 0); err == nil {
		t.Error("aggM 0 should fail")
	}
}

func TestEstimatorsDistinguishSRDFromLRD(t *testing.T) {
	// The central claim of §3.2: estimators must separate an SRD process
	// (AR(1), exponential acf) from an LRD one even when the AR(1) has
	// strong short-range correlation.
	rng := rand.New(rand.NewPCG(41, 43))
	n := 100000
	ar := make([]float64, n)
	v := 0.0
	for i := range ar {
		v = 0.7*v + rng.NormFloat64()
		ar[i] = v
	}
	vtAR, err := VarianceTime(ar, 50, 50, 0) // fit beyond the AR correlation length
	if err != nil {
		t.Fatal(err)
	}
	lrdSeries := testSeries(t, 0.85, n)
	vtLRD, err := VarianceTime(lrdSeries, 50, 50, 0)
	if err != nil {
		t.Fatal(err)
	}
	if vtAR.H > 0.65 {
		t.Errorf("AR(1) misclassified as LRD: H = %v", vtAR.H)
	}
	if vtLRD.H < 0.7 {
		t.Errorf("LRD series misclassified: H = %v", vtLRD.H)
	}
}

func TestGoldenMin(t *testing.T) {
	x := goldenMin(func(x float64) float64 { return (x - 1.3) * (x - 1.3) }, -5, 5, 1e-12)
	if math.Abs(x-1.3) > 1e-9 {
		t.Errorf("golden min found %v, want 1.3", x)
	}
}

func TestRegressErrors(t *testing.T) {
	if _, err := regress([]float64{1}, []float64{2}); err == nil {
		t.Error("single point should fail")
	}
	if _, err := regress([]float64{1, 1}, []float64{2, 3}); err == nil {
		t.Error("constant x should fail")
	}
	s, err := regress([]float64{0, 1, 2}, []float64{1, 3, 5})
	if err != nil || math.Abs(s-2) > 1e-12 {
		t.Errorf("slope %v err %v", s, err)
	}
}

func TestLogSpacedInts(t *testing.T) {
	v := logSpacedInts(1, 1000, 10)
	if len(v) == 0 || v[0] != 1 {
		t.Fatalf("bad spacing %v", v)
	}
	for i := 1; i < len(v); i++ {
		if v[i] <= v[i-1] {
			t.Fatalf("not strictly increasing: %v", v)
		}
		if v[i] > 1000 {
			t.Fatalf("exceeds hi: %v", v)
		}
	}
	if logSpacedInts(10, 5, 3) != nil {
		t.Error("hi < lo should be nil")
	}
}
