package lrd

import (
	"math"
	"testing"
)

// TestEstimatorAffineInvariance: Ĥ measures correlation structure, so
// every estimator must be invariant (up to numerical noise) under the
// affine map x ↦ a·x + b with a > 0 — rescaling the units or shifting
// the baseline of a trace cannot change its Hurst parameter. The
// variance-based estimators are exactly invariant analytically; the
// spectral ones admit slightly more floating-point drift through the
// FFT, hence the per-estimator tolerances.
func TestEstimatorAffineInvariance(t *testing.T) {
	xs := testSeries(t, 0.8, 4096)
	tol := map[string]float64{
		EstVarianceTime: 1e-9,
		EstRS:           1e-9,
		EstMAVAR:        1e-9,
		EstPeriodogram:  1e-6,
		EstWhittle:      1e-6,
	}
	for _, a := range []float64{0.004, 3.75} {
		for _, b := range []float64{0, -2.5, 117} {
			mapped := make([]float64, len(xs))
			for i, v := range xs {
				mapped[i] = a*v + b
			}
			for _, name := range EstimatorNames {
				h0, err := EstimateBy(name, xs)
				if err != nil {
					t.Fatalf("%s on base series: %v", name, err)
				}
				h1, err := EstimateBy(name, mapped)
				if err != nil {
					t.Fatalf("%s on %g·x%+g: %v", name, a, b, err)
				}
				if d := math.Abs(h1 - h0); d > tol[name] {
					t.Errorf("%s not affine invariant: Ĥ(x)=%v, Ĥ(%g·x%+g)=%v (|Δ|=%.2e > %g)",
						name, h0, a, b, h1, d, tol[name])
				}
			}
		}
	}
}

// TestOnlineMAVARMatchesBatch: the batch MAVAR entry point is defined
// as feeding the whole series through the same per-octave accumulators
// the streaming form uses, so an OnlineMAVAR fed any block partition of
// the series must reproduce the batch result bit for bit — the
// streaming monitor's Ĥ is the committed estimator, not an
// approximation of it.
func TestOnlineMAVARMatchesBatch(t *testing.T) {
	xs := testSeries(t, 0.8, 10_000)
	batch, err := MAVAR(xs, 0, 0)
	if err != nil {
		t.Fatalf("batch MAVAR: %v", err)
	}
	for _, block := range []int{1, 7, 256, 4096, len(xs)} {
		o := NewOnlineMAVAR(MaxMavarTau(len(xs)))
		for lo := 0; lo < len(xs); lo += block {
			hi := lo + block
			if hi > len(xs) {
				hi = len(xs)
			}
			for _, v := range xs[lo:hi] {
				o.Add(v)
			}
		}
		r, err := o.Result(0, 0)
		if err != nil {
			t.Fatalf("block=%d: Result: %v", block, err)
		}
		if math.Float64bits(r.H) != math.Float64bits(batch.H) ||
			math.Float64bits(r.Mu) != math.Float64bits(batch.Mu) {
			t.Fatalf("block=%d: online Ĥ=%v µ=%v, batch Ĥ=%v µ=%v — not bitwise equal",
				block, r.H, r.Mu, batch.H, batch.Mu)
		}
		if r.FitLo != batch.FitLo || r.FitHi != batch.FitHi || r.Octaves != batch.Octaves ||
			len(r.Points) != len(batch.Points) {
			t.Fatalf("block=%d: result shape differs: %+v vs %+v", block, r, batch)
		}
		for i := range r.Points {
			if r.Points[i].Tau != batch.Points[i].Tau ||
				r.Points[i].Windows != batch.Points[i].Windows ||
				math.Float64bits(r.Points[i].ModVar) != math.Float64bits(batch.Points[i].ModVar) {
				t.Fatalf("block=%d: point %d differs: %+v vs %+v", block, i, r.Points[i], batch.Points[i])
			}
		}
		h, oct := o.Estimate()
		if math.Float64bits(h) != math.Float64bits(batch.H) || oct != batch.Octaves {
			t.Fatalf("block=%d: Estimate()=(%v, %d), want (%v, %d)", block, h, oct, batch.H, batch.Octaves)
		}
	}
}

// TestOnlineMAVARHotpathAllocFree pins the O(1)-memory streaming
// contract: once constructed, neither the per-observation Add nor the
// snapshot Estimate may allocate.
func TestOnlineMAVARHotpathAllocFree(t *testing.T) {
	o := NewOnlineMAVAR(1 << 16)
	for i := 0; i < 1<<12; i++ {
		o.Add(float64(i % 97))
	}
	if allocs := testing.AllocsPerRun(200, func() { o.Add(1.0) }); allocs != 0 {
		t.Errorf("OnlineMAVAR.Add allocates %v per observation, want 0", allocs)
	}
	var h float64
	var oct int
	if allocs := testing.AllocsPerRun(200, func() { h, oct = o.Estimate() }); allocs != 0 {
		t.Errorf("OnlineMAVAR.Estimate allocates %v per call, want 0", allocs)
	}
	if math.IsNaN(h) || oct < 2 {
		t.Fatalf("Estimate() = (%v, %d) after warmup", h, oct)
	}
}
