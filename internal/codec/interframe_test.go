package codec

import (
	"math"
	"testing"

	"vbr/internal/stats"
)

func interTestConfig() InterCoderConfig {
	return InterCoderConfig{
		CoderConfig: CoderConfig{Width: 64, Height: 64, SlicesPerFrame: 4, QuantStep: 8},
		GOPSize:     6,
		SearchRange: 2,
	}
}

func TestInterCoderConfigValidation(t *testing.T) {
	good := interTestConfig()
	if _, err := NewInterCoder(good); err != nil {
		t.Fatal(err)
	}
	bad := good
	bad.GOPSize = 0
	if _, err := NewInterCoder(bad); err == nil {
		t.Error("GOP 0 should fail")
	}
	bad = good
	bad.SearchRange = -1
	if _, err := NewInterCoder(bad); err == nil {
		t.Error("negative search range should fail")
	}
	bad = good
	bad.Width = 13
	if _, err := NewInterCoder(bad); err == nil {
		t.Error("bad dimensions should fail")
	}
	if err := DefaultInterCoderConfig().validate(); err != nil {
		t.Errorf("default config invalid: %v", err)
	}
}

// renderSequence produces a short scene with slow motion.
func renderSequence(t *testing.T, n int, activity float64) []*Frame {
	t.Helper()
	frames := make([]*Frame, n)
	for i := range frames {
		f, err := NewFrame(64, 64)
		if err != nil {
			t.Fatal(err)
		}
		if err := RenderFrame(f, RenderParams{Activity: activity, SceneID: 99, FrameInScene: i}); err != nil {
			t.Fatal(err)
		}
		frames[i] = f
	}
	return frames
}

func TestPFramesSmallerThanIFrames(t *testing.T) {
	// The defining property of interframe coding: predicted frames of a
	// static-ish scene cost far fewer bits than intra frames.
	coder, err := NewInterCoder(interTestConfig())
	if err != nil {
		t.Fatal(err)
	}
	seq := renderSequence(t, 12, 0.5)
	if err := coder.TrainOn(seq); err != nil {
		t.Fatal(err)
	}
	coder.Reset()
	var iBits, pBits, iCnt, pCnt int
	for i, f := range seq {
		bits, intra, err := coder.CodeFrame(f, i)
		if err != nil {
			t.Fatal(err)
		}
		var total int
		for _, b := range bits {
			total += b
		}
		if intra {
			iBits += total
			iCnt++
		} else {
			pBits += total
			pCnt++
		}
		if (i%6 == 0) != intra {
			t.Fatalf("frame %d intra flag %v inconsistent with GOP", i, intra)
		}
	}
	if iCnt == 0 || pCnt == 0 {
		t.Fatal("missing frame types")
	}
	avgI := float64(iBits) / float64(iCnt)
	avgP := float64(pBits) / float64(pCnt)
	if avgP >= 0.7*avgI {
		t.Errorf("P frames (%.0f bits) not much smaller than I frames (%.0f bits)", avgP, avgI)
	}
}

func TestMotionCompensationHelps(t *testing.T) {
	// With the renderer's phase drift, motion search should reduce
	// P-frame bits relative to pure differencing.
	seq := renderSequence(t, 8, 0.6)
	code := func(search int) float64 {
		cfg := interTestConfig()
		cfg.SearchRange = search
		coder, err := NewInterCoder(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if err := coder.TrainOn(seq); err != nil {
			t.Fatal(err)
		}
		coder.Reset()
		var pBits int
		for i, f := range seq {
			bits, intra, err := coder.CodeFrame(f, i)
			if err != nil {
				t.Fatal(err)
			}
			if intra {
				continue
			}
			for _, b := range bits {
				pBits += b
			}
		}
		return float64(pBits)
	}
	noMC := code(0)
	withMC := code(3)
	if withMC >= noMC {
		t.Errorf("motion compensation did not reduce bits: %v vs %v", withMC, noMC)
	}
}

func TestBestMotionFindsTranslation(t *testing.T) {
	// Construct cur as ref shifted by (+2, +1): the search must find it.
	cfg := interTestConfig()
	coder, err := NewInterCoder(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ref := make([]float64, 64*64)
	for y := 0; y < 64; y++ {
		for x := 0; x < 64; x++ {
			ref[y*64+x] = float64((x*7 + y*13) % 251)
		}
	}
	cur, _ := NewFrame(64, 64)
	for y := 0; y < 64; y++ {
		for x := 0; x < 64; x++ {
			sx, sy := x+2, y+1
			if sx >= 64 {
				sx -= 64
			}
			if sy >= 64 {
				sy -= 64
			}
			cur.Pix[y*64+x] = uint8(int(ref[sy*64+sx]))
		}
	}
	// An interior block away from wrap edges.
	dx, dy := coder.bestMotion(ref, cur, 24, 24)
	if dx != 2 || dy != 1 {
		t.Errorf("motion (%d,%d), want (2,1)", dx, dy)
	}
}

func TestInterframeTraceSignatures(t *testing.T) {
	// End-to-end: the interframe trace must show (1) better compression
	// than intraframe on the same material and (2) GOP-periodic rate
	// oscillation (autocorrelation peak at the GOP lag).
	scfg := synthSmall()
	scfg.Frames = 240

	intra, err := NewCoder(CoderConfig{Width: 64, Height: 64, SlicesPerFrame: 4, QuantStep: 8})
	if err != nil {
		t.Fatal(err)
	}
	intraTr, err := intra.GenerateTrace(scfg, 12)
	if err != nil {
		t.Fatal(err)
	}

	icfg := interTestConfig()
	inter, err := NewInterCoder(icfg)
	if err != nil {
		t.Fatal(err)
	}
	interTr, err := inter.GenerateTrace(scfg, 24)
	if err != nil {
		t.Fatal(err)
	}

	mi := stats.Mean(intraTr.Frames)
	mp := stats.Mean(interTr.Frames)
	if mp >= 0.8*mi {
		t.Errorf("interframe mean %v not well below intraframe %v", mp, mi)
	}

	// GOP periodicity: acf at the GOP lag exceeds acf at GOP±2 lags.
	r, err := stats.Autocorrelation(interTr.Frames, 20)
	if err != nil {
		t.Fatal(err)
	}
	gop := icfg.GOPSize
	if !(r[gop] > r[gop-2] && r[gop] > r[gop+2]) {
		t.Errorf("no GOP periodicity: r[%d]=%v r[%d]=%v r[%d]=%v",
			gop-2, r[gop-2], gop, r[gop], gop+2, r[gop+2])
	}

	// Higher burstiness (peak/mean) than intraframe, per §2.
	si, err := stats.Summarize(intraTr.Frames)
	if err != nil {
		t.Fatal(err)
	}
	sp, err := stats.Summarize(interTr.Frames)
	if err != nil {
		t.Fatal(err)
	}
	if sp.PeakMean <= si.PeakMean {
		t.Errorf("interframe peak/mean %v not above intraframe %v", sp.PeakMean, si.PeakMean)
	}

	if _, err := inter.GenerateTrace(scfg, 0); err == nil {
		t.Error("0 training frames should fail")
	}
}

func TestCodeFrameSizeMismatch(t *testing.T) {
	coder, _ := NewInterCoder(interTestConfig())
	small, _ := NewFrame(32, 32)
	if _, _, err := coder.CodeFrame(small, 0); err == nil {
		t.Error("size mismatch should fail")
	}
}

func TestIntLog2(t *testing.T) {
	cases := map[int]int{1: 1, 2: 1, 3: 2, 4: 2, 5: 3, 8: 3, 9: 4, 17: 5}
	for n, want := range cases {
		if got := intLog2(n); got != want {
			t.Errorf("intLog2(%d) = %d, want %d", n, got, want)
		}
	}
}

func TestTrainOnEmpty(t *testing.T) {
	coder, _ := NewInterCoder(interTestConfig())
	if err := coder.TrainOn(nil); err == nil {
		t.Error("empty training set should fail")
	}
}

func TestInterframeDeterminism(t *testing.T) {
	scfg := synthSmall()
	scfg.Frames = 60
	gen := func() []float64 {
		coder, err := NewInterCoder(interTestConfig())
		if err != nil {
			t.Fatal(err)
		}
		tr, err := coder.GenerateTrace(scfg, 12)
		if err != nil {
			t.Fatal(err)
		}
		return tr.Frames
	}
	a, b := gen(), gen()
	for i := range a {
		if math.Abs(a[i]-b[i]) > 0 {
			t.Fatal("interframe trace generation not deterministic")
		}
	}
}
