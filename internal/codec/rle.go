package codec

// RunLevel is one run-length symbol: Run zero coefficients followed by a
// nonzero coefficient of the given Level. The special symbol {Run: -1}
// is EOB (end of block: all remaining coefficients are zero).
type RunLevel struct {
	Run   int
	Level int32
}

// EOB is the end-of-block marker symbol.
var EOB = RunLevel{Run: -1}

// RunLengthEncode converts zigzag-ordered quantized levels to (run, level)
// symbols, terminating with EOB when the tail is all zeros. The first
// coefficient (DC) is included in the same stream, matching the paper's
// minimal description (no separate DC predictor; the code is intraframe
// and frame-independent).
func RunLengthEncode(levels *[BlockSize * BlockSize]int32, out []RunLevel) []RunLevel {
	run := 0
	lastNonzero := -1
	for i := BlockSize*BlockSize - 1; i >= 0; i-- {
		if levels[i] != 0 {
			lastNonzero = i
			break
		}
	}
	for i := 0; i <= lastNonzero; i++ {
		if levels[i] == 0 {
			run++
			continue
		}
		out = append(out, RunLevel{Run: run, Level: levels[i]})
		run = 0
	}
	out = append(out, EOB)
	return out
}

// RunLengthDecode expands symbols back to zigzag-ordered levels. It
// returns false if the symbols overflow the block or lack an EOB.
func RunLengthDecode(symbols []RunLevel, out *[BlockSize * BlockSize]int32) bool {
	for i := range out {
		out[i] = 0
	}
	pos := 0
	for _, s := range symbols {
		if s.Run < 0 { // EOB
			return true
		}
		pos += s.Run
		if pos >= len(out) {
			return false
		}
		out[pos] = s.Level
		pos++
	}
	return false
}
