package codec

import (
	"container/heap"
	"fmt"
	"sort"
)

// The symbol alphabet for entropy coding follows the JPEG convention the
// paper's coder is modeled on: each (run, level) pair becomes a
// (run, size) symbol — size being the number of amplitude bits of |level|
// — followed by `size` raw amplitude bits. Two special symbols exist:
// EOB (end of block) and ZRL (a run of 16 zeros with no level).
const (
	symEOB = 0
	symZRL = 1
	// (run 0..15, size 1..maxSize) symbols follow.
	maxRun  = 15
	maxSize = 16
	numSyms = 2 + (maxRun+1)*maxSize
)

// sizeOf returns the JPEG "size" category of a level: the number of bits
// in |level|. Level 0 has no size category (it is never coded directly).
func sizeOf(level int32) int {
	if level < 0 {
		level = -level
	}
	n := 0
	for level > 0 {
		n++
		level >>= 1
	}
	return n
}

// symbolOf maps a RunLevel to its alphabet index, returning the symbol
// and how many ZRL prefixes are needed for runs > 15.
func symbolOf(rl RunLevel) (zrls int, sym int, ampBits int, err error) {
	if rl.Run < 0 {
		return 0, symEOB, 0, nil
	}
	size := sizeOf(rl.Level)
	if size == 0 {
		return 0, 0, 0, fmt.Errorf("codec: zero level in run-length symbol")
	}
	if size > maxSize {
		return 0, 0, 0, fmt.Errorf("codec: level %d exceeds %d-bit amplitude limit", rl.Level, maxSize)
	}
	zrls = rl.Run / (maxRun + 1)
	run := rl.Run % (maxRun + 1)
	return zrls, 2 + run*maxSize + (size - 1), size, nil
}

// HuffmanTable is a canonical Huffman code over the coder's alphabet.
type HuffmanTable struct {
	lengths [numSyms]uint8
	codes   [numSyms]uint32
	// decode acceleration: sorted (length, code) → symbol.
	firstCode  [33]uint32 // first canonical code of each length
	firstIndex [33]int    // index into symsByCode of that code
	counts     [33]int    // number of codes of each length
	symsByCode []int
}

type huffNode struct {
	freq        uint64
	sym         int // -1 for internal
	left, right *huffNode
}

type huffHeap []*huffNode

func (h huffHeap) Len() int      { return len(h) }
func (h huffHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h huffHeap) Less(i, j int) bool {
	if h[i].freq != h[j].freq {
		return h[i].freq < h[j].freq
	}
	return h[i].sym < h[j].sym // deterministic tie-break
}
func (h *huffHeap) Push(x any) { *h = append(*h, x.(*huffNode)) }
func (h *huffHeap) Pop() any {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// NewHuffmanTable builds a canonical Huffman code from symbol frequencies.
// Every symbol is given frequency ≥ 1 so the code is complete (any symbol
// can be coded even if unseen in training), mirroring a static JPEG-style
// table trained on representative material.
func NewHuffmanTable(freq []uint64) (*HuffmanTable, error) {
	if len(freq) != numSyms {
		return nil, fmt.Errorf("codec: frequency table has %d entries, want %d", len(freq), numSyms)
	}
	h := make(huffHeap, 0, numSyms)
	for s := 0; s < numSyms; s++ {
		f := freq[s]
		if f == 0 {
			f = 1
		}
		h = append(h, &huffNode{freq: f, sym: s})
	}
	heap.Init(&h)
	for h.Len() > 1 {
		a := heap.Pop(&h).(*huffNode)
		b := heap.Pop(&h).(*huffNode)
		heap.Push(&h, &huffNode{freq: a.freq + b.freq, sym: -1, left: a, right: b})
	}
	root := h[0]

	t := &HuffmanTable{}
	var walk func(n *huffNode, depth uint8)
	walk = func(n *huffNode, depth uint8) {
		if n.sym >= 0 {
			if depth == 0 {
				depth = 1 // degenerate single-symbol alphabet
			}
			t.lengths[n.sym] = depth
			return
		}
		walk(n.left, depth+1)
		walk(n.right, depth+1)
	}
	walk(root, 0)
	t.assignCanonical()
	return t, nil
}

// assignCanonical derives canonical codes from the lengths and builds the
// decoding index.
func (t *HuffmanTable) assignCanonical() {
	type symLen struct{ sym, length int }
	order := make([]symLen, 0, numSyms)
	for s, l := range t.lengths {
		if l > 0 {
			order = append(order, symLen{s, int(l)})
		}
	}
	sort.Slice(order, func(i, j int) bool {
		if order[i].length != order[j].length {
			return order[i].length < order[j].length
		}
		return order[i].sym < order[j].sym
	})
	t.symsByCode = make([]int, len(order))
	code := uint32(0)
	prevLen := 0
	for i, sl := range order {
		code <<= uint(sl.length - prevLen)
		if prevLen != sl.length {
			t.firstCode[sl.length] = code
			t.firstIndex[sl.length] = i
			prevLen = sl.length
		}
		t.codes[sl.sym] = code
		t.symsByCode[i] = sl.sym
		t.counts[sl.length]++
		code++
	}
}

// CodeLength returns the bit length of a symbol's code.
func (t *HuffmanTable) CodeLength(sym int) int { return int(t.lengths[sym]) }

// BitWriter accumulates a MSB-first bitstream.
type BitWriter struct {
	buf  []byte
	bits uint8 // bits used in the last byte
}

// WriteBits appends the low `n` bits of v, MSB first.
func (w *BitWriter) WriteBits(v uint32, n int) {
	for i := n - 1; i >= 0; i-- {
		bit := (v >> uint(i)) & 1
		if w.bits == 0 {
			w.buf = append(w.buf, 0)
		}
		w.buf[len(w.buf)-1] |= byte(bit) << (7 - w.bits)
		w.bits = (w.bits + 1) % 8
	}
}

// Len returns the number of bits written.
func (w *BitWriter) Len() int {
	if len(w.buf) == 0 {
		return 0
	}
	if w.bits == 0 {
		return len(w.buf) * 8
	}
	return (len(w.buf)-1)*8 + int(w.bits)
}

// Bytes returns the padded bitstream.
func (w *BitWriter) Bytes() []byte { return w.buf }

// BitReader consumes a MSB-first bitstream.
type BitReader struct {
	buf []byte
	pos int // bit position
}

// NewBitReader wraps buf.
func NewBitReader(buf []byte) *BitReader { return &BitReader{buf: buf} }

// ReadBit returns the next bit, or an error at end of stream.
func (r *BitReader) ReadBit() (uint32, error) {
	if r.pos >= len(r.buf)*8 {
		return 0, fmt.Errorf("codec: bitstream exhausted")
	}
	b := (r.buf[r.pos/8] >> (7 - uint(r.pos%8))) & 1
	r.pos++
	return uint32(b), nil
}

// ReadBits reads n bits MSB-first.
func (r *BitReader) ReadBits(n int) (uint32, error) {
	var v uint32
	for i := 0; i < n; i++ {
		b, err := r.ReadBit()
		if err != nil {
			return 0, err
		}
		v = v<<1 | b
	}
	return v, nil
}

// EncodeSymbols Huffman-codes a run-level symbol stream into w, returning
// the number of bits emitted.
func (t *HuffmanTable) EncodeSymbols(symbols []RunLevel, w *BitWriter) (int, error) {
	start := w.Len()
	for _, rl := range symbols {
		zrls, sym, ampBits, err := symbolOf(rl)
		if err != nil {
			return 0, err
		}
		for z := 0; z < zrls; z++ {
			w.WriteBits(t.codes[symZRL], int(t.lengths[symZRL]))
		}
		w.WriteBits(t.codes[sym], int(t.lengths[sym]))
		if ampBits > 0 {
			w.WriteBits(amplitudeBits(rl.Level, ampBits), ampBits)
		}
	}
	return w.Len() - start, nil
}

// CountBits returns the number of bits EncodeSymbols would emit, without
// materializing the stream — the fast path used for trace generation.
func (t *HuffmanTable) CountBits(symbols []RunLevel) (int, error) {
	var bits int
	for _, rl := range symbols {
		zrls, sym, ampBits, err := symbolOf(rl)
		if err != nil {
			return 0, err
		}
		bits += zrls*int(t.lengths[symZRL]) + int(t.lengths[sym]) + ampBits
	}
	return bits, nil
}

// amplitudeBits encodes a nonzero level in JPEG style: positive levels as
// themselves, negative levels as level + 2^size - 1 (one's complement).
func amplitudeBits(level int32, size int) uint32 {
	if level >= 0 {
		return uint32(level)
	}
	return uint32(level + (1 << uint(size)) - 1)
}

// decodeAmplitude reverses amplitudeBits.
func decodeAmplitude(bits uint32, size int) int32 {
	if size == 0 {
		return 0
	}
	if bits>>(uint(size)-1) == 1 { // leading 1: positive
		return int32(bits)
	}
	return int32(bits) - (1 << uint(size)) + 1
}

// DecodeSymbols reads run-level symbols until an EOB, reconstructing the
// stream produced by EncodeSymbols for one block.
func (t *HuffmanTable) DecodeSymbols(r *BitReader) ([]RunLevel, error) {
	var out []RunLevel
	pendingRun := 0
	for {
		sym, err := t.decodeOne(r)
		if err != nil {
			return nil, err
		}
		switch {
		case sym == symEOB:
			out = append(out, EOB)
			return out, nil
		case sym == symZRL:
			pendingRun += maxRun + 1
		default:
			idx := sym - 2
			run := idx / maxSize
			size := idx%maxSize + 1
			bits, err := r.ReadBits(size)
			if err != nil {
				return nil, err
			}
			out = append(out, RunLevel{Run: pendingRun + run, Level: decodeAmplitude(bits, size)})
			pendingRun = 0
		}
	}
}

// decodeOne reads one canonical Huffman symbol.
func (t *HuffmanTable) decodeOne(r *BitReader) (int, error) {
	var code uint32
	for length := 1; length <= 32; length++ {
		bit, err := r.ReadBit()
		if err != nil {
			return 0, err
		}
		code = code<<1 | bit
		count := t.counts[length]
		if count == 0 {
			continue
		}
		first := t.firstCode[length]
		if code >= first && code < first+uint32(count) {
			return t.symsByCode[t.firstIndex[length]+int(code-first)], nil
		}
	}
	return 0, fmt.Errorf("codec: invalid Huffman code")
}
