package codec

import (
	"math"
	"math/rand/v2"
	"testing"
	"testing/quick"
)

func TestDCTRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewPCG(1, 2))
	var src, freq, back Block
	for y := range src {
		for x := range src[y] {
			src[y][x] = rng.Float64()*255 - 128
		}
	}
	ForwardDCT(&freq, &src)
	InverseDCT(&back, &freq)
	for y := range src {
		for x := range src[y] {
			if math.Abs(back[y][x]-src[y][x]) > 1e-9 {
				t.Fatalf("round trip error at (%d,%d): %v vs %v", x, y, back[y][x], src[y][x])
			}
		}
	}
}

func TestDCTConstantBlockIsDCOnly(t *testing.T) {
	var src, freq Block
	for y := range src {
		for x := range src[y] {
			src[y][x] = 100
		}
	}
	ForwardDCT(&freq, &src)
	// DC = 8 · 100 for the orthonormal transform.
	if math.Abs(freq[0][0]-800) > 1e-9 {
		t.Errorf("DC = %v, want 800", freq[0][0])
	}
	for y := range freq {
		for x := range freq[y] {
			if x == 0 && y == 0 {
				continue
			}
			if math.Abs(freq[y][x]) > 1e-9 {
				t.Errorf("AC(%d,%d) = %v, want 0", x, y, freq[y][x])
			}
		}
	}
}

func TestDCTParseval(t *testing.T) {
	// Orthonormal transform preserves energy.
	rng := rand.New(rand.NewPCG(3, 4))
	var src, freq Block
	var es, ef float64
	for y := range src {
		for x := range src[y] {
			src[y][x] = rng.NormFloat64() * 50
			es += src[y][x] * src[y][x]
		}
	}
	ForwardDCT(&freq, &src)
	for y := range freq {
		for x := range freq[y] {
			ef += freq[y][x] * freq[y][x]
		}
	}
	if math.Abs(es-ef) > 1e-6*es {
		t.Errorf("energy not preserved: %v vs %v", es, ef)
	}
}

func TestDCTSingleGratingConcentrates(t *testing.T) {
	// A pure horizontal cosine at basis frequency u0 lights exactly one
	// coefficient row.
	const u0 = 3
	var src, freq Block
	for y := range src {
		for x := range src[y] {
			src[y][x] = 100 * math.Cos((2*float64(x)+1)*u0*math.Pi/16)
		}
	}
	ForwardDCT(&freq, &src)
	peak := math.Abs(freq[0][u0])
	for y := range freq {
		for x := range freq[y] {
			if y == 0 && x == u0 {
				continue
			}
			if math.Abs(freq[y][x]) > 1e-6*peak {
				t.Errorf("leakage at (%d,%d): %v", x, y, freq[y][x])
			}
		}
	}
}

func TestZigzagIsPermutation(t *testing.T) {
	seen := map[[2]int]bool{}
	for _, rc := range zigzag {
		if rc[0] < 0 || rc[0] >= BlockSize || rc[1] < 0 || rc[1] >= BlockSize {
			t.Fatalf("out of range: %v", rc)
		}
		if seen[rc] {
			t.Fatalf("duplicate position %v", rc)
		}
		seen[rc] = true
	}
	if len(seen) != 64 {
		t.Fatalf("covered %d positions", len(seen))
	}
	// Canonical JPEG start: (0,0), (0,1), (1,0), (2,0), (1,1), (0,2).
	want := [][2]int{{0, 0}, {0, 1}, {1, 0}, {2, 0}, {1, 1}, {0, 2}}
	for i, w := range want {
		if zigzag[i] != w {
			t.Fatalf("zigzag[%d] = %v, want %v", i, zigzag[i], w)
		}
	}
}

func TestQuantizeDequantize(t *testing.T) {
	rng := rand.New(rand.NewPCG(5, 6))
	var src Block
	for y := range src {
		for x := range src[y] {
			src[y][x] = rng.Float64()*400 - 200
		}
	}
	var levels [64]int32
	var back Block
	Quantize(&src, 10, &levels)
	Dequantize(&levels, 10, &back)
	for y := range src {
		for x := range src[y] {
			if math.Abs(back[y][x]-src[y][x]) > 5+1e-9 { // half a step
				t.Fatalf("quantization error too large at (%d,%d)", x, y)
			}
		}
	}
}

func TestRunLengthRoundTrip(t *testing.T) {
	f := func(seed uint64) bool {
		rng := rand.New(rand.NewPCG(seed, 7))
		var levels, back [64]int32
		// Sparse levels, as after quantization.
		for i := range levels {
			if rng.Float64() < 0.2 {
				levels[i] = int32(rng.IntN(2001) - 1000)
			}
		}
		syms := RunLengthEncode(&levels, nil)
		if len(syms) == 0 || syms[len(syms)-1] != EOB {
			return false
		}
		if !RunLengthDecode(syms, &back) {
			return false
		}
		return levels == back
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestRunLengthAllZeroBlock(t *testing.T) {
	var levels [64]int32
	syms := RunLengthEncode(&levels, nil)
	if len(syms) != 1 || syms[0] != EOB {
		t.Fatalf("all-zero block should be a lone EOB, got %v", syms)
	}
}

func TestRunLengthDecodeMalformed(t *testing.T) {
	var out [64]int32
	// Missing EOB.
	if RunLengthDecode([]RunLevel{{Run: 0, Level: 5}}, &out) {
		t.Error("missing EOB should fail")
	}
	// Overflowing run.
	if RunLengthDecode([]RunLevel{{Run: 64, Level: 5}, EOB}, &out) {
		t.Error("overflow should fail")
	}
}

func TestSizeOf(t *testing.T) {
	cases := []struct {
		level int32
		want  int
	}{{0, 0}, {1, 1}, {-1, 1}, {2, 2}, {3, 2}, {-3, 2}, {4, 3}, {255, 8}, {-256, 9}, {1023, 10}}
	for _, c := range cases {
		if got := sizeOf(c.level); got != c.want {
			t.Errorf("sizeOf(%d) = %d, want %d", c.level, got, c.want)
		}
	}
}

func TestAmplitudeBitsRoundTrip(t *testing.T) {
	for level := int32(-1000); level <= 1000; level++ {
		if level == 0 {
			continue
		}
		size := sizeOf(level)
		bits := amplitudeBits(level, size)
		if got := decodeAmplitude(bits, size); got != level {
			t.Fatalf("amplitude round trip failed for %d: got %d", level, got)
		}
	}
}

func TestHuffmanRoundTripSymbols(t *testing.T) {
	// Train a table on a skewed distribution, then round-trip symbol
	// streams through the bit codec.
	freq := make([]uint64, numSyms)
	for i := range freq {
		freq[i] = uint64(1 + i%17)
	}
	freq[symEOB] = 5000
	tab, err := NewHuffmanTable(freq)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewPCG(11, 12))
	for trial := 0; trial < 100; trial++ {
		var levels [64]int32
		for i := range levels {
			if rng.Float64() < 0.25 {
				levels[i] = int32(rng.IntN(501) - 250)
			}
		}
		syms := RunLengthEncode(&levels, nil)
		w := &BitWriter{}
		bits, err := tab.EncodeSymbols(syms, w)
		if err != nil {
			t.Fatal(err)
		}
		counted, err := tab.CountBits(syms)
		if err != nil {
			t.Fatal(err)
		}
		if bits != counted {
			t.Fatalf("CountBits %d != encoded %d", counted, bits)
		}
		got, err := tab.DecodeSymbols(NewBitReader(w.Bytes()))
		if err != nil {
			t.Fatal(err)
		}
		var back [64]int32
		if !RunLengthDecode(got, &back) {
			t.Fatal("decode failed")
		}
		if back != levels {
			t.Fatalf("trial %d: level mismatch", trial)
		}
	}
}

func TestHuffmanOptimality(t *testing.T) {
	// A heavily skewed distribution must give the frequent symbol a short
	// code: EOB with 90% of mass gets ≤ 2 bits.
	freq := make([]uint64, numSyms)
	for i := range freq {
		freq[i] = 1
	}
	freq[symEOB] = 1 << 40
	tab, err := NewHuffmanTable(freq)
	if err != nil {
		t.Fatal(err)
	}
	if l := tab.CodeLength(symEOB); l > 2 {
		t.Errorf("EOB code length %d, want ≤ 2", l)
	}
}

func TestHuffmanKraft(t *testing.T) {
	// Kraft equality for a complete code: Σ 2^{-len} = 1.
	freq := make([]uint64, numSyms)
	for i := range freq {
		freq[i] = uint64(1+i) * uint64(1+i%13)
	}
	tab, err := NewHuffmanTable(freq)
	if err != nil {
		t.Fatal(err)
	}
	var kraft float64
	for s := 0; s < numSyms; s++ {
		l := tab.CodeLength(s)
		if l == 0 {
			t.Fatalf("symbol %d has no code", s)
		}
		kraft += math.Pow(2, -float64(l))
	}
	if math.Abs(kraft-1) > 1e-12 {
		t.Errorf("Kraft sum %v, want 1", kraft)
	}
}

func TestBitWriterReader(t *testing.T) {
	w := &BitWriter{}
	w.WriteBits(0b101, 3)
	w.WriteBits(0b0110, 4)
	w.WriteBits(0xABCD, 16)
	if w.Len() != 23 {
		t.Fatalf("len %d", w.Len())
	}
	r := NewBitReader(w.Bytes())
	if v, _ := r.ReadBits(3); v != 0b101 {
		t.Errorf("first read %b", v)
	}
	if v, _ := r.ReadBits(4); v != 0b0110 {
		t.Errorf("second read %b", v)
	}
	if v, _ := r.ReadBits(16); v != 0xABCD {
		t.Errorf("third read %x", v)
	}
	// Exhaustion after padding bits.
	if _, err := r.ReadBits(2); err == nil {
		t.Error("reading past end should eventually fail")
	}
}

func TestFrameValidation(t *testing.T) {
	if _, err := NewFrame(0, 8); err == nil {
		t.Error("zero width should fail")
	}
	if _, err := NewFrame(12, 8); err == nil {
		t.Error("non-multiple width should fail")
	}
	f, err := NewFrame(16, 8)
	if err != nil {
		t.Fatal(err)
	}
	f.Set(3, 2, 200)
	if f.At(3, 2) != 200 {
		t.Error("set/get failed")
	}
}

func TestRenderFrameActivityMonotonicity(t *testing.T) {
	// Higher activity must produce more coded bits — the key coupling
	// between the activity process and the bandwidth trace.
	cfg := CoderConfig{Width: 64, Height: 64, SlicesPerFrame: 4, QuantStep: 8}
	coder, err := NewCoder(cfg)
	if err != nil {
		t.Fatal(err)
	}
	f, _ := NewFrame(64, 64)
	var prev int
	for i, a := range []float64{0.05, 0.35, 0.65, 0.95} {
		if err := RenderFrame(f, RenderParams{Activity: a, SceneID: 42, FrameInScene: 0}); err != nil {
			t.Fatal(err)
		}
		bits, err := coder.CodeFrame(f)
		if err != nil {
			t.Fatal(err)
		}
		var total int
		for _, b := range bits {
			total += b
		}
		if i > 0 && total <= prev {
			t.Errorf("activity %v gave %d bits, not more than %d", a, total, prev)
		}
		prev = total
	}
}

func TestRenderFrameValidation(t *testing.T) {
	f, _ := NewFrame(16, 16)
	if err := RenderFrame(f, RenderParams{Activity: 1.5}); err == nil {
		t.Error("activity > 1 should fail")
	}
	if err := RenderFrame(f, RenderParams{Activity: math.NaN()}); err == nil {
		t.Error("NaN activity should fail")
	}
}

func TestCoderConfigValidation(t *testing.T) {
	bad := []CoderConfig{
		{Width: 0, Height: 64, SlicesPerFrame: 4, QuantStep: 8},
		{Width: 12, Height: 64, SlicesPerFrame: 4, QuantStep: 8},
		{Width: 64, Height: 64, SlicesPerFrame: 3, QuantStep: 8}, // 8 rows % 3 != 0
		{Width: 64, Height: 64, SlicesPerFrame: 4, QuantStep: 0},
	}
	for i, cfg := range bad {
		if _, err := NewCoder(cfg); err == nil {
			t.Errorf("config %d should fail: %+v", i, cfg)
		}
	}
	if err := DefaultCoderConfig().validate(); err != nil {
		t.Errorf("default config invalid: %v", err)
	}
}

func TestFrameEncodeDecodeRoundTrip(t *testing.T) {
	cfg := CoderConfig{Width: 64, Height: 64, SlicesPerFrame: 4, QuantStep: 8}
	coder, err := NewCoder(cfg)
	if err != nil {
		t.Fatal(err)
	}
	src, _ := NewFrame(64, 64)
	if err := RenderFrame(src, RenderParams{Activity: 0.6, SceneID: 7, FrameInScene: 3}); err != nil {
		t.Fatal(err)
	}
	if err := coder.Train([]*Frame{src}); err != nil {
		t.Fatal(err)
	}
	stream, err := coder.EncodeFrame(src)
	if err != nil {
		t.Fatal(err)
	}
	got, err := coder.DecodeFrame(stream)
	if err != nil {
		t.Fatal(err)
	}
	// Lossy only through quantization: max pixel error bounded by the
	// step size times the worst-case DCT amplification (≈ step·8).
	var maxErr, sumSq float64
	for i := range src.Pix {
		e := math.Abs(float64(src.Pix[i]) - float64(got.Pix[i]))
		maxErr = math.Max(maxErr, e)
		sumSq += e * e
	}
	rmse := math.Sqrt(sumSq / float64(len(src.Pix)))
	if rmse > 4 {
		t.Errorf("RMSE %v too high for step 8", rmse)
	}
	if maxErr > 32 {
		t.Errorf("max pixel error %v", maxErr)
	}
}

func TestCodeFrameSliceAccounting(t *testing.T) {
	cfg := CoderConfig{Width: 64, Height: 64, SlicesPerFrame: 8, QuantStep: 8}
	coder, _ := NewCoder(cfg)
	f, _ := NewFrame(64, 64)
	if err := RenderFrame(f, RenderParams{Activity: 0.5, SceneID: 1}); err != nil {
		t.Fatal(err)
	}
	bits, err := coder.CodeFrame(f)
	if err != nil {
		t.Fatal(err)
	}
	if len(bits) != 8 {
		t.Fatalf("slice count %d", len(bits))
	}
	var total int
	for _, b := range bits {
		if b <= 0 {
			t.Errorf("slice with %d bits", b)
		}
		total += b
	}
	// Cross-check against the actual bitstream length.
	stream, err := coder.EncodeFrame(f)
	if err != nil {
		t.Fatal(err)
	}
	streamBits := len(stream) * 8 // padded to byte
	if total > streamBits || streamBits-total > 7 {
		t.Errorf("CountBits total %d vs stream %d bits", total, streamBits)
	}
	// Wrong-size frame rejected.
	small, _ := NewFrame(32, 32)
	if _, err := coder.CodeFrame(small); err == nil {
		t.Error("frame size mismatch should fail")
	}
}

func TestGenerateTraceSmall(t *testing.T) {
	// End-to-end: synthetic movie → real coder → trace.
	codecCfg := CoderConfig{Width: 64, Height: 64, SlicesPerFrame: 4, QuantStep: 8}
	coder, err := NewCoder(codecCfg)
	if err != nil {
		t.Fatal(err)
	}
	scfg := synthSmall()
	tr, err := coder.GenerateTrace(scfg, 16)
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Frames) != scfg.Frames {
		t.Fatalf("frames %d", len(tr.Frames))
	}
	if len(tr.Slices) != scfg.Frames*4 {
		t.Fatalf("slices %d", len(tr.Slices))
	}
	s, err := tr.FrameStats()
	if err != nil {
		t.Fatal(err)
	}
	if s.Min <= 0 {
		t.Error("coded frames must have positive size")
	}
	if s.CoV < 0.05 {
		t.Errorf("coded trace CoV %v too smooth; activity not driving bitrate", s.CoV)
	}
	// Compression must actually compress.
	ratio, err := coder.CompressionRatio(tr)
	if err != nil {
		t.Fatal(err)
	}
	if ratio < 1.5 {
		t.Errorf("compression ratio %v", ratio)
	}
	if _, err := coder.GenerateTrace(scfg, 0); err == nil {
		t.Error("0 training frames should fail")
	}
}
