package codec

import (
	"fmt"

	"vbr/internal/synth"
	"vbr/internal/trace"
)

// This file implements the interframe-coding extension the paper
// distinguishes in §2: "Greater compression, burstiness and much stronger
// dependence on motion result from interframe coding, i.e., coding frame
// differences or use of motion prediction/compensation. Our main results
// do seem to extend to interframe (MPEG) video as well [GARR93a]" (see
// also [PANC94]).
//
// The coder uses an MPEG-like group-of-pictures (GOP) structure: every
// GOPSize-th frame is coded intra (exactly as the §2 coder), the frames
// between are coded predictively as the DCT of the motion-compensated
// difference from the reconstructed previous frame. Motion compensation
// is full-search block matching over ±SearchRange pels, which suffices
// for the renderer's translational phase drift.

// InterCoderConfig parameterizes the interframe coder.
type InterCoderConfig struct {
	CoderConfig
	GOPSize     int // frames per GOP (one I frame, the rest P/B frames)
	SearchRange int // motion search radius in pels (0 = pure differencing)
	// BFrames inserts this many bidirectionally-predicted frames between
	// consecutive reference (I/P) frames, completing the MPEG I-B-B-P-…
	// GOP structure. Each B block is predicted from the better of the two
	// surrounding references or their average. 0 disables B frames.
	// GOPSize must be divisible by BFrames+1 so references land on a
	// regular grid.
	BFrames int
}

// DefaultInterCoderConfig returns an MPEG-1-like configuration on the
// paper's frame geometry (GOP 12, two B frames between references).
func DefaultInterCoderConfig() InterCoderConfig {
	return InterCoderConfig{
		CoderConfig: DefaultCoderConfig(),
		GOPSize:     12,
		SearchRange: 4,
		BFrames:     2,
	}
}

// validate extends the intraframe checks.
func (c InterCoderConfig) validate() error {
	if err := c.CoderConfig.validate(); err != nil {
		return err
	}
	if c.GOPSize < 1 {
		return fmt.Errorf("codec: GOP size must be ≥ 1, got %d", c.GOPSize)
	}
	if c.SearchRange < 0 {
		return fmt.Errorf("codec: search range must be ≥ 0, got %d", c.SearchRange)
	}
	if c.BFrames < 0 {
		return fmt.Errorf("codec: B-frame count must be ≥ 0, got %d", c.BFrames)
	}
	if c.BFrames > 0 && c.GOPSize%(c.BFrames+1) != 0 {
		return fmt.Errorf("codec: GOP size %d not divisible by BFrames+1 = %d", c.GOPSize, c.BFrames+1)
	}
	return nil
}

// InterCoder is the interframe DCT/RLE/Huffman coder with
// motion-compensated prediction.
type InterCoder struct {
	cfg   InterCoderConfig
	intra *Coder    // reused intraframe machinery (shares the Huffman table)
	ref   []float64 // reconstructed previous frame (prediction reference)
}

// NewInterCoder constructs the coder. Train (on the embedded intraframe
// coder's symbol statistics plus difference-frame statistics) is handled
// by TrainOn.
func NewInterCoder(cfg InterCoderConfig) (*InterCoder, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	intra, err := NewCoder(cfg.CoderConfig)
	if err != nil {
		return nil, err
	}
	return &InterCoder{
		cfg:   cfg,
		intra: intra,
		ref:   make([]float64, cfg.Width*cfg.Height),
	}, nil
}

// Config returns the coder configuration.
func (c *InterCoder) Config() InterCoderConfig { return c.cfg }

// TrainOn fits the Huffman table to a mixed sample of intra frames and
// difference frames from the given sequence.
func (c *InterCoder) TrainOn(frames []*Frame) error {
	if len(frames) == 0 {
		return fmt.Errorf("codec: no training frames")
	}
	freq := make([]uint64, numSyms)
	var prev *Frame
	for i, f := range frames {
		if i%c.cfg.GOPSize == 0 || prev == nil {
			if err := c.intra.accumulate(f, freq); err != nil {
				return err
			}
		} else {
			if err := c.accumulateDiff(prev, f, freq); err != nil {
				return err
			}
		}
		prev = f
	}
	huff, err := NewHuffmanTable(freq)
	if err != nil {
		return err
	}
	c.intra.huff = huff
	return nil
}

// accumulateDiff adds the symbol statistics of a (motion-compensated)
// difference frame.
func (c *InterCoder) accumulateDiff(prev, cur *Frame, freq []uint64) error {
	return c.forEachDiffBlock(framePix(prev), cur, func(symbols []RunLevel) error {
		for _, rl := range symbols {
			zrls, sym, _, err := symbolOf(rl)
			if err != nil {
				return err
			}
			freq[symZRL] += uint64(zrls)
			freq[sym]++
		}
		return nil
	})
}

// framePix converts a frame's pixels to float64 for use as a reference.
func framePix(f *Frame) []float64 {
	out := make([]float64, len(f.Pix))
	for i, v := range f.Pix {
		out[i] = float64(v)
	}
	return out
}

// Reset clears the prediction reference (e.g. between independent
// sequences).
func (c *InterCoder) Reset() {
	for i := range c.ref {
		c.ref[i] = 0
	}
}

// CodeFrame codes one frame in sequence order, returning per-slice bit
// counts and whether the frame was coded intra. Frame index i is intra
// iff i ≡ 0 (mod GOPSize); the caller passes consecutive frames.
func (c *InterCoder) CodeFrame(f *Frame, index int) (bits []int, intraCoded bool, err error) {
	if f.W != c.cfg.Width || f.H != c.cfg.Height {
		return nil, false, fmt.Errorf("codec: frame is %d×%d, coder expects %d×%d", f.W, f.H, c.cfg.Width, c.cfg.Height)
	}
	blockRows := c.cfg.Height / BlockSize
	rowsPerSlice := blockRows / c.cfg.SlicesPerFrame
	blocksPerRow := c.cfg.Width / BlockSize
	blocksPerSlice := rowsPerSlice * blocksPerRow
	bits = make([]int, c.cfg.SlicesPerFrame)
	blockIdx := 0

	count := func(symbols []RunLevel) error {
		n, err := c.intra.huff.CountBits(symbols)
		if err != nil {
			return err
		}
		bits[blockIdx/blocksPerSlice] += n
		blockIdx++
		return nil
	}

	if index%c.cfg.GOPSize == 0 {
		// Intra frame: code the pixels, update the reference with the
		// quantized reconstruction.
		err = c.intra.forEachBlock(f, count)
		if err != nil {
			return nil, false, err
		}
		// Reference = dequantized reconstruction; for bit accounting we
		// approximate it with the source frame (quantization noise is a
		// second-order effect on the next frame's difference energy).
		for i, v := range f.Pix {
			c.ref[i] = float64(v)
		}
		return bits, true, nil
	}

	// P frame: motion-compensated difference against the reference, plus
	// motion-vector side information (a fixed cost per block, as in MPEG
	// variable-length MV coding ≈ log2(2R+1)² bits).
	mvBits := 2 * intLog2(2*c.searchRange()+1)
	err = c.forEachDiffBlock(c.ref, f, func(symbols []RunLevel) error {
		if err := count(symbols); err != nil {
			return err
		}
		bits[(blockIdx-1)/blocksPerSlice] += mvBits
		return nil
	})
	if err != nil {
		return nil, false, err
	}
	for i, v := range f.Pix {
		c.ref[i] = float64(v)
	}
	return bits, false, nil
}

// intLog2 returns ⌈log2 n⌉ for n ≥ 1.
func intLog2(n int) int {
	b := 0
	for v := n - 1; v > 0; v >>= 1 {
		b++
	}
	if b == 0 {
		b = 1
	}
	return b
}

// forEachDiffBlock motion-compensates each block of cur against ref and
// runs the DCT→quantize→RLE pipeline on the residual.
func (c *InterCoder) forEachDiffBlock(ref []float64, cur *Frame, fn func([]RunLevel) error) error {
	w, h := c.cfg.Width, c.cfg.Height
	var block, coeffs Block
	var levels [BlockSize * BlockSize]int32
	var symbols []RunLevel
	for by := 0; by < h; by += BlockSize {
		for bx := 0; bx < w; bx += BlockSize {
			dx, dy := c.bestMotion(ref, cur, bx, by)
			for y := 0; y < BlockSize; y++ {
				for x := 0; x < BlockSize; x++ {
					curV := float64(cur.Pix[(by+y)*w+bx+x])
					refV := ref[(by+y+dy)*w+bx+x+dx]
					block[y][x] = curV - refV
				}
			}
			ForwardDCT(&coeffs, &block)
			Quantize(&coeffs, c.cfg.QuantStep, &levels)
			symbols = RunLengthEncode(&levels, symbols[:0])
			if err := fn(symbols); err != nil {
				return err
			}
		}
	}
	return nil
}

// searchRange returns the motion search radius actually used: the
// configured per-frame-of-distance radius scaled by the reference
// spacing (BFrames+1), since a reference sits that many frames away and
// camera pan accumulates linearly.
func (c *InterCoder) searchRange() int {
	return c.cfg.SearchRange * (c.cfg.BFrames + 1)
}

// bestMotion runs a full search over ±searchRange() for the displacement
// minimizing the sum of absolute differences.
func (c *InterCoder) bestMotion(ref []float64, cur *Frame, bx, by int) (dx, dy int) {
	r := c.searchRange()
	if r == 0 {
		return 0, 0
	}
	w, h := c.cfg.Width, c.cfg.Height
	best := float64(1 << 62)
	for cy := -r; cy <= r; cy++ {
		if by+cy < 0 || by+cy+BlockSize > h {
			continue
		}
		for cx := -r; cx <= r; cx++ {
			if bx+cx < 0 || bx+cx+BlockSize > w {
				continue
			}
			var sad float64
			for y := 0; y < BlockSize; y++ {
				rowC := (by+y)*w + bx
				rowR := (by+y+cy)*w + bx + cx
				for x := 0; x < BlockSize; x++ {
					d := float64(cur.Pix[rowC+x]) - ref[rowR+x]
					if d < 0 {
						d = -d
					}
					sad += d
				}
			}
			if sad < best {
				best, dx, dy = sad, cx, cy
			}
		}
	}
	return dx, dy
}

// GenerateTrace runs the full interframe pipeline over the synthetic
// movie, as Coder.GenerateTrace does for intraframe coding. The returned
// trace exhibits the MPEG signatures the paper describes: GOP-periodic
// rate oscillation, higher burstiness, and stronger motion dependence.
func (c *InterCoder) GenerateTrace(cfg synth.Config, trainFrames int) (*trace.Trace, error) {
	if trainFrames < 1 {
		return nil, fmt.Errorf("codec: need ≥ 1 training frame, got %d", trainFrames)
	}
	z, scenes, err := synth.ActivityProcess(cfg)
	if err != nil {
		return nil, err
	}
	act, sceneOf := sceneActivity(z, scenes)
	render := func(dst *Frame, t int) error {
		sc := scenes[sceneOf[t]]
		return RenderFrame(dst, RenderParams{
			Activity:     act[t],
			SceneID:      uint64(sceneOf[t])*2654435761 + cfg.Seed,
			FrameInScene: t - sc.Start,
		})
	}

	// Training: consecutive runs so difference statistics are realistic.
	var training []*Frame
	runs := max(1, trainFrames/8)
	perRun := max(2, trainFrames/runs)
	for r := 0; r < runs; r++ {
		start := r * len(z) / runs
		for k := 0; k < perRun && start+k < len(z); k++ {
			tf, err := NewFrame(c.cfg.Width, c.cfg.Height)
			if err != nil {
				return nil, err
			}
			if err := render(tf, start+k); err != nil {
				return nil, err
			}
			training = append(training, tf)
		}
	}
	if err := c.TrainOn(training); err != nil {
		return nil, err
	}
	c.Reset()

	tr := &trace.Trace{
		FrameRate:      cfg.FrameRate,
		SlicesPerFrame: c.cfg.SlicesPerFrame,
		Frames:         make([]float64, len(z)),
		Slices:         make([]float64, len(z)*c.cfg.SlicesPerFrame),
	}
	c.Reset()
	sc := &seqCoder{c: c, emit: func(t int, sliceBits []int, _ FrameType) error {
		var total float64
		for s, b := range sliceBits {
			bytes := float64(b) / 8
			tr.Slices[t*c.cfg.SlicesPerFrame+s] = bytes
			total += bytes
		}
		tr.Frames[t] = total
		return nil
	}}
	for t := range z {
		// Each frame is handed to the sequence coder, which may retain
		// B frames until their mini-GOP completes; allocate per frame
		// (at most BFrames+1 are alive at once).
		frame, err := NewFrame(c.cfg.Width, c.cfg.Height)
		if err != nil {
			return nil, err
		}
		if err := render(frame, t); err != nil {
			return nil, err
		}
		if err := sc.push(frame, t); err != nil {
			return nil, err
		}
	}
	if err := sc.flush(); err != nil {
		return nil, err
	}
	if err := tr.Validate(); err != nil {
		return nil, err
	}
	return tr, nil
}
