package codec

import "vbr/internal/synth"

// synthSmall returns a small, fast synthetic-movie configuration for
// codec tests.
func synthSmall() synth.Config {
	cfg := synth.DefaultConfig()
	cfg.Frames = 600
	cfg.SlicesPerFrame = 0 // the coder produces its own slice data
	cfg.MeanSceneFrames = 60
	return cfg
}
