package codec

import (
	"fmt"
	"math"
)

// Frame is a monochrome (luminance-only, as in the paper) raster of 8-bit
// samples, row-major.
type Frame struct {
	W, H int
	Pix  []uint8
}

// NewFrame allocates a zeroed frame; dimensions must be positive multiples
// of the DCT block size.
func NewFrame(w, h int) (*Frame, error) {
	if w <= 0 || h <= 0 {
		return nil, fmt.Errorf("codec: frame dimensions must be positive, got %d×%d", w, h)
	}
	if w%BlockSize != 0 || h%BlockSize != 0 {
		return nil, fmt.Errorf("codec: frame dimensions must be multiples of %d, got %d×%d", BlockSize, w, h)
	}
	return &Frame{W: w, H: h, Pix: make([]uint8, w*h)}, nil
}

// At returns the sample at (x, y).
func (f *Frame) At(x, y int) uint8 { return f.Pix[y*f.W+x] }

// Set writes the sample at (x, y).
func (f *Frame) Set(x, y int, v uint8) { f.Pix[y*f.W+x] = v }

// hash64 is SplitMix64, used to derive deterministic per-scene texture
// parameters without threading an RNG through the renderer.
func hash64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// unitFloat maps a hash to [0, 1).
func unitFloat(x uint64) float64 {
	return float64(hash64(x)>>11) / float64(1<<53)
}

// RenderParams controls procedural frame synthesis. Activity in [0, 1]
// drives spatial complexity: low-activity frames are smooth gradients
// (few bits after the DCT), high-activity frames are full of fine texture
// and edges (many bits) — the monotone complexity→bitrate relationship
// that lets the synthetic activity process steer the coder's output.
type RenderParams struct {
	Activity     float64 // spatial complexity in [0, 1]
	SceneID      uint64  // selects the scene's deterministic texture
	FrameInScene int     // drives motion (phase drift) within the scene
}

// RenderFrame synthesizes a frame into dst. The image is a sum of a
// smooth illumination gradient, several sinusoidal gratings whose count,
// frequency and contrast grow with activity (camera-textured surfaces),
// and a scene-persistent hash-noise texture field scaled by activity.
// Motion is modeled as a scene-constant integer-pel translation of the
// whole field (camera pan) plus a small per-frame flicker, so
// consecutive frames of a scene are related by a displacement an
// interframe coder's motion search can find — while every frame remains
// equally expensive for an intraframe coder.
func RenderFrame(dst *Frame, p RenderParams) error {
	if p.Activity < 0 || p.Activity > 1 || math.IsNaN(p.Activity) {
		return fmt.Errorf("codec: activity must be in [0,1], got %v", p.Activity)
	}
	a := p.Activity
	seed := p.SceneID

	// Scene-deterministic gradient orientation and base level.
	gradAngle := 2 * math.Pi * unitFloat(seed)
	gx := math.Cos(gradAngle) * 40
	gy := math.Sin(gradAngle) * 40
	base := 96 + 64*unitFloat(seed+1)

	// Camera pan: a scene-constant integer velocity in [-2, 2] pels per
	// frame along each axis.
	vx := int(unitFloat(seed+20)*5) - 2
	vy := int(unitFloat(seed+21)*5) - 2
	ox := vx * p.FrameInScene
	oy := vy * p.FrameInScene

	// Gratings: 2 + up to 6 more with activity. Frequencies rise with
	// activity up to near Nyquist.
	nGratings := 2 + int(6*a)
	type grating struct {
		fx, fy, amp, phase float64
	}
	gr := make([]grating, nGratings)
	for i := range gr {
		s := seed + uint64(100+i*7)
		maxFreq := 0.05 + 0.42*a // cycles per pel
		gr[i] = grating{
			fx:    (unitFloat(s) - 0.5) * 2 * maxFreq,
			fy:    (unitFloat(s+1) - 0.5) * 2 * maxFreq,
			amp:   (4 + 36*a) * (0.4 + 0.6*unitFloat(s+2)),
			phase: 2 * math.Pi * unitFloat(s+3),
		}
	}
	grainAmp := 2 + 46*a*a // scene-persistent texture
	flickerAmp := 1 + 5*a  // per-frame unpredictable component

	for y := 0; y < dst.H; y++ {
		ys := y + oy
		fyn := float64(y) / float64(dst.H)
		for x := 0; x < dst.W; x++ {
			xs := x + ox
			fxn := float64(x) / float64(dst.W)
			v := base + gx*fxn + gy*fyn
			for _, g := range gr {
				v += g.amp * math.Sin(2*math.Pi*(g.fx*float64(xs)+g.fy*float64(ys))+g.phase)
			}
			// Scene texture: persistent hash field sampled at the panned
			// coordinates, so it translates with the camera.
			h := hash64(uint64(uint32(xs))<<32 ^ uint64(uint32(ys)) ^ seed<<1)
			v += grainAmp * (float64(h>>40)/float64(1<<24) - 0.5)
			// Flicker: small per-frame noise (sensor/film grain) that no
			// predictor can remove.
			f := hash64(uint64(uint32(x))<<32 ^ uint64(uint32(y)) ^ seed<<1 ^ uint64(p.FrameInScene)<<48 ^ 0xf11c)
			v += flickerAmp * (float64(f>>40)/float64(1<<24) - 0.5)
			switch {
			case v < 0:
				v = 0
			case v > 255:
				v = 255
			}
			dst.Pix[y*dst.W+x] = uint8(v)
		}
	}
	return nil
}
