package codec

import (
	"fmt"
	"math"

	"vbr/internal/specfn"
	"vbr/internal/synth"
	"vbr/internal/trace"
)

// CoderConfig parameterizes the intraframe coder.
type CoderConfig struct {
	Width, Height  int     // frame dimensions (paper: 504×480)
	SlicesPerFrame int     // paper: 30
	QuantStep      float64 // uniform quantizer step (paper fixes it)
}

// DefaultCoderConfig returns the paper's coder parameters (Table 1).
func DefaultCoderConfig() CoderConfig {
	return CoderConfig{Width: 504, Height: 480, SlicesPerFrame: 30, QuantStep: 8}
}

// validate checks config consistency: the frame must divide evenly into
// block rows and the block rows evenly into slices.
func (c CoderConfig) validate() error {
	if c.Width <= 0 || c.Height <= 0 {
		return fmt.Errorf("codec: dimensions must be positive, got %d×%d", c.Width, c.Height)
	}
	if c.Width%BlockSize != 0 || c.Height%BlockSize != 0 {
		return fmt.Errorf("codec: dimensions must be multiples of %d, got %d×%d", BlockSize, c.Width, c.Height)
	}
	blockRows := c.Height / BlockSize
	if c.SlicesPerFrame < 1 || blockRows%c.SlicesPerFrame != 0 {
		return fmt.Errorf("codec: %d block rows not divisible into %d slices", blockRows, c.SlicesPerFrame)
	}
	if !(c.QuantStep > 0) {
		return fmt.Errorf("codec: quantizer step must be positive, got %v", c.QuantStep)
	}
	return nil
}

// Coder is the intraframe DCT/RLE/Huffman coder.
type Coder struct {
	cfg  CoderConfig
	huff *HuffmanTable
	// scratch buffers reused across blocks
	block   Block
	coeffs  Block
	levels  [BlockSize * BlockSize]int32
	symbols []RunLevel
}

// NewCoder constructs a coder with an untrained (uniform) Huffman table;
// call Train to fit the table to representative material, as a static
// JPEG-style table would be.
func NewCoder(cfg CoderConfig) (*Coder, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	freq := make([]uint64, numSyms)
	huff, err := NewHuffmanTable(freq)
	if err != nil {
		return nil, err
	}
	return &Coder{cfg: cfg, huff: huff}, nil
}

// Config returns the coder's configuration.
func (c *Coder) Config() CoderConfig { return c.cfg }

// Train fits the Huffman table to the symbol statistics of the given
// frames.
func (c *Coder) Train(frames []*Frame) error {
	freq := make([]uint64, numSyms)
	for _, f := range frames {
		if err := c.accumulate(f, freq); err != nil {
			return err
		}
	}
	huff, err := NewHuffmanTable(freq)
	if err != nil {
		return err
	}
	c.huff = huff
	return nil
}

// accumulate adds the frame's run-level symbol frequencies into freq.
func (c *Coder) accumulate(f *Frame, freq []uint64) error {
	return c.forEachBlock(f, func(symbols []RunLevel) error {
		for _, rl := range symbols {
			zrls, sym, _, err := symbolOf(rl)
			if err != nil {
				return err
			}
			freq[symZRL] += uint64(zrls)
			freq[sym]++
		}
		return nil
	})
}

// forEachBlock runs the DCT→quantize→RLE pipeline over every 8×8 block of
// the frame in slice-major order and passes the symbols to fn.
//vbrlint:hotpath
func (c *Coder) forEachBlock(f *Frame, fn func([]RunLevel) error) error {
	if f.W != c.cfg.Width || f.H != c.cfg.Height {
		return fmt.Errorf("codec: frame is %d×%d, coder expects %d×%d", f.W, f.H, c.cfg.Width, c.cfg.Height)
	}
	for by := 0; by < f.H; by += BlockSize {
		for bx := 0; bx < f.W; bx += BlockSize {
			for y := 0; y < BlockSize; y++ {
				row := (by+y)*f.W + bx
				for x := 0; x < BlockSize; x++ {
					// Level-shift to center on zero, as JPEG does.
					c.block[y][x] = float64(f.Pix[row+x]) - 128
				}
			}
			ForwardDCT(&c.coeffs, &c.block)
			Quantize(&c.coeffs, c.cfg.QuantStep, &c.levels)
			c.symbols = RunLengthEncode(&c.levels, c.symbols[:0])
			if err := fn(c.symbols); err != nil {
				return err
			}
		}
	}
	return nil
}

// CodeFrame codes one frame and returns the coded size of each slice in
// bits. A slice is a horizontal band of block rows (Height/8/SlicesPerFrame
// rows of blocks), scanned left to right.
//vbrlint:hotpath
func (c *Coder) CodeFrame(f *Frame) ([]int, error) {
	blockRows := c.cfg.Height / BlockSize
	rowsPerSlice := blockRows / c.cfg.SlicesPerFrame
	blocksPerRow := c.cfg.Width / BlockSize
	blocksPerSlice := rowsPerSlice * blocksPerRow

	bits := make([]int, c.cfg.SlicesPerFrame)
	blockIdx := 0
	err := c.forEachBlock(f, func(symbols []RunLevel) error {
		n, err := c.huff.CountBits(symbols)
		if err != nil {
			return err
		}
		bits[blockIdx/blocksPerSlice] += n
		blockIdx++
		return nil
	})
	if err != nil {
		return nil, err
	}
	return bits, nil
}

// EncodeFrame produces the actual bitstream for a frame (used by the
// round-trip tests; trace generation uses the faster CodeFrame).
func (c *Coder) EncodeFrame(f *Frame) ([]byte, error) {
	w := &BitWriter{}
	err := c.forEachBlock(f, func(symbols []RunLevel) error {
		_, err := c.huff.EncodeSymbols(symbols, w)
		return err
	})
	if err != nil {
		return nil, err
	}
	return w.Bytes(), nil
}

// DecodeFrame reconstructs a frame from a bitstream produced by
// EncodeFrame (lossy only through quantization).
func (c *Coder) DecodeFrame(stream []byte) (*Frame, error) {
	f, err := NewFrame(c.cfg.Width, c.cfg.Height)
	if err != nil {
		return nil, err
	}
	r := NewBitReader(stream)
	var levels [BlockSize * BlockSize]int32
	var coeffs, block Block
	for by := 0; by < f.H; by += BlockSize {
		for bx := 0; bx < f.W; bx += BlockSize {
			symbols, err := c.huff.DecodeSymbols(r)
			if err != nil {
				return nil, err
			}
			if !RunLengthDecode(symbols, &levels) {
				return nil, fmt.Errorf("codec: malformed block at (%d,%d)", bx, by)
			}
			Dequantize(&levels, c.cfg.QuantStep, &coeffs)
			InverseDCT(&block, &coeffs)
			for y := 0; y < BlockSize; y++ {
				for x := 0; x < BlockSize; x++ {
					v := block[y][x] + 128
					switch {
					case v < 0:
						v = 0
					case v > 255:
						v = 255
					}
					f.Pix[(by+y)*f.W+bx+x] = uint8(math.Round(v))
				}
			}
		}
	}
	return f, nil
}

// GenerateTrace runs the complete paper §2 pipeline: the synthetic movie
// activity process drives the procedural frame renderer, every frame is
// actually compressed by the coder, and the per-slice bit counts become
// the VBR bandwidth trace. trainFrames frames spread across the movie are
// used to fit the Huffman table first. This is the "real coder" path; it
// is O(frames · pixels) and intended for cmd/vbrtrace and tests at
// moderate resolutions.
func (c *Coder) GenerateTrace(cfg synth.Config, trainFrames int) (*trace.Trace, error) {
	if trainFrames < 1 {
		return nil, fmt.Errorf("codec: need ≥ 1 training frame, got %d", trainFrames)
	}
	z, scenes, err := synth.ActivityProcess(cfg)
	if err != nil {
		return nil, err
	}
	act, sceneOf := sceneActivity(z, scenes)

	frame, err := NewFrame(c.cfg.Width, c.cfg.Height)
	if err != nil {
		return nil, err
	}

	// Training pass over frames spread uniformly across the movie.
	var training []*Frame
	for i := 0; i < trainFrames; i++ {
		t := i * len(z) / trainFrames
		tf, err := NewFrame(c.cfg.Width, c.cfg.Height)
		if err != nil {
			return nil, err
		}
		sc := scenes[sceneOf[t]]
		if err := RenderFrame(tf, RenderParams{
			Activity:     act[t],
			SceneID:      uint64(sceneOf[t])*2654435761 + cfg.Seed,
			FrameInScene: t - sc.Start,
		}); err != nil {
			return nil, err
		}
		training = append(training, tf)
	}
	if err := c.Train(training); err != nil {
		return nil, err
	}

	tr := &trace.Trace{
		FrameRate:      cfg.FrameRate,
		SlicesPerFrame: c.cfg.SlicesPerFrame,
		Frames:         make([]float64, len(z)),
		Slices:         make([]float64, len(z)*c.cfg.SlicesPerFrame),
	}
	for t := range z {
		sc := scenes[sceneOf[t]]
		if err := RenderFrame(frame, RenderParams{
			Activity:     act[t],
			SceneID:      uint64(sceneOf[t])*2654435761 + cfg.Seed,
			FrameInScene: t - sc.Start,
		}); err != nil {
			return nil, err
		}
		sliceBits, err := c.CodeFrame(frame)
		if err != nil {
			return nil, err
		}
		var total float64
		for s, b := range sliceBits {
			bytes := float64(b) / 8
			tr.Slices[t*c.cfg.SlicesPerFrame+s] = bytes
			total += bytes
		}
		tr.Frames[t] = total
	}
	if err := tr.Validate(); err != nil {
		return nil, err
	}
	return tr, nil
}

// sceneActivity maps the per-frame activity z-scores to per-frame
// complexity values in [0, 1] that are constant within each scene (the
// scene-mean z through the normal CDF). Video complexity is a property
// of the scene's content; within-scene bit variation then arises from
// camera pan and flicker in the renderer, matching §4.2's "periods with
// practically constant level". It also returns the frame→scene index.
func sceneActivity(z []float64, scenes []synth.Scene) (act []float64, sceneOf []int) {
	act = make([]float64, len(z))
	sceneOf = make([]int, len(z))
	for si, sc := range scenes {
		end := sc.Start + sc.Length
		if end > len(z) {
			end = len(z)
		}
		var mean float64
		for t := sc.Start; t < end; t++ {
			mean += z[t]
		}
		if end > sc.Start {
			mean /= float64(end - sc.Start)
		}
		a := specfn.NormCDF(mean)
		for t := sc.Start; t < end; t++ {
			act[t] = a
			sceneOf[t] = si
		}
	}
	return act, sceneOf
}

// CompressionRatio returns the ratio of raw frame size to mean coded
// frame size for a trace produced by this coder (Table 1 reports 8.70).
func (c *Coder) CompressionRatio(tr *trace.Trace) (float64, error) {
	s, err := tr.FrameStats()
	if err != nil {
		return 0, err
	}
	raw := float64(c.cfg.Width * c.cfg.Height) // 8 bits/pel = 1 byte
	if s.Mean <= 0 {
		return 0, fmt.Errorf("codec: trace has nonpositive mean")
	}
	return raw / s.Mean, nil
}
