package codec

import "fmt"

// This file adds bidirectional (B) frames to the interframe coder,
// completing the MPEG I-B-B-P GOP structure. A B frame sits between two
// reference frames (I or P); each of its blocks is predicted from the
// motion-compensated best match in the previous reference, the next
// reference, or the average of the two — whichever has the smallest
// residual energy — and only the residual is transform-coded.

// FrameType labels a coded frame in a GOP.
type FrameType byte

// Frame types.
const (
	FrameI FrameType = 'I'
	FrameP FrameType = 'P'
	FrameB FrameType = 'B'
)

// frameTypeAt returns the GOP role of display index t.
func (c *InterCoder) frameTypeAt(t int) FrameType {
	step := c.cfg.BFrames + 1
	if t%c.cfg.GOPSize == 0 {
		return FrameI
	}
	if t%step == 0 {
		return FrameP
	}
	return FrameB
}

// codeBFrame codes cur bidirectionally against the two references,
// returning per-slice bit counts. Either reference may be nil (e.g. at
// the sequence tail there is no future reference), in which case the
// block predictor set degrades gracefully to the available side.
func (c *InterCoder) codeBFrame(cur *Frame, refL, refR []float64) ([]int, error) {
	if refL == nil && refR == nil {
		return nil, fmt.Errorf("codec: B frame with no references")
	}
	blockRows := c.cfg.Height / BlockSize
	rowsPerSlice := blockRows / c.cfg.SlicesPerFrame
	blocksPerRow := c.cfg.Width / BlockSize
	blocksPerSlice := rowsPerSlice * blocksPerRow
	// Bi-prediction signals which reference(s) each block used: ~2 bits
	// of mode plus one or two motion vectors.
	mvBits := 2 * intLog2(2*c.searchRange()+1)
	bits := make([]int, c.cfg.SlicesPerFrame)

	w, h := c.cfg.Width, c.cfg.Height
	var block, coeffs Block
	var levels [BlockSize * BlockSize]int32
	var symbols []RunLevel
	blockIdx := 0
	for by := 0; by < h; by += BlockSize {
		for bx := 0; bx < w; bx += BlockSize {
			// Candidate predictors.
			type cand struct {
				sad      float64
				predL    bool
				predR    bool
				dxL, dyL int
				dxR, dyR int
			}
			best := cand{sad: 1e300}
			if refL != nil {
				dx, dy := c.bestMotion(refL, cur, bx, by)
				sad := blockSAD(refL, cur, bx, by, dx, dy, w)
				if sad < best.sad {
					best = cand{sad: sad, predL: true, dxL: dx, dyL: dy}
				}
			}
			if refR != nil {
				dx, dy := c.bestMotion(refR, cur, bx, by)
				sad := blockSAD(refR, cur, bx, by, dx, dy, w)
				if sad < best.sad {
					best = cand{sad: sad, predR: true, dxR: dx, dyR: dy}
				}
			}
			if refL != nil && refR != nil {
				dxL, dyL := c.bestMotion(refL, cur, bx, by)
				dxR, dyR := c.bestMotion(refR, cur, bx, by)
				sad := blockSADAvg(refL, refR, cur, bx, by, dxL, dyL, dxR, dyR, w)
				if sad < best.sad {
					best = cand{sad: sad, predL: true, predR: true, dxL: dxL, dyL: dyL, dxR: dxR, dyR: dyR}
				}
			}

			// Residual against the chosen predictor.
			for y := 0; y < BlockSize; y++ {
				for x := 0; x < BlockSize; x++ {
					curV := float64(cur.Pix[(by+y)*w+bx+x])
					var pred float64
					switch {
					case best.predL && best.predR:
						pl := refL[(by+y+best.dyL)*w+bx+x+best.dxL]
						pr := refR[(by+y+best.dyR)*w+bx+x+best.dxR]
						pred = (pl + pr) / 2
					case best.predL:
						pred = refL[(by+y+best.dyL)*w+bx+x+best.dxL]
					default:
						pred = refR[(by+y+best.dyR)*w+bx+x+best.dxR]
					}
					block[y][x] = curV - pred
				}
			}
			ForwardDCT(&coeffs, &block)
			Quantize(&coeffs, c.cfg.QuantStep, &levels)
			symbols = RunLengthEncode(&levels, symbols[:0])
			n, err := c.intra.huff.CountBits(symbols)
			if err != nil {
				return nil, err
			}
			slice := blockIdx / blocksPerSlice
			bits[slice] += n + 2 // mode bits
			if best.predL {
				bits[slice] += mvBits
			}
			if best.predR {
				bits[slice] += mvBits
			}
			blockIdx++
		}
	}
	return bits, nil
}

// blockSAD computes the sum of absolute differences between a block of
// cur and its displaced position in ref, clamping displacements that run
// off the frame to zero displacement.
func blockSAD(ref []float64, cur *Frame, bx, by, dx, dy, w int) float64 {
	h := len(ref) / w
	if by+dy < 0 || by+dy+BlockSize > h || bx+dx < 0 || bx+dx+BlockSize > w {
		dx, dy = 0, 0
	}
	var sad float64
	for y := 0; y < BlockSize; y++ {
		rowC := (by+y)*w + bx
		rowR := (by+y+dy)*w + bx + dx
		for x := 0; x < BlockSize; x++ {
			d := float64(cur.Pix[rowC+x]) - ref[rowR+x]
			if d < 0 {
				d = -d
			}
			sad += d
		}
	}
	return sad
}

// blockSADAvg is blockSAD against the average of two displaced references.
func blockSADAvg(refL, refR []float64, cur *Frame, bx, by, dxL, dyL, dxR, dyR, w int) float64 {
	h := len(refL) / w
	if by+dyL < 0 || by+dyL+BlockSize > h || bx+dxL < 0 || bx+dxL+BlockSize > w {
		dxL, dyL = 0, 0
	}
	if by+dyR < 0 || by+dyR+BlockSize > h || bx+dxR < 0 || bx+dxR+BlockSize > w {
		dxR, dyR = 0, 0
	}
	var sad float64
	for y := 0; y < BlockSize; y++ {
		rowC := (by+y)*w + bx
		rowL := (by+y+dyL)*w + bx + dxL
		rowR := (by+y+dyR)*w + bx + dxR
		for x := 0; x < BlockSize; x++ {
			d := float64(cur.Pix[rowC+x]) - (refL[rowL+x]+refR[rowR+x])/2
			if d < 0 {
				d = -d
			}
			sad += d
		}
	}
	return sad
}

// seqCoder streams a display-ordered sequence through the I/B/P GOP
// structure: reference frames are coded immediately, B frames buffered
// until the next reference arrives (coding order IPBB… vs display order
// IBBP…, the MPEG encoder reordering). Results are delivered through
// emit in arbitrary order but with display indices attached.
type seqCoder struct {
	c       *InterCoder
	lastRef []float64
	pending []pendingB
	emit    func(t int, bits []int, ft FrameType) error
}

type pendingB struct {
	t     int
	frame *Frame
}

// push feeds the display-order frame at index t. The frame is retained
// until its mini-GOP completes, so callers must hand over ownership.
func (s *seqCoder) push(f *Frame, t int) error {
	if s.c.cfg.BFrames > 0 && s.c.frameTypeAt(t) == FrameB {
		s.pending = append(s.pending, pendingB{t: t, frame: f})
		return nil
	}
	// Reference frame: code it, then the buffered B frames between the
	// previous reference and this one.
	prevRef := s.lastRef
	bits, intra, err := s.c.CodeFrame(f, t)
	if err != nil {
		return err
	}
	ft := FrameP
	if intra {
		ft = FrameI
	}
	if err := s.emit(t, bits, ft); err != nil {
		return err
	}
	newRef := framePix(f)
	for _, pb := range s.pending {
		bb, err := s.c.codeBFrame(pb.frame, prevRef, newRef)
		if err != nil {
			return err
		}
		if err := s.emit(pb.t, bb, FrameB); err != nil {
			return err
		}
	}
	s.pending = s.pending[:0]
	s.lastRef = newRef
	return nil
}

// flush codes tail B frames that never saw a future reference
// (forward-predicted only).
func (s *seqCoder) flush() error {
	for _, pb := range s.pending {
		bb, err := s.c.codeBFrame(pb.frame, s.lastRef, nil)
		if err != nil {
			return err
		}
		if err := s.emit(pb.t, bb, FrameB); err != nil {
			return err
		}
	}
	s.pending = s.pending[:0]
	return nil
}

// CodeSequence codes a complete display-ordered frame sequence with the
// full I/B/P GOP structure, returning per-frame slice bit counts and the
// frame types in display order. The coder's Huffman table must already
// be trained (TrainOn).
func (c *InterCoder) CodeSequence(frames []*Frame) ([][]int, []FrameType, error) {
	if len(frames) == 0 {
		return nil, nil, fmt.Errorf("codec: empty sequence")
	}
	bits := make([][]int, len(frames))
	types := make([]FrameType, len(frames))
	c.Reset()
	sc := &seqCoder{c: c, emit: func(t int, b []int, ft FrameType) error {
		bits[t] = b
		types[t] = ft
		return nil
	}}
	for t, f := range frames {
		if err := sc.push(f, t); err != nil {
			return nil, nil, err
		}
	}
	if err := sc.flush(); err != nil {
		return nil, nil, err
	}
	return bits, types, nil
}
