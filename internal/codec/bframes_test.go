package codec

import (
	"testing"

	"vbr/internal/stats"
)

func bTestConfig() InterCoderConfig {
	return InterCoderConfig{
		CoderConfig: CoderConfig{Width: 64, Height: 64, SlicesPerFrame: 4, QuantStep: 8},
		GOPSize:     6,
		SearchRange: 2,
		BFrames:     2,
	}
}

func TestBFrameConfigValidation(t *testing.T) {
	good := bTestConfig()
	if _, err := NewInterCoder(good); err != nil {
		t.Fatal(err)
	}
	bad := good
	bad.BFrames = -1
	if _, err := NewInterCoder(bad); err == nil {
		t.Error("negative BFrames should fail")
	}
	bad = good
	bad.BFrames = 4 // GOP 6 % 5 != 0
	if _, err := NewInterCoder(bad); err == nil {
		t.Error("GOP not divisible by BFrames+1 should fail")
	}
	if err := DefaultInterCoderConfig().validate(); err != nil {
		t.Errorf("default config with B frames invalid: %v", err)
	}
}

func TestFrameTypePattern(t *testing.T) {
	coder, err := NewInterCoder(bTestConfig())
	if err != nil {
		t.Fatal(err)
	}
	// GOP 6, 2 B frames: display pattern I B B P B B | I B B P B B …
	want := []FrameType{'I', 'B', 'B', 'P', 'B', 'B', 'I', 'B', 'B', 'P', 'B', 'B'}
	for t2, w := range want {
		if got := coder.frameTypeAt(t2); got != w {
			t.Errorf("frame %d: type %c, want %c", t2, got, w)
		}
	}
}

func TestCodeSequenceTypesAndSizes(t *testing.T) {
	coder, err := NewInterCoder(bTestConfig())
	if err != nil {
		t.Fatal(err)
	}
	seq := renderSequence(t, 14, 0.5)
	if err := coder.TrainOn(seq); err != nil {
		t.Fatal(err)
	}
	bits, types, err := coder.CodeSequence(seq)
	if err != nil {
		t.Fatal(err)
	}
	if len(bits) != 14 || len(types) != 14 {
		t.Fatalf("shape %d/%d", len(bits), len(types))
	}
	var iSum, pSum, bSum float64
	var iC, pC, bC int
	for t2 := range bits {
		if bits[t2] == nil {
			t.Fatalf("frame %d not coded", t2)
		}
		var total float64
		for _, b := range bits[t2] {
			total += float64(b)
		}
		if total <= 0 {
			t.Fatalf("frame %d has %v bits", t2, total)
		}
		switch types[t2] {
		case FrameI:
			iSum += total
			iC++
		case FrameP:
			pSum += total
			pC++
		case FrameB:
			bSum += total
			bC++
		default:
			t.Fatalf("frame %d has type %c", t2, types[t2])
		}
		if want := coder.frameTypeAt(t2); t2 < 12 && types[t2] != want {
			t.Errorf("frame %d: type %c, want %c", t2, types[t2], want)
		}
	}
	if iC == 0 || pC == 0 || bC == 0 {
		t.Fatalf("frame type counts I=%d P=%d B=%d", iC, pC, bC)
	}
	// MPEG size ordering on near-static material: B ≤ P < I on average.
	avgI, avgP, avgB := iSum/float64(iC), pSum/float64(pC), bSum/float64(bC)
	if !(avgB <= avgP*1.1 && avgP < avgI) {
		t.Errorf("size ordering violated: I=%.0f P=%.0f B=%.0f", avgI, avgP, avgB)
	}
}

func TestCodeSequenceEmpty(t *testing.T) {
	coder, _ := NewInterCoder(bTestConfig())
	if _, _, err := coder.CodeSequence(nil); err == nil {
		t.Error("empty sequence should fail")
	}
}

func TestCodeBFrameNoReferences(t *testing.T) {
	coder, _ := NewInterCoder(bTestConfig())
	f, _ := NewFrame(64, 64)
	if _, err := coder.codeBFrame(f, nil, nil); err == nil {
		t.Error("B frame without references should fail")
	}
}

func TestCodeSequenceNoBFramesMatchesStreaming(t *testing.T) {
	// With BFrames = 0 the sequence coder must reproduce the plain
	// streaming CodeFrame results exactly.
	cfg := bTestConfig()
	cfg.BFrames = 0
	seq := renderSequence(t, 10, 0.4)

	a, err := NewInterCoder(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := a.TrainOn(seq); err != nil {
		t.Fatal(err)
	}
	bitsSeq, _, err := a.CodeSequence(seq)
	if err != nil {
		t.Fatal(err)
	}

	b, err := NewInterCoder(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := b.TrainOn(seq); err != nil {
		t.Fatal(err)
	}
	b.Reset()
	for t2, f := range seq {
		bits, _, err := b.CodeFrame(f, t2)
		if err != nil {
			t.Fatal(err)
		}
		for s := range bits {
			if bits[s] != bitsSeq[t2][s] {
				t.Fatalf("frame %d slice %d: %d vs %d", t2, s, bits[s], bitsSeq[t2][s])
			}
		}
	}
}

func TestBFramesGenerateTrace(t *testing.T) {
	// End-to-end with B frames: trace generated, GOP-periodic, and B
	// frames visible as the smallest frames.
	scfg := synthSmall()
	scfg.Frames = 120
	coder, err := NewInterCoder(bTestConfig())
	if err != nil {
		t.Fatal(err)
	}
	tr, err := coder.GenerateTrace(scfg, 24)
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Frames) != 120 {
		t.Fatalf("frames %d", len(tr.Frames))
	}
	for i, v := range tr.Frames {
		if v <= 0 {
			t.Fatalf("frame %d empty", i)
		}
	}
	// The 3-frame reference spacing shows up as an acf peak at lag 3.
	r, err := stats.Autocorrelation(tr.Frames, 8)
	if err != nil {
		t.Fatal(err)
	}
	if !(r[3] > r[2] && r[3] > r[4]) {
		t.Errorf("no mini-GOP periodicity: r2=%v r3=%v r4=%v", r[2], r[3], r[4])
	}
}
