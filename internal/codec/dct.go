// Package codec implements the paper's intraframe video compression code
// (§2, Table 1): an 8×8 Discrete Cosine Transform, uniform quantization,
// zigzag scanning, run-length coding and Huffman coding — "essentially the
// same coding as the JPEG standard". It also provides a procedural frame
// source whose spatial complexity is driven by the synthetic movie
// activity process, so that a real coder producing real bit counts
// generates the VBR bandwidth trace, exactly as the paper's hardware did.
package codec

import "math"

// BlockSize is the DCT block edge length used by the paper's coder.
const BlockSize = 8

// Block is an 8×8 tile of samples, row-major.
type Block [BlockSize][BlockSize]float64

// dctMatrix[u][x] = c(u)·cos((2x+1)uπ/16), the orthonormal DCT-II basis.
var dctMatrix [BlockSize][BlockSize]float64

func init() {
	for u := 0; u < BlockSize; u++ {
		c := math.Sqrt(2.0 / BlockSize)
		if u == 0 {
			c = math.Sqrt(1.0 / BlockSize)
		}
		for x := 0; x < BlockSize; x++ {
			dctMatrix[u][x] = c * math.Cos((2*float64(x)+1)*float64(u)*math.Pi/(2*BlockSize))
		}
	}
}

// ForwardDCT computes the 2-D DCT-II of src into dst (separable: rows then
// columns). dst and src may alias.
func ForwardDCT(dst, src *Block) {
	var tmp Block
	// Transform rows: tmp[y][u] = Σ_x src[y][x]·dctMatrix[u][x].
	for y := 0; y < BlockSize; y++ {
		for u := 0; u < BlockSize; u++ {
			var s float64
			for x := 0; x < BlockSize; x++ {
				s += src[y][x] * dctMatrix[u][x]
			}
			tmp[y][u] = s
		}
	}
	// Transform columns: dst[v][u] = Σ_y tmp[y][u]·dctMatrix[v][y].
	for v := 0; v < BlockSize; v++ {
		for u := 0; u < BlockSize; u++ {
			var s float64
			for y := 0; y < BlockSize; y++ {
				s += tmp[y][u] * dctMatrix[v][y]
			}
			dst[v][u] = s
		}
	}
}

// InverseDCT computes the 2-D inverse DCT (DCT-III) of src into dst,
// the exact inverse of ForwardDCT.
func InverseDCT(dst, src *Block) {
	var tmp Block
	for v := 0; v < BlockSize; v++ {
		for x := 0; x < BlockSize; x++ {
			var s float64
			for u := 0; u < BlockSize; u++ {
				s += src[v][u] * dctMatrix[u][x]
			}
			tmp[v][x] = s
		}
	}
	for y := 0; y < BlockSize; y++ {
		for x := 0; x < BlockSize; x++ {
			var s float64
			for v := 0; v < BlockSize; v++ {
				s += tmp[v][x] * dctMatrix[v][y]
			}
			dst[y][x] = s
		}
	}
}

// zigzag maps scan position to (row, col) in the canonical JPEG order so
// low-frequency coefficients come first and zero runs cluster at the end.
var zigzag [BlockSize * BlockSize][2]int

func init() {
	i := 0
	for s := 0; s < 2*BlockSize-1; s++ {
		if s%2 == 0 { // even diagonals go up-right
			for r := min(s, BlockSize-1); r >= 0 && s-r < BlockSize; r-- {
				zigzag[i] = [2]int{r, s - r}
				i++
			}
		} else { // odd diagonals go down-left
			for c := min(s, BlockSize-1); c >= 0 && s-c < BlockSize; c-- {
				zigzag[i] = [2]int{s - c, c}
				i++
			}
		}
	}
}

// Quantize maps DCT coefficients to integer levels with a uniform
// quantizer of the given step (the paper fixes the step size), returning
// them in zigzag order.
func Quantize(coeffs *Block, step float64, out *[BlockSize * BlockSize]int32) {
	for i, rc := range zigzag {
		v := coeffs[rc[0]][rc[1]] / step
		out[i] = int32(math.Round(v))
	}
}

// Dequantize reverses Quantize (up to rounding), producing a coefficient
// block from zigzag-ordered levels.
func Dequantize(levels *[BlockSize * BlockSize]int32, step float64, out *Block) {
	for i, rc := range zigzag {
		out[rc[0]][rc[1]] = float64(levels[i]) * step
	}
}
