package codec

import (
	"math/rand/v2"
	"testing"
)

// fuzzTable builds a representative Huffman table once for the decoder
// fuzzers.
func fuzzTable(tb testing.TB) *HuffmanTable {
	tb.Helper()
	freq := make([]uint64, numSyms)
	for i := range freq {
		freq[i] = uint64(1 + (i*2654435761)%97)
	}
	freq[symEOB] = 100000
	tab, err := NewHuffmanTable(freq)
	if err != nil {
		tb.Fatal(err)
	}
	return tab
}

// FuzzDecodeSymbols feeds arbitrary bitstreams to the Huffman decoder:
// it must terminate (no livelock on truncated codes) and never panic;
// anything decoded must re-encode to a stream that decodes identically.
func FuzzDecodeSymbols(f *testing.F) {
	tab := fuzzTable(f)
	// Seed with a valid block stream.
	rng := rand.New(rand.NewPCG(1, 2))
	var levels [64]int32
	for i := range levels {
		if rng.Float64() < 0.3 {
			levels[i] = int32(rng.IntN(101) - 50)
		}
	}
	syms := RunLengthEncode(&levels, nil)
	w := &BitWriter{}
	if _, err := tab.EncodeSymbols(syms, w); err != nil {
		f.Fatal(err)
	}
	f.Add(w.Bytes())
	f.Add([]byte{})
	f.Add([]byte{0x00})
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0xFF})

	f.Fuzz(func(t *testing.T, data []byte) {
		got, err := tab.DecodeSymbols(NewBitReader(data))
		if err != nil {
			return
		}
		// Decoded symbols must terminate with EOB and re-encode to a
		// stream that decodes to the same symbols.
		if len(got) == 0 || got[len(got)-1] != EOB {
			t.Fatal("decode succeeded without EOB")
		}
		w := &BitWriter{}
		if _, err := tab.EncodeSymbols(got, w); err != nil {
			// Symbols with absurd run lengths can exceed the encoder's
			// amplitude limits; the decoder alphabet is bounded though,
			// so this must not happen.
			t.Fatalf("re-encode failed: %v", err)
		}
		again, err := tab.DecodeSymbols(NewBitReader(w.Bytes()))
		if err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		if len(again) != len(got) {
			t.Fatalf("round trip changed symbol count: %d vs %d", len(again), len(got))
		}
		for i := range got {
			if got[i] != again[i] {
				t.Fatalf("symbol %d changed: %v vs %v", i, got[i], again[i])
			}
		}
	})
}

// FuzzDecodeFrame feeds arbitrary bytes to the full frame decoder.
func FuzzDecodeFrame(f *testing.F) {
	cfg := CoderConfig{Width: 16, Height: 16, SlicesPerFrame: 2, QuantStep: 8}
	coder, err := NewCoder(cfg)
	if err != nil {
		f.Fatal(err)
	}
	src, err := NewFrame(16, 16)
	if err != nil {
		f.Fatal(err)
	}
	if err := RenderFrame(src, RenderParams{Activity: 0.5, SceneID: 3}); err != nil {
		f.Fatal(err)
	}
	if err := coder.Train([]*Frame{src}); err != nil {
		f.Fatal(err)
	}
	stream, err := coder.EncodeFrame(src)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(stream)
	f.Add([]byte{})
	f.Add([]byte{0xAA, 0x55})

	f.Fuzz(func(t *testing.T, data []byte) {
		frame, err := coder.DecodeFrame(data)
		if err != nil {
			return
		}
		if frame.W != 16 || frame.H != 16 || len(frame.Pix) != 256 {
			t.Fatal("decoded frame has wrong shape")
		}
	})
}
