package errs

import (
	"context"
	"errors"
	"fmt"
	"testing"
)

func TestCancelledMatchesBothSentinels(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	err := Cancelled(ctx)
	if !errors.Is(err, ErrCancelled) {
		t.Errorf("Cancelled() does not match ErrCancelled: %v", err)
	}
	if !errors.Is(err, context.Canceled) {
		t.Errorf("Cancelled() does not match context.Canceled: %v", err)
	}
}

func TestCancelledDeadline(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 0)
	defer cancel()
	<-ctx.Done()
	err := Cancelled(ctx)
	if !errors.Is(err, ErrCancelled) {
		t.Errorf("deadline Cancelled() does not match ErrCancelled: %v", err)
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("deadline Cancelled() does not match DeadlineExceeded: %v", err)
	}
}

func TestWrappedSentinelsSurviveFmtErrorf(t *testing.T) {
	cases := []struct {
		name     string
		sentinel error
	}{
		{"trace", ErrInvalidTrace},
		{"model", ErrInvalidModel},
		{"workload", ErrInvalidWorkload},
		{"lags", ErrInfeasibleLags},
		{"ckpt-version", ErrCheckpointVersion},
		{"ckpt-corrupt", ErrCheckpointCorrupt},
		{"ckpt-mismatch", ErrCheckpointMismatch},
		{"target", ErrTargetUnreachable},
		{"combos", ErrAllCombosFailed},
	}
	for _, c := range cases {
		wrapped := fmt.Errorf("outer: %w", fmt.Errorf("inner: %w", c.sentinel))
		if !errors.Is(wrapped, c.sentinel) {
			t.Errorf("%s: double-wrapped error does not match sentinel", c.name)
		}
		if errors.Is(wrapped, ErrCancelled) && c.sentinel != ErrCancelled {
			t.Errorf("%s: unexpected cross-match with ErrCancelled", c.name)
		}
	}
}
