// Package errs defines the sentinel errors shared across the vbr
// subsystems, so callers can classify failures with errors.Is/errors.As
// instead of string matching. Packages wrap these with fmt.Errorf("...:
// %w", ...) to add context while keeping the sentinel reachable.
package errs

import (
	"context"
	"errors"
	"fmt"
)

var (
	// ErrCancelled reports that an operation was interrupted by context
	// cancellation or deadline expiry before completing. Errors carrying
	// it also match the originating context error (context.Canceled or
	// context.DeadlineExceeded).
	ErrCancelled = errors.New("operation cancelled")

	// ErrInvalidTrace reports a structurally invalid bandwidth trace
	// (no frames, inconsistent slice data, negative or non-finite sizes).
	ErrInvalidTrace = errors.New("invalid trace")

	// ErrInvalidModel reports model parameters outside their legal
	// ranges (μ_Γ, σ_Γ, m_T ≤ 0 or H outside (0,1)).
	ErrInvalidModel = errors.New("invalid model parameters")

	// ErrInvalidWorkload reports an arrival process the queueing
	// simulator cannot run (empty, non-positive interval, bad arrivals).
	ErrInvalidWorkload = errors.New("invalid workload")

	// ErrInfeasibleLags reports that N lags at the required minimum
	// pairwise spacing cannot be placed on the trace circle (§5.1).
	ErrInfeasibleLags = errors.New("infeasible lag placement")

	// ErrCheckpointVersion reports a checkpoint written by an
	// incompatible format version.
	ErrCheckpointVersion = errors.New("unsupported checkpoint version")

	// ErrCheckpointCorrupt reports a checkpoint that fails structural
	// validation (bad magic, truncated payload, inconsistent state).
	ErrCheckpointCorrupt = errors.New("corrupt checkpoint")

	// ErrCheckpointMismatch reports a checkpoint whose recorded job
	// parameters disagree with the requested run (different n, H, seed).
	ErrCheckpointMismatch = errors.New("checkpoint does not match run parameters")

	// ErrTargetUnreachable reports a capacity search whose loss target
	// is still violated at the top of the bracket.
	ErrTargetUnreachable = errors.New("loss target unreachable within capacity bracket")

	// ErrAllCombosFailed reports a multiplexer run in which every lag
	// combination failed, leaving no survivors to average over.
	ErrAllCombosFailed = errors.New("all lag combinations failed")

	// ErrInvalidSeries reports a sample series an estimator cannot work
	// on: too short, constant, containing NaN/Inf values, or otherwise
	// degenerate for the statistic being fitted.
	ErrInvalidSeries = errors.New("invalid sample series")

	// ErrUnknownModel reports a traffic-model name or spec that no
	// registered scenario-zoo builder recognizes. CLI front ends map it
	// to a usage error (exit 2); the HTTP layer maps it to 400.
	ErrUnknownModel = errors.New("unknown traffic model")

	// ErrUnknownBackend reports a generation-backend value — enum or
	// string — that names none of the registered Gaussian engines
	// (hosking, davies-harte, paxson, auto). Like ErrUnknownModel it is
	// a request-shaped failure: CLI front ends map it to a usage error
	// (exit 2) and the HTTP layer maps it to 400.
	ErrUnknownBackend = errors.New("unknown generation backend")
)

// Cancelled wraps ctx's error so that the result matches both
// ErrCancelled and the context error. It must only be called when
// ctx.Err() != nil.
func Cancelled(ctx context.Context) error {
	return fmt.Errorf("%w: %w", ErrCancelled, ctx.Err())
}
