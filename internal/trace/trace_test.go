package trace

import (
	"bytes"
	"math"
	"math/rand/v2"
	"strings"
	"testing"
)

func sampleTrace(t *testing.T) *Trace {
	t.Helper()
	rng := rand.New(rand.NewPCG(1, 2))
	frames := make([]float64, 240)
	for i := range frames {
		frames[i] = 20000 + 5000*rng.Float64()
	}
	tr := &Trace{Frames: frames, FrameRate: 24}
	if err := tr.SlicesFromFrames(30, 0.3, rng.Float64); err != nil {
		t.Fatal(err)
	}
	return tr
}

func TestValidate(t *testing.T) {
	tr := sampleTrace(t)
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := &Trace{Frames: nil, FrameRate: 24}
	if err := bad.Validate(); err == nil {
		t.Error("no frames should fail")
	}
	bad = &Trace{Frames: []float64{1}, FrameRate: 0}
	if err := bad.Validate(); err == nil {
		t.Error("zero frame rate should fail")
	}
	bad = &Trace{Frames: []float64{1}, FrameRate: 24, Slices: []float64{1, 2}, SlicesPerFrame: 3}
	if err := bad.Validate(); err == nil {
		t.Error("inconsistent slice count should fail")
	}
	bad = &Trace{Frames: []float64{-5}, FrameRate: 24}
	if err := bad.Validate(); err == nil {
		t.Error("negative frame should fail")
	}
	bad = &Trace{Frames: []float64{math.NaN()}, FrameRate: 24}
	if err := bad.Validate(); err == nil {
		t.Error("NaN frame should fail")
	}
}

func TestDurationAndRates(t *testing.T) {
	tr := &Trace{Frames: []float64{1000, 2000, 3000}, FrameRate: 24}
	if got := tr.Duration(); math.Abs(got-3.0/24) > 1e-12 {
		t.Errorf("duration %v", got)
	}
	if got := tr.MeanRate(); math.Abs(got-2000*8*24) > 1e-9 {
		t.Errorf("mean rate %v", got)
	}
	if got := tr.PeakRate(); math.Abs(got-3000*8*24) > 1e-9 {
		t.Errorf("peak rate %v", got)
	}
}

func TestFrameSliceStats(t *testing.T) {
	tr := sampleTrace(t)
	fs, err := tr.FrameStats()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(fs.TimeUnitMS-41.6667) > 0.01 {
		t.Errorf("frame ΔT %v", fs.TimeUnitMS)
	}
	ss, err := tr.SliceStats()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(ss.TimeUnitMS-1.3889) > 0.001 {
		t.Errorf("slice ΔT %v", ss.TimeUnitMS)
	}
	// Slice mean ≈ frame mean / 30; slice CoV ≥ frame CoV (the paper's
	// 0.31 vs 0.23 ordering) because of within-frame jitter.
	if math.Abs(ss.Mean-fs.Mean/30) > 0.02*fs.Mean/30 {
		t.Errorf("slice mean %v vs frame mean/30 %v", ss.Mean, fs.Mean/30)
	}
	if ss.CoV < fs.CoV {
		t.Errorf("slice CoV %v < frame CoV %v", ss.CoV, fs.CoV)
	}
	noSlices := &Trace{Frames: []float64{1}, FrameRate: 24}
	if _, err := noSlices.SliceStats(); err == nil {
		t.Error("missing slices should fail")
	}
}

func TestSlicesFromFramesConservation(t *testing.T) {
	tr := sampleTrace(t)
	for f, total := range tr.Frames {
		var sum float64
		for s := 0; s < tr.SlicesPerFrame; s++ {
			sum += tr.Slices[f*tr.SlicesPerFrame+s]
		}
		if math.Abs(sum-total) > 1e-6*total {
			t.Fatalf("frame %d: slices sum %v != frame %v", f, sum, total)
		}
	}
}

func TestSlicesFromFramesValidation(t *testing.T) {
	tr := &Trace{Frames: []float64{100}, FrameRate: 24}
	if err := tr.SlicesFromFrames(0, 0, nil); err == nil {
		t.Error("spf 0 should fail")
	}
	if err := tr.SlicesFromFrames(10, 1.5, nil); err == nil {
		t.Error("jitter ≥ 1 should fail")
	}
	// jitter 0 divides evenly.
	if err := tr.SlicesFromFrames(4, 0, nil); err != nil {
		t.Fatal(err)
	}
	for _, s := range tr.Slices {
		if math.Abs(s-25) > 1e-9 {
			t.Fatalf("even division violated: %v", s)
		}
	}
}

func TestWrapAroundAccess(t *testing.T) {
	tr := &Trace{Frames: []float64{10, 20, 30}, FrameRate: 24}
	cases := []struct {
		i    int
		want float64
	}{{0, 10}, {1, 20}, {2, 30}, {3, 10}, {7, 20}, {-1, 30}, {-3, 10}}
	for _, c := range cases {
		if got := tr.FrameAt(c.i); got != c.want {
			t.Errorf("FrameAt(%d) = %v, want %v", c.i, got, c.want)
		}
	}
	tr.Slices = []float64{1, 2, 3}
	tr.SlicesPerFrame = 1
	if got := tr.SliceAt(4); got != 2 {
		t.Errorf("SliceAt(4) = %v", got)
	}
}

func TestLaggedFrames(t *testing.T) {
	tr := &Trace{Frames: []float64{10, 20, 30}, FrameRate: 24}
	got := tr.LaggedFrames(2, 5)
	want := []float64{30, 10, 20, 30, 10}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("lagged = %v, want %v", got, want)
		}
	}
	// The wrapped view uses every frame exactly once per cycle.
	full := tr.LaggedFrames(1, 3)
	sum := full[0] + full[1] + full[2]
	if sum != 60 {
		t.Errorf("wraparound does not conserve total: %v", sum)
	}
}

func TestClipPeaks(t *testing.T) {
	tr := &Trace{
		Frames:         []float64{100, 400, 200},
		Slices:         []float64{50, 50, 300, 100, 120, 80},
		SlicesPerFrame: 2,
		FrameRate:      24,
	}
	frac, err := tr.ClipPeaks(250)
	if err != nil {
		t.Fatal(err)
	}
	// 150 bytes removed of 700 total.
	if math.Abs(frac-150.0/700) > 1e-12 {
		t.Errorf("clipped fraction %v", frac)
	}
	if tr.Frames[1] != 250 {
		t.Errorf("frame not clipped: %v", tr.Frames[1])
	}
	// Slices of the clipped frame rescaled proportionally (300:100 →
	// 187.5:62.5) and still sum to the frame.
	if math.Abs(tr.Slices[2]-187.5) > 1e-9 || math.Abs(tr.Slices[3]-62.5) > 1e-9 {
		t.Errorf("slices not rescaled: %v %v", tr.Slices[2], tr.Slices[3])
	}
	// Unclipped frames untouched.
	if tr.Frames[0] != 100 || tr.Slices[0] != 50 {
		t.Error("unclipped frame modified")
	}
	// Idempotent at the same level.
	frac2, err := tr.ClipPeaks(250)
	if err != nil {
		t.Fatal(err)
	}
	if frac2 != 0 {
		t.Errorf("second clip removed %v", frac2)
	}
	if _, err := tr.ClipPeaks(0); err == nil {
		t.Error("non-positive clip level should fail")
	}
}

func TestClipPeaksReducesPeakRate(t *testing.T) {
	tr := sampleTrace(t)
	before := tr.PeakRate()
	fs, _ := tr.FrameStats()
	if _, err := tr.ClipPeaks(fs.Mean * 1.05); err != nil {
		t.Fatal(err)
	}
	after := tr.PeakRate()
	if after >= before {
		t.Errorf("peak rate not reduced: %v → %v", before, after)
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestBinaryRoundTrip(t *testing.T) {
	tr := sampleTrace(t)
	var buf bytes.Buffer
	if err := tr.WriteBinary(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadBinary(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Frames) != len(tr.Frames) || len(got.Slices) != len(tr.Slices) {
		t.Fatalf("shape mismatch")
	}
	for i := range tr.Frames {
		if got.Frames[i] != tr.Frames[i] {
			t.Fatalf("frame %d mismatch", i)
		}
	}
	for i := range tr.Slices {
		if got.Slices[i] != tr.Slices[i] {
			t.Fatalf("slice %d mismatch", i)
		}
	}
	if got.FrameRate != 24 || got.SlicesPerFrame != 30 {
		t.Errorf("metadata mismatch: %v %v", got.FrameRate, got.SlicesPerFrame)
	}
}

func TestBinaryRoundTripNoSlices(t *testing.T) {
	tr := &Trace{Frames: []float64{1, 2, 3}, FrameRate: 30}
	var buf bytes.Buffer
	if err := tr.WriteBinary(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadBinary(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Slices != nil {
		t.Error("slices should be nil")
	}
}

func TestReadBinaryCorrupt(t *testing.T) {
	if _, err := ReadBinary(strings.NewReader("BOGUS!!!xxxxxxx")); err == nil {
		t.Error("bad magic should fail")
	}
	if _, err := ReadBinary(strings.NewReader("")); err == nil {
		t.Error("empty input should fail")
	}
	// Truncated payload.
	tr := &Trace{Frames: []float64{1, 2, 3}, FrameRate: 30}
	var buf bytes.Buffer
	if err := tr.WriteBinary(&buf); err != nil {
		t.Fatal(err)
	}
	trunc := buf.Bytes()[:buf.Len()-8]
	if _, err := ReadBinary(bytes.NewReader(trunc)); err == nil {
		t.Error("truncated payload should fail")
	}
}

func TestCSVRoundTrip(t *testing.T) {
	tr := &Trace{Frames: []float64{100.5, 200.25, 300}, FrameRate: 24}
	var buf bytes.Buffer
	if err := tr.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCSV(&buf, 24)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Frames) != 3 {
		t.Fatalf("len %d", len(got.Frames))
	}
	for i := range tr.Frames {
		if math.Abs(got.Frames[i]-tr.Frames[i]) > 0.001 {
			t.Errorf("frame %d: %v vs %v", i, got.Frames[i], tr.Frames[i])
		}
	}
}

func TestReadCSVMalformed(t *testing.T) {
	if _, err := ReadCSV(strings.NewReader("frame,bytes\n1,notanumber\n"), 24); err == nil {
		t.Error("bad number should fail")
	}
	if _, err := ReadCSV(strings.NewReader("frame,bytes\n1\n"), 24); err == nil {
		t.Error("missing column should fail")
	}
	if _, err := ReadCSV(strings.NewReader(""), 24); err == nil {
		t.Error("empty file should fail (no frames)")
	}
}
