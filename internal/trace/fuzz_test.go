package trace

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzReadBinary checks that arbitrary input never panics the binary
// parser and that valid traces survive a write/read/write round trip
// byte-identically.
func FuzzReadBinary(f *testing.F) {
	// Seed with a valid serialized trace and some corruptions of it.
	tr := &Trace{Frames: []float64{100, 200, 300}, FrameRate: 24}
	var buf bytes.Buffer
	if err := tr.WriteBinary(&buf); err != nil {
		f.Fatal(err)
	}
	valid := buf.Bytes()
	f.Add(valid)
	f.Add([]byte{})
	f.Add([]byte("VBRTRC01"))
	corrupted := append([]byte(nil), valid...)
	corrupted[10] ^= 0xFF
	f.Add(corrupted)
	f.Add(valid[:len(valid)-4])

	f.Fuzz(func(t *testing.T, data []byte) {
		got, err := ReadBinary(bytes.NewReader(data))
		if err != nil {
			return // rejected input is fine; panics are not
		}
		// Anything accepted must be internally consistent and
		// re-serializable to an equal representation.
		if err := got.Validate(); err != nil {
			t.Fatalf("accepted invalid trace: %v", err)
		}
		var out bytes.Buffer
		if err := got.WriteBinary(&out); err != nil {
			t.Fatalf("rewrite failed: %v", err)
		}
		again, err := ReadBinary(bytes.NewReader(out.Bytes()))
		if err != nil {
			t.Fatalf("reread failed: %v", err)
		}
		if len(again.Frames) != len(got.Frames) {
			t.Fatal("round trip changed shape")
		}
	})
}

// FuzzReadCSV checks the CSV parser never panics and accepted inputs
// validate.
func FuzzReadCSV(f *testing.F) {
	f.Add("frame,bytes\n0,100\n1,200\n")
	f.Add("")
	f.Add("0,1e309\n") // overflow to +Inf must be rejected by Validate
	f.Add("junk line\n")
	f.Add("frame,bytes\n0,-5\n")
	f.Fuzz(func(t *testing.T, data string) {
		got, err := ReadCSV(strings.NewReader(data), 24)
		if err != nil {
			return
		}
		if err := got.Validate(); err != nil {
			t.Fatalf("accepted invalid trace: %v", err)
		}
	})
}
