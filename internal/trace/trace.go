// Package trace defines the VBR video bandwidth trace representation used
// throughout the repository: the per-frame and per-slice byte series of §2
// of the paper, their Table 2 statistics, wraparound lagged views for the
// multiplexing simulations of §5, and serialization.
package trace

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"

	"vbr/internal/errs"
	"vbr/internal/stats"
)

// Trace is a VBR video bandwidth trace. Frames holds bytes per frame;
// Slices, if non-nil, holds bytes per slice with SlicesPerFrame slices
// for every frame (len(Slices) == len(Frames)·SlicesPerFrame).
type Trace struct {
	Frames         []float64
	Slices         []float64
	FrameRate      float64 // frames per second (the paper's 24)
	SlicesPerFrame int     // the paper's 30
}

// Validate checks the structural invariants of the trace. Failures match
// errs.ErrInvalidTrace.
func (tr *Trace) Validate() error {
	if len(tr.Frames) == 0 {
		return fmt.Errorf("trace: no frames: %w", errs.ErrInvalidTrace)
	}
	if tr.FrameRate <= 0 {
		return fmt.Errorf("trace: frame rate must be positive, got %v: %w", tr.FrameRate, errs.ErrInvalidTrace)
	}
	if tr.Slices != nil {
		if tr.SlicesPerFrame < 1 {
			return fmt.Errorf("trace: slices present but SlicesPerFrame=%d: %w", tr.SlicesPerFrame, errs.ErrInvalidTrace)
		}
		if len(tr.Slices) != len(tr.Frames)*tr.SlicesPerFrame {
			return fmt.Errorf("trace: %d slices inconsistent with %d frames × %d: %w",
				len(tr.Slices), len(tr.Frames), tr.SlicesPerFrame, errs.ErrInvalidTrace)
		}
	}
	for i, v := range tr.Frames {
		if v < 0 || math.IsNaN(v) || math.IsInf(v, 0) {
			return fmt.Errorf("trace: invalid frame size %v at %d: %w", v, i, errs.ErrInvalidTrace)
		}
	}
	return nil
}

// Duration returns the playing time of the trace in seconds.
func (tr *Trace) Duration() float64 {
	return float64(len(tr.Frames)) / tr.FrameRate
}

// MeanRate returns the average bandwidth in bits per second.
func (tr *Trace) MeanRate() float64 {
	return stats.Mean(tr.Frames) * 8 * tr.FrameRate
}

// PeakRate returns the peak frame bandwidth in bits per second.
func (tr *Trace) PeakRate() float64 {
	peak := 0.0
	for _, v := range tr.Frames {
		if v > peak {
			peak = v
		}
	}
	return peak * 8 * tr.FrameRate
}

// Stats holds the Table 2 rows for one time resolution.
type Stats struct {
	TimeUnitMS float64 // ΔT in milliseconds
	stats.Summary
}

// FrameStats returns Table 2's frame column.
func (tr *Trace) FrameStats() (Stats, error) {
	s, err := stats.Summarize(tr.Frames)
	if err != nil {
		return Stats{}, err
	}
	return Stats{TimeUnitMS: 1000 / tr.FrameRate, Summary: s}, nil
}

// SliceStats returns Table 2's slice column; it errors if the trace has no
// slice-level data.
func (tr *Trace) SliceStats() (Stats, error) {
	if tr.Slices == nil {
		return Stats{}, fmt.Errorf("trace: no slice-level data")
	}
	s, err := stats.Summarize(tr.Slices)
	if err != nil {
		return Stats{}, err
	}
	return Stats{TimeUnitMS: 1000 / (tr.FrameRate * float64(tr.SlicesPerFrame)), Summary: s}, nil
}

// FrameAt returns the frame size at index i with wraparound, implementing
// the §5.1 rule that each multiplexed copy wraps to the beginning so all
// frames are used once per source.
func (tr *Trace) FrameAt(i int) float64 {
	n := len(tr.Frames)
	i %= n
	if i < 0 {
		i += n
	}
	return tr.Frames[i]
}

// SliceAt returns the slice size at index i with wraparound.
func (tr *Trace) SliceAt(i int) float64 {
	n := len(tr.Slices)
	i %= n
	if i < 0 {
		i += n
	}
	return tr.Slices[i]
}

// LaggedFrames returns a length-n view of the frame series starting at
// frame lag (wrapping around), as used to offset each multiplexed source.
func (tr *Trace) LaggedFrames(lag, n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = tr.FrameAt(lag + i)
	}
	return out
}

// SlicesFromFrames synthesizes a slice-level series by spreading each
// frame's bytes across spf slices with multiplicative weights
// 1 + jitter·u_i (u_i uniform on [-1, 1]) normalized to preserve the frame
// total. jitter=0 divides frames evenly. It mutates the receiver.
func (tr *Trace) SlicesFromFrames(spf int, jitter float64, randFn func() float64) error {
	if spf < 1 {
		return fmt.Errorf("trace: slices per frame must be ≥ 1, got %d", spf)
	}
	if jitter < 0 || jitter >= 1 {
		return fmt.Errorf("trace: jitter must be in [0, 1), got %v", jitter)
	}
	tr.SlicesPerFrame = spf
	tr.Slices = make([]float64, len(tr.Frames)*spf)
	w := make([]float64, spf)
	for f, total := range tr.Frames {
		var sum float64
		for i := range w {
			u := 0.0
			if jitter > 0 && randFn != nil {
				u = 2*randFn() - 1
			}
			w[i] = 1 + jitter*u
			sum += w[i]
		}
		for i := range w {
			tr.Slices[f*spf+i] = total * w[i] / sum
		}
	}
	return nil
}

// ClipPeaks caps every frame at maxBytes, rescaling the frame's slices
// proportionally, and returns the fraction of total bytes removed. It
// implements the coder behaviour the paper's conclusions recommend: "a
// realistic VBR coder should clip such peaks, rather than send them into
// the network ... and degrade the quality slightly", trading a small
// quality loss at the few extreme frames for a much cheaper allocation.
func (tr *Trace) ClipPeaks(maxBytes float64) (clippedFrac float64, err error) {
	if err := tr.Validate(); err != nil {
		return 0, err
	}
	if !(maxBytes > 0) {
		return 0, fmt.Errorf("trace: clip level must be positive, got %v", maxBytes)
	}
	var total, removed float64
	for i, v := range tr.Frames {
		total += v
		if v <= maxBytes {
			continue
		}
		removed += v - maxBytes
		scale := maxBytes / v
		tr.Frames[i] = maxBytes
		if tr.Slices != nil {
			for s := 0; s < tr.SlicesPerFrame; s++ {
				tr.Slices[i*tr.SlicesPerFrame+s] *= scale
			}
		}
	}
	//vbrlint:ignore floateq exact-zero guard before dividing by the byte total
	if total == 0 {
		return 0, nil
	}
	return removed / total, nil
}

const binaryMagic = "VBRTRC01"

// WriteBinary serializes the trace in a compact little-endian format.
func (tr *Trace) WriteBinary(w io.Writer) error {
	if err := tr.Validate(); err != nil {
		return err
	}
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(binaryMagic); err != nil {
		return err
	}
	hdr := []any{
		uint64(len(tr.Frames)),
		uint64(len(tr.Slices)),
		tr.FrameRate,
		uint64(tr.SlicesPerFrame),
	}
	for _, v := range hdr {
		if err := binary.Write(bw, binary.LittleEndian, v); err != nil {
			return err
		}
	}
	for _, v := range tr.Frames {
		if err := binary.Write(bw, binary.LittleEndian, v); err != nil {
			return err
		}
	}
	for _, v := range tr.Slices {
		if err := binary.Write(bw, binary.LittleEndian, v); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadBinary deserializes a trace written by WriteBinary.
func ReadBinary(r io.Reader) (*Trace, error) {
	br := bufio.NewReader(r)
	magic := make([]byte, len(binaryMagic))
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, fmt.Errorf("trace: reading magic: %w", err)
	}
	if string(magic) != binaryMagic {
		return nil, fmt.Errorf("trace: bad magic %q", magic)
	}
	var nFrames, nSlices, spf uint64
	var rate float64
	if err := binary.Read(br, binary.LittleEndian, &nFrames); err != nil {
		return nil, err
	}
	if err := binary.Read(br, binary.LittleEndian, &nSlices); err != nil {
		return nil, err
	}
	if err := binary.Read(br, binary.LittleEndian, &rate); err != nil {
		return nil, err
	}
	if err := binary.Read(br, binary.LittleEndian, &spf); err != nil {
		return nil, err
	}
	const maxLen = 1 << 28 // sanity bound against corrupt headers
	if nFrames == 0 || nFrames > maxLen || nSlices > maxLen {
		return nil, fmt.Errorf("trace: implausible header (frames=%d slices=%d)", nFrames, nSlices)
	}
	tr := &Trace{
		Frames:         make([]float64, nFrames),
		FrameRate:      rate,
		SlicesPerFrame: int(spf),
	}
	if nSlices > 0 {
		tr.Slices = make([]float64, nSlices)
	}
	for i := range tr.Frames {
		if err := binary.Read(br, binary.LittleEndian, &tr.Frames[i]); err != nil {
			return nil, err
		}
	}
	for i := range tr.Slices {
		if err := binary.Read(br, binary.LittleEndian, &tr.Slices[i]); err != nil {
			return nil, err
		}
	}
	if err := tr.Validate(); err != nil {
		return nil, err
	}
	return tr, nil
}

// WriteCSV writes the frame series as "index,bytes" rows with a header,
// the interchange format for external plotting.
func (tr *Trace) WriteCSV(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintln(bw, "frame,bytes"); err != nil {
		return err
	}
	for i, v := range tr.Frames {
		if _, err := fmt.Fprintf(bw, "%d,%.3f\n", i, v); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadCSV parses a frame series written by WriteCSV; frame rate and slice
// data must be supplied by the caller afterwards if needed.
func ReadCSV(r io.Reader, frameRate float64) (*Trace, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	var frames []float64
	first := true
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if first {
			first = false
			if strings.HasPrefix(line, "frame") {
				continue
			}
		}
		parts := strings.Split(line, ",")
		if len(parts) != 2 {
			return nil, fmt.Errorf("trace: malformed CSV line %q", line)
		}
		v, err := strconv.ParseFloat(strings.TrimSpace(parts[1]), 64)
		if err != nil {
			return nil, fmt.Errorf("trace: parsing %q: %w", parts[1], err)
		}
		frames = append(frames, v)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	tr := &Trace{Frames: frames, FrameRate: frameRate}
	if err := tr.Validate(); err != nil {
		return nil, err
	}
	return tr, nil
}
