package fleet

import (
	"testing"

	"vbr/internal/core"
	"vbr/internal/server"
)

func TestRingSuccessorsCoverAllWorkers(t *testing.T) {
	r := NewRing(5, 0)
	for key := uint64(0); key < 1000; key += 37 {
		order := r.Successors(key)
		if len(order) != 5 {
			t.Fatalf("key %d: %d successors, want 5", key, len(order))
		}
		seen := map[int]bool{}
		for _, w := range order {
			if w < 0 || w >= 5 || seen[w] {
				t.Fatalf("key %d: bad successor order %v", key, order)
			}
			seen[w] = true
		}
	}
}

func TestRingStableAndDeterministic(t *testing.T) {
	a, b := NewRing(4, 64), NewRing(4, 64)
	for key := uint64(1); key < 100_000; key += 9973 {
		oa, ob := a.Successors(key), b.Successors(key)
		for i := range oa {
			if oa[i] != ob[i] {
				t.Fatalf("key %d: two identical rings disagree: %v vs %v", key, oa, ob)
			}
		}
	}
}

func TestRingBalance(t *testing.T) {
	const workers, keys = 4, 8192
	r := NewRing(workers, 0)
	counts := make([]int, workers)
	m := server.PaperDefault
	for i := 0; i < keys; i++ {
		m.Hurst = 0.5 + float64(i)/(2*keys) // distinct parameter identities
		counts[r.Successors(ModelKey(m))[0]]++
	}
	for w, c := range counts {
		// 128 virtual points keep the spread tight; 10% of an even share
		// is a loose floor that still catches a broken hash.
		if c < keys/workers/10 {
			t.Fatalf("worker %d owns only %d of %d keys: %v", w, c, keys, counts)
		}
	}
}

func TestModelKeyIdentity(t *testing.T) {
	base := core.Model{MuGamma: 27791, SigmaGamma: 6254, TailSlope: 12, Hurst: 0.8}
	if ModelKey(base) != ModelKey(base) {
		t.Fatal("equal models must hash equal")
	}
	variants := []core.Model{base, base, base, base}
	variants[0].MuGamma++
	variants[1].SigmaGamma++
	variants[2].TailSlope++
	variants[3].Hurst += 0.01
	for i, v := range variants {
		if ModelKey(v) == ModelKey(base) {
			t.Fatalf("variant %d: changed parameter did not change the key", i)
		}
	}
}

func TestTraceKeyIdentity(t *testing.T) {
	base := core.Model{MuGamma: 27791, SigmaGamma: 6254, TailSlope: 12, Hurst: 0.8}

	// The backend is part of the routing identity: same model, different
	// engine, different worker shard (their cache entries are disjoint).
	engines := []string{"hosking", "davies-harte", "paxson", "auto"}
	seen := map[uint64]string{}
	for _, e := range engines {
		k := TraceKey(base, e)
		if prev, dup := seen[k]; dup {
			t.Fatalf("backends %q and %q hash to the same key", prev, e)
		}
		seen[k] = e
	}

	// Alias spellings are one identity — they select the same engine, so
	// they must land on the same worker.
	for _, alias := range []string{"dh", "daviesharte", "davies-harte"} {
		if TraceKey(base, alias) != TraceKey(base, "davies-harte") {
			t.Errorf("alias %q does not share davies-harte's key", alias)
		}
	}

	// An absent parameter hashes as the workers' default engine.
	if TraceKey(base, "") != TraceKey(base, server.DefaultBackend.String()) {
		t.Error("empty backend does not share the default engine's key")
	}

	// The model half still matters with a backend attached.
	other := base
	other.Hurst = 0.7
	if TraceKey(other, "paxson") == TraceKey(base, "paxson") {
		t.Error("changed model parameter did not change the key")
	}

	// Unparseable spellings still hash deterministically (the worker
	// answers 400; the proxy only needs a stable key).
	if TraceKey(base, "fourier") != TraceKey(base, "fourier") {
		t.Error("unknown backend key not deterministic")
	}
}

func TestRingEmpty(t *testing.T) {
	if got := NewRing(0, 0).Successors(12345); got != nil {
		t.Fatalf("empty ring successors = %v, want nil", got)
	}
}
