// Package fleet is the self-healing serving layer over cmd/vbrd: a
// supervisor that spawns and restarts worker processes, a circuit
// breaker per worker tracking its health state, a consistent-hash ring
// that routes requests by model-parameter identity (so each worker's
// generation cache stays hot for its shard), and a front-door reverse
// proxy that retries idempotent trace streams on the next ring node
// when a worker dies mid-request.
//
// The division of labor:
//
//	Breaker     pure state machine: healthy → suspect → down →
//	            restarting, with exponential backoff + jitter
//	Ring        consistent hashing of the genpool parameter identity
//	Supervisor  os/exec lifecycle, /healthz polling, crash restart,
//	            SIGTERM fan-out drain
//	Proxy       request routing, failover retry, load steering
//
// Determinism note: unlike the generation packages, supervision is
// inherently wall-clock-driven (backoff timers, health intervals), so
// this package is exempt from the time.Now lint rule; restart jitter
// still flows from a seeded source so fleet behavior is replayable in
// tests.
package fleet
