package fleet

import (
	"math/rand/v2"
	"sync"
	"time"
)

// BreakerState is one worker's position in the supervision state
// machine.
type BreakerState int

// The supervision states. A worker starts in StateRestarting (spawned,
// awaiting its first health pass), is routable while StateHealthy or
// StateSuspect, and is taken out of rotation in StateDown and
// StateRestarting.
const (
	// StateHealthy: the last health probe succeeded.
	StateHealthy BreakerState = iota
	// StateSuspect: at least one probe or proxied request failed, but
	// fewer than DownAfter in a row — still routable, because a single
	// transient miss must not black-hole a live worker.
	StateSuspect
	// StateDown: the process exited or DownAfter consecutive failures
	// accumulated; the supervisor owes it a restart.
	StateDown
	// StateRestarting: a fresh process was (or is about to be) spawned
	// and has not yet passed a health probe.
	StateRestarting
)

// String names the state for health bodies and logs.
func (s BreakerState) String() string {
	switch s {
	case StateHealthy:
		return "healthy"
	case StateSuspect:
		return "suspect"
	case StateDown:
		return "down"
	case StateRestarting:
		return "restarting"
	default:
		return "unknown"
	}
}

// BreakerConfig parameterizes one worker's circuit breaker. Zero
// values select defaults.
type BreakerConfig struct {
	// DownAfter is the number of consecutive failures that trips
	// suspect → down (default 3; minimum 1).
	DownAfter int
	// MinBackoff is the delay before the first restart attempt
	// (default 250ms); each subsequent restart doubles it.
	MinBackoff time.Duration
	// MaxBackoff caps the doubling (default 5s).
	MaxBackoff time.Duration
	// Jitter is the symmetric fractional spread applied to each backoff
	// delay (default 0.2, i.e. ±20%), so a fleet-wide outage does not
	// restart every worker in lockstep.
	Jitter float64
	// Seed feeds the jitter source; Stream decorrelates workers sharing
	// a seed (pass the worker ID).
	Seed, Stream uint64
	// ResetAfter is the number of consecutive successes after which the
	// backoff schedule resets to MinBackoff (default 10). Requiring
	// sustained health keeps a crash-looping worker from re-earning a
	// short fuse off a single lucky probe.
	ResetAfter int
}

func (c BreakerConfig) withDefaults() BreakerConfig {
	if c.DownAfter < 1 {
		c.DownAfter = 3
	}
	if c.MinBackoff <= 0 {
		c.MinBackoff = 250 * time.Millisecond
	}
	if c.MaxBackoff <= 0 {
		c.MaxBackoff = 5 * time.Second
	}
	if c.MaxBackoff < c.MinBackoff {
		c.MaxBackoff = c.MinBackoff
	}
	if c.Jitter <= 0 {
		c.Jitter = 0.2
	}
	if c.ResetAfter < 1 {
		c.ResetAfter = 10
	}
	return c
}

// Breaker tracks one worker's health transitions. It is a pure state
// machine — it never reads the clock; the supervisor owns timers and
// feeds it events — which keeps every transition unit-testable without
// sleeps. All methods are safe for concurrent use (the proxy and the
// health loop both report into it).
type Breaker struct {
	cfg BreakerConfig

	mu        sync.Mutex
	state     BreakerState
	fails     int           // consecutive failures
	successes int           // consecutive successes since last failure
	backoff   time.Duration // next restart delay, pre-jitter
	restarts  int64
	rng       *rand.Rand
}

// NewBreaker builds a breaker in StateRestarting: the worker exists on
// paper but has not yet proven itself.
func NewBreaker(cfg BreakerConfig) *Breaker {
	cfg = cfg.withDefaults()
	return &Breaker{
		cfg:     cfg,
		state:   StateRestarting,
		backoff: cfg.MinBackoff,
		rng:     rand.New(rand.NewPCG(cfg.Seed, cfg.Stream)),
	}
}

// State reports the current state.
func (b *Breaker) State() BreakerState {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state
}

// Routable reports whether the proxy may send this worker traffic.
func (b *Breaker) Routable() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state == StateHealthy || b.state == StateSuspect
}

// Restarts counts completed restart cycles.
func (b *Breaker) Restarts() int64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.restarts
}

// ReportSuccess records a passed health probe: suspect and restarting
// workers become healthy, and sustained health (ResetAfter consecutive
// successes) resets the backoff schedule.
func (b *Breaker) ReportSuccess() {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.state == StateDown {
		// A probe racing a crash can land after the exit was observed;
		// the exit verdict wins.
		return
	}
	b.state = StateHealthy
	b.fails = 0
	b.successes++
	if b.successes >= b.cfg.ResetAfter {
		b.backoff = b.cfg.MinBackoff
	}
}

// ReportFailure records a failed probe or proxied request and returns
// true when the failure trips the breaker into StateDown. Failures
// against an already-down or restarting worker are no-ops: the
// supervisor is already handling it.
func (b *Breaker) ReportFailure() (tripped bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.state == StateDown || b.state == StateRestarting {
		return false
	}
	b.successes = 0
	b.fails++
	if b.fails >= b.cfg.DownAfter {
		b.state = StateDown
		return true
	}
	b.state = StateSuspect
	return false
}

// MarkDown forces StateDown — the supervisor observed the process
// exit, which outranks any probe history.
func (b *Breaker) MarkDown() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.state = StateDown
	b.successes = 0
}

// MarkRestarting transitions down → restarting for a fresh spawn and
// counts the restart. The first spawn of a worker's life does not go
// through here (NewBreaker already starts restarting).
func (b *Breaker) MarkRestarting() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.state = StateRestarting
	b.fails = 0
	b.successes = 0
	b.restarts++
}

// RestartDelay returns the jittered delay to wait before the next
// spawn and advances the exponential schedule (doubling up to
// MaxBackoff). The jitter draw comes from the breaker's seeded source,
// so a test fleet replays the same delays.
func (b *Breaker) RestartDelay() time.Duration {
	b.mu.Lock()
	defer b.mu.Unlock()
	d := b.backoff
	b.backoff *= 2
	if b.backoff > b.cfg.MaxBackoff {
		b.backoff = b.cfg.MaxBackoff
	}
	// Symmetric jitter in [-Jitter, +Jitter] around d.
	spread := 1 + b.cfg.Jitter*(2*b.rng.Float64()-1)
	return time.Duration(float64(d) * spread)
}
