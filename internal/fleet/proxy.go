package fleet

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"strconv"
	"strings"
	"time"

	"vbr/internal/core"
	"vbr/internal/obs"
	"vbr/internal/server"
)

// ProxyConfig parameterizes the fleet front door. Zero values select
// defaults.
type ProxyConfig struct {
	// MaxAttempts bounds how many ring nodes one trace request may
	// visit (default 3).
	MaxAttempts int
	// PerTryTimeout bounds each attempt's dial plus response headers
	// (default 5s). It deliberately does not cover the body: a stream
	// is as long as the client is slow.
	PerTryTimeout time.Duration
	// RetryAfter is the back-off hint sent when no worker is routable
	// (default 1s — roughly one restart backoff step).
	RetryAfter time.Duration
	// MaxSimulateBody caps the buffered /v1/simulate body (default
	// 64 MiB, matching the worker's own bound).
	MaxSimulateBody int64
	// DefaultModel resolves absent model parameters before hashing, so
	// the proxy and the workers agree on a request's cache identity.
	// Zero selects the paper default, like the workers do.
	DefaultModel core.Model
}

func (c ProxyConfig) withDefaults() ProxyConfig {
	if c.MaxAttempts <= 0 {
		c.MaxAttempts = 3
	}
	if c.PerTryTimeout <= 0 {
		c.PerTryTimeout = 5 * time.Second
	}
	if c.RetryAfter <= 0 {
		c.RetryAfter = time.Second
	}
	if c.MaxSimulateBody <= 0 {
		c.MaxSimulateBody = 64 << 20
	}
	if c.DefaultModel == (core.Model{}) {
		c.DefaultModel = server.PaperDefault
	}
	return c
}

// Proxy is the fleet's front door: it consistent-hashes each request's
// model-parameter identity onto the worker ring (keeping every
// worker's genpool hot for its shard), fails idempotent trace streams
// over to the next ring node when a worker dies mid-request, and
// degrades to partial capacity instead of failing closed.
type Proxy struct {
	sup    *Supervisor
	cfg    ProxyConfig
	client *http.Client
}

// NewProxy builds the front door over a supervisor's fleet.
func NewProxy(sup *Supervisor, cfg ProxyConfig) *Proxy {
	cfg = cfg.withDefaults()
	return &Proxy{
		sup: sup,
		cfg: cfg,
		client: &http.Client{Transport: &http.Transport{
			DialContext:           (&net.Dialer{Timeout: cfg.PerTryTimeout}).DialContext,
			ResponseHeaderTimeout: cfg.PerTryTimeout,
			MaxIdleConnsPerHost:   64,
		}},
	}
}

// Handler returns the fleet route table.
func (p *Proxy) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /v1/trace", p.handleTrace)
	mux.HandleFunc("POST /v1/simulate", p.handleSimulate)
	mux.HandleFunc("GET /v1/jobs/{id}", p.handleJob)
	mux.HandleFunc("GET /healthz", p.handleHealthz)
	return mux
}

// writeProxyError mirrors the workers' JSON error body.
func writeProxyError(w http.ResponseWriter, status int, err error) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(struct {
		Error string `json:"error"`
	}{Error: err.Error()})
}

// unavailable sheds a request for which no worker is routable: 503
// with a Retry-After hint, so clients back off for about one restart
// backoff step instead of spinning.
func (p *Proxy) unavailable(w http.ResponseWriter, scope *obs.Scope, err error) {
	scope.Count("fleet.proxy.unavailable", 1)
	secs := int(p.cfg.RetryAfter.Round(time.Second) / time.Second)
	if secs < 1 {
		secs = 1
	}
	w.Header().Set("Retry-After", strconv.Itoa(secs))
	writeProxyError(w, http.StatusServiceUnavailable, err)
}

// requestModel resolves a request's model parameters against the
// default, tolerating malformed values (the worker will reject them
// with its own 400 — the proxy only needs a routing key).
func (p *Proxy) requestModel(get func(string) string) core.Model {
	m := p.cfg.DefaultModel
	for _, f := range []struct {
		name string
		dst  *float64
	}{
		{"mean", &m.MuGamma},
		{"std", &m.SigmaGamma},
		{"tail", &m.TailSlope},
		{"hurst", &m.Hurst},
	} {
		if v := get(f.name); v != "" {
			if x, err := strconv.ParseFloat(v, 64); err == nil {
				*f.dst = x
			}
		}
	}
	return m
}

// errClientWrite marks a relay failure on the client side of the
// proxy; there is no point failing over when the requester is gone.
var errClientWrite = errors.New("fleet: client write failed")

// handleTrace proxies GET /v1/trace with retry-on-failover. The
// request is idempotent and its byte stream is a pure function of its
// parameters (everything is seeded), so when a worker dies mid-stream
// the proxy re-issues the request on the next ring node and discards
// the prefix it already delivered — the client sees one uninterrupted,
// bitwise-correct stream. Completeness is verified against the
// X-Vbr-Frames header, because a worker that aborts generation ends
// its chunked body cleanly; a clean EOF alone does not prove the trace
// arrived whole.
func (p *Proxy) handleTrace(w http.ResponseWriter, r *http.Request) {
	ctx := r.Context()
	scope := obs.From(ctx)
	scope.Count("fleet.proxy.trace.requests", 1)

	// Scenario-zoo requests route by their spec string; classic fARIMA
	// requests by their resolved model parameters plus the backend —
	// a worker's genpool caches Hosking coefficients, Davies–Harte
	// eigenvalues and Paxson spectra under separate keys, so the engine
	// is part of the cache identity. Either way equal identities hash
	// to the same worker. The spec normalization must match the
	// worker's (query decoding turns "+" into a space).
	q := r.URL.Query()
	var key uint64
	if spec := strings.TrimSpace(strings.ReplaceAll(q.Get("model"), " ", "+")); spec != "" {
		key = SpecKey(spec)
	} else {
		key = TraceKey(p.requestModel(q.Get), q.Get("backend"))
	}
	cands := p.sup.Candidates(key)
	if len(cands) == 0 {
		p.unavailable(w, scope, errors.New("fleet: no worker available for trace"))
		return
	}

	format := q.Get("format")
	if format == "" {
		format = "ndjson"
	}
	flusher, _ := w.(http.Flusher)
	var (
		sent         int64 // bytes already forwarded to the client
		lines        int64 // newlines forwarded (ndjson completeness)
		headerSent   bool
		expectFrames = -1
		lastErr      error
	)
	for attempt, wk := range cands {
		if attempt >= p.cfg.MaxAttempts || ctx.Err() != nil {
			break
		}
		if attempt > 0 {
			scope.Count("fleet.proxy.trace.failovers", 1)
		}
		out, err := http.NewRequestWithContext(ctx, http.MethodGet, wk.BaseURL()+r.URL.RequestURI(), nil)
		if err != nil {
			lastErr = err
			break
		}
		resp, err := p.client.Do(out)
		if err != nil {
			p.sup.ReportFailure(wk.ID)
			lastErr = err
			continue
		}
		if resp.StatusCode != http.StatusOK {
			// 4xx is the request's own fault: the first worker's verdict
			// is final. 5xx means this worker cannot serve it right now;
			// the next ring node may.
			if resp.StatusCode < 500 && !headerSent {
				p.passthrough(w, resp)
				return
			}
			lastErr = fmt.Errorf("fleet: worker %d answered HTTP %d", wk.ID, resp.StatusCode)
			drainClose(resp)
			continue
		}

		wk.streams.Add(1)
		scope.SetGauge(fmt.Sprintf("fleet.worker.%d.streams", wk.ID), float64(wk.streams.Load()))
		n, nl, err := p.relay(w, resp, &headerSent, &expectFrames, sent, flusher)
		wk.streams.Add(-1)
		scope.SetGauge(fmt.Sprintf("fleet.worker.%d.streams", wk.ID), float64(wk.streams.Load()))
		resp.Body.Close()
		sent += n
		lines += nl

		if err == nil && p.traceComplete(format, sent, lines, expectFrames) {
			scope.Count("fleet.proxy.trace.completed", 1)
			return
		}
		if errors.Is(err, errClientWrite) || ctx.Err() != nil {
			scope.Count("fleet.proxy.trace.aborted", 1)
			return
		}
		// Upstream failure (transport error, or a cleanly-terminated but
		// short body): the worker is in trouble; fail over.
		p.sup.ReportFailure(wk.ID)
		if err != nil {
			lastErr = err
		} else {
			lastErr = fmt.Errorf("fleet: worker %d delivered a truncated trace", wk.ID)
		}
	}

	if !headerSent {
		if lastErr == nil {
			lastErr = errors.New("fleet: no worker available for trace")
		}
		p.unavailable(w, scope, fmt.Errorf("fleet: trace failed after retries: %w", lastErr))
		return
	}
	// Headers (and part of the body) are out; the only honest signal
	// left is cutting the stream short.
	scope.Count("fleet.proxy.trace.aborted", 1)
}

// relay forwards one upstream 200 response body, skipping the skip
// bytes the client already holds from a previous attempt. On the first
// attempt it also copies the response headers through.
func (p *Proxy) relay(w http.ResponseWriter, resp *http.Response, headerSent *bool, expectFrames *int, skip int64, flusher http.Flusher) (forwarded, newlines int64, err error) {
	if !*headerSent {
		copyHeaders(w.Header(), resp.Header)
		if v := resp.Header.Get("X-Vbr-Frames"); v != "" {
			if n, perr := strconv.Atoi(v); perr == nil {
				*expectFrames = n
			}
		}
		w.WriteHeader(http.StatusOK)
		*headerSent = true
	}
	if skip > 0 {
		// Deterministic generation makes the replacement stream bitwise
		// identical, so the already-delivered prefix is simply dropped.
		if _, err := io.CopyN(io.Discard, resp.Body, skip); err != nil {
			return 0, 0, fmt.Errorf("fleet: re-synchronizing replacement stream: %w", err)
		}
	}
	buf := make([]byte, 32<<10)
	for {
		n, rerr := resp.Body.Read(buf)
		if n > 0 {
			wn, werr := w.Write(buf[:n])
			forwarded += int64(wn)
			newlines += int64(bytes.Count(buf[:wn], []byte{'\n'}))
			if werr != nil {
				return forwarded, newlines, fmt.Errorf("%w: %w", errClientWrite, werr)
			}
			if flusher != nil {
				flusher.Flush()
			}
		}
		if errors.Is(rerr, io.EOF) {
			return forwarded, newlines, nil
		}
		if rerr != nil {
			return forwarded, newlines, fmt.Errorf("fleet: upstream read: %w", rerr)
		}
	}
}

// traceComplete verifies the full trace went out: exact byte count for
// the binary format, exact line count for NDJSON. Unknown expectations
// (no X-Vbr-Frames header) fall back to trusting the clean EOF.
func (p *Proxy) traceComplete(format string, sent, lines int64, expectFrames int) bool {
	if expectFrames < 0 {
		return true
	}
	if format == "bin" {
		return sent == int64(expectFrames)*8
	}
	return lines == int64(expectFrames)
}

// handleSimulate routes POST /v1/simulate by the body's model
// parameters. A simulate job is never replayed: once a request may
// have reached a worker, a failure comes back to the client as 502.
// Dial failures are the one exception — the request provably never
// left the proxy, so moving to the next ring node is routing, not
// replay.
func (p *Proxy) handleSimulate(w http.ResponseWriter, r *http.Request) {
	ctx := r.Context()
	scope := obs.From(ctx)
	scope.Count("fleet.proxy.simulate.requests", 1)

	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, p.cfg.MaxSimulateBody))
	if err != nil {
		writeProxyError(w, http.StatusBadRequest, fmt.Errorf("fleet: reading simulate body: %w", err))
		return
	}
	// Best-effort key extraction; an undecodable body routes by the
	// default key and earns the worker's own 400.
	var mp struct {
		Mean  float64 `json:"mean"`
		Std   float64 `json:"std"`
		Tail  float64 `json:"tail"`
		Hurst float64 `json:"hurst"`
	}
	_ = json.Unmarshal(body, &mp)
	m := p.requestModel(func(name string) string {
		v := map[string]float64{"mean": mp.Mean, "std": mp.Std, "tail": mp.Tail, "hurst": mp.Hurst}[name]
		//vbrlint:ignore floateq a field omitted from the JSON body decodes to exactly 0; the exact compare detects "not set"
		if v == 0 {
			return ""
		}
		return strconv.FormatFloat(v, 'g', -1, 64)
	})

	cands := p.sup.Candidates(ModelKey(m))
	if len(cands) == 0 {
		p.unavailable(w, scope, errors.New("fleet: no worker available for simulate"))
		return
	}
	var lastErr error
	for attempt, wk := range cands {
		if attempt >= p.cfg.MaxAttempts || ctx.Err() != nil {
			break
		}
		out, err := http.NewRequestWithContext(ctx, http.MethodPost, wk.BaseURL()+"/v1/simulate", bytes.NewReader(body))
		if err != nil {
			lastErr = err
			break
		}
		out.Header.Set("Content-Type", "application/json")
		resp, err := p.client.Do(out)
		if err != nil {
			p.sup.ReportFailure(wk.ID)
			if !isDialError(err) {
				scope.Count("fleet.proxy.simulate.failed", 1)
				writeProxyError(w, http.StatusBadGateway, fmt.Errorf("fleet: simulate not replayed after mid-request failure: %w", err))
				return
			}
			lastErr = err
			continue
		}
		if resp.StatusCode == http.StatusServiceUnavailable && attempt+1 < len(cands) && attempt+1 < p.cfg.MaxAttempts {
			// This worker is shedding; another replica may have room.
			lastErr = fmt.Errorf("fleet: worker %d is shedding load", wk.ID)
			drainClose(resp)
			continue
		}
		p.passthrough(w, resp)
		return
	}
	if lastErr == nil {
		lastErr = errors.New("fleet: no worker available for simulate")
	}
	p.unavailable(w, scope, fmt.Errorf("fleet: simulate failed: %w", lastErr))
}

// handleJob routes a job poll to the worker that owns the job, parsed
// from the id's "w<worker>-" prefix. A job on a worker that is down or
// restarting answers 503 with Retry-After — and because job state
// lives in worker memory, a job accepted before a crash may come back
// 404 after the restart; clients treat that as "resubmit".
func (p *Proxy) handleJob(w http.ResponseWriter, r *http.Request) {
	ctx := r.Context()
	scope := obs.From(ctx)
	scope.Count("fleet.proxy.jobs.requests", 1)

	id := r.PathValue("id")
	workerID, ok := parseJobWorker(id)
	if !ok {
		writeProxyError(w, http.StatusNotFound, fmt.Errorf("fleet: job id %q is not worker-scoped (want w<worker>-job-…)", id))
		return
	}
	wk, ok := p.sup.Worker(workerID)
	if !ok {
		writeProxyError(w, http.StatusNotFound, fmt.Errorf("fleet: job id %q names unknown worker %d", id, workerID))
		return
	}
	if !wk.breaker.Routable() || wk.BaseURL() == "" {
		secs := int(p.cfg.RetryAfter.Round(time.Second) / time.Second)
		if secs < 1 {
			secs = 1
		}
		w.Header().Set("Retry-After", strconv.Itoa(secs))
		writeProxyError(w, http.StatusServiceUnavailable, fmt.Errorf("fleet: worker %d is %s; retry the poll shortly", workerID, wk.breaker.State()))
		return
	}
	out, err := http.NewRequestWithContext(ctx, http.MethodGet, wk.BaseURL()+"/v1/jobs/"+id, nil)
	if err != nil {
		writeProxyError(w, http.StatusInternalServerError, err)
		return
	}
	resp, err := p.client.Do(out)
	if err != nil {
		p.sup.ReportFailure(wk.ID)
		writeProxyError(w, http.StatusBadGateway, fmt.Errorf("fleet: polling worker %d: %w", workerID, err))
		return
	}
	p.passthrough(w, resp)
}

// parseJobWorker extracts N from a "w<N>-..." job id.
func parseJobWorker(id string) (int, bool) {
	if !strings.HasPrefix(id, "w") {
		return 0, false
	}
	rest := id[1:]
	dash := strings.IndexByte(rest, '-')
	if dash <= 0 {
		return 0, false
	}
	n, err := strconv.Atoi(rest[:dash])
	if err != nil || n < 0 {
		return 0, false
	}
	return n, true
}

// FleetHealth is the fleet /healthz body: the aggregate verdict plus
// one row per worker.
type FleetHealth struct {
	// Status is "ok" (whole fleet healthy), "degraded" (serving at
	// reduced capacity), or "down" (no routable worker; the supervisor
	// is still restarting, so the fleet process itself stays 200).
	Status   string         `json:"status"`
	Workers  []WorkerStatus `json:"workers"`
	Restarts int64          `json:"restarts"`
}

// handleHealthz aggregates worker states. It reads supervisor memory
// only — no generation, no worker round-trips — so it stays cheap
// enough for tight poll loops.
func (p *Proxy) handleHealthz(w http.ResponseWriter, r *http.Request) {
	scope := obs.From(r.Context())
	scope.Count("fleet.healthz.requests", 1)
	snap := p.sup.Snapshot()
	routable, clean := 0, 0
	for _, ws := range snap {
		switch ws.State {
		case "healthy", "suspect":
			if ws.Addr != "" {
				routable++
			}
			if ws.State == "healthy" && !ws.Degraded {
				clean++
			}
		}
	}
	h := FleetHealth{Workers: snap, Restarts: p.sup.Restarts()}
	switch {
	case routable == 0:
		h.Status = "down"
	case clean == len(snap):
		h.Status = server.HealthOK
	default:
		h.Status = server.HealthDegraded
	}
	scope.SetGauge("fleet.workers.routable", float64(routable))
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	_ = json.NewEncoder(w).Encode(h)
}

// passthrough copies an upstream response (status, headers, body) to
// the client unchanged.
func (p *Proxy) passthrough(w http.ResponseWriter, resp *http.Response) {
	defer resp.Body.Close()
	copyHeaders(w.Header(), resp.Header)
	w.WriteHeader(resp.StatusCode)
	_, _ = io.Copy(w, resp.Body)
}

// copyHeaders copies end-to-end headers, dropping the hop-by-hop set
// net/http manages per connection.
func copyHeaders(dst, src http.Header) {
	for k, vs := range src {
		switch k {
		case "Connection", "Keep-Alive", "Transfer-Encoding", "Upgrade":
			continue
		}
		for _, v := range vs {
			dst.Add(k, v)
		}
	}
}

// drainClose discards a bounded amount of an unwanted response body so
// the connection can be reused, then closes it.
func drainClose(resp *http.Response) {
	_, _ = io.Copy(io.Discard, io.LimitReader(resp.Body, 64<<10))
	resp.Body.Close()
}

// isDialError reports whether err failed before the request left the
// proxy (connection refused / unreachable), which makes rerouting a
// POST safe: the worker never saw it.
func isDialError(err error) bool {
	var op *net.OpError
	return errors.As(err, &op) && op.Op == "dial"
}
