package fleet

import (
	"encoding/binary"
	"math"
	"sort"

	"vbr/internal/backend"
	"vbr/internal/core"
	"vbr/internal/server"
)

// defaultRingReplicas is the number of virtual points per worker. 128
// keeps the shard-size spread tight (a few percent) while the ring
// stays a few KiB for any realistic fleet.
const defaultRingReplicas = 128

// Ring consistent-hashes request keys onto worker IDs. It is built
// once for a fleet and never mutated — worker failure is handled by
// walking to the next ring node, not by re-ringing, so a worker's
// shard (and its warm genpool) is stable across its own restarts.
type Ring struct {
	points []ringPoint // sorted by hash
	n      int
}

type ringPoint struct {
	hash   uint64
	worker int
}

// NewRing builds a ring over workers 0..n-1 with the given number of
// virtual points per worker (≤ 0 selects the default).
func NewRing(n, replicas int) *Ring {
	if replicas <= 0 {
		replicas = defaultRingReplicas
	}
	r := &Ring{points: make([]ringPoint, 0, n*replicas), n: n}
	var buf [16]byte
	for w := 0; w < n; w++ {
		for v := 0; v < replicas; v++ {
			binary.LittleEndian.PutUint64(buf[0:8], uint64(w))
			binary.LittleEndian.PutUint64(buf[8:16], uint64(v))
			r.points = append(r.points, ringPoint{hash: fnv1a(buf[:]), worker: w})
		}
	}
	sort.Slice(r.points, func(i, j int) bool { return r.points[i].hash < r.points[j].hash })
	return r
}

// Workers reports the fleet size the ring was built for.
func (r *Ring) Workers() int { return r.n }

// Successors returns all workers in ring order starting from key's
// successor point, each exactly once. The first element is the primary
// shard owner; the rest are the failover order, so a dead primary's
// keys spill onto its ring neighbors rather than re-hashing the whole
// key space.
func (r *Ring) Successors(key uint64) []int {
	if r.n == 0 {
		return nil
	}
	out := make([]int, 0, r.n)
	seen := make([]bool, r.n)
	start := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= key })
	for i := 0; i < len(r.points) && len(out) < r.n; i++ {
		p := r.points[(start+i)%len(r.points)]
		if !seen[p.worker] {
			seen[p.worker] = true
			out = append(out, p.worker)
		}
	}
	return out
}

// ModelKey hashes the four model parameters under the same identity
// genpool uses — math.Float64bits, so only exact parameter equality
// collides — ensuring every request that would hit one cache entry
// routes to the worker holding it.
func ModelKey(m core.Model) uint64 {
	var buf [32]byte
	binary.LittleEndian.PutUint64(buf[0:8], math.Float64bits(m.MuGamma))
	binary.LittleEndian.PutUint64(buf[8:16], math.Float64bits(m.SigmaGamma))
	binary.LittleEndian.PutUint64(buf[16:24], math.Float64bits(m.TailSlope))
	binary.LittleEndian.PutUint64(buf[24:32], math.Float64bits(m.Hurst))
	return fnv1a(buf[:])
}

// SpecKey hashes a scenario-zoo model spec for ring routing. A zoo
// request's identity is the spec string itself — not the μΓ/σΓ/m_T/H
// quadruple — so equal specs route to the same worker and keep its
// per-model state hot.
func SpecKey(spec string) uint64 { return fnv1a([]byte(spec)) }

// TraceKey hashes a classic trace request's full cache identity: the
// model quadruple plus the Gaussian backend. The backend string is
// canonicalized through backend.Parse, so every alias spelling
// ("dh", "daviesharte", "davies-harte") lands on the same worker, and
// an empty parameter hashes as the workers' own default engine. An
// unparseable spelling hashes verbatim — the worker will answer 400,
// and which worker says so does not matter.
func TraceKey(m core.Model, backendParam string) uint64 {
	canon := server.DefaultBackend.String()
	if backendParam != "" {
		if b, err := backend.Parse(backendParam); err == nil {
			canon = b.String()
		} else {
			canon = backendParam
		}
	}
	var buf [32]byte
	binary.LittleEndian.PutUint64(buf[0:8], math.Float64bits(m.MuGamma))
	binary.LittleEndian.PutUint64(buf[8:16], math.Float64bits(m.SigmaGamma))
	binary.LittleEndian.PutUint64(buf[16:24], math.Float64bits(m.TailSlope))
	binary.LittleEndian.PutUint64(buf[24:32], math.Float64bits(m.Hurst))
	return fnv1a(append(buf[:], canon...))
}

// fnv1a is the 64-bit FNV-1a hash (stdlib hash/fnv without the
// allocation of the hash.Hash64 interface).
func fnv1a(b []byte) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for _, c := range b {
		h ^= uint64(c)
		h *= prime64
	}
	return h
}
