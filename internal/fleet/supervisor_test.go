package fleet

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"testing"
	"time"

	"vbr/internal/cli"
)

// TestMain doubles as the supervised worker: when the test binary is
// re-exec'd with the marker argument it behaves like a tiny vbrd
// (listen banner on stdout, /healthz, SIGTERM drain) instead of
// running the test suite. This keeps supervisor tests hermetic — no
// dependency on a built vbrd.
func TestMain(m *testing.M) {
	if len(os.Args) > 1 && os.Args[1] == "fleet-helper-worker" {
		helperWorker(os.Args[2:])
		return
	}
	os.Exit(m.Run())
}

// helperWorker is the supervised process. Modes:
//
//	serve       healthy worker until SIGTERM (exit 0)
//	crash-once  first run (state file absent) serves, then exits 1
//	            after -crash-after; later runs serve normally
//	silent      never announces a listener (start-timeout path)
func helperWorker(args []string) {
	fs := flag.NewFlagSet("fleet-helper-worker", flag.ExitOnError)
	mode := fs.String("mode", "serve", "")
	stateFile := fs.String("state-file", "", "")
	crashAfter := fs.Duration("crash-after", 200*time.Millisecond, "")
	if err := fs.Parse(args); err != nil {
		os.Exit(2)
	}

	if *mode == "silent" {
		time.Sleep(time.Minute)
		os.Exit(1)
	}

	crashing := false
	if *mode == "crash-once" && *stateFile != "" {
		if _, err := os.Stat(*stateFile); err != nil {
			crashing = true
			if err := os.WriteFile(*stateFile, []byte("crashed\n"), 0o644); err != nil {
				os.Exit(2)
			}
		}
	}

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		os.Exit(2)
	}
	cli.AnnounceListen(os.Stdout, "fleet-helper-worker", ln.Addr().String())

	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(map[string]string{"status": "ok"})
	})
	srv := &http.Server{Handler: mux}

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, syscall.SIGTERM)
	go func() {
		<-sigc
		fmt.Fprintln(os.Stderr, "helper drained")
		os.Exit(0)
	}()
	if crashing {
		go func() {
			time.Sleep(*crashAfter)
			os.Exit(1)
		}()
	}
	_ = srv.Serve(ln)
	os.Exit(0)
}

// helperConfig builds a fast-cadence supervisor config running this
// test binary in worker mode.
func helperConfig(t *testing.T, workers int, workerArgs func(int) []string) Config {
	t.Helper()
	self, err := os.Executable()
	if err != nil {
		t.Fatal(err)
	}
	return Config{
		Bin: self,
		Args: func(id int) []string {
			return append([]string{"fleet-helper-worker"}, workerArgs(id)...)
		},
		Workers:        workers,
		HealthInterval: 25 * time.Millisecond,
		HealthTimeout:  time.Second,
		StartTimeout:   5 * time.Second,
		Breaker: BreakerConfig{
			MinBackoff: 20 * time.Millisecond,
			MaxBackoff: 100 * time.Millisecond,
		},
		WorkerStderr: os.Stderr,
		Logf:         t.Logf,
	}
}

func waitFor(t *testing.T, what string, timeout time.Duration, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

func TestSupervisorStartsAndDrainsFleet(t *testing.T) {
	sup, err := NewSupervisor(helperConfig(t, 2, func(int) []string {
		return []string{"-mode", "serve"}
	}))
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	sup.Start(ctx)

	rctx, cancel := context.WithTimeout(ctx, 10*time.Second)
	defer cancel()
	if err := sup.WaitReady(rctx, 2); err != nil {
		t.Fatalf("fleet never became ready: %v", err)
	}
	for _, ws := range sup.Snapshot() {
		if ws.State != "healthy" || ws.Addr == "" || ws.PID == 0 {
			t.Fatalf("worker %d not fully up: %+v", ws.ID, ws)
		}
	}

	// SIGTERM fan-out: helpers exit 0 on the signal, so nobody needs
	// the hard kill.
	if stragglers := sup.Stop(ctx, 5*time.Second); stragglers != 0 {
		t.Fatalf("%d workers needed a hard kill on drain", stragglers)
	}
}

func TestSupervisorRestartsCrashedWorker(t *testing.T) {
	stateFile := t.TempDir() + "/crashed"
	sup, err := NewSupervisor(helperConfig(t, 1, func(int) []string {
		return []string{"-mode", "crash-once", "-state-file", stateFile, "-crash-after", "150ms"}
	}))
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	sup.Start(ctx)
	defer sup.Stop(ctx, 5*time.Second)

	rctx, cancel := context.WithTimeout(ctx, 10*time.Second)
	defer cancel()
	if err := sup.WaitReady(rctx, 1); err != nil {
		t.Fatalf("worker never became ready: %v", err)
	}
	firstPID := sup.Snapshot()[0].PID

	// The worker kills itself; the supervisor must notice, back off,
	// respawn, and the replacement must come back healthy.
	waitFor(t, "restart after crash", 15*time.Second, func() bool {
		return sup.Restarts() >= 1 && sup.workers[0].breaker.Routable()
	})
	snap := sup.Snapshot()[0]
	if snap.PID == firstPID {
		t.Fatalf("restarted worker kept pid %d", firstPID)
	}
	if snap.State != "healthy" {
		t.Fatalf("restarted worker state %q, want healthy", snap.State)
	}
	if snap.Restarts < 1 {
		t.Fatalf("restart counter = %d, want ≥ 1", snap.Restarts)
	}
}

func TestSupervisorSIGKILLRecovery(t *testing.T) {
	sup, err := NewSupervisor(helperConfig(t, 1, func(int) []string {
		return []string{"-mode", "serve"}
	}))
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	sup.Start(ctx)
	defer sup.Stop(ctx, 5*time.Second)

	rctx, cancel := context.WithTimeout(ctx, 10*time.Second)
	defer cancel()
	if err := sup.WaitReady(rctx, 1); err != nil {
		t.Fatalf("worker never became ready: %v", err)
	}
	pid := sup.Snapshot()[0].PID

	// Chaos: SIGKILL skips the worker's drain path entirely.
	if err := syscall.Kill(pid, syscall.SIGKILL); err != nil {
		t.Fatalf("SIGKILL worker: %v", err)
	}
	waitFor(t, "recovery from SIGKILL", 15*time.Second, func() bool {
		s := sup.Snapshot()[0]
		return s.Restarts >= 1 && s.State == "healthy" && s.PID != pid
	})
}

func TestSupervisorStartTimeoutMarksDown(t *testing.T) {
	cfg := helperConfig(t, 1, func(int) []string {
		return []string{"-mode", "silent"}
	})
	cfg.StartTimeout = 300 * time.Millisecond
	sup, err := NewSupervisor(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	sup.Start(ctx)
	defer sup.Stop(ctx, 2*time.Second)

	// A worker that never announces a listener burns its StartTimeout,
	// is marked down, and the supervisor keeps cycling it.
	waitFor(t, "silent worker cycled", 15*time.Second, func() bool {
		return sup.Restarts() >= 1
	})
	if sup.workers[0].breaker.Routable() {
		t.Fatal("silent worker must never become routable")
	}
}
