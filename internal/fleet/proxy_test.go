package fleet

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync/atomic"
	"testing"

	"vbr/internal/server"
)

// fakeFleet builds a supervisor that is never started: tests inject
// worker addresses and breaker states by hand.
func fakeFleet(t *testing.T, n int) *Supervisor {
	t.Helper()
	sup, err := NewSupervisor(Config{
		Bin:     "unused",
		Args:    func(int) []string { return nil },
		Workers: n,
	})
	if err != nil {
		t.Fatal(err)
	}
	return sup
}

// route makes a worker routable at the given URL.
func route(w *Worker, url string) {
	w.mu.Lock()
	w.baseURL = url
	w.mu.Unlock()
	w.breaker.ReportSuccess()
}

// candidateOrder reports the failover order (worker IDs) the proxy
// will walk for the paper-default key, which is what a query with no
// model parameters routes by.
func candidateOrder(t *testing.T, sup *Supervisor) []int {
	t.Helper()
	for _, w := range sup.Workers() {
		route(w, "http://placeholder.invalid")
	}
	var ids []int
	for _, w := range sup.Candidates(TraceKey(server.PaperDefault, "")) {
		ids = append(ids, w.ID)
	}
	if len(ids) != len(sup.Workers()) {
		t.Fatalf("candidate order %v does not cover the fleet", ids)
	}
	return ids
}

// ndjsonPayload builds a deterministic fake trace body.
func ndjsonPayload(frames int) []byte {
	var buf bytes.Buffer
	for i := 0; i < frames; i++ {
		fmt.Fprintf(&buf, "{\"frame\":%d,\"bytes\":%d}\n", i, 1000+i)
	}
	return buf.Bytes()
}

// traceBackend serves payload with trace headers; truncateAt >= 0 cuts
// the body at that byte offset, either aborting the connection (abort)
// or returning cleanly — the latter is the sneaky failure mode where
// the proxy still sees a well-formed EOF.
func traceBackend(frames int, payload []byte, truncateAt int, abort bool, hits *atomic.Int32) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits.Add(1)
		w.Header().Set("Content-Type", "application/x-ndjson")
		w.Header().Set("X-Vbr-Frames", strconv.Itoa(frames))
		w.Header().Set("X-Vbr-Backend", "fake")
		w.WriteHeader(http.StatusOK)
		if truncateAt >= 0 && truncateAt < len(payload) {
			_, _ = w.Write(payload[:truncateAt])
			if f, ok := w.(http.Flusher); ok {
				f.Flush()
			}
			if abort {
				panic(http.ErrAbortHandler)
			}
			return
		}
		_, _ = w.Write(payload)
	})
}

func TestProxyTraceRoutesConsistently(t *testing.T) {
	const frames = 50
	payload := ndjsonPayload(frames)
	sup := fakeFleet(t, 2)
	var hits [2]atomic.Int32
	for i, w := range sup.Workers() {
		srv := httptest.NewServer(traceBackend(frames, payload, -1, false, &hits[i]))
		defer srv.Close()
		route(w, srv.URL)
	}
	front := httptest.NewServer(NewProxy(sup, ProxyConfig{}).Handler())
	defer front.Close()

	for i := 0; i < 3; i++ {
		resp, err := http.Get(front.URL + "/v1/trace?n=50&seed=1")
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("HTTP %d", resp.StatusCode)
		}
		if !bytes.Equal(body, payload) {
			t.Fatalf("request %d: proxied body differs from backend payload", i)
		}
		if resp.Header.Get("X-Vbr-Backend") != "fake" {
			t.Fatal("trace headers not passed through")
		}
	}
	// Same parameters must pin to one worker (hot cache), not round-robin.
	if a, b := hits[0].Load(), hits[1].Load(); (a != 3 || b != 0) && (a != 0 || b != 3) {
		t.Fatalf("hits = [%d %d], want all 3 on one worker", a, b)
	}
}

// TestProxyTraceBackendRouting pins the backend half of the routing
// key: alias spellings of one engine stick to one worker (its spectrum
// cache stays hot), and the proxy still round-trips the body intact
// with a backend parameter present.
func TestProxyTraceBackendRouting(t *testing.T) {
	const frames = 20
	payload := ndjsonPayload(frames)
	sup := fakeFleet(t, 4)
	var hits [4]atomic.Int32
	for i, w := range sup.Workers() {
		srv := httptest.NewServer(traceBackend(frames, payload, -1, false, &hits[i]))
		defer srv.Close()
		route(w, srv.URL)
	}
	front := httptest.NewServer(NewProxy(sup, ProxyConfig{}).Handler())
	defer front.Close()

	for _, alias := range []string{"davies-harte", "daviesharte", "dh"} {
		resp, err := http.Get(front.URL + "/v1/trace?n=20&seed=1&backend=" + alias)
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("backend=%s: HTTP %d", alias, resp.StatusCode)
		}
		if !bytes.Equal(body, payload) {
			t.Fatalf("backend=%s: proxied body differs from backend payload", alias)
		}
	}
	busy := 0
	for i := range hits {
		if n := hits[i].Load(); n > 0 {
			busy++
			if n != 3 {
				t.Fatalf("worker %d served %d of 3 alias requests", i, n)
			}
		}
	}
	if busy != 1 {
		t.Fatalf("alias spellings spread across %d workers, want 1", busy)
	}
}

func TestProxyTraceFailoverMidStreamAbort(t *testing.T) {
	testProxyTraceFailover(t, true)
}

// A worker that gives up mid-generation still ends its chunked body
// cleanly — the proxy must detect the short stream from X-Vbr-Frames
// and fail over anyway.
func TestProxyTraceFailoverCleanTruncation(t *testing.T) {
	testProxyTraceFailover(t, false)
}

func testProxyTraceFailover(t *testing.T, abort bool) {
	const frames = 100
	payload := ndjsonPayload(frames)
	cut := len(payload)*37/100 + 3 // deliberately mid-line

	sup := fakeFleet(t, 2)
	order := candidateOrder(t, sup)
	var hits [2]atomic.Int32

	primary := httptest.NewServer(traceBackend(frames, payload, cut, abort, &hits[0]))
	defer primary.Close()
	secondary := httptest.NewServer(traceBackend(frames, payload, -1, false, &hits[1]))
	defer secondary.Close()
	route(sup.workers[order[0]], primary.URL)
	route(sup.workers[order[1]], secondary.URL)

	front := httptest.NewServer(NewProxy(sup, ProxyConfig{}).Handler())
	defer front.Close()

	resp, err := http.Get(front.URL + "/v1/trace?n=100&seed=1")
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatalf("reading proxied stream: %v", err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("HTTP %d", resp.StatusCode)
	}
	if !bytes.Equal(body, payload) {
		t.Fatalf("resumed stream differs: got %d bytes, want %d", len(body), len(payload))
	}
	if hits[0].Load() != 1 || hits[1].Load() != 1 {
		t.Fatalf("hits = [%d %d], want one request to each worker", hits[0].Load(), hits[1].Load())
	}
	// The failed worker's breaker heard about it.
	if st := sup.workers[order[0]].breaker.State(); st != StateSuspect {
		t.Fatalf("primary breaker = %v, want suspect after one failure", st)
	}
}

func TestProxyTrace4xxIsFinal(t *testing.T) {
	sup := fakeFleet(t, 2)
	order := candidateOrder(t, sup)
	var secondaryHits atomic.Int32

	primary := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, `{"error":"n out of range"}`, http.StatusBadRequest)
	}))
	defer primary.Close()
	secondary := httptest.NewServer(traceBackend(10, ndjsonPayload(10), -1, false, &secondaryHits))
	defer secondary.Close()
	route(sup.workers[order[0]], primary.URL)
	route(sup.workers[order[1]], secondary.URL)

	front := httptest.NewServer(NewProxy(sup, ProxyConfig{}).Handler())
	defer front.Close()

	resp, err := http.Get(front.URL + "/v1/trace?n=10")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("HTTP %d, want 400 passed through", resp.StatusCode)
	}
	if secondaryHits.Load() != 0 {
		t.Fatal("a 4xx must not fail over to another worker")
	}
}

func TestProxyNoWorkersIs503WithRetryAfter(t *testing.T) {
	sup := fakeFleet(t, 2) // nobody routable
	front := httptest.NewServer(NewProxy(sup, ProxyConfig{}).Handler())
	defer front.Close()

	for _, path := range []string{"/v1/trace?n=10", "/v1/simulate"} {
		var resp *http.Response
		var err error
		if strings.HasPrefix(path, "/v1/simulate") {
			resp, err = http.Post(front.URL+path, "application/json", strings.NewReader(`{"n":100}`))
		} else {
			resp, err = http.Get(front.URL + path)
		}
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusServiceUnavailable {
			t.Fatalf("%s: HTTP %d, want 503", path, resp.StatusCode)
		}
		if ra, err := strconv.Atoi(resp.Header.Get("Retry-After")); err != nil || ra < 1 {
			t.Fatalf("%s: Retry-After = %q, want ≥ 1s", path, resp.Header.Get("Retry-After"))
		}
	}
}

func TestProxySimulateDialFailureReroutes(t *testing.T) {
	sup := fakeFleet(t, 2)
	order := candidateOrder(t, sup)

	// A listener opened and immediately closed yields a connection
	// refused — the one failure mode where rerouting a POST is safe.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	deadURL := "http://" + ln.Addr().String()
	ln.Close()

	var gotBody atomic.Value
	live := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		b, _ := io.ReadAll(r.Body)
		gotBody.Store(string(b))
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusAccepted)
		fmt.Fprintln(w, `{"id":"w1-job-000001","state":"queued"}`)
	}))
	defer live.Close()

	route(sup.workers[order[0]], deadURL)
	route(sup.workers[order[1]], live.URL)

	front := httptest.NewServer(NewProxy(sup, ProxyConfig{}).Handler())
	defer front.Close()

	const body = `{"n":3000,"capacity_bps":6e6}`
	resp, err := http.Post(front.URL+"/v1/simulate", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("HTTP %d, want 202 from the live replica", resp.StatusCode)
	}
	if got := gotBody.Load(); got != body {
		t.Fatalf("live replica saw body %q, want %q", got, body)
	}
	if st := sup.workers[order[0]].breaker.State(); st != StateSuspect {
		t.Fatalf("dead worker breaker = %v, want suspect", st)
	}
}

func TestProxySimulateShedFailsOver(t *testing.T) {
	sup := fakeFleet(t, 2)
	order := candidateOrder(t, sup)

	shedding := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Retry-After", "1")
		http.Error(w, `{"error":"job queue full"}`, http.StatusServiceUnavailable)
	}))
	defer shedding.Close()
	live := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusAccepted)
		fmt.Fprintln(w, `{"id":"w1-job-000002","state":"queued"}`)
	}))
	defer live.Close()
	route(sup.workers[order[0]], shedding.URL)
	route(sup.workers[order[1]], live.URL)

	front := httptest.NewServer(NewProxy(sup, ProxyConfig{}).Handler())
	defer front.Close()

	resp, err := http.Post(front.URL+"/v1/simulate", "application/json", strings.NewReader(`{"n":100}`))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("HTTP %d, want 202 after shedding failover", resp.StatusCode)
	}
}

func TestProxyJobRouting(t *testing.T) {
	sup := fakeFleet(t, 3)
	var hitPath atomic.Value
	owner := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hitPath.Store(r.URL.Path)
		fmt.Fprintln(w, `{"id":"w1-job-000007","state":"done"}`)
	}))
	defer owner.Close()
	wrong := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		t.Error("job poll reached a non-owning worker")
	}))
	defer wrong.Close()
	route(sup.workers[0], wrong.URL)
	route(sup.workers[1], owner.URL)
	route(sup.workers[2], wrong.URL)

	front := httptest.NewServer(NewProxy(sup, ProxyConfig{}).Handler())
	defer front.Close()

	resp, err := http.Get(front.URL + "/v1/jobs/w1-job-000007")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("HTTP %d, want 200", resp.StatusCode)
	}
	if got := hitPath.Load(); got != "/v1/jobs/w1-job-000007" {
		t.Fatalf("owner saw path %v", got)
	}

	// Un-prefixed ids cannot be routed.
	resp, err = http.Get(front.URL + "/v1/jobs/job-000007")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unroutable id: HTTP %d, want 404", resp.StatusCode)
	}

	// Owner down: poll answers 503 + Retry-After, not a silent 404.
	sup.workers[1].breaker.MarkDown()
	resp, err = http.Get(front.URL + "/v1/jobs/w1-job-000007")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("down owner: HTTP %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("down owner: missing Retry-After")
	}
}

func TestParseJobWorker(t *testing.T) {
	cases := []struct {
		id     string
		worker int
		ok     bool
	}{
		{"w0-job-000001", 0, true},
		{"w12-job-000042", 12, true},
		{"job-000001", 0, false},
		{"w-job-1", 0, false},
		{"wx-job-1", 0, false},
		{"w3", 0, false},
	}
	for _, c := range cases {
		got, ok := parseJobWorker(c.id)
		if ok != c.ok || (ok && got != c.worker) {
			t.Errorf("parseJobWorker(%q) = (%d, %v), want (%d, %v)", c.id, got, ok, c.worker, c.ok)
		}
	}
}

func TestProxyHealthzAggregate(t *testing.T) {
	sup := fakeFleet(t, 3)
	for _, w := range sup.Workers() {
		route(w, "http://placeholder.invalid")
	}
	front := httptest.NewServer(NewProxy(sup, ProxyConfig{}).Handler())
	defer front.Close()

	get := func() FleetHealth {
		t.Helper()
		resp, err := http.Get(front.URL + "/healthz")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("fleet healthz must stay 200 while supervising, got %d", resp.StatusCode)
		}
		var h FleetHealth
		if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
			t.Fatal(err)
		}
		return h
	}

	if h := get(); h.Status != "ok" || len(h.Workers) != 3 {
		t.Fatalf("all healthy: status %q with %d workers", h.Status, len(h.Workers))
	}
	sup.workers[2].breaker.MarkDown()
	if h := get(); h.Status != "degraded" {
		t.Fatalf("one down: status %q, want degraded", h.Status)
	}
	sup.workers[0].breaker.MarkDown()
	sup.workers[1].breaker.MarkDown()
	if h := get(); h.Status != "down" {
		t.Fatalf("all down: status %q, want down", h.Status)
	}
}
