package fleet

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os/exec"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"vbr/internal/cli"
	"vbr/internal/obs"
)

// Config parameterizes a Supervisor. Zero values select defaults.
type Config struct {
	// Bin is the worker binary (typically a vbrd build).
	Bin string
	// Args yields the argv (excluding the binary) for worker id. The
	// worker must bind a free port and announce it with a
	// cli.AnnounceListen banner as its first stdout line.
	Args func(workerID int) []string
	// Workers is the fleet size (default 3).
	Workers int
	// HealthInterval is the /healthz polling period (default 250ms).
	HealthInterval time.Duration
	// HealthTimeout bounds one probe (default 2s).
	HealthTimeout time.Duration
	// StartTimeout bounds banner read and first health pass of a fresh
	// process (default 10s); past it the spawn counts as failed.
	StartTimeout time.Duration
	// Breaker is the per-worker breaker template; Seed/Stream are
	// overridden per worker (Stream = worker ID) so jitter decorrelates.
	Breaker BreakerConfig
	// Seed feeds restart jitter (Breaker.Seed for every worker).
	Seed uint64
	// WorkerStderr receives the workers' stderr (and post-banner
	// stdout), interleaved; nil discards it.
	WorkerStderr io.Writer
	// Logf logs supervision events (restarts, state trips); nil is
	// silent.
	Logf func(format string, args ...any)
}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = 3
	}
	if c.HealthInterval <= 0 {
		c.HealthInterval = 250 * time.Millisecond
	}
	if c.HealthTimeout <= 0 {
		c.HealthTimeout = 2 * time.Second
	}
	if c.StartTimeout <= 0 {
		c.StartTimeout = 10 * time.Second
	}
	if c.WorkerStderr == nil {
		c.WorkerStderr = io.Discard
	}
	if c.Logf == nil {
		c.Logf = func(string, ...any) {}
	}
	return c
}

// Worker is one supervised process slot. The slot (ID, breaker, shard
// position) outlives any individual process occupying it.
type Worker struct {
	ID      int
	breaker *Breaker
	streams atomic.Int64 // in-flight proxied requests

	mu       sync.Mutex
	baseURL  string
	pid      int
	degraded bool
	proc     *workerProc
}

// workerProc is one spawned process generation.
type workerProc struct {
	cmd    *exec.Cmd
	exited chan struct{} // closed after cmd.Wait returns
	err    error         // valid after exited is closed
}

// BaseURL is the worker's current serve address ("" before the first
// banner).
func (w *Worker) BaseURL() string {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.baseURL
}

// Degraded reports the last health probe's degraded flag.
func (w *Worker) Degraded() bool {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.degraded
}

func (w *Worker) setDegraded(d bool) {
	w.mu.Lock()
	w.degraded = d
	w.mu.Unlock()
}

func (w *Worker) setProc(p *workerProc, baseURL string) {
	w.mu.Lock()
	w.proc = p
	w.baseURL = baseURL
	w.pid = p.cmd.Process.Pid
	w.degraded = false
	w.mu.Unlock()
}

func (w *Worker) currentProc() *workerProc {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.proc
}

// WorkerStatus is one worker's row in the fleet health aggregate.
type WorkerStatus struct {
	ID       int    `json:"id"`
	Addr     string `json:"addr,omitempty"`
	PID      int    `json:"pid,omitempty"`
	State    string `json:"state"`
	Degraded bool   `json:"degraded,omitempty"`
	Restarts int64  `json:"restarts"`
	Streams  int64  `json:"streams"`
}

// Supervisor owns the worker fleet: it spawns one process per slot,
// polls health, restarts crashed or unresponsive workers under the
// breaker's backoff schedule, and fans a drain signal out on Stop.
type Supervisor struct {
	cfg     Config
	ring    *Ring
	workers []*Worker
	client  *http.Client
	scope   *obs.Scope

	cancel context.CancelFunc
	wg     sync.WaitGroup
}

// NewSupervisor builds a supervisor; Start launches the fleet.
func NewSupervisor(cfg Config) (*Supervisor, error) {
	cfg = cfg.withDefaults()
	if cfg.Bin == "" {
		return nil, fmt.Errorf("fleet: Config.Bin is required")
	}
	if cfg.Args == nil {
		return nil, fmt.Errorf("fleet: Config.Args is required")
	}
	s := &Supervisor{
		cfg:  cfg,
		ring: NewRing(cfg.Workers, 0),
		// A dedicated client keeps probe connection state (and its
		// tear-down on worker death) away from the proxy's transport.
		client: &http.Client{Transport: &http.Transport{MaxIdleConnsPerHost: 2}},
	}
	for i := 0; i < cfg.Workers; i++ {
		bcfg := cfg.Breaker
		bcfg.Seed = cfg.Seed
		bcfg.Stream = uint64(i)
		s.workers = append(s.workers, &Worker{ID: i, breaker: NewBreaker(bcfg)})
	}
	return s, nil
}

// Start spawns every worker's manage loop. ctx supplies the obs scope
// and bounds supervision: when it fires, restarts stop, but live
// processes are left for Stop to drain.
func (s *Supervisor) Start(ctx context.Context) {
	s.scope = obs.From(ctx)
	ctx, s.cancel = context.WithCancel(ctx)
	for _, w := range s.workers {
		s.wg.Add(1)
		go s.manage(ctx, w)
	}
}

// WaitReady blocks until at least n workers are routable, or ctx
// fires.
func (s *Supervisor) WaitReady(ctx context.Context, n int) error {
	if n > len(s.workers) {
		n = len(s.workers)
	}
	for {
		routable := 0
		for _, w := range s.workers {
			if w.breaker.Routable() {
				routable++
			}
		}
		if routable >= n {
			return nil
		}
		select {
		case <-ctx.Done():
			return fmt.Errorf("fleet: %d/%d workers ready: %w", routable, n, ctx.Err())
		case <-time.After(20 * time.Millisecond):
		}
	}
}

// Workers returns the fleet slots (stable order, never nil entries).
func (s *Supervisor) Workers() []*Worker { return s.workers }

// Worker returns the slot with the given id.
func (s *Supervisor) Worker(id int) (*Worker, bool) {
	if id < 0 || id >= len(s.workers) {
		return nil, false
	}
	return s.workers[id], true
}

// Snapshot reports every worker's state for the fleet health endpoint.
func (s *Supervisor) Snapshot() []WorkerStatus {
	out := make([]WorkerStatus, 0, len(s.workers))
	for _, w := range s.workers {
		w.mu.Lock()
		st := WorkerStatus{
			ID:       w.ID,
			Addr:     w.baseURL,
			PID:      w.pid,
			Degraded: w.degraded,
		}
		w.mu.Unlock()
		st.State = w.breaker.State().String()
		st.Restarts = w.breaker.Restarts()
		st.Streams = w.streams.Load()
		out = append(out, st)
	}
	return out
}

// Restarts sums completed restart cycles across the fleet.
func (s *Supervisor) Restarts() int64 {
	var n int64
	for _, w := range s.workers {
		n += w.breaker.Restarts()
	}
	return n
}

// Candidates returns the routable workers for a request key in
// failover order: ring order, with degraded workers demoted to the
// back so load steers away from nearly-saturated simulate buffers
// before they start shedding.
func (s *Supervisor) Candidates(key uint64) []*Worker {
	order := s.ring.Successors(key)
	var fit, degraded []*Worker
	for _, id := range order {
		w := s.workers[id]
		if !w.breaker.Routable() || w.BaseURL() == "" {
			continue
		}
		if w.Degraded() {
			degraded = append(degraded, w)
		} else {
			fit = append(fit, w)
		}
	}
	return append(fit, degraded...)
}

// ReportFailure feeds a proxy-observed transport failure into the
// worker's breaker, so request errors trip the breaker between health
// probes instead of waiting for the next poll.
func (s *Supervisor) ReportFailure(id int) {
	if id < 0 || id >= len(s.workers) {
		return
	}
	if s.workers[id].breaker.ReportFailure() {
		s.cfg.Logf("fleet: worker %d tripped down by request failures", id)
	}
}

// manage runs one slot's spawn → monitor → backoff → respawn cycle
// until the supervision context fires.
func (s *Supervisor) manage(ctx context.Context, w *Worker) {
	defer s.wg.Done()
	first := true
	for ctx.Err() == nil {
		if !first {
			delay := w.breaker.RestartDelay()
			s.cfg.Logf("fleet: worker %d restarting in %s", w.ID, delay.Round(time.Millisecond))
			select {
			case <-time.After(delay):
			case <-ctx.Done():
				return
			}
			w.breaker.MarkRestarting()
			s.scope.Count("fleet.restarts", 1)
		}
		first = false

		proc, addr, err := s.spawn(ctx, w)
		if err != nil {
			if ctx.Err() != nil {
				return
			}
			s.cfg.Logf("fleet: worker %d spawn failed: %v", w.ID, err)
			w.breaker.MarkDown()
			s.scope.Count("fleet.spawn.failed", 1)
			continue
		}
		w.setProc(proc, "http://"+addr)
		s.cfg.Logf("fleet: worker %d serving on %s (pid %d)", w.ID, addr, proc.cmd.Process.Pid)

		s.monitor(ctx, w, proc)
		if ctx.Err() != nil {
			return // drain path: Stop owns the live process now
		}
		// The worker is down. Make sure the old process is gone before a
		// new generation takes the slot, so two never coexist.
		_ = proc.cmd.Process.Kill()
		<-proc.exited
		w.breaker.MarkDown()
		s.scope.Count("fleet.worker.exits", 1)
	}
}

// spawn starts one worker process and waits for its listen banner.
func (s *Supervisor) spawn(ctx context.Context, w *Worker) (*workerProc, string, error) {
	cmd := exec.Command(s.cfg.Bin, s.cfg.Args(w.ID)...)
	banner := &bannerWriter{rest: s.cfg.WorkerStderr, ch: make(chan string, 1)}
	cmd.Stdout = banner
	cmd.Stderr = s.cfg.WorkerStderr
	if err := cmd.Start(); err != nil {
		return nil, "", fmt.Errorf("fleet: starting worker %d: %w", w.ID, err)
	}
	proc := &workerProc{cmd: cmd, exited: make(chan struct{})}
	go func() {
		proc.err = cmd.Wait()
		close(proc.exited)
	}()

	select {
	case addr := <-banner.ch:
		return proc, addr, nil
	case <-proc.exited:
		return nil, "", fmt.Errorf("fleet: worker %d exited before announcing a listener: %w", w.ID, proc.err)
	case <-time.After(s.cfg.StartTimeout):
		_ = cmd.Process.Kill()
		<-proc.exited
		return nil, "", fmt.Errorf("fleet: worker %d announced no listener within %s", w.ID, s.cfg.StartTimeout)
	case <-ctx.Done():
		_ = cmd.Process.Kill()
		<-proc.exited
		return nil, "", ctx.Err()
	}
}

// monitor polls one live process's health until it goes down or the
// supervision context fires.
func (s *Supervisor) monitor(ctx context.Context, w *Worker, proc *workerProc) {
	ticker := time.NewTicker(s.cfg.HealthInterval)
	defer ticker.Stop()
	start := time.Now()
	for {
		select {
		case <-ctx.Done():
			return
		case <-proc.exited:
			w.breaker.MarkDown()
			s.cfg.Logf("fleet: worker %d process exited: %v", w.ID, proc.err)
			return
		case <-ticker.C:
			if w.breaker.State() == StateDown {
				return // tripped by proxy-reported failures
			}
			if ok, degraded := s.probe(ctx, w); ok {
				w.breaker.ReportSuccess()
				w.setDegraded(degraded)
				continue
			}
			if w.breaker.State() == StateRestarting && time.Since(start) > s.cfg.StartTimeout {
				s.cfg.Logf("fleet: worker %d passed no health probe within %s", w.ID, s.cfg.StartTimeout)
				w.breaker.MarkDown()
				return
			}
			if w.breaker.ReportFailure() {
				s.cfg.Logf("fleet: worker %d tripped down by failed probes", w.ID)
				return
			}
		}
	}
}

// probe runs one /healthz poll; ok reports a 200, degraded the
// worker's own load flag.
func (s *Supervisor) probe(ctx context.Context, w *Worker) (ok, degraded bool) {
	pctx, cancel := context.WithTimeout(ctx, s.cfg.HealthTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(pctx, http.MethodGet, w.BaseURL()+"/healthz", nil)
	if err != nil {
		return false, false
	}
	resp, err := s.client.Do(req)
	if err != nil {
		return false, false
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return false, false
	}
	var body struct {
		Status string `json:"status"`
	}
	// An undecodable 200 still counts as alive; degraded steering is an
	// optimization, not a liveness signal.
	_ = json.NewDecoder(io.LimitReader(resp.Body, 1<<20)).Decode(&body)
	return true, body.Status == "degraded"
}

// Stop drains the fleet: supervision halts (no more restarts), every
// live worker gets a SIGTERM to trigger its own graceful drain, and
// stragglers past the budget are killed. It reports how many workers
// needed the hard kill.
func (s *Supervisor) Stop(ctx context.Context, budget time.Duration) (stragglers int) {
	if s.cancel != nil {
		s.cancel()
	}
	s.wg.Wait()

	var live []*workerProc
	for _, w := range s.workers {
		proc := w.currentProc()
		if proc == nil {
			continue
		}
		select {
		case <-proc.exited:
			continue
		default:
		}
		_ = proc.cmd.Process.Signal(syscall.SIGTERM)
		live = append(live, proc)
	}
	dctx, cancel := context.WithTimeout(ctx, budget)
	defer cancel()
	for _, proc := range live {
		select {
		case <-proc.exited:
		case <-dctx.Done():
			_ = proc.cmd.Process.Kill()
			<-proc.exited
			stragglers++
		}
	}
	return stragglers
}

// bannerWriter scans a worker's stdout for the first line, recovers
// the cli.AnnounceListen address from it, and forwards everything else
// to rest. Attaching it as cmd.Stdout (instead of a pipe read raced
// against cmd.Wait) lets os/exec own the copy goroutine.
type bannerWriter struct {
	rest io.Writer
	ch   chan string

	mu   sync.Mutex
	done bool
	buf  []byte
}

func (b *bannerWriter) Write(p []byte) (int, error) {
	// The banner send happens outside the critical section: only the
	// write that flips done reaches it, and parking on b.ch (however
	// briefly) while holding b.mu would stall every concurrent Write.
	var addr string
	var announce bool
	b.mu.Lock()
	if !b.done {
		b.buf = append(b.buf, p...)
		if i := bytes.IndexByte(b.buf, '\n'); i >= 0 {
			b.done = true
			addr, announce = cli.ParseListenBanner(string(b.buf[:i]))
			b.buf = nil
		}
	}
	b.mu.Unlock()
	if announce {
		b.ch <- addr
	}
	if b.rest != io.Discard {
		_, _ = b.rest.Write(p)
	}
	return len(p), nil
}
