package fleet

import (
	"testing"
	"time"
)

func TestBreakerLifecycle(t *testing.T) {
	b := NewBreaker(BreakerConfig{DownAfter: 3})
	if got := b.State(); got != StateRestarting {
		t.Fatalf("new breaker state = %v, want restarting", got)
	}
	if b.Routable() {
		t.Fatal("restarting breaker must not be routable")
	}

	b.ReportSuccess()
	if got := b.State(); got != StateHealthy {
		t.Fatalf("after success state = %v, want healthy", got)
	}
	if !b.Routable() {
		t.Fatal("healthy breaker must be routable")
	}

	// One failure: suspect, still routable, not tripped.
	if tripped := b.ReportFailure(); tripped {
		t.Fatal("first failure must not trip")
	}
	if got := b.State(); got != StateSuspect {
		t.Fatalf("after one failure state = %v, want suspect", got)
	}
	if !b.Routable() {
		t.Fatal("suspect breaker must stay routable")
	}

	// A success in suspect heals.
	b.ReportSuccess()
	if got := b.State(); got != StateHealthy {
		t.Fatalf("suspect + success state = %v, want healthy", got)
	}

	// DownAfter consecutive failures trip.
	if b.ReportFailure() || b.ReportFailure() {
		t.Fatal("tripped before DownAfter failures")
	}
	if tripped := b.ReportFailure(); !tripped {
		t.Fatal("DownAfter-th failure must trip")
	}
	if got := b.State(); got != StateDown {
		t.Fatalf("tripped state = %v, want down", got)
	}
	if b.Routable() {
		t.Fatal("down breaker must not be routable")
	}

	// The exit verdict outranks a racing probe success.
	b.ReportSuccess()
	if got := b.State(); got != StateDown {
		t.Fatalf("down + racing success = %v, want down", got)
	}
	// Extra failures against a down worker are no-ops.
	if b.ReportFailure() {
		t.Fatal("failure on a down breaker must not re-trip")
	}

	b.MarkRestarting()
	if got := b.State(); got != StateRestarting {
		t.Fatalf("after MarkRestarting state = %v, want restarting", got)
	}
	if got := b.Restarts(); got != 1 {
		t.Fatalf("restarts = %d, want 1", got)
	}
	if b.ReportFailure() {
		t.Fatal("failure while restarting must be a no-op")
	}
}

func TestBreakerMarkDown(t *testing.T) {
	b := NewBreaker(BreakerConfig{})
	b.ReportSuccess()
	b.MarkDown()
	if got := b.State(); got != StateDown {
		t.Fatalf("MarkDown state = %v, want down", got)
	}
}

func TestBreakerBackoffSchedule(t *testing.T) {
	cfg := BreakerConfig{
		MinBackoff: 100 * time.Millisecond,
		MaxBackoff: 400 * time.Millisecond,
		Jitter:     0.2,
		Seed:       7,
		Stream:     1,
		ResetAfter: 3,
	}
	b := NewBreaker(cfg)

	within := func(d, center time.Duration) bool {
		lo := time.Duration(float64(center) * (1 - cfg.Jitter))
		hi := time.Duration(float64(center) * (1 + cfg.Jitter))
		return d >= lo && d <= hi
	}
	// Doubling: 100ms, 200ms, 400ms, then capped at 400ms.
	for i, center := range []time.Duration{
		100 * time.Millisecond, 200 * time.Millisecond,
		400 * time.Millisecond, 400 * time.Millisecond,
	} {
		if d := b.RestartDelay(); !within(d, center) {
			t.Fatalf("delay %d = %v, want within ±20%% of %v", i, d, center)
		}
	}

	// Sustained health resets the schedule to MinBackoff.
	for i := 0; i < cfg.ResetAfter; i++ {
		b.ReportSuccess()
	}
	if d := b.RestartDelay(); !within(d, 100*time.Millisecond) {
		t.Fatalf("post-reset delay = %v, want within ±20%% of 100ms", d)
	}

	// One lucky probe must NOT reset a crash-looper's fuse.
	b2 := NewBreaker(cfg)
	b2.RestartDelay() // 100ms
	b2.RestartDelay() // 200ms
	b2.ReportSuccess()
	if d := b2.RestartDelay(); !within(d, 400*time.Millisecond) {
		t.Fatalf("single-success delay = %v, want within ±20%% of 400ms (no reset)", d)
	}
}

func TestBreakerDeterministicJitter(t *testing.T) {
	mk := func() *Breaker {
		return NewBreaker(BreakerConfig{Seed: 42, Stream: 3})
	}
	a, b := mk(), mk()
	for i := 0; i < 8; i++ {
		if da, db := a.RestartDelay(), b.RestartDelay(); da != db {
			t.Fatalf("draw %d: %v != %v — jitter must replay from the seed", i, da, db)
		}
	}
}
