package server

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"math"
	"net/http"
	"strconv"
	"strings"

	"vbr/internal/backend"
	"vbr/internal/obs"
	"vbr/internal/source"
	"vbr/internal/stream"
)

// Trace wire formats.
const (
	formatNDJSON = "ndjson" // one JSON number per line
	formatBinary = "bin"    // little-endian float64 frames
)

// Trailer names carrying the stream's final validation probe: the
// calibrated MAVAR Ĥ with its ±1.96σ half-width, and the classical
// variance–time Ĥ for comparison.
const (
	trailerHMavar    = "X-Vbr-Hhat-Mavar"
	trailerHMavarErr = "X-Vbr-Hhat-Mavar-Err"
	trailerHVT       = "X-Vbr-Hhat-Vt"
)

// parseFloat is strconv.ParseFloat with NaN/Inf rejected: wire
// parameters must be finite.
func parseFloat(s string) (float64, error) {
	f, err := strconv.ParseFloat(s, 64)
	if err != nil {
		return 0, fmt.Errorf("invalid number %q: %w", s, err)
	}
	if math.IsNaN(f) || math.IsInf(f, 0) {
		return 0, fmt.Errorf("number %q must be finite", s)
	}
	return f, nil
}

// parseStreamConfig maps /v1/trace query parameters onto a stream
// Config. Unset parameters fall back to the server defaults; n defaults
// to the paper's 2-hour trace length (§2: 171,000 frames).
func (s *Server) parseStreamConfig(get func(string) string) (stream.Config, error) {
	model, err := s.parseModel(get)
	if err != nil {
		return stream.Config{}, err
	}
	cfg := stream.Config{Model: model, N: 171_000, Backend: DefaultBackend, Pool: s.cfg.Pool}
	for _, p := range []struct {
		name string
		dst  *int
	}{
		{"n", &cfg.N},
		{"block", &cfg.BlockSize},
		{"overlap", &cfg.Overlap},
		{"table", &cfg.TableSize},
	} {
		if v := get(p.name); v != "" {
			i, err := strconv.Atoi(v)
			if err != nil {
				return stream.Config{}, fmt.Errorf("server: parameter %s: %w", p.name, err)
			}
			*p.dst = i
		}
	}
	if v := get("seed"); v != "" {
		seed, err := strconv.ParseUint(v, 10, 64)
		if err != nil {
			return stream.Config{}, fmt.Errorf("server: parameter seed: %w", err)
		}
		cfg.Seed = seed
	}
	if v := get("backend"); v != "" {
		b, err := backend.Parse(v)
		if err != nil {
			return stream.Config{}, err
		}
		cfg.Backend = b
	}
	if cfg.N > s.cfg.MaxFrames {
		return stream.Config{}, fmt.Errorf("server: n=%d exceeds the per-request cap of %d frames", cfg.N, s.cfg.MaxFrames)
	}
	return cfg, nil
}

// probeSource is what the trace writer loop needs: block-by-block
// frames plus a final online-validation probe. The classic fARIMA
// stream and the scenario-zoo block adapter both satisfy it.
type probeSource interface {
	stream.BlockSource
	Probe() stream.Probe
}

var (
	_ probeSource = (*stream.Stream)(nil)
	_ probeSource = (*source.BlockAdapter)(nil)
)

// ModelHeader names the zoo model serving a /v1/trace response when
// the request carried a model= parameter.
const ModelHeader = "X-Vbr-Model"

// BackendHeader echoes the concrete Gaussian backend behind a classic
// /v1/trace response — the resolved engine, so ?backend=auto reports
// what Auto picked rather than "auto".
const BackendHeader = "X-Vbr-Backend"

// DefaultBackend is the engine a request without a backend= parameter
// gets. Exported so the fleet proxy hashes absent parameters to the
// same routing key the workers' own default produces.
const DefaultBackend = backend.DaviesHarte

// parseZooSource maps /v1/trace query parameters onto a scenario-zoo
// source when model= names one. Query decoding turns "+" into a
// space, so spaces in the spec are read back as the mix separator —
// model=farima*3+onoff works without percent-encoding.
func (s *Server) parseZooSource(get func(string) string, spec string) (*source.BlockAdapter, int, uint64, error) {
	n, block := 171_000, 4096
	for _, p := range []struct {
		name string
		dst  *int
	}{
		{"n", &n},
		{"block", &block},
	} {
		if v := get(p.name); v != "" {
			i, err := strconv.Atoi(v)
			if err != nil {
				return nil, 0, 0, fmt.Errorf("server: parameter %s: %w", p.name, err)
			}
			*p.dst = i
		}
	}
	var seed uint64
	if v := get("seed"); v != "" {
		var err error
		if seed, err = strconv.ParseUint(v, 10, 64); err != nil {
			return nil, 0, 0, fmt.Errorf("server: parameter seed: %w", err)
		}
	}
	if n > s.cfg.MaxFrames {
		return nil, 0, 0, fmt.Errorf("server: n=%d exceeds the per-request cap of %d frames", n, s.cfg.MaxFrames)
	}
	src, err := source.New(spec, seed)
	if err != nil {
		return nil, 0, 0, err
	}
	ad, err := source.Blocks(src, n, block)
	if err != nil {
		return nil, 0, 0, err
	}
	return ad, n, seed, nil
}

// handleTrace streams a synthetic trace as chunked NDJSON (default) or
// raw little-endian float64 frames. The default path serves the §4
// fARIMA stream; model= routes through the scenario-zoo registry
// instead. Frames are produced block by block from a BlockSource and
// flushed per block, so memory stays O(block) regardless of n, and a
// slow or vanished client is detected through r.Context() —
// generation stops instead of racing ahead of the socket.
//vbrlint:hotpath
func (s *Server) handleTrace(w http.ResponseWriter, r *http.Request) {
	ctx := r.Context()
	scope := obs.From(ctx)
	scope.Count("server.trace.requests", 1)
	defer scope.Span("server.trace")()

	q := r.URL.Query()
	var (
		src  probeSource
		n    int
		seed uint64
	)
	if spec := strings.TrimSpace(strings.ReplaceAll(q.Get("model"), " ", "+")); spec != "" {
		ad, zn, zseed, err := s.parseZooSource(q.Get, spec)
		if err != nil {
			scope.Count("server.trace.badrequest", 1)
			writeError(w, http.StatusBadRequest, err)
			return
		}
		src, n, seed = ad, zn, zseed
		w.Header().Set(ModelHeader, spec)
	} else {
		cfg, err := s.parseStreamConfig(q.Get)
		if err != nil {
			scope.Count("server.trace.badrequest", 1)
			writeError(w, http.StatusBadRequest, err)
			return
		}
		st, err := stream.OpenCtx(ctx, cfg)
		if err != nil {
			scope.Count("server.trace.badrequest", 1)
			writeError(w, http.StatusBadRequest, err)
			return
		}
		src, n, seed = st, cfg.N, cfg.Seed
		// Echo the concrete engine, not the request: for ?backend=auto
		// the client learns what the policy actually picked.
		w.Header().Set(BackendHeader, st.Backend().String())
	}
	format := q.Get("format")
	if format == "" {
		format = formatNDJSON
	}
	if format != formatNDJSON && format != formatBinary {
		scope.Count("server.trace.badrequest", 1)
		writeError(w, http.StatusBadRequest, fmt.Errorf("server: unknown format %q (want %s or %s)", format, formatNDJSON, formatBinary))
		return
	}

	if format == formatBinary {
		w.Header().Set("Content-Type", "application/octet-stream")
	} else {
		w.Header().Set("Content-Type", "application/x-ndjson")
	}
	w.Header().Set("X-Vbr-Frames", strconv.Itoa(n))
	w.Header().Set("X-Vbr-Seed", strconv.FormatUint(seed, 10))
	// The stream validates itself online; once the last block is out the
	// final monitor probe travels back as HTTP trailers (headers are long
	// gone by then). Ĥ is the calibrated MAVAR estimate with its 95%
	// half-width; clients that ignore trailers lose nothing else.
	w.Header().Set("Trailer", trailerHMavar+", "+trailerHMavarErr+", "+trailerHVT)

	flusher, _ := w.(http.Flusher)
	bw := bufio.NewWriter(w)
	var scratch [8]byte
	var line []byte
	for {
		blk, err := src.Next(ctx)
		if err != nil {
			if src.Pos() >= n {
				break // io.EOF: the full trace went out
			}
			// Mid-stream failure: the client went away, the drain
			// deadline fired, or generation broke. Headers are long
			// gone, so the only honest signal is cutting the body short.
			scope.Count("server.trace.aborted", 1)
			return
		}
		if format == formatBinary {
			for _, f := range blk {
				binary.LittleEndian.PutUint64(scratch[:], math.Float64bits(f))
				if _, err := bw.Write(scratch[:]); err != nil {
					scope.Count("server.trace.aborted", 1)
					return
				}
			}
		} else {
			for _, f := range blk {
				line = strconv.AppendFloat(line[:0], f, 'g', -1, 64)
				line = append(line, '\n')
				if _, err := bw.Write(line); err != nil {
					scope.Count("server.trace.aborted", 1)
					return
				}
			}
		}
		if err := bw.Flush(); err != nil {
			scope.Count("server.trace.aborted", 1)
			return
		}
		if flusher != nil {
			flusher.Flush()
		}
	}
	p := src.Probe()
	if !math.IsNaN(p.HMavar) {
		w.Header().Set(trailerHMavar, strconv.FormatFloat(p.HMavar, 'g', -1, 64))
	}
	if !math.IsNaN(p.HMavarErr) {
		w.Header().Set(trailerHMavarErr, strconv.FormatFloat(p.HMavarErr, 'g', -1, 64))
	}
	if !math.IsNaN(p.H) {
		w.Header().Set(trailerHVT, strconv.FormatFloat(p.H, 'g', -1, 64))
	}
	scope.Count("server.trace.completed", 1)
	scope.Count("server.trace.frames", int64(n))
}
