package server

import (
	"bufio"
	"context"
	"io"
	"math"
	"net/http"
	"strconv"
	"testing"

	"vbr/internal/source"
	"vbr/internal/stream"
)

// readNDJSON parses a streamed NDJSON trace body.
func readNDJSON(t *testing.T, body io.Reader) []float64 {
	t.Helper()
	sc := bufio.NewScanner(body)
	var got []float64
	for sc.Scan() {
		f, err := strconv.ParseFloat(sc.Text(), 64)
		if err != nil {
			t.Fatalf("line %d: %v", len(got), err)
		}
		got = append(got, f)
	}
	if err := sc.Err(); err != nil {
		t.Fatalf("scanning body: %v", err)
	}
	return got
}

// TestTraceZooModel serves a zoo model through model= and checks the
// body against the registry run directly with the same seed.
func TestTraceZooModel(t *testing.T) {
	ts := newTestServer(t, Config{})
	resp, err := http.Get(ts.URL + "/v1/trace?model=gop&n=512&seed=9&block=128")
	if err != nil {
		t.Fatalf("GET: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if got := resp.Header.Get(ModelHeader); got != "gop" {
		t.Errorf("%s = %q, want gop", ModelHeader, got)
	}
	if got := resp.Header.Get("X-Vbr-Frames"); got != "512" {
		t.Errorf("X-Vbr-Frames %q", got)
	}
	if got := resp.Header.Get("X-Vbr-Backend"); got != "" {
		t.Errorf("zoo response carries backend header %q", got)
	}
	got := readNDJSON(t, resp.Body)

	src, err := source.New("gop", 9)
	if err != nil {
		t.Fatal(err)
	}
	ad, err := source.Blocks(src, 512, 128)
	if err != nil {
		t.Fatal(err)
	}
	want, err := stream.Collect(context.Background(), ad)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("got %d frames, want %d", len(got), len(want))
	}
	for i := range want {
		if math.Float64bits(got[i]) != math.Float64bits(want[i]) {
			t.Fatalf("frame %d: got %v want %v", i, got[i], want[i])
		}
	}
}

// TestTraceZooMixSpec drives a heterogeneous mix spec through the
// query string: "+" arrives as a space after URL decoding and must be
// read back as the mix separator.
func TestTraceZooMixSpec(t *testing.T) {
	ts := newTestServer(t, Config{})
	resp, err := http.Get(ts.URL + "/v1/trace?model=poisson:fps=24*2+onoff:fps=24&n=256&seed=5")
	if err != nil {
		t.Fatalf("GET: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(resp.Body)
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	if got := resp.Header.Get(ModelHeader); got != "poisson:fps=24*2+onoff:fps=24" {
		t.Errorf("%s = %q", ModelHeader, got)
	}
	got := readNDJSON(t, resp.Body)
	if len(got) != 256 {
		t.Fatalf("got %d frames, want 256", len(got))
	}
	for i, f := range got {
		if math.IsNaN(f) || f < 0 {
			t.Fatalf("frame %d = %v", i, f)
		}
	}
}

func TestTraceZooBadRequests(t *testing.T) {
	ts := newTestServer(t, Config{MaxFrames: 1000})
	for _, q := range []string{
		"model=nosuchmodel",
		"model=gop:nosuchparam=1",
		"model=gop*0",
		"model=gop&n=2000",  // over MaxFrames
		"model=gop&n=oops",  // bad n
		"model=gop&seed=-1", // bad seed
	} {
		resp, err := http.Get(ts.URL + "/v1/trace?" + q)
		if err != nil {
			t.Fatalf("GET %s: %v", q, err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400", q, resp.StatusCode)
		}
	}
}

// TestTraceZooDeterminism: two requests with the same model and seed
// must stream identical bytes.
func TestTraceZooDeterminism(t *testing.T) {
	ts := newTestServer(t, Config{})
	fetch := func(seed string) []byte {
		t.Helper()
		resp, err := http.Get(ts.URL + "/v1/trace?model=cascade:depth=8&n=512&seed=" + seed + "&format=bin")
		if err != nil {
			t.Fatalf("GET: %v", err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("status %d", resp.StatusCode)
		}
		b, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return b
	}
	a, b, c := fetch("7"), fetch("7"), fetch("8")
	if string(a) != string(b) {
		t.Error("same seed served different bytes")
	}
	if string(a) == string(c) {
		t.Error("different seeds served identical bytes")
	}
	if len(a) != 512*8 {
		t.Errorf("body is %d bytes, want %d", len(a), 512*8)
	}
}
