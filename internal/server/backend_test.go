package server

import (
	"bufio"
	"math"
	"net/http"
	"strconv"
	"testing"

	"vbr/internal/backend"
	"vbr/internal/stream"
)

// TestTraceBackendEcho pins the ?backend= wiring end to end: every
// spelling selects the right engine, the response echoes the CONCRETE
// backend in X-Vbr-Backend (auto reports what it resolved to, not
// "auto"), and the served frames match the equivalent direct stream
// bit for bit.
func TestTraceBackendEcho(t *testing.T) {
	ts := newTestServer(t, Config{})
	cases := []struct {
		param    string // ?backend= value; empty = server default
		wantEcho string
		backend  backend.Backend // engine behind the reference stream
	}{
		{"", "davies-harte", backend.DaviesHarte},
		{"hosking", "hosking", backend.Hosking},
		{"davies-harte", "davies-harte", backend.DaviesHarte},
		{"paxson", "paxson", backend.Paxson},
		{"auto", "paxson", backend.Paxson}, // streams always resolve Auto to Paxson
	}
	for _, c := range cases {
		url := ts.URL + "/v1/trace?n=2000&seed=3&block=256"
		if c.param != "" {
			url += "&backend=" + c.param
		}
		resp, err := http.Get(url)
		if err != nil {
			t.Fatalf("backend=%q: GET: %v", c.param, err)
		}
		if resp.StatusCode != http.StatusOK {
			resp.Body.Close()
			t.Fatalf("backend=%q: status %d", c.param, resp.StatusCode)
		}
		if got := resp.Header.Get(BackendHeader); got != c.wantEcho {
			t.Errorf("backend=%q: %s = %q, want %q", c.param, BackendHeader, got, c.wantEcho)
		}
		want := wantFrames(t, stream.Config{
			Model: PaperDefault, N: 2000, BlockSize: 256, Seed: 3, Backend: c.backend,
		})
		sc := bufio.NewScanner(resp.Body)
		var got []float64
		for sc.Scan() {
			f, err := strconv.ParseFloat(sc.Text(), 64)
			if err != nil {
				t.Fatalf("backend=%q: line %d: %v", c.param, len(got), err)
			}
			got = append(got, f)
		}
		resp.Body.Close()
		if err := sc.Err(); err != nil {
			t.Fatalf("backend=%q: scanning body: %v", c.param, err)
		}
		if len(got) != len(want) {
			t.Fatalf("backend=%q: got %d frames, want %d", c.param, len(got), len(want))
		}
		for i := range want {
			if math.Float64bits(got[i]) != math.Float64bits(want[i]) {
				t.Fatalf("backend=%q: frame %d: got %v want %v", c.param, i, got[i], want[i])
			}
		}
	}
}
