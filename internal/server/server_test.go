package server

import (
	"bufio"
	"bytes"
	"context"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
	"time"

	"vbr/internal/queue"
	"vbr/internal/stream"
)

// newTestServer wires a Server into an httptest listener with a
// lifetime bound to the test.
func newTestServer(t *testing.T, cfg Config) *httptest.Server {
	t.Helper()
	ctx, cancel := context.WithCancel(context.Background())
	t.Cleanup(cancel)
	ts := httptest.NewServer(New(ctx, cfg).Handler())
	t.Cleanup(ts.Close)
	return ts
}

// wantFrames regenerates the reference series a trace request should
// have served.
func wantFrames(t *testing.T, cfg stream.Config) []float64 {
	t.Helper()
	src, err := stream.Open(cfg)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	out, err := stream.Collect(context.Background(), src)
	if err != nil {
		t.Fatalf("Collect: %v", err)
	}
	return out
}

func TestTraceNDJSON(t *testing.T) {
	ts := newTestServer(t, Config{})
	resp, err := http.Get(ts.URL + "/v1/trace?n=2000&seed=3&backend=hosking&block=256")
	if err != nil {
		t.Fatalf("GET: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if got := resp.Header.Get("Content-Type"); got != "application/x-ndjson" {
		t.Errorf("Content-Type %q", got)
	}
	if got := resp.Header.Get("X-Vbr-Frames"); got != "2000" {
		t.Errorf("X-Vbr-Frames %q", got)
	}
	want := wantFrames(t, stream.Config{
		Model: PaperDefault, N: 2000, BlockSize: 256, Seed: 3, Backend: stream.Hosking,
	})
	sc := bufio.NewScanner(resp.Body)
	var got []float64
	for sc.Scan() {
		f, err := strconv.ParseFloat(sc.Text(), 64)
		if err != nil {
			t.Fatalf("line %d: %v", len(got), err)
		}
		got = append(got, f)
	}
	if err := sc.Err(); err != nil {
		t.Fatalf("scanning body: %v", err)
	}
	if len(got) != len(want) {
		t.Fatalf("got %d frames, want %d", len(got), len(want))
	}
	for i := range want {
		// 'g'/-1 formatting round-trips float64 exactly.
		if math.Float64bits(got[i]) != math.Float64bits(want[i]) {
			t.Fatalf("frame %d: got %v want %v", i, got[i], want[i])
		}
	}
}

// TestTraceTrailers: after the body is fully streamed the response
// carries the stream's final validation probe as HTTP trailers — the
// calibrated MAVAR Ĥ, its 95% half-width, and the variance–time Ĥ.
func TestTraceTrailers(t *testing.T) {
	ts := newTestServer(t, Config{})
	resp, err := http.Get(ts.URL + "/v1/trace?n=16384&seed=11&format=bin")
	if err != nil {
		t.Fatalf("GET: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if _, err := io.Copy(io.Discard, resp.Body); err != nil {
		t.Fatalf("draining body: %v", err)
	}
	parse := func(name string) float64 {
		t.Helper()
		v := resp.Trailer.Get(name)
		if v == "" {
			t.Fatalf("trailer %s missing (trailers: %v)", name, resp.Trailer)
		}
		f, err := strconv.ParseFloat(v, 64)
		if err != nil {
			t.Fatalf("trailer %s = %q: %v", name, v, err)
		}
		return f
	}
	h := parse("X-Vbr-Hhat-Mavar")
	herr := parse("X-Vbr-Hhat-Mavar-Err")
	hvt := parse("X-Vbr-Hhat-Vt")
	if h < 0.4 || h > 1.1 {
		t.Errorf("MAVAR Ĥ trailer = %v, want a plausible Hurst estimate", h)
	}
	if !(herr > 0) || herr > 0.3 {
		t.Errorf("MAVAR error-bar trailer = %v, want a small positive half-width", herr)
	}
	if hvt < 0.3 || hvt > 1.2 {
		t.Errorf("variance–time Ĥ trailer = %v", hvt)
	}
}

func TestTraceBinary(t *testing.T) {
	ts := newTestServer(t, Config{})
	resp, err := http.Get(ts.URL + "/v1/trace?n=1500&seed=5&format=bin")
	if err != nil {
		t.Fatalf("GET: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if got := resp.Header.Get("Content-Type"); got != "application/octet-stream" {
		t.Errorf("Content-Type %q", got)
	}
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("reading body: %v", err)
	}
	if len(raw) != 1500*8 {
		t.Fatalf("body %d bytes, want %d", len(raw), 1500*8)
	}
	want := wantFrames(t, stream.Config{
		Model: PaperDefault, N: 1500, Seed: 5, Backend: stream.DaviesHarte,
	})
	for i := range want {
		got := math.Float64frombits(binary.LittleEndian.Uint64(raw[i*8:]))
		if math.Float64bits(got) != math.Float64bits(want[i]) {
			t.Fatalf("frame %d: got %v want %v", i, got, want[i])
		}
	}
}

func TestTraceBadRequests(t *testing.T) {
	ts := newTestServer(t, Config{MaxFrames: 10_000})
	for _, q := range []string{
		"n=0",
		"n=abc",
		"n=20000",    // over MaxFrames
		"hurst=1.5",  // invalid model
		"mean=-3",    // invalid model
		"format=xml", // unknown format
		"backend=fourier",
		"seed=-1",
		"block=4096&overlap=4096&backend=davies-harte",
	} {
		resp, err := http.Get(ts.URL + "/v1/trace?" + q)
		if err != nil {
			t.Fatalf("GET ?%s: %v", q, err)
		}
		var body apiError
		if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
			t.Errorf("?%s: undecodable error body: %v", q, err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("?%s: status %d, want 400", q, resp.StatusCode)
		}
		if body.Error == "" {
			t.Errorf("?%s: empty error message", q)
		}
	}
}

func TestTraceMethodNotAllowed(t *testing.T) {
	ts := newTestServer(t, Config{})
	resp, err := http.Post(ts.URL+"/v1/trace", "text/plain", strings.NewReader(""))
	if err != nil {
		t.Fatalf("POST: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("status %d, want 405", resp.StatusCode)
	}
}

// pollJob polls a job until it leaves the queued/running states.
func pollJob(t *testing.T, ts *httptest.Server, id string) JobView {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		resp, err := http.Get(ts.URL + "/v1/jobs/" + id)
		if err != nil {
			t.Fatalf("poll: %v", err)
		}
		var v JobView
		err = json.NewDecoder(resp.Body).Decode(&v)
		resp.Body.Close()
		if err != nil {
			t.Fatalf("decoding job: %v", err)
		}
		if v.State == stateDone || v.State == stateFailed {
			return v
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Fatalf("job %s did not finish in time", id)
	return JobView{}
}

func postSim(t *testing.T, ts *httptest.Server, req SimRequest) (*http.Response, JobView) {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	resp, err := http.Post(ts.URL+"/v1/simulate", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("POST: %v", err)
	}
	defer resp.Body.Close()
	var v JobView
	if resp.StatusCode == http.StatusAccepted {
		if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
			t.Fatalf("decoding accept body: %v", err)
		}
	}
	return resp, v
}

func TestSimulateGeneratedJob(t *testing.T) {
	ts := newTestServer(t, Config{})
	req := SimRequest{N: 5000, Seed: 11, CapacityBps: 6e6, BufferBytes: 250_000}
	resp, accepted := postSim(t, ts, req)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("status %d, want 202", resp.StatusCode)
	}
	if loc := resp.Header.Get("Location"); loc != "/v1/jobs/"+accepted.ID {
		t.Errorf("Location %q", loc)
	}
	final := pollJob(t, ts, accepted.ID)
	if final.State != stateDone {
		t.Fatalf("job state %q (err %q)", final.State, final.Error)
	}
	if final.Result == nil {
		t.Fatal("done job has no result")
	}

	// The job must be the same simulation a direct caller would run.
	frames := wantFrames(t, stream.Config{
		Model: PaperDefault, N: 5000, Seed: 11, Backend: stream.DaviesHarte,
	})
	want, err := queue.Simulate(
		queue.Workload{Bytes: frames, Interval: 1.0 / 24},
		req.CapacityBps, req.BufferBytes, queue.Options{Seed: req.Seed},
	)
	if err != nil {
		t.Fatalf("reference Simulate: %v", err)
	}
	if math.Float64bits(final.Result.Pl) != math.Float64bits(want.Pl) {
		t.Errorf("job Pl=%v, direct Pl=%v", final.Result.Pl, want.Pl)
	}
	if math.Float64bits(final.Result.MaxBacklog) != math.Float64bits(want.MaxBacklog) {
		t.Errorf("job MaxBacklog=%v, direct %v", final.Result.MaxBacklog, want.MaxBacklog)
	}
}

func TestSimulateUploadedFrames(t *testing.T) {
	ts := newTestServer(t, Config{})
	frames := []float64{100, 900, 100, 900, 100, 900, 100, 900}
	req := SimRequest{Frames: frames, CapacityBps: 40_000, BufferBytes: 100, IntervalSec: 0.1}
	resp, accepted := postSim(t, ts, req)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("status %d, want 202", resp.StatusCode)
	}
	final := pollJob(t, ts, accepted.ID)
	if final.State != stateDone {
		t.Fatalf("job state %q (err %q)", final.State, final.Error)
	}
	want, err := queue.Simulate(
		queue.Workload{Bytes: frames, Interval: 0.1},
		req.CapacityBps, req.BufferBytes, queue.Options{},
	)
	if err != nil {
		t.Fatalf("reference Simulate: %v", err)
	}
	if math.Float64bits(final.Result.Pl) != math.Float64bits(want.Pl) {
		t.Errorf("job Pl=%v, direct Pl=%v", final.Result.Pl, want.Pl)
	}
}

func TestSimulateBadRequests(t *testing.T) {
	ts := newTestServer(t, Config{MaxFrames: 10_000})
	cases := []SimRequest{
		{},                            // no capacity
		{CapacityBps: -5},             // negative capacity
		{CapacityBps: 1e6, N: 20_000}, // over MaxFrames
		{CapacityBps: 1e6, Hurst: 2},  // invalid model
		{CapacityBps: 1e6, Backend: "wavelet"},
		{CapacityBps: 1e6, BufferBytes: -1},
		{CapacityBps: 1e6, IntervalSec: -1},
	}
	for i, req := range cases {
		resp, _ := postSim(t, ts, req)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("case %d: status %d, want 400", i, resp.StatusCode)
		}
	}
	// Junk body.
	resp, err := http.Post(ts.URL+"/v1/simulate", "application/json", strings.NewReader("{nope"))
	if err != nil {
		t.Fatalf("POST junk: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("junk body: status %d, want 400", resp.StatusCode)
	}
}

func TestJobNotFound(t *testing.T) {
	ts := newTestServer(t, Config{})
	resp, err := http.Get(ts.URL + "/v1/jobs/job-999999")
	if err != nil {
		t.Fatalf("GET: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("status %d, want 404", resp.StatusCode)
	}
}

func TestHealthz(t *testing.T) {
	ts := newTestServer(t, Config{})
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatalf("GET: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	var h healthStatus
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		t.Fatalf("decode: %v", err)
	}
	if h.Status != "ok" {
		t.Errorf("status %q", h.Status)
	}
}

// TestTraceClientDisconnect: a client that walks away mid-stream must
// not wedge the server; subsequent requests still work.
func TestTraceClientDisconnect(t *testing.T) {
	ts := newTestServer(t, Config{})
	ctx, cancel := context.WithCancel(context.Background())
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, ts.URL+"/v1/trace?n=500000&block=1024", nil)
	if err != nil {
		t.Fatalf("NewRequest: %v", err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("Do: %v", err)
	}
	buf := make([]byte, 4096)
	if _, err := resp.Body.Read(buf); err != nil {
		t.Fatalf("first read: %v", err)
	}
	cancel()
	resp.Body.Close()

	// The server must still answer.
	resp2, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatalf("healthz after disconnect: %v", err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusOK {
		t.Errorf("healthz status %d", resp2.StatusCode)
	}
}

// TestConcurrentTraceStreams: several clients streaming at once must
// each get their exact, independent series.
func TestConcurrentTraceStreams(t *testing.T) {
	ts := newTestServer(t, Config{})
	const clients = 4
	errc := make(chan error, clients)
	for c := 0; c < clients; c++ {
		go func(seed int) {
			url := fmt.Sprintf("%s/v1/trace?n=3000&seed=%d&format=bin", ts.URL, seed)
			resp, err := http.Get(url)
			if err != nil {
				errc <- err
				return
			}
			defer resp.Body.Close()
			raw, err := io.ReadAll(resp.Body)
			if err != nil {
				errc <- err
				return
			}
			if len(raw) != 3000*8 {
				errc <- fmt.Errorf("seed %d: %d bytes", seed, len(raw))
				return
			}
			errc <- nil
		}(c + 1)
	}
	for c := 0; c < clients; c++ {
		if err := <-errc; err != nil {
			t.Errorf("client: %v", err)
		}
	}
}

// TestHealthzDegraded: a simulate buffer at ≥ 90% occupancy must flip
// /healthz to "degraded" (still 200) with the occupancy in the body,
// and a full buffer must shed with 503 + Retry-After. The server is
// built without sim workers so the FIFO fills deterministically.
func TestHealthzDegraded(t *testing.T) {
	s := &Server{
		cfg:  Config{DefaultModel: PaperDefault, MaxFrames: 1 << 20, JobQueueDepth: 10},
		jobs: newJobStore("", 10),
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	getHealth := func() healthStatus {
		t.Helper()
		resp, err := http.Get(ts.URL + "/healthz")
		if err != nil {
			t.Fatalf("GET /healthz: %v", err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("healthz status %d, want 200", resp.StatusCode)
		}
		var h healthStatus
		if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
			t.Fatalf("decode healthz: %v", err)
		}
		return h
	}

	if h := getHealth(); h.Status != HealthOK {
		t.Fatalf("empty queue: status %q, want %q", h.Status, HealthOK)
	}

	// Fill to 9/10: exactly the degraded threshold.
	req := SimRequest{N: 100, CapacityBps: 1e6}
	for i := 0; i < 9; i++ {
		resp, _ := postSim(t, ts, req)
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("job %d: status %d, want 202", i, resp.StatusCode)
		}
	}
	h := getHealth()
	if h.Status != HealthDegraded {
		t.Errorf("9/10 queue: status %q, want %q", h.Status, HealthDegraded)
	}
	if h.Queue.Len != 9 || h.Queue.Cap != 10 {
		t.Errorf("queue occupancy %d/%d, want 9/10", h.Queue.Len, h.Queue.Cap)
	}
	if h.Queue.Occupancy < 0.89 || h.Queue.Occupancy > 0.91 {
		t.Errorf("occupancy %v, want ≈0.9", h.Queue.Occupancy)
	}

	// Fill the last slot, then the next POST must shed with Retry-After.
	if resp, _ := postSim(t, ts, req); resp.StatusCode != http.StatusAccepted {
		t.Fatalf("10th job: status %d, want 202", resp.StatusCode)
	}
	resp, _ := postSim(t, ts, req)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("overflow job: status %d, want 503", resp.StatusCode)
	}
	if ra := resp.Header.Get("Retry-After"); ra == "" {
		t.Error("503 shed carries no Retry-After header")
	} else if secs, err := strconv.Atoi(ra); err != nil || secs < 1 {
		t.Errorf("Retry-After %q, want an integer ≥ 1", ra)
	}
}

// TestWorkerIdentity: a fleet-member server must stamp every response
// with X-Vbr-Worker and scope its job IDs with the worker prefix so
// the fleet proxy can route job polls.
func TestWorkerIdentity(t *testing.T) {
	ts := newTestServer(t, Config{WorkerID: "3"})

	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatalf("GET /healthz: %v", err)
	}
	var h healthStatus
	err = json.NewDecoder(resp.Body).Decode(&h)
	resp.Body.Close()
	if err != nil {
		t.Fatalf("decode healthz: %v", err)
	}
	if got := resp.Header.Get(WorkerHeader); got != "3" {
		t.Errorf("%s = %q, want %q", WorkerHeader, got, "3")
	}
	if h.Worker != "3" {
		t.Errorf("healthz worker %q, want %q", h.Worker, "3")
	}

	accept, v := postSim(t, ts, SimRequest{N: 500, CapacityBps: 1e6})
	if accept.StatusCode != http.StatusAccepted {
		t.Fatalf("simulate: status %d", accept.StatusCode)
	}
	if !strings.HasPrefix(v.ID, "w3-job-") {
		t.Errorf("job id %q lacks the w3- worker prefix", v.ID)
	}
	if got := accept.Header.Get(WorkerHeader); got != "3" {
		t.Errorf("simulate %s = %q, want %q", WorkerHeader, got, "3")
	}
	final := pollJob(t, ts, v.ID)
	if final.State != stateDone {
		t.Fatalf("job state %q (err %q)", final.State, final.Error)
	}
}
