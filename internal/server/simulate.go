package server

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"sync"

	"vbr/internal/backend"
	"vbr/internal/obs"
	"vbr/internal/queue"
	"vbr/internal/runner"
	"vbr/internal/stream"
)

// shedRetryAfterSeconds is the Retry-After hint on a 503 shed: long
// enough for a couple of queued jobs to drain, short enough that a
// recovered worker is re-offered load promptly.
const shedRetryAfterSeconds = 1

// SimRequest is the /v1/simulate body: either an uploaded trace
// (Frames) or generation parameters, plus the §5 queue configuration.
type SimRequest struct {
	// Generation parameters, ignored when Frames is given. Zero model
	// fields inherit the server default model.
	N       int     `json:"n,omitempty"`
	Mean    float64 `json:"mean,omitempty"`
	Std     float64 `json:"std,omitempty"`
	Tail    float64 `json:"tail,omitempty"`
	Hurst   float64 `json:"hurst,omitempty"`
	Seed    uint64  `json:"seed,omitempty"`
	Backend string  `json:"backend,omitempty"`

	// Frames is an uploaded per-interval byte series; when set it is
	// simulated as-is.
	Frames []float64 `json:"frames,omitempty"`

	// Queue configuration (§5): channel capacity in bits per second,
	// buffer in bytes, interval duration in seconds (default 1/24 — the
	// paper's frame clock).
	CapacityBps float64 `json:"capacity_bps"`
	BufferBytes float64 `json:"buffer_bytes"`
	IntervalSec float64 `json:"interval_s,omitempty"`
}

// JobView is the wire form of a simulation job.
type JobView struct {
	ID     string        `json:"id"`
	State  string        `json:"state"` // queued | running | done | failed
	Error  string        `json:"error,omitempty"`
	Result *queue.Result `json:"result,omitempty"`
}

// Job states.
const (
	stateQueued  = "queued"
	stateRunning = "running"
	stateDone    = "done"
	stateFailed  = "failed"
)

// job is the mutable server-side record behind a JobView.
type job struct {
	id  string
	req SimRequest

	mu     sync.Mutex
	state  string
	err    error
	result *queue.Result
}

func (j *job) view() JobView {
	j.mu.Lock()
	defer j.mu.Unlock()
	v := JobView{ID: j.id, State: j.state, Result: j.result}
	if j.err != nil {
		v.Error = j.err.Error()
	}
	return v
}

func (j *job) setState(state string) {
	j.mu.Lock()
	j.state = state
	j.mu.Unlock()
}

func (j *job) finish(res *queue.Result, err error) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if err != nil {
		j.state, j.err = stateFailed, err
		return
	}
	j.state, j.result = stateDone, res
}

// defaultJobQueueDepth bounds the number of accepted-but-unfinished
// jobs when Config.JobQueueDepth is zero; when the buffer is full,
// POST /v1/simulate sheds load with 503 instead of growing without
// bound.
const defaultJobQueueDepth = 256

// jobStore owns job records and the FIFO feeding the workers. prefix
// scopes job IDs to one fleet worker ("" outside a fleet).
type jobStore struct {
	prefix string

	mu   sync.Mutex
	next int
	byID map[string]*job
	fifo chan *job
}

func newJobStore(prefix string, depth int) *jobStore {
	return &jobStore{prefix: prefix, byID: make(map[string]*job), fifo: make(chan *job, depth)}
}

// add registers and enqueues a new job, or reports queue saturation.
func (st *jobStore) add(req SimRequest) (*job, error) {
	st.mu.Lock()
	st.next++
	j := &job{id: fmt.Sprintf("%sjob-%06d", st.prefix, st.next), req: req, state: stateQueued}
	st.byID[j.id] = j
	st.mu.Unlock()
	select {
	case st.fifo <- j:
		return j, nil
	default:
		st.mu.Lock()
		delete(st.byID, j.id)
		st.mu.Unlock()
		return nil, fmt.Errorf("server: job queue full (%d pending)", cap(st.fifo))
	}
}

// occupancy reports the job buffer's fill level for /healthz.
func (st *jobStore) occupancy() (used, capacity int) {
	return len(st.fifo), cap(st.fifo)
}

func (st *jobStore) get(id string) (*job, bool) {
	st.mu.Lock()
	defer st.mu.Unlock()
	j, ok := st.byID[id]
	return j, ok
}

// jobStats summarizes queue occupancy for /healthz.
type jobStats struct {
	Queued  int `json:"queued"`
	Running int `json:"running"`
	Done    int `json:"done"`
	Failed  int `json:"failed"`
}

func (st *jobStore) stats() jobStats {
	st.mu.Lock()
	defer st.mu.Unlock()
	var out jobStats
	for _, j := range st.byID {
		j.mu.Lock()
		state := j.state
		j.mu.Unlock()
		switch state {
		case stateQueued:
			out.Queued++
		case stateRunning:
			out.Running++
		case stateDone:
			out.Done++
		case stateFailed:
			out.Failed++
		}
	}
	return out
}

// validateSim rejects obviously unrunnable jobs at POST time, so the
// client hears about bad parameters synchronously.
func (s *Server) validateSim(req SimRequest) error {
	if !(req.CapacityBps > 0) {
		return fmt.Errorf("server: capacity_bps must be positive, got %v", req.CapacityBps)
	}
	if req.BufferBytes < 0 {
		return fmt.Errorf("server: buffer_bytes must be ≥ 0, got %v", req.BufferBytes)
	}
	if req.IntervalSec < 0 {
		return fmt.Errorf("server: interval_s must be ≥ 0, got %v", req.IntervalSec)
	}
	if len(req.Frames) == 0 {
		cfg, err := s.simStreamConfig(req)
		if err != nil {
			return err
		}
		if cfg.N > s.cfg.MaxFrames {
			return fmt.Errorf("server: n=%d exceeds the per-request cap of %d frames", cfg.N, s.cfg.MaxFrames)
		}
	} else if len(req.Frames) > s.cfg.MaxFrames {
		return fmt.Errorf("server: %d uploaded frames exceed the per-request cap of %d", len(req.Frames), s.cfg.MaxFrames)
	}
	return nil
}

// simStreamConfig maps a SimRequest's generation half onto a stream
// Config.
func (s *Server) simStreamConfig(req SimRequest) (stream.Config, error) {
	get := func(name string) string {
		v := map[string]float64{"mean": req.Mean, "std": req.Std, "tail": req.Tail, "hurst": req.Hurst}[name]
		//vbrlint:ignore floateq a field omitted from the JSON body decodes to exactly 0; the exact compare detects "not set"
		if v == 0 {
			return ""
		}
		return fmt.Sprintf("%g", v)
	}
	model, err := s.parseModel(get)
	if err != nil {
		return stream.Config{}, err
	}
	cfg := stream.Config{Model: model, N: req.N, Seed: req.Seed, Backend: DefaultBackend, Pool: s.cfg.Pool}
	if cfg.N == 0 {
		cfg.N = 10_000
	}
	if req.Backend != "" {
		b, err := backend.Parse(req.Backend)
		if err != nil {
			return stream.Config{}, err
		}
		cfg.Backend = b
	}
	return cfg, nil
}

// handleSimulate accepts an async §5 simulation job and returns 202
// with its id and status URL. The work itself runs on the server's
// worker pool under the server lifetime context — the job survives this
// request — so the handler only validates and enqueues; no generation
// happens here.
func (s *Server) handleSimulate(w http.ResponseWriter, r *http.Request) {
	scope := obs.From(r.Context())
	scope.Count("server.simulate.requests", 1)
	var req SimRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 64<<20))
	if err := dec.Decode(&req); err != nil {
		scope.Count("server.simulate.badrequest", 1)
		writeError(w, http.StatusBadRequest, fmt.Errorf("server: decoding simulate request: %w", err))
		return
	}
	if err := s.validateSim(req); err != nil {
		scope.Count("server.simulate.badrequest", 1)
		writeError(w, http.StatusBadRequest, err)
		return
	}
	j, err := s.jobs.add(req)
	if err != nil {
		scope.Count("server.simulate.shed", 1)
		// Retry-After turns the shed into a back-off signal: well-behaved
		// clients (and the fleet proxy) pause instead of hammering a
		// saturated worker into a 503 loop.
		w.Header().Set("Retry-After", strconv.Itoa(shedRetryAfterSeconds))
		writeError(w, http.StatusServiceUnavailable, err)
		return
	}
	scope.Count("server.simulate.accepted", 1)
	w.Header().Set("Location", "/v1/jobs/"+j.id)
	writeJSON(w, http.StatusAccepted, j.view())
}

// handleJob reports job status; it reads server-side state only, so no
// context threading applies.
func (s *Server) handleJob(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	j, ok := s.jobs.get(id)
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("server: unknown job %q", id))
		return
	}
	writeJSON(w, http.StatusOK, j.view())
}

// simWorker drains the job FIFO until the server lifetime context
// fires. Each job body runs through runner.Run, so a panicking
// simulation marks its own job failed instead of killing the daemon.
func (s *Server) simWorker(ctx context.Context) {
	for {
		select {
		case <-ctx.Done():
			return
		case j := <-s.jobs.fifo:
			j.setState(stateRunning)
			scope := obs.From(ctx)
			done := scope.Span("server.simulate.job")
			res := runner.Run(ctx, 1, runner.Options{Workers: 1, Label: func(int) string { return j.id }}, func(ctx context.Context, _ int) (*queue.Result, error) {
				return s.runSim(ctx, j.req)
			})
			done()
			j.finish(res[0].Value, res[0].Err)
			if res[0].Err != nil {
				scope.Count("server.simulate.failed", 1)
			} else {
				scope.Count("server.simulate.done", 1)
			}
		}
	}
}

// runSim materializes the workload (uploaded or streamed from the
// model) and runs the §5 FIFO queue simulation on it.
func (s *Server) runSim(ctx context.Context, req SimRequest) (*queue.Result, error) {
	frames := req.Frames
	if len(frames) == 0 {
		cfg, err := s.simStreamConfig(req)
		if err != nil {
			return nil, err
		}
		src, err := stream.OpenCtx(ctx, cfg)
		if err != nil {
			return nil, err
		}
		frames, err = stream.Collect(ctx, src)
		if err != nil {
			return nil, fmt.Errorf("server: generating %d-frame workload: %w", cfg.N, err)
		}
	}
	interval := req.IntervalSec
	//vbrlint:ignore floateq a field omitted from the JSON body decodes to exactly 0; the exact compare detects "not set"
	if interval == 0 {
		interval = 1.0 / 24
	}
	res, err := queue.Simulate(
		queue.Workload{Bytes: frames, Interval: interval},
		req.CapacityBps, req.BufferBytes,
		queue.Options{Seed: req.Seed},
	)
	if err != nil {
		return nil, fmt.Errorf("server: simulating job: %w", err)
	}
	return res, nil
}
