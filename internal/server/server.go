// Package server is the HTTP serving layer over the §4 generator and
// the §5 queueing simulator: vbrd's request handlers, the async
// simulation job queue, and their JSON wire types. It is deliberately
// stdlib-only (net/http, Go 1.22 method patterns) and stateless apart
// from the job store, so one process can serve many concurrent trace
// streams in O(block) memory each.
package server

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"

	"vbr/internal/core"
	"vbr/internal/genpool"
	"vbr/internal/obs"
)

// Config parameterizes a Server. Zero values select defaults.
type Config struct {
	// DefaultModel seeds requests that omit model parameters; the zero
	// Model selects the paper's Star Wars fit (Table 4).
	DefaultModel core.Model
	// MaxFrames caps the per-request trace length (default 4·2²⁰); a
	// cap keeps one greedy client from pinning a worker for hours.
	MaxFrames int
	// SimWorkers is the number of concurrent simulation-job workers
	// (default 2).
	SimWorkers int
	// Pool is the process-wide generation cache shared by every trace
	// request and simulation job: requests repeating a Hurst parameter
	// or marginal reuse the coefficient schedules, eigenvalue vectors
	// and mapping tables of earlier requests. When nil, New installs a
	// genpool.New(0) default; output never depends on cache state.
	Pool *genpool.Pool
}

// paperDefault is the Table 4 Star Wars model used when a request names
// no parameters.
var paperDefault = core.Model{MuGamma: 27791, SigmaGamma: 6254, TailSlope: 12, Hurst: 0.8}

// Server owns the handlers and the simulation job queue. Its lifetime
// is bound to the context given to New: when that context fires, job
// workers stop and queued jobs fail with a cancellation error.
type Server struct {
	cfg      Config
	lifetime context.Context
	jobs     *jobStore
}

// New builds a server whose background work (simulation job workers)
// lives until ctx fires. The caller owns HTTP listening and shutdown;
// see cmd/vbrd.
func New(ctx context.Context, cfg Config) *Server {
	if cfg.DefaultModel == (core.Model{}) {
		cfg.DefaultModel = paperDefault
	}
	if cfg.MaxFrames == 0 {
		cfg.MaxFrames = 4 << 20
	}
	if cfg.SimWorkers == 0 {
		cfg.SimWorkers = 2
	}
	if cfg.Pool == nil {
		cfg.Pool = genpool.New(0)
	}
	s := &Server{
		cfg:      cfg,
		lifetime: ctx,
		jobs:     newJobStore(),
	}
	for i := 0; i < cfg.SimWorkers; i++ {
		go s.simWorker(ctx)
	}
	return s
}

// Handler returns the route table. Paths use Go 1.22 method patterns,
// so stray methods get 405 from the mux itself.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /v1/trace", s.handleTrace)
	mux.HandleFunc("POST /v1/simulate", s.handleSimulate)
	mux.HandleFunc("GET /v1/jobs/{id}", s.handleJob)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	return mux
}

// apiError is the uniform JSON error body.
type apiError struct {
	Error string `json:"error"`
}

// writeError sends a JSON error with the given status.
func writeError(w http.ResponseWriter, status int, err error) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(apiError{Error: err.Error()})
}

// writeJSON sends v as a JSON response with the given status.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

// healthStatus is the /healthz body.
type healthStatus struct {
	Status string   `json:"status"`
	Jobs   jobStats `json:"jobs"`
}

// handleHealthz reports liveness plus job-queue depth; it performs no
// generation and so takes no request context anywhere.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	obs.From(r.Context()).Count("server.healthz.requests", 1)
	writeJSON(w, http.StatusOK, healthStatus{Status: "ok", Jobs: s.jobs.stats()})
}

// parseModel reads μΓ/σΓ/m_T/H overrides from query parameters on top
// of the server default.
func (s *Server) parseModel(get func(string) string) (core.Model, error) {
	m := s.cfg.DefaultModel
	for _, p := range []struct {
		name string
		dst  *float64
	}{
		{"mean", &m.MuGamma},
		{"std", &m.SigmaGamma},
		{"tail", &m.TailSlope},
		{"hurst", &m.Hurst},
	} {
		if v := get(p.name); v != "" {
			f, err := parseFloat(v)
			if err != nil {
				return core.Model{}, fmt.Errorf("server: parameter %s: %w", p.name, err)
			}
			*p.dst = f
		}
	}
	if err := m.Validate(); err != nil {
		return core.Model{}, err
	}
	return m, nil
}
