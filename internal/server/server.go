// Package server is the HTTP serving layer over the §4 generator and
// the §5 queueing simulator: vbrd's request handlers, the async
// simulation job queue, and their JSON wire types. It is deliberately
// stdlib-only (net/http, Go 1.22 method patterns) and stateless apart
// from the job store, so one process can serve many concurrent trace
// streams in O(block) memory each.
package server

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"time"

	"vbr/internal/core"
	"vbr/internal/genpool"
	"vbr/internal/obs"
)

// Config parameterizes a Server. Zero values select defaults.
type Config struct {
	// DefaultModel seeds requests that omit model parameters; the zero
	// Model selects the paper's Star Wars fit (Table 4).
	DefaultModel core.Model
	// MaxFrames caps the per-request trace length (default 4·2²⁰); a
	// cap keeps one greedy client from pinning a worker for hours.
	MaxFrames int
	// SimWorkers is the number of concurrent simulation-job workers
	// (default 2).
	SimWorkers int
	// Pool is the process-wide generation cache shared by every trace
	// request and simulation job: requests repeating a Hurst parameter
	// or marginal reuse the coefficient schedules, eigenvalue vectors
	// and mapping tables of earlier requests. When nil, New installs a
	// genpool.New(0) default; output never depends on cache state.
	Pool *genpool.Pool
	// WorkerID names this process inside a fleet. When non-empty every
	// response carries it in an X-Vbr-Worker header and job IDs gain a
	// "w<id>-" prefix, so the fleet proxy can route /v1/jobs polls back
	// to the worker that owns the job.
	WorkerID string
	// WriteBudget bounds how long a non-streaming response (simulate
	// accept, job poll, healthz) may take to reach the client; past it
	// the connection is cut so a slow reader cannot pin a handler
	// goroutine. Zero disables the budget. /v1/trace is exempt: a
	// legitimate stream is as slow as its client.
	WriteBudget time.Duration
	// JobQueueDepth bounds accepted-but-unfinished simulation jobs
	// (default 256); past it POST /v1/simulate sheds with 503.
	JobQueueDepth int
}

// PaperDefault is the Table 4 Star Wars model used when a request
// names no parameters. Exported so the fleet proxy resolves absent
// model parameters to the same genpool identity the workers do before
// consistent-hashing them.
var PaperDefault = core.Model{MuGamma: 27791, SigmaGamma: 6254, TailSlope: 12, Hurst: 0.8}

// Server owns the handlers and the simulation job queue. Its lifetime
// is bound to the context given to New: when that context fires, job
// workers stop and queued jobs fail with a cancellation error.
type Server struct {
	cfg      Config
	lifetime context.Context
	jobs     *jobStore
}

// New builds a server whose background work (simulation job workers)
// lives until ctx fires. The caller owns HTTP listening and shutdown;
// see cmd/vbrd.
func New(ctx context.Context, cfg Config) *Server {
	if cfg.DefaultModel == (core.Model{}) {
		cfg.DefaultModel = PaperDefault
	}
	if cfg.MaxFrames == 0 {
		cfg.MaxFrames = 4 << 20
	}
	if cfg.SimWorkers == 0 {
		cfg.SimWorkers = 2
	}
	if cfg.Pool == nil {
		cfg.Pool = genpool.New(0)
	}
	if cfg.JobQueueDepth == 0 {
		cfg.JobQueueDepth = defaultJobQueueDepth
	}
	jobPrefix := ""
	if cfg.WorkerID != "" {
		jobPrefix = "w" + cfg.WorkerID + "-"
	}
	s := &Server{
		cfg:      cfg,
		lifetime: ctx,
		jobs:     newJobStore(jobPrefix, cfg.JobQueueDepth),
	}
	for i := 0; i < cfg.SimWorkers; i++ {
		go s.simWorker(ctx)
	}
	return s
}

// Handler returns the route table. Paths use Go 1.22 method patterns,
// so stray methods get 405 from the mux itself. Non-streaming routes
// run under the write budget; /v1/trace does not (a stream is as slow
// as its client, and the drain deadline already bounds its lifetime).
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /v1/trace", s.handleTrace)
	mux.HandleFunc("POST /v1/simulate", s.budgeted(s.handleSimulate))
	mux.HandleFunc("GET /v1/jobs/{id}", s.budgeted(s.handleJob))
	mux.HandleFunc("GET /healthz", s.budgeted(s.handleHealthz))
	if s.cfg.WorkerID == "" {
		return mux
	}
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set(WorkerHeader, s.cfg.WorkerID)
		mux.ServeHTTP(w, r)
	})
}

// WorkerHeader carries Config.WorkerID on every fleet-member response.
const WorkerHeader = "X-Vbr-Worker"

// budgeted applies Config.WriteBudget to a non-streaming handler by
// arming a connection write deadline before the body is produced; a
// client that cannot absorb a small JSON response inside the budget
// loses the connection instead of pinning the goroutine.
func (s *Server) budgeted(h http.HandlerFunc) http.HandlerFunc {
	if s.cfg.WriteBudget <= 0 {
		return h
	}
	return func(w http.ResponseWriter, r *http.Request) {
		rc := http.NewResponseController(w)
		//vbrlint:ignore determinism write deadlines are transport plumbing; they never influence generated or simulated values
		deadline := time.Now().Add(s.cfg.WriteBudget)
		// Recorders and exotic writers may not support deadlines; the
		// budget is then best-effort rather than a request failure.
		_ = rc.SetWriteDeadline(deadline)
		h(w, r)
	}
}

// apiError is the uniform JSON error body.
type apiError struct {
	Error string `json:"error"`
}

// writeError sends a JSON error with the given status.
func writeError(w http.ResponseWriter, status int, err error) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(apiError{Error: err.Error()})
}

// writeJSON sends v as a JSON response with the given status.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

// Health statuses. Degraded is still HTTP 200 — the worker serves —
// but warns a supervisor that the simulate buffer is nearly full, so
// load can be steered away before the worker starts shedding.
const (
	HealthOK       = "ok"
	HealthDegraded = "degraded"
)

// degradedOccupancy is the simulate-buffer fill fraction at which
// /healthz flips from "ok" to "degraded".
const degradedOccupancy = 0.9

// healthStatus is the /healthz body.
type healthStatus struct {
	Status string      `json:"status"` // ok | degraded
	Worker string      `json:"worker,omitempty"`
	Jobs   jobStats    `json:"jobs"`
	Queue  queueStatus `json:"queue"`
}

// queueStatus reports simulate job-buffer occupancy.
type queueStatus struct {
	Len       int     `json:"len"`
	Cap       int     `json:"cap"`
	Occupancy float64 `json:"occupancy"`
}

// handleHealthz reports liveness plus job-queue depth; it performs no
// generation and so takes no request context anywhere.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	obs.From(r.Context()).Count("server.healthz.requests", 1)
	qlen, qcap := s.jobs.occupancy()
	h := healthStatus{
		Status: HealthOK,
		Worker: s.cfg.WorkerID,
		Jobs:   s.jobs.stats(),
		Queue:  queueStatus{Len: qlen, Cap: qcap, Occupancy: float64(qlen) / float64(qcap)},
	}
	if h.Queue.Occupancy >= degradedOccupancy {
		h.Status = HealthDegraded
	}
	writeJSON(w, http.StatusOK, h)
}

// parseModel reads μΓ/σΓ/m_T/H overrides from query parameters on top
// of the server default.
func (s *Server) parseModel(get func(string) string) (core.Model, error) {
	m := s.cfg.DefaultModel
	for _, p := range []struct {
		name string
		dst  *float64
	}{
		{"mean", &m.MuGamma},
		{"std", &m.SigmaGamma},
		{"tail", &m.TailSlope},
		{"hurst", &m.Hurst},
	} {
		if v := get(p.name); v != "" {
			f, err := parseFloat(v)
			if err != nil {
				return core.Model{}, fmt.Errorf("server: parameter %s: %w", p.name, err)
			}
			*p.dst = f
		}
	}
	if err := m.Validate(); err != nil {
		return core.Model{}, err
	}
	return m, nil
}
