package experiments

import (
	"bytes"
	"context"
	"strings"
	"testing"

	"vbr/internal/lrd"
)

func smallCalibrationConfig() CalibrationConfig {
	return CalibrationConfig{
		Hs:       []float64{0.7, 0.85},
		Ns:       []int{512, 1024},
		Seeds:    3,
		BaseSeed: 7,
	}
}

func TestCalibrateSmoke(t *testing.T) {
	cfg := smallCalibrationConfig()
	res, err := Calibrate(context.Background(), cfg)
	if err != nil {
		t.Fatalf("Calibrate: %v", err)
	}
	want := len(lrd.EstimatorNames) * len(cfg.Hs) * len(cfg.Ns)
	if len(res.Cells) != want {
		t.Fatalf("got %d cells, want %d", len(res.Cells), want)
	}
	// Estimator-major order, every cell populated.
	for i, c := range res.Cells {
		if wantEst := lrd.EstimatorNames[i/(len(cfg.Hs)*len(cfg.Ns))]; c.Estimator != wantEst {
			t.Fatalf("cell %d estimator = %q, want %q", i, c.Estimator, wantEst)
		}
		if c.Seeds != cfg.Seeds || !(c.Std > 0) {
			t.Fatalf("cell %d degenerate: %+v", i, c)
		}
	}

	// The battery is deterministic: a rerun under different parallelism
	// must reduce to the identical table.
	cfg2 := cfg
	cfg2.Workers = 1
	res2, err := Calibrate(context.Background(), cfg2)
	if err != nil {
		t.Fatalf("Calibrate rerun: %v", err)
	}
	for i := range res.Cells {
		if res.Cells[i] != res2.Cells[i] {
			t.Fatalf("cell %d differs across runs:\n  %+v\n  %+v", i, res.Cells[i], res2.Cells[i])
		}
	}

	if s := res.Format(); !strings.Contains(s, "mavar") || !strings.Contains(s, "variance-time") {
		t.Fatalf("Format missing estimator rows:\n%s", s)
	}
	var goSrc bytes.Buffer
	if err := res.WriteGo(&goSrc); err != nil {
		t.Fatalf("WriteGo: %v", err)
	}
	for _, frag := range []string{"Code generated", "package lrd", "builtinCalibrationCells", `{Estimator: "mavar"`} {
		if !strings.Contains(goSrc.String(), frag) {
			t.Fatalf("WriteGo output missing %q:\n%s", frag, goSrc.String())
		}
	}
	var js bytes.Buffer
	if err := res.WriteJSON(&js); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
	if !strings.Contains(js.String(), `"cells"`) {
		t.Fatalf("WriteJSON output missing cells:\n%s", js.String())
	}
}

func TestCalibrationConfigValidate(t *testing.T) {
	for name, mutate := range map[string]func(*CalibrationConfig){
		"no hs":       func(c *CalibrationConfig) { c.Hs = nil },
		"no ns":       func(c *CalibrationConfig) { c.Ns = nil },
		"bad h":       func(c *CalibrationConfig) { c.Hs = []float64{1.2} },
		"short n":     func(c *CalibrationConfig) { c.Ns = []int{64} },
		"1 seed only": func(c *CalibrationConfig) { c.Seeds = 1 },
	} {
		cfg := smallCalibrationConfig()
		mutate(&cfg)
		if err := cfg.Validate(); err == nil {
			t.Errorf("%s: Validate accepted %+v", name, cfg)
		}
	}
	if err := DefaultCalibrationConfig().Validate(); err != nil {
		t.Errorf("default config rejected: %v", err)
	}
}
