package experiments

import (
	"context"
	"fmt"
	"math"
	"strings"

	"vbr/internal/dist"
	"vbr/internal/errs"
	"vbr/internal/lrd"
	"vbr/internal/stats"
)

// SeriesResult is a generic (x, y) data series with a label, the common
// currency of the figure reproductions.
type SeriesResult struct {
	Label string
	X, Y  []float64
}

// Fig1Result is the full time series of Fig. 1, decimated for display.
type Fig1Result struct {
	Series SeriesResult
	// PeakFrames lists the indices of the five highest isolated peaks —
	// the paper's named special-effect events.
	PeakFrames []int
}

// Fig1 returns the (decimated) 2-hour time series and its major peaks.
func (s *Suite) Fig1(maxPoints int) (*Fig1Result, error) {
	return s.Fig1Ctx(context.Background(), maxPoints)
}

// Fig1Ctx is Fig1 under a cancellable context.
func (s *Suite) Fig1Ctx(ctx context.Context, maxPoints int) (*Fig1Result, error) {
	if ctx.Err() != nil {
		return nil, errs.Cancelled(ctx)
	}
	if maxPoints < 2 {
		return nil, fmt.Errorf("experiments: need ≥ 2 points, got %d", maxPoints)
	}
	frames := s.Trace.Frames
	step := len(frames) / maxPoints
	if step < 1 {
		step = 1
	}
	res := &Fig1Result{Series: SeriesResult{Label: "bytes/frame"}}
	for i := 0; i < len(frames); i += step {
		// Max over the decimation window so peaks are preserved.
		peak := frames[i]
		for j := i; j < i+step && j < len(frames); j++ {
			if frames[j] > peak {
				peak = frames[j]
			}
		}
		res.Series.X = append(res.Series.X, float64(i))
		res.Series.Y = append(res.Series.Y, peak)
	}
	res.PeakFrames = topPeaks(frames, 5, len(frames)/50)
	return res, nil
}

// topPeaks returns the indices of the k largest values that are pairwise
// at least minSep apart.
func topPeaks(xs []float64, k, minSep int) []int {
	var peaks []int
	taken := make([]bool, len(xs))
	for len(peaks) < k {
		best, bestV := -1, math.Inf(-1)
		for i, v := range xs {
			if !taken[i] && v > bestV {
				best, bestV = i, v
			}
		}
		if best < 0 {
			break
		}
		peaks = append(peaks, best)
		lo, hi := best-minSep, best+minSep
		if lo < 0 {
			lo = 0
		}
		if hi > len(xs) {
			hi = len(xs)
		}
		for i := lo; i < hi; i++ {
			taken[i] = true
		}
	}
	return peaks
}

// Fig2 returns the low-frequency content: the moving average with the
// paper's 20,000-frame window (scaled to the trace length).
func (s *Suite) Fig2() (*SeriesResult, error) {
	return s.Fig2Ctx(context.Background())
}

// Fig2Ctx is Fig2 under a cancellable context.
func (s *Suite) Fig2Ctx(ctx context.Context) (*SeriesResult, error) {
	if ctx.Err() != nil {
		return nil, errs.Cancelled(ctx)
	}
	window := 20000 * len(s.Trace.Frames) / 171000
	if window < 100 {
		window = 100
	}
	ma, err := stats.MovingAverage(s.Trace.Frames, window)
	if err != nil {
		return nil, err
	}
	res := &SeriesResult{Label: fmt.Sprintf("moving average, window %d", window)}
	step := len(ma) / 2000
	if step < 1 {
		step = 1
	}
	for i := 0; i < len(ma); i += step {
		res.X = append(res.X, float64(i))
		res.Y = append(res.Y, ma[i])
	}
	return res, nil
}

// Fig3Result holds per-segment histograms against the full-trace
// histogram (Fig. 3's demonstration that short windows deviate from the
// long-term marginal).
type Fig3Result struct {
	Segments []SeriesResult // five two-minute segments
	Full     SeriesResult
	// MaxKS is the largest Kolmogorov–Smirnov distance between a segment
	// and the full trace — the quantitative version of "deviates
	// significantly".
	MaxKS float64
}

// Fig3 computes histograms for five two-minute segments and the whole
// trace.
func (s *Suite) Fig3() (*Fig3Result, error) {
	return s.Fig3Ctx(context.Background())
}

// Fig3Ctx is Fig3 under a cancellable context, checked per segment.
func (s *Suite) Fig3Ctx(ctx context.Context) (*Fig3Result, error) {
	frames := s.Trace.Frames
	segFrames := int(120 * s.Trace.FrameRate) // two minutes
	if segFrames > len(frames)/5 {
		segFrames = len(frames) / 5
	}
	full, err := stats.NewECDF(frames)
	if err != nil {
		return nil, err
	}
	lo, hi := full.Quantile(0.0001), full.Quantile(0.9999)
	res := &Fig3Result{}
	mkHist := func(xs []float64, label string) (SeriesResult, error) {
		h, err := stats.NewHistogram(xs, lo, hi, 60)
		if err != nil {
			return SeriesResult{}, err
		}
		sr := SeriesResult{Label: label}
		for i := range h.Density {
			sr.X = append(sr.X, h.BinCenter(i))
			sr.Y = append(sr.Y, h.Density[i])
		}
		return sr, nil
	}
	for i := 0; i < 5; i++ {
		if ctx.Err() != nil {
			return nil, errs.Cancelled(ctx)
		}
		start := i * len(frames) / 5
		seg := frames[start : start+segFrames]
		sr, err := mkHist(seg, fmt.Sprintf("segment %d (frames %d..%d)", i+1, start, start+segFrames))
		if err != nil {
			return nil, err
		}
		res.Segments = append(res.Segments, sr)
		segE, err := stats.NewECDF(seg)
		if err != nil {
			return nil, err
		}
		// KS distance between segment and full-trace empirical CDFs,
		// evaluated on the segment's points.
		var ks float64
		for _, x := range seg {
			d := math.Abs(segE.CDF(x) - full.CDF(x))
			if d > ks {
				ks = d
			}
		}
		if ks > res.MaxKS {
			res.MaxKS = ks
		}
	}
	fullH, err := mkHist(frames, "complete trace")
	if err != nil {
		return nil, err
	}
	res.Full = fullH
	return res, nil
}

// TailFitResult carries Fig. 4/5 data: the empirical tail against the
// fitted candidate distributions, with goodness-of-fit numbers.
type TailFitResult struct {
	// Empirical is (x, CCDF) for Fig. 4 or (x, CDF) for Fig. 5.
	Empirical SeriesResult
	Models    []SeriesResult
	// TailKS maps model name → max |log10 model − log10 empirical| over
	// the plotted tail region: the visual vertical offset on the paper's
	// log-log plots.
	TailErr map[string]float64
	// ParetoSlope is the fitted m_T (Fig. 4 only).
	ParetoSlope float64
}

// candidateModels fits the Fig. 4/5 distributions to the trace.
func (s *Suite) candidateModels() (normal, lognormal, gamma dist.Distribution, hybrid *dist.GammaPareto, err error) {
	frames := s.Trace.Frames
	n, err := dist.FitNormal(frames)
	if err != nil {
		return nil, nil, nil, nil, err
	}
	ln, err := dist.FitLognormal(frames)
	if err != nil {
		return nil, nil, nil, nil, err
	}
	g, err := dist.FitGamma(frames)
	if err != nil {
		return nil, nil, nil, nil, err
	}
	gp, err := dist.FitGammaPareto(frames, 0.03)
	if err != nil {
		return nil, nil, nil, nil, err
	}
	return n, ln, g, gp, nil
}

// Fig4 reproduces the log-log complementary CDF comparison of the right
// tail: empirical data against Normal, Gamma, Lognormal and the Pareto
// tail of the hybrid model.
func (s *Suite) Fig4() (*TailFitResult, error) {
	return s.Fig4Ctx(context.Background())
}

// Fig4Ctx is Fig4 under a cancellable context, checked per candidate
// model.
func (s *Suite) Fig4Ctx(ctx context.Context) (*TailFitResult, error) {
	if ctx.Err() != nil {
		return nil, errs.Cancelled(ctx)
	}
	normal, lognormal, gamma, hybrid, err := s.candidateModels()
	if err != nil {
		return nil, err
	}
	e, err := stats.NewECDF(s.Trace.Frames)
	if err != nil {
		return nil, err
	}
	// Tail points: the upper 5% at log-spaced ranks.
	nTail := len(s.Trace.Frames) / 20
	xs, ccdf := e.TailPoints(nTail)
	res := &TailFitResult{
		Empirical:   SeriesResult{Label: "empirical CCDF", X: xs, Y: ccdf},
		TailErr:     map[string]float64{},
		ParetoSlope: hybrid.Tail,
	}
	models := []struct {
		name string
		ccdf func(float64) float64
	}{
		{"normal", func(x float64) float64 { return 1 - normal.CDF(x) }},
		{"lognormal", func(x float64) float64 { return 1 - lognormal.CDF(x) }},
		{"gamma", func(x float64) float64 { return 1 - gamma.CDF(x) }},
		{"gamma/pareto", hybrid.CCDF},
	}
	for _, m := range models {
		if ctx.Err() != nil {
			return nil, errs.Cancelled(ctx)
		}
		sr := SeriesResult{Label: m.name}
		var worst float64
		for i, x := range xs {
			y := m.ccdf(x)
			sr.X = append(sr.X, x)
			sr.Y = append(sr.Y, y)
			if y > 0 && ccdf[i] > 0 {
				d := math.Abs(math.Log10(y) - math.Log10(ccdf[i]))
				if d > worst {
					worst = d
				}
			} else if ccdf[i] > 0 {
				worst = math.Inf(1)
			}
		}
		res.Models = append(res.Models, sr)
		res.TailErr[m.name] = worst
	}
	return res, nil
}

// Fig5 reproduces the log-log CDF comparison of the left tail, where the
// Gamma body should fit well.
func (s *Suite) Fig5() (*TailFitResult, error) {
	return s.Fig5Ctx(context.Background())
}

// Fig5Ctx is Fig5 under a cancellable context, checked per candidate
// model.
func (s *Suite) Fig5Ctx(ctx context.Context) (*TailFitResult, error) {
	if ctx.Err() != nil {
		return nil, errs.Cancelled(ctx)
	}
	normal, lognormal, gamma, hybrid, err := s.candidateModels()
	if err != nil {
		return nil, err
	}
	e, err := stats.NewECDF(s.Trace.Frames)
	if err != nil {
		return nil, err
	}
	// Lower tail order statistics.
	sorted := make([]float64, 0, len(s.Trace.Frames)/20)
	nTail := len(s.Trace.Frames) / 20
	for j := 1; j <= nTail; j++ {
		sorted = append(sorted, e.Quantile(float64(j)/float64(len(s.Trace.Frames))))
	}
	res := &TailFitResult{TailErr: map[string]float64{}}
	res.Empirical = SeriesResult{Label: "empirical CDF"}
	for j, x := range sorted {
		res.Empirical.X = append(res.Empirical.X, x)
		res.Empirical.Y = append(res.Empirical.Y, float64(j+1)/float64(len(s.Trace.Frames)))
	}
	models := []struct {
		name string
		cdf  func(float64) float64
	}{
		{"normal", normal.CDF},
		{"lognormal", lognormal.CDF},
		{"gamma", gamma.CDF},
		{"gamma/pareto", hybrid.CDF},
	}
	for _, m := range models {
		if ctx.Err() != nil {
			return nil, errs.Cancelled(ctx)
		}
		sr := SeriesResult{Label: m.name}
		var worst float64
		for i, x := range res.Empirical.X {
			y := m.cdf(x)
			sr.X = append(sr.X, x)
			sr.Y = append(sr.Y, y)
			emp := res.Empirical.Y[i]
			if y > 0 && emp > 0 {
				d := math.Abs(math.Log10(y) - math.Log10(emp))
				if d > worst {
					worst = d
				}
			} else if emp > 0 {
				worst = math.Inf(1)
			}
		}
		res.Models = append(res.Models, sr)
		res.TailErr[m.name] = worst
	}
	return res, nil
}

// Fig6Result compares the empirical density to the hybrid Gamma/Pareto
// density.
type Fig6Result struct {
	Empirical SeriesResult
	Model     SeriesResult
	KS        float64 // Kolmogorov–Smirnov distance of the hybrid fit
	// A2Hybrid and A2Gamma are Anderson–Darling statistics of the hybrid
	// and of a pure moment-fitted Gamma — the tail-weighted statistic
	// that quantifies what Fig. 6's eyeball comparison shows.
	A2Hybrid, A2Gamma float64
}

// Fig6 computes the density comparison.
func (s *Suite) Fig6() (*Fig6Result, error) {
	return s.Fig6Ctx(context.Background())
}

// Fig6Ctx is Fig6 under a cancellable context.
func (s *Suite) Fig6Ctx(ctx context.Context) (*Fig6Result, error) {
	if ctx.Err() != nil {
		return nil, errs.Cancelled(ctx)
	}
	_, _, _, hybrid, err := s.candidateModels()
	if err != nil {
		return nil, err
	}
	e, err := stats.NewECDF(s.Trace.Frames)
	if err != nil {
		return nil, err
	}
	lo, hi := e.Quantile(0.0001), e.Quantile(0.9999)
	h, err := stats.NewHistogram(s.Trace.Frames, lo, hi, 80)
	if err != nil {
		return nil, err
	}
	res := &Fig6Result{}
	res.Empirical.Label = "empirical density"
	res.Model.Label = "gamma/pareto density"
	for i := range h.Density {
		x := h.BinCenter(i)
		res.Empirical.X = append(res.Empirical.X, x)
		res.Empirical.Y = append(res.Empirical.Y, h.Density[i])
		res.Model.X = append(res.Model.X, x)
		res.Model.Y = append(res.Model.Y, hybrid.PDF(x))
	}
	ks, err := dist.KolmogorovDistance(s.Trace.Frames, hybrid)
	if err != nil {
		return nil, err
	}
	res.KS = ks
	res.A2Hybrid, err = dist.AndersonDarling(s.Trace.Frames, hybrid)
	if err != nil {
		return nil, err
	}
	gammaFit, err := dist.FitGamma(s.Trace.Frames)
	if err != nil {
		return nil, err
	}
	res.A2Gamma, err = dist.AndersonDarling(s.Trace.Frames, gammaFit)
	if err != nil {
		return nil, err
	}
	return res, nil
}

// Fig7Result is the autocorrelation function with an exponential
// reference fitted to the initial decay, demonstrating that the
// empirical acf leaves any exponential after a few hundred lags.
type Fig7Result struct {
	ACF SeriesResult
	// ExpFit is ρ̂^n with ρ̂ fitted on lags 1..100.
	ExpFit SeriesResult
	// DepartLag is the first lag where the empirical acf exceeds the
	// fitted exponential by 3× — "beyond that r(n) decreases slower than
	// exponentially".
	DepartLag int
}

// Fig7 computes the autocorrelation to lag 10,000 (scaled for shorter
// traces).
func (s *Suite) Fig7() (*Fig7Result, error) {
	return s.Fig7Ctx(context.Background())
}

// Fig7Ctx is Fig7 under a cancellable context.
func (s *Suite) Fig7Ctx(ctx context.Context) (*Fig7Result, error) {
	if ctx.Err() != nil {
		return nil, errs.Cancelled(ctx)
	}
	maxLag := 10000
	if maxLag > len(s.Trace.Frames)/4 {
		maxLag = len(s.Trace.Frames) / 4
	}
	r, err := stats.Autocorrelation(s.Trace.Frames, maxLag)
	if err != nil {
		return nil, err
	}
	res := &Fig7Result{}
	res.ACF.Label = "empirical acf"
	for k := 0; k <= maxLag; k++ {
		res.ACF.X = append(res.ACF.X, float64(k))
		res.ACF.Y = append(res.ACF.Y, r[k])
	}
	// Fit log r(n) = n log ρ over lags 1..100.
	var sx, sy, sxx, sxy float64
	var m int
	for k := 1; k <= 100 && k <= maxLag; k++ {
		if r[k] <= 0 {
			continue
		}
		x, y := float64(k), math.Log(r[k])
		sx += x
		sy += y
		sxx += x * x
		sxy += x * y
		m++
	}
	if m < 10 {
		return nil, fmt.Errorf("experiments: too few positive acf values for exponential fit")
	}
	slope := (float64(m)*sxy - sx*sy) / (float64(m)*sxx - sx*sx)
	intercept := (sy - slope*sx) / float64(m)
	res.ExpFit.Label = fmt.Sprintf("exponential fit ρ^n, ρ=%.4f", math.Exp(slope))
	res.DepartLag = -1
	for k := 0; k <= maxLag; k++ {
		fit := math.Exp(intercept + slope*float64(k))
		res.ExpFit.X = append(res.ExpFit.X, float64(k))
		res.ExpFit.Y = append(res.ExpFit.Y, fit)
		if res.DepartLag < 0 && k > 100 && r[k] > 3*fit && r[k] > 0.02 {
			res.DepartLag = k
		}
	}
	return res, nil
}

// Fig8Result is the periodogram with its fitted low-frequency power law.
type Fig8Result struct {
	Periodogram SeriesResult
	Alpha       float64 // spectrum ~ ω^{-α} near 0
	H           float64
}

// Fig8 computes the periodogram of the frame series (log-binned for
// display) and the low-frequency power-law fit.
func (s *Suite) Fig8() (*Fig8Result, error) {
	return s.Fig8Ctx(context.Background())
}

// Fig8Ctx is Fig8 under a cancellable context.
func (s *Suite) Fig8Ctx(ctx context.Context) (*Fig8Result, error) {
	if ctx.Err() != nil {
		return nil, errs.Cancelled(ctx)
	}
	freqs, ords := stats.Periodogram(s.Trace.Frames)
	if len(freqs) == 0 {
		return nil, fmt.Errorf("experiments: empty periodogram")
	}
	res := &Fig8Result{}
	res.Periodogram.Label = "periodogram"
	// Log-bin to ≤ 400 display points.
	nb := 400
	for b := 0; b < nb; b++ {
		loIdx := int(math.Pow(float64(len(freqs)), float64(b)/float64(nb))) - 1
		hiIdx := int(math.Pow(float64(len(freqs)), float64(b+1)/float64(nb)))
		if loIdx < 0 {
			loIdx = 0
		}
		if hiIdx > len(freqs) {
			hiIdx = len(freqs)
		}
		if hiIdx <= loIdx {
			continue
		}
		var f, p float64
		for i := loIdx; i < hiIdx; i++ {
			f += freqs[i]
			p += ords[i]
		}
		cnt := float64(hiIdx - loIdx)
		res.Periodogram.X = append(res.Periodogram.X, f/cnt)
		res.Periodogram.Y = append(res.Periodogram.Y, p/cnt)
	}
	pg, err := lrd.PeriodogramH(s.Trace.Frames, 0.1)
	if err != nil {
		return nil, err
	}
	res.Alpha = pg.Alpha
	res.H = pg.H
	return res, nil
}

// Fig9Result is the mean-estimate convergence study with i.i.d. and
// LRD-corrected confidence intervals.
type Fig9Result struct {
	Points []stats.MeanCI
	// FinalMean is the mean of the complete trace.
	FinalMean float64
	// IIDMisses counts prefixes whose i.i.d. 95% CI excludes the final
	// mean (the paper: "for most cases the final mean value ... is not
	// even contained in the interval").
	IIDMisses int
	// LRDMisses counts the same for the LRD-corrected CI.
	LRDMisses int
}

// Fig9 computes mean estimates with CIs on geometric prefixes.
func (s *Suite) Fig9() (*Fig9Result, error) {
	return s.Fig9Ctx(context.Background())
}

// Fig9Ctx is Fig9 under a cancellable context.
func (s *Suite) Fig9Ctx(ctx context.Context) (*Fig9Result, error) {
	if ctx.Err() != nil {
		return nil, errs.Cancelled(ctx)
	}
	frames := s.Trace.Frames
	var prefixes []int
	for n := 100; n < len(frames); n *= 2 {
		prefixes = append(prefixes, n)
	}
	prefixes = append(prefixes, len(frames))

	est, err := lrd.VarianceTime(frames, 1, 0, 0)
	if err != nil {
		return nil, err
	}
	h := est.H
	if h <= 0.5 || h >= 1 {
		h = 0.8
	}
	cis, err := stats.MeanConvergence(frames, prefixes, h)
	if err != nil {
		return nil, err
	}
	res := &Fig9Result{Points: cis, FinalMean: stats.Mean(frames)}
	for _, ci := range cis[:len(cis)-1] { // exclude the full-trace point
		if math.Abs(ci.Mean-res.FinalMean) > ci.HalfIID {
			res.IIDMisses++
		}
		if math.Abs(ci.Mean-res.FinalMean) > ci.HalfLRD {
			res.LRDMisses++
		}
	}
	return res, nil
}

// Fig10Result demonstrates self-similarity through aggregation.
type Fig10Result struct {
	Aggregated []SeriesResult // m = 100, 500, 1000
	// CoVs are the coefficients of variation of each aggregated series;
	// for an SRD process they would collapse toward zero much faster
	// than the observed m^{H-1} rate.
	CoVs []float64
}

// Fig10 computes the aggregated processes X^(m) for m = 100, 500, 1000.
func (s *Suite) Fig10() (*Fig10Result, error) {
	return s.Fig10Ctx(context.Background())
}

// Fig10Ctx is Fig10 under a cancellable context, checked per
// aggregation level.
func (s *Suite) Fig10Ctx(ctx context.Context) (*Fig10Result, error) {
	res := &Fig10Result{}
	for _, m := range []int{100, 500, 1000} {
		if ctx.Err() != nil {
			return nil, errs.Cancelled(ctx)
		}
		if len(s.Trace.Frames)/m < 20 {
			continue
		}
		agg, err := stats.Aggregate(s.Trace.Frames, m)
		if err != nil {
			return nil, err
		}
		sr := SeriesResult{Label: fmt.Sprintf("m = %d", m)}
		for i, v := range agg {
			sr.X = append(sr.X, float64(i*m))
			sr.Y = append(sr.Y, v)
		}
		res.Aggregated = append(res.Aggregated, sr)
		sum, err := stats.Summarize(agg)
		if err != nil {
			return nil, err
		}
		res.CoVs = append(res.CoVs, sum.CoV)
	}
	if len(res.Aggregated) == 0 {
		return nil, fmt.Errorf("experiments: trace too short for aggregation figure")
	}
	return res, nil
}

// Fig11Result is the variance-time plot.
type Fig11Result struct {
	Points SeriesResult // (log10 m, log10 normalized variance)
	Beta   float64
	H      float64
}

// Fig11 computes the variance-time plot and its H estimate.
func (s *Suite) Fig11() (*Fig11Result, error) {
	return s.Fig11Ctx(context.Background())
}

// Fig11Ctx is Fig11 under a cancellable context.
func (s *Suite) Fig11Ctx(ctx context.Context) (*Fig11Result, error) {
	if ctx.Err() != nil {
		return nil, errs.Cancelled(ctx)
	}
	vt, err := lrd.VarianceTime(s.Trace.Frames, 1, 0, 0)
	if err != nil {
		return nil, err
	}
	res := &Fig11Result{Beta: vt.Beta, H: vt.H}
	res.Points.Label = "variance-time"
	for _, p := range vt.Points {
		res.Points.X = append(res.Points.X, math.Log10(float64(p.M)))
		res.Points.Y = append(res.Points.Y, math.Log10(p.NormVar))
	}
	return res, nil
}

// Fig12Result is the R/S pox diagram.
type Fig12Result struct {
	Points SeriesResult // (log10 lag, log10 R/S)
	H      float64
}

// Fig12 computes the pox diagram of R/S and its H estimate.
func (s *Suite) Fig12() (*Fig12Result, error) {
	return s.Fig12Ctx(context.Background())
}

// Fig12Ctx is Fig12 under a cancellable context.
func (s *Suite) Fig12Ctx(ctx context.Context) (*Fig12Result, error) {
	if ctx.Err() != nil {
		return nil, errs.Cancelled(ctx)
	}
	rs, err := lrd.RS(s.Trace.Frames, 16, 30, 16, 0, 0)
	if err != nil {
		return nil, err
	}
	res := &Fig12Result{H: rs.H}
	res.Points.Label = "R/S pox"
	for _, p := range rs.Points {
		res.Points.X = append(res.Points.X, math.Log10(float64(p.Lag)))
		res.Points.Y = append(res.Points.Y, math.Log10(p.RS))
	}
	return res, nil
}

// FormatSeries renders a short preview of a data series.
func FormatSeries(sr SeriesResult, maxRows int) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s (%d points)\n", sr.Label, len(sr.X))
	step := len(sr.X) / maxRows
	if step < 1 {
		step = 1
	}
	for i := 0; i < len(sr.X); i += step {
		fmt.Fprintf(&b, "  %14.6g  %14.6g\n", sr.X[i], sr.Y[i])
	}
	return b.String()
}
