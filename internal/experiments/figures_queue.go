package experiments

import (
	"context"
	"fmt"
	"math"
	"math/rand/v2"
	"strings"

	"vbr/internal/core"
	"vbr/internal/queue"
	"vbr/internal/trace"
)

// minLag returns the §5.1 minimum lag (1000 frames), scaled down for
// short test traces so lag placement stays feasible.
func (s *Suite) minLag() int {
	lag := 1000
	if maxFit := len(s.Trace.Frames) / 25; lag > maxFit {
		lag = maxFit
	}
	return lag
}

// qcTargets returns the Fig. 14 loss-rate targets (reduced at quick
// scale, where 3×10⁻⁶ is below one lost frame).
func (s *Suite) qcTargets() []queue.LossTarget {
	if s.Scale == QuickScale {
		return []queue.LossTarget{
			{Pl: 0},
			{Pl: 1e-4},
			{Pl: 1e-3, UseWES: true},
		}
	}
	return []queue.LossTarget{
		{Pl: 0},
		{Pl: 3e-6},
		{Pl: 1e-4},
		{Pl: 1e-3, UseWES: true},
		{Pl: 3e-2, UseWES: true},
	}
}

// tmaxGrid returns the buffer-delay grid of Fig. 14 (seconds).
func (s *Suite) tmaxGrid() []float64 {
	if s.Scale == QuickScale {
		return []float64{0.0005, 0.002, 0.008, 0.032, 0.128}
	}
	return []float64{0.00025, 0.0005, 0.001, 0.002, 0.004, 0.008, 0.016, 0.032, 0.064, 0.128}
}

// qcNs returns Fig. 14's source counts.
func (s *Suite) qcNs() []int { return []int{1, 2, 5, 20} }

// Fig14Curve is one Q–C curve: a source count, a loss target and the
// resulting tradeoff points.
type Fig14Curve struct {
	N      int
	Target queue.LossTarget
	Points []queue.QCPoint
	Knee   queue.QCPoint
}

// Fig14Result reproduces the Q–C tradeoff study.
type Fig14Result struct {
	Curves []Fig14Curve
	// CurveErrors lists (N, target) combinations that failed and were
	// excluded from Curves; nil when every curve succeeded.
	CurveErrors []error
}

// Fig14 sweeps buffer delay against required capacity for every (N,
// target) combination of the paper. The curves run in parallel on a
// panic-safe worker pool; see Fig14Ctx for cancellation and
// checkpoint/resume.
func (s *Suite) Fig14() (*Fig14Result, error) {
	return s.Fig14Ctx(context.Background(), nil)
}

// Format renders all curves as aligned text.
func (r *Fig14Result) Format() string {
	var b strings.Builder
	b.WriteString("Figure 14: Queueing delay vs allocated bandwidth per source\n")
	for _, err := range r.CurveErrors {
		fmt.Fprintf(&b, "  [curve excluded] %v\n", err)
	}
	for _, c := range r.Curves {
		fmt.Fprintf(&b, "\nN=%d, %s (knee at T_max=%.3g ms, C/N=%.3f Mb/s)\n",
			c.N, c.Target, c.Knee.TmaxSec*1000, c.Knee.PerSourceBps/1e6)
		fmt.Fprintf(&b, "  %12s  %14s\n", "T_max (ms)", "C/N (Mb/s)")
		for _, p := range c.Points {
			fmt.Fprintf(&b, "  %12.3f  %14.4f\n", p.TmaxSec*1000, p.PerSourceBps/1e6)
		}
	}
	return b.String()
}

// Fig15Result reproduces the statistical multiplexing gain study.
type Fig15Result struct {
	Targets []queue.LossTarget
	// Curves[i] corresponds to Targets[i].
	Curves [][]queue.SMGPoint
	// GainAtN5 is the realized fraction of the peak-to-mean gain at
	// N = 5, averaged over targets (the paper reports 72%).
	GainAtN5 float64
	PeakBps  float64
	MeanBps  float64
}

// fig15Ns returns Fig. 15's source-count grid.
func (s *Suite) fig15Ns() []int {
	if s.Scale == QuickScale {
		return []int{1, 2, 5, 10, 20}
	}
	return []int{1, 2, 3, 5, 7, 10, 14, 20}
}

// Fig15 computes required capacity per source against N at T_max = 2 ms.
func (s *Suite) Fig15() (*Fig15Result, error) {
	return s.Fig15Ctx(context.Background())
}

// Fig15Ctx is Fig15 with cooperative cancellation.
func (s *Suite) Fig15Ctx(ctx context.Context) (*Fig15Result, error) {
	defer span(ctx, "fig15")()
	targets := []queue.LossTarget{{Pl: 0}, {Pl: 1e-4}, {Pl: 1e-3}}
	res := &Fig15Result{
		Targets: targets,
		PeakBps: s.Trace.PeakRate(),
		MeanBps: s.Trace.MeanRate(),
	}
	var gainSum float64
	var gainCnt int
	for _, target := range targets {
		points, err := queue.SMGCtx(ctx, queue.SMGConfig{
			NewMux: func(n int) (queue.Aggregator, error) {
				return queue.NewMuxFromConfig(queue.MuxConfig{Trace: s.Trace, N: n, MinLagFrames: s.minLag(), Seed: 200 + uint64(n)})
			},
			Ns:        s.fig15Ns(),
			Target:    target,
			TmaxSec:   0.002,
			UseSlices: s.UseSlices,
		})
		if err != nil {
			return nil, fmt.Errorf("experiments: Fig15 %v: %w", target, err)
		}
		res.Curves = append(res.Curves, points)
		for _, p := range points {
			if p.N == 5 {
				g, err := queue.RealizedGain(p.PerSourceBps, res.PeakBps, res.MeanBps)
				if err == nil {
					gainSum += g
					gainCnt++
				}
			}
		}
	}
	if gainCnt > 0 {
		res.GainAtN5 = gainSum / float64(gainCnt)
	}
	return res, nil
}

// Format renders the SMG table.
func (r *Fig15Result) Format() string {
	var b strings.Builder
	b.WriteString("Figure 15: Required capacity per source vs N (T_max = 2 ms)\n")
	fmt.Fprintf(&b, "single-source peak %.3f Mb/s, mean %.3f Mb/s\n", r.PeakBps/1e6, r.MeanBps/1e6)
	for i, target := range r.Targets {
		fmt.Fprintf(&b, "\n%s\n  %4s  %14s  %14s\n", target, "N", "C/N (Mb/s)", "gain realized")
		for _, p := range r.Curves[i] {
			g, _ := queue.RealizedGain(p.PerSourceBps, r.PeakBps, r.MeanBps)
			fmt.Fprintf(&b, "  %4d  %14.4f  %13.0f%%\n", p.N, p.PerSourceBps/1e6, g*100)
		}
	}
	fmt.Fprintf(&b, "\nrealized gain at N=5: %.0f%% (paper: 72%%)\n", r.GainAtN5*100)
	return b.String()
}

// Fig16Source identifies one of the four compared traffic sources.
type Fig16Source string

// The four Fig. 16 sources.
const (
	SourceTrace    Fig16Source = "trace"
	SourceFull     Fig16Source = "farima+gamma/pareto"
	SourceGaussian Fig16Source = "farima gaussian"
	SourceIID      Fig16Source = "iid gamma/pareto"
)

// Fig16Curve is a zero-loss Q–C curve for one (source, N).
type Fig16Curve struct {
	Source Fig16Source
	N      int
	Points []queue.QCPoint
}

// Fig16Result compares the trace against the full model and its two
// ablations through the queue at P_l = 0.
type Fig16Result struct {
	Model  core.Model
	Curves []Fig16Curve
	// MeanAbsLogErr maps source → mean |ln(C_model/C_trace)| across all
	// (N, T_max) points: how close each model's resource demand tracks
	// the trace's. The paper's qualitative finding is
	// full < either ablation.
	MeanAbsLogErr map[Fig16Source]float64
}

// fig16Ns returns the source counts for the model-comparison figure.
func (s *Suite) fig16Ns() []int {
	if s.Scale == QuickScale {
		return []int{1, 5}
	}
	return []int{1, 2, 5, 20}
}

// Fig16 fits the model to the trace, generates equal-length realizations
// of the three model variants, and compares zero-loss Q–C curves.
func (s *Suite) Fig16() (*Fig16Result, error) {
	return s.Fig16Ctx(context.Background())
}

// Fig16Ctx is Fig16 with cooperative cancellation, checked in both the
// model generation stage and every capacity search.
func (s *Suite) Fig16Ctx(ctx context.Context) (*Fig16Result, error) {
	defer span(ctx, "fig16")()
	model, err := s.Model()
	if err != nil {
		return nil, err
	}
	n := len(s.Trace.Frames)
	genOpts := core.DefaultGenOptions()
	genOpts.Seed = 4242
	// Hosking's O(n²) recursion is the paper's algorithm but needs ~10
	// minutes for 171k points even today; the circulant-embedding
	// generator is exact for FGN and used at paper scale. Quick scale
	// exercises the Hosking path.
	if s.Scale == PaperScale {
		genOpts.Generator = core.DaviesHarteFast
	} else {
		genOpts.Generator = core.HoskingExact
		if n > 20000 {
			genOpts.Generator = core.DaviesHarteFast
		}
	}

	full, err := model.GenerateCtx(ctx, n, genOpts)
	if err != nil {
		return nil, err
	}
	gauss, err := model.GenerateGaussianCtx(ctx, n, genOpts)
	if err != nil {
		return nil, err
	}
	iid, err := model.GenerateIIDCtx(ctx, n, genOpts)
	if err != nil {
		return nil, err
	}

	mkTrace := func(frames []float64) (*trace.Trace, error) {
		tr := &trace.Trace{Frames: frames, FrameRate: s.Trace.FrameRate}
		if s.UseSlices {
			rng := rand.New(rand.NewPCG(s.Cfg.Seed, 7))
			if err := tr.SlicesFromFrames(s.Trace.SlicesPerFrame, s.Cfg.SliceJitter, rng.Float64); err != nil {
				return nil, err
			}
		}
		return tr, nil
	}

	sources := []struct {
		name   Fig16Source
		frames []float64
	}{
		{SourceTrace, s.Trace.Frames},
		{SourceFull, full},
		{SourceGaussian, gauss},
		{SourceIID, iid},
	}

	res := &Fig16Result{Model: model, MeanAbsLogErr: map[Fig16Source]float64{}}
	grid := s.tmaxGrid()
	// Trace curves first, indexed for the error metric.
	traceCurve := map[int][]queue.QCPoint{}
	for _, src := range sources {
		tr, err := mkTrace(src.frames)
		if err != nil {
			return nil, err
		}
		for _, nSrc := range s.fig16Ns() {
			mux, err := queue.NewMuxFromConfig(queue.MuxConfig{Trace: tr, N: nSrc, MinLagFrames: s.minLag(), Seed: 300 + uint64(nSrc)})
			if err != nil {
				return nil, err
			}
			points, err := queue.QCCurveCtx(ctx, queue.QCCurveConfig{
				Mux:       mux,
				Target:    queue.LossTarget{Pl: 0},
				TmaxGrid:  grid,
				UseSlices: s.UseSlices,
			})
			if err != nil {
				return nil, fmt.Errorf("experiments: Fig16 %s N=%d: %w", src.name, nSrc, err)
			}
			res.Curves = append(res.Curves, Fig16Curve{Source: src.name, N: nSrc, Points: points})
			if src.name == SourceTrace {
				traceCurve[nSrc] = points
			}
		}
	}
	// Error metric vs the trace.
	for _, c := range res.Curves {
		if c.Source == SourceTrace {
			continue
		}
		ref := traceCurve[c.N]
		var sum float64
		var cnt int
		for i := range c.Points {
			if i < len(ref) && ref[i].PerSourceBps > 0 && c.Points[i].PerSourceBps > 0 {
				d := logAbs(c.Points[i].PerSourceBps / ref[i].PerSourceBps)
				sum += d
				cnt++
			}
		}
		if cnt > 0 {
			res.MeanAbsLogErr[c.Source] += sum / float64(cnt) / float64(len(s.fig16Ns()))
		}
	}
	return res, nil
}

// logAbs returns |ln x|.
func logAbs(x float64) float64 {
	return math.Abs(math.Log(x))
}

// Format renders the comparison.
func (r *Fig16Result) Format() string {
	var b strings.Builder
	b.WriteString("Figure 16: trace vs model variants, zero-loss Q-C curves\n")
	fmt.Fprintf(&b, "fitted model: μ_Γ=%.0f σ_Γ=%.0f m_T=%.2f H=%.3f\n",
		r.Model.MuGamma, r.Model.SigmaGamma, r.Model.TailSlope, r.Model.Hurst)
	for _, c := range r.Curves {
		fmt.Fprintf(&b, "\n%s, N=%d\n  %12s  %14s\n", c.Source, c.N, "T_max (ms)", "C/N (Mb/s)")
		for _, p := range c.Points {
			fmt.Fprintf(&b, "  %12.3f  %14.4f\n", p.TmaxSec*1000, p.PerSourceBps/1e6)
		}
	}
	b.WriteString("\nmean |ln C_model/C_trace| (lower = closer to trace):\n")
	for _, src := range []Fig16Source{SourceFull, SourceGaussian, SourceIID} {
		fmt.Fprintf(&b, "  %-22s %.4f\n", src, r.MeanAbsLogErr[src])
	}
	return b.String()
}

// Fig17Result is the windowed error process for N = 1 and N = 20 at
// matched overall loss.
type Fig17Result struct {
	TargetPl float64
	// Window series (loss rate per 1000-frame window).
	N1, N20 SeriesResult
	// Burstiness of the loss process: fraction of windows carrying 90%
	// of the loss. The paper's point is that N=1 losses are concentrated
	// in a few windows while N=20 losses are spread out.
	N1Conc, N20Conc float64
}

// Fig17 runs both configurations at capacities tuned to the same overall
// loss rate and records the running loss process.
func (s *Suite) Fig17() (*Fig17Result, error) {
	return s.Fig17Ctx(context.Background())
}

// Fig17Ctx is Fig17 with cooperative cancellation.
func (s *Suite) Fig17Ctx(ctx context.Context) (*Fig17Result, error) {
	defer span(ctx, "fig17")()
	const window = 1000 // frames
	res := &Fig17Result{TargetPl: 1e-3}
	for _, n := range []int{1, 20} {
		mux, err := queue.NewMuxFromConfig(queue.MuxConfig{Trace: s.Trace, N: n, MinLagFrames: s.minLag(), Seed: 400 + uint64(n)})
		if err != nil {
			return nil, err
		}
		mean := s.Trace.MeanRate() * float64(n)
		peak := s.Trace.PeakRate() * float64(n) * 1.05
		lossAt := func(c float64) (float64, error) {
			q := 0.002 * c / 8
			r, err := mux.AverageLossCtx(ctx, c, q, s.UseSlices, queue.Options{})
			if err != nil {
				return 0, err
			}
			return r.Pl, nil
		}
		c, err := queue.MinCapacityCtx(ctx, lossAt, mean*0.5, peak, queue.LossTarget{Pl: res.TargetPl})
		if err != nil {
			return nil, fmt.Errorf("experiments: Fig17 N=%d: %w", n, err)
		}
		winIntervals := window
		if s.UseSlices {
			winIntervals = window * s.Trace.SlicesPerFrame
		}
		r, err := mux.AverageLossCtx(ctx, c, 0.002*c/8, s.UseSlices, queue.Options{WindowIntervals: winIntervals})
		if err != nil {
			return nil, err
		}
		sr := SeriesResult{Label: fmt.Sprintf("N=%d, C=%.2f Mb/s", n, c/1e6)}
		for i, v := range r.WindowLoss {
			sr.X = append(sr.X, float64(i*window))
			sr.Y = append(sr.Y, v)
		}
		conc := lossConcentration(r.WindowLoss, 0.9)
		if n == 1 {
			res.N1, res.N1Conc = sr, conc
		} else {
			res.N20, res.N20Conc = sr, conc
		}
	}
	return res, nil
}

// lossConcentration returns the smallest fraction of windows that carry
// the given share of total loss.
func lossConcentration(windows []float64, share float64) float64 {
	if len(windows) == 0 {
		return 0
	}
	sorted := make([]float64, len(windows))
	copy(sorted, windows)
	// Descending sort.
	for i := 1; i < len(sorted); i++ {
		for j := i; j > 0 && sorted[j] > sorted[j-1]; j-- {
			sorted[j], sorted[j-1] = sorted[j-1], sorted[j]
		}
	}
	var total float64
	for _, v := range sorted {
		total += v
	}
	//vbrlint:ignore floateq exact-zero guard before dividing by the byte total
	if total == 0 {
		return 0
	}
	var cum float64
	for i, v := range sorted {
		cum += v
		if cum >= share*total {
			return float64(i+1) / float64(len(sorted))
		}
	}
	return 1
}

// Format renders the error-process comparison.
func (r *Fig17Result) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 17: windowed error process at Pl=%.0e\n", r.TargetPl)
	fmt.Fprintf(&b, "%s: 90%% of loss in %.0f%% of windows\n", r.N1.Label, r.N1Conc*100)
	fmt.Fprintf(&b, "%s: 90%% of loss in %.0f%% of windows\n", r.N20.Label, r.N20Conc*100)
	return b.String()
}
