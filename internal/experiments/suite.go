// Package experiments regenerates every table and figure of the paper's
// evaluation. Each experiment returns a typed result carrying both the
// raw data series (for external plotting) and a formatted text rendering
// in the spirit of the paper's tables. The cmd/vbrexperiments binary and
// the repository's top-level benchmarks drive this package.
package experiments

import (
	"context"
	"fmt"
	"io"
	"strings"

	"vbr/internal/backend"
	"vbr/internal/core"
	"vbr/internal/obs"
	"vbr/internal/synth"
	"vbr/internal/trace"
)

// span opens the per-figure wall-time span "experiments.<name>.seconds"
// on the run's observability scope (a no-op without one):
//
//	defer span(ctx, "fig14")()
func span(ctx context.Context, name string) func() {
	return obs.From(ctx).Span("experiments." + name)
}

// Scale selects the cost of the reproduction run.
type Scale int

const (
	// QuickScale uses a 30,000-frame trace (~21 minutes of video) and
	// reduced parameter grids: every experiment exercises its full code
	// path in seconds. Used by tests and benchmarks.
	QuickScale Scale = iota
	// PaperScale uses the paper's full 171,000-frame, 2-hour trace and
	// grids close to the paper's.
	PaperScale
)

// Suite holds the shared inputs of all experiments: the synthetic
// empirical trace (the Star Wars substitute) and the generation config
// that produced it.
type Suite struct {
	Scale Scale
	Cfg   synth.Config
	Trace *trace.Trace

	// UseSlices switches the queueing simulations to slice granularity
	// (the paper's resolution); frame granularity is ~30× faster with
	// the same curve shapes for buffers above a few slice times.
	UseSlices bool

	fitted *core.Model // lazily fitted model (Fig. 16)
}

// NewSuite generates the empirical-substitute trace at the given scale.
func NewSuite(scale Scale) (*Suite, error) {
	cfg := synth.DefaultConfig()
	if scale == QuickScale {
		cfg.Frames = 30000
		cfg.MeanSceneFrames = 120
	}
	tr, err := synth.Generate(cfg)
	if err != nil {
		return nil, err
	}
	return &Suite{Scale: scale, Cfg: cfg, Trace: tr}, nil
}

// LoadSuite builds a suite around a trace read from the given reader
// (vbrtrace's binary format); the scale is inferred from the trace
// length. Used by the analysis and simulation commands.
func LoadSuite(r io.Reader) (*Suite, error) {
	tr, err := trace.ReadBinary(r)
	if err != nil {
		return nil, err
	}
	scale := PaperScale
	if len(tr.Frames) < 100000 {
		scale = QuickScale
	}
	return &Suite{Scale: scale, Cfg: synth.DefaultConfig(), Trace: tr}, nil
}

// GenerateSuite builds a suite from a freshly generated synthetic trace
// of the given length and seed. Used by the analysis and simulation
// commands when no input file is supplied.
func GenerateSuite(frames int, seed uint64) (*Suite, error) {
	return GenerateSuiteBackend(frames, seed, backend.DaviesHarte)
}

// GenerateSuiteBackend is GenerateSuite with an explicit Gaussian
// backend behind the synthetic movie's activity backbone (the -backend
// flag of the simulation commands).
func GenerateSuiteBackend(frames int, seed uint64, b backend.Backend) (*Suite, error) {
	cfg := synth.DefaultConfig()
	cfg.Frames = frames
	cfg.Seed = seed
	cfg.Backend = b
	scale := PaperScale
	if frames < 100000 {
		scale = QuickScale
		cfg.MeanSceneFrames = 120
	}
	tr, err := synth.Generate(cfg)
	if err != nil {
		return nil, err
	}
	return &Suite{Scale: scale, Cfg: cfg, Trace: tr}, nil
}

// Model fits (once) and returns the paper's four-parameter model for this
// suite's trace.
func (s *Suite) Model() (core.Model, error) {
	if s.fitted != nil {
		return *s.fitted, nil
	}
	m, err := core.Fit(s.Trace.Frames, core.DefaultFitOptions())
	if err != nil {
		return core.Model{}, err
	}
	s.fitted = &m
	return m, nil
}

// table renders rows of label/value pairs with aligned columns.
func table(title string, header []string, rows [][]string) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", title)
	widths := make([]int, len(header))
	for i, h := range header {
		widths[i] = len(h)
	}
	for _, r := range rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	line(header)
	sep := make([]string, len(header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, r := range rows {
		line(r)
	}
	return b.String()
}
