package experiments

import (
	"context"
	"fmt"
	"strings"

	"vbr/internal/arma"
	"vbr/internal/codec"
	"vbr/internal/core"
	"vbr/internal/errs"
	"vbr/internal/lrd"
	"vbr/internal/queue"
	"vbr/internal/scenes"
	"vbr/internal/stats"
	"vbr/internal/synth"
	"vbr/internal/trace"
)

// This file implements the extension experiments: quantitative studies of
// the follow-up ideas the paper states but does not evaluate — the CBR
// vs VBR comparison of §1, the peak-clipping recommendation and
// layered-coding/priority-queueing program of §5.3/conclusions, the
// bufferless use of the §4.2 convolution table, the ARMA/Markov
// short-range augmentations of §4, and the interframe (MPEG-like)
// coding contrast of §2.

// ExtTransportRow is one row of the transport-mode comparison.
type ExtTransportRow struct {
	Scheme   string
	RateBps  float64
	Loss     float64
	DelaySec float64
	Note     string
}

// ExtTransportResult compares CBR, plain VBR, clipped VBR and layered
// VBR on the suite's trace (single source).
type ExtTransportResult struct {
	MeanBps, PeakBps float64
	Rows             []ExtTransportRow
}

// ExtTransport runs the transport-mode comparison.
func (s *Suite) ExtTransport() (*ExtTransportResult, error) {
	w := queue.Workload{Bytes: s.Trace.Frames, Interval: 1 / s.Trace.FrameRate}
	res := &ExtTransportResult{MeanBps: w.MeanRate(), PeakBps: w.PeakRate()}
	const tmax = 0.002

	// CBR with 100 ms smoothing.
	cbr, err := queue.CBRRate(w, 0.1)
	if err != nil {
		return nil, err
	}
	res.Rows = append(res.Rows, ExtTransportRow{
		Scheme: "CBR (100 ms smoothing)", RateBps: cbr, Loss: 0, DelaySec: 0.1,
		Note: "circuit reservation",
	})

	// Plain VBR at Pl ≤ 1e-3, 2 ms buffer.
	lossAt := func(c float64) (float64, error) {
		r, err := queue.Simulate(w, c, tmax*c/8, queue.Options{})
		if err != nil {
			return 0, err
		}
		return r.Pl, nil
	}
	vbrCap, err := queue.MinCapacity(lossAt, w.MeanRate()*0.5, w.PeakRate()*1.05, queue.LossTarget{Pl: 1e-3})
	if err != nil {
		return nil, err
	}
	res.Rows = append(res.Rows, ExtTransportRow{
		Scheme: "VBR (Pl<=1e-3)", RateBps: vbrCap, Loss: 1e-3, DelaySec: tmax,
		Note: "paper's main setting",
	})

	// Zero-loss VBR, exact.
	zl, err := queue.ZeroLossCapacityExact(w, tmax*vbrCap/8)
	if err != nil {
		return nil, err
	}
	res.Rows = append(res.Rows, ExtTransportRow{
		Scheme: "VBR (zero loss)", RateBps: zl, Loss: 0, DelaySec: tmax,
		Note: "exact max-burst dual",
	})

	// Clipped VBR: cap frames at 1.8× mean, then exact zero loss.
	clipped := &trace.Trace{Frames: append([]float64(nil), s.Trace.Frames...), FrameRate: s.Trace.FrameRate}
	fs, err := clipped.FrameStats()
	if err != nil {
		return nil, err
	}
	frac, err := clipped.ClipPeaks(1.8 * fs.Mean)
	if err != nil {
		return nil, err
	}
	cw := queue.Workload{Bytes: clipped.Frames, Interval: w.Interval}
	czl, err := queue.ZeroLossCapacityExact(cw, tmax*vbrCap/8)
	if err != nil {
		return nil, err
	}
	res.Rows = append(res.Rows, ExtTransportRow{
		Scheme: "VBR + clip at 1.8x mean", RateBps: czl, Loss: 0, DelaySec: tmax,
		Note: fmt.Sprintf("%.3f%% of bytes clipped at coder", frac*100),
	})

	// Layered at 1.05× mean: base protected by priority.
	lw, err := queue.SplitLayers(w, 0.75)
	if err != nil {
		return nil, err
	}
	layerCap := w.MeanRate() * 1.05
	buffer := 0.05 * layerCap / 8
	lr, err := queue.SimulatePriority(lw, layerCap, buffer, buffer/2)
	if err != nil {
		return nil, err
	}
	res.Rows = append(res.Rows, ExtTransportRow{
		Scheme: "layered 75% base, priority", RateBps: layerCap, Loss: lr.PlBase, DelaySec: 0.05,
		Note: fmt.Sprintf("enhancement loss %.2f", lr.PlEnhancement),
	})
	return res, nil
}

// Format renders the comparison table.
func (r *ExtTransportResult) Format() string {
	rows := make([][]string, 0, len(r.Rows))
	for _, row := range r.Rows {
		rows = append(rows, []string{
			row.Scheme,
			fmt.Sprintf("%.3f", row.RateBps/1e6),
			fmt.Sprintf("%.1e", row.Loss),
			fmt.Sprintf("%.0f ms", row.DelaySec*1000),
			row.Note,
		})
	}
	return table(
		fmt.Sprintf("Extension: transport modes (mean %.2f, peak %.2f Mb/s)", r.MeanBps/1e6, r.PeakBps/1e6),
		[]string{"scheme", "rate Mb/s", "loss", "delay", "note"}, rows)
}

// ExtAdmissionResult compares the bufferless convolution-table allocation
// with the trace-driven simulation allocation across N.
type ExtAdmissionResult struct {
	Eps     float64
	Ns      []int
	Convo   []float64 // per-source bits/s from the marginal convolution
	Sim     []float64 // per-source bits/s from trace-driven simulation
	MeanBps float64
}

// ExtAdmission runs the comparison at a per-interval overflow/loss budget
// of eps.
func (s *Suite) ExtAdmission() (*ExtAdmissionResult, error) {
	return s.ExtAdmissionCtx(context.Background())
}

// ExtAdmissionCtx is ExtAdmission under a cancellable context, checked
// per multiplexing level and threaded through the capacity search.
func (s *Suite) ExtAdmissionCtx(ctx context.Context) (*ExtAdmissionResult, error) {
	model, err := s.Model()
	if err != nil {
		return nil, err
	}
	gp, err := model.Marginal()
	if err != nil {
		return nil, err
	}
	res := &ExtAdmissionResult{
		Eps:     1e-3,
		Ns:      []int{1, 2, 5, 20},
		MeanBps: s.Trace.MeanRate(),
	}
	interval := 1 / s.Trace.FrameRate
	for _, n := range res.Ns {
		if ctx.Err() != nil {
			return nil, errs.Cancelled(ctx)
		}
		c, err := queue.MarginalAllocation(gp, n, interval, res.Eps, 4000)
		if err != nil {
			return nil, err
		}
		res.Convo = append(res.Convo, c/float64(n))

		mux, err := queue.NewMuxFromConfig(queue.MuxConfig{Trace: s.Trace, N: n, MinLagFrames: s.minLag(), Seed: 500 + uint64(n)})
		if err != nil {
			return nil, err
		}
		mean := s.Trace.MeanRate() * float64(n)
		peak := s.Trace.PeakRate() * float64(n) * 1.05
		lossAt := func(c float64) (float64, error) {
			// Bufferless comparison: a buffer of one frame interval.
			r, err := mux.AverageLossCtx(ctx, c, c/8*interval, false, queue.Options{})
			if err != nil {
				return 0, err
			}
			return r.Pl, nil
		}
		cs, err := queue.MinCapacityCtx(ctx, lossAt, mean*0.5, peak, queue.LossTarget{Pl: res.Eps})
		if err != nil {
			return nil, err
		}
		res.Sim = append(res.Sim, cs/float64(n))
	}
	return res, nil
}

// Format renders the admission comparison.
func (r *ExtAdmissionResult) Format() string {
	rows := make([][]string, 0, len(r.Ns))
	for i, n := range r.Ns {
		rows = append(rows, []string{
			fmt.Sprintf("%d", n),
			fmt.Sprintf("%.3f", r.Convo[i]/1e6),
			fmt.Sprintf("%.3f", r.Sim[i]/1e6),
			fmt.Sprintf("%.2f", r.Convo[i]/r.Sim[i]),
		})
	}
	out := table(
		fmt.Sprintf("Extension: bufferless admission via Γ/P convolution table (eps=%.0e, mean %.3f Mb/s/source)", r.Eps, r.MeanBps/1e6),
		[]string{"N", "convolution C/N (Mb/s)", "simulated C/N (Mb/s)", "ratio"}, rows)
	return out + "(the convolution column prices per-interval overflow PROBABILITY from\n" +
		" the marginal alone — a conservative, correlation-free criterion; the\n" +
		" simulated column measures byte-loss RATE with one frame of buffer,\n" +
		" which credits partial intervals, so it sits slightly lower. H does\n" +
		" not enter the bufferless number at all — the conclusions' point that\n" +
		" LRD is a frequency-domain property, not a marginal one.)\n"
}

// ExtSRDResult reports the effect of the §4 short-range augmentations.
type ExtSRDResult struct {
	LagOnePlain, LagOneARMA, LagOneMarkov float64
	HPlain, HARMA, HMarkov                float64
}

// ExtSRD generates the plain model, the ARMA-augmented model and the
// Markov-modulated model and compares short-lag correlation and H.
func (s *Suite) ExtSRD() (*ExtSRDResult, error) {
	return s.ExtSRDCtx(context.Background())
}

// ExtSRDCtx is ExtSRD under a cancellable context, threaded through the
// three generator runs.
func (s *Suite) ExtSRDCtx(ctx context.Context) (*ExtSRDResult, error) {
	model, err := s.Model()
	if err != nil {
		return nil, err
	}
	n := min(len(s.Trace.Frames), 40000)
	opts := core.DefaultGenOptions()
	opts.Generator = core.DaviesHarteFast
	opts.Seed = 99

	plain, err := model.GenerateCtx(ctx, n, opts)
	if err != nil {
		return nil, err
	}
	if ctx.Err() != nil {
		return nil, errs.Cancelled(ctx)
	}
	armaTraffic, err := model.GenerateWithARMA(n, arma.Model{Phi: []float64{0.85}}, opts)
	if err != nil {
		return nil, err
	}
	chain, err := arma.SceneChain(240, 1)
	if err != nil {
		return nil, err
	}
	markov, err := model.GenerateMarkovModulatedCtx(ctx, n, chain, 0.5, opts)
	if err != nil {
		return nil, err
	}

	res := &ExtSRDResult{}
	for _, x := range []struct {
		frames []float64
		lag1   *float64
		h      *float64
	}{
		{plain, &res.LagOnePlain, &res.HPlain},
		{armaTraffic, &res.LagOneARMA, &res.HARMA},
		{markov, &res.LagOneMarkov, &res.HMarkov},
	} {
		r, err := stats.Autocorrelation(x.frames, 1)
		if err != nil {
			return nil, err
		}
		*x.lag1 = r[1]
		vt, err := lrdVT(x.frames)
		if err != nil {
			return nil, err
		}
		*x.h = vt
	}
	return res, nil
}

// Format renders the SRD augmentation comparison.
func (r *ExtSRDResult) Format() string {
	rows := [][]string{
		{"fARIMA(0,d,0) (plain)", fmt.Sprintf("%.3f", r.LagOnePlain), fmt.Sprintf("%.3f", r.HPlain)},
		{"fARIMA(1,d,0), φ=0.85", fmt.Sprintf("%.3f", r.LagOneARMA), fmt.Sprintf("%.3f", r.HARMA)},
		{"Markov-modulated, w=0.5", fmt.Sprintf("%.3f", r.LagOneMarkov), fmt.Sprintf("%.3f", r.HMarkov)},
	}
	return table("Extension: §4 short-range augmentations (H fitted beyond the SRD scale)",
		[]string{"model", "lag-1 acf", "variance-time H"}, rows)
}

// ExtInterframeResult contrasts intraframe and interframe coding on the
// same synthetic material (reduced resolution for speed).
type ExtInterframeResult struct {
	IntraMean, InterMean         float64
	IntraPeakMean, InterPeakMean float64
	GOPLagACF, OffGOPACF         float64
	GOPSize                      int
}

// ExtInterframe runs both real coders over a short movie.
func (s *Suite) ExtInterframe() (*ExtInterframeResult, error) {
	scfg := synth.DefaultConfig()
	scfg.Frames = 600
	scfg.SlicesPerFrame = 0
	scfg.MeanSceneFrames = 72
	scfg.Seed = s.Cfg.Seed

	ccfg := codec.CoderConfig{Width: 64, Height: 64, SlicesPerFrame: 4, QuantStep: 8}
	intra, err := codec.NewCoder(ccfg)
	if err != nil {
		return nil, err
	}
	intraTr, err := intra.GenerateTrace(scfg, 16)
	if err != nil {
		return nil, err
	}

	icfg := codec.InterCoderConfig{CoderConfig: ccfg, GOPSize: 12, SearchRange: 2}
	inter, err := codec.NewInterCoder(icfg)
	if err != nil {
		return nil, err
	}
	interTr, err := inter.GenerateTrace(scfg, 36)
	if err != nil {
		return nil, err
	}

	si, err := stats.Summarize(intraTr.Frames)
	if err != nil {
		return nil, err
	}
	sp, err := stats.Summarize(interTr.Frames)
	if err != nil {
		return nil, err
	}
	r, err := stats.Autocorrelation(interTr.Frames, icfg.GOPSize+3)
	if err != nil {
		return nil, err
	}
	return &ExtInterframeResult{
		IntraMean: si.Mean, InterMean: sp.Mean,
		IntraPeakMean: si.PeakMean, InterPeakMean: sp.PeakMean,
		GOPLagACF: r[icfg.GOPSize], OffGOPACF: r[icfg.GOPSize-3],
		GOPSize: icfg.GOPSize,
	}, nil
}

// Format renders the coding-mode contrast.
func (r *ExtInterframeResult) Format() string {
	var b strings.Builder
	b.WriteString("Extension: intraframe vs interframe (MPEG-like) coding, 64×64 synthetic movie\n")
	fmt.Fprintf(&b, "  mean bytes/frame: intra %.0f, inter %.0f (%.1f×ratio)\n",
		r.IntraMean, r.InterMean, r.IntraMean/r.InterMean)
	fmt.Fprintf(&b, "  peak/mean:        intra %.2f, inter %.2f (interframe burstier, §2)\n",
		r.IntraPeakMean, r.InterPeakMean)
	fmt.Fprintf(&b, "  GOP signature:    acf(%d) = %.3f vs acf(%d) = %.3f\n",
		r.GOPSize, r.GOPLagACF, r.GOPSize-3, r.OffGOPACF)
	return b.String()
}

// ExtScenesResult reports the scene-detection study (§4.2's open
// question) on a movie with known ground truth.
type ExtScenesResult struct {
	TrueScenes, Detected int
	Precision, Recall    float64
	Model                scenes.LevelModel
}

// ExtScenes runs the detector against the generator's ground truth on a
// dialogue-free synthetic movie.
func (s *Suite) ExtScenes() (*ExtScenesResult, error) {
	return s.ExtScenesCtx(context.Background())
}

// ExtScenesCtx is ExtScenes under a cancellable context, checked
// between the synthesis and detection stages.
func (s *Suite) ExtScenesCtx(ctx context.Context) (*ExtScenesResult, error) {
	if ctx.Err() != nil {
		return nil, errs.Cancelled(ctx)
	}
	cfg := s.Cfg
	cfg.Frames = min(cfg.Frames, 40000)
	cfg.SlicesPerFrame = 0
	cfg.DialogueProb = 0 // shot alternation is not in the ground-truth cut list
	z, truth, err := synth.ActivityProcess(cfg)
	if err != nil {
		return nil, err
	}
	frames, err := synth.MarginalMap(z, cfg)
	if err != nil {
		return nil, err
	}
	if ctx.Err() != nil {
		return nil, errs.Cancelled(ctx)
	}
	var truthCuts []int
	for _, sc := range truth[1:] {
		truthCuts = append(truthCuts, sc.Start)
	}
	dcfg := scenes.DefaultConfig()
	cuts, err := scenes.Cuts(frames, dcfg)
	if err != nil {
		return nil, err
	}
	p, r := scenes.MatchStats(cuts, truthCuts, dcfg.Window)
	detected, err := scenes.Detect(frames, dcfg)
	if err != nil {
		return nil, err
	}
	lm, err := scenes.FitLevelModel(detected)
	if err != nil {
		return nil, err
	}
	return &ExtScenesResult{
		TrueScenes: len(truth),
		Detected:   len(detected),
		Precision:  p,
		Recall:     r,
		Model:      *lm,
	}, nil
}

// Format renders the scene-detection study.
func (r *ExtScenesResult) Format() string {
	var b strings.Builder
	b.WriteString("Extension: scene detection on the bandwidth series (§4.2's open question)\n")
	fmt.Fprintf(&b, "  ground truth %d scenes; detector found %d segments\n", r.TrueScenes, r.Detected)
	fmt.Fprintf(&b, "  cut precision %.2f, recall %.2f (cuts between equal-complexity scenes\n", r.Precision, r.Recall)
	b.WriteString("  produce no level shift and are invisible to any bandwidth-only detector)\n")
	fmt.Fprintf(&b, "  scene-level model: mean duration %.0f frames, level μ %.0f ± %.0f bytes, within-scene σ %.0f\n",
		r.Model.MeanDuration, r.Model.LevelMean, r.Model.LevelStd, r.Model.WithinStdMean)
	return b.String()
}

// lrdVT fits the variance-time H over aggregation levels beyond the
// short-range scale (m ≥ 30), so the augmentations' extra short-lag
// correlation does not leak into the comparison.
func lrdVT(frames []float64) (float64, error) {
	vt, err := lrd.VarianceTime(frames, 30, 30, 0)
	if err != nil {
		return 0, err
	}
	return vt.H, nil
}
