package experiments

import (
	"context"
	"fmt"
	"math"
	"strings"

	"vbr/internal/core"
	"vbr/internal/dist"
	"vbr/internal/errs"
)

// This file reproduces the §5.2 discussion of mapping-table tail
// fidelity: "A comparison of the marginal distribution of the
// realizations show that the model does not hold the Pareto tail, but
// that it decays too rapidly for very high values of frame bandwidth ...
// This illustrates an important open problem for LRD processes."
//
// The experiment generates equal-length realizations through
// Gaussian→Gamma/Pareto mapping tables of increasing resolution (with
// the analytic inverse as the reference) and measures how well each
// holds the configured Pareto tail: the fitted tail slope and the
// realized maximum against the distribution's theoretical n-sample
// expectations.

// TailFidelityRow is one table-resolution measurement.
type TailFidelityRow struct {
	TableSize   int // 0 means the analytic inverse (no table)
	FittedSlope float64
	Max         float64
}

// ExtTailFidelityResult carries the sweep plus references.
type ExtTailFidelityResult struct {
	N           int
	Target      float64 // configured m_T
	ExpectedMax float64 // median of the n-sample maximum under F_{Γ/P}
	Rows        []TailFidelityRow
}

// ExtTailFidelity sweeps the mapping-table resolution.
func (s *Suite) ExtTailFidelity() (*ExtTailFidelityResult, error) {
	return s.ExtTailFidelityCtx(context.Background())
}

// ExtTailFidelityCtx is ExtTailFidelity under a cancellable context,
// checked per table resolution and threaded through each generator run.
func (s *Suite) ExtTailFidelityCtx(ctx context.Context) (*ExtTailFidelityResult, error) {
	model, err := s.Model()
	if err != nil {
		return nil, err
	}
	gp, err := model.Marginal()
	if err != nil {
		return nil, err
	}
	n := min(len(s.Trace.Frames), 60000)
	res := &ExtTailFidelityResult{
		N:      n,
		Target: model.TailSlope,
		// Median of the maximum of n i.i.d. draws: F⁻¹(0.5^{1/n}).
		ExpectedMax: gp.Quantile(math.Pow(0.5, 1/float64(n))),
	}
	for _, size := range []int{100, 1000, 10000, 100000} {
		if ctx.Err() != nil {
			return nil, errs.Cancelled(ctx)
		}
		opts := core.DefaultGenOptions()
		opts.Generator = core.DaviesHarteFast
		opts.Seed = 777
		opts.TableSize = size
		frames, err := model.GenerateCtx(ctx, n, opts)
		if err != nil {
			return nil, err
		}
		row := TailFidelityRow{TableSize: size}
		if a, _, err := dist.FitParetoTail(frames, 0.01); err == nil {
			row.FittedSlope = a
		}
		for _, v := range frames {
			if v > row.Max {
				row.Max = v
			}
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// Format renders the sweep.
func (r *ExtTailFidelityResult) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Extension: §5.2 mapping-table tail fidelity (n=%d, target m_T=%.2f, median n-sample max %.0f)\n",
		r.N, r.Target, r.ExpectedMax)
	fmt.Fprintf(&b, "  %10s  %14s  %14s\n", "table size", "fitted m_T", "realized max")
	for _, row := range r.Rows {
		label := fmt.Sprintf("%d", row.TableSize)
		if row.TableSize == 0 {
			label = "analytic"
		}
		fmt.Fprintf(&b, "  %10s  %14.2f  %14.0f\n", label, row.FittedSlope, row.Max)
	}
	b.WriteString("(the exact-tail fallback beyond the last table node keeps the Pareto\n")
	b.WriteString(" tail at every resolution — the fix §5.2 reaches for by \"perturbing\n")
	b.WriteString(" the parameters of the mapping table\" is built in here)\n")
	return b.String()
}
