package experiments

import (
	"math"
	"strings"
	"sync"
	"testing"

	"vbr/internal/queue"
	"vbr/internal/synth"
)

// sharedSuite builds one QuickScale suite for all tests (trace generation
// and queue workload caching dominate the cost).
var (
	suiteOnce sync.Once
	suiteVal  *Suite
	suiteErr  error
)

func quickSuite(t *testing.T) *Suite {
	t.Helper()
	suiteOnce.Do(func() {
		suiteVal, suiteErr = NewSuite(QuickScale)
	})
	if suiteErr != nil {
		t.Fatal(suiteErr)
	}
	return suiteVal
}

func TestTable1(t *testing.T) {
	s := quickSuite(t)
	r, err := s.Table1()
	if err != nil {
		t.Fatal(err)
	}
	if r.Frames != 30000 || r.FrameRate != 24 || r.SliceRate != 30 {
		t.Errorf("basic parameters wrong: %+v", r)
	}
	// Mean bandwidth near the paper's 5.34 Mb/s.
	if r.AvgBandwidthMbs < 4.5 || r.AvgBandwidthMbs > 6.2 {
		t.Errorf("avg bandwidth %v Mb/s", r.AvgBandwidthMbs)
	}
	// Compression ratio near the paper's 8.70.
	if r.CompressionRatio < 7 || r.CompressionRatio > 10.5 {
		t.Errorf("compression ratio %v", r.CompressionRatio)
	}
	if !strings.Contains(r.Format(), "Table 1") {
		t.Error("format missing title")
	}
}

func TestTable2MatchesPaperShape(t *testing.T) {
	s := quickSuite(t)
	r, err := s.Table2()
	if err != nil {
		t.Fatal(err)
	}
	// Frame column against the paper's values (synthetic calibration).
	if math.Abs(r.Frame.Mean-27791)/27791 > 0.1 {
		t.Errorf("frame mean %v", r.Frame.Mean)
	}
	if math.Abs(r.Frame.CoV-0.23) > 0.08 {
		t.Errorf("frame CoV %v", r.Frame.CoV)
	}
	if r.Frame.PeakMean < 1.8 || r.Frame.PeakMean > 4.5 {
		t.Errorf("frame peak/mean %v", r.Frame.PeakMean)
	}
	// Slice column: CoV must exceed the frame CoV (paper: 0.31 vs 0.23).
	if r.Slice.CoV <= r.Frame.CoV {
		t.Errorf("slice CoV %v not above frame CoV %v", r.Slice.CoV, r.Frame.CoV)
	}
	if math.Abs(r.Slice.Mean-r.Frame.Mean/30) > 0.02*r.Frame.Mean/30 {
		t.Errorf("slice mean %v inconsistent", r.Slice.Mean)
	}
	if !strings.Contains(r.Format(), "27791") {
		t.Error("format missing paper reference values")
	}
}

func TestTable3AllEstimatorsNearTarget(t *testing.T) {
	s := quickSuite(t)
	r, err := s.Table3()
	if err != nil {
		t.Fatal(err)
	}
	e := r.Estimates
	for name, h := range map[string]float64{
		"variance-time": e.VarianceTime,
		"R/S":           e.RS,
		"R/S agg":       e.RSAggregated,
	} {
		if h < 0.6 || h > 1.0 {
			t.Errorf("%s H=%v outside LRD band", name, h)
		}
	}
	if e.Whittle < 0.55 || e.Whittle > 1.0 {
		t.Errorf("Whittle H=%v", e.Whittle)
	}
	if e.WhittleCI95 <= 0 {
		t.Error("Whittle CI missing")
	}
	if !strings.Contains(r.Format(), "0.83") {
		t.Error("format missing paper values")
	}
}

func TestFig1PeaksAndDecimation(t *testing.T) {
	s := quickSuite(t)
	r, err := s.Fig1(1000)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Series.X) < 500 || len(r.Series.X) > 1200 {
		t.Errorf("decimated to %d points", len(r.Series.X))
	}
	if len(r.PeakFrames) != 5 {
		t.Errorf("found %d peaks", len(r.PeakFrames))
	}
	if _, err := s.Fig1(1); err == nil {
		t.Error("maxPoints 1 should fail")
	}
}

func TestFig2LowFrequencyContent(t *testing.T) {
	s := quickSuite(t)
	r, err := s.Fig2()
	if err != nil {
		t.Fatal(err)
	}
	lo, hi := r.Y[0], r.Y[0]
	for _, v := range r.Y {
		lo = math.Min(lo, v)
		hi = math.Max(hi, v)
	}
	if (hi-lo)/27791 < 0.05 {
		t.Errorf("moving average swing %v too small", hi-lo)
	}
}

func TestFig3SegmentsDeviate(t *testing.T) {
	s := quickSuite(t)
	r, err := s.Fig3()
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Segments) != 5 {
		t.Fatalf("segments %d", len(r.Segments))
	}
	// The paper's point: short segments deviate significantly from the
	// long-term marginal.
	if r.MaxKS < 0.1 {
		t.Errorf("max segment KS %v; segments too uniform", r.MaxKS)
	}
}

func TestFig4TailOrdering(t *testing.T) {
	s := quickSuite(t)
	r, err := s.Fig4()
	if err != nil {
		t.Fatal(err)
	}
	// The hybrid must track the empirical tail better (smaller log error)
	// than Normal; Normal must be the worst, as in Fig. 4.
	if r.TailErr["gamma/pareto"] >= r.TailErr["normal"] {
		t.Errorf("hybrid tail error %v not better than normal %v",
			r.TailErr["gamma/pareto"], r.TailErr["normal"])
	}
	if r.TailErr["gamma/pareto"] > 1.0 {
		t.Errorf("hybrid tail error %v too large (an order of magnitude off)", r.TailErr["gamma/pareto"])
	}
	if r.ParetoSlope < 6 || r.ParetoSlope > 20 {
		t.Errorf("fitted Pareto slope %v", r.ParetoSlope)
	}
	if len(r.Models) != 4 {
		t.Errorf("models %d", len(r.Models))
	}
}

func TestFig5LeftTailGammaAdequate(t *testing.T) {
	s := quickSuite(t)
	r, err := s.Fig5()
	if err != nil {
		t.Fatal(err)
	}
	// "The Gamma distribution provides an adequate fit for the lower end":
	// gamma should beat lognormal and normal on the left tail.
	if r.TailErr["gamma"] > r.TailErr["normal"] {
		t.Errorf("gamma left-tail error %v worse than normal %v", r.TailErr["gamma"], r.TailErr["normal"])
	}
	if r.TailErr["gamma"] > 1.5 {
		t.Errorf("gamma left-tail error %v too large", r.TailErr["gamma"])
	}
}

func TestFig6DensityFit(t *testing.T) {
	s := quickSuite(t)
	r, err := s.Fig6()
	if err != nil {
		t.Fatal(err)
	}
	if r.KS > 0.05 {
		t.Errorf("hybrid KS distance %v; Fig. 6 fit should be tight", r.KS)
	}
	if len(r.Empirical.X) != len(r.Model.X) {
		t.Error("density grids differ")
	}
	// The tail-weighted Anderson–Darling statistic must prefer the
	// hybrid over a pure Gamma (whose tail is too light).
	if r.A2Hybrid >= r.A2Gamma {
		t.Errorf("A² hybrid %v not below pure gamma %v", r.A2Hybrid, r.A2Gamma)
	}
}

func TestFig7ACFBeyondExponential(t *testing.T) {
	s := quickSuite(t)
	r, err := s.Fig7()
	if err != nil {
		t.Fatal(err)
	}
	if r.DepartLag < 0 {
		t.Error("empirical acf never departs from the exponential fit; no LRD signature")
	}
	// The acf should still be clearly positive at several hundred lags —
	// an exponential fitted to the initial decay would be ~0 there. (At
	// lags comparable to the trace length the biased estimator of a
	// short arc-dominated trace oscillates negative, as the paper's own
	// Fig. 7 shows "erratic behavior ... on all scales of time".)
	if r.ACF.Y[500] < 0.02 {
		t.Errorf("acf at lag 500 = %v; decays like SRD", r.ACF.Y[500])
	}
}

func TestFig8PowerLawAtLowFrequency(t *testing.T) {
	s := quickSuite(t)
	r, err := s.Fig8()
	if err != nil {
		t.Fatal(err)
	}
	// The defining property is α > 0: the spectrum increases without
	// bound toward ω → 0. For the short quick-scale trace the story-arc
	// cycle steepens the extreme low end (α can exceed 1, the marginally
	// nonstationary regime the paper's §3.2.2 discussion turns on), so
	// only a broad band is asserted here.
	if r.Alpha < 0.2 || r.Alpha > 1.8 {
		t.Errorf("spectral exponent α=%v outside LRD band", r.Alpha)
	}
	if r.H < 0.6 {
		t.Errorf("periodogram H=%v below LRD range", r.H)
	}
	if len(r.Periodogram.X) < 50 {
		t.Errorf("periodogram display points %d", len(r.Periodogram.X))
	}
}

func TestFig9IIDCIsFail(t *testing.T) {
	s := quickSuite(t)
	r, err := s.Fig9()
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Points) < 5 {
		t.Fatalf("points %d", len(r.Points))
	}
	// The paper's finding: most i.i.d. CIs exclude the final mean, and
	// the LRD-corrected CIs do much better.
	if r.IIDMisses <= r.LRDMisses {
		t.Errorf("iid misses %d not worse than LRD misses %d", r.IIDMisses, r.LRDMisses)
	}
	if r.IIDMisses < (len(r.Points)-1)/2 {
		t.Errorf("iid CIs miss only %d of %d prefixes; expected most", r.IIDMisses, len(r.Points)-1)
	}
}

func TestFig10AggregationRetainsStructure(t *testing.T) {
	s := quickSuite(t)
	r, err := s.Fig10()
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Aggregated) < 2 {
		t.Fatalf("aggregation levels %d", len(r.Aggregated))
	}
	// Self-similarity: CoV declines far slower than the i.i.d. 1/√m.
	// Between m=100 and m=500 an i.i.d. process would drop by √5 ≈ 2.24;
	// an H≈0.8 process by 5^0.2 ≈ 1.38.
	ratio := r.CoVs[0] / r.CoVs[1]
	if ratio > 1.9 {
		t.Errorf("CoV ratio m=100/m=500 = %v; behaves like SRD", ratio)
	}
}

func TestFig11VarianceTime(t *testing.T) {
	s := quickSuite(t)
	r, err := s.Fig11()
	if err != nil {
		t.Fatal(err)
	}
	if r.H < 0.65 || r.H > 1.0 {
		t.Errorf("variance-time H=%v (paper: 0.78)", r.H)
	}
	if r.Beta < 0 || r.Beta > 0.7 {
		t.Errorf("β=%v", r.Beta)
	}
	if len(r.Points.X) < 10 {
		t.Errorf("plot points %d", len(r.Points.X))
	}
}

func TestFig12RSPox(t *testing.T) {
	s := quickSuite(t)
	r, err := s.Fig12()
	if err != nil {
		t.Fatal(err)
	}
	if r.H < 0.65 || r.H > 1.05 {
		t.Errorf("R/S H=%v (paper: 0.83)", r.H)
	}
	if len(r.Points.X) < 50 {
		t.Errorf("pox points %d", len(r.Points.X))
	}
}

func TestFig14QCCurves(t *testing.T) {
	s := quickSuite(t)
	r, err := s.Fig14()
	if err != nil {
		t.Fatal(err)
	}
	// 4 N values × 3 quick-scale targets.
	if len(r.Curves) != 12 {
		t.Fatalf("curves %d", len(r.Curves))
	}
	for _, c := range r.Curves {
		// Monotone non-increasing C(T_max).
		for i := 1; i < len(c.Points); i++ {
			if c.Points[i].PerSourceBps > c.Points[i-1].PerSourceBps*1.02 {
				t.Errorf("N=%d %v: curve rises at %v", c.N, c.Target, c.Points[i].TmaxSec)
			}
		}
		// Zero-loss needs at least as much capacity as lossy targets at
		// the same N and T_max.
		if c.Target.Pl == 0 && !c.Target.UseWES {
			for _, c2 := range r.Curves {
				if c2.N == c.N && c2.Target.Pl > 0 && !c2.Target.UseWES {
					for i := range c.Points {
						if c.Points[i].PerSourceBps < c2.Points[i].PerSourceBps-1 {
							t.Errorf("N=%d: zero-loss cheaper than %v at %v",
								c.N, c2.Target, c.Points[i].TmaxSec)
						}
					}
				}
			}
		}
	}
	if !strings.Contains(r.Format(), "Figure 14") {
		t.Error("format missing title")
	}
}

func TestFig14SMGAcrossN(t *testing.T) {
	s := quickSuite(t)
	r, err := s.Fig14()
	if err != nil {
		t.Fatal(err)
	}
	// At the largest buffer, per-source capacity for N=20 must be well
	// below N=1 for the same target (statistical multiplexing gain).
	per := map[int]float64{}
	for _, c := range r.Curves {
		if c.Target.Pl == 1e-4 && !c.Target.UseWES {
			per[c.N] = c.Points[len(c.Points)-1].PerSourceBps
		}
	}
	if per[20] >= per[1] {
		t.Errorf("no SMG: N=1 %v vs N=20 %v", per[1], per[20])
	}
}

func TestFig15Gain(t *testing.T) {
	s := quickSuite(t)
	r, err := s.Fig15()
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Curves) != 3 {
		t.Fatalf("targets %d", len(r.Curves))
	}
	for i, curve := range r.Curves {
		// Monotone non-increasing in N.
		for j := 1; j < len(curve); j++ {
			if curve[j].PerSourceBps > curve[j-1].PerSourceBps*1.03 {
				t.Errorf("target %d: allocation rises from N=%d to N=%d",
					i, curve[j-1].N, curve[j].N)
			}
		}
		// N=1 close to peak; N=20 close to mean (the paper's headline).
		first, last := curve[0], curve[len(curve)-1]
		if first.PerSourceBps < r.MeanBps || first.PerSourceBps > r.PeakBps*1.1 {
			t.Errorf("target %d: N=1 allocation %v outside [mean, peak]", i, first.PerSourceBps)
		}
		if last.PerSourceBps > 0.6*(r.PeakBps+r.MeanBps) {
			t.Errorf("target %d: N=20 allocation %v not near mean", i, last.PerSourceBps)
		}
	}
	// Realized gain at N=5 in the paper's neighbourhood (72%).
	if r.GainAtN5 < 0.4 || r.GainAtN5 > 1.0 {
		t.Errorf("gain at N=5: %v (paper 0.72)", r.GainAtN5)
	}
	if !strings.Contains(r.Format(), "72%") {
		t.Error("format missing paper reference")
	}
}

func TestFig16FullModelTracksTraceBest(t *testing.T) {
	s := quickSuite(t)
	r, err := s.Fig16()
	if err != nil {
		t.Fatal(err)
	}
	full := r.MeanAbsLogErr[SourceFull]
	gauss := r.MeanAbsLogErr[SourceGaussian]
	iid := r.MeanAbsLogErr[SourceIID]
	// The paper's finding: the full model performs consistently better
	// than both single-feature variants.
	if full >= gauss && full >= iid {
		t.Errorf("full model error %v not better than either ablation (gauss %v, iid %v)",
			full, gauss, iid)
	}
	if full > 0.5 {
		t.Errorf("full model mean log error %v; model far from trace", full)
	}
	if !strings.Contains(r.Format(), "farima+gamma/pareto") {
		t.Error("format missing source labels")
	}
}

func TestFig17LossConcentration(t *testing.T) {
	s := quickSuite(t)
	r, err := s.Fig17()
	if err != nil {
		t.Fatal(err)
	}
	if len(r.N1.Y) == 0 || len(r.N20.Y) == 0 {
		t.Fatal("missing window series")
	}
	// N=1 losses are clustered into fewer windows than N=20 losses.
	if r.N1Conc > r.N20Conc {
		t.Errorf("N=1 concentration %v not tighter than N=20 %v", r.N1Conc, r.N20Conc)
	}
	if !strings.Contains(r.Format(), "Figure 17") {
		t.Error("format missing title")
	}
}

func TestSliceGranularityQueueing(t *testing.T) {
	// The -slices path (the paper's simulation resolution) on a small
	// dedicated suite: the Q-C tradeoff must keep its shape, and slice
	// granularity must require at least as much capacity as frame
	// granularity at sub-frame buffer delays (within-frame burstiness is
	// invisible to the frame-granularity fluid model).
	cfg := synth.DefaultConfig()
	cfg.Frames = 4000
	cfg.MeanSceneFrames = 96
	cfg.SlicesPerFrame = 10
	tr, err := synth.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	small := &Suite{Scale: QuickScale, Cfg: cfg, Trace: tr}

	run := func(useSlices bool) []queue.QCPoint {
		t.Helper()
		mux, err := queue.NewMuxFromConfig(queue.MuxConfig{Trace: small.Trace, N: 2, MinLagFrames: small.minLag(), Seed: 42})
		if err != nil {
			t.Fatal(err)
		}
		points, err := queue.QCCurve(queue.QCCurveConfig{
			Mux:       mux,
			Target:    queue.LossTarget{Pl: 1e-3},
			TmaxGrid:  []float64{0.001, 0.008, 0.064},
			UseSlices: useSlices,
		})
		if err != nil {
			t.Fatal(err)
		}
		return points
	}
	frame := run(false)
	slice := run(true)
	for i := range frame {
		if slice[i].PerSourceBps > frame[i].PerSourceBps {
			continue // slice ≥ frame is the expected direction
		}
		// Allow tiny numerical slack in the other direction.
		if frame[i].PerSourceBps-slice[i].PerSourceBps > 0.02*frame[i].PerSourceBps {
			t.Errorf("T_max=%v: slice capacity %v below frame capacity %v",
				frame[i].TmaxSec, slice[i].PerSourceBps, frame[i].PerSourceBps)
		}
	}
	// Both decline with buffer.
	for i := 1; i < len(slice); i++ {
		if slice[i].PerSourceBps > slice[i-1].PerSourceBps*1.02 {
			t.Errorf("slice-granularity curve not decreasing at %v", slice[i].TmaxSec)
		}
	}
}

func TestLossConcentrationHelper(t *testing.T) {
	// All loss in one of four windows → 25%.
	if got := lossConcentration([]float64{0, 1, 0, 0}, 0.9); got != 0.25 {
		t.Errorf("concentration %v", got)
	}
	// Evenly spread.
	if got := lossConcentration([]float64{1, 1, 1, 1}, 1.0); got != 1 {
		t.Errorf("even concentration %v", got)
	}
	if got := lossConcentration(nil, 0.9); got != 0 {
		t.Errorf("empty concentration %v", got)
	}
	if got := lossConcentration([]float64{0, 0}, 0.9); got != 0 {
		t.Errorf("zero-loss concentration %v", got)
	}
}

func TestTopPeaks(t *testing.T) {
	xs := []float64{0, 10, 0, 0, 9, 0, 8, 0, 0, 0}
	peaks := topPeaks(xs, 2, 2)
	if len(peaks) != 2 || peaks[0] != 1 || peaks[1] != 4 {
		t.Errorf("peaks %v", peaks)
	}
	// minSep suppression.
	peaks = topPeaks(xs, 2, 4)
	if len(peaks) != 2 || peaks[0] != 1 || peaks[1] != 6 {
		t.Errorf("separated peaks %v", peaks)
	}
}

func TestFormatSeries(t *testing.T) {
	sr := SeriesResult{Label: "x", X: []float64{1, 2, 3}, Y: []float64{4, 5, 6}}
	out := FormatSeries(sr, 2)
	if !strings.Contains(out, "x (3 points)") {
		t.Errorf("format: %q", out)
	}
}
