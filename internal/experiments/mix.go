package experiments

import (
	"context"
	"fmt"
	"strings"

	"vbr/internal/queue"
	"vbr/internal/source"
)

// ExtMixCurve is one heterogeneous-mix Q–C curve: the population spec,
// its realized aggregate rate envelope and the tradeoff points.
type ExtMixCurve struct {
	Spec    string
	N       int
	MeanBps float64
	PeakBps float64
	Points  []queue.QCPoint
	Knee    queue.QCPoint
}

// ExtMixResult extends the §5.2 Q–C study from N lagged copies of one
// trace to heterogeneous scenario-zoo populations: each curve
// multiplexes a different mix of models through the same capacity
// search, answering the paper's "what if the sources differ?" future
// question with the machinery it already built.
type ExtMixResult struct {
	Target queue.LossTarget
	Frames int
	Curves []ExtMixCurve
}

// extMixSpecs returns the compared populations: the paper's fARIMA
// sources diluted with bursty on/off sources, and with GoP
// frame-structured sources. Every member shares the 24 fps clock.
func (s *Suite) extMixSpecs() []string {
	return []string{
		"farima:n=8192,block=2048*3+onoff:fps=24,rate=2e6,peak=12e6*2",
		"farima:n=8192,block=2048*3+gop*2",
	}
}

// ExtMix runs the heterogeneous-mix Q–C study.
func (s *Suite) ExtMix() (*ExtMixResult, error) {
	return s.ExtMixCtx(context.Background())
}

// ExtMixCtx is ExtMix with cooperative cancellation, threaded through
// every capacity bisection of each curve.
func (s *Suite) ExtMixCtx(ctx context.Context) (*ExtMixResult, error) {
	defer span(ctx, "extmix")()
	const frames = 8192
	res := &ExtMixResult{Target: queue.LossTarget{Pl: 1e-2}, Frames: frames}
	grid := []float64{0.002, 0.008, 0.032, 0.128}
	for i, spec := range s.extMixSpecs() {
		specs, err := source.ParseSpec(spec)
		if err != nil {
			return nil, fmt.Errorf("experiments: ExtMix %q: %w", spec, err)
		}
		srcs, err := source.NewPopulation(specs, 500+uint64(i))
		if err != nil {
			return nil, fmt.Errorf("experiments: ExtMix %q: %w", spec, err)
		}
		mux, err := queue.NewSourceMuxFromConfig(queue.SourceMuxConfig{
			Sources: srcs,
			Frames:  frames,
			Combos:  2,
			Seed:    500 + uint64(i),
		})
		if err != nil {
			return nil, fmt.Errorf("experiments: ExtMix %q: %w", spec, err)
		}
		points, err := queue.QCCurveCtx(ctx, queue.QCCurveConfig{
			Mux:      mux,
			Target:   res.Target,
			TmaxGrid: grid,
		})
		if err != nil {
			return nil, fmt.Errorf("experiments: ExtMix %q: %w", spec, err)
		}
		knee, err := queue.Knee(points)
		if err != nil {
			return nil, fmt.Errorf("experiments: ExtMix %q: %w", spec, err)
		}
		mean, peak, err := mux.RateEnvelope()
		if err != nil {
			return nil, err
		}
		res.Curves = append(res.Curves, ExtMixCurve{
			Spec:    spec,
			N:       mux.NSources(),
			MeanBps: mean,
			PeakBps: peak,
			Points:  points,
			Knee:    knee,
		})
	}
	return res, nil
}

// Format renders the per-mix knee curves.
func (r *ExtMixResult) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Extension: heterogeneous-mix Q-C curves (%s, %d frames)\n", r.Target, r.Frames)
	for _, c := range r.Curves {
		fmt.Fprintf(&b, "\n%s (N=%d, mean %.2f Mb/s, realized peak %.2f Mb/s)\n",
			c.Spec, c.N, c.MeanBps/1e6, c.PeakBps/1e6)
		fmt.Fprintf(&b, "  knee at T_max=%.3g ms, C/N=%.3f Mb/s\n", c.Knee.TmaxSec*1000, c.Knee.PerSourceBps/1e6)
		fmt.Fprintf(&b, "  %12s  %14s\n", "T_max (ms)", "C/N (Mb/s)")
		for _, p := range c.Points {
			fmt.Fprintf(&b, "  %12.3f  %14.4f\n", p.TmaxSec*1000, p.PerSourceBps/1e6)
		}
	}
	return b.String()
}
