package experiments

import (
	"math"
	"strings"
	"testing"
)

// TestExtMix runs the heterogeneous-mix Q-C study end to end: one
// knee curve per mix, each monotone non-increasing in the buffer
// delay and bracketed by the population's realized rate envelope.
func TestExtMix(t *testing.T) {
	s, err := NewSuite(QuickScale)
	if err != nil {
		t.Fatal(err)
	}
	r, err := s.ExtMix()
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Curves) < 2 {
		t.Fatalf("got %d curves, want >= 2", len(r.Curves))
	}
	for _, c := range r.Curves {
		if len(c.Points) < 3 {
			t.Fatalf("%s: %d points, want >= 3", c.Spec, len(c.Points))
		}
		if !(c.PeakBps > c.MeanBps) || !(c.MeanBps > 0) {
			t.Errorf("%s: degenerate envelope mean=%v peak=%v", c.Spec, c.MeanBps, c.PeakBps)
		}
		n := float64(c.N)
		for i, p := range c.Points {
			if math.IsNaN(p.PerSourceBps) || !(p.PerSourceBps > 0) {
				t.Fatalf("%s point %d: bad allocation %v", c.Spec, i, p.PerSourceBps)
			}
			if p.PerSourceBps*n > c.PeakBps*1.05+1 {
				t.Errorf("%s point %d: allocation %v above peak envelope", c.Spec, i, p.PerSourceBps*n)
			}
			if i > 0 && p.PerSourceBps > c.Points[i-1].PerSourceBps*1.0001 {
				t.Errorf("%s: allocation increased with buffer: %v -> %v",
					c.Spec, c.Points[i-1].PerSourceBps, p.PerSourceBps)
			}
		}
		if !(c.Knee.TmaxSec > 0) {
			t.Errorf("%s: no knee located", c.Spec)
		}
	}
	out := r.Format()
	for _, want := range []string{"knee", "T_max (ms)", "C/N (Mb/s)"} {
		if !strings.Contains(out, want) {
			t.Errorf("Format() missing %q:\n%s", want, out)
		}
	}
}
