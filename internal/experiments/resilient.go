package experiments

import (
	"context"
	"errors"
	"fmt"
	"sync"

	"vbr/internal/checkpoint"
	"vbr/internal/errs"
	"vbr/internal/queue"
	"vbr/internal/runner"
)

// This file is the resilient driver for the Fig. 14 study — the most
// expensive computation in the repository (dozens of bisection searches,
// each running six multiplexer simulations per probe). The curves are
// independent, so they run on a panic-safe parallel worker pool; a curve
// that fails is excluded and reported rather than aborting the study;
// and progress is recorded per curve into a checkpoint.SearchState so an
// interrupted run resumes where it stopped instead of re-searching
// completed (N, target) combinations.

// fig14Key names a curve inside a search checkpoint, e.g. "N=5/Pl=1e-04".
func fig14Key(n int, target queue.LossTarget) string {
	return fmt.Sprintf("N=%d/%s", n, target)
}

// Fig14Ctx is Fig14 with cancellation, parallelism and checkpointing.
// progress may be nil (no checkpointing). On cancellation the error
// matches errs.ErrCancelled and progress holds every finished — and
// every partially finished — curve; passing the same state back resumes
// them.
func (s *Suite) Fig14Ctx(ctx context.Context, progress *checkpoint.SearchState) (*Fig14Result, error) {
	defer span(ctx, "fig14")()
	type job struct {
		n      int
		target queue.LossTarget
	}
	var jobs []job
	muxes := map[int]*queue.Mux{}
	for _, n := range s.qcNs() {
		mux, err := queue.NewMuxFromConfig(queue.MuxConfig{Trace: s.Trace, N: n, MinLagFrames: s.minLag(), Seed: 100 + uint64(n)})
		if err != nil {
			return nil, err
		}
		muxes[n] = mux
		for _, target := range s.qcTargets() {
			jobs = append(jobs, job{n: n, target: target})
		}
	}

	var mu sync.Mutex // guards progress across workers
	resumeFor := func(key string) []queue.QCPoint {
		if progress == nil {
			return nil
		}
		mu.Lock()
		defer mu.Unlock()
		c := progress.Find(key)
		if c == nil {
			return nil
		}
		pts := make([]queue.QCPoint, len(c.X))
		for i := range c.X {
			pts[i] = queue.QCPoint{TmaxSec: c.X[i], PerSourceBps: c.Y[i]}
		}
		return pts
	}
	record := func(key string, done bool, pts []queue.QCPoint) {
		if progress == nil {
			return
		}
		xs := make([]float64, len(pts))
		ys := make([]float64, len(pts))
		for i, p := range pts {
			xs[i], ys[i] = p.TmaxSec, p.PerSourceBps
		}
		mu.Lock()
		progress.Set(key, done, xs, ys)
		mu.Unlock()
	}

	results := runner.Run(ctx, len(jobs), runner.Options{
		Label: func(i int) string { return fig14Key(jobs[i].n, jobs[i].target) },
	}, func(ctx context.Context, i int) (Fig14Curve, error) {
		j := jobs[i]
		key := fig14Key(j.n, j.target)
		points, err := queue.QCCurveCtx(ctx, queue.QCCurveConfig{
			Mux:       muxes[j.n],
			Target:    j.target,
			TmaxGrid:  s.tmaxGrid(),
			UseSlices: s.UseSlices,
			Resume:    resumeFor(key),
		})
		record(key, err == nil, points)
		if err != nil {
			return Fig14Curve{}, fmt.Errorf("experiments: Fig14 %s: %w", key, err)
		}
		knee, err := queue.Knee(points)
		if err != nil {
			return Fig14Curve{}, fmt.Errorf("experiments: Fig14 %s: %w", key, err)
		}
		return Fig14Curve{N: j.n, Target: j.target, Points: points, Knee: knee}, nil
	})
	if ctx.Err() != nil {
		return nil, fmt.Errorf("experiments: Fig14 interrupted: %w", errs.Cancelled(ctx))
	}
	ok, _ := runner.Split(results)
	if len(ok) == 0 {
		return nil, fmt.Errorf("experiments: every Fig14 curve failed: %w", errors.Join(runner.Errors(results)...))
	}
	res := &Fig14Result{CurveErrors: runner.Errors(results)}
	for _, r := range results { // index order keeps the paper's curve order
		if r.Err == nil {
			res.Curves = append(res.Curves, r.Value)
		}
	}
	return res, nil
}
