package experiments

import (
	"context"
	"errors"
	"testing"

	"vbr/internal/checkpoint"
	"vbr/internal/errs"
)

func TestFig14CtxMatchesFig14AndCheckpoints(t *testing.T) {
	if testing.Short() {
		t.Skip("capacity searches are slow")
	}
	s := quickSuite(t)
	plain, err := s.Fig14()
	if err != nil {
		t.Fatal(err)
	}
	if len(plain.CurveErrors) != 0 {
		t.Fatalf("healthy run reported curve errors: %v", plain.CurveErrors)
	}

	// A run with a progress state fills one curve entry per (N, target).
	progress := &checkpoint.SearchState{}
	withCkpt, err := s.Fig14Ctx(context.Background(), progress)
	if err != nil {
		t.Fatal(err)
	}
	want := len(s.qcNs()) * len(s.qcTargets())
	if len(progress.Curves) != want {
		t.Fatalf("progress has %d curves, want %d", len(progress.Curves), want)
	}
	for _, c := range progress.Curves {
		if !c.Done || len(c.X) == 0 {
			t.Fatalf("curve %q not completed in progress state: done=%v points=%d", c.Key, c.Done, len(c.X))
		}
	}
	if len(withCkpt.Curves) != len(plain.Curves) {
		t.Fatalf("curve counts differ: %d vs %d", len(withCkpt.Curves), len(plain.Curves))
	}
	// Same deterministic inputs → identical curves, with or without
	// checkpointing.
	for i := range plain.Curves {
		a, b := plain.Curves[i], withCkpt.Curves[i]
		if a.N != b.N || a.Target != b.Target || len(a.Points) != len(b.Points) {
			t.Fatalf("curve %d shape differs", i)
		}
		for j := range a.Points {
			if a.Points[j] != b.Points[j] {
				t.Fatalf("curve %d point %d differs: %+v vs %+v", i, j, a.Points[j], b.Points[j])
			}
		}
	}

	// Resuming from a fully populated state recomputes nothing and still
	// returns the identical result (every point is served from Resume).
	resumed, err := s.Fig14Ctx(context.Background(), progress)
	if err != nil {
		t.Fatal(err)
	}
	for i := range plain.Curves {
		for j := range plain.Curves[i].Points {
			if resumed.Curves[i].Points[j] != plain.Curves[i].Points[j] {
				t.Fatalf("resumed curve %d point %d differs", i, j)
			}
		}
	}
}

func TestFig14CtxCancelled(t *testing.T) {
	s := quickSuite(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := s.Fig14Ctx(ctx, nil)
	if !errors.Is(err, errs.ErrCancelled) {
		t.Fatalf("got %v, want ErrCancelled", err)
	}
}

func TestExtFaultsDeterministicAndMonotone(t *testing.T) {
	if testing.Short() {
		t.Skip("capacity search is slow")
	}
	s := quickSuite(t)
	a, err := s.ExtFaults()
	if err != nil {
		t.Fatal(err)
	}
	b, err := s.ExtFaults()
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Rows) != 4 || len(b.Rows) != 4 {
		t.Fatalf("row counts: %d, %d", len(a.Rows), len(b.Rows))
	}
	for i := range a.Rows {
		if a.Rows[i] != b.Rows[i] {
			t.Fatalf("row %d not reproducible: %+v vs %+v", i, a.Rows[i], b.Rows[i])
		}
	}
	// The healthy baseline meets its target; every fault scenario loses
	// at least as much, and the severest (with outages) loses the most.
	healthy := a.Rows[0]
	if healthy.Pl > 1.5e-3 {
		t.Errorf("healthy baseline Pl %v far above sizing target", healthy.Pl)
	}
	for _, row := range a.Rows[1:] {
		if row.Pl < healthy.Pl {
			t.Errorf("%s: Pl %v below healthy %v", row.Scenario, row.Pl, healthy.Pl)
		}
	}
	worst := a.Rows[3]
	if worst.Pl <= a.Rows[1].Pl {
		t.Errorf("outage scenario Pl %v not above rare-brownout %v", worst.Pl, a.Rows[1].Pl)
	}
	if out := a.Format(); len(out) == 0 {
		t.Error("empty format")
	}
}
