package experiments

import (
	"strings"
	"testing"
)

func TestExtTransport(t *testing.T) {
	s := quickSuite(t)
	r, err := s.ExtTransport()
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 5 {
		t.Fatalf("rows %d", len(r.Rows))
	}
	byScheme := map[string]ExtTransportRow{}
	for _, row := range r.Rows {
		byScheme[row.Scheme] = row
		if row.RateBps <= 0 {
			t.Errorf("%s: nonpositive rate", row.Scheme)
		}
	}
	// Zero-loss VBR must cost at least as much as lossy VBR at equal
	// delay; the clipped variant must undercut unclipped zero-loss; the
	// layered scheme runs closest to the mean.
	if byScheme["VBR (zero loss)"].RateBps < byScheme["VBR (Pl<=1e-3)"].RateBps {
		t.Error("zero-loss cheaper than lossy VBR")
	}
	if byScheme["VBR + clip at 1.8x mean"].RateBps > byScheme["VBR (zero loss)"].RateBps {
		t.Error("clipping did not reduce the zero-loss allocation")
	}
	if byScheme["layered 75% base, priority"].RateBps > byScheme["VBR (Pl<=1e-3)"].RateBps {
		t.Error("layered rate above plain VBR rate")
	}
	if !strings.Contains(r.Format(), "transport modes") {
		t.Error("format missing title")
	}
}

func TestExtAdmission(t *testing.T) {
	s := quickSuite(t)
	r, err := s.ExtAdmission()
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Convo) != len(r.Ns) || len(r.Sim) != len(r.Ns) {
		t.Fatal("shape mismatch")
	}
	for i, n := range r.Ns {
		// Both allocations show multiplexing gain and stay ≥ mean rate.
		if i > 0 && r.Convo[i] > r.Convo[i-1]*1.01 {
			t.Errorf("convolution allocation rose at N=%d", n)
		}
		if r.Convo[i] < r.MeanBps*0.97 {
			t.Errorf("N=%d: convolution allocation below mean", n)
		}
		if r.Sim[i] < r.MeanBps*0.97 {
			t.Errorf("N=%d: simulated allocation below mean", n)
		}
		// The two methods agree within a factor of two: the marginal
		// table cannot see LRD, so it underestimates, but not wildly at
		// this loss target.
		ratio := r.Convo[i] / r.Sim[i]
		if ratio < 0.4 || ratio > 1.5 {
			t.Errorf("N=%d: convolution/simulation ratio %v implausible", n, ratio)
		}
	}
	if !strings.Contains(r.Format(), "convolution") {
		t.Error("format missing title")
	}
}

func TestExtSRD(t *testing.T) {
	s := quickSuite(t)
	r, err := s.ExtSRD()
	if err != nil {
		t.Fatal(err)
	}
	// Both augmentations raise the lag-1 correlation.
	if r.LagOneARMA < r.LagOnePlain+0.05 {
		t.Errorf("ARMA lag-1 %v not above plain %v", r.LagOneARMA, r.LagOnePlain)
	}
	if r.LagOneMarkov < r.LagOnePlain+0.05 {
		t.Errorf("Markov lag-1 %v not above plain %v", r.LagOneMarkov, r.LagOnePlain)
	}
	// H (fitted beyond the SRD scale) stays in a common band.
	for name, h := range map[string]float64{
		"plain": r.HPlain, "arma": r.HARMA, "markov": r.HMarkov,
	} {
		if h < 0.6 || h > 1.0 {
			t.Errorf("%s H = %v outside band", name, h)
		}
	}
	if !strings.Contains(r.Format(), "augmentations") {
		t.Error("format missing title")
	}
}

func TestExtInterframe(t *testing.T) {
	s := quickSuite(t)
	r, err := s.ExtInterframe()
	if err != nil {
		t.Fatal(err)
	}
	if r.InterMean >= r.IntraMean {
		t.Errorf("interframe mean %v not below intraframe %v", r.InterMean, r.IntraMean)
	}
	if r.InterPeakMean <= r.IntraPeakMean {
		t.Errorf("interframe peak/mean %v not above intraframe %v", r.InterPeakMean, r.IntraPeakMean)
	}
	if r.GOPLagACF <= r.OffGOPACF {
		t.Errorf("no GOP periodicity: %v vs %v", r.GOPLagACF, r.OffGOPACF)
	}
	if !strings.Contains(r.Format(), "interframe") {
		t.Error("format missing title")
	}
}

func TestExtScenes(t *testing.T) {
	s := quickSuite(t)
	r, err := s.ExtScenes()
	if err != nil {
		t.Fatal(err)
	}
	if r.Precision < 0.6 {
		t.Errorf("precision %v", r.Precision)
	}
	if r.Recall < 0.1 {
		t.Errorf("recall %v", r.Recall)
	}
	if r.Detected < 2 || r.TrueScenes < 2 {
		t.Errorf("counts: detected %d true %d", r.Detected, r.TrueScenes)
	}
	if r.Model.MeanDuration <= 0 {
		t.Error("level model missing")
	}
	if !strings.Contains(r.Format(), "scene detection") {
		t.Error("format missing title")
	}
}

func TestExtTailFidelity(t *testing.T) {
	s := quickSuite(t)
	r, err := s.ExtTailFidelity()
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 4 {
		t.Fatalf("rows %d", len(r.Rows))
	}
	for _, row := range r.Rows {
		// The analytic-tail fallback keeps the fitted slope near the
		// target at every table size.
		if row.FittedSlope < 0.5*r.Target || row.FittedSlope > 2*r.Target {
			t.Errorf("table %d: fitted slope %v vs target %v", row.TableSize, row.FittedSlope, r.Target)
		}
		// The realized maximum stays within a factor of the theoretical
		// median n-sample maximum (LRD slows convergence; generous band).
		if row.Max < 0.5*r.ExpectedMax || row.Max > 3*r.ExpectedMax {
			t.Errorf("table %d: max %v vs expected %v", row.TableSize, row.Max, r.ExpectedMax)
		}
	}
	if !strings.Contains(r.Format(), "tail fidelity") {
		t.Error("format missing title")
	}
}
