package experiments

import (
	"fmt"
	"math"

	"vbr/internal/lrd"
	"vbr/internal/trace"
)

// Table1Result reproduces Table 1: the parameters of trace generation.
type Table1Result struct {
	Duration        float64 // seconds
	Frames          int
	FrameRate       float64
	SliceRate       int
	AvgBandwidthMbs float64
	// CompressionRatio is filled only when the trace came from the real
	// coder path (cmd/vbrtrace); the activity-driven path reports the
	// implied ratio for the paper's 504×480 8-bit frames.
	CompressionRatio float64
}

// Table1 derives the generation parameters from the suite's trace.
func (s *Suite) Table1() (*Table1Result, error) {
	fs, err := s.Trace.FrameStats()
	if err != nil {
		return nil, err
	}
	r := &Table1Result{
		Duration:        s.Trace.Duration(),
		Frames:          len(s.Trace.Frames),
		FrameRate:       s.Trace.FrameRate,
		SliceRate:       s.Trace.SlicesPerFrame,
		AvgBandwidthMbs: s.Trace.MeanRate() / 1e6,
	}
	r.CompressionRatio = 504 * 480 / fs.Mean
	return r, nil
}

// Format renders the table next to the paper's values.
func (r *Table1Result) Format() string {
	rows := [][]string{
		{"Duration", fmt.Sprintf("%.0f s (%.2f h)", r.Duration, r.Duration/3600), "2 hours"},
		{"Video frames", fmt.Sprintf("%d", r.Frames), "171,000"},
		{"Frame rate", fmt.Sprintf("%.0f / s", r.FrameRate), "24 per second"},
		{"Slice rate", fmt.Sprintf("%d / frame", r.SliceRate), "30 per frame"},
		{"Avg. bandwidth", fmt.Sprintf("%.2f Mb/s", r.AvgBandwidthMbs), "5.34 Mb/s"},
		{"Avg. compression ratio", fmt.Sprintf("%.2f", r.CompressionRatio), "8.70"},
	}
	return table("Table 1: Parameters for generating VBR video trace",
		[]string{"parameter", "reproduced", "paper"}, rows)
}

// Table2Result reproduces Table 2: the trace statistics at frame and
// slice resolution.
type Table2Result struct {
	Frame trace.Stats
	Slice trace.Stats
}

// Table2 computes the statistics.
func (s *Suite) Table2() (*Table2Result, error) {
	fs, err := s.Trace.FrameStats()
	if err != nil {
		return nil, err
	}
	ss, err := s.Trace.SliceStats()
	if err != nil {
		return nil, err
	}
	return &Table2Result{Frame: fs, Slice: ss}, nil
}

// Format renders the table next to the paper's values.
func (r *Table2Result) Format() string {
	rows := [][]string{
		{"Time unit ΔT (ms)", fmt.Sprintf("%.2f", r.Frame.TimeUnitMS), fmt.Sprintf("%.3f", r.Slice.TimeUnitMS), "41.67 / 1.389"},
		{"Mean bandwidth μ (bytes/ΔT)", fmt.Sprintf("%.0f", r.Frame.Mean), fmt.Sprintf("%.1f", r.Slice.Mean), "27791 / 926.4"},
		{"Std deviation σ (bytes/ΔT)", fmt.Sprintf("%.0f", r.Frame.Std), fmt.Sprintf("%.1f", r.Slice.Std), "6254 / 289.5"},
		{"Coef. of variation σ/μ", fmt.Sprintf("%.2f", r.Frame.CoV), fmt.Sprintf("%.2f", r.Slice.CoV), "0.23 / 0.31"},
		{"Maximum (bytes/ΔT)", fmt.Sprintf("%.0f", r.Frame.Max), fmt.Sprintf("%.0f", r.Slice.Max), "78459 / 3668"},
		{"Minimum (bytes/ΔT)", fmt.Sprintf("%.0f", r.Frame.Min), fmt.Sprintf("%.0f", r.Slice.Min), "8622 / 257"},
		{"Peak/mean", fmt.Sprintf("%.2f", r.Frame.PeakMean), fmt.Sprintf("%.2f", r.Slice.PeakMean), "2.82 / 3.96"},
	}
	return table("Table 2: Statistics of VBR video trace",
		[]string{"statistic", "frame", "slice", "paper (frame/slice)"}, rows)
}

// Table3Result reproduces Table 3: H estimates from all methods.
type Table3Result struct {
	Estimates lrd.Estimates
}

// Table3 runs every Hurst estimator with the paper's settings.
func (s *Suite) Table3() (*Table3Result, error) {
	aggM := 700 * len(s.Trace.Frames) / 171000 // scale the paper's m ≈ 700
	if aggM < 10 {
		aggM = 10
	}
	est, err := lrd.EstimateAll(s.Trace.Frames, aggM)
	if err != nil {
		return nil, err
	}
	return &Table3Result{Estimates: *est}, nil
}

// Format renders the table next to the paper's values.
func (r *Table3Result) Format() string {
	e := r.Estimates
	rows := [][]string{
		{"Variance-Time", fmt.Sprintf("%.2f", e.VarianceTime), "0.78"},
		{"R/S Analysis", fmt.Sprintf("%.2f", e.RS), "0.83"},
		{"R/S Aggregated", fmt.Sprintf("%.2f", e.RSAggregated), "0.78"},
		{"R/S with n, M varied", fmt.Sprintf("%.2f-%.2f", e.RSSweepMin, e.RSSweepMax), "0.81-0.83"},
		{"Whittle estimate", fmt.Sprintf("%.2f ± %.3f", e.Whittle, e.WhittleCI95), "0.8 ± 0.088"},
		{"Periodogram (extra)", fmt.Sprintf("%.2f", e.Periodogram), "—"},
		{"MAVAR (extra)", fmt.Sprintf("%.2f", e.MAVAR), "—"},
	}
	// Post-paper addendum: the calibrated error bars. Each primary
	// estimator's Ĥ is bias-corrected against the committed battery
	// table and reported with its ±1.96σ half-width, so disagreement
	// between methods can be judged statistically.
	for _, bar := range e.Bars {
		val := fmt.Sprintf("%.3f", bar.H)
		if !math.IsNaN(bar.CI95) {
			val = fmt.Sprintf("%.3f ± %.3f", bar.H, bar.CI95)
		} else if math.IsNaN(bar.H) {
			val = "n/a"
		}
		rows = append(rows, []string{"calibrated " + bar.Estimator, val, "—"})
	}
	return table("Table 3: Estimates of H from all methods",
		[]string{"method", "reproduced", "paper"}, rows)
}
