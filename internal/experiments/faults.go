package experiments

import (
	"context"
	"fmt"

	"vbr/internal/queue"
)

// This file measures the §5 loss metrics under deterministic server
// faults: the channel capacity is sized for P_l ≤ 10⁻³ on a healthy
// server, then the same workload is replayed against escalating
// schedules of capacity-degradation and outage episodes. Because the
// schedules are pure data derived from a seed, every row is exactly
// reproducible — the scenario doubles as an end-to-end test of the
// fault-injection machinery.

// ExtFaultsRow is one fault scenario and its measured loss.
type ExtFaultsRow struct {
	Scenario  string
	Degraded  float64 // fraction of intervals inside an episode
	Outages   int     // number of full-outage episodes
	Pl, PlWES float64
}

// ExtFaultsResult compares loss metrics across fault severities at a
// fixed, healthy-server capacity allocation.
type ExtFaultsResult struct {
	CapacityBps float64
	TmaxSec     float64
	Rows        []ExtFaultsRow
}

// extFaultScenario pairs a label with a generation config; a nil config
// is the healthy-server baseline.
type extFaultScenario struct {
	name string
	seed uint64
	cfg  *queue.FaultConfig
}

// extFaultScenarios returns the escalating severity ladder.
func extFaultScenarios() []extFaultScenario {
	return []extFaultScenario{
		{name: "healthy"},
		{name: "rare brownouts", seed: 1,
			cfg: &queue.FaultConfig{MeanGap: 4000, MeanLength: 40, OutageProb: 0, MinFactor: 0.5}},
		{name: "frequent brownouts", seed: 2,
			cfg: &queue.FaultConfig{MeanGap: 800, MeanLength: 40, OutageProb: 0, MinFactor: 0.5}},
		{name: "brownouts + outages", seed: 3,
			cfg: &queue.FaultConfig{MeanGap: 800, MeanLength: 40, OutageProb: 0.3, MinFactor: 0.5}},
	}
}

// ExtFaults runs the fault-severity ladder on the suite's trace (single
// source, frame granularity).
func (s *Suite) ExtFaults() (*ExtFaultsResult, error) {
	return s.ExtFaultsCtx(context.Background())
}

// ExtFaultsCtx is ExtFaults with cooperative cancellation.
func (s *Suite) ExtFaultsCtx(ctx context.Context) (*ExtFaultsResult, error) {
	w := queue.Workload{Bytes: s.Trace.Frames, Interval: 1 / s.Trace.FrameRate}
	const tmax = 0.002
	lossAt := func(c float64) (float64, error) {
		r, err := queue.Simulate(w, c, tmax*c/8, queue.Options{})
		if err != nil {
			return 0, err
		}
		return r.Pl, nil
	}
	capBps, err := queue.MinCapacityCtx(ctx, lossAt, w.MeanRate()*0.5, w.PeakRate()*1.05, queue.LossTarget{Pl: 1e-3})
	if err != nil {
		return nil, fmt.Errorf("experiments: ExtFaults capacity sizing: %w", err)
	}
	res := &ExtFaultsResult{CapacityBps: capBps, TmaxSec: tmax}
	for _, sc := range extFaultScenarios() {
		var faults *queue.FaultSchedule
		if sc.cfg != nil {
			faults, err = queue.GenerateFaults(sc.seed, len(w.Bytes), *sc.cfg)
			if err != nil {
				return nil, fmt.Errorf("experiments: ExtFaults %s: %w", sc.name, err)
			}
		}
		r, err := queue.Simulate(w, capBps, tmax*capBps/8, queue.Options{Faults: faults})
		if err != nil {
			return nil, fmt.Errorf("experiments: ExtFaults %s: %w", sc.name, err)
		}
		row := ExtFaultsRow{Scenario: sc.name, Pl: r.Pl, PlWES: r.PlWES}
		if faults != nil {
			row.Degraded = float64(faults.DegradedIntervals(len(w.Bytes))) / float64(len(w.Bytes))
			for _, e := range faults.Episodes {
				//vbrlint:ignore floateq Factor 0 is the exact outage sentinel assigned from config literals, never computed
				if e.Factor == 0 {
					row.Outages++
				}
			}
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// Format renders the fault ladder.
func (r *ExtFaultsResult) Format() string {
	rows := make([][]string, 0, len(r.Rows))
	for _, row := range r.Rows {
		rows = append(rows, []string{
			row.Scenario,
			fmt.Sprintf("%.2f%%", row.Degraded*100),
			fmt.Sprintf("%d", row.Outages),
			fmt.Sprintf("%.2e", row.Pl),
			fmt.Sprintf("%.2e", row.PlWES),
		})
	}
	return table(
		fmt.Sprintf("Extension: loss under server faults (C=%.3f Mb/s, T_max=%.0f ms)",
			r.CapacityBps/1e6, r.TmaxSec*1000),
		[]string{"scenario", "degraded", "outages", "Pl", "Pl-WES"}, rows)
}
