// Package runner executes independent work items across a bounded pool
// of worker goroutines with panic isolation and graceful degradation.
//
// The §5 experiments are embarrassingly parallel at two levels — the six
// lag combinations of a multiplexer average and the (N, target, T_max)
// grid points of the Fig. 14 study — but a single panicking or failing
// item must not kill the whole run: the paper's methodology averages
// over lag combinations, so a run that loses one combination can still
// report a valid average over the survivors. Run therefore recovers
// panics into typed *PanicError values, attaches per-item errors, and
// always returns a result for every item.
package runner

import (
	"context"
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"

	"vbr/internal/errs"
	"vbr/internal/obs"
)

// Result is the outcome of one work item. Exactly one of Value or Err is
// meaningful: Err == nil means Value is the item's result.
type Result[T any] struct {
	Index int    // position in the submitted item order
	Label string // optional caller-assigned label
	Value T
	Err   error
}

// PanicError wraps a recovered panic from a work item.
type PanicError struct {
	Value any    // the value passed to panic()
	Stack []byte // stack trace captured at recovery
}

// Error implements the error interface.
func (e *PanicError) Error() string {
	return fmt.Sprintf("worker panicked: %v", e.Value)
}

// Options tunes a Run.
type Options struct {
	// Workers bounds concurrent goroutines. Zero or negative selects
	// min(items, GOMAXPROCS).
	Workers int
	// Label names item i for error reports; nil leaves labels empty.
	Label func(i int) string
}

// Run executes fn for items 0..n-1 across worker goroutines and returns
// one Result per item, in item order. Panics inside fn are recovered
// into *PanicError. After ctx is cancelled, unstarted items are not run
// and report a cancellation error; items already in flight run to
// completion (fn receives ctx and may cut itself short).
func Run[T any](ctx context.Context, n int, opts Options, fn func(ctx context.Context, i int) (T, error)) []Result[T] {
	results := make([]Result[T], n)
	for i := range results {
		results[i].Index = i
		if opts.Label != nil {
			results[i].Label = opts.Label(i)
		}
	}
	if n == 0 {
		return results
	}
	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}

	scope := obs.From(ctx)
	next := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				scope.Count("runner.tasks.started", 1)
				results[i].Value, results[i].Err = runOne(ctx, i, fn)
				switch results[i].Err.(type) {
				case nil:
					scope.Count("runner.tasks.done", 1)
				case *PanicError:
					scope.Count("runner.tasks.panics", 1)
				default:
					scope.Count("runner.tasks.failed", 1)
				}
			}
		}()
	}
feed:
	for i := 0; i < n; i++ {
		if ctx.Err() != nil {
			// Mark everything not yet handed out as cancelled.
			for j := i; j < n; j++ {
				results[j].Err = errs.Cancelled(ctx)
			}
			break feed
		}
		select {
		case next <- i:
		case <-ctx.Done():
			for j := i; j < n; j++ {
				results[j].Err = errs.Cancelled(ctx)
			}
			break feed
		}
	}
	close(next)
	wg.Wait()
	return results
}

// runOne executes one item under panic recovery.
func runOne[T any](ctx context.Context, i int, fn func(ctx context.Context, i int) (T, error)) (v T, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = &PanicError{Value: r, Stack: debug.Stack()}
		}
	}()
	return fn(ctx, i)
}

// Split partitions results into survivors and failures, preserving item
// order within each partition.
func Split[T any](rs []Result[T]) (ok, failed []Result[T]) {
	for _, r := range rs {
		if r.Err == nil {
			ok = append(ok, r)
		} else {
			failed = append(failed, r)
		}
	}
	return ok, failed
}

// Errors returns one descriptive error per failed item, in item order.
func Errors[T any](rs []Result[T]) []error {
	var out []error
	for _, r := range rs {
		if r.Err == nil {
			continue
		}
		if r.Label != "" {
			out = append(out, fmt.Errorf("%s: %w", r.Label, r.Err))
		} else {
			out = append(out, fmt.Errorf("item %d: %w", r.Index, r.Err))
		}
	}
	return out
}
