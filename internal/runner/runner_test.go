package runner

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"vbr/internal/errs"
)

func TestRunAllSucceed(t *testing.T) {
	rs := Run(context.Background(), 8, Options{Workers: 3}, func(_ context.Context, i int) (int, error) {
		return i * i, nil
	})
	if len(rs) != 8 {
		t.Fatalf("got %d results, want 8", len(rs))
	}
	for i, r := range rs {
		if r.Err != nil {
			t.Errorf("item %d: unexpected error %v", i, r.Err)
		}
		if r.Index != i || r.Value != i*i {
			t.Errorf("item %d: got (idx=%d, val=%d)", i, r.Index, r.Value)
		}
	}
}

// TestRunPanicAndErrorSurvivors is the failure-injection test: one
// worker panics, one returns an error, and the surviving items must
// still produce an averaged result while both failures are reported.
func TestRunPanicAndErrorSurvivors(t *testing.T) {
	boom := errors.New("deliberate failure")
	rs := Run(context.Background(), 6, Options{
		Workers: 4,
		Label:   func(i int) string { return fmt.Sprintf("combo-%d", i) },
	}, func(_ context.Context, i int) (float64, error) {
		switch i {
		case 2:
			panic("injected panic in combo 2")
		case 4:
			return 0, boom
		}
		return float64(10 * (i + 1)), nil
	})

	ok, failed := Split(rs)
	if len(ok) != 4 || len(failed) != 2 {
		t.Fatalf("got %d survivors, %d failures; want 4 and 2", len(ok), len(failed))
	}

	// Average over the survivors, the Mux.AverageLoss degradation mode.
	var sum float64
	for _, r := range ok {
		sum += r.Value
	}
	avg := sum / float64(len(ok))
	want := (10.0 + 20 + 40 + 60) / 4
	if avg != want {
		t.Errorf("survivor average = %v, want %v", avg, want)
	}

	var pe *PanicError
	if !errors.As(failed[0].Err, &pe) {
		t.Fatalf("combo 2 failure is %T, want *PanicError", failed[0].Err)
	}
	if !strings.Contains(pe.Error(), "injected panic") {
		t.Errorf("panic error missing message: %v", pe)
	}
	if len(pe.Stack) == 0 {
		t.Error("panic error carries no stack trace")
	}
	if !errors.Is(failed[1].Err, boom) {
		t.Errorf("combo 4 failure = %v, want wrapped deliberate failure", failed[1].Err)
	}

	msgs := Errors(rs)
	if len(msgs) != 2 {
		t.Fatalf("Errors() returned %d entries, want 2", len(msgs))
	}
	if !strings.Contains(msgs[0].Error(), "combo-2") {
		t.Errorf("failure report missing label: %v", msgs[0])
	}
}

func TestRunCancellationSkipsUnstartedItems(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var started atomic.Int32
	release := make(chan struct{})
	rs := make(chan []Result[int], 1)
	go func() {
		rs <- Run(ctx, 100, Options{Workers: 2}, func(ctx context.Context, i int) (int, error) {
			started.Add(1)
			<-release
			return i, nil
		})
	}()
	// Let the two workers pick up items, then cancel.
	for started.Load() < 2 {
		time.Sleep(time.Millisecond)
	}
	cancel()
	close(release)
	results := <-rs

	var cancelled, done int
	for _, r := range results {
		switch {
		case r.Err == nil:
			done++
		case errors.Is(r.Err, errs.ErrCancelled):
			cancelled++
		default:
			t.Errorf("item %d: unexpected error %v", r.Index, r.Err)
		}
	}
	if done == 0 || done > 4 {
		t.Errorf("completed items = %d, want the few in flight at cancellation", done)
	}
	if cancelled != len(results)-done {
		t.Errorf("cancelled items = %d, want %d", cancelled, len(results)-done)
	}
}

func TestRunZeroItems(t *testing.T) {
	rs := Run(context.Background(), 0, Options{}, func(_ context.Context, i int) (int, error) {
		t.Fatal("fn called with no items")
		return 0, nil
	})
	if len(rs) != 0 {
		t.Fatalf("got %d results for zero items", len(rs))
	}
}

func TestRunDefaultWorkerCount(t *testing.T) {
	var peak, cur atomic.Int32
	Run(context.Background(), 32, Options{}, func(_ context.Context, i int) (int, error) {
		c := cur.Add(1)
		for {
			p := peak.Load()
			if c <= p || peak.CompareAndSwap(p, c) {
				break
			}
		}
		time.Sleep(time.Millisecond)
		cur.Add(-1)
		return 0, nil
	})
	if peak.Load() < 1 {
		t.Error("no concurrency observed")
	}
}
