// Package genpool is the cross-request generation cache: a
// concurrency-safe, byte-bounded pool for the three parameter-keyed
// precomputations of the §4 generator, shared across requests, streams
// and batch workers.
//
//   - Hosking coefficient schedules (fgn.HoskingCoeffs), keyed by H
//     alone with prefix reuse: the Levinson–Durbin recursion at step k
//     depends only on ρ_0..ρ_k, so one cached 171k-point schedule
//     serves every shorter request with the same H, and longer
//     requests extend the cached schedule incrementally instead of
//     recomputing it.
//   - Davies–Harte circulant eigenvalue vectors, keyed by (H, n).
//   - Eq. 13 Gaussian→Gamma/Pareto quantile tables, keyed by
//     (μ_Γ, σ_Γ, m_T, size).
//
// All three are seed-independent, so serving them from cache cannot
// change generated output: the warm paths in internal/fgn and
// internal/dist are bitwise-identical to their cold counterparts, an
// invariant pinned by this package's tests (DESIGN §10).
//
// The pool is stdlib-only. Misses are de-duplicated singleflight-style
// (concurrent requests for one key share a single computation), and
// total resident bytes are bounded by LRU eviction; an item larger
// than the whole budget is computed but not retained. Cache traffic
// reports through the obs scope on the caller's context: counters
// genpool.hit / genpool.miss / genpool.eviction and gauges
// genpool.bytes / genpool.entries.
package genpool

import (
	"container/list"
	"context"
	"fmt"
	"math"
	"sync"

	"vbr/internal/dist"
	"vbr/internal/errs"
	"vbr/internal/fgn"
	"vbr/internal/obs"
)

// DefaultMaxBytes is the default resident-byte budget (256 MiB):
// roomy enough for dozens of paper-scale Hosking schedules (~5.5 MiB
// each at 171,000 points) next to the small eigenvalue vectors and
// marginal tables.
const DefaultMaxBytes = 256 << 20

// kind discriminates the three cacheable precomputation families.
type kind uint8

const (
	kindHosking kind = iota + 1
	kindDHEigen
	kindTable
	kindPaxsonSpec
)

// key identifies one cached item. Float parameters are stored as
// math.Float64bits so exact parameter identity — the only identity
// under which reuse is bitwise-safe — is also map identity.
type key struct {
	kind       kind
	p0, p1, p2 uint64 // parameter bits (H, or μ_Γ/σ_Γ/m_T)
	n          int    // length/size; 0 for Hosking (prefix-reused)
}

// entry is one cache slot. ready is closed once val/err are final;
// waiters blocked on a concurrent miss select on it. For Hosking
// entries, mu serializes schedule extension so concurrent longer
// requests don't duplicate the O(n²) work.
type entry struct {
	key      key
	elem     *list.Element
	ready    chan struct{}
	val      any
	err      error
	bytes    int64
	resident bool // still accounted in the pool (not evicted)
	mu       sync.Mutex
}

// Pool is the cache. The zero value is not usable; construct with New.
// A nil *Pool is a valid "no caching" pool: every lookup computes cold,
// which is what the per-call private pools of GenOptions default to
// being replaced with.
type Pool struct {
	maxBytes int64

	mu      sync.Mutex
	items   map[key]*entry
	lru     *list.List // front = most recently used
	bytes   int64
	hits    int64
	misses  int64
	evicted int64
}

// New builds a pool bounded to maxBytes of resident precomputation
// (DefaultMaxBytes when maxBytes ≤ 0).
func New(maxBytes int64) *Pool {
	if maxBytes <= 0 {
		maxBytes = DefaultMaxBytes
	}
	return &Pool{
		maxBytes: maxBytes,
		items:    make(map[key]*entry),
		lru:      list.New(),
	}
}

// Stats is a point-in-time view of cache traffic and residency.
type Stats struct {
	Hits, Misses, Evictions int64
	Bytes                   int64
	Entries                 int
	MaxBytes                int64
}

// Stats reads the counters; safe for concurrent use.
func (p *Pool) Stats() Stats {
	if p == nil {
		return Stats{}
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	return Stats{
		Hits: p.hits, Misses: p.misses, Evictions: p.evicted,
		Bytes: p.bytes, Entries: len(p.items), MaxBytes: p.maxBytes,
	}
}

// acquire returns the entry for k, creating it when absent. The second
// result reports whether the caller is the filler: a filler must call
// finish exactly once; a non-filler receives the entry only after
// ready is closed (or its context fires).
func (p *Pool) acquire(ctx context.Context, k key) (*entry, bool, error) {
	p.mu.Lock()
	if e, ok := p.items[k]; ok {
		p.lru.MoveToFront(e.elem)
		p.mu.Unlock()
		select {
		case <-e.ready:
		case <-ctx.Done():
			return nil, false, fmt.Errorf("genpool: waiting for in-flight computation: %w", errs.Cancelled(ctx))
		}
		if e.err != nil {
			return nil, false, e.err
		}
		return e, false, nil
	}
	e := &entry{key: k, ready: make(chan struct{})}
	e.elem = p.lru.PushFront(e)
	e.resident = true
	p.items[k] = e
	p.mu.Unlock()
	return e, true, nil
}

// finish publishes a filler's result. Errors are not cached: the entry
// is dropped so a later call retries, while current waiters see the
// error. Successful values are accounted and may trigger eviction; a
// value larger than the whole budget is returned to callers but not
// retained.
func (p *Pool) finish(scope *obs.Scope, e *entry, val any, bytes int64, err error) {
	p.mu.Lock()
	e.val, e.err, e.bytes = val, err, bytes
	switch {
	case !e.resident:
		// Evicted while the fill was in flight: the entry is already out
		// of the map and LRU and its bytes were never added, so publish
		// the result to waiters but skip the accounting — adding bytes
		// here would leak budget permanently.
	case err != nil || bytes > p.maxBytes:
		p.drop(e)
	default:
		p.bytes += bytes
		p.evictOverBudget(scope, e)
	}
	p.publishGauges(scope)
	p.mu.Unlock()
	close(e.ready)
}

// drop removes e from the map and LRU without byte accounting (used
// for errored or oversized fills; e's bytes were never added).
// Callers hold p.mu.
func (p *Pool) drop(e *entry) {
	if !e.resident {
		return
	}
	e.resident = false
	p.lru.Remove(e.elem)
	delete(p.items, e.key)
}

// evictOverBudget removes least-recently-used entries until resident
// bytes fit the budget, never evicting keep. Pending entries (fill
// still in flight, bytes not yet accounted) are skipped: evicting one
// frees nothing and would strand its eventual bytes outside the
// budget. Callers hold p.mu.
func (p *Pool) evictOverBudget(scope *obs.Scope, keep *entry) {
	elem := p.lru.Back()
	for p.bytes > p.maxBytes && elem != nil {
		victim := elem.Value.(*entry)
		elem = elem.Prev()
		if victim == keep || victim.bytes == 0 {
			continue
		}
		victim.resident = false
		p.lru.Remove(victim.elem)
		delete(p.items, victim.key)
		p.bytes -= victim.bytes
		p.evicted++
		scope.Count("genpool.eviction", 1)
	}
}

// publishGauges pushes residency gauges to the caller's scope. Callers
// hold p.mu.
func (p *Pool) publishGauges(scope *obs.Scope) {
	scope.SetGauge("genpool.bytes", float64(p.bytes))
	scope.SetGauge("genpool.entries", float64(len(p.items)))
}

// countHit / countMiss update both the pool counters and the caller's
// obs scope.
func (p *Pool) countHit(scope *obs.Scope) {
	p.mu.Lock()
	p.hits++
	p.mu.Unlock()
	scope.Count("genpool.hit", 1)
}

func (p *Pool) countMiss(scope *obs.Scope) {
	p.mu.Lock()
	p.misses++
	p.mu.Unlock()
	scope.Count("genpool.miss", 1)
}

// HoskingCoeffs returns a coefficient schedule for Hurst parameter h
// covering at least n points, extending a cached schedule when one
// exists (a request longer than the cached horizon is a miss that
// reuses the prefix; a shorter one is a pure hit). The returned
// schedule is shared and must be treated as read-only; fgn's warm
// generators only ever read published prefixes.
func (p *Pool) HoskingCoeffs(ctx context.Context, h float64, n int) (*fgn.HoskingCoeffs, error) {
	if p == nil {
		c, err := fgn.NewHoskingCoeffs(h)
		if err != nil {
			return nil, err
		}
		if err := c.EnsureCtx(ctx, n); err != nil {
			return nil, err
		}
		return c, nil
	}
	scope := obs.From(ctx)
	k := key{kind: kindHosking, p0: math.Float64bits(h)}
	e, fill, err := p.acquire(ctx, k)
	if err != nil {
		return nil, err
	}
	if fill {
		c, err := fgn.NewHoskingCoeffs(h)
		if err != nil {
			p.finish(scope, e, nil, 0, err)
			return nil, err
		}
		p.finish(scope, e, c, c.Bytes(), nil)
	}
	c := e.val.(*fgn.HoskingCoeffs)

	// Extension is serialized per entry: concurrent requests for longer
	// horizons queue here and find the work already done — the
	// singleflight property, but for prefix growth.
	e.mu.Lock()
	covered := c.Len() >= n
	ensureErr := c.EnsureCtx(ctx, n)
	nb := c.Bytes()
	e.mu.Unlock()

	// Re-account even when the extension was cancelled: EnsureCtx rolls
	// its slices back to the completed coverage, but their capacity may
	// have grown, and the cached entry must stay correctly charged for
	// whatever it keeps resident.
	p.resize(scope, e, nb)
	if ensureErr != nil {
		return nil, ensureErr
	}

	if covered && !fill {
		p.countHit(scope)
	} else {
		p.countMiss(scope)
	}
	return c, nil
}

// resize re-accounts an entry whose resident size changed (Hosking
// schedules grow in place) and evicts colder entries if the growth
// pushed the pool over budget.
func (p *Pool) resize(scope *obs.Scope, e *entry, bytes int64) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if !e.resident {
		return // evicted while being extended; readers keep their views
	}
	p.bytes += bytes - e.bytes
	e.bytes = bytes
	if bytes > p.maxBytes {
		p.bytes -= bytes
		p.drop(e)
	} else {
		p.evictOverBudget(scope, e)
	}
	p.publishGauges(scope)
}

// DaviesHarteEigen returns the circulant eigenvalue vector for (h, n)
// — 2n entries — computing it at most once per key. The slice is
// shared and read-only.
func (p *Pool) DaviesHarteEigen(ctx context.Context, h float64, n int) ([]float64, error) {
	if p == nil {
		return fgn.DaviesHarteEigenCtx(ctx, n, h)
	}
	scope := obs.From(ctx)
	k := key{kind: kindDHEigen, p0: math.Float64bits(h), n: n}
	e, fill, err := p.acquire(ctx, k)
	if err != nil {
		return nil, err
	}
	if fill {
		p.countMiss(scope)
		lam, ferr := fgn.DaviesHarteEigenCtx(ctx, n, h)
		p.finish(scope, e, lam, int64(len(lam))*8, ferr)
		if ferr != nil {
			return nil, ferr
		}
		return lam, nil
	}
	p.countHit(scope)
	return e.val.([]float64), nil
}

// PaxsonSpectrum returns the Paxson expected-power vector for (h, n)
// — paxsonLen(n)/2 entries — computing it at most once per key. Keys
// use the even FFT length backing the synthesis, so an odd request and
// its even neighbour share one cached vector. The slice is shared and
// read-only.
func (p *Pool) PaxsonSpectrum(ctx context.Context, h float64, n int) ([]float64, error) {
	if p == nil {
		return fgn.PaxsonSpectrumCtx(ctx, n, h)
	}
	scope := obs.From(ctx)
	// Normalize odd lengths to the even FFT length they synthesize
	// through; n=1 degenerates to a single draw with an empty spectrum
	// and is not worth a slot.
	if n > 1 && n%2 != 0 {
		n++
	}
	k := key{kind: kindPaxsonSpec, p0: math.Float64bits(h), n: n}
	e, fill, err := p.acquire(ctx, k)
	if err != nil {
		return nil, err
	}
	if fill {
		p.countMiss(scope)
		spec, ferr := fgn.PaxsonSpectrumCtx(ctx, n, h)
		p.finish(scope, e, spec, int64(len(spec))*8, ferr)
		if ferr != nil {
			return nil, ferr
		}
		return spec, nil
	}
	p.countHit(scope)
	return e.val.([]float64), nil
}

// QuantileTable returns the Eq. 13 marginal mapping table for the
// hybrid Gamma/Pareto distribution with the given parameters and
// resolution, computing it at most once per key. The table is shared
// and read-only.
func (p *Pool) QuantileTable(ctx context.Context, muGamma, sigmaGamma, tailSlope float64, size int) (*dist.QuantileTable, error) {
	build := func() (*dist.QuantileTable, error) {
		gp, err := dist.NewGammaParetoFromParams(dist.GammaParetoParams{MuGamma: muGamma, SigmaGamma: sigmaGamma, TailSlope: tailSlope})
		if err != nil {
			return nil, err
		}
		return gp.QuantileTable(size)
	}
	if p == nil {
		return build()
	}
	scope := obs.From(ctx)
	k := key{
		kind: kindTable,
		p0:   math.Float64bits(muGamma),
		p1:   math.Float64bits(sigmaGamma),
		p2:   math.Float64bits(tailSlope),
		n:    size,
	}
	e, fill, err := p.acquire(ctx, k)
	if err != nil {
		return nil, err
	}
	if fill {
		p.countMiss(scope)
		tab, ferr := build()
		p.finish(scope, e, tab, int64(size)*8, ferr)
		if ferr != nil {
			return nil, ferr
		}
		return tab, nil
	}
	p.countHit(scope)
	return e.val.(*dist.QuantileTable), nil
}
