package genpool

import (
	"context"
	"testing"

	"vbr/internal/obs"
)

// TestPendingEntryNotEvicted: evictOverBudget must skip entries whose
// fill is still in flight (bytes not yet accounted) — evicting one
// frees nothing and would strand its eventual bytes outside the
// budget's accounting.
func TestPendingEntryNotEvicted(t *testing.T) {
	ctx := context.Background()
	scope := obs.From(ctx)
	const budget = 16 << 10
	p := New(budget)

	kPend := key{kind: kindDHEigen, p0: 1, n: 1}
	ePend, fill, err := p.acquire(ctx, kPend)
	if err != nil || !fill {
		t.Fatalf("acquire pending: fill=%v err=%v", fill, err)
	}

	// Two budget-sized fills. The second forces an eviction pass with
	// the pending entry sitting at the LRU back; it must be skipped in
	// favor of the oldest accounted entry.
	k1 := key{kind: kindDHEigen, p0: 2, n: 1}
	e1, fill1, err := p.acquire(ctx, k1)
	if err != nil || !fill1 {
		t.Fatalf("acquire k1: fill=%v err=%v", fill1, err)
	}
	p.finish(scope, e1, []float64{1}, budget, nil)
	k2 := key{kind: kindDHEigen, p0: 3, n: 1}
	e2, fill2, err := p.acquire(ctx, k2)
	if err != nil || !fill2 {
		t.Fatalf("acquire k2: fill=%v err=%v", fill2, err)
	}
	p.finish(scope, e2, []float64{2}, budget, nil)

	p.mu.Lock()
	_, pendAlive := p.items[kPend]
	_, k1Alive := p.items[k1]
	_, k2Alive := p.items[k2]
	bytes := p.bytes
	p.mu.Unlock()
	if !pendAlive {
		t.Fatal("pending entry was evicted")
	}
	if k1Alive || !k2Alive {
		t.Fatalf("expected k1 evicted and k2 resident, got k1=%v k2=%v", k1Alive, k2Alive)
	}
	if bytes != budget {
		t.Fatalf("resident bytes %d, want %d", bytes, budget)
	}

	// Completing the pending fill keeps accounting exact: its bytes are
	// added, and the over-budget pass evicts the colder accounted entry.
	p.finish(scope, ePend, []float64{3}, 8<<10, nil)
	st := p.Stats()
	if st.Bytes != 8<<10 || st.Entries != 1 {
		t.Fatalf("after pending finish: %+v", st)
	}
}

// TestFinishAfterEvictionDoesNotLeakBytes is the regression test for
// the byte-accounting leak: when an entry is evicted while its fill is
// in flight, the late finish must publish the value to waiters but not
// add bytes the pool can never reclaim.
func TestFinishAfterEvictionDoesNotLeakBytes(t *testing.T) {
	ctx := context.Background()
	scope := obs.From(ctx)
	p := New(16 << 10)

	k := key{kind: kindDHEigen, p0: 1, n: 1}
	e, fill, err := p.acquire(ctx, k)
	if err != nil || !fill {
		t.Fatalf("acquire: fill=%v err=%v", fill, err)
	}
	// Evict the entry while its fill is in flight (the state transition
	// evictOverBudget used to apply to pending victims).
	p.mu.Lock()
	p.drop(e)
	p.mu.Unlock()

	p.finish(scope, e, []float64{1}, 12<<10, nil)
	<-e.ready
	if e.err != nil || e.val == nil {
		t.Fatalf("late finish did not publish to waiters: val=%v err=%v", e.val, e.err)
	}
	if st := p.Stats(); st.Bytes != 0 || st.Entries != 0 {
		t.Fatalf("late finish leaked accounting: %+v", st)
	}

	// The key is retryable and a fresh fill accounts normally.
	e2, fill2, err := p.acquire(ctx, k)
	if err != nil || !fill2 {
		t.Fatalf("re-acquire: fill=%v err=%v", fill2, err)
	}
	p.finish(scope, e2, []float64{2}, 12<<10, nil)
	if st := p.Stats(); st.Bytes != 12<<10 || st.Entries != 1 {
		t.Fatalf("fresh fill after leak-path: %+v", st)
	}
}
