package genpool_test

import (
	"context"
	"fmt"
	"math"
	"sync"
	"testing"

	"vbr/internal/backend"
	"vbr/internal/core"
	"vbr/internal/fgn"
	"vbr/internal/genpool"
)

var testModel = core.Model{MuGamma: 27791, SigmaGamma: 6254, TailSlope: 12, Hurst: 0.8}

// bitwiseEqual fails the test at the first index where the two series
// differ in their float64 bit patterns.
func bitwiseEqual(t *testing.T, label string, cold, warm []float64) {
	t.Helper()
	if len(cold) != len(warm) {
		t.Fatalf("%s: length %d vs %d", label, len(cold), len(warm))
	}
	for i := range cold {
		if math.Float64bits(cold[i]) != math.Float64bits(warm[i]) {
			t.Fatalf("%s: bit mismatch at %d: %x vs %x", label, i, math.Float64bits(cold[i]), math.Float64bits(warm[i]))
		}
	}
}

// TestGenerateBitwiseColdVsWarm pins the tentpole invariant end to end:
// Model.Generate with a pool — cold pool, then fully warm pool — equals
// the pool-free path bit for bit, for all three Gaussian engines.
func TestGenerateBitwiseColdVsWarm(t *testing.T) {
	const n = 4096
	for _, gen := range []core.Generator{core.HoskingExact, core.DaviesHarteFast, backend.Paxson} {
		opts := core.DefaultGenOptions()
		opts.Generator = gen
		opts.Seed = 42
		cold, err := testModel.Generate(n, opts)
		if err != nil {
			t.Fatal(err)
		}
		pooled := opts
		pooled.Pool = genpool.New(0)
		first, err := testModel.Generate(n, pooled) // fills the pool
		if err != nil {
			t.Fatal(err)
		}
		warm, err := testModel.Generate(n, pooled) // pure cache hits
		if err != nil {
			t.Fatal(err)
		}
		bitwiseEqual(t, "cold-pool", cold, first)
		bitwiseEqual(t, "warm-pool", cold, warm)
		st := pooled.Pool.Stats()
		if st.Hits == 0 || st.Misses == 0 {
			t.Fatalf("generator %d: expected both hits and misses, got %+v", gen, st)
		}
	}
}

// TestHoskingPrefixReuse checks the prefix-reuse rule at the pool
// level: a long schedule serves shorter requests as pure hits, and a
// longer request extends the same entry rather than adding one.
func TestHoskingPrefixReuse(t *testing.T) {
	ctx := context.Background()
	p := genpool.New(0)
	if _, err := p.HoskingCoeffs(ctx, 0.8, 2000); err != nil {
		t.Fatal(err)
	}
	c, err := p.HoskingCoeffs(ctx, 0.8, 500) // shorter: pure hit
	if err != nil {
		t.Fatal(err)
	}
	if st := p.Stats(); st.Hits != 1 || st.Misses != 1 || st.Entries != 1 {
		t.Fatalf("after short request: %+v", st)
	}
	longer, err := p.HoskingCoeffs(ctx, 0.8, 3000) // longer: extends in place
	if err != nil {
		t.Fatal(err)
	}
	if longer != c {
		t.Fatal("longer request built a new schedule instead of extending the cached one")
	}
	if st := p.Stats(); st.Misses != 2 || st.Entries != 1 {
		t.Fatalf("after long request: %+v", st)
	}
	if longer.Len() < 3000 {
		t.Fatalf("schedule covers %d, want ≥ 3000", longer.Len())
	}

	// The extended schedule still matches a from-scratch one bitwise.
	fresh, err := fgn.NewHoskingCoeffs(0.8)
	if err != nil {
		t.Fatal(err)
	}
	if err := fresh.EnsureCtx(ctx, 3000); err != nil {
		t.Fatal(err)
	}
	ck, cv, err := longer.Schedule(3000)
	if err != nil {
		t.Fatal(err)
	}
	fk, fv, err := fresh.Schedule(3000)
	if err != nil {
		t.Fatal(err)
	}
	bitwiseEqual(t, "schedule kk", fk, ck)
	bitwiseEqual(t, "schedule v", fv, cv)
}

// errAfterCtx reports Canceled from Err after limit calls while its
// Done channel stays quiet, interrupting a schedule extension a
// deterministic number of points in — the shape of a client dropping a
// pooled /v1/trace request mid-build.
type errAfterCtx struct {
	context.Context
	calls, limit int
}

func (c *errAfterCtx) Err() error {
	c.calls++
	if c.calls > c.limit {
		return context.Canceled
	}
	return nil
}

// TestHoskingCancelledExtensionThenShorter is the cross-request
// regression test for the cancelled-extension panic: a client cancels
// mid-extension, the entry stays cached, and a subsequent shorter
// request for the same H used to panic with a negative make() length,
// crashing the worker. The retry must succeed, match a fresh schedule
// bitwise, and leave the pool's byte accounting equal to what the
// entry actually holds.
func TestHoskingCancelledExtensionThenShorter(t *testing.T) {
	ctx := context.Background()
	p := genpool.New(0)
	if _, err := p.HoskingCoeffs(ctx, 0.8, 100); err != nil {
		t.Fatal(err)
	}
	cctx := &errAfterCtx{Context: ctx, limit: 200}
	if _, err := p.HoskingCoeffs(cctx, 0.8, 2000); err == nil {
		t.Fatal("expected a cancellation error")
	}
	// Shorter than the cancelled target, longer than the covered prefix.
	c, err := p.HoskingCoeffs(ctx, 0.8, 500)
	if err != nil {
		t.Fatalf("shorter request after cancelled extension: %v", err)
	}
	fresh, err := fgn.NewHoskingCoeffs(0.8)
	if err != nil {
		t.Fatal(err)
	}
	if err := fresh.EnsureCtx(ctx, 500); err != nil {
		t.Fatal(err)
	}
	ck, cv, err := c.Schedule(500)
	if err != nil {
		t.Fatal(err)
	}
	fk, fv, err := fresh.Schedule(500)
	if err != nil {
		t.Fatal(err)
	}
	bitwiseEqual(t, "retry kk", fk, ck)
	bitwiseEqual(t, "retry v", fv, cv)
	if st := p.Stats(); st.Bytes != c.Bytes() || st.Entries != 1 {
		t.Fatalf("accounting after cancelled extension: stats=%+v schedule=%d bytes", st, c.Bytes())
	}
}

// TestPaxsonSpectrumPool pins the pooled-spectrum contract: the cached
// vector equals the pool-free computation bitwise, repeats are pure
// hits, and an odd-length request shares its even neighbor's entry
// (Paxson synthesis pads odd n to the next even FFT length, so both
// lengths consume the same vector).
func TestPaxsonSpectrumPool(t *testing.T) {
	ctx := context.Background()
	cold, err := fgn.PaxsonSpectrumCtx(ctx, 4096, 0.8)
	if err != nil {
		t.Fatal(err)
	}
	p := genpool.New(0)
	warm, err := p.PaxsonSpectrum(ctx, 0.8, 4096)
	if err != nil {
		t.Fatal(err)
	}
	bitwiseEqual(t, "pooled spectrum", cold, warm)
	if _, err := p.PaxsonSpectrum(ctx, 0.8, 4096); err != nil {
		t.Fatal(err)
	}
	if st := p.Stats(); st.Hits != 1 || st.Misses != 1 || st.Entries != 1 {
		t.Fatalf("after repeat request: %+v", st)
	}
	odd, err := p.PaxsonSpectrum(ctx, 0.8, 4095)
	if err != nil {
		t.Fatal(err)
	}
	bitwiseEqual(t, "odd-length spectrum", cold, odd)
	if st := p.Stats(); st.Hits != 2 || st.Entries != 1 {
		t.Fatalf("odd length did not share the even entry: %+v", st)
	}
	// A different H is a different identity.
	if _, err := p.PaxsonSpectrum(ctx, 0.9, 4096); err != nil {
		t.Fatal(err)
	}
	if st := p.Stats(); st.Entries != 2 {
		t.Fatalf("distinct H should add an entry: %+v", st)
	}
	// The nil pool computes cold with identical bits.
	var nilPool *genpool.Pool
	direct, err := nilPool.PaxsonSpectrum(ctx, 0.8, 4096)
	if err != nil {
		t.Fatal(err)
	}
	bitwiseEqual(t, "nil-pool spectrum", cold, direct)
}

// TestConcurrentHammer runs 32 goroutines against one pool mixing all
// three item kinds, prefix extensions and repeated keys. Run under
// -race this pins the pool's concurrency safety; the bitwise checks
// pin that shared schedules read consistently mid-extension.
func TestConcurrentHammer(t *testing.T) {
	ctx := context.Background()
	p := genpool.New(0)
	want, err := fgn.NewHoskingCoeffs(0.8)
	if err != nil {
		t.Fatal(err)
	}
	if err := want.EnsureCtx(ctx, 1200); err != nil {
		t.Fatal(err)
	}
	wk, wv, err := want.Schedule(1200)
	if err != nil {
		t.Fatal(err)
	}

	const workers = 32
	var wg sync.WaitGroup
	errc := make(chan error, workers)
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			// Interleave growing Hosking requests with the two other
			// kinds so map, LRU and byte accounting all churn together.
			n := 100 + (w%8)*150
			c, err := p.HoskingCoeffs(ctx, 0.8, n)
			if err != nil {
				errc <- err
				return
			}
			kk, v, err := c.Schedule(n)
			if err != nil {
				errc <- err
				return
			}
			for i := 1; i < n; i++ {
				if math.Float64bits(kk[i]) != math.Float64bits(wk[i]) || math.Float64bits(v[i]) != math.Float64bits(wv[i]) {
					errc <- fmt.Errorf("worker %d: schedule bits diverge at k=%d", w, i)
					return
				}
			}
			if _, err := p.DaviesHarteEigen(ctx, 0.7, 256+(w%4)*64); err != nil {
				errc <- err
				return
			}
			if _, err := p.QuantileTable(ctx, 27791, 6254, 12, 1000+(w%3)*500); err != nil {
				errc <- err
				return
			}
		}()
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Fatal(err)
	}
	if st := p.Stats(); st.Entries == 0 || st.Bytes == 0 {
		t.Fatalf("pool ended empty: %+v", st)
	}
}

// TestEvictionBound fills a tiny pool far past its budget and checks
// that resident bytes never exceed it, that evictions happen, and that
// evicted values were still served correctly.
func TestEvictionBound(t *testing.T) {
	ctx := context.Background()
	const budget = 64 << 10 // 64 KiB: each 1024-point eigen vector is 16 KiB
	p := genpool.New(budget)
	for i := 0; i < 24; i++ {
		h := 0.5 + float64(i+1)/50 // distinct keys
		lam, err := p.DaviesHarteEigen(ctx, h, 1024)
		if err != nil {
			t.Fatal(err)
		}
		if len(lam) != 2048 {
			t.Fatalf("eigen vector %d has %d entries, want 2048", i, len(lam))
		}
		if st := p.Stats(); st.Bytes > st.MaxBytes {
			t.Fatalf("resident bytes %d exceed budget %d", st.Bytes, st.MaxBytes)
		}
	}
	st := p.Stats()
	if st.Evictions == 0 {
		t.Fatalf("no evictions after overfilling: %+v", st)
	}
	if st.Bytes > budget {
		t.Fatalf("final bytes %d exceed budget %d", st.Bytes, budget)
	}
}

// TestOversizedItemNotRetained: an item larger than the whole budget is
// computed and returned, but must not take up residence.
func TestOversizedItemNotRetained(t *testing.T) {
	ctx := context.Background()
	p := genpool.New(1024) // 1 KiB: a 1024-point eigen vector (16 KiB) cannot fit
	lam, err := p.DaviesHarteEigen(ctx, 0.8, 1024)
	if err != nil {
		t.Fatal(err)
	}
	if len(lam) != 2048 {
		t.Fatalf("got %d entries, want 2048", len(lam))
	}
	if st := p.Stats(); st.Entries != 0 || st.Bytes != 0 {
		t.Fatalf("oversized item was retained: %+v", st)
	}
}

// TestNilPoolComputesCold: a nil *Pool is a valid no-cache pool.
func TestNilPoolComputesCold(t *testing.T) {
	ctx := context.Background()
	var p *genpool.Pool
	c, err := p.HoskingCoeffs(ctx, 0.8, 64)
	if err != nil || c.Len() < 64 {
		t.Fatalf("nil-pool Hosking: %v (len %d)", err, c.Len())
	}
	if _, err := p.DaviesHarteEigen(ctx, 0.8, 64); err != nil {
		t.Fatalf("nil-pool eigen: %v", err)
	}
	if _, err := p.QuantileTable(ctx, 27791, 6254, 12, 100); err != nil {
		t.Fatalf("nil-pool table: %v", err)
	}
	if st := p.Stats(); st != (genpool.Stats{}) {
		t.Fatalf("nil-pool stats: %+v", st)
	}
}

// TestErrorNotCached: a failed fill must not poison the key.
func TestErrorNotCached(t *testing.T) {
	ctx := context.Background()
	p := genpool.New(0)
	if _, err := p.QuantileTable(ctx, -1, 6254, 12, 100); err == nil {
		t.Fatal("expected an error for a negative mean")
	}
	if st := p.Stats(); st.Entries != 0 {
		t.Fatalf("errored entry retained: %+v", st)
	}
}
