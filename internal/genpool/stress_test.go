package genpool_test

import (
	"context"
	"fmt"
	"math"
	"sync"
	"testing"

	"vbr/internal/fgn"
	"vbr/internal/genpool"
)

// TestStressCoeffsExtendEvict hammers the singleflight fill path where
// it is most delicate: concurrent EnsureCtx prefix extension of shared
// HoskingCoeffs entries while a deliberately tiny byte budget forces
// eviction of those same entries mid-extension. Every schedule handed
// out must still be bitwise identical to a cold single-threaded
// computation — eviction may drop an entry from the pool, but it must
// never corrupt a schedule a reader already holds or double-account the
// budget. Run under -race this exercises the acquire/finish/resize
// lock discipline that lockguard checks statically.
func TestStressCoeffsExtendEvict(t *testing.T) {
	ctx := context.Background()

	// Three Hurst values, each extended to maxN. A schedule of n points
	// holds four float64 slices (~32n bytes), so at maxN each entry is
	// ~38 KiB; a 64 KiB budget fits barely one full-size entry, forcing
	// the three keys to evict each other continuously.
	hs := []float64{0.6, 0.75, 0.9}
	const maxN = 1200
	p := genpool.New(64 << 10)

	// Cold references, computed once without the pool.
	type ref struct{ kk, v []float64 }
	refs := map[float64]ref{}
	for _, h := range hs {
		c, err := fgn.NewHoskingCoeffs(h)
		if err != nil {
			t.Fatal(err)
		}
		if err := c.EnsureCtx(ctx, maxN); err != nil {
			t.Fatal(err)
		}
		kk, v, err := c.Schedule(maxN)
		if err != nil {
			t.Fatal(err)
		}
		refs[h] = ref{kk, v}
	}

	const workers = 24
	const rounds = 6
	var wg sync.WaitGroup
	errc := make(chan error, workers)
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			h := hs[w%len(hs)]
			want := refs[h]
			for r := 0; r < rounds; r++ {
				// Growing lengths: later rounds extend prefixes the pool
				// may have evicted and refilled in the meantime.
				n := 200 + r*((maxN-200)/(rounds-1)) + (w%4)*7
				if n > maxN {
					n = maxN
				}
				c, err := p.HoskingCoeffs(ctx, h, n)
				if err != nil {
					errc <- err
					return
				}
				kk, v, err := c.Schedule(n)
				if err != nil {
					errc <- err
					return
				}
				for i := 1; i < n; i++ {
					if math.Float64bits(kk[i]) != math.Float64bits(want.kk[i]) ||
						math.Float64bits(v[i]) != math.Float64bits(want.v[i]) {
						errc <- fmt.Errorf("worker %d round %d: H=%v schedule diverges at k=%d", w, r, h, i)
						return
					}
				}
			}
		}()
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Fatal(err)
	}

	st := p.Stats()
	if st.Bytes > st.MaxBytes {
		t.Fatalf("resident bytes %d exceed budget %d: %+v", st.Bytes, st.MaxBytes, st)
	}
	if st.Evictions == 0 {
		t.Fatalf("budget never forced an eviction — the stress shape is wrong: %+v", st)
	}
}
