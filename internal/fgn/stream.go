package fgn

import (
	"context"
	"fmt"
	"io"
	"math"
	"math/rand/v2"

	"vbr/internal/obs"
)

// HoskingStream is the pull-based form of the Hosking recursion: instead
// of materializing all n points in one call, callers draw the series
// block by block with Next. The arithmetic is identical to hoskingRun —
// same recurrence, same order of random draws — so the concatenation of
// all blocks is bitwise-identical to the output of Hosking(n, h, rng)
// with an equally seeded generator.
//
// The recursion state (generated prefix, partial linear-prediction
// coefficients, ρ sequence) grows with the position k; that O(n) state
// is inherent to the exact algorithm, which conditions every point on
// the entire past. What streaming removes is any *additional* O(n)
// buffering between generator and consumer: each Next hands out only the
// block just produced.
type HoskingStream struct {
	n   int
	h   float64
	rng *rand.Rand

	rho     []float64
	x       []float64
	phi     []float64
	phiPrev []float64
	v       float64
	nPrev   float64
	dPrev   float64
	k       int // next point to generate

	// Warm mode (NewHoskingStreamWithCoeffs): precomputed φ_kk and v_k
	// schedules replace the ρ dot product, the two-buffer φ copy and the
	// variance recursion. nil in cold mode.
	kk []float64
	vs []float64
}

// NewHoskingStream prepares an incremental Hosking generation of n
// points with Hurst parameter h drawing innovations from rng. The
// stream owns rng from this call on; drawing from it elsewhere desyncs
// the output from the equivalent batch run.
func NewHoskingStream(n int, h float64, rng *rand.Rand) (*HoskingStream, error) {
	if n < 1 {
		return nil, fmt.Errorf("fgn: length must be ≥ 1, got %d", n)
	}
	if !validHurst(h) {
		return nil, fmt.Errorf("fgn: Hurst parameter must be in (0,1), got %v", h)
	}
	if rng == nil {
		return nil, fmt.Errorf("fgn: stream needs a random source")
	}
	rho, err := FarimaACF(h, n)
	if err != nil {
		return nil, err
	}
	return &HoskingStream{
		n: n, h: h, rng: rng,
		rho:     rho,
		x:       make([]float64, n),
		phi:     make([]float64, n),
		phiPrev: make([]float64, n),
		v:       1,
		nPrev:   0,
		dPrev:   1,
	}, nil
}

// Pos returns how many points have been generated so far.
func (s *HoskingStream) Pos() int { return s.k }

// Len returns the total length of the stream.
func (s *HoskingStream) Len() int { return s.n }

// Next advances the recursion by up to len(dst) points, filling dst from
// the front, and returns how many points were produced. After the last
// point it returns (0, io.EOF). Cancellation is checked once per
// generated point (the late-recursion iterations are O(n) each) and
// surfaces as an error matching errs.ErrCancelled.
//vbrlint:hotpath
func (s *HoskingStream) Next(ctx context.Context, dst []float64) (int, error) {
	if s.k >= s.n {
		return 0, io.EOF
	}
	if len(dst) == 0 {
		return 0, fmt.Errorf("fgn: stream block must be non-empty")
	}
	want := len(dst)
	if rem := s.n - s.k; want > rem {
		want = rem
	}
	produced := 0
	if s.k == 0 {
		// X_0 ~ N(0, v_0), v_0 = 1, exactly as hoskingRun draws it.
		s.x[0] = s.rng.NormFloat64()
		dst[0] = s.x[0]
		s.k = 1
		produced = 1
	}
	for produced < want {
		if ctx.Err() != nil {
			return produced, interruptedErr(ctx, "Hosking stream", s.k, s.n)
		}
		k := s.k
		if s.kk != nil {
			// Warm mode: the schedule already holds φ_kk and v_k; only
			// the in-place φ update and the conditional mean remain.
			updatePhiInPlace(s.phi, k, s.kk[k])
			m := dotRevAdd(0, s.phi[1:k+1], s.x[:k])
			s.x[k] = m + math.Sqrt(s.vs[k])*s.rng.NormFloat64()
			dst[produced] = s.x[k]
			produced++
			s.k = k + 1
			continue
		}
		// N_k and D_k (Eqs. 7–8); dotRevSub walks j = 1..k-1 in order.
		nk := dotRevSub(s.rho[k], s.phiPrev[1:k], s.rho[1:k])
		dk := s.dPrev - s.nPrev*s.nPrev/s.dPrev

		phikk := nk / dk
		s.phi[k] = phikk
		for j := 1; j < k; j++ {
			s.phi[j] = s.phiPrev[j] - phikk*s.phiPrev[k-j]
		}

		// Conditional mean and variance (Eqs. 11–12).
		m := dotRevAdd(0, s.phi[1:k+1], s.x[:k])
		s.v *= 1 - phikk*phikk
		if s.v < 0 {
			// Numerically impossible for valid ρ, but guard against
			// catastrophic cancellation at extreme H.
			s.v = 0
		}
		s.x[k] = m + math.Sqrt(s.v)*s.rng.NormFloat64()
		dst[produced] = s.x[k]
		produced++

		copy(s.phiPrev[1:k+1], s.phi[1:k+1])
		s.nPrev, s.dPrev = nk, dk
		s.k = k + 1
	}
	obs.From(ctx).Count("fgn.hosking.stream.points", int64(produced))
	return produced, nil
}
