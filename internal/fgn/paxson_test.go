package fgn

import (
	"context"
	"errors"
	"math"
	"math/rand/v2"
	"testing"

	"vbr/internal/dist"
	"vbr/internal/errs"
	"vbr/internal/lrd"
)

// TestPaxsonFidelity is the gate battery that admits the approximate
// Paxson sampler as a generation backend: at H ∈ {0.6, 0.8, 0.9} a
// seeded 32k-point synthesis must look Gaussian in the marginal (KS),
// and self-similar with the right Hurst parameter to every estimator
// the repository trusts — variance–time and MAVAR inside their
// calibrated error bars (PR 8 battery), Whittle inside its asymptotic
// 95% CI. The seeds are fixed, so the gates are deterministic: a
// regression in the spectrum or the randomization moves a statistic
// and fails a hard bound, not a flaky one.
func TestPaxsonFidelity(t *testing.T) {
	const n = 1 << 15
	std, err := dist.NewNormal(0, 1)
	if err != nil {
		t.Fatal(err)
	}
	cal := lrd.DefaultCalibration()
	for _, h := range []float64{0.6, 0.8, 0.9} {
		rng := rand.New(rand.NewPCG(7, 9))
		x, err := Paxson(n, h, rng)
		if err != nil {
			t.Fatalf("Paxson(H=%v): %v", h, err)
		}

		// Unit variance by construction (the spectrum is normalized
		// discretely, not via a continuum constant).
		var mean, ss float64
		for _, v := range x {
			mean += v
		}
		mean /= float64(n)
		for _, v := range x {
			ss += (v - mean) * (v - mean)
		}
		if variance := ss / float64(n); math.Abs(variance-1) > 0.05 {
			t.Errorf("H=%v: sample variance %.4f, want ≈ 1", h, variance)
		}

		// KS against the standard normal on the standardized series
		// (the marginal-transform step consumes standardized input).
		xs := Standardize(append([]float64(nil), x...))
		ks, err := dist.KolmogorovDistance(xs, std)
		if err != nil {
			t.Fatal(err)
		}
		if ks > 0.01 {
			t.Errorf("H=%v: KS distance to N(0,1) = %.5f, want ≤ 0.01", h, ks)
		}

		// Variance–time Ĥ, bias-corrected through the calibration
		// table; the true H must sit inside the calibrated bar.
		vt, err := lrd.VarianceTime(x, 0, 0, 0)
		if err != nil {
			t.Fatal(err)
		}
		if bar := cal.Bar(lrd.EstVarianceTime, vt.H, n); math.Abs(bar.H-h) > bar.CI95 {
			t.Errorf("H=%v: variance–time bar %.4f ± %.4f (raw %.4f) excludes true H",
				h, bar.H, bar.CI95, vt.H)
		}

		// Whittle under the exact FGN spectral model: true H inside the
		// asymptotic 95% CI.
		wh, err := lrd.WhittleFGN(x)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(wh.H-h) > wh.CI95 {
			t.Errorf("H=%v: Whittle %.4f ± %.4f excludes true H", h, wh.H, wh.CI95)
		}

		// MAVAR with the PR 8 calibrated bias/σ bars.
		mv, err := lrd.MAVAR(x, 0, 0)
		if err != nil {
			t.Fatal(err)
		}
		if bar := cal.Bar(lrd.EstMAVAR, mv.H, n); math.Abs(bar.H-h) > bar.CI95 {
			t.Errorf("H=%v: MAVAR bar %.4f ± %.4f (raw %.4f) excludes true H",
				h, bar.H, bar.CI95, mv.H)
		}
	}
}

// TestPaxsonGolden pins the sampler's bitwise determinism: a fixed seed
// must reproduce this exact series forever. The rng consumption order
// (per frequency: power then phase; Nyquist: power then sign) is part
// of the contract — reordering draws changes every output bit.
func TestPaxsonGolden(t *testing.T) {
	rng := rand.New(rand.NewPCG(7, 9))
	x, err := Paxson(4096, 0.8, rng)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := math.Float64bits(x[0]), uint64(0x3ff4e8e8aa871c52); got != want {
		t.Errorf("x[0] bits = %#x, want %#x", got, want)
	}
	if got, want := math.Float64bits(x[4095]), uint64(0x3feb163c8be32d70); got != want {
		t.Errorf("x[4095] bits = %#x, want %#x", got, want)
	}
	if got, want := fnvHash(x), uint64(0x237363e9b48fea43); got != want {
		t.Errorf("series hash = %#x, want golden %#x", got, want)
	}
}

// TestPaxsonSplitMatchesComposed pins the cache contract: synthesis
// from a precomputed spectrum must be bitwise identical to the
// composed call, for even and odd lengths (odd lengths share the even
// FFT plan one larger).
func TestPaxsonSplitMatchesComposed(t *testing.T) {
	ctx := context.Background()
	for _, n := range []int{2, 3, 17, 256, 1001} {
		p, err := PaxsonSpectrumCtx(ctx, n, 0.75)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		a, err := PaxsonFromSpectrumCtx(ctx, n, p, rand.New(rand.NewPCG(1, 2)))
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		b, err := PaxsonCtx(ctx, n, 0.75, rand.New(rand.NewPCG(1, 2)))
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if len(a) != n || len(b) != n {
			t.Fatalf("n=%d: lengths %d, %d", n, len(a), len(b))
		}
		for i := range a {
			if math.Float64bits(a[i]) != math.Float64bits(b[i]) {
				t.Fatalf("n=%d: split and composed diverge at %d: %v vs %v", n, i, a[i], b[i])
			}
		}
	}
}

// TestPaxsonErrors pins the argument validation and the cancellation
// path.
func TestPaxsonErrors(t *testing.T) {
	ctx := context.Background()
	rng := rand.New(rand.NewPCG(1, 1))
	if _, err := Paxson(0, 0.8, rng); err == nil {
		t.Error("n=0: want error")
	}
	for _, h := range []float64{0, 1, -0.5, math.NaN()} {
		if _, err := Paxson(16, h, rng); err == nil {
			t.Errorf("H=%v: want error", h)
		}
	}
	if _, err := PaxsonFromSpectrumCtx(ctx, 16, nil, nil); err == nil {
		t.Error("nil rng: want error")
	}
	if _, err := PaxsonFromSpectrumCtx(ctx, 16, []float64{1, 2}, rng); err == nil {
		t.Error("short spectrum: want error")
	}
	cancelled, cancel := context.WithCancel(ctx)
	cancel()
	if _, err := PaxsonCtx(cancelled, 1024, 0.8, rng); !errors.Is(err, errs.ErrCancelled) {
		t.Errorf("cancelled ctx: got %v, want ErrCancelled", err)
	}
}

// TestPaxsonSingleton pins the n=1 degenerate case: one plain Gaussian
// draw, no FFT.
func TestPaxsonSingleton(t *testing.T) {
	x, err := Paxson(1, 0.8, rand.New(rand.NewPCG(5, 5)))
	if err != nil {
		t.Fatal(err)
	}
	want := rand.New(rand.NewPCG(5, 5)).NormFloat64()
	if len(x) != 1 || math.Float64bits(x[0]) != math.Float64bits(want) {
		t.Errorf("Paxson(1) = %v, want [%v]", x, want)
	}
}

// FuzzPaxson exercises the sampler across arbitrary (n, h, seed)
// inputs: every valid combination must synthesize without error,
// produce exactly n finite values, and stay deterministic per seed.
func FuzzPaxson(f *testing.F) {
	f.Add(16, 0.8, uint64(1))
	f.Add(1, 0.5, uint64(2))
	f.Add(255, 0.99, uint64(3))
	f.Add(256, 0.01, uint64(4))
	f.Fuzz(func(t *testing.T, n int, h float64, seed uint64) {
		if n < 1 || n > 1<<12 || !(h > 0 && h < 1) {
			t.Skip()
		}
		x, err := Paxson(n, h, rand.New(rand.NewPCG(seed, 0)))
		if err != nil {
			t.Fatalf("Paxson(%d, %v): %v", n, h, err)
		}
		if len(x) != n {
			t.Fatalf("got %d points, want %d", len(x), n)
		}
		for i, v := range x {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				t.Fatalf("non-finite value %v at %d (n=%d h=%v)", v, i, n, h)
			}
		}
		y, err := Paxson(n, h, rand.New(rand.NewPCG(seed, 0)))
		if err != nil {
			t.Fatal(err)
		}
		for i := range x {
			if math.Float64bits(x[i]) != math.Float64bits(y[i]) {
				t.Fatalf("same seed diverges at %d", i)
			}
		}
	})
}
