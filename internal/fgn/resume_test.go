package fgn

import (
	"context"
	"errors"
	"math/rand/v2"
	"testing"
	"time"

	"vbr/internal/errs"
)

// countCtx is a context whose Err() becomes non-nil after limit calls —
// a deterministic way to interrupt the Hosking recursion at a known
// outer iteration.
type countCtx struct {
	context.Context
	calls, limit int
}

func (c *countCtx) Err() error {
	c.calls++
	if c.calls > c.limit {
		return context.Canceled
	}
	return nil
}

func TestHoskingCtxCancelledBeforeStart(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	rng := rand.New(rand.NewPCG(1, 2))
	_, err := HoskingCtx(ctx, 1000, 0.8, rng)
	if !errors.Is(err, errs.ErrCancelled) {
		t.Fatalf("got %v, want ErrCancelled", err)
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("error does not carry context.Canceled: %v", err)
	}
}

// TestHoskingCtxCancelPromptly is the acceptance check: cancelling a
// paper-scale 171,000-point generation returns well before the O(n²)
// recursion could complete.
func TestHoskingCtxCancelPromptly(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	start := time.Now()
	go func() {
		rng := rand.New(rand.NewPCG(1994, 5))
		_, err := HoskingCtx(ctx, 171000, 0.8, rng)
		done <- err
	}()
	time.Sleep(100 * time.Millisecond)
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, errs.ErrCancelled) {
			t.Fatalf("got %v, want ErrCancelled", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("generation did not stop within 10s of cancellation")
	}
	if el := time.Since(start); el > 11*time.Second {
		t.Fatalf("cancellation took %v, not prompt", el)
	}
}

// TestHoskingResumeBitwiseIdentical interrupts a generation mid-run,
// snapshots the recursion, resumes from the snapshot, and requires the
// result to be bit-for-bit equal to an uninterrupted run with the same
// seed.
func TestHoskingResumeBitwiseIdentical(t *testing.T) {
	const n, h = 3000, 0.8
	seed := func() *rand.PCG { return rand.NewPCG(42, 0x6a55) }

	want, st, err := HoskingResumable(context.Background(), n, h, seed(), nil)
	if err != nil || st != nil {
		t.Fatalf("uninterrupted run: err=%v st=%v", err, st)
	}

	cctx := &countCtx{Context: context.Background(), limit: 1500}
	x, st, err := HoskingResumable(cctx, n, h, seed(), nil)
	if !errors.Is(err, errs.ErrCancelled) {
		t.Fatalf("interrupted run: got %v, want ErrCancelled", err)
	}
	if x != nil {
		t.Fatal("interrupted run returned a series")
	}
	if st == nil {
		t.Fatal("interrupted run returned no snapshot")
	}
	if st.K <= 1 || st.K >= n {
		t.Fatalf("snapshot at K=%d, want mid-run", st.K)
	}
	if len(st.X) != st.K || len(st.PhiPrev) != st.K || len(st.RNG) == 0 {
		t.Fatalf("snapshot inconsistent: |X|=%d |φ|=%d |RNG|=%d", len(st.X), len(st.PhiPrev), len(st.RNG))
	}

	got, st2, err := HoskingResumable(context.Background(), n, h, rand.NewPCG(0, 0), st)
	if err != nil || st2 != nil {
		t.Fatalf("resumed run: err=%v st=%v", err, st2)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("resumed output differs at %d: %v != %v", i, got[i], want[i])
		}
	}
}

func TestHoskingResumeValidation(t *testing.T) {
	const n, h = 500, 0.8
	cctx := &countCtx{Context: context.Background(), limit: 200}
	_, st, err := HoskingResumable(cctx, n, h, rand.NewPCG(3, 4), nil)
	if !errors.Is(err, errs.ErrCancelled) || st == nil {
		t.Fatalf("setup: err=%v st=%v", err, st)
	}

	if _, _, err := HoskingResumable(context.Background(), n+1, h, rand.NewPCG(0, 0), st); !errors.Is(err, errs.ErrCheckpointMismatch) {
		t.Errorf("wrong n: got %v, want ErrCheckpointMismatch", err)
	}
	if _, _, err := HoskingResumable(context.Background(), n, 0.7, rand.NewPCG(0, 0), st); !errors.Is(err, errs.ErrCheckpointMismatch) {
		t.Errorf("wrong H: got %v, want ErrCheckpointMismatch", err)
	}

	bad := *st
	bad.X = bad.X[:len(bad.X)-1]
	if _, _, err := HoskingResumable(context.Background(), n, h, rand.NewPCG(0, 0), &bad); !errors.Is(err, errs.ErrCheckpointCorrupt) {
		t.Errorf("truncated X: got %v, want ErrCheckpointCorrupt", err)
	}
	bad2 := *st
	bad2.RNG = nil
	if _, _, err := HoskingResumable(context.Background(), n, h, rand.NewPCG(0, 0), &bad2); !errors.Is(err, errs.ErrCheckpointCorrupt) {
		t.Errorf("missing RNG: got %v, want ErrCheckpointCorrupt", err)
	}
}

// TestHoskingCtxMatchesPlain ensures the refactored shared recursion did
// not change the legacy entry point's output.
func TestHoskingCtxMatchesPlain(t *testing.T) {
	const n, h = 800, 0.8
	a, err := Hosking(n, h, rand.New(rand.NewPCG(9, 9)))
	if err != nil {
		t.Fatal(err)
	}
	b, err := HoskingCtx(context.Background(), n, h, rand.New(rand.NewPCG(9, 9)))
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("outputs differ at %d", i)
		}
	}
}
