package fgn

import (
	"context"
	"math"
	"math/rand/v2"
	"testing"
)

// TestHoskingFromCoeffsBitwise pins the tentpole invariant: the warm
// (schedule-driven) batch generator reproduces the cold recursion bit
// for bit for the same seed.
func TestHoskingFromCoeffsBitwise(t *testing.T) {
	for _, h := range []float64{0.55, 0.8, 0.95} {
		cold, err := Hosking(3000, h, rand.New(rand.NewPCG(7, 9)))
		if err != nil {
			t.Fatal(err)
		}
		c, err := NewHoskingCoeffs(h)
		if err != nil {
			t.Fatal(err)
		}
		warm, err := HoskingFromCoeffs(context.Background(), 3000, c, rand.New(rand.NewPCG(7, 9)))
		if err != nil {
			t.Fatal(err)
		}
		for i := range cold {
			if math.Float64bits(cold[i]) != math.Float64bits(warm[i]) {
				t.Fatalf("H=%v: warm[%d]=%x cold[%d]=%x", h, i, math.Float64bits(warm[i]), i, math.Float64bits(cold[i]))
			}
		}
	}
}

// TestHoskingCoeffsPrefixExtension checks the prefix-reuse rule: a
// schedule extended in stages carries exactly the entries a one-shot
// schedule computes, so any cached long schedule serves shorter runs.
func TestHoskingCoeffsPrefixExtension(t *testing.T) {
	ctx := context.Background()
	inc, err := NewHoskingCoeffs(0.8)
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range []int{10, 500, 501, 2048} {
		if err := inc.EnsureCtx(ctx, n); err != nil {
			t.Fatal(err)
		}
	}
	one, err := NewHoskingCoeffs(0.8)
	if err != nil {
		t.Fatal(err)
	}
	if err := one.EnsureCtx(ctx, 2048); err != nil {
		t.Fatal(err)
	}
	ik, iv, err := inc.Schedule(2048)
	if err != nil {
		t.Fatal(err)
	}
	ok, ov, err := one.Schedule(2048)
	if err != nil {
		t.Fatal(err)
	}
	for k := 1; k < 2048; k++ {
		if math.Float64bits(ik[k]) != math.Float64bits(ok[k]) || math.Float64bits(iv[k]) != math.Float64bits(ov[k]) {
			t.Fatalf("staged extension diverges at k=%d", k)
		}
	}
}

// cancelAfterCtx reports Canceled from Err after limit calls, so a
// schedule extension can be interrupted a deterministic number of
// iterations in — mimicking a client dropping a request mid-build.
type cancelAfterCtx struct {
	context.Context
	calls, limit int
}

func (c *cancelAfterCtx) Err() error {
	c.calls++
	if c.calls > c.limit {
		return context.Canceled
	}
	return nil
}

// TestHoskingCoeffsCancelledThenRetry is the regression test for the
// cancelled-extension panic: EnsureCtx used to pre-grow rho/phi to the
// target length before the loop, so a cancellation left them longer
// than kk/v and a later shorter request computed a negative make()
// length. A cached schedule must survive cancel → shorter retry →
// longer retry with bitwise-identical entries.
func TestHoskingCoeffsCancelledThenRetry(t *testing.T) {
	cancelled, cancel := context.WithCancel(context.Background())
	cancel()
	cases := []struct {
		name string
		ctx  context.Context
	}{
		{"before-first-step", cancelled},
		{"mid-extension", &cancelAfterCtx{Context: context.Background(), limit: 300}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			c, err := NewHoskingCoeffs(0.8)
			if err != nil {
				t.Fatal(err)
			}
			if err := c.EnsureCtx(tc.ctx, 2000); err == nil {
				t.Fatal("expected a cancellation error")
			}
			// Shorter retry: panicked before the fix.
			if err := c.EnsureCtx(context.Background(), 500); err != nil {
				t.Fatalf("shorter retry after cancellation: %v", err)
			}
			// Longer retry resumes and completes.
			if err := c.EnsureCtx(context.Background(), 2000); err != nil {
				t.Fatalf("longer retry after cancellation: %v", err)
			}
			fresh, err := NewHoskingCoeffs(0.8)
			if err != nil {
				t.Fatal(err)
			}
			if err := fresh.EnsureCtx(context.Background(), 2000); err != nil {
				t.Fatal(err)
			}
			ck, cv, err := c.Schedule(2000)
			if err != nil {
				t.Fatal(err)
			}
			fk, fv, err := fresh.Schedule(2000)
			if err != nil {
				t.Fatal(err)
			}
			for k := 1; k < 2000; k++ {
				if math.Float64bits(ck[k]) != math.Float64bits(fk[k]) || math.Float64bits(cv[k]) != math.Float64bits(fv[k]) {
					t.Fatalf("retried schedule diverges from fresh at k=%d", k)
				}
			}
		})
	}
}

// TestHoskingStreamWithCoeffsBitwise: the warm stream's concatenated
// blocks equal the cold batch output bit for bit.
func TestHoskingStreamWithCoeffsBitwise(t *testing.T) {
	const n = 2000
	cold, err := Hosking(n, 0.8, rand.New(rand.NewPCG(3, 5)))
	if err != nil {
		t.Fatal(err)
	}
	c, err := NewHoskingCoeffs(0.8)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.EnsureCtx(context.Background(), n); err != nil {
		t.Fatal(err)
	}
	s, err := NewHoskingStreamWithCoeffs(n, c, rand.New(rand.NewPCG(3, 5)))
	if err != nil {
		t.Fatal(err)
	}
	var got []float64
	buf := make([]float64, 129) // deliberately unaligned block size
	for len(got) < n {
		k, err := s.Next(context.Background(), buf)
		if err != nil {
			t.Fatal(err)
		}
		got = append(got, buf[:k]...)
	}
	for i := range cold {
		if math.Float64bits(cold[i]) != math.Float64bits(got[i]) {
			t.Fatalf("stream warm[%d] != cold[%d]", i, i)
		}
	}
}

// TestDaviesHarteFromEigenBitwise: eigen-split synthesis equals the
// one-shot sampler bit for bit.
func TestDaviesHarteFromEigenBitwise(t *testing.T) {
	ctx := context.Background()
	for _, n := range []int{1, 2, 777, 4096} {
		cold, err := DaviesHarte(n, 0.8, rand.New(rand.NewPCG(11, 13)))
		if err != nil {
			t.Fatal(err)
		}
		lam, err := DaviesHarteEigenCtx(ctx, n, 0.8)
		if err != nil {
			t.Fatal(err)
		}
		warm, err := DaviesHarteFromEigenCtx(ctx, n, lam, rand.New(rand.NewPCG(11, 13)))
		if err != nil {
			t.Fatal(err)
		}
		for i := range cold {
			if math.Float64bits(cold[i]) != math.Float64bits(warm[i]) {
				t.Fatalf("n=%d: warm[%d] != cold[%d]", n, i, i)
			}
		}
	}
}
