package fgn

import (
	"context"
	"fmt"
	"math"
	"math/rand/v2"

	"vbr/internal/errs"
	"vbr/internal/fft"
	"vbr/internal/obs"
)

// This file implements Paxson's FFT-approximate synthesis of fractional
// Gaussian noise ("Fast, Approximate Synthesis of Fractional Gaussian
// Noise for Generating Self-Similar Network Traffic", CCR 1997; arxiv
// cs/9809030). The method samples the fGn spectral density at the
// Fourier frequencies, randomizes each coefficient's power with an
// independent Exp(1) draw (the asymptotic distribution of periodogram
// ordinates) and its phase with an independent uniform, and inverse-FFTs
// the Hermitian spectrum into a real series. Cost is O(n log n); the
// output is approximate — the spectrum is sampled, not embedded, so
// finite-n correlations deviate slightly from exact fGn — but Paxson's
// study and the fidelity battery in paxson_test.go show the deviation
// is statistically invisible to the Ĥ estimators the repository uses.
//
// Like Davies–Harte, the sampler is split into a seed-independent half
// (PaxsonSpectrumCtx — the (H, n)-keyed expected-power vector, the unit
// genpool caches) and a seed-dependent half (PaxsonFromSpectrumCtx).

// paxsonB3 evaluates B̃(λ; H), the 3-term Taylor-plus-tail
// approximation of Paxson §A to the infinite sum Σ_{j≥1} [(2πj+λ)^d +
// (2πj−λ)^d] with d = −2H−1 that the fGn spectral density needs at
// each frequency: three exact terms, an Euler–Maclaurin tail estimate
// with exponent d′ = −2H, and Paxson's empirical correction factor
// (1.0002 − 0.000134λ) fitted against the 200-term truth.
func paxsonB3(lambda, h float64) float64 {
	d := -2*h - 1
	dd := -2 * h
	sum := 0.0
	for j := 1; j <= 3; j++ {
		twoPiJ := 2 * math.Pi * float64(j)
		sum += math.Pow(twoPiJ+lambda, d) + math.Pow(twoPiJ-lambda, d)
	}
	tail := math.Pow(6*math.Pi+lambda, dd) + math.Pow(6*math.Pi-lambda, dd) +
		math.Pow(8*math.Pi+lambda, dd) + math.Pow(8*math.Pi-lambda, dd)
	b3 := sum + tail/(8*math.Pi*h)
	return (1.0002 - 0.000134*lambda) * (b3 - math.Pow(2, -7.65*h-7.4))
}

// FGNSpectralDensity evaluates Paxson's closed-form approximation to
// the spectral density of fractional Gaussian noise at frequency
// λ ∈ (0, π]:
//
//	f(λ; H) = A(λ, H) · [λ^(−2H−1) + B̃(λ, H)]
//	A(λ, H) = 2·sin(πH)·Γ(2H+1)·(1 − cos λ)
//
// Only the shape matters to the sampler — PaxsonSpectrumCtx normalizes
// the discrete spectrum to unit output variance — so the constant
// convention (this is 2π times the density whose integral over
// (−π, π] is the variance) is harmless.
func FGNSpectralDensity(lambda, h float64) float64 {
	a := 2 * math.Sin(math.Pi*h) * math.Gamma(2*h+1) * (1 - math.Cos(lambda))
	return a * (math.Pow(lambda, -2*h-1) + paxsonB3(lambda, h))
}

// paxsonLen returns the even FFT length backing a Paxson synthesis of n
// points: n itself when even, n+1 when odd (the surplus point is
// dropped after the inverse transform).
func paxsonLen(n int) int {
	if n%2 == 0 {
		return n
	}
	return n + 1
}

// PaxsonSpectrumCtx computes the seed-independent half of the Paxson
// sampler for (H, n): the expected power E|Z_j|² of each Fourier
// coefficient j = 1..m/2 (m = paxsonLen(n); entry j−1 of the result),
// i.e. the fGn spectral density sampled at λ_j = 2πj/m and scaled so
// the synthesized series has unit variance in expectation:
//
//	Var(x_t) = (2·Σ_{j<m/2} p_j + p_{m/2}) / m² = 1.
//
// Normalizing the discrete spectrum directly — rather than trusting a
// continuum constant — makes the unit-variance property exact for
// every finite m, not just asymptotically. The vector depends only on
// (H, n), so it is the natural unit of cross-request caching: one
// vector serves every seed.
//
// For n == 1 no spectrum is needed (the sampler degenerates to a
// single Gaussian draw); the returned slice is empty.
func PaxsonSpectrumCtx(ctx context.Context, n int, h float64) ([]float64, error) {
	if n < 1 {
		return nil, fmt.Errorf("fgn: length must be ≥ 1, got %d", n)
	}
	if !validHurst(h) {
		return nil, fmt.Errorf("fgn: Hurst parameter must be in (0,1), got %v", h)
	}
	if n == 1 {
		return []float64{}, nil
	}
	if ctx.Err() != nil {
		return nil, errs.Cancelled(ctx)
	}
	m := paxsonLen(n)
	half := m / 2
	p := make([]float64, half)
	for j := 1; j <= half; j++ {
		p[j-1] = FGNSpectralDensity(2*math.Pi*float64(j)/float64(m), h)
	}
	if ctx.Err() != nil {
		return nil, errs.Cancelled(ctx)
	}
	// Scale so the inverse transform (which divides by m) yields unit
	// variance: interior frequencies contribute twice (conjugate pair),
	// the Nyquist once.
	var total float64
	for _, v := range p[:half-1] {
		total += 2 * v
	}
	total += p[half-1]
	scale := float64(m) * float64(m) / total
	for i := range p {
		p[i] *= scale
	}
	obs.From(ctx).Count("fgn.paxson.spectrum", 1)
	return p, nil
}

// PaxsonFromSpectrumCtx is the seed-dependent half of the Paxson
// sampler: it randomizes the expected-power vector from
// PaxsonSpectrumCtx (for the same n) with independent Exp(1) power and
// uniform phase draws, imposes Hermitian symmetry, and inverse-FFTs
// into n points of approximate fGn.
//
// The rng consumption order is part of the bitwise-determinism
// contract (pinned by TestPaxsonGolden): for each interior frequency
// j = 1..m/2−1 in order, one ExpFloat64 then one Float64 (phase); for
// the Nyquist frequency one ExpFloat64 then one Float64 (sign).
func PaxsonFromSpectrumCtx(ctx context.Context, n int, p []float64, rng *rand.Rand) ([]float64, error) {
	if n < 1 {
		return nil, fmt.Errorf("fgn: length must be ≥ 1, got %d", n)
	}
	if rng == nil {
		return nil, fmt.Errorf("fgn: generation needs a random source")
	}
	if n == 1 {
		return []float64{rng.NormFloat64()}, nil
	}
	m := paxsonLen(n)
	half := m / 2
	if len(p) != half {
		return nil, fmt.Errorf("fgn: spectrum vector has %d entries, want %d for n=%d", len(p), half, n)
	}
	if ctx.Err() != nil {
		return nil, errs.Cancelled(ctx)
	}

	// Randomized Hermitian spectrum: Z_0 = 0 (zero mean), conjugate
	// mirror for the upper half, real Nyquist with random sign.
	z := make([]complex128, m)
	for j := 1; j < half; j++ {
		amp := math.Sqrt(p[j-1] * rng.ExpFloat64())
		phase := 2 * math.Pi * rng.Float64()
		s, c := math.Sincos(phase)
		re, im := amp*c, amp*s
		z[j] = complex(re, im)
		z[m-j] = complex(re, -im)
	}
	nyq := math.Sqrt(p[half-1] * rng.ExpFloat64())
	if rng.Float64() < 0.5 {
		nyq = -nyq
	}
	z[half] = complex(nyq, 0)

	if ctx.Err() != nil {
		return nil, errs.Cancelled(ctx)
	}
	w := fft.Inverse(z)
	out := make([]float64, n)
	for i := range out {
		out[i] = real(w[i])
	}
	obs.From(ctx).Count("fgn.paxson.points", int64(n))
	return out, nil
}

// PaxsonCtx generates n points of approximate fractional Gaussian
// noise with Hurst parameter h in O(n log n): the composition of
// PaxsonSpectrumCtx and PaxsonFromSpectrumCtx. Cancellation is checked
// between the pipeline stages and surfaces as an error matching
// errs.ErrCancelled.
func PaxsonCtx(ctx context.Context, n int, h float64, rng *rand.Rand) ([]float64, error) {
	scope := obs.From(ctx)
	defer scope.Span("fgn.paxson")()
	p, err := PaxsonSpectrumCtx(ctx, n, h)
	if err != nil {
		return nil, err
	}
	return PaxsonFromSpectrumCtx(ctx, n, p, rng)
}

// Paxson is PaxsonCtx without cancellation, for callers outside a
// request context.
func Paxson(n int, h float64, rng *rand.Rand) ([]float64, error) {
	return PaxsonCtx(context.Background(), n, h, rng)
}
