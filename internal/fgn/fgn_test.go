package fgn

import (
	"math"
	"math/rand/v2"
	"testing"

	"vbr/internal/stats"
)

func approx(t *testing.T, name string, got, want, tol float64) {
	t.Helper()
	diff := math.Abs(got - want)
	if diff > tol && diff > tol*math.Abs(want) {
		t.Errorf("%s = %v, want %v (tol %v)", name, got, want, tol)
	}
}

func TestFarimaACFKnownValues(t *testing.T) {
	// Eq. 6 for d = 0.3 (H = 0.8): ρ_1 = d/(1-d).
	rho, err := FarimaACF(0.8, 3)
	if err != nil {
		t.Fatal(err)
	}
	d := 0.3
	approx(t, "rho0", rho[0], 1, 1e-15)
	approx(t, "rho1", rho[1], d/(1-d), 1e-12)
	approx(t, "rho2", rho[2], d*(1+d)/((1-d)*(2-d)), 1e-12)
	approx(t, "rho3", rho[3], d*(1+d)*(2+d)/((1-d)*(2-d)*(3-d)), 1e-12)
}

func TestFarimaACFHyperbolicDecay(t *testing.T) {
	// Asymptotically ρ_k ~ C k^{2H-2}: the ratio ρ_{2k}/ρ_k → 2^{2H-2}.
	h := 0.8
	rho, err := FarimaACF(h, 20000)
	if err != nil {
		t.Fatal(err)
	}
	ratio := rho[20000] / rho[10000]
	approx(t, "hyperbolic ratio", ratio, math.Pow(2, 2*h-2), 1e-3)
	// LRD: partial sums keep growing (compare to an exponential, which
	// would have converged long before).
	var s1, s2 float64
	for k := 1; k <= 10000; k++ {
		s1 += rho[k]
	}
	for k := 1; k <= 20000; k++ {
		s2 += rho[k]
	}
	if s2 < s1*1.1 {
		t.Errorf("autocorrelation sum not diverging: %v then %v", s1, s2)
	}
}

func TestFarimaACFHalfIsWhite(t *testing.T) {
	// H = 0.5 (d = 0) must give white noise: ρ_k = 0 for k ≥ 1.
	rho, err := FarimaACF(0.5, 10)
	if err != nil {
		t.Fatal(err)
	}
	for k := 1; k <= 10; k++ {
		if math.Abs(rho[k]) > 1e-15 {
			t.Errorf("rho[%d] = %v, want 0", k, rho[k])
		}
	}
}

func TestFGNACFProperties(t *testing.T) {
	rho, err := FGNACF(0.8, 1000)
	if err != nil {
		t.Fatal(err)
	}
	approx(t, "rho0", rho[0], 1, 1e-15)
	// ρ_1 = 2^{2H-1} - 1.
	approx(t, "rho1", rho[1], math.Pow(2, 0.6)-1, 1e-12)
	// Hyperbolic tail ~ H(2H-1)k^{2H-2}.
	k := 1000.0
	want := 0.8 * 0.6 * math.Pow(k-1, -0.4) // evaluate near k
	approx(t, "tail", rho[999], want, 0.01*want)

	// Anti-persistent case H < 0.5 has negative correlations.
	rhoA, _ := FGNACF(0.3, 5)
	if rhoA[1] >= 0 {
		t.Errorf("H=0.3 should give negative lag-1 correlation, got %v", rhoA[1])
	}
}

func TestACFValidation(t *testing.T) {
	if _, err := FarimaACF(0, 5); err == nil {
		t.Error("H=0 should fail")
	}
	if _, err := FarimaACF(1, 5); err == nil {
		t.Error("H=1 should fail")
	}
	if _, err := FarimaACF(0.8, -1); err == nil {
		t.Error("negative lag should fail")
	}
	if _, err := FGNACF(2, 5); err == nil {
		t.Error("H=2 should fail")
	}
	if _, err := Hosking(0, 0.8, nil); err == nil {
		t.Error("n=0 should fail")
	}
	if _, err := Hosking(10, 1.2, rand.New(rand.NewPCG(1, 1))); err == nil {
		t.Error("bad H should fail")
	}
	if _, err := DaviesHarte(0, 0.8, nil); err == nil {
		t.Error("n=0 should fail")
	}
	if _, err := DaviesHarte(10, -0.2, rand.New(rand.NewPCG(1, 1))); err == nil {
		t.Error("bad H should fail")
	}
}

func TestHoskingEmpiricalACFMatchesTarget(t *testing.T) {
	rng := rand.New(rand.NewPCG(42, 1))
	const n = 30000
	x, err := Hosking(n, 0.8, rng)
	if err != nil {
		t.Fatal(err)
	}
	r, err := stats.Autocorrelation(x, 50)
	if err != nil {
		t.Fatal(err)
	}
	want, _ := FarimaACF(0.8, 50)
	for _, k := range []int{1, 2, 5, 10, 25, 50} {
		if math.Abs(r[k]-want[k]) > 0.08 {
			t.Errorf("lag %d: empirical %v, target %v", k, r[k], want[k])
		}
	}
}

func TestHoskingMomentsStandard(t *testing.T) {
	rng := rand.New(rand.NewPCG(7, 7))
	x, err := Hosking(20000, 0.7, rng)
	if err != nil {
		t.Fatal(err)
	}
	m := stats.Mean(x)
	v := stats.Variance(x)
	// LRD series converge slowly; generous tolerances.
	if math.Abs(m) > 0.25 {
		t.Errorf("mean %v not near 0", m)
	}
	approx(t, "variance", v, 1, 0.15)
}

func TestHoskingWhiteNoiseCase(t *testing.T) {
	// H = 0.5 must produce i.i.d. N(0,1).
	rng := rand.New(rand.NewPCG(9, 9))
	x, err := Hosking(20000, 0.5, rng)
	if err != nil {
		t.Fatal(err)
	}
	r, _ := stats.Autocorrelation(x, 5)
	for k := 1; k <= 5; k++ {
		if math.Abs(r[k]) > 0.03 {
			t.Errorf("white noise acf lag %d = %v", k, r[k])
		}
	}
}

func TestDaviesHarteEmpiricalACFMatchesTarget(t *testing.T) {
	rng := rand.New(rand.NewPCG(11, 3))
	const n = 60000
	x, err := DaviesHarte(n, 0.8, rng)
	if err != nil {
		t.Fatal(err)
	}
	if len(x) != n {
		t.Fatalf("length %d", len(x))
	}
	r, err := stats.Autocorrelation(x, 50)
	if err != nil {
		t.Fatal(err)
	}
	want, _ := FGNACF(0.8, 50)
	for _, k := range []int{1, 2, 5, 10, 25, 50} {
		if math.Abs(r[k]-want[k]) > 0.08 {
			t.Errorf("lag %d: empirical %v, target %v", k, r[k], want[k])
		}
	}
	m := stats.Mean(x)
	v := stats.Variance(x)
	if math.Abs(m) > 0.25 {
		t.Errorf("mean %v not near 0", m)
	}
	approx(t, "variance", v, 1, 0.15)
}

func TestDaviesHarteLengthOne(t *testing.T) {
	rng := rand.New(rand.NewPCG(1, 1))
	x, err := DaviesHarte(1, 0.8, rng)
	if err != nil || len(x) != 1 {
		t.Fatalf("n=1 failed: %v %v", x, err)
	}
}

func TestGeneratorsAgreeOnVarianceTime(t *testing.T) {
	// Both generators should show the LRD variance-time signature
	// Var(X^(m)) ≈ m^{2H-2} — slope well above the i.i.d. m^{-1}.
	rng := rand.New(rand.NewPCG(21, 22))
	for name, gen := range map[string]func(int, float64, *rand.Rand) ([]float64, error){
		"hosking":     Hosking,
		"daviesharte": DaviesHarte,
	} {
		x, err := gen(40000, 0.85, rng)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		v1 := stats.Variance(x)
		agg, _ := stats.Aggregate(x, 100)
		v100 := stats.Variance(agg)
		beta := -math.Log(v100/v1) / math.Log(100)
		// For H = 0.85, β = 2-2H = 0.3; i.i.d. would give 1.0.
		if beta > 0.6 {
			t.Errorf("%s: variance-time slope β=%v too steep for H=0.85", name, beta)
		}
		if beta < 0.05 {
			t.Errorf("%s: variance-time slope β=%v implausibly flat", name, beta)
		}
	}
}

func TestHoskingDeterministicForSeed(t *testing.T) {
	a, _ := Hosking(100, 0.8, rand.New(rand.NewPCG(5, 6)))
	b, _ := Hosking(100, 0.8, rand.New(rand.NewPCG(5, 6)))
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed should reproduce the same series")
		}
	}
	c, _ := Hosking(100, 0.8, rand.New(rand.NewPCG(5, 7)))
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds should differ")
	}
}

func TestStandardize(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 100}
	out := Standardize(xs)
	approx(t, "mean", stats.Mean(out), 0, 1e-12)
	approx(t, "variance", stats.Variance(out), 1, 1e-12)
	// Constant series degrades to zeros.
	cs := Standardize([]float64{5, 5, 5})
	for _, v := range cs {
		if v != 0 {
			t.Fatal("constant series should standardize to zeros")
		}
	}
	if got := Standardize(nil); got != nil {
		t.Fatal("nil passes through")
	}
}

func BenchmarkHosking10k(b *testing.B) {
	rng := rand.New(rand.NewPCG(1, 1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Hosking(10000, 0.8, rng); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDaviesHarte10k(b *testing.B) {
	rng := rand.New(rand.NewPCG(1, 1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := DaviesHarte(10000, 0.8, rng); err != nil {
			b.Fatal(err)
		}
	}
}
