package fgn

import (
	"context"
	"math"
	"math/rand/v2"
	"testing"
)

// fnvHash folds a float64 series into an FNV-1a hash over the
// little-endian bit patterns of each value, so a single-bit divergence
// anywhere in the series changes the digest.
func fnvHash(xs []float64) uint64 {
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	h := uint64(offset)
	for _, v := range xs {
		b := math.Float64bits(v)
		for s := 0; s < 64; s += 8 {
			h ^= (b >> s) & 0xff
			h *= prime
		}
	}
	return h
}

// TestHoskingPreTilingGolden pins the exact-Hosking output bit for bit
// against hashes captured at commit 0fdac9e, before the inner dot
// products were blocked into the kernels of kernels.go. Exact Hosking
// is the repository's bitwise reference; any reassociation of its
// floating-point sums — however statistically harmless — fails here.
func TestHoskingPreTilingGolden(t *testing.T) {
	const n = 1024
	cases := []struct {
		h        float64
		want     uint64
		wantLast uint64 // Float64bits of x[n-1], for a readable failure
	}{
		{0.6, 0xa1fe5c1dbf3618a6, 0xbfe8babd3340bd90},
		{0.8, 0xa34e1597d93029f3, 0xbfefb119e1db1943},
		{0.9, 0xdb49ce28287eb4d8, 0xbfe52f2862d90e19},
	}
	for _, c := range cases {
		rng := rand.New(rand.NewPCG(7, 9))
		x, err := Hosking(n, c.h, rng)
		if err != nil {
			t.Fatalf("Hosking(H=%v): %v", c.h, err)
		}
		if got := math.Float64bits(x[n-1]); got != c.wantLast {
			t.Errorf("H=%v: x[%d] bits = %#x, want %#x", c.h, n-1, got, c.wantLast)
		}
		if got := fnvHash(x); got != c.want {
			t.Errorf("H=%v: series hash = %#x, want pre-tiling golden %#x", c.h, got, c.want)
		}
	}
}

// TestHoskingWarmPreTilingGolden pins the coefficient-schedule (warm)
// path against the same pre-tiling capture: HoskingFromCoeffs must
// reproduce the cold recursion's bits, through the blocked kernels.
func TestHoskingWarmPreTilingGolden(t *testing.T) {
	const n = 1024
	coeffs, err := NewHoskingCoeffs(0.8)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewPCG(7, 9))
	x, err := HoskingFromCoeffs(context.Background(), n, coeffs, rng)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := fnvHash(x), uint64(0xa34e1597d93029f3); got != want {
		t.Errorf("warm H=0.8 series hash = %#x, want pre-tiling golden %#x", got, want)
	}
}

// TestHoskingStreamPreTilingGolden pins the streaming path — cold and
// warm, across uneven block boundaries that exercise the kernels' tail
// loops — against the same golden.
func TestHoskingStreamPreTilingGolden(t *testing.T) {
	const n = 1024
	const want = uint64(0xa34e1597d93029f3)
	collect := func(s *HoskingStream) []float64 {
		t.Helper()
		out := make([]float64, 0, n)
		buf := make([]float64, 37) // deliberately not a multiple of 4
		for {
			got, err := s.Next(context.Background(), buf)
			out = append(out, buf[:got]...)
			if err != nil {
				break
			}
		}
		if len(out) != n {
			t.Fatalf("stream produced %d points, want %d", len(out), n)
		}
		return out
	}

	s, err := NewHoskingStream(n, 0.8, rand.New(rand.NewPCG(7, 9)))
	if err != nil {
		t.Fatal(err)
	}
	if got := fnvHash(collect(s)); got != want {
		t.Errorf("cold stream hash = %#x, want %#x", got, want)
	}

	coeffs, err := NewHoskingCoeffs(0.8)
	if err != nil {
		t.Fatal(err)
	}
	if err := coeffs.EnsureCtx(context.Background(), n); err != nil {
		t.Fatal(err)
	}
	ws, err := NewHoskingStreamWithCoeffs(n, coeffs, rand.New(rand.NewPCG(7, 9)))
	if err != nil {
		t.Fatal(err)
	}
	if got := fnvHash(collect(ws)); got != want {
		t.Errorf("warm stream hash = %#x, want %#x", got, want)
	}
}

// TestDotKernelsMatchScalar cross-checks the unrolled kernels against
// the plain scalar loops bit for bit, across lengths that hit every
// unroll remainder (0–3) and both the empty and singleton edges.
func TestDotKernelsMatchScalar(t *testing.T) {
	rng := rand.New(rand.NewPCG(3, 11))
	for n := 0; n <= 67; n++ {
		a := make([]float64, n)
		b := make([]float64, n+3) // b longer than a, as at the call sites
		for i := range a {
			a[i] = rng.NormFloat64()
		}
		for i := range b {
			b[i] = rng.NormFloat64()
		}
		acc := rng.NormFloat64()

		wantAdd, wantSub := acc, acc
		for i, j := 0, len(b)-1; i < n; i, j = i+1, j-1 {
			wantAdd += a[i] * b[j]
			wantSub -= a[i] * b[j]
		}
		if got := dotRevAdd(acc, a, b); math.Float64bits(got) != math.Float64bits(wantAdd) {
			t.Fatalf("dotRevAdd n=%d: %v, scalar %v", n, got, wantAdd)
		}
		if got := dotRevSub(acc, a, b); math.Float64bits(got) != math.Float64bits(wantSub) {
			t.Fatalf("dotRevSub n=%d: %v, scalar %v", n, got, wantSub)
		}
	}
}
