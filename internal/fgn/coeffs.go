package fgn

import (
	"context"
	"fmt"
	"math"
	"math/rand/v2"
	"sync"

	"vbr/internal/errs"
	"vbr/internal/obs"
)

// This file splits the Hosking recursion into its two halves: the
// seed-independent coefficient schedule (the Levinson–Durbin solution of
// Eqs. 6–10, a function of H alone) and the seed-dependent innovation
// recursion (Eqs. 11–12). The split is what makes cross-request caching
// possible: a server handling many /v1/trace requests with the same H
// pays the O(n²) coefficient recursion once and amortizes it over every
// seed, while the warm innovation loop below reproduces the cold path's
// output bit for bit.

// HoskingCoeffs holds the seed-independent part of the Hosking recursion
// for one Hurst parameter: the partial-correlation (reflection)
// coefficients φ_kk and the conditional innovation variances v_k of
// Eqs. 10 and 12, plus the internal state needed to extend the schedule
// to longer horizons without recomputing the prefix.
//
// The schedule is a pure function of H: φ_kk and v_k at step k depend
// only on ρ_0..ρ_k, which depend only on H. A schedule computed for
// n = 171,000 therefore serves any request with the same H and a
// shorter length — the prefix-reuse rule the cache layer relies on.
//
// All methods are safe for concurrent use. Published prefixes (from
// Schedule) are append-only: extension never rewrites an index a reader
// may hold.
type HoskingCoeffs struct {
	h float64

	mu  sync.Mutex
	kk  []float64 // kk[k] = φ_kk (kk[0] unused)
	v   []float64 // v[k] = conditional variance after step k (v[0] = 1)
	rho []float64 // ρ_0..ρ_{n-1}
	phi []float64 // φ_{n-1,·}, the last full coefficient vector
	// Scalar recursion state N_{n-1}, D_{n-1} (Eqs. 7–8).
	nPrev, dPrev float64
}

// NewHoskingCoeffs prepares an empty schedule for Hurst parameter h.
// The schedule initially covers a single point (X_0 needs no
// coefficients); EnsureCtx grows it on demand.
func NewHoskingCoeffs(h float64) (*HoskingCoeffs, error) {
	if !validHurst(h) {
		return nil, fmt.Errorf("fgn: Hurst parameter must be in (0,1), got %v", h)
	}
	return &HoskingCoeffs{
		h:     h,
		kk:    []float64{0},
		v:     []float64{1},
		rho:   []float64{1},
		phi:   []float64{0},
		nPrev: 0,
		dPrev: 1,
	}, nil
}

// H returns the Hurst parameter the schedule was built for.
func (c *HoskingCoeffs) H() float64 { return c.h }

// Len returns how many points the schedule currently covers.
func (c *HoskingCoeffs) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.kk)
}

// Bytes returns the resident size of the schedule's float64 backing
// arrays, for cache byte accounting.
func (c *HoskingCoeffs) Bytes() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return int64(cap(c.kk)+cap(c.v)+cap(c.rho)+cap(c.phi)) * 8
}

// EnsureCtx extends the schedule to cover at least n points, continuing
// the Levinson–Durbin recursion from where it stopped: growing from n₁
// to n₂ costs O(n₂²−n₁²), not O(n₂²). The arithmetic — expression by
// expression, in evaluation order — matches hoskingRun, so the schedule
// entries are bitwise identical to the values the cold path computes
// inline. Cancellation is checked once per outer iteration.
func (c *HoskingCoeffs) EnsureCtx(ctx context.Context, n int) error {
	if n < 1 {
		return fmt.Errorf("fgn: length must be ≥ 1, got %d", n)
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	cur := len(c.kk)
	if cur >= n {
		return nil
	}
	scope := obs.From(ctx)
	defer scope.Span("fgn.hosking.coeffs")()

	// Extend ρ by the stable FarimaACF recurrence (Eq. 6); each ρ_k is
	// derived from ρ_{k-1} alone, so continuing the chain reproduces the
	// exact values a fresh FarimaACF(h, n) call would produce.
	d := c.h - 0.5
	for k := len(c.rho); k < n; k++ {
		kf := float64(k)
		c.rho = append(c.rho, c.rho[k-1]*(kf-1+d)/(kf-d))
	}
	// φ needs room for indices 1..n-1. The growth guard matters when a
	// past cancellation left the lookahead slices longer than the
	// completed coverage: a shorter retry must not compute a negative
	// append count.
	if grow := n - len(c.phi); grow > 0 {
		c.phi = append(c.phi, make([]float64, grow)...)
	}

	for k := cur; k < n; k++ {
		if ctx.Err() != nil {
			// Roll the lookahead slices back to the completed coverage so
			// the schedule is left exactly as a successful EnsureCtx(k)
			// would have left it (len(kk)==len(v)==len(rho)==len(phi)) and
			// a retry of any length — shorter or longer — resumes cleanly.
			c.rho = c.rho[:len(c.kk)]
			c.phi = c.phi[:len(c.kk)]
			return fmt.Errorf("fgn: coefficient schedule interrupted at point %d of %d: %w", k, n, errs.Cancelled(ctx))
		}
		// N_k and D_k (Eqs. 7–8), with c.phi holding φ_{k-1,·}.
		nk := dotRevSub(c.rho[k], c.phi[1:k], c.rho[1:k])
		dk := c.dPrev - c.nPrev*c.nPrev/c.dPrev

		phikk := nk / dk
		updatePhiInPlace(c.phi, k, phikk)

		vk := c.v[k-1] * (1 - phikk*phikk)
		if vk < 0 {
			// Numerically impossible for valid ρ, but guard against
			// catastrophic cancellation at extreme H — as hoskingRun does.
			vk = 0
		}
		c.kk = append(c.kk, phikk)
		c.v = append(c.v, vk)
		c.nPrev, c.dPrev = nk, dk
	}
	scope.Count("fgn.hosking.coeffs.points", int64(n-cur))
	return nil
}

// Schedule returns read-only prefix views of the φ_kk and v schedules
// covering n points. It fails if the schedule has not been extended far
// enough; callers that may be ahead of the cache call EnsureCtx first.
func (c *HoskingCoeffs) Schedule(n int) (kk, v []float64, err error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if len(c.kk) < n {
		return nil, nil, fmt.Errorf("fgn: coefficient schedule covers %d points, need %d", len(c.kk), n)
	}
	return c.kk[:n], c.v[:n], nil
}

// interruptedErr builds the cancellation error for a Hosking loop. It
// lives outside the hot loops so their bodies stay allocation-free:
// the fmt.Errorf runs once per cancelled generation, not once per
// point, and keeping it out of the loop keeps the per-point body small.
func interruptedErr(ctx context.Context, what string, k, n int) error {
	return fmt.Errorf("fgn: %s interrupted at point %d of %d: %w", what, k, n, errs.Cancelled(ctx))
}

// updatePhiInPlace applies the Levinson step φ_{k,j} = φ_{k-1,j} −
// c·φ_{k-1,k-j} for j = 1..k-1 in place and sets φ_{k,k} = c. The
// symmetric pairs (j, k-j) are read before either is written, so the
// results carry exactly the bits of the two-buffer form in hoskingRun.
//vbrlint:hotpath
func updatePhiInPlace(phi []float64, k int, c float64) {
	for i, j := 1, k-1; i < j; i, j = i+1, j-1 {
		a, b := phi[i], phi[j]
		phi[i] = a - c*b
		phi[j] = b - c*a
	}
	if k >= 2 && k%2 == 0 {
		m := k / 2
		a := phi[m]
		phi[m] = a - c*a
	}
	phi[k] = c
}

// HoskingFromCoeffs generates n points of fractional ARIMA(0, d, 0)
// noise like HoskingCtx, but drives the innovation recursion from a
// precomputed coefficient schedule: the O(k) linear-prediction dot
// product against ρ and the two-buffer φ copy disappear, leaving the
// in-place φ update and the conditional-mean sum. For the same rng
// state the output is bitwise identical to HoskingCtx — the schedule
// holds exactly the φ_kk and v_k the cold recursion would compute.
//
// The schedule is extended on demand (a cache hit for a longer trace is
// still a hit for the coefficients already present).
//vbrlint:hotpath
func HoskingFromCoeffs(ctx context.Context, n int, c *HoskingCoeffs, rng *rand.Rand) ([]float64, error) {
	if n < 1 {
		return nil, fmt.Errorf("fgn: length must be ≥ 1, got %d", n)
	}
	if c == nil {
		return nil, fmt.Errorf("fgn: nil coefficient schedule")
	}
	if rng == nil {
		return nil, fmt.Errorf("fgn: generation needs a random source")
	}
	if err := c.EnsureCtx(ctx, n); err != nil {
		return nil, err
	}
	kk, v, err := c.Schedule(n)
	if err != nil {
		return nil, err
	}
	scope := obs.From(ctx)
	defer scope.Span("fgn.hosking.warm")()

	x := make([]float64, n)
	phi := make([]float64, n)
	x[0] = rng.NormFloat64() // X_0 ~ N(0, v_0), v_0 = 1
	for k := 1; k < n; k++ {
		if ctx.Err() != nil {
			return nil, interruptedErr(ctx, "Hosking generation", k, n)
		}
		updatePhiInPlace(phi, k, kk[k])
		// Conditional mean (Eq. 11), summed in the cold path's order.
		m := dotRevAdd(0, phi[1:k+1], x[:k])
		x[k] = m + math.Sqrt(v[k])*rng.NormFloat64()
	}
	scope.Count("fgn.hosking.points", int64(n))
	scope.Progress("fgn.hosking", int64(n), int64(n))
	return x, nil
}

// NewHoskingStreamWithCoeffs prepares an incremental Hosking generation
// like NewHoskingStream, but drawing the linear-prediction coefficients
// from a precomputed schedule, which must already cover n points (the
// cache layer extends it before constructing the stream). Block
// concatenation stays bitwise identical to the batch generators.
func NewHoskingStreamWithCoeffs(n int, c *HoskingCoeffs, rng *rand.Rand) (*HoskingStream, error) {
	if n < 1 {
		return nil, fmt.Errorf("fgn: length must be ≥ 1, got %d", n)
	}
	if c == nil {
		return nil, fmt.Errorf("fgn: nil coefficient schedule")
	}
	if rng == nil {
		return nil, fmt.Errorf("fgn: stream needs a random source")
	}
	kk, v, err := c.Schedule(n)
	if err != nil {
		return nil, err
	}
	return &HoskingStream{
		n: n, h: c.h, rng: rng,
		kk: kk, vs: v,
		x:   make([]float64, n),
		phi: make([]float64, n),
	}, nil
}
