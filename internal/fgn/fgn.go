// Package fgn generates long-range dependent Gaussian processes.
//
// The primary generator is Hosking's exact algorithm for fractional
// ARIMA(0, d, 0) noise, transcribed from Eqs. 6–12 of the paper (after
// Hosking 1984). It is exact — each point is drawn from the true
// conditional distribution given the entire past — but costs O(n²) time,
// which the paper quotes as "10 hours for 171,000 points" on a 1994
// workstation (seconds today).
//
// As the repository's speed ablation the package also implements the
// Davies–Harte circulant-embedding generator for fractional Gaussian
// noise, which is exact in distribution as well but runs in O(n log n).
package fgn

import (
	"context"
	"encoding"
	"fmt"
	"math"
	"math/rand/v2"

	"vbr/internal/errs"
	"vbr/internal/fft"
	"vbr/internal/obs"
)

// validHurst reports whether h is a legal Hurst parameter for a
// long-range-dependent (or at least stationary) generator.
func validHurst(h float64) bool { return h > 0 && h < 1 }

// FarimaACF returns the autocorrelation function ρ_0..ρ_maxLag of the
// fractional ARIMA(0, d, 0) process with d = H - 1/2 (Eq. 6):
//
//	ρ_k = Π_{i=1..k} (i - 1 + d) / (i - d),
//
// evaluated by the stable recurrence ρ_k = ρ_{k-1}·(k-1+d)/(k-d).
//
//vbrlint:ignore ctxcheck bounded O(maxLag) arithmetic recurrence with no blocking calls
func FarimaACF(h float64, maxLag int) ([]float64, error) {
	if !validHurst(h) {
		return nil, fmt.Errorf("fgn: Hurst parameter must be in (0,1), got %v", h)
	}
	if maxLag < 0 {
		return nil, fmt.Errorf("fgn: maxLag must be ≥ 0, got %d", maxLag)
	}
	d := h - 0.5
	rho := make([]float64, maxLag+1)
	rho[0] = 1
	for k := 1; k <= maxLag; k++ {
		kf := float64(k)
		rho[k] = rho[k-1] * (kf - 1 + d) / (kf - d)
	}
	return rho, nil
}

// FGNACF returns the autocovariance-derived autocorrelation of fractional
// Gaussian noise with Hurst parameter H:
//
//	ρ_k = ½(|k+1|^{2H} − 2|k|^{2H} + |k−1|^{2H}).
//
//vbrlint:ignore ctxcheck bounded O(maxLag) arithmetic recurrence with no blocking calls
func FGNACF(h float64, maxLag int) ([]float64, error) {
	if !validHurst(h) {
		return nil, fmt.Errorf("fgn: Hurst parameter must be in (0,1), got %v", h)
	}
	if maxLag < 0 {
		return nil, fmt.Errorf("fgn: maxLag must be ≥ 0, got %d", maxLag)
	}
	rho := make([]float64, maxLag+1)
	h2 := 2 * h
	for k := 0; k <= maxLag; k++ {
		kf := float64(k)
		rho[k] = 0.5 * (math.Pow(kf+1, h2) - 2*math.Pow(kf, h2) + math.Pow(math.Abs(kf-1), h2))
	}
	return rho, nil
}

// Hosking generates n points of zero-mean, unit-variance fractional
// ARIMA(0, d, 0) noise with d = H - 1/2 using the exact conditional
// recursion of Eqs. 7–12:
//
//	N_k = ρ_k − Σ_{j=1}^{k−1} φ_{k−1,j} ρ_{k−j}
//	D_k = D_{k−1} − N_{k−1}²/D_{k−1}
//	φ_kk = N_k/D_k
//	φ_kj = φ_{k−1,j} − φ_kk φ_{k−1,k−j}
//	m_k  = Σ φ_kj X_{k−j},   v_k = (1 − φ_kk²) v_{k−1}
//
// with X_k ~ N(m_k, v_k). The recursion is the Levinson–Durbin solution
// of the Yule–Walker system, so the output has exactly the target
// autocorrelation structure.
func Hosking(n int, h float64, rng *rand.Rand) ([]float64, error) {
	x, _, err := hoskingRun(context.Background(), n, h, rng, nil, nil, 0, nil)
	return x, err
}

// HoskingCtx is Hosking with cooperative cancellation: the O(n²)
// recursion checks ctx once per outer iteration and returns an error
// matching errs.ErrCancelled as soon as the context is done.
func HoskingCtx(ctx context.Context, n int, h float64, rng *rand.Rand) ([]float64, error) {
	x, _, err := hoskingRun(ctx, n, h, rng, nil, nil, 0, nil)
	return x, err
}

// MarshalableSource is a random source whose internal state can be
// captured and restored byte-exactly, as *math/rand/v2.PCG can. It is
// what makes an interrupted generation resumable with bitwise-identical
// output.
type MarshalableSource interface {
	rand.Source
	encoding.BinaryMarshaler
	encoding.BinaryUnmarshaler
}

// HoskingState is a snapshot of the Hosking recursion taken at the top
// of outer iteration K: the generated prefix X[0..K-1], the partial
// linear-prediction coefficients φ_{K-1,·}, the scalar recursion state
// (Eqs. 7–12), and the serialized random-source position. Together with
// (N, H) — the ρ sequence is recomputed deterministically — it resumes
// the generation to produce output bitwise identical to an uninterrupted
// run.
type HoskingState struct {
	N       int
	H       float64
	K       int       // next point to generate, 1 ≤ K ≤ N
	V       float64   // conditional variance v_{K-1}
	NPrev   float64   // N_{K-1}
	DPrev   float64   // D_{K-1}
	X       []float64 // generated prefix, length K
	PhiPrev []float64 // φ_{K-1,j}, j = 1..K-1 (index 0 unused), length K
	RNG     []byte    // marshaled MarshalableSource state
}

// HoskingResumable generates like HoskingCtx but from a marshalable
// random source, so an interrupted run can be checkpointed and resumed.
// When resume is nil a fresh generation starts from src's current state;
// otherwise src is restored from the snapshot and the recursion
// continues at point resume.K. On cancellation it returns a non-nil
// *HoskingState alongside an error matching errs.ErrCancelled; on
// success the state is nil and x holds all n points.
func HoskingResumable(ctx context.Context, n int, h float64, src MarshalableSource, resume *HoskingState) ([]float64, *HoskingState, error) {
	return HoskingCheckpointed(ctx, n, h, src, resume, 0, nil)
}

// SnapshotFunc persists a periodic recursion snapshot. A non-nil error
// aborts the generation: a run that believes it is checkpointed but
// cannot actually write checkpoints should fail loudly, not complete
// unprotected.
type SnapshotFunc func(*HoskingState) error

// HoskingCheckpointed is HoskingResumable with periodic checkpointing:
// when save is non-nil and every is positive, a snapshot is taken and
// handed to save after each block of every points, so a crashed (not
// just signalled) run loses at most one block of work. Snapshots are
// taken at the top of an outer iteration, before the iteration consumes
// randomness, which keeps resumed output bitwise identical.
func HoskingCheckpointed(ctx context.Context, n int, h float64, src MarshalableSource, resume *HoskingState, every int, save SnapshotFunc) ([]float64, *HoskingState, error) {
	if src == nil {
		return nil, nil, fmt.Errorf("fgn: resumable generation needs a marshalable source")
	}
	return hoskingRun(ctx, n, h, rand.New(src), src, resume, every, save)
}

// progressEvery is the outer-iteration stride at which the Hosking
// recursion reports progress and flushes its point counter.
const progressEvery = 4096

// hoskingRun is the shared recursion behind Hosking, HoskingCtx,
// HoskingResumable and HoskingCheckpointed. src may be nil (no
// checkpointing); resume may be nil (fresh start, requires src to be at
// its initial position for reproducibility across save/restore cycles);
// save with a positive every enables periodic snapshots.
func hoskingRun(ctx context.Context, n int, h float64, rng *rand.Rand, src MarshalableSource, resume *HoskingState, every int, save SnapshotFunc) ([]float64, *HoskingState, error) {
	if n < 1 {
		return nil, nil, fmt.Errorf("fgn: length must be ≥ 1, got %d", n)
	}
	if !validHurst(h) {
		return nil, nil, fmt.Errorf("fgn: Hurst parameter must be in (0,1), got %v", h)
	}
	rho, err := FarimaACF(h, n)
	if err != nil {
		return nil, nil, err
	}
	scope := obs.From(ctx)
	defer scope.Span("fgn.hosking")()

	x := make([]float64, n)
	phi := make([]float64, n)     // φ_{k,·}, reused in place
	phiPrev := make([]float64, n) // φ_{k-1,·}
	v := 1.0
	nPrev, dPrev := 0.0, 1.0
	k0 := 1

	if resume != nil {
		if err := validateState(resume, n, h, src); err != nil {
			return nil, nil, err
		}
		copy(x, resume.X)
		copy(phiPrev, resume.PhiPrev)
		v, nPrev, dPrev = resume.V, resume.NPrev, resume.DPrev
		k0 = resume.K
	} else {
		x[0] = rng.NormFloat64() // X_0 ~ N(0, v_0), v_0 = 1
	}

	// fresh is the point X_0 drawn outside the recursion on a fresh
	// start.
	fresh := 0
	if resume == nil {
		fresh = 1
	}

	// Progress flushes and periodic snapshots fire when k reaches a
	// precomputed mark rather than via per-iteration modulo checks:
	// inlining those checks into the loop body measurably slowed the
	// inner recursion loops (~15% on n=10k), so the hot loop pays one
	// integer compare and the side work lives in hoskingTicker.fire.
	t := hoskingTicker{scope: scope, n: n, h: h, k0: k0, fresh: fresh, every: every, save: save, src: src}
	next := t.firstMark()

	for k := k0; k < n; k++ {
		if ctx.Err() != nil {
			scope.Count("fgn.hosking.points", int64(k-k0+fresh-t.counted))
			var st *HoskingState
			if src != nil {
				st = snapshotState(n, h, k, v, nPrev, dPrev, x, phiPrev, src)
				scope.Count("checkpoint.snapshots", 1)
			}
			return nil, st, fmt.Errorf("fgn: Hosking generation interrupted at point %d of %d: %w", k, n, errs.Cancelled(ctx))
		}
		if k == next {
			var st *HoskingState
			next, st, err = t.fire(k, v, nPrev, dPrev, x, phiPrev)
			if err != nil {
				return nil, st, err
			}
		}

		// N_k and D_k (Eqs. 7–8); dotRevSub walks j = 1..k-1 in order.
		nk := dotRevSub(rho[k], phiPrev[1:k], rho[1:k])
		dk := dPrev - nPrev*nPrev/dPrev

		phikk := nk / dk
		phi[k] = phikk
		for j := 1; j < k; j++ {
			phi[j] = phiPrev[j] - phikk*phiPrev[k-j]
		}

		// Conditional mean and variance (Eqs. 11–12).
		m := dotRevAdd(0, phi[1:k+1], x[:k])
		v *= 1 - phikk*phikk
		if v < 0 {
			// Numerically impossible for valid ρ, but guard against
			// catastrophic cancellation at extreme H.
			v = 0
		}
		x[k] = m + math.Sqrt(v)*rng.NormFloat64()

		copy(phiPrev[1:k+1], phi[1:k+1])
		nPrev, dPrev = nk, dk
	}
	scope.Count("fgn.hosking.points", int64(n-k0+fresh-t.counted))
	scope.Progress("fgn.hosking", int64(n), int64(n))
	return x, nil, nil
}

// hoskingTicker schedules the recursion's periodic side work —
// progress/counter flushes every progressEvery points and snapshots
// every `every` points — as precomputed marks, so hoskingRun's hot
// loop tests a single integer equality per iteration and the cold
// paths stay out of its body.
type hoskingTicker struct {
	scope   *obs.Scope
	n       int
	h       float64
	k0      int
	fresh   int
	counted int // points already flushed into fgn.hosking.points
	every   int
	save    SnapshotFunc
	src     MarshalableSource

	nextProg int
	nextSnap int
}

// firstMark initialises the progress and snapshot marks and returns
// the first point index at which fire must run. Marks at or beyond n
// simply never fire.
func (t *hoskingTicker) firstMark() int {
	t.nextProg = t.k0 + progressEvery
	t.nextSnap = t.n // snapshots disabled: mark is unreachable
	if t.save != nil && t.every > 0 {
		t.nextSnap = t.k0 + t.every
	}
	return min(t.nextProg, t.nextSnap)
}

// fire runs the side work due at point k — kept out of hoskingRun's
// loop body deliberately — and returns the next mark. On a failed
// snapshot save it returns the snapshot alongside the error so the
// caller can hand both to its caller.
//
//go:noinline
func (t *hoskingTicker) fire(k int, v, nPrev, dPrev float64, x, phiPrev []float64) (int, *HoskingState, error) {
	if k == t.nextProg {
		done := k - t.k0 + t.fresh
		t.scope.Count("fgn.hosking.points", int64(done-t.counted))
		t.counted = done
		t.scope.Progress("fgn.hosking", int64(k), int64(t.n))
		t.nextProg += progressEvery
	}
	if k == t.nextSnap {
		st := snapshotState(t.n, t.h, k, v, nPrev, dPrev, x, phiPrev, t.src)
		t.scope.Count("checkpoint.snapshots", 1)
		if err := t.save(st); err != nil {
			return 0, st, fmt.Errorf("fgn: saving periodic snapshot at point %d of %d: %w", k, t.n, err)
		}
		t.nextSnap += t.every
	}
	return min(t.nextProg, t.nextSnap), nil, nil
}

// snapshotState copies the live recursion state into an owned snapshot.
func snapshotState(n int, h float64, k int, v, nPrev, dPrev float64, x, phiPrev []float64, src MarshalableSource) *HoskingState {
	st := &HoskingState{
		N: n, H: h, K: k,
		V: v, NPrev: nPrev, DPrev: dPrev,
		X:       append([]float64(nil), x[:k]...),
		PhiPrev: append([]float64(nil), phiPrev[:k]...),
	}
	if b, err := src.MarshalBinary(); err == nil {
		st.RNG = b
	}
	return st
}

// validateState checks a resume snapshot against the requested run and
// restores the random source from it.
func validateState(st *HoskingState, n int, h float64, src MarshalableSource) error {
	//vbrlint:ignore floateq resuming a checkpoint requires bitwise-identical H, not approximate equality
	if st.N != n || st.H != h {
		return fmt.Errorf("fgn: snapshot is for n=%d H=%v, run wants n=%d H=%v: %w",
			st.N, st.H, n, h, errs.ErrCheckpointMismatch)
	}
	if st.K < 1 || st.K > n || len(st.X) != st.K || len(st.PhiPrev) != st.K {
		return fmt.Errorf("fgn: snapshot state inconsistent (K=%d, |X|=%d, |φ|=%d): %w",
			st.K, len(st.X), len(st.PhiPrev), errs.ErrCheckpointCorrupt)
	}
	if len(st.RNG) == 0 {
		return fmt.Errorf("fgn: snapshot carries no random-source state: %w", errs.ErrCheckpointCorrupt)
	}
	if src == nil {
		return fmt.Errorf("fgn: resuming needs a marshalable source")
	}
	if err := src.UnmarshalBinary(st.RNG); err != nil {
		return fmt.Errorf("fgn: restoring random source: %w: %w", errs.ErrCheckpointCorrupt, err)
	}
	return nil
}

// DaviesHarte generates n points of zero-mean, unit-variance fractional
// Gaussian noise with Hurst parameter H by circulant embedding: the
// autocovariance sequence is embedded in a circulant matrix of size 2n
// whose eigenvalues (the FFT of the first row) are provably non-negative
// for FGN, giving an exact O(n log n) sampler.
func DaviesHarte(n int, h float64, rng *rand.Rand) ([]float64, error) {
	return DaviesHarteCtx(context.Background(), n, h, rng)
}

// DaviesHarteCtx is DaviesHarte with cooperative cancellation, checked
// between the pipeline stages (ACF build, eigenvalue FFT, spectrum
// randomization, synthesis FFT). It is the composition of the two
// halves below: the seed-independent eigenvalue setup (cacheable across
// requests, keyed by (H, n)) and the seed-dependent synthesis.
func DaviesHarteCtx(ctx context.Context, n int, h float64, rng *rand.Rand) ([]float64, error) {
	scope := obs.From(ctx)
	defer scope.Span("fgn.daviesharte")()
	lambda, err := DaviesHarteEigenCtx(ctx, n, h)
	if err != nil {
		return nil, err
	}
	return DaviesHarteFromEigenCtx(ctx, n, lambda, rng)
}

// DaviesHarteEigenCtx computes the seed-independent half of the
// circulant embedding for (H, n): the eigenvalues of the 2n circulant
// matrix built from the FGN autocovariance (the FFT of its first row),
// verified non-negative and clamped at numerical zero. The result
// depends only on (H, n), so it is the natural unit of cross-request
// caching: one vector serves every seed.
//
// For n == 1 the sampler needs no embedding; the returned slice is
// empty and DaviesHarteFromEigenCtx ignores it.
func DaviesHarteEigenCtx(ctx context.Context, n int, h float64) ([]float64, error) {
	if n < 1 {
		return nil, fmt.Errorf("fgn: length must be ≥ 1, got %d", n)
	}
	if !validHurst(h) {
		return nil, fmt.Errorf("fgn: Hurst parameter must be in (0,1), got %v", h)
	}
	if n == 1 {
		return []float64{}, nil
	}
	if ctx.Err() != nil {
		return nil, errs.Cancelled(ctx)
	}
	// First row of the circulant: γ_0..γ_n, γ_{n-1}..γ_1.
	rho, err := FGNACF(h, n)
	if err != nil {
		return nil, err
	}
	m := 2 * n
	row := make([]complex128, m)
	for k := 0; k <= n; k++ {
		if k < n {
			row[k] = complex(rho[k], 0)
		} else {
			row[n] = complex(rho[n-1], 0) // γ_n ≈ γ_{n-1}; exact embedding uses γ_n
		}
	}
	// Use the exact γ_n value.
	h2 := 2 * h
	gn := 0.5 * (math.Pow(float64(n)+1, h2) - 2*math.Pow(float64(n), h2) + math.Pow(float64(n)-1, h2))
	row[n] = complex(gn, 0)
	for k := 1; k < n; k++ {
		row[m-k] = complex(rho[k], 0)
	}

	if ctx.Err() != nil {
		return nil, errs.Cancelled(ctx)
	}
	fl := fft.Forward(row)
	// Eigenvalues must be (numerically) non-negative. Only the real
	// parts matter downstream (the row is symmetric, so the spectrum is
	// real up to round-off); keeping float64 halves the cache footprint.
	lambda := make([]float64, m)
	for i := range fl {
		lambda[i] = real(fl[i])
		if lambda[i] < 0 {
			if lambda[i] < -1e-8*float64(m) {
				return nil, fmt.Errorf("fgn: circulant embedding not non-negative definite (λ=%v) at H=%v", lambda[i], h)
			}
			lambda[i] = 0
		}
	}
	obs.From(ctx).Count("fgn.daviesharte.eigen", 1)
	return lambda, nil
}

// DaviesHarteFromEigenCtx is the seed-dependent half of the Davies–Harte
// sampler: it randomizes the spectrum with Hermitian symmetry and
// inverse-transforms it into n points of FGN. lambda must come from
// DaviesHarteEigenCtx for the same n; for the same rng state the output
// is bitwise identical to DaviesHarteCtx.
func DaviesHarteFromEigenCtx(ctx context.Context, n int, lambda []float64, rng *rand.Rand) ([]float64, error) {
	if n < 1 {
		return nil, fmt.Errorf("fgn: length must be ≥ 1, got %d", n)
	}
	if rng == nil {
		return nil, fmt.Errorf("fgn: generation needs a random source")
	}
	if n == 1 {
		return []float64{rng.NormFloat64()}, nil
	}
	m := 2 * n
	if len(lambda) != m {
		return nil, fmt.Errorf("fgn: eigenvalue vector has %d entries, want %d for n=%d", len(lambda), m, n)
	}
	if ctx.Err() != nil {
		return nil, errs.Cancelled(ctx)
	}

	// Build the randomized spectrum with the Hermitian symmetry that makes
	// the inverse FFT real-valued.
	w := make([]complex128, m)
	scale := 1 / math.Sqrt(float64(m))
	w[0] = complex(math.Sqrt(lambda[0])*rng.NormFloat64()*scale, 0)
	w[n] = complex(math.Sqrt(lambda[n])*rng.NormFloat64()*scale, 0)
	for k := 1; k < n; k++ {
		sd := math.Sqrt(lambda[k] / 2)
		re := sd * rng.NormFloat64() * scale
		im := sd * rng.NormFloat64() * scale
		w[k] = complex(re, im)
		w[m-k] = complex(re, -im)
	}

	if ctx.Err() != nil {
		return nil, errs.Cancelled(ctx)
	}
	z := fft.Forward(w)
	out := make([]float64, n)
	for i := range out {
		out[i] = real(z[i])
	}
	obs.From(ctx).Count("fgn.daviesharte.points", int64(n))
	return out, nil
}

// Standardize rescales xs in place to zero mean and unit variance and
// returns it. Generators are exact in distribution but any finite sample
// has sampling error; the marginal-transform step of the model (Eq. 13)
// assumes an exactly standard Gaussian input, so callers standardize
// before transforming.
func Standardize(xs []float64) []float64 {
	n := len(xs)
	if n == 0 {
		return xs
	}
	var mean float64
	for _, v := range xs {
		mean += v
	}
	mean /= float64(n)
	var ss float64
	for _, v := range xs {
		d := v - mean
		ss += d * d
	}
	sd := math.Sqrt(ss / float64(n))
	//vbrlint:ignore floateq exact-zero guard: only a literally constant series has sd == 0, and any positive sd must divide
	if sd == 0 {
		for i := range xs {
			xs[i] = 0
		}
		return xs
	}
	for i := range xs {
		xs[i] = (xs[i] - mean) / sd
	}
	return xs
}
