// Package fgn generates long-range dependent Gaussian processes.
//
// The primary generator is Hosking's exact algorithm for fractional
// ARIMA(0, d, 0) noise, transcribed from Eqs. 6–12 of the paper (after
// Hosking 1984). It is exact — each point is drawn from the true
// conditional distribution given the entire past — but costs O(n²) time,
// which the paper quotes as "10 hours for 171,000 points" on a 1994
// workstation (seconds today).
//
// As the repository's speed ablation the package also implements the
// Davies–Harte circulant-embedding generator for fractional Gaussian
// noise, which is exact in distribution as well but runs in O(n log n).
package fgn

import (
	"fmt"
	"math"
	"math/rand/v2"

	"vbr/internal/fft"
)

// validHurst reports whether h is a legal Hurst parameter for a
// long-range-dependent (or at least stationary) generator.
func validHurst(h float64) bool { return h > 0 && h < 1 }

// FarimaACF returns the autocorrelation function ρ_0..ρ_maxLag of the
// fractional ARIMA(0, d, 0) process with d = H - 1/2 (Eq. 6):
//
//	ρ_k = Π_{i=1..k} (i - 1 + d) / (i - d),
//
// evaluated by the stable recurrence ρ_k = ρ_{k-1}·(k-1+d)/(k-d).
func FarimaACF(h float64, maxLag int) ([]float64, error) {
	if !validHurst(h) {
		return nil, fmt.Errorf("fgn: Hurst parameter must be in (0,1), got %v", h)
	}
	if maxLag < 0 {
		return nil, fmt.Errorf("fgn: maxLag must be ≥ 0, got %d", maxLag)
	}
	d := h - 0.5
	rho := make([]float64, maxLag+1)
	rho[0] = 1
	for k := 1; k <= maxLag; k++ {
		kf := float64(k)
		rho[k] = rho[k-1] * (kf - 1 + d) / (kf - d)
	}
	return rho, nil
}

// FGNACF returns the autocovariance-derived autocorrelation of fractional
// Gaussian noise with Hurst parameter H:
//
//	ρ_k = ½(|k+1|^{2H} − 2|k|^{2H} + |k−1|^{2H}).
func FGNACF(h float64, maxLag int) ([]float64, error) {
	if !validHurst(h) {
		return nil, fmt.Errorf("fgn: Hurst parameter must be in (0,1), got %v", h)
	}
	if maxLag < 0 {
		return nil, fmt.Errorf("fgn: maxLag must be ≥ 0, got %d", maxLag)
	}
	rho := make([]float64, maxLag+1)
	h2 := 2 * h
	for k := 0; k <= maxLag; k++ {
		kf := float64(k)
		rho[k] = 0.5 * (math.Pow(kf+1, h2) - 2*math.Pow(kf, h2) + math.Pow(math.Abs(kf-1), h2))
	}
	return rho, nil
}

// Hosking generates n points of zero-mean, unit-variance fractional
// ARIMA(0, d, 0) noise with d = H - 1/2 using the exact conditional
// recursion of Eqs. 7–12:
//
//	N_k = ρ_k − Σ_{j=1}^{k−1} φ_{k−1,j} ρ_{k−j}
//	D_k = D_{k−1} − N_{k−1}²/D_{k−1}
//	φ_kk = N_k/D_k
//	φ_kj = φ_{k−1,j} − φ_kk φ_{k−1,k−j}
//	m_k  = Σ φ_kj X_{k−j},   v_k = (1 − φ_kk²) v_{k−1}
//
// with X_k ~ N(m_k, v_k). The recursion is the Levinson–Durbin solution
// of the Yule–Walker system, so the output has exactly the target
// autocorrelation structure.
func Hosking(n int, h float64, rng *rand.Rand) ([]float64, error) {
	if n < 1 {
		return nil, fmt.Errorf("fgn: length must be ≥ 1, got %d", n)
	}
	if !validHurst(h) {
		return nil, fmt.Errorf("fgn: Hurst parameter must be in (0,1), got %v", h)
	}
	rho, err := FarimaACF(h, n)
	if err != nil {
		return nil, err
	}

	x := make([]float64, n)
	x[0] = rng.NormFloat64() // X_0 ~ N(0, v_0), v_0 = 1

	phi := make([]float64, n)     // φ_{k,·}, reused in place
	phiPrev := make([]float64, n) // φ_{k-1,·}
	v := 1.0
	nPrev, dPrev := 0.0, 1.0

	for k := 1; k < n; k++ {
		// N_k and D_k (Eqs. 7–8).
		nk := rho[k]
		for j := 1; j < k; j++ {
			nk -= phiPrev[j] * rho[k-j]
		}
		dk := dPrev - nPrev*nPrev/dPrev

		phikk := nk / dk
		phi[k] = phikk
		for j := 1; j < k; j++ {
			phi[j] = phiPrev[j] - phikk*phiPrev[k-j]
		}

		// Conditional mean and variance (Eqs. 11–12).
		var m float64
		for j := 1; j <= k; j++ {
			m += phi[j] * x[k-j]
		}
		v *= 1 - phikk*phikk
		if v < 0 {
			// Numerically impossible for valid ρ, but guard against
			// catastrophic cancellation at extreme H.
			v = 0
		}
		x[k] = m + math.Sqrt(v)*rng.NormFloat64()

		copy(phiPrev[1:k+1], phi[1:k+1])
		nPrev, dPrev = nk, dk
	}
	return x, nil
}

// DaviesHarte generates n points of zero-mean, unit-variance fractional
// Gaussian noise with Hurst parameter H by circulant embedding: the
// autocovariance sequence is embedded in a circulant matrix of size 2n
// whose eigenvalues (the FFT of the first row) are provably non-negative
// for FGN, giving an exact O(n log n) sampler.
func DaviesHarte(n int, h float64, rng *rand.Rand) ([]float64, error) {
	if n < 1 {
		return nil, fmt.Errorf("fgn: length must be ≥ 1, got %d", n)
	}
	if !validHurst(h) {
		return nil, fmt.Errorf("fgn: Hurst parameter must be in (0,1), got %v", h)
	}
	if n == 1 {
		return []float64{rng.NormFloat64()}, nil
	}

	// First row of the circulant: γ_0..γ_n, γ_{n-1}..γ_1.
	rho, err := FGNACF(h, n)
	if err != nil {
		return nil, err
	}
	m := 2 * n
	row := make([]complex128, m)
	for k := 0; k <= n; k++ {
		if k < n {
			row[k] = complex(rho[k], 0)
		} else {
			row[n] = complex(rho[n-1], 0) // γ_n ≈ γ_{n-1}; exact embedding uses γ_n
		}
	}
	// Use the exact γ_n value.
	h2 := 2 * h
	gn := 0.5 * (math.Pow(float64(n)+1, h2) - 2*math.Pow(float64(n), h2) + math.Pow(float64(n)-1, h2))
	row[n] = complex(gn, 0)
	for k := 1; k < n; k++ {
		row[m-k] = complex(rho[k], 0)
	}

	lambda := fft.Forward(row)
	// Eigenvalues must be (numerically) non-negative.
	for i := range lambda {
		if real(lambda[i]) < 0 {
			if real(lambda[i]) < -1e-8*float64(m) {
				return nil, fmt.Errorf("fgn: circulant embedding not non-negative definite (λ=%v) at H=%v", real(lambda[i]), h)
			}
			lambda[i] = 0
		}
	}

	// Build the randomized spectrum with the Hermitian symmetry that makes
	// the inverse FFT real-valued.
	w := make([]complex128, m)
	scale := 1 / math.Sqrt(float64(m))
	w[0] = complex(math.Sqrt(real(lambda[0]))*rng.NormFloat64()*scale, 0)
	w[n] = complex(math.Sqrt(real(lambda[n]))*rng.NormFloat64()*scale, 0)
	for k := 1; k < n; k++ {
		sd := math.Sqrt(real(lambda[k]) / 2)
		re := sd * rng.NormFloat64() * scale
		im := sd * rng.NormFloat64() * scale
		w[k] = complex(re, im)
		w[m-k] = complex(re, -im)
	}

	z := fft.Forward(w)
	out := make([]float64, n)
	for i := range out {
		out[i] = real(z[i])
	}
	return out, nil
}

// Standardize rescales xs in place to zero mean and unit variance and
// returns it. Generators are exact in distribution but any finite sample
// has sampling error; the marginal-transform step of the model (Eq. 13)
// assumes an exactly standard Gaussian input, so callers standardize
// before transforming.
func Standardize(xs []float64) []float64 {
	n := len(xs)
	if n == 0 {
		return xs
	}
	var mean float64
	for _, v := range xs {
		mean += v
	}
	mean /= float64(n)
	var ss float64
	for _, v := range xs {
		d := v - mean
		ss += d * d
	}
	sd := math.Sqrt(ss / float64(n))
	if sd == 0 {
		for i := range xs {
			xs[i] = 0
		}
		return xs
	}
	for i := range xs {
		xs[i] = (xs[i] - mean) / sd
	}
	return xs
}
