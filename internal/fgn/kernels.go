package fgn

// This file holds the blocked inner kernels of the Hosking recursion.
// Both hot loops of the recursion are reversed dot products — the
// linear-prediction term Σ φ_{k-1,j}·ρ_{k-j} of Eq. 7 and the
// conditional mean Σ φ_{k,j}·X_{k-j} of Eq. 11 — walking one operand
// forward and the other backward. The kernels unroll that walk into
// 4-wide blocks while keeping a SINGLE accumulator updated strictly
// left to right: every floating-point operation happens in exactly the
// order the scalar loop performs it, so the blocked form is bitwise
// identical to the original (pinned by TestHoskingPreTilingGolden).
// Multi-accumulator or pairwise variants would be faster still but
// reassociate the sum and change the bits; exact Hosking is the
// repository's bitwise reference, so rounding order is part of its
// contract.

// dotRevAdd returns acc after folding in a[i]·b[len(b)-1-i] for
// i = 0..len(a)-1, i.e. acc + a·reverse(b) accumulated sequentially.
// Requires len(a) ≤ len(b); the tail of b beyond len(a) reversed
// positions is untouched.
//
//vbrlint:hotpath
func dotRevAdd(acc float64, a, b []float64) float64 {
	n := len(a)
	j := len(b) - 1
	i := 0
	for ; i+4 <= n; i, j = i+4, j-4 {
		aa := a[i : i+4 : i+4]
		bb := b[j-3 : j+1 : j+1]
		acc += aa[0] * bb[3]
		acc += aa[1] * bb[2]
		acc += aa[2] * bb[1]
		acc += aa[3] * bb[0]
	}
	for ; i < n; i, j = i+1, j-1 {
		acc += a[i] * b[j]
	}
	return acc
}

// dotRevSub is dotRevAdd with subtraction: acc − Σ a[i]·b[len(b)-1-i],
// subtracted term by term in order (acc −= x is the same IEEE operation
// sequence as the scalar loop's, not a subtract-of-sum, which would
// round differently). Requires len(a) ≤ len(b).
//
//vbrlint:hotpath
func dotRevSub(acc float64, a, b []float64) float64 {
	n := len(a)
	j := len(b) - 1
	i := 0
	for ; i+4 <= n; i, j = i+4, j-4 {
		aa := a[i : i+4 : i+4]
		bb := b[j-3 : j+1 : j+1]
		acc -= aa[0] * bb[3]
		acc -= aa[1] * bb[2]
		acc -= aa[2] * bb[1]
		acc -= aa[3] * bb[0]
	}
	for ; i < n; i, j = i+1, j-1 {
		acc -= a[i] * b[j]
	}
	return acc
}
