package queue

import (
	"math"
	"math/rand/v2"
	"testing"
	"testing/quick"
)

func constWorkload(n int, bytes, interval float64) Workload {
	b := make([]float64, n)
	for i := range b {
		b[i] = bytes
	}
	return Workload{Bytes: b, Interval: interval}
}

func TestWorkloadValidate(t *testing.T) {
	if err := (Workload{}).Validate(); err == nil {
		t.Error("empty workload should fail")
	}
	if err := (Workload{Bytes: []float64{1}, Interval: 0}).Validate(); err == nil {
		t.Error("zero interval should fail")
	}
	if err := (Workload{Bytes: []float64{-1}, Interval: 1}).Validate(); err == nil {
		t.Error("negative bytes should fail")
	}
	if err := (Workload{Bytes: []float64{math.NaN()}, Interval: 1}).Validate(); err == nil {
		t.Error("NaN should fail")
	}
	w := constWorkload(10, 100, 0.5)
	if err := w.Validate(); err != nil {
		t.Fatal(err)
	}
	if w.TotalBytes() != 1000 {
		t.Errorf("total %v", w.TotalBytes())
	}
	// 100 bytes per 0.5 s = 1600 bps.
	if math.Abs(w.MeanRate()-1600) > 1e-9 {
		t.Errorf("mean rate %v", w.MeanRate())
	}
	if math.Abs(w.PeakRate()-1600) > 1e-9 {
		t.Errorf("peak rate %v", w.PeakRate())
	}
}

func TestSimulateNoLossAtSufficientCapacity(t *testing.T) {
	w := constWorkload(100, 1000, 0.01) // 800 kbps offered
	r, err := Simulate(w, 800_000, 0, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if r.Pl != 0 || r.LostBytes != 0 {
		t.Errorf("loss at exactly sufficient capacity: %v", r.Pl)
	}
}

func TestSimulateLossConservation(t *testing.T) {
	// Arrivals = served + lost + final backlog; with capacity at half the
	// offered load and zero buffer, exactly half is lost.
	w := constWorkload(1000, 1000, 0.01)
	r, err := Simulate(w, 400_000, 0, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(r.Pl-0.5) > 1e-9 {
		t.Errorf("Pl = %v, want 0.5", r.Pl)
	}
	if r.TotalBytes != 1_000_000 {
		t.Errorf("total %v", r.TotalBytes)
	}
}

func TestSimulateBufferAbsorbsBurst(t *testing.T) {
	// One big burst into an otherwise idle stream: buffer ≥ burst excess
	// loses nothing; smaller buffer loses the difference.
	bytes := make([]float64, 100)
	bytes[50] = 10000
	w := Workload{Bytes: bytes, Interval: 0.01}
	cap := 800_000.0 // drains 1000 bytes per interval
	big, err := Simulate(w, cap, 9000, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if big.LostBytes != 0 {
		t.Errorf("big buffer lost %v", big.LostBytes)
	}
	small, err := Simulate(w, cap, 4000, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(small.LostBytes-5000) > 1e-6 {
		t.Errorf("small buffer lost %v, want 5000", small.LostBytes)
	}
}

func TestSimulateMonotoneInCapacityAndBuffer(t *testing.T) {
	rng := rand.New(rand.NewPCG(1, 2))
	bytes := make([]float64, 5000)
	for i := range bytes {
		bytes[i] = 500 + 1500*rng.Float64()
	}
	w := Workload{Bytes: bytes, Interval: 0.01}
	var prev float64 = math.Inf(1)
	for _, c := range []float64{600_000, 800_000, 1_000_000, 1_200_000} {
		r, err := Simulate(w, c, 2000, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if r.Pl > prev+1e-12 {
			t.Errorf("loss not monotone in capacity at %v: %v > %v", c, r.Pl, prev)
		}
		prev = r.Pl
	}
	prev = math.Inf(1)
	for _, q := range []float64{0, 1000, 5000, 20000} {
		r, err := Simulate(w, 850_000, q, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if r.Pl > prev+1e-12 {
			t.Errorf("loss not monotone in buffer at %v", q)
		}
		prev = r.Pl
	}
}

func TestSimulateWESAtLeastOverall(t *testing.T) {
	rng := rand.New(rand.NewPCG(3, 4))
	bytes := make([]float64, 10000)
	for i := range bytes {
		bytes[i] = 500 + 1500*rng.Float64()
		if i%2000 < 50 { // periodic congestion bursts
			bytes[i] *= 3
		}
	}
	w := Workload{Bytes: bytes, Interval: 0.01}
	r, err := Simulate(w, 1_400_000, 3000, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if r.Pl <= 0 {
		t.Skip("no loss at this operating point")
	}
	if r.PlWES < r.Pl {
		t.Errorf("worst-second loss %v below overall %v", r.PlWES, r.Pl)
	}
}

func TestSimulateWindowSeries(t *testing.T) {
	w := constWorkload(100, 1000, 0.01)
	r, err := Simulate(w, 400_000, 0, Options{WindowIntervals: 10})
	if err != nil {
		t.Fatal(err)
	}
	if len(r.WindowLoss) != 10 {
		t.Fatalf("windows %d", len(r.WindowLoss))
	}
	for _, v := range r.WindowLoss {
		if math.Abs(v-0.5) > 1e-9 {
			t.Errorf("window loss %v, want 0.5", v)
		}
	}
}

func TestSimulateValidation(t *testing.T) {
	w := constWorkload(10, 100, 0.01)
	if _, err := Simulate(w, 0, 100, Options{}); err == nil {
		t.Error("zero capacity should fail")
	}
	if _, err := Simulate(w, 1000, -1, Options{}); err == nil {
		t.Error("negative buffer should fail")
	}
	if _, err := Simulate(Workload{}, 1000, 0, Options{}); err == nil {
		t.Error("invalid workload should fail")
	}
}

func TestSimulateCellsMatchesFluidWithLargeBuffer(t *testing.T) {
	// With a buffer much larger than a cell and smooth arrivals the two
	// granularities must agree closely on loss.
	rng := rand.New(rand.NewPCG(5, 6))
	bytes := make([]float64, 3000)
	for i := range bytes {
		bytes[i] = 800 + 700*rng.Float64()
	}
	w := Workload{Bytes: bytes, Interval: 0.00139} // slice-like interval
	capacity := w.MeanRate() * 1.05
	buffer := 20000.0
	fluid, err := Simulate(w, capacity, buffer, Options{})
	if err != nil {
		t.Fatal(err)
	}
	cells, err := SimulateCells(w, capacity, buffer, UniformSpacing, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(fluid.Pl-cells.Pl) > 0.02 {
		t.Errorf("fluid Pl %v vs cell Pl %v", fluid.Pl, cells.Pl)
	}
}

func TestSimulateCellsBatchWorseThanUniform(t *testing.T) {
	// Batch arrivals at interval start need more buffer: with a small
	// buffer, StartOfInterval must lose at least as much as uniform
	// spacing. This is the §5.1 argument for pipelined coders.
	rng := rand.New(rand.NewPCG(7, 8))
	bytes := make([]float64, 2000)
	for i := range bytes {
		bytes[i] = 2000 + 2000*rng.Float64()
	}
	w := Workload{Bytes: bytes, Interval: 0.04}
	capacity := w.MeanRate() * 1.2
	buffer := 500.0 // ~10 cells
	uni, err := SimulateCells(w, capacity, buffer, UniformSpacing, Options{})
	if err != nil {
		t.Fatal(err)
	}
	batch, err := SimulateCells(w, capacity, buffer, StartOfInterval, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if batch.Pl < uni.Pl-1e-9 {
		t.Errorf("batch Pl %v < uniform Pl %v", batch.Pl, uni.Pl)
	}
}

func TestSimulateCellsRandomSpacing(t *testing.T) {
	// Random spacing should be close to uniform spacing in overall loss
	// (the paper found the distinction minor), strictly better than
	// batching, and reproducible by seed.
	rng := rand.New(rand.NewPCG(17, 18))
	bytes := make([]float64, 3000)
	for i := range bytes {
		bytes[i] = 2000 + 2000*rng.Float64()
	}
	w := Workload{Bytes: bytes, Interval: 0.04}
	capacity := w.MeanRate() * 1.15
	buffer := 600.0
	uni, err := SimulateCells(w, capacity, buffer, UniformSpacing, Options{})
	if err != nil {
		t.Fatal(err)
	}
	rnd, err := SimulateCells(w, capacity, buffer, RandomSpacing, Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	batch, err := SimulateCells(w, capacity, buffer, StartOfInterval, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// With a buffer of only ~12 cells the burstiness ordering is strict:
	// evenly spaced ≤ randomly clumped ≤ batched at interval start.
	if rnd.Pl < uni.Pl-1e-9 {
		t.Errorf("random spacing (%v) beat uniform (%v)", rnd.Pl, uni.Pl)
	}
	if batch.Pl < rnd.Pl-1e-9 {
		t.Errorf("batching (%v) beat random spacing (%v)", batch.Pl, rnd.Pl)
	}
	// The uniform/random gap stays within an order of magnitude — the
	// paper found the spacing choice secondary to buffer size.
	if rnd.Pl > 10*uni.Pl+1e-6 {
		t.Errorf("random %v vs uniform %v: implausibly large gap", rnd.Pl, uni.Pl)
	}
	rnd2, err := SimulateCells(w, capacity, buffer, RandomSpacing, Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if rnd.Pl != rnd2.Pl {
		t.Error("same seed should reproduce")
	}
}

func TestSimulateCellsValidation(t *testing.T) {
	w := constWorkload(10, 100, 0.01)
	if _, err := SimulateCells(w, 0, 100, UniformSpacing, Options{}); err == nil {
		t.Error("zero capacity should fail")
	}
	if _, err := SimulateCells(w, 1000, -1, UniformSpacing, Options{}); err == nil {
		t.Error("negative buffer should fail")
	}
	if _, err := SimulateCells(w, 1000, 100, Spacing(9), Options{}); err == nil {
		t.Error("unknown spacing should fail")
	}
}

func TestSimulateConservationProperty(t *testing.T) {
	// Invariant for any workload/capacity/buffer: arrivals = served +
	// lost + final backlog, with backlog ≤ buffer and loss ≥ 0. Served
	// is reconstructed by replaying the recursion.
	f := func(seed uint64) bool {
		rng := rand.New(rand.NewPCG(seed, 77))
		n := 10 + int(seed%300)
		bytes := make([]float64, n)
		for i := range bytes {
			bytes[i] = rng.Float64() * 3000
		}
		w := Workload{Bytes: bytes, Interval: 0.005 + rng.Float64()*0.05}
		capacity := w.MeanRate() * (0.3 + 1.5*rng.Float64())
		buffer := rng.Float64() * 10000
		r, err := Simulate(w, capacity, buffer, Options{})
		if err != nil {
			return false
		}
		if r.LostBytes < 0 || r.MaxBacklog > buffer+1e-9 {
			return false
		}
		// Replay to get the final backlog.
		service := capacity / 8 * w.Interval
		var q float64
		for _, a := range bytes {
			net := q + a - service
			if net > buffer {
				q = buffer
			} else if net > 0 {
				q = net
			} else {
				q = 0
			}
		}
		served := r.TotalBytes - r.LostBytes - q
		// Served cannot exceed capacity × time and cannot be negative.
		if served < -1e-6 || served > service*float64(n)+1e-6 {
			return false
		}
		return math.Abs(r.Pl-(r.LostBytes/r.TotalBytes)) < 1e-12 || r.TotalBytes == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestZeroLossExactMatchesSimulationProperty(t *testing.T) {
	// For random workloads and buffers, the exact capacity is always
	// loss-free in simulation and within tolerance of the infimum.
	f := func(seed uint64) bool {
		rng := rand.New(rand.NewPCG(seed, 99))
		n := 50 + int(seed%500)
		bytes := make([]float64, n)
		for i := range bytes {
			bytes[i] = rng.Float64() * 2000
			if rng.Float64() < 0.02 {
				bytes[i] *= 5
			}
		}
		w := Workload{Bytes: bytes, Interval: 0.01}
		buffer := rng.Float64() * 20000
		exact, err := ZeroLossCapacityExact(w, buffer)
		if err != nil {
			return false
		}
		if exact == 0 {
			return true // buffer swallows everything
		}
		r, err := Simulate(w, exact*(1+1e-9), buffer, Options{})
		if err != nil {
			return false
		}
		return r.LostBytes < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestMinCapacityBisection(t *testing.T) {
	// Synthetic monotone loss curve: loss = max(0, 1 - c/1e6).
	loss := func(c float64) (float64, error) {
		return math.Max(0, 1-c/1e6), nil
	}
	c, err := MinCapacity(loss, 1e5, 2e6, LossTarget{Pl: 0.25})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(c-750_000) > 1000 {
		t.Errorf("capacity %v, want 750000", c)
	}
	// Zero-loss target.
	c0, err := MinCapacity(loss, 1e5, 2e6, LossTarget{Pl: 0})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(c0-1e6) > 2000 {
		t.Errorf("zero-loss capacity %v, want 1e6", c0)
	}
	// Unreachable target.
	if _, err := MinCapacity(loss, 1e5, 5e5, LossTarget{Pl: 0.1}); err == nil {
		t.Error("unreachable target should fail")
	}
	// Already satisfied at lower bound.
	cl, err := MinCapacity(loss, 1.5e6, 2e6, LossTarget{Pl: 0.5})
	if err != nil || cl != 1.5e6 {
		t.Errorf("lower-bound shortcut: %v %v", cl, err)
	}
	if _, err := MinCapacity(loss, -1, 1e6, LossTarget{}); err == nil {
		t.Error("bad bracket should fail")
	}
}

func TestLossTargetString(t *testing.T) {
	if got := (LossTarget{Pl: 0}).String(); got != "Pl=0" {
		t.Errorf("got %q", got)
	}
	if got := (LossTarget{Pl: 1e-4}).String(); got != "Pl=1e-04" {
		t.Errorf("got %q", got)
	}
	if got := (LossTarget{Pl: 1e-3, UseWES: true}).String(); got != "Pl-WES=1e-03" {
		t.Errorf("got %q", got)
	}
}

func TestKnee(t *testing.T) {
	// A synthetic L-shaped curve on log axes: flat then steep, knee at
	// the transition.
	var points []QCPoint
	for i := 0; i < 10; i++ {
		tm := math.Pow(10, -4+float64(i)*0.4)
		c := 1e6
		if tm < 1e-2 {
			c = 1e6 * math.Pow(1e-2/tm, 0.8)
		}
		points = append(points, QCPoint{TmaxSec: tm, PerSourceBps: c})
	}
	k, err := Knee(points)
	if err != nil {
		t.Fatal(err)
	}
	if k.TmaxSec < 1e-3 || k.TmaxSec > 1e-1 {
		t.Errorf("knee at %v, want near 1e-2", k.TmaxSec)
	}
	if _, err := Knee(points[:2]); err == nil {
		t.Error("too few points should fail")
	}
}

func TestRealizedGain(t *testing.T) {
	g, err := RealizedGain(4e6, 10e6, 2e6)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(g-0.75) > 1e-12 {
		t.Errorf("gain %v, want 0.75", g)
	}
	if _, err := RealizedGain(1, 2, 3); err == nil {
		t.Error("peak < mean should fail")
	}
}
