package queue

import (
	"fmt"
	"math"
)

// This file implements the layered-coding study §5.3 of the paper points
// to but leaves open: "if packet loss degradations were concealed by
// using 'layered' coding with a priority queueing discipline, then the
// QOS measure would have to account for this appropriately" (see also
// [GARR93], the authors' joint source/channel coding work).
//
// A layered source splits every interval's bytes into a base layer
// (carrying the share needed for minimally acceptable quality) and an
// enhancement layer. The network serves both through one channel but
// drops enhancement traffic first when the buffer fills: a two-priority
// partial buffer sharing scheme in which enhancement cells are admitted
// only while the queue is below a threshold.

// LayeredWorkload is a two-layer arrival process on a common interval
// grid.
type LayeredWorkload struct {
	Base        []float64 // bytes per interval, high priority
	Enhancement []float64 // bytes per interval, low priority
	Interval    float64   // seconds
}

// SplitLayers divides a workload into base and enhancement layers with
// the given base fraction (0 < baseFrac ≤ 1) of each interval's bytes in
// the base layer — the constant-proportion layering of scalable
// intraframe coders.
//
//vbrlint:ignore ctxcheck single bounded pass splitting bytes per frame
func SplitLayers(w Workload, baseFrac float64) (LayeredWorkload, error) {
	if err := w.Validate(); err != nil {
		return LayeredWorkload{}, err
	}
	if !(baseFrac > 0 && baseFrac <= 1) {
		return LayeredWorkload{}, fmt.Errorf("queue: base fraction must be in (0,1], got %v", baseFrac)
	}
	lw := LayeredWorkload{
		Base:        make([]float64, len(w.Bytes)),
		Enhancement: make([]float64, len(w.Bytes)),
		Interval:    w.Interval,
	}
	for i, b := range w.Bytes {
		lw.Base[i] = b * baseFrac
		lw.Enhancement[i] = b * (1 - baseFrac)
	}
	return lw, nil
}

// Validate checks the layered workload's consistency.
//
//vbrlint:ignore ctxcheck bounded validation scan over the layered workload
func (lw LayeredWorkload) Validate() error {
	if len(lw.Base) == 0 || len(lw.Base) != len(lw.Enhancement) {
		return fmt.Errorf("queue: layered workload shape %d/%d", len(lw.Base), len(lw.Enhancement))
	}
	if !(lw.Interval > 0) {
		return fmt.Errorf("queue: interval must be positive, got %v", lw.Interval)
	}
	for i := range lw.Base {
		if lw.Base[i] < 0 || lw.Enhancement[i] < 0 ||
			math.IsNaN(lw.Base[i]) || math.IsNaN(lw.Enhancement[i]) {
			return fmt.Errorf("queue: invalid layered arrivals at %d", i)
		}
	}
	return nil
}

// LayeredResult reports per-layer loss.
type LayeredResult struct {
	BaseBytes, BaseLost               float64
	EnhancementBytes, EnhancementLost float64
	PlBase                            float64 // base-layer loss rate
	PlEnhancement                     float64 // enhancement-layer loss rate
	PlTotal                           float64 // combined loss rate
	MaxBacklog                        float64
}

// SimulatePriority runs the two-priority fluid queue: capacity in bits/s,
// buffer in bytes, with enhancement traffic admitted only while the
// backlog is below threshold bytes (threshold ≤ buffer; threshold ==
// buffer degenerates to FIFO without priority). Base traffic uses the
// whole buffer. Within an interval, base arrivals are admitted before
// enhancement arrivals, modeling strict priority.
//
//vbrlint:ignore ctxcheck O(n) fluid arithmetic per run; cancellation happens at run granularity in the drivers by design
func SimulatePriority(lw LayeredWorkload, capacityBps, bufferBytes, thresholdBytes float64) (*LayeredResult, error) {
	if err := lw.Validate(); err != nil {
		return nil, err
	}
	if !(capacityBps > 0) {
		return nil, fmt.Errorf("queue: capacity must be positive, got %v", capacityBps)
	}
	if bufferBytes < 0 || thresholdBytes < 0 || thresholdBytes > bufferBytes {
		return nil, fmt.Errorf("queue: need 0 ≤ threshold (%v) ≤ buffer (%v)", thresholdBytes, bufferBytes)
	}
	service := capacityBps / 8 * lw.Interval

	res := &LayeredResult{}
	var q float64
	for i := range lw.Base {
		base, enh := lw.Base[i], lw.Enhancement[i]
		res.BaseBytes += base
		res.EnhancementBytes += enh

		// Drain first (fluid service during the interval).
		q = math.Max(0, q-service)

		// Base layer: admitted up to the full buffer.
		admitBase := math.Min(base, bufferBytes-q)
		if admitBase < 0 {
			admitBase = 0
		}
		res.BaseLost += base - admitBase
		q += admitBase

		// Enhancement layer: admitted only below the threshold.
		room := math.Min(thresholdBytes, bufferBytes) - q
		admitEnh := math.Min(enh, math.Max(0, room))
		res.EnhancementLost += enh - admitEnh
		q += admitEnh

		if q > res.MaxBacklog {
			res.MaxBacklog = q
		}
	}
	if res.BaseBytes > 0 {
		res.PlBase = res.BaseLost / res.BaseBytes
	}
	if res.EnhancementBytes > 0 {
		res.PlEnhancement = res.EnhancementLost / res.EnhancementBytes
	}
	total := res.BaseBytes + res.EnhancementBytes
	if total > 0 {
		res.PlTotal = (res.BaseLost + res.EnhancementLost) / total
	}
	return res, nil
}
