// Package queue implements the trace-driven network simulation of §5 of
// the paper (Fig. 13): N multiplexed VBR video sources feeding a single
// FIFO queue with finite buffer Q and fixed channel capacity C, measured
// by the overall cell loss rate P_l and the loss rate of the worst errored
// second P_l-WES. On top of the simulator it provides the resource
// allocation analyses of Figs. 14–17: minimum-capacity search, Q–C
// tradeoff curves, knee detection, statistical multiplexing gain, and the
// windowed error process.
package queue

import (
	"fmt"
	"math"
	"math/rand/v2"
	"sort"

	"vbr/internal/errs"
)

// CellBytes is the payload of one fixed-size cell (ATM: 48 bytes).
const CellBytes = 48

// Workload is an arrival process: bytes offered per fixed interval.
type Workload struct {
	Bytes    []float64 // bytes arriving in each interval
	Interval float64   // interval duration in seconds
}

// Validate checks workload consistency. Failures match
// errs.ErrInvalidWorkload.
//
//vbrlint:ignore ctxcheck bounded validation scan over the workload
func (w Workload) Validate() error {
	if len(w.Bytes) == 0 {
		return fmt.Errorf("queue: empty workload: %w", errs.ErrInvalidWorkload)
	}
	if !(w.Interval > 0) {
		return fmt.Errorf("queue: interval must be positive, got %v: %w", w.Interval, errs.ErrInvalidWorkload)
	}
	for i, v := range w.Bytes {
		if v < 0 || math.IsNaN(v) || math.IsInf(v, 0) {
			return fmt.Errorf("queue: invalid arrival %v at %d: %w", v, i, errs.ErrInvalidWorkload)
		}
	}
	return nil
}

// TotalBytes returns the sum of all arrivals.
func (w Workload) TotalBytes() float64 {
	var s float64
	for _, v := range w.Bytes {
		s += v
	}
	return s
}

// MeanRate returns the average offered load in bits per second.
func (w Workload) MeanRate() float64 {
	return w.TotalBytes() * 8 / (float64(len(w.Bytes)) * w.Interval)
}

// PeakRate returns the peak per-interval offered load in bits per second.
func (w Workload) PeakRate() float64 {
	peak := 0.0
	for _, v := range w.Bytes {
		if v > peak {
			peak = v
		}
	}
	return peak * 8 / w.Interval
}

// Result summarizes one simulation run.
type Result struct {
	TotalBytes float64
	LostBytes  float64
	Pl         float64 // overall byte loss rate
	PlWES      float64 // loss rate in the worst errored second
	MaxBacklog float64 // peak queue occupancy in bytes
	// WindowLoss is the per-window loss-rate series when a window was
	// requested (Fig. 17's running loss process); nil otherwise.
	WindowLoss []float64
	// CombosTotal/CombosUsed report graceful degradation of a
	// multiplexer average: how many lag combinations were attempted and
	// how many survived to be averaged. Zero outside AverageLoss runs.
	CombosTotal int
	CombosUsed  int
	// ComboErrors lists the failures of excluded lag combinations.
	ComboErrors []error
}

// Options selects simulation granularity and instrumentation.
type Options struct {
	// WindowIntervals, when positive, records the per-window loss rate
	// over consecutive windows of this many intervals.
	WindowIntervals int
	// SecondIntervals is the number of intervals per "second" used for
	// the worst-errored-second statistic. When zero, it is derived from
	// Interval (round(1/Interval)), clamped to ≥ 1.
	SecondIntervals int
	// Seed drives RandomSpacing cell placement in SimulateCells.
	Seed uint64
	// Faults, when non-nil, applies a deterministic schedule of
	// capacity-degradation and outage episodes to the server.
	Faults *FaultSchedule
}

// Simulate runs the discrete-time fluid FIFO queue: during each interval
// the arrivals drain simultaneously at capacity; whatever exceeds the
// buffer is lost. capacity is in bits per second, buffer in bytes.
//
// The fluid model matches the paper's observation that cells are produced
// continuously ("we would expect real coders to be pipelined") rather
// than as frame-sized batches. Use SimulateCells for the cell-exact
// ablation.
//
//vbrlint:ignore ctxcheck O(n) fluid recursion per run; cancellation happens at run granularity via AverageLossCtx by design
func Simulate(w Workload, capacityBps, bufferBytes float64, opts Options) (*Result, error) {
	if err := w.Validate(); err != nil {
		return nil, err
	}
	if !(capacityBps > 0) {
		return nil, fmt.Errorf("queue: capacity must be positive, got %v", capacityBps)
	}
	if bufferBytes < 0 {
		return nil, fmt.Errorf("queue: buffer must be ≥ 0, got %v", bufferBytes)
	}
	if err := opts.Faults.Validate(); err != nil {
		return nil, err
	}
	servicePerInterval := capacityBps / 8 * w.Interval

	secN := opts.SecondIntervals
	if secN <= 0 {
		secN = int(math.Round(1 / w.Interval))
		if secN < 1 {
			secN = 1
		}
	}

	res := &Result{}
	var q float64
	var secArr, secLost, worstNum, worstDen float64
	var winArr, winLost float64
	for i, a := range w.Bytes {
		res.TotalBytes += a
		service := servicePerInterval
		if opts.Faults != nil {
			service *= opts.Faults.FactorAt(i)
		}
		net := q + a - service
		var lost float64
		if net > bufferBytes {
			lost = net - bufferBytes
			q = bufferBytes
		} else if net > 0 {
			q = net
		} else {
			q = 0
		}
		res.LostBytes += lost
		if q > res.MaxBacklog {
			res.MaxBacklog = q
		}

		secArr += a
		secLost += lost
		if (i+1)%secN == 0 || i == len(w.Bytes)-1 {
			//vbrlint:ignore floateq worstDen 0 is the exact not-yet-seen sentinel; any real window stores a positive sum
			if secArr > 0 && (worstDen == 0 || secLost/secArr > worstNum/worstDen) {
				worstNum, worstDen = secLost, secArr
			}
			secArr, secLost = 0, 0
		}

		if opts.WindowIntervals > 0 {
			winArr += a
			winLost += lost
			if (i+1)%opts.WindowIntervals == 0 || i == len(w.Bytes)-1 {
				rate := 0.0
				if winArr > 0 {
					rate = winLost / winArr
				}
				res.WindowLoss = append(res.WindowLoss, rate)
				winArr, winLost = 0, 0
			}
		}
	}
	if res.TotalBytes > 0 {
		res.Pl = res.LostBytes / res.TotalBytes
	}
	if worstDen > 0 {
		res.PlWES = worstNum / worstDen
	}
	return res, nil
}

// Spacing selects how cells are placed within an interval in the
// cell-exact simulator.
type Spacing int

const (
	// UniformSpacing spaces an interval's cells evenly across it — the
	// pipelined-coder assumption of §5.1.
	UniformSpacing Spacing = iota
	// StartOfInterval delivers the whole interval's cells back to back at
	// the interval start — the batch-arrival assumption the paper argues
	// against ("in no case do all the cells of a frame arrive together"),
	// kept as an ablation.
	StartOfInterval
	// RandomSpacing places each cell independently and uniformly at
	// random within its interval — the paper's second spacing variant
	// ("using uniform and random spacing of cells within the slice or
	// frame"). Cells are sorted within the interval before queueing.
	// Randomness is drawn from Options.Seed.
	RandomSpacing
)

// SimulateCells runs a cell-exact FIFO simulation: each interval's bytes
// become ⌈bytes/48⌉ cells placed according to spacing; the queue drains
// continuously at capacity; a cell arriving to a buffer with less than one
// cell of free space is dropped whole. This is the high-fidelity ablation
// for the fluid model, relevant when the buffer holds only a few cells.
//
//vbrlint:ignore ctxcheck O(n) fluid recursion per run; cancellation happens at run granularity via AverageLossCtx by design
func SimulateCells(w Workload, capacityBps, bufferBytes float64, spacing Spacing, opts Options) (*Result, error) {
	if err := w.Validate(); err != nil {
		return nil, err
	}
	if !(capacityBps > 0) {
		return nil, fmt.Errorf("queue: capacity must be positive, got %v", capacityBps)
	}
	if bufferBytes < 0 {
		return nil, fmt.Errorf("queue: buffer must be ≥ 0, got %v", bufferBytes)
	}
	if err := opts.Faults.Validate(); err != nil {
		return nil, err
	}
	drainPerSec := capacityBps / 8

	secN := opts.SecondIntervals
	if secN <= 0 {
		secN = int(math.Round(1 / w.Interval))
		if secN < 1 {
			secN = 1
		}
	}

	res := &Result{}
	var q float64 // backlog in bytes
	lastT := 0.0
	var secArr, secLost, worstNum, worstDen float64
	var winArr, winLost float64
	var rng *rand.Rand
	var randTimes []float64
	if spacing == RandomSpacing {
		rng = rand.New(rand.NewPCG(opts.Seed, 0xce115))
	}

	for i, bytes := range w.Bytes {
		res.TotalBytes += bytes
		cells := int(math.Ceil(bytes / CellBytes))
		t0 := float64(i) * w.Interval
		if spacing == RandomSpacing && cells > 0 {
			randTimes = randTimes[:0]
			for c := 0; c < cells; c++ {
				randTimes = append(randTimes, t0+rng.Float64()*w.Interval)
			}
			sort.Float64s(randTimes)
		}
		var lost float64
		for c := 0; c < cells; c++ {
			var t float64
			switch spacing {
			case UniformSpacing:
				t = t0 + (float64(c)+0.5)/float64(cells)*w.Interval
			case StartOfInterval:
				t = t0
			case RandomSpacing:
				t = randTimes[c]
			default:
				return nil, fmt.Errorf("queue: unknown spacing %d", spacing)
			}
			// Drain since the last event (episode-aware when faulted).
			if opts.Faults != nil {
				q = math.Max(0, q-opts.Faults.drainBetween(lastT, t, drainPerSec, w.Interval))
			} else {
				q = math.Max(0, q-drainPerSec*(t-lastT))
			}
			lastT = t
			if q+CellBytes > bufferBytes {
				lost += CellBytes
				continue
			}
			q += CellBytes
			if q > res.MaxBacklog {
				res.MaxBacklog = q
			}
		}
		// Clamp accounted loss to the interval's actual bytes (the last
		// cell is partially padded).
		if lost > bytes {
			lost = bytes
		}
		res.LostBytes += lost

		secArr += bytes
		secLost += lost
		if (i+1)%secN == 0 || i == len(w.Bytes)-1 {
			//vbrlint:ignore floateq worstDen 0 is the exact not-yet-seen sentinel; any real window stores a positive sum
			if secArr > 0 && (worstDen == 0 || secLost/secArr > worstNum/worstDen) {
				worstNum, worstDen = secLost, secArr
			}
			secArr, secLost = 0, 0
		}
		if opts.WindowIntervals > 0 {
			winArr += bytes
			winLost += lost
			if (i+1)%opts.WindowIntervals == 0 || i == len(w.Bytes)-1 {
				rate := 0.0
				if winArr > 0 {
					rate = winLost / winArr
				}
				res.WindowLoss = append(res.WindowLoss, rate)
				winArr, winLost = 0, 0
			}
		}
	}
	if res.TotalBytes > 0 {
		res.Pl = res.LostBytes / res.TotalBytes
	}
	if worstDen > 0 {
		res.PlWES = worstNum / worstDen
	}
	return res, nil
}
