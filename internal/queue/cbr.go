package queue

import (
	"fmt"
	"math"
)

// This file implements the CBR-side of the paper's motivating comparison
// (§1: "Forcing the transmission rate to be constant results in delay,
// wasted bandwidth, and modulation of the video quality") and the exact
// zero-loss allocation that anchors the Fig. 14 curves.

// CBRRate returns the minimum constant channel rate (bits/s) at which
// the workload can be carried through a source smoothing buffer without
// ever exceeding maxDelay seconds of buffering delay — the rate a
// circuit-switched (CBR) connection would have to reserve for the same
// video. maxDelay = 0 requires the peak rate.
//
// The feasibility test is the exact backlog recursion; the rate is found
// by bisection between the mean and peak rates (backlog is monotone in
// the service rate).
//
//vbrlint:ignore ctxcheck single bounded pass over the workload with a fixed smoothing window
func CBRRate(w Workload, maxDelay float64) (float64, error) {
	if err := w.Validate(); err != nil {
		return 0, err
	}
	if maxDelay < 0 {
		return 0, fmt.Errorf("queue: max delay must be ≥ 0, got %v", maxDelay)
	}
	mean, peak := w.MeanRate(), w.PeakRate()
	//vbrlint:ignore floateq exact-zero guard: an all-zero workload has exactly zero mean rate
	if mean == 0 {
		return 0, nil
	}
	feasible := func(rateBps float64) bool {
		service := rateBps / 8 * w.Interval
		maxBacklog := rateBps / 8 * maxDelay
		var q float64
		for _, a := range w.Bytes {
			q = math.Max(0, q+a-service)
			if q > maxBacklog {
				return false
			}
		}
		return true
	}
	if feasible(mean) {
		return mean, nil
	}
	lo, hi := mean, peak
	if !feasible(hi) {
		// Possible when maxDelay is 0 and arrivals exceed service within
		// one interval due to discretization; nudge up.
		hi = peak * (1 + 1e-9)
		for !feasible(hi) {
			hi *= 1.01
		}
	}
	for i := 0; i < 60 && hi-lo > 1e-6*hi; i++ {
		mid := (lo + hi) / 2
		if feasible(mid) {
			hi = mid
		} else {
			lo = mid
		}
	}
	return hi, nil
}

// ZeroLossCapacityExact returns the exact minimum capacity (bits/s) for
// which the discrete-time fluid queue with buffer Q bytes loses nothing:
//
//	C* = 8/Δt · max_{0 ≤ i < j ≤ n} (S_j − S_i − Q) / (j − i),
//
// where S_k is the cumulative arrival process. The pairwise maximum is a
// max-slope query from each point (j, S_j − Q) to the lower convex hull
// of {(i, S_i)}, maintained incrementally — O(n log n) overall, and free
// of the bisection tolerance that MinCapacity carries.
//
//vbrlint:ignore ctxcheck exact max-burst dual: one bounded O(n) pass over the workload
func ZeroLossCapacityExact(w Workload, bufferBytes float64) (float64, error) {
	if err := w.Validate(); err != nil {
		return 0, err
	}
	if bufferBytes < 0 {
		return 0, fmt.Errorf("queue: buffer must be ≥ 0, got %v", bufferBytes)
	}
	n := len(w.Bytes)
	// Cumulative arrivals S_0..S_n (S_0 = 0).
	s := make([]float64, n+1)
	for i, a := range w.Bytes {
		s[i+1] = s[i] + a
	}

	// Lower convex hull of (i, S_i), queried for the max slope to
	// (j, S_j - Q). The best hull vertex for a max-slope query from a
	// point to the right is found by binary search on the hull's slope
	// sequence (slopes to hull vertices are unimodal).
	type pt struct {
		x int
		y float64
	}
	hull := make([]pt, 0, n+1)
	push := func(p pt) {
		for len(hull) >= 2 {
			a, b := hull[len(hull)-2], hull[len(hull)-1]
			// Remove b if it is above segment a–p (keeps the hull lower).
			if (b.y-a.y)*float64(p.x-a.x) >= (p.y-a.y)*float64(b.x-a.x) {
				hull = hull[:len(hull)-1]
			} else {
				break
			}
		}
		hull = append(hull, p)
	}
	slopeTo := func(j int, yj float64, h pt) float64 {
		return (yj - h.y) / float64(j-h.x)
	}

	best := 0.0 // C* ≥ 0 always (empty queue)
	push(pt{0, s[0]})
	for j := 1; j <= n; j++ {
		yj := s[j] - bufferBytes
		// Ternary search over the hull for the max slope.
		lo, hi := 0, len(hull)-1
		for hi-lo > 2 {
			m1 := lo + (hi-lo)/3
			m2 := hi - (hi-lo)/3
			if slopeTo(j, yj, hull[m1]) < slopeTo(j, yj, hull[m2]) {
				lo = m1 + 1
			} else {
				hi = m2 - 1
			}
		}
		for k := lo; k <= hi; k++ {
			if v := slopeTo(j, yj, hull[k]); v > best {
				best = v
			}
		}
		push(pt{j, s[j]})
	}
	return best * 8 / w.Interval, nil
}
