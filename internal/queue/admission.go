package queue

import (
	"fmt"

	"vbr/internal/dist"
)

// This file implements bufferless (rate-envelope) connection admission
// control from the marginal distribution — the computation the paper's
// §4.2 convolution machinery exists for: "To simulate the aggregation of
// multiple sources, we implemented a convolution of the Gamma/Pareto
// distribution using a table of 10,000 points."
//
// In the bufferless model a frame interval overflows when the aggregate
// demand of the N sources exceeds the channel's per-interval service;
// the overflow probability is read directly off the N-fold convolution
// of the per-source marginal. This ignores time correlation entirely —
// which, as the paper's conclusions spell out, is exactly valid in this
// regime: "LRD is a relation of the frequency components of the process,
// not the distribution of bandwidth requirements", so H drops out of
// bufferless allocation while the heavy tail does not.

// MarginalAllocation returns the capacity (bits/s) needed to keep the
// bufferless per-interval overflow probability at or below eps for n
// independent sources with the given per-interval marginal distribution
// (bytes per interval of length intervalSec). tablePts controls the
// convolution grid resolution (the paper uses 10,000).
func MarginalAllocation(d dist.Distribution, n int, intervalSec, eps float64, tablePts int) (float64, error) {
	if d == nil {
		return 0, fmt.Errorf("queue: nil marginal distribution")
	}
	if n < 1 {
		return 0, fmt.Errorf("queue: source count must be ≥ 1, got %d", n)
	}
	if !(intervalSec > 0) {
		return 0, fmt.Errorf("queue: interval must be positive, got %v", intervalSec)
	}
	if !(eps > 0 && eps < 1) {
		return 0, fmt.Errorf("queue: overflow probability must be in (0,1), got %v", eps)
	}
	if tablePts < 100 {
		return 0, fmt.Errorf("queue: table needs ≥ 100 points, got %d", tablePts)
	}
	// Tabulate the single-source marginal over a range generous enough
	// that the (1 - eps/n) single-source quantile is interior.
	hi := d.Quantile(1 - eps/float64(10*n))
	if hi <= 0 {
		return 0, fmt.Errorf("queue: marginal quantile not positive")
	}
	tab, err := dist.NewDensityTable(d, 0, hi*1.25, tablePts)
	if err != nil {
		return 0, err
	}
	agg, err := tab.SelfConvolve(n)
	if err != nil {
		return 0, err
	}
	q := agg.Quantile(1 - eps)
	return q * 8 / intervalSec, nil
}

// AdmissibleSources returns the largest N for which MarginalAllocation
// at the given capacity stays within the overflow budget — the admission
// control decision a switch would make per call request. Returns 0 when
// even one source does not fit.
//
//vbrlint:ignore ctxcheck bounded linear scan over candidate source counts; no blocking calls
func AdmissibleSources(d dist.Distribution, capacityBps, intervalSec, eps float64, tablePts, maxN int) (int, error) {
	if maxN < 1 {
		return 0, fmt.Errorf("queue: maxN must be ≥ 1, got %d", maxN)
	}
	if !(capacityBps > 0) {
		return 0, fmt.Errorf("queue: capacity must be positive, got %v", capacityBps)
	}
	// The required capacity is nondecreasing in N, so binary search.
	lo, hi := 0, maxN // lo = known admissible, hi+1 = known inadmissible
	// First check the upper end to bound the search.
	need, err := MarginalAllocation(d, maxN, intervalSec, eps, tablePts)
	if err != nil {
		return 0, err
	}
	if need <= capacityBps {
		return maxN, nil
	}
	for lo < hi {
		mid := (lo + hi + 1) / 2
		need, err := MarginalAllocation(d, mid, intervalSec, eps, tablePts)
		if err != nil {
			return 0, err
		}
		if need <= capacityBps {
			lo = mid
		} else {
			hi = mid - 1
		}
	}
	return lo, nil
}
