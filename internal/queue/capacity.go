package queue

import (
	"context"
	"fmt"
	"math"

	"vbr/internal/errs"
	"vbr/internal/obs"
)

// LossTarget is a quality-of-service target for the capacity search:
// either an overall loss rate (UseWES false) or a worst-errored-second
// loss rate (UseWES true). Pl == 0 requests the zero-loss allocation.
type LossTarget struct {
	Pl     float64
	UseWES bool
}

// String renders the target the way the paper labels its curves.
func (t LossTarget) String() string {
	name := "Pl"
	if t.UseWES {
		name = "Pl-WES"
	}
	//vbrlint:ignore floateq Pl 0 is the exact zero-loss sentinel assigned from literals, never computed
	if t.Pl == 0 {
		return name + "=0"
	}
	return fmt.Sprintf("%s=%.0e", name, t.Pl)
}

// MinCapacity finds, by bisection, the minimum channel capacity (bits/s)
// meeting the loss target when the buffer is sized for a fixed maximum
// delay T_max = Q/(N·C) — the paper's normalized buffer measure, which
// makes Q proportional to C during the search. loss(capacity) is supplied
// by the caller (typically Mux.AverageLoss with Q = T_max·C/8 bytes).
//
// The search assumes loss is non-increasing in capacity, which holds for
// a work-conserving FIFO queue when Q grows with C.
func MinCapacity(loss func(capacityBps float64) (float64, error), loBps, hiBps float64, target LossTarget) (float64, error) {
	return MinCapacityCtx(context.Background(), loss, loBps, hiBps, target)
}

// MinCapacityCtx is MinCapacity with cooperative cancellation: the
// context is checked before every simulation of the bisection.
func MinCapacityCtx(ctx context.Context, loss func(capacityBps float64) (float64, error), loBps, hiBps float64, target LossTarget) (float64, error) {
	if !(loBps > 0) || !(hiBps > loBps) {
		return 0, fmt.Errorf("queue: bad capacity bracket [%v, %v]", loBps, hiBps)
	}
	if ctx.Err() != nil {
		return 0, errs.Cancelled(ctx)
	}
	scope := obs.From(ctx)
	scope.Count("queue.capacity.searches", 1)
	// Verify the bracket actually brackets the target. These two
	// endpoint evaluations are not counted as bisection probes:
	// queue.capacity.probes reports search effort, bounded at 50.
	lHi, err := loss(hiBps)
	if err != nil {
		return 0, err
	}
	if lHi > target.Pl {
		return 0, fmt.Errorf("queue: loss %v at max capacity %v still above target %v: %w",
			lHi, hiBps, target.Pl, errs.ErrTargetUnreachable)
	}
	lLo, err := loss(loBps)
	if err != nil {
		return 0, err
	}
	if lLo <= target.Pl {
		scope.Observe("queue.capacity.bracket.relwidth", 0)
		return loBps, nil
	}
	probes := 0
	for i := 0; i < 50 && hiBps-loBps > 1e-4*hiBps; i++ {
		if ctx.Err() != nil {
			scope.Count("queue.capacity.probes", int64(probes))
			return 0, errs.Cancelled(ctx)
		}
		mid := (loBps + hiBps) / 2
		probes++
		l, err := loss(mid)
		if err != nil {
			scope.Count("queue.capacity.probes", int64(probes))
			return 0, err
		}
		if l <= target.Pl {
			hiBps = mid
		} else {
			loBps = mid
		}
	}
	scope.Count("queue.capacity.probes", int64(probes))
	scope.Observe("queue.capacity.bracket.relwidth", (hiBps-loBps)/hiBps)
	return hiBps, nil
}

// QCPoint is one point of a Fig. 14 curve: the maximum buffer delay
// T_max = Q/(N·C) against the allocated bandwidth per source C/N.
type QCPoint struct {
	TmaxSec      float64
	PerSourceBps float64
}

// QCCurveConfig parameterizes a Q–C tradeoff sweep over any
// Aggregator — the classic lagged-trace Mux or a scenario-zoo
// SourceMux population.
type QCCurveConfig struct {
	Mux       Aggregator
	Target    LossTarget
	TmaxGrid  []float64 // buffer delays to evaluate (seconds)
	UseSlices bool      // simulate at slice granularity (the paper's choice)
	// Resume supplies points from an earlier, interrupted sweep: grid
	// entries whose T_max exactly matches a resume point are reused
	// instead of re-searched. Points not on the grid are ignored.
	Resume []QCPoint
	// Faults, when non-nil, injects the schedule into every simulation
	// of the sweep.
	Faults *FaultSchedule
}

// QCCurve computes a Fig. 14 curve: for each T_max, the minimum capacity
// per source achieving the loss target.
func QCCurve(cfg QCCurveConfig) ([]QCPoint, error) {
	return QCCurveCtx(context.Background(), cfg)
}

// QCCurveCtx computes a Q–C curve with cancellation and resume: on a
// cancelled context it returns the points completed so far together with
// an error matching errs.ErrCancelled, so the caller can checkpoint the
// partial curve and finish it in a later run via Resume.
func QCCurveCtx(ctx context.Context, cfg QCCurveConfig) ([]QCPoint, error) {
	if cfg.Mux == nil {
		return nil, fmt.Errorf("queue: nil multiplexer")
	}
	if len(cfg.TmaxGrid) == 0 {
		return nil, fmt.Errorf("queue: empty T_max grid")
	}
	resumed := make(map[float64]float64, len(cfg.Resume))
	for _, p := range cfg.Resume {
		resumed[p.TmaxSec] = p.PerSourceBps
	}
	n := float64(cfg.Mux.NSources())
	mean, peak, err := cfg.Mux.RateEnvelope()
	if err != nil {
		return nil, err
	}
	peak *= 1.05 // headroom for slice-level peaks

	scope := obs.From(ctx)
	points := make([]QCPoint, 0, len(cfg.TmaxGrid))
	for _, tmax := range cfg.TmaxGrid {
		if !(tmax >= 0) {
			return points, fmt.Errorf("queue: negative T_max %v", tmax)
		}
		if bps, ok := resumed[tmax]; ok {
			points = append(points, QCPoint{TmaxSec: tmax, PerSourceBps: bps})
			scope.Progress("queue.qccurve", int64(len(points)), int64(len(cfg.TmaxGrid)))
			continue
		}
		if ctx.Err() != nil {
			return points, fmt.Errorf("queue: Q-C sweep interrupted at T_max=%v: %w", tmax, errs.Cancelled(ctx))
		}
		tm := tmax
		lossAt := func(c float64) (float64, error) {
			q := tm * c / 8 // Q = T_max · (N·C) in bytes; c is aggregate bits/s
			r, err := cfg.Mux.AverageLossCtx(ctx, c, q, cfg.UseSlices, Options{Faults: cfg.Faults})
			if err != nil {
				return 0, err
			}
			if cfg.Target.UseWES {
				return r.PlWES, nil
			}
			return r.Pl, nil
		}
		c, err := MinCapacityCtx(ctx, lossAt, mean*0.5, peak, cfg.Target)
		if err != nil {
			return points, fmt.Errorf("queue: T_max=%v: %w", tmax, err)
		}
		points = append(points, QCPoint{TmaxSec: tmax, PerSourceBps: c / n})
		scope.Count("queue.curve.points", 1)
		scope.Progress("queue.qccurve", int64(len(points)), int64(len(cfg.TmaxGrid)))
	}
	return points, nil
}

// Knee locates the knee of a Q–C curve — the natural operating point the
// paper identifies — as the point of maximum curvature on log-log axes,
// estimated by the largest second difference of log(C/N) against
// log(T_max).
//
//vbrlint:ignore ctxcheck bounded pass over the precomputed capacity curve; no blocking calls
func Knee(points []QCPoint) (QCPoint, error) {
	if len(points) < 3 {
		return QCPoint{}, fmt.Errorf("queue: knee needs ≥ 3 points, got %d", len(points))
	}
	best, bestCurv := 1, math.Inf(-1)
	for i := 1; i < len(points)-1; i++ {
		x0, x1, x2 := math.Log(points[i-1].TmaxSec), math.Log(points[i].TmaxSec), math.Log(points[i+1].TmaxSec)
		y0, y1, y2 := math.Log(points[i-1].PerSourceBps), math.Log(points[i].PerSourceBps), math.Log(points[i+1].PerSourceBps)
		// Second difference with uneven spacing.
		d1 := (y1 - y0) / (x1 - x0)
		d2 := (y2 - y1) / (x2 - x1)
		curv := math.Abs(d2 - d1)
		if curv > bestCurv {
			bestCurv, best = curv, i
		}
	}
	return points[best], nil
}

// SMGPoint is one point of Fig. 15: sources multiplexed and the capacity
// allocated per source.
type SMGPoint struct {
	N            int
	PerSourceBps float64
}

// SMGConfig parameterizes the statistical-multiplexing-gain analysis.
type SMGConfig struct {
	NewMux    func(n int) (Aggregator, error) // constructs the N-source multiplexer
	Ns        []int
	Target    LossTarget
	TmaxSec   float64 // Fig. 15 fixes T_max = 2 ms
	UseSlices bool
}

// SMG computes Fig. 15: the required per-source allocation against N at a
// fixed buffer delay.
func SMG(cfg SMGConfig) ([]SMGPoint, error) {
	return SMGCtx(context.Background(), cfg)
}

// SMGCtx is SMG with cooperative cancellation; on a cancelled context it
// returns the points completed so far with an error matching
// errs.ErrCancelled.
func SMGCtx(ctx context.Context, cfg SMGConfig) ([]SMGPoint, error) {
	if cfg.NewMux == nil {
		return nil, fmt.Errorf("queue: nil multiplexer factory")
	}
	if len(cfg.Ns) == 0 {
		return nil, fmt.Errorf("queue: empty N list")
	}
	if !(cfg.TmaxSec >= 0) {
		return nil, fmt.Errorf("queue: negative T_max")
	}
	scope := obs.From(ctx)
	out := make([]SMGPoint, 0, len(cfg.Ns))
	for _, n := range cfg.Ns {
		if ctx.Err() != nil {
			return out, fmt.Errorf("queue: SMG sweep interrupted at N=%d: %w", n, errs.Cancelled(ctx))
		}
		mux, err := cfg.NewMux(n)
		if err != nil {
			return out, err
		}
		mean, peak, err := mux.RateEnvelope()
		if err != nil {
			return out, err
		}
		peak *= 1.05
		lossAt := func(c float64) (float64, error) {
			q := cfg.TmaxSec * c / 8
			r, err := mux.AverageLossCtx(ctx, c, q, cfg.UseSlices, Options{})
			if err != nil {
				return 0, err
			}
			if cfg.Target.UseWES {
				return r.PlWES, nil
			}
			return r.Pl, nil
		}
		c, err := MinCapacityCtx(ctx, lossAt, mean*0.5, peak, cfg.Target)
		if err != nil {
			return out, fmt.Errorf("queue: N=%d: %w", n, err)
		}
		out = append(out, SMGPoint{N: n, PerSourceBps: c / float64(n)})
		scope.Count("queue.smg.points", 1)
		scope.Progress("queue.smg", int64(len(out)), int64(len(cfg.Ns)))
	}
	return out, nil
}

// RealizedGain returns the fraction of the theoretically possible
// multiplexing gain achieved at a given allocation: the paper reports 72%
// at N = 5. peak and mean are single-source rates in bits/s.
func RealizedGain(perSourceBps, peakBps, meanBps float64) (float64, error) {
	if !(peakBps > meanBps) {
		return 0, fmt.Errorf("queue: peak %v must exceed mean %v", peakBps, meanBps)
	}
	return (peakBps - perSourceBps) / (peakBps - meanBps), nil
}
