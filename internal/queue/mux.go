package queue

import (
	"context"
	"errors"
	"fmt"
	"math/rand/v2"
	"sort"
	"sync"

	"vbr/internal/errs"
	"vbr/internal/obs"
	"vbr/internal/runner"
	"vbr/internal/source"
	"vbr/internal/trace"
)

// Mux builds aggregate workloads by multiplexing N lagged copies of a
// trace, following §5.1: each copy is offset by a random number of frames,
// wraps around at the end so all frames are used once per source, and the
// lags are pairwise at least MinLagFrames apart (the paper uses 1000
// frames because LRD makes cross-correlation significant even at long
// lags). For N > 2 the paper averages results over Combos random lag
// combinations; Lags generates them reproducibly from Seed.
type Mux struct {
	Trace        *trace.Trace
	N            int
	MinLagFrames int
	Seed         uint64

	// Lag combinations and their aggregate workloads are deterministic
	// given Seed, so they are computed once and reused across the many
	// simulations of a capacity search. The mutex makes the lazy build
	// safe under the parallel runner.
	mu          sync.Mutex
	cachedFrame []Workload
	cachedSlice []Workload
}

// MuxConfig parameterizes a multiplexer: the shared trace, the number
// of lagged copies, the paper's minimum pairwise lag (1000 frames in
// §5.1) and the seed driving lag-combination draws.
type MuxConfig struct {
	Trace        *trace.Trace
	N            int
	MinLagFrames int
	Seed         uint64
}

// NewMuxFromConfig validates and constructs a multiplexer.
func NewMuxFromConfig(cfg MuxConfig) (*Mux, error) {
	if cfg.Trace == nil {
		return nil, fmt.Errorf("queue: nil trace")
	}
	if err := cfg.Trace.Validate(); err != nil {
		return nil, err
	}
	if cfg.N < 1 {
		return nil, fmt.Errorf("queue: source count must be ≥ 1, got %d", cfg.N)
	}
	if cfg.MinLagFrames < 0 {
		return nil, fmt.Errorf("queue: min lag must be ≥ 0, got %d", cfg.MinLagFrames)
	}
	// N·MinLag == len(frames) is the exactly-feasible zero-slack
	// placement (equally spaced lags around the circle), which the
	// constructive Lags sampler supports; only N·MinLag > len is
	// infeasible.
	if cfg.N > 1 && cfg.MinLagFrames*cfg.N > len(cfg.Trace.Frames) {
		return nil, fmt.Errorf("queue: cannot place %d lags ≥ %d apart in %d frames: %w",
			cfg.N, cfg.MinLagFrames, len(cfg.Trace.Frames), errs.ErrInfeasibleLags)
	}
	return &Mux{Trace: cfg.Trace, N: cfg.N, MinLagFrames: cfg.MinLagFrames, Seed: cfg.Seed}, nil
}

// NSources implements Aggregator.
func (m *Mux) NSources() int { return m.N }

// RateEnvelope implements Aggregator: the aggregate mean and peak of N
// phased copies are N times the trace's single-source rates (phasing
// changes neither the marginal sum nor the per-copy peak bound).
func (m *Mux) RateEnvelope() (meanBps, peakBps float64, err error) {
	return m.Trace.MeanRate() * float64(m.N), m.Trace.PeakRate() * float64(m.N), nil
}

// Lags draws one admissible lag combination: N offsets whose pairwise
// circular distances are all at least MinLagFrames, with the first lag 0
// (a pure relabeling of time). The draw is constructive rather than
// rejective — N·MinLagFrames of mandatory spacing is laid down around the
// circle and the remaining slack is split by uniform order statistics —
// so it runs in O(N log N) even when the spacing constraint is tight.
func (m *Mux) Lags(rng *rand.Rand) []int {
	l := len(m.Trace.Frames)
	if m.N == 1 {
		return []int{0}
	}
	slack := l - m.N*m.MinLagFrames // ≥ 0, enforced by NewMux
	offsets := make([]float64, m.N)
	for i := range offsets {
		offsets[i] = rng.Float64() * float64(slack)
	}
	sort.Float64s(offsets)
	lags := make([]int, m.N)
	for i := range lags {
		lags[i] = (int(offsets[i]) + i*m.MinLagFrames) % l
	}
	// Rotate so the first source sits at lag 0; rotation preserves all
	// pairwise circular distances.
	first := lags[0]
	for i := range lags {
		lags[i] = (lags[i] - first + l) % l
	}
	return lags
}

// AggregateSources sums one interval series per source into an
// aggregate workload: the shared §5.1 aggregation step behind both the
// lagged-trace Mux and the scenario-zoo SourceMux. The sum runs
// source-major (all of source 0's intervals, then source 1's, …), which
// fixes the float addition order: two populations yielding the same
// per-source series produce the bitwise-same workload.
func AggregateSources(ctx context.Context, srcs []source.Source, intervals int, intervalSec float64) (Workload, error) {
	if len(srcs) == 0 {
		return Workload{}, fmt.Errorf("queue: no sources to aggregate")
	}
	if intervals < 1 {
		return Workload{}, fmt.Errorf("queue: aggregation needs ≥ 1 intervals, got %d", intervals)
	}
	agg := make([]float64, intervals)
	for _, src := range srcs {
		if ctx.Err() != nil {
			return Workload{}, errs.Cancelled(ctx)
		}
		for i := 0; i < intervals; i++ {
			v, err := src.Next(ctx)
			if err != nil {
				return Workload{}, fmt.Errorf("queue: aggregating %s at interval %d: %w", src.Meta().Name, i, err)
			}
			agg[i] += v
		}
	}
	return Workload{Bytes: agg, Interval: intervalSec}, nil
}

// lagged builds the Source population of one lag combination: a phased
// looping copy of vals per lag, the §5.1 construction.
func lagged(vals []float64, lags []int, scale int, perFrame float64) ([]source.Source, error) {
	srcs := make([]source.Source, len(lags))
	for i, lag := range lags {
		s, err := source.Loop(vals, lag*scale, perFrame*float64(scale))
		if err != nil {
			return nil, err
		}
		srcs[i] = s
	}
	return srcs, nil
}

// FrameWorkload sums the N lagged frame series into one aggregate
// workload at frame granularity.
func (m *Mux) FrameWorkload(lags []int) (Workload, error) {
	if len(lags) != m.N {
		return Workload{}, fmt.Errorf("queue: %d lags for %d sources", len(lags), m.N)
	}
	srcs, err := lagged(m.Trace.Frames, lags, 1, m.Trace.FrameRate)
	if err != nil {
		return Workload{}, err
	}
	//vbrlint:ignore ctxcheck bounded aggregation over N phased copies of the trace; no blocking calls
	return AggregateSources(context.Background(), srcs, len(m.Trace.Frames), 1/m.Trace.FrameRate)
}

// SliceWorkload sums the N lagged slice series into one aggregate
// workload at slice granularity (the resolution the paper's simulations
// use). The trace must carry slice data.
func (m *Mux) SliceWorkload(lags []int) (Workload, error) {
	if m.Trace.Slices == nil {
		return Workload{}, fmt.Errorf("queue: trace has no slice data")
	}
	if len(lags) != m.N {
		return Workload{}, fmt.Errorf("queue: %d lags for %d sources", len(lags), m.N)
	}
	spf := m.Trace.SlicesPerFrame
	srcs, err := lagged(m.Trace.Slices, lags, spf, m.Trace.FrameRate)
	if err != nil {
		return Workload{}, err
	}
	//vbrlint:ignore ctxcheck bounded aggregation over N phased copies of the trace; no blocking calls
	return AggregateSources(context.Background(), srcs, len(m.Trace.Slices), 1/(m.Trace.FrameRate*float64(spf)))
}

// Combos returns the number of lag combinations §5.1 prescribes: one for
// N ≤ 2 (the lag relabels time and, for N=2, only the relative lag
// matters over a full wrap), six otherwise.
func (m *Mux) Combos() int {
	if m.N <= 2 {
		return 1
	}
	return 6
}

// workloads returns (building and caching on first use) the aggregate
// workloads of the Combos lag combinations drawn deterministically from
// Seed. Safe for concurrent use; the cached workloads are read-only
// after the build.
func (m *Mux) workloads(useSlices bool) ([]Workload, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if useSlices && m.cachedSlice != nil {
		return m.cachedSlice, nil
	}
	if !useSlices && m.cachedFrame != nil {
		return m.cachedFrame, nil
	}
	rng := rand.New(rand.NewPCG(m.Seed, 0x1a65))
	combos := m.Combos()
	ws := make([]Workload, 0, combos)
	for c := 0; c < combos; c++ {
		lags := m.Lags(rng)
		var w Workload
		var err error
		if useSlices {
			w, err = m.SliceWorkload(lags)
		} else {
			w, err = m.FrameWorkload(lags)
		}
		if err != nil {
			return nil, err
		}
		ws = append(ws, w)
	}
	if useSlices {
		m.cachedSlice = ws
	} else {
		m.cachedFrame = ws
	}
	return ws, nil
}

// comboFailHook, when non-nil, is invoked before each lag combination's
// simulation. Tests use it to inject per-combination failures and
// panics; it is never set in production code.
var comboFailHook func(combo int) error

// AverageLoss runs the fluid simulation over Combos lag combinations and
// returns the mean overall and worst-errored-second loss rates, plus the
// per-window loss series of the first combination when requested.
func (m *Mux) AverageLoss(capacityBps, bufferBytes float64, useSlices bool, opts Options) (*Result, error) {
	return m.AverageLossCtx(context.Background(), capacityBps, bufferBytes, useSlices, opts)
}

// AverageLossCtx is AverageLoss with cancellation and panic-safe
// parallelism: the lag combinations run concurrently across worker
// goroutines, a combination that fails or panics is excluded, and the
// averages are taken over the survivors (per-combo failures are reported
// in Result.ComboErrors). It fails outright only when the context is
// cancelled or every combination failed.
func (m *Mux) AverageLossCtx(ctx context.Context, capacityBps, bufferBytes float64, useSlices bool, opts Options) (*Result, error) {
	ws, err := m.workloads(useSlices)
	if err != nil {
		return nil, err
	}
	return averageOverCombos(ctx, ws, capacityBps, bufferBytes, opts)
}

// averageOverCombos runs the fluid simulation over one workload per lag
// combination and averages the survivors — the shared §5.1 averaging
// step behind every Aggregator. Combinations run concurrently and
// panic-safe; a failed combination is excluded and reported in
// Result.ComboErrors, and only full failure or cancellation errors the
// call.
func averageOverCombos(ctx context.Context, ws []Workload, capacityBps, bufferBytes float64, opts Options) (*Result, error) {
	results := runner.Run(ctx, len(ws), runner.Options{
		Label: func(i int) string { return fmt.Sprintf("lag combo %d", i) },
	}, func(_ context.Context, c int) (*Result, error) {
		if comboFailHook != nil {
			if err := comboFailHook(c); err != nil {
				return nil, err
			}
		}
		o := opts
		if c > 0 {
			o.WindowIntervals = 0 // window series only from the first combo
		}
		return Simulate(ws[c], capacityBps, bufferBytes, o)
	})
	if ctx.Err() != nil {
		// A partial average over whichever combos happened to finish
		// would be silently biased; cancellation aborts the call.
		return nil, fmt.Errorf("queue: multiplexer average interrupted: %w", errs.Cancelled(ctx))
	}
	ok, failed := runner.Split(results)
	// Metrics are recorded at combo granularity, not inside the
	// per-interval fluid loop, so the simulator hot path stays
	// instrumentation-free.
	scope := obs.From(ctx)
	scope.Count("queue.combos.done", int64(len(ok)))
	scope.Count("queue.combos.failed", int64(len(failed)))
	if len(ok) == 0 {
		return nil, fmt.Errorf("queue: %w: %w", errs.ErrAllCombosFailed, errors.Join(runner.Errors(results)...))
	}
	var bytes float64
	for _, res := range ok {
		bytes += res.Value.TotalBytes
	}
	scope.Count("queue.bytes.simulated", int64(bytes))
	avg := &Result{CombosTotal: len(ws), CombosUsed: len(ok), ComboErrors: runner.Errors(results)}
	for _, res := range ok {
		r := res.Value
		avg.TotalBytes += r.TotalBytes
		avg.LostBytes += r.LostBytes
		avg.Pl += r.Pl
		avg.PlWES += r.PlWES
		if r.MaxBacklog > avg.MaxBacklog {
			avg.MaxBacklog = r.MaxBacklog
		}
		if res.Index == 0 {
			avg.WindowLoss = r.WindowLoss
		}
	}
	avg.Pl /= float64(len(ok))
	avg.PlWES /= float64(len(ok))
	return avg, nil
}
