package queue

import (
	"context"
	"fmt"
	"sync"

	"vbr/internal/source"
)

// Aggregator is the multiplexer contract the capacity search and the
// experiment suites consume: something that can simulate its aggregate
// workload against a (capacity, buffer) point, say how many sources it
// multiplexes, and bracket its aggregate rate for bisection. The
// classic lagged-trace Mux and the scenario-zoo SourceMux both
// implement it, so a Q–C sweep runs unchanged over either population.
type Aggregator interface {
	// AverageLossCtx simulates the aggregate workload at the given
	// capacity (bits/s) and buffer (bytes), averaging losses over the
	// multiplexer's lag/seed combinations. useSlices selects slice
	// granularity where the population supports it.
	AverageLossCtx(ctx context.Context, capacityBps, bufferBytes float64, useSlices bool, opts Options) (*Result, error)
	// NSources reports how many sources share the buffer.
	NSources() int
	// RateEnvelope reports the aggregate mean and peak rates in bits/s,
	// the bracket the capacity bisection searches inside.
	RateEnvelope() (meanBps, peakBps float64, err error)
}

var (
	_ Aggregator = (*Mux)(nil)
	_ Aggregator = (*SourceMux)(nil)
)

// SourceMuxConfig parameterizes a scenario-zoo multiplexer: a
// population of Source models sharing one buffer.
type SourceMuxConfig struct {
	// Sources is the population; every member must report the same
	// frame rate (heterogeneous models are fine, heterogeneous clocks
	// are not).
	Sources []source.Source
	// Frames is the number of frames each simulated workload spans.
	Frames int
	// Combos is the number of independently reseeded replications to
	// average over, the zoo analogue of §5.1's lag combinations. Zero
	// selects the paper's rule: 1 for ≤ 2 sources, 6 otherwise.
	Combos int
	// Seed drives all randomness: replication c reseeds source j with
	// SubSeed(SubSeed(Seed, c), j).
	Seed uint64
}

// SourceMux multiplexes a heterogeneous population of scenario-zoo
// sources into aggregate workloads, replacing §5.1's lagged trace
// copies with independently seeded model replications. It implements
// Aggregator, so capacity searches and Q–C sweeps treat it exactly
// like the classic Mux.
type SourceMux struct {
	sources []source.Source
	frames  int
	combos  int
	seed    uint64
	fps     float64

	// Workloads are deterministic given Seed; build once, reuse across
	// the many simulations of a capacity search. The mutex makes the
	// lazy build safe under concurrent searches.
	mu     sync.Mutex
	cached []Workload
}

// NewSourceMuxFromConfig validates and constructs a zoo multiplexer.
//
//vbrlint:ignore ctxcheck bounded validation pass over the population; no generation happens here
func NewSourceMuxFromConfig(cfg SourceMuxConfig) (*SourceMux, error) {
	if len(cfg.Sources) == 0 {
		return nil, fmt.Errorf("queue: source mux needs ≥ 1 sources")
	}
	if cfg.Frames < 1 {
		return nil, fmt.Errorf("queue: source mux needs ≥ 1 frames, got %d", cfg.Frames)
	}
	if cfg.Combos < 0 {
		return nil, fmt.Errorf("queue: combos must be ≥ 0, got %d", cfg.Combos)
	}
	fps := cfg.Sources[0].Meta().FrameRate
	if !(fps > 0) {
		return nil, fmt.Errorf("queue: source %s reports frame rate %v, want > 0", cfg.Sources[0].Meta().Name, fps)
	}
	for i, s := range cfg.Sources[1:] {
		//vbrlint:ignore floateq frame rates are configuration literals sharing one clock; exact mismatch is the defect
		if got := s.Meta().FrameRate; got != fps {
			return nil, fmt.Errorf("queue: sources must share a frame rate: source 0 has %v fps, source %d (%s) has %v",
				fps, i+1, s.Meta().Name, got)
		}
	}
	combos := cfg.Combos
	if combos == 0 {
		combos = 1
		if len(cfg.Sources) > 2 {
			combos = 6
		}
	}
	return &SourceMux{
		sources: cfg.Sources,
		frames:  cfg.Frames,
		combos:  combos,
		seed:    cfg.Seed,
		fps:     fps,
	}, nil
}

// NSources implements Aggregator.
func (m *SourceMux) NSources() int { return len(m.sources) }

// Combos reports the number of reseeded replications averaged over.
func (m *SourceMux) Combos() int { return m.combos }

// FrameRate reports the population's shared frame rate.
func (m *SourceMux) FrameRate() float64 { return m.fps }

// workloads builds (once, then caches) the aggregate workload of each
// replication: replication c resets source j to SubSeed(SubSeed(seed,
// c), j) and the per-frame outputs are summed source-major via
// AggregateSources, fixing the float addition order.
func (m *SourceMux) workloads(ctx context.Context) ([]Workload, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.cached != nil {
		return m.cached, nil
	}
	ws := make([]Workload, 0, m.combos)
	for c := 0; c < m.combos; c++ {
		comboSeed := source.SubSeed(m.seed, c)
		for j, s := range m.sources {
			s.Reset(source.SubSeed(comboSeed, j))
		}
		w, err := AggregateSources(ctx, m.sources, m.frames, 1/m.fps)
		if err != nil {
			return nil, fmt.Errorf("queue: building replication %d: %w", c, err)
		}
		ws = append(ws, w)
	}
	m.cached = ws
	return ws, nil
}

// RateEnvelope implements Aggregator. Zoo models may be unbounded
// (heavy tails), so the envelope is read off the realized workloads:
// the mean over replications of the aggregate mean rate, and the
// maximum realized aggregate peak — exactly the range the capacity
// bisection needs to bracket its simulations.
//
//vbrlint:ignore ctxcheck the Aggregator contract fixes this signature; the envelope fold is bounded by the combo count
func (m *SourceMux) RateEnvelope() (meanBps, peakBps float64, err error) {
	//vbrlint:ignore ctxcheck workloads are cached after the first bounded build; there is no ctx to pass through
	ws, err := m.workloads(context.Background())
	if err != nil {
		return 0, 0, err
	}
	for _, w := range ws {
		meanBps += w.MeanRate()
		if p := w.PeakRate(); p > peakBps {
			peakBps = p
		}
	}
	meanBps /= float64(len(ws))
	return meanBps, peakBps, nil
}

// AverageLoss is AverageLossCtx without cancellation.
func (m *SourceMux) AverageLoss(capacityBps, bufferBytes float64, opts Options) (*Result, error) {
	return m.AverageLossCtx(context.Background(), capacityBps, bufferBytes, false, opts)
}

// AverageLossCtx implements Aggregator: the fluid simulation over the
// replications' workloads, averaged over survivors. Zoo sources supply
// frames, not slices, so useSlices must be false.
func (m *SourceMux) AverageLossCtx(ctx context.Context, capacityBps, bufferBytes float64, useSlices bool, opts Options) (*Result, error) {
	if useSlices {
		return nil, fmt.Errorf("queue: scenario-zoo sources supply frame granularity only")
	}
	ws, err := m.workloads(ctx)
	if err != nil {
		return nil, err
	}
	return averageOverCombos(ctx, ws, capacityBps, bufferBytes, opts)
}
