package queue

import (
	"math"
	"math/rand/v2"
	"testing"
)

func layeredTestWorkload(n int, seed uint64) Workload {
	rng := rand.New(rand.NewPCG(seed, 1))
	bytes := make([]float64, n)
	for i := range bytes {
		bytes[i] = 800 + 900*rng.Float64()
		if i%500 < 20 { // bursts
			bytes[i] *= 2.5
		}
	}
	return Workload{Bytes: bytes, Interval: 0.01}
}

func TestSplitLayersConservation(t *testing.T) {
	w := layeredTestWorkload(1000, 1)
	lw, err := SplitLayers(w, 0.6)
	if err != nil {
		t.Fatal(err)
	}
	for i := range w.Bytes {
		if math.Abs(lw.Base[i]+lw.Enhancement[i]-w.Bytes[i]) > 1e-9 {
			t.Fatalf("layer split not conservative at %d", i)
		}
		if math.Abs(lw.Base[i]-0.6*w.Bytes[i]) > 1e-9 {
			t.Fatalf("base fraction wrong at %d", i)
		}
	}
	if _, err := SplitLayers(w, 0); err == nil {
		t.Error("zero base fraction should fail")
	}
	if _, err := SplitLayers(w, 1.5); err == nil {
		t.Error("base fraction > 1 should fail")
	}
	if _, err := SplitLayers(Workload{}, 0.5); err == nil {
		t.Error("invalid workload should fail")
	}
}

func TestSimulatePriorityProtectsBaseLayer(t *testing.T) {
	w := layeredTestWorkload(20000, 2)
	lw, err := SplitLayers(w, 0.7)
	if err != nil {
		t.Fatal(err)
	}
	// Capacity between base load and total load: base layer fits,
	// enhancement must absorb the shortage.
	capacity := w.MeanRate() * 0.9
	r, err := SimulatePriority(lw, capacity, 8000, 3000)
	if err != nil {
		t.Fatal(err)
	}
	if r.PlEnhancement <= r.PlBase {
		t.Errorf("priority inverted: base %v, enhancement %v", r.PlBase, r.PlEnhancement)
	}
	// Base average load is 0.78 of capacity but its ×2.5 bursts exceed
	// the service rate, so some base loss is expected; priority must
	// still keep it an order of magnitude below the enhancement loss.
	if r.PlBase > 0.1 {
		t.Errorf("base-layer loss %v too high", r.PlBase)
	}
	if r.PlEnhancement < 5*r.PlBase {
		t.Errorf("priority too weak: base %v, enhancement %v", r.PlBase, r.PlEnhancement)
	}
	if r.PlEnhancement < 0.1 {
		t.Errorf("enhancement loss %v suspiciously low at 90%% load", r.PlEnhancement)
	}
}

func TestSimulatePriorityConservation(t *testing.T) {
	w := layeredTestWorkload(5000, 3)
	lw, _ := SplitLayers(w, 0.5)
	r, err := SimulatePriority(lw, w.MeanRate()*0.8, 5000, 2000)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(r.BaseBytes-0.5*w.TotalBytes()) > 1e-6*w.TotalBytes() {
		t.Errorf("base accounting off: %v", r.BaseBytes)
	}
	totalLoss := r.BaseLost + r.EnhancementLost
	wantTotal := r.PlTotal * (r.BaseBytes + r.EnhancementBytes)
	if math.Abs(totalLoss-wantTotal) > 1e-6*totalLoss {
		t.Errorf("total loss accounting off")
	}
	if r.BaseLost < 0 || r.EnhancementLost < 0 {
		t.Error("negative loss")
	}
	if r.MaxBacklog > 5000 {
		t.Errorf("backlog %v exceeds buffer", r.MaxBacklog)
	}
}

func TestSimulatePriorityThresholdMonotone(t *testing.T) {
	// Lowering the enhancement threshold must shift loss from base to
	// enhancement.
	w := layeredTestWorkload(20000, 4)
	lw, _ := SplitLayers(w, 0.7)
	capacity := w.MeanRate() * 0.95
	var prevBase, prevEnh float64 = math.Inf(1), -1
	for _, thr := range []float64{8000, 4000, 1000} {
		r, err := SimulatePriority(lw, capacity, 8000, thr)
		if err != nil {
			t.Fatal(err)
		}
		if r.PlBase > prevBase+1e-9 {
			t.Errorf("base loss rose when threshold dropped to %v", thr)
		}
		if r.PlEnhancement < prevEnh-1e-9 {
			t.Errorf("enhancement loss fell when threshold dropped to %v", thr)
		}
		prevBase, prevEnh = r.PlBase, r.PlEnhancement
	}
}

func TestSimulatePriorityFIFOLimit(t *testing.T) {
	// threshold == buffer and baseFrac == 1 reduces to a plain FIFO: the
	// totals must match the fluid simulator's loss closely (the two use
	// slightly different service/arrival interleaving, so allow a small
	// relative tolerance).
	w := layeredTestWorkload(20000, 5)
	lw, _ := SplitLayers(w, 1.0)
	capacity := w.MeanRate() * 0.9
	pr, err := SimulatePriority(lw, capacity, 6000, 6000)
	if err != nil {
		t.Fatal(err)
	}
	fl, err := Simulate(w, capacity, 6000, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(pr.PlTotal-fl.Pl) > 0.15*fl.Pl+1e-4 {
		t.Errorf("FIFO limit: priority %v vs fluid %v", pr.PlTotal, fl.Pl)
	}
}

func TestSimulatePriorityValidation(t *testing.T) {
	w := layeredTestWorkload(100, 6)
	lw, _ := SplitLayers(w, 0.5)
	if _, err := SimulatePriority(lw, 0, 1000, 500); err == nil {
		t.Error("zero capacity should fail")
	}
	if _, err := SimulatePriority(lw, 1e6, 1000, 2000); err == nil {
		t.Error("threshold > buffer should fail")
	}
	if _, err := SimulatePriority(lw, 1e6, -1, 0); err == nil {
		t.Error("negative buffer should fail")
	}
	if _, err := SimulatePriority(LayeredWorkload{}, 1e6, 1000, 500); err == nil {
		t.Error("invalid workload should fail")
	}
	bad := LayeredWorkload{Base: []float64{1}, Enhancement: []float64{-1}, Interval: 1}
	if _, err := SimulatePriority(bad, 1e6, 1000, 500); err == nil {
		t.Error("negative arrivals should fail")
	}
}
