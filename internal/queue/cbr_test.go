package queue

import (
	"math"
	"math/rand/v2"
	"testing"
)

func TestCBRRateZeroDelayIsPeak(t *testing.T) {
	w := Workload{Bytes: []float64{100, 300, 200}, Interval: 0.1}
	r, err := CBRRate(w, 0)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(r-w.PeakRate()) > 1e-6*w.PeakRate() {
		t.Errorf("zero-delay CBR rate %v, want peak %v", r, w.PeakRate())
	}
}

func TestCBRRateLargeDelayApproachesMean(t *testing.T) {
	w := layeredTestWorkload(5000, 10)
	r, err := CBRRate(w, 1e6) // essentially unbounded smoothing
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(r-w.MeanRate()) > 0.01*w.MeanRate() {
		t.Errorf("unbounded-delay CBR rate %v, want mean %v", r, w.MeanRate())
	}
}

func TestCBRRateMonotoneInDelay(t *testing.T) {
	w := layeredTestWorkload(10000, 11)
	prev := math.Inf(1)
	for _, d := range []float64{0, 0.01, 0.1, 1, 10} {
		r, err := CBRRate(w, d)
		if err != nil {
			t.Fatal(err)
		}
		if r > prev*(1+1e-9) {
			t.Errorf("CBR rate rose with delay %v: %v > %v", d, r, prev)
		}
		if r < w.MeanRate()-1 {
			t.Errorf("CBR rate %v below mean", r)
		}
		prev = r
	}
}

func TestCBRRateFeasibility(t *testing.T) {
	// The returned rate must actually satisfy the delay bound, and a
	// slightly smaller rate must violate it.
	w := layeredTestWorkload(8000, 12)
	const delay = 0.05
	r, err := CBRRate(w, delay)
	if err != nil {
		t.Fatal(err)
	}
	check := func(rate float64) bool {
		service := rate / 8 * w.Interval
		limit := rate / 8 * delay
		var q float64
		for _, a := range w.Bytes {
			q = math.Max(0, q+a-service)
			if q > limit {
				return false
			}
		}
		return true
	}
	if !check(r * (1 + 1e-6)) {
		t.Error("returned rate infeasible")
	}
	if check(r * 0.99) {
		t.Error("1% smaller rate should be infeasible")
	}
	if _, err := CBRRate(w, -1); err == nil {
		t.Error("negative delay should fail")
	}
	if _, err := CBRRate(Workload{}, 1); err == nil {
		t.Error("invalid workload should fail")
	}
}

func TestZeroLossCapacityExactHandCase(t *testing.T) {
	// Arrivals 100/300/100 per 0.1 s, buffer 100 bytes.
	// S = 0,100,400,500. C*·Δt/8 = max over pairs of (S_j-S_i-100)/(j-i):
	// j=2,i=1: (300-100)/1 = 200 → C* = 200·8/0.1 = 16000 bps.
	w := Workload{Bytes: []float64{100, 300, 100}, Interval: 0.1}
	c, err := ZeroLossCapacityExact(w, 100)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(c-16000) > 1e-6 {
		t.Errorf("exact zero-loss capacity %v, want 16000", c)
	}
}

func TestZeroLossCapacityExactMatchesBisection(t *testing.T) {
	rng := rand.New(rand.NewPCG(13, 14))
	bytes := make([]float64, 20000)
	for i := range bytes {
		bytes[i] = 500 + 1500*rng.Float64()
		if i%777 < 15 {
			bytes[i] *= 3
		}
	}
	w := Workload{Bytes: bytes, Interval: 0.01}
	for _, q := range []float64{0, 1000, 10000, 100000} {
		exact, err := ZeroLossCapacityExact(w, q)
		if err != nil {
			t.Fatal(err)
		}
		// Verify with the simulator: no loss at exact, loss slightly below.
		r, err := Simulate(w, exact*(1+1e-9), q, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if r.LostBytes > 1e-6 {
			t.Errorf("Q=%v: loss %v at the exact capacity", q, r.LostBytes)
		}
		if exact > 0 {
			r2, err := Simulate(w, exact*0.999, q, Options{})
			if err != nil {
				t.Fatal(err)
			}
			if r2.LostBytes == 0 {
				t.Errorf("Q=%v: no loss 0.1%% below the exact capacity", q)
			}
		}
		// And against the bisection search.
		loss := func(c float64) (float64, error) {
			r, err := Simulate(w, c, q, Options{})
			if err != nil {
				return 0, err
			}
			return r.Pl, nil
		}
		bisect, err := MinCapacity(loss, w.MeanRate()*0.5, w.PeakRate()*1.05, LossTarget{Pl: 0})
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(bisect-exact) > 2e-3*exact {
			t.Errorf("Q=%v: bisection %v vs exact %v", q, bisect, exact)
		}
	}
}

func TestZeroLossCapacityExactZeroBufferIsPeak(t *testing.T) {
	w := layeredTestWorkload(2000, 15)
	c, err := ZeroLossCapacityExact(w, 0)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(c-w.PeakRate()) > 1e-6*w.PeakRate() {
		t.Errorf("zero-buffer capacity %v, want peak %v", c, w.PeakRate())
	}
	if _, err := ZeroLossCapacityExact(w, -1); err == nil {
		t.Error("negative buffer should fail")
	}
	if _, err := ZeroLossCapacityExact(Workload{}, 0); err == nil {
		t.Error("invalid workload should fail")
	}
}

func TestZeroLossCapacityExactHugeBufferIsZeroish(t *testing.T) {
	// A buffer larger than the whole trace's bytes never overflows at
	// any positive capacity, so C* = 0 (the max in the formula is ≤ 0).
	w := Workload{Bytes: []float64{5, 5, 5}, Interval: 1}
	c, err := ZeroLossCapacityExact(w, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if c != 0 {
		t.Errorf("capacity %v, want 0", c)
	}
}

func TestCBRvsVBRComparison(t *testing.T) {
	// The paper's motivation: at equal (small) delay budget, CBR needs
	// more bandwidth than a VBR allocation tolerating small loss.
	w := layeredTestWorkload(20000, 16)
	const delay = 0.002
	cbr, err := CBRRate(w, delay)
	if err != nil {
		t.Fatal(err)
	}
	loss := func(c float64) (float64, error) {
		r, err := Simulate(w, c, delay*c/8, Options{})
		if err != nil {
			return 0, err
		}
		return r.Pl, nil
	}
	vbr, err := MinCapacity(loss, w.MeanRate()*0.5, w.PeakRate()*1.05, LossTarget{Pl: 1e-3})
	if err != nil {
		t.Fatal(err)
	}
	if vbr >= cbr {
		t.Errorf("VBR with loss tolerance (%v) not cheaper than CBR (%v)", vbr, cbr)
	}
}
