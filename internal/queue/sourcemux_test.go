package queue

import (
	"context"
	"errors"
	"math"
	"testing"

	"vbr/internal/source"
)

func zooPopulation(t *testing.T, spec string, seed uint64) []source.Source {
	t.Helper()
	specs, err := source.ParseSpec(spec)
	if err != nil {
		t.Fatal(err)
	}
	srcs, err := source.NewPopulation(specs, seed)
	if err != nil {
		t.Fatal(err)
	}
	return srcs
}

func TestSourceMuxValidation(t *testing.T) {
	if _, err := NewSourceMuxFromConfig(SourceMuxConfig{Frames: 100}); err == nil {
		t.Error("empty population accepted")
	}
	srcs := zooPopulation(t, "poisson:fps=24*2", 1)
	if _, err := NewSourceMuxFromConfig(SourceMuxConfig{Sources: srcs}); err == nil {
		t.Error("zero frames accepted")
	}
	if _, err := NewSourceMuxFromConfig(SourceMuxConfig{Sources: srcs, Frames: 100, Combos: -1}); err == nil {
		t.Error("negative combos accepted")
	}
	mixed := zooPopulation(t, "poisson:fps=24+onoff:fps=72", 1)
	if _, err := NewSourceMuxFromConfig(SourceMuxConfig{Sources: mixed, Frames: 100}); err == nil {
		t.Error("mismatched frame rates accepted")
	}

	m, err := NewSourceMuxFromConfig(SourceMuxConfig{Sources: srcs, Frames: 100, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if m.NSources() != 2 {
		t.Errorf("NSources = %d, want 2", m.NSources())
	}
	if m.Combos() != 1 {
		t.Errorf("2-source default combos = %d, want 1", m.Combos())
	}
	if m.FrameRate() != 24 {
		t.Errorf("FrameRate = %v, want 24", m.FrameRate())
	}
	big, err := NewSourceMuxFromConfig(SourceMuxConfig{Sources: zooPopulation(t, "poisson:fps=24*3", 1), Frames: 100})
	if err != nil {
		t.Fatal(err)
	}
	if big.Combos() != 6 {
		t.Errorf("3-source default combos = %d, want 6", big.Combos())
	}
}

// TestSourceMuxDeterminism pins the zoo multiplexer's reproducibility:
// two muxes built from the same spec and seed must produce bitwise
// identical loss results, and a different seed must not.
func TestSourceMuxDeterminism(t *testing.T) {
	build := func(seed uint64) *SourceMux {
		t.Helper()
		m, err := NewSourceMuxFromConfig(SourceMuxConfig{
			Sources: zooPopulation(t, "poisson:rate=2e6,fps=24*2+onoff:rate=1e6,peak=8e6,fps=24", seed),
			Frames:  2048,
			Seed:    seed,
		})
		if err != nil {
			t.Fatal(err)
		}
		return m
	}
	m1, m2, m3 := build(11), build(11), build(12)
	mean, peak, err := m1.RateEnvelope()
	if err != nil {
		t.Fatal(err)
	}
	if !(peak > mean) || !(mean > 0) {
		t.Fatalf("degenerate envelope mean=%v peak=%v", mean, peak)
	}
	capacity := (mean + peak) / 2
	r1, err := m1.AverageLoss(capacity, 20000, Options{})
	if err != nil {
		t.Fatal(err)
	}
	r2, err := m2.AverageLoss(capacity, 20000, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if math.Float64bits(r1.Pl) != math.Float64bits(r2.Pl) ||
		math.Float64bits(r1.TotalBytes) != math.Float64bits(r2.TotalBytes) {
		t.Errorf("same seed diverged: Pl %v vs %v, bytes %v vs %v", r1.Pl, r2.Pl, r1.TotalBytes, r2.TotalBytes)
	}
	r3, err := m3.AverageLoss(capacity, 20000, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if math.Float64bits(r3.TotalBytes) == math.Float64bits(r1.TotalBytes) {
		t.Error("different seeds produced identical workloads")
	}
}

func TestSourceMuxRejectsSlices(t *testing.T) {
	m, err := NewSourceMuxFromConfig(SourceMuxConfig{
		Sources: zooPopulation(t, "poisson:fps=24*2", 1),
		Frames:  64,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.AverageLossCtx(context.Background(), 1e6, 1e4, true, Options{}); err == nil {
		t.Error("slice granularity accepted for zoo sources")
	}
}

func TestSourceMuxCancellation(t *testing.T) {
	m, err := NewSourceMuxFromConfig(SourceMuxConfig{
		Sources: zooPopulation(t, "poisson:fps=24*2", 1),
		Frames:  4096,
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := m.AverageLossCtx(ctx, 1e6, 1e4, false, Options{}); err == nil || !errors.Is(err, context.Canceled) {
		t.Errorf("cancelled build err = %v, want context.Canceled", err)
	}
}

// TestQCCurveOverSourceMux runs the Fig. 14 sweep machinery unchanged
// over a heterogeneous zoo population through the Aggregator seam: the
// per-source allocation must be finite, above the per-source mean and
// non-increasing in the buffer delay.
func TestQCCurveOverSourceMux(t *testing.T) {
	m, err := NewSourceMuxFromConfig(SourceMuxConfig{
		Sources: zooPopulation(t, "poisson:rate=2e6,fps=24*2+onoff:rate=1e6,peak=6e6,fps=24*2", uint64(1994)),
		Frames:  4096,
		Combos:  2,
		Seed:    uint64(1994),
	})
	if err != nil {
		t.Fatal(err)
	}
	points, err := QCCurve(QCCurveConfig{
		Mux:      m,
		Target:   LossTarget{Pl: 1e-2},
		TmaxGrid: []float64{0.002, 0.032, 0.512},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 3 {
		t.Fatalf("got %d points, want 3", len(points))
	}
	mean, _, err := m.RateEnvelope()
	if err != nil {
		t.Fatal(err)
	}
	perSourceMean := mean / float64(m.NSources())
	for i, p := range points {
		if !(p.PerSourceBps > 0) || math.IsInf(p.PerSourceBps, 0) {
			t.Fatalf("point %d: bad allocation %v", i, p.PerSourceBps)
		}
		if p.PerSourceBps < perSourceMean*0.99 {
			t.Errorf("point %d: allocation %v below per-source mean %v", i, p.PerSourceBps, perSourceMean)
		}
		if i > 0 && p.PerSourceBps > points[i-1].PerSourceBps*1.0001 {
			t.Errorf("allocation increased with buffer: %v -> %v", points[i-1].PerSourceBps, p.PerSourceBps)
		}
	}
}
