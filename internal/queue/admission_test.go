package queue

import (
	"math"
	"math/rand/v2"
	"testing"

	"vbr/internal/dist"
)

func TestMarginalAllocationSingleSourceIsQuantile(t *testing.T) {
	gp, err := dist.NewGammaParetoFromParams(dist.GammaParetoParams{MuGamma: 27791, SigmaGamma: 6254, TailSlope: 12})
	if err != nil {
		t.Fatal(err)
	}
	const interval = 1.0 / 24
	const eps = 1e-3
	c, err := MarginalAllocation(gp, 1, interval, eps, 10000)
	if err != nil {
		t.Fatal(err)
	}
	want := gp.Quantile(1-eps) * 8 / interval
	if math.Abs(c-want) > 0.01*want {
		t.Errorf("single-source allocation %v, want quantile-rate %v", c, want)
	}
}

func TestMarginalAllocationSMGShape(t *testing.T) {
	// Per-source allocation must fall monotonically toward the mean rate
	// as N grows — the bufferless version of Fig. 15.
	gp, _ := dist.NewGammaParetoFromParams(dist.GammaParetoParams{MuGamma: 27791, SigmaGamma: 6254, TailSlope: 12})
	const interval = 1.0 / 24
	meanRate := gp.Mean() * 8 / interval
	prev := math.Inf(1)
	for _, n := range []int{1, 2, 5, 20} {
		c, err := MarginalAllocation(gp, n, interval, 1e-3, 4000)
		if err != nil {
			t.Fatal(err)
		}
		per := c / float64(n)
		if per > prev*1.01 {
			t.Errorf("N=%d: per-source %v not decreasing", n, per)
		}
		if per < meanRate*0.98 {
			t.Errorf("N=%d: per-source %v below mean rate %v", n, per, meanRate)
		}
		prev = per
	}
	// By N=20 the per-source share should be within ~25% of the mean.
	if prev > meanRate*1.3 {
		t.Errorf("N=20 allocation %v still far above mean %v", prev, meanRate)
	}
}

func TestMarginalAllocationMatchesIIDSimulation(t *testing.T) {
	// Ground truth: simulate N i.i.d. sources through a bufferless queue
	// at the allocated capacity; the overflow (loss > 0 per interval)
	// fraction must be ≈ eps.
	gp, _ := dist.NewGammaParetoFromParams(dist.GammaParetoParams{MuGamma: 27791, SigmaGamma: 6254, TailSlope: 12})
	const interval = 1.0 / 24
	const eps = 0.01
	const n = 5
	c, err := MarginalAllocation(gp, n, interval, eps, 8000)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewPCG(1, 2))
	const frames = 200000
	service := c / 8 * interval
	var overflow int
	for i := 0; i < frames; i++ {
		var agg float64
		for s := 0; s < n; s++ {
			agg += gp.Sample(rng)
		}
		if agg > service {
			overflow++
		}
	}
	got := float64(overflow) / frames
	if got > 2*eps || got < eps/4 {
		t.Errorf("empirical overflow %v, want ≈ %v", got, eps)
	}
}

func TestMarginalAllocationHeavyTailMatters(t *testing.T) {
	// The paper's point: at small eps the Pareto tail demands visibly
	// more capacity than a Gaussian with the same moments.
	gp, _ := dist.NewGammaParetoFromParams(dist.GammaParetoParams{MuGamma: 27791, SigmaGamma: 6254, TailSlope: 8})
	gauss, _ := dist.NewNormal(gp.Mean(), math.Sqrt(gp.Variance()))
	const interval = 1.0 / 24
	const eps = 1e-5
	cHeavy, err := MarginalAllocation(gp, 1, interval, eps, 10000)
	if err != nil {
		t.Fatal(err)
	}
	cGauss, err := MarginalAllocation(gauss, 1, interval, eps, 10000)
	if err != nil {
		t.Fatal(err)
	}
	if cHeavy <= cGauss*1.05 {
		t.Errorf("heavy tail allocation %v not above gaussian %v", cHeavy, cGauss)
	}
}

func TestMarginalAllocationValidation(t *testing.T) {
	gp, _ := dist.NewGammaParetoFromParams(dist.GammaParetoParams{MuGamma: 100, SigmaGamma: 30, TailSlope: 5})
	if _, err := MarginalAllocation(nil, 1, 1, 0.01, 1000); err == nil {
		t.Error("nil distribution should fail")
	}
	if _, err := MarginalAllocation(gp, 0, 1, 0.01, 1000); err == nil {
		t.Error("n=0 should fail")
	}
	if _, err := MarginalAllocation(gp, 1, 0, 0.01, 1000); err == nil {
		t.Error("zero interval should fail")
	}
	if _, err := MarginalAllocation(gp, 1, 1, 0, 1000); err == nil {
		t.Error("eps=0 should fail")
	}
	if _, err := MarginalAllocation(gp, 1, 1, 0.01, 10); err == nil {
		t.Error("tiny table should fail")
	}
}

func TestAdmissibleSources(t *testing.T) {
	gp, _ := dist.NewGammaParetoFromParams(dist.GammaParetoParams{MuGamma: 27791, SigmaGamma: 6254, TailSlope: 12})
	const interval = 1.0 / 24
	const eps = 1e-3
	// Capacity for exactly 5 sources, then ask how many fit.
	c5, err := MarginalAllocation(gp, 5, interval, eps, 4000)
	if err != nil {
		t.Fatal(err)
	}
	n, err := AdmissibleSources(gp, c5*1.001, interval, eps, 4000, 40)
	if err != nil {
		t.Fatal(err)
	}
	if n != 5 {
		t.Errorf("admitted %d sources at the 5-source allocation", n)
	}
	// Slightly less capacity admits fewer.
	nLess, err := AdmissibleSources(gp, c5*0.99, interval, eps, 4000, 40)
	if err != nil {
		t.Fatal(err)
	}
	if nLess >= 5 {
		t.Errorf("admitted %d sources below the 5-source allocation", nLess)
	}
	// Tiny capacity admits none.
	n0, err := AdmissibleSources(gp, 1000, interval, eps, 4000, 40)
	if err != nil {
		t.Fatal(err)
	}
	if n0 != 0 {
		t.Errorf("admitted %d sources at 1 kb/s", n0)
	}
	// Huge capacity admits maxN.
	nMax, err := AdmissibleSources(gp, 1e12, interval, eps, 4000, 17)
	if err != nil {
		t.Fatal(err)
	}
	if nMax != 17 {
		t.Errorf("admitted %d, want maxN", nMax)
	}
	if _, err := AdmissibleSources(gp, 1e6, interval, eps, 4000, 0); err == nil {
		t.Error("maxN 0 should fail")
	}
	if _, err := AdmissibleSources(gp, 0, interval, eps, 4000, 5); err == nil {
		t.Error("zero capacity should fail")
	}
}
