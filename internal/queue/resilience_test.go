package queue

import (
	"context"
	"errors"
	"fmt"
	"math"
	"math/rand/v2"
	"testing"

	"vbr/internal/errs"
	"vbr/internal/runner"
)

// --- NewMux tight-spacing boundary (N·MinLag vs trace length) ---

func TestNewMuxSpacingBoundary(t *testing.T) {
	tr := testTrace(t, 3000)
	l := len(tr.Frames)
	n := 5

	// Exactly feasible: N·MinLag == len → the zero-slack equally-spaced
	// placement must be accepted, not rejected.
	m, err := NewMuxFromConfig(MuxConfig{Trace: tr, N: n, MinLagFrames: l/n, Seed: 1})
	if err != nil {
		t.Fatalf("zero-slack placement rejected: %v", err)
	}
	// At zero slack every draw is the deterministic equally-spaced layout;
	// verify the pairwise circular distances meet MinLag exactly.
	rng := rand.New(rand.NewPCG(3, 3))
	for trial := 0; trial < 5; trial++ {
		lags := m.Lags(rng)
		for i := 0; i < len(lags); i++ {
			for j := i + 1; j < len(lags); j++ {
				d := lags[i] - lags[j]
				if d < 0 {
					d = -d
				}
				if d > l-d {
					d = l - d
				}
				if d < l/n {
					t.Fatalf("zero-slack lags %v violate spacing: |%d-%d| = %d < %d", lags, lags[i], lags[j], d, l/n)
				}
			}
		}
	}

	// One frame of slack: still feasible.
	if _, err := NewMuxFromConfig(MuxConfig{Trace: tr, N: n, MinLagFrames: (l-1)/n, Seed: 1}); err != nil {
		t.Errorf("near-tight placement rejected: %v", err)
	}

	// One frame too many: infeasible, and identified as such.
	_, err = NewMuxFromConfig(MuxConfig{Trace: tr, N: n, MinLagFrames: l/n+1, Seed: 1})
	if !errors.Is(err, errs.ErrInfeasibleLags) {
		t.Errorf("over-tight placement: got %v, want ErrInfeasibleLags", err)
	}

	// N == 1 never has a spacing constraint.
	if _, err := NewMuxFromConfig(MuxConfig{Trace: tr, N: 1, MinLagFrames: l*10, Seed: 1}); err != nil {
		t.Errorf("single source with huge MinLag rejected: %v", err)
	}
}

// --- panic-safe combo averaging (graceful degradation) ---

func TestAverageLossComboFailuresDegradeGracefully(t *testing.T) {
	tr := testTrace(t, 2000)
	m, err := NewMuxFromConfig(MuxConfig{Trace: tr, N: 3, MinLagFrames: 100, Seed: 13}) // N=3 → 6 combos
	if err != nil {
		t.Fatal(err)
	}
	mean := tr.MeanRate() * 3

	comboFailHook = func(c int) error {
		switch c {
		case 2:
			panic(fmt.Sprintf("injected panic in combo %d", c))
		case 4:
			return errors.New("injected failure in combo 4")
		}
		return nil
	}
	defer func() { comboFailHook = nil }()

	r, err := m.AverageLoss(mean*1.02, 50000, true, Options{})
	if err != nil {
		t.Fatalf("average with 4 surviving combos failed outright: %v", err)
	}
	if r.CombosTotal != 6 || r.CombosUsed != 4 {
		t.Errorf("combos total/used = %d/%d, want 6/4", r.CombosTotal, r.CombosUsed)
	}
	if len(r.ComboErrors) != 2 {
		t.Fatalf("ComboErrors has %d entries, want 2: %v", len(r.ComboErrors), r.ComboErrors)
	}
	var pe *runner.PanicError
	foundPanic := false
	for _, e := range r.ComboErrors {
		if errors.As(e, &pe) {
			foundPanic = true
		}
	}
	if !foundPanic {
		t.Errorf("panic not surfaced as *runner.PanicError: %v", r.ComboErrors)
	}
	if r.Pl < 0 || r.Pl > 1 || math.IsNaN(r.Pl) {
		t.Errorf("survivor-averaged Pl %v out of range", r.Pl)
	}

	// The survivor average must equal the mean over exactly the four
	// surviving combos, computed directly.
	ws, err := m.workloads(true)
	if err != nil {
		t.Fatal(err)
	}
	var want float64
	for c, w := range ws {
		if c == 2 || c == 4 {
			continue
		}
		res, err := Simulate(w, mean*1.02, 50000, Options{})
		if err != nil {
			t.Fatal(err)
		}
		want += res.Pl
	}
	want /= 4
	if math.Abs(r.Pl-want) > 1e-15 {
		t.Errorf("survivor average %v, want %v", r.Pl, want)
	}
}

func TestAverageLossAllCombosFailed(t *testing.T) {
	tr := testTrace(t, 2000)
	m, err := NewMuxFromConfig(MuxConfig{Trace: tr, N: 3, MinLagFrames: 100, Seed: 13})
	if err != nil {
		t.Fatal(err)
	}
	comboFailHook = func(c int) error { return fmt.Errorf("combo %d down", c) }
	defer func() { comboFailHook = nil }()

	_, err = m.AverageLoss(tr.MeanRate()*3, 50000, true, Options{})
	if !errors.Is(err, errs.ErrAllCombosFailed) {
		t.Fatalf("got %v, want ErrAllCombosFailed", err)
	}
}

func TestAverageLossCtxCancelled(t *testing.T) {
	tr := testTrace(t, 2000)
	m, err := NewMuxFromConfig(MuxConfig{Trace: tr, N: 3, MinLagFrames: 100, Seed: 13})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err = m.AverageLossCtx(ctx, tr.MeanRate()*3, 50000, true, Options{})
	if !errors.Is(err, errs.ErrCancelled) || !errors.Is(err, context.Canceled) {
		t.Fatalf("got %v, want ErrCancelled wrapping context.Canceled", err)
	}
}

// --- deterministic fault injection ---

func TestGenerateFaultsDeterministic(t *testing.T) {
	cfg := FaultConfig{MeanGap: 200, MeanLength: 20, OutageProb: 0.3, MinFactor: 0.2}
	a, err := GenerateFaults(99, 5000, cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := GenerateFaults(99, 5000, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Episodes) == 0 {
		t.Fatal("seed 99 produced no episodes; pick different parameters")
	}
	if len(a.Episodes) != len(b.Episodes) {
		t.Fatalf("episode counts differ: %d vs %d", len(a.Episodes), len(b.Episodes))
	}
	for i := range a.Episodes {
		if a.Episodes[i] != b.Episodes[i] {
			t.Fatalf("episode %d differs: %+v vs %+v", i, a.Episodes[i], b.Episodes[i])
		}
	}
	c, err := GenerateFaults(100, 5000, cfg)
	if err != nil {
		t.Fatal(err)
	}
	same := len(a.Episodes) == len(c.Episodes)
	if same {
		for i := range a.Episodes {
			if a.Episodes[i] != c.Episodes[i] {
				same = false
				break
			}
		}
	}
	if same {
		t.Error("different seeds produced identical schedules")
	}
}

func TestFaultedSimulationDeterministicAndLossy(t *testing.T) {
	tr := testTrace(t, 2000)
	m, err := NewMuxFromConfig(MuxConfig{Trace: tr, N: 3, MinLagFrames: 100, Seed: 13})
	if err != nil {
		t.Fatal(err)
	}
	ws, err := m.workloads(false)
	if err != nil {
		t.Fatal(err)
	}
	w := ws[0]
	cap := w.MeanRate() * 1.1
	buf := 100000.0

	faults, err := GenerateFaults(7, len(w.Bytes), FaultConfig{MeanGap: 300, MeanLength: 30, OutageProb: 0.5, MinFactor: 0.3})
	if err != nil {
		t.Fatal(err)
	}

	clean, err := Simulate(w, cap, buf, Options{})
	if err != nil {
		t.Fatal(err)
	}
	r1, err := Simulate(w, cap, buf, Options{Faults: faults})
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Simulate(w, cap, buf, Options{Faults: faults})
	if err != nil {
		t.Fatal(err)
	}
	if r1.Pl != r2.Pl || r1.PlWES != r2.PlWES || r1.LostBytes != r2.LostBytes {
		t.Errorf("faulted run not deterministic: (%v,%v) vs (%v,%v)", r1.Pl, r1.PlWES, r2.Pl, r2.PlWES)
	}
	if r1.Pl <= clean.Pl {
		t.Errorf("faults did not increase loss: clean %v, faulted %v", clean.Pl, r1.Pl)
	}
	if r1.PlWES < clean.PlWES {
		t.Errorf("faults decreased worst-second loss: clean %v, faulted %v", clean.PlWES, r1.PlWES)
	}

	// Cell-exact simulator must be deterministic under the same schedule
	// too.
	c1, err := SimulateCells(w, cap, buf, UniformSpacing, Options{Faults: faults})
	if err != nil {
		t.Fatal(err)
	}
	c2, err := SimulateCells(w, cap, buf, UniformSpacing, Options{Faults: faults})
	if err != nil {
		t.Fatal(err)
	}
	if c1.Pl != c2.Pl || c1.PlWES != c2.PlWES {
		t.Errorf("faulted cell run not deterministic: (%v,%v) vs (%v,%v)", c1.Pl, c1.PlWES, c2.Pl, c2.PlWES)
	}
}

func TestFactorAtAndDrainBetween(t *testing.T) {
	fs := &FaultSchedule{Episodes: []FaultEpisode{
		{Start: 10, Length: 5, Factor: 0},
		{Start: 20, Length: 10, Factor: 0.5},
	}}
	if err := fs.Validate(); err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		i    int
		want float64
	}{{0, 1}, {9, 1}, {10, 0}, {14, 0}, {15, 1}, {19, 1}, {20, 0.5}, {29, 0.5}, {30, 1}}
	for _, c := range cases {
		if got := fs.FactorAt(c.i); got != c.want {
			t.Errorf("FactorAt(%d) = %v, want %v", c.i, got, c.want)
		}
	}
	if got := fs.DegradedIntervals(100); got != 15 {
		t.Errorf("DegradedIntervals = %d, want 15", got)
	}
	if got := fs.DegradedIntervals(25); got != 10 {
		t.Errorf("clipped DegradedIntervals = %d, want 10", got)
	}

	// drainBetween across an episode boundary: intervals of 1 s, nominal
	// drain 100 B/s. Span [9.5, 11.5) covers 0.5 s clean (interval 9),
	// then 1.0 s outage (10), then 0.5 s outage (11) — only the clean
	// half-second drains.
	got := fs.drainBetween(9.5, 11.5, 100, 1)
	if math.Abs(got-50) > 1e-9 {
		t.Errorf("drainBetween outage boundary = %v, want 50", got)
	}
	// Span [19.5, 21) = 0.5 s clean + 1.0 s at half rate.
	got = fs.drainBetween(19.5, 21, 100, 1)
	if math.Abs(got-100) > 1e-9 {
		t.Errorf("drainBetween degraded boundary = %v, want 100", got)
	}
	// Clean schedule and degenerate spans.
	var nilFS *FaultSchedule
	if got := nilFS.drainBetween(0, 2, 100, 1); got != 200 {
		t.Errorf("nil schedule drain = %v, want 200", got)
	}
	if got := fs.drainBetween(5, 5, 100, 1); got != 0 {
		t.Errorf("empty span drain = %v, want 0", got)
	}
}

func TestFaultValidation(t *testing.T) {
	bad := []*FaultSchedule{
		{Episodes: []FaultEpisode{{Start: -1, Length: 2, Factor: 0.5}}},
		{Episodes: []FaultEpisode{{Start: 0, Length: 0, Factor: 0.5}}},
		{Episodes: []FaultEpisode{{Start: 0, Length: 2, Factor: 1.5}}},
		{Episodes: []FaultEpisode{{Start: 0, Length: 5, Factor: 0.5}, {Start: 3, Length: 2, Factor: 0}}},
	}
	for i, fs := range bad {
		if err := fs.Validate(); err == nil {
			t.Errorf("bad schedule %d accepted", i)
		}
		if _, err := Simulate(Workload{Bytes: []float64{1, 2}, Interval: 1}, 100, 10, Options{Faults: fs}); err == nil {
			t.Errorf("Simulate accepted bad schedule %d", i)
		}
	}
	if _, err := GenerateFaults(1, 0, FaultConfig{MeanGap: 10, MeanLength: 2}); err == nil {
		t.Error("zero horizon accepted")
	}
	if _, err := GenerateFaults(1, 100, FaultConfig{MeanGap: 0, MeanLength: 2}); err == nil {
		t.Error("zero mean gap accepted")
	}
}

// --- capacity search: resume, cancellation, unreachable targets ---

func TestMinCapacityTargetUnreachable(t *testing.T) {
	loss := func(c float64) (float64, error) { return 0.5, nil } // lossy at any capacity
	_, err := MinCapacity(loss, 1e6, 1e7, LossTarget{Pl: 1e-3})
	if !errors.Is(err, errs.ErrTargetUnreachable) {
		t.Fatalf("got %v, want ErrTargetUnreachable", err)
	}
}

func TestQCCurveResumeSkipsCompletedPoints(t *testing.T) {
	tr := testTrace(t, 2000)
	m, err := NewMuxFromConfig(MuxConfig{Trace: tr, N: 2, MinLagFrames: 100, Seed: 19})
	if err != nil {
		t.Fatal(err)
	}
	grid := []float64{0.002, 0.01, 0.05}
	cfg := QCCurveConfig{Mux: m, Target: LossTarget{Pl: 1e-3}, TmaxGrid: grid}
	full, err := QCCurve(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Resume with the first two points marked done, the first one with a
	// sentinel value that a real search could never produce: if the value
	// survives, the point was genuinely skipped rather than recomputed.
	cfg.Resume = []QCPoint{{TmaxSec: 0.002, PerSourceBps: -1}, {TmaxSec: 0.01, PerSourceBps: full[1].PerSourceBps}}
	resumed, err := QCCurve(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(resumed) != 3 {
		t.Fatalf("resumed curve has %d points", len(resumed))
	}
	if resumed[0].PerSourceBps != -1 {
		t.Errorf("resume point recomputed: %v", resumed[0].PerSourceBps)
	}
	if resumed[1].PerSourceBps != full[1].PerSourceBps {
		t.Errorf("resume point altered: %v vs %v", resumed[1].PerSourceBps, full[1].PerSourceBps)
	}
	if resumed[2].PerSourceBps != full[2].PerSourceBps {
		t.Errorf("fresh point differs from full run: %v vs %v", resumed[2].PerSourceBps, full[2].PerSourceBps)
	}
}

func TestQCCurveCtxReturnsPartialOnCancel(t *testing.T) {
	tr := testTrace(t, 2000)
	m, err := NewMuxFromConfig(MuxConfig{Trace: tr, N: 2, MinLagFrames: 100, Seed: 19})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	// All three points supplied via Resume still complete under a
	// cancelled context — no search work is needed.
	pts, err := QCCurveCtx(ctx, QCCurveConfig{
		Mux: m, Target: LossTarget{Pl: 1e-3},
		TmaxGrid: []float64{0.002, 0.01},
		Resume:   []QCPoint{{TmaxSec: 0.002, PerSourceBps: 5}, {TmaxSec: 0.01, PerSourceBps: 4}},
	})
	if err != nil || len(pts) != 2 {
		t.Fatalf("fully-resumed sweep under cancelled ctx: pts=%d err=%v", len(pts), err)
	}
	// With one fresh point required, the sweep stops there and returns
	// the resumed prefix.
	pts, err = QCCurveCtx(ctx, QCCurveConfig{
		Mux: m, Target: LossTarget{Pl: 1e-3},
		TmaxGrid: []float64{0.002, 0.01},
		Resume:   []QCPoint{{TmaxSec: 0.002, PerSourceBps: 5}},
	})
	if !errors.Is(err, errs.ErrCancelled) {
		t.Fatalf("got %v, want ErrCancelled", err)
	}
	if len(pts) != 1 || pts[0].PerSourceBps != 5 {
		t.Fatalf("partial points %v, want the one resumed point", pts)
	}
}

func TestSMGCtxCancelled(t *testing.T) {
	tr := testTrace(t, 2000)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	pts, err := SMGCtx(ctx, SMGConfig{
		NewMux:  func(n int) (Aggregator, error) { return NewMuxFromConfig(MuxConfig{Trace: tr, N: n, MinLagFrames: 100, Seed: 23}) },
		Ns:      []int{1, 5},
		Target:  LossTarget{Pl: 1e-3},
		TmaxSec: 0.002,
	})
	if !errors.Is(err, errs.ErrCancelled) {
		t.Fatalf("got %v, want ErrCancelled", err)
	}
	if len(pts) != 0 {
		t.Fatalf("cancelled-before-start sweep returned %d points", len(pts))
	}
}
