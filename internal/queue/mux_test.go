package queue

import (
	"math"
	"math/rand/v2"
	"testing"

	"vbr/internal/synth"
	"vbr/internal/trace"
)

// testTrace builds a small synthetic trace with slice data for mux tests.
func testTrace(t testing.TB, frames int) *trace.Trace {
	t.Helper()
	cfg := synth.DefaultConfig()
	cfg.Frames = frames
	cfg.SlicesPerFrame = 6
	cfg.MeanSceneFrames = 48
	tr, err := synth.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func TestNewMuxValidation(t *testing.T) {
	tr := testTrace(t, 3000)
	if _, err := NewMuxFromConfig(MuxConfig{Trace: nil, N: 1, MinLagFrames: 0, Seed: 1}); err == nil {
		t.Error("nil trace should fail")
	}
	if _, err := NewMuxFromConfig(MuxConfig{Trace: tr, N: 0, MinLagFrames: 0, Seed: 1}); err == nil {
		t.Error("zero sources should fail")
	}
	if _, err := NewMuxFromConfig(MuxConfig{Trace: tr, N: 2, MinLagFrames: -1, Seed: 1}); err == nil {
		t.Error("negative lag should fail")
	}
	if _, err := NewMuxFromConfig(MuxConfig{Trace: tr, N: 5, MinLagFrames: 1000, Seed: 1}); err == nil {
		t.Error("impossible lag packing should fail")
	}
	if _, err := NewMuxFromConfig(MuxConfig{Trace: tr, N: 5, MinLagFrames: 100, Seed: 1}); err != nil {
		t.Errorf("valid mux rejected: %v", err)
	}
}

func TestLagsRespectMinDistance(t *testing.T) {
	tr := testTrace(t, 3000)
	m, err := NewMuxFromConfig(MuxConfig{Trace: tr, N: 5, MinLagFrames: 200, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewPCG(1, 1))
	n := len(tr.Frames)
	for trial := 0; trial < 20; trial++ {
		lags := m.Lags(rng)
		if len(lags) != 5 {
			t.Fatalf("got %d lags", len(lags))
		}
		if lags[0] != 0 {
			t.Errorf("first lag %d, want 0", lags[0])
		}
		for i := 0; i < len(lags); i++ {
			for j := i + 1; j < len(lags); j++ {
				d := lags[i] - lags[j]
				if d < 0 {
					d = -d
				}
				if d > n-d {
					d = n - d
				}
				if d < 200 {
					t.Fatalf("lags %d and %d too close: %d", lags[i], lags[j], d)
				}
			}
		}
	}
}

func TestFrameWorkloadConservesBytes(t *testing.T) {
	tr := testTrace(t, 2000)
	m, err := NewMuxFromConfig(MuxConfig{Trace: tr, N: 3, MinLagFrames: 100, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewPCG(9, 9))
	lags := m.Lags(rng)
	w, err := m.FrameWorkload(lags)
	if err != nil {
		t.Fatal(err)
	}
	// Wraparound means each source contributes the full trace total.
	var single float64
	for _, v := range tr.Frames {
		single += v
	}
	if math.Abs(w.TotalBytes()-3*single) > 1e-6*single {
		t.Errorf("aggregate total %v, want %v", w.TotalBytes(), 3*single)
	}
	if math.Abs(w.Interval-1.0/24) > 1e-12 {
		t.Errorf("interval %v", w.Interval)
	}
	if _, err := m.FrameWorkload([]int{1}); err == nil {
		t.Error("wrong lag count should fail")
	}
}

func TestSliceWorkload(t *testing.T) {
	tr := testTrace(t, 2000)
	m, err := NewMuxFromConfig(MuxConfig{Trace: tr, N: 2, MinLagFrames: 100, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewPCG(11, 11))
	lags := m.Lags(rng)
	w, err := m.SliceWorkload(lags)
	if err != nil {
		t.Fatal(err)
	}
	if len(w.Bytes) != len(tr.Slices) {
		t.Fatalf("len %d", len(w.Bytes))
	}
	if math.Abs(w.Interval-1.0/(24*6)) > 1e-12 {
		t.Errorf("interval %v", w.Interval)
	}
	// Slice aggregate equals frame aggregate in total.
	fw, _ := m.FrameWorkload(lags)
	if math.Abs(w.TotalBytes()-fw.TotalBytes()) > 1e-6*fw.TotalBytes() {
		t.Errorf("slice total %v vs frame total %v", w.TotalBytes(), fw.TotalBytes())
	}
	// Trace without slice data.
	noSlices := &trace.Trace{Frames: tr.Frames, FrameRate: 24}
	m2, _ := NewMuxFromConfig(MuxConfig{Trace: noSlices, N: 2, MinLagFrames: 100, Seed: 7})
	if _, err := m2.SliceWorkload(lags); err == nil {
		t.Error("missing slices should fail")
	}
}

func TestCombos(t *testing.T) {
	tr := testTrace(t, 2000)
	for _, c := range []struct{ n, want int }{{1, 1}, {2, 1}, {3, 6}, {20, 6}} {
		m, err := NewMuxFromConfig(MuxConfig{Trace: tr, N: c.n, MinLagFrames: 50, Seed: 1})
		if err != nil {
			t.Fatal(err)
		}
		if got := m.Combos(); got != c.want {
			t.Errorf("N=%d: combos %d, want %d", c.n, got, c.want)
		}
	}
}

func TestAverageLossSmoke(t *testing.T) {
	tr := testTrace(t, 2000)
	m, err := NewMuxFromConfig(MuxConfig{Trace: tr, N: 3, MinLagFrames: 100, Seed: 13})
	if err != nil {
		t.Fatal(err)
	}
	mean := tr.MeanRate() * 3
	r, err := m.AverageLoss(mean*1.02, 50000, true, Options{WindowIntervals: 600})
	if err != nil {
		t.Fatal(err)
	}
	if r.Pl < 0 || r.Pl > 1 {
		t.Errorf("Pl %v out of range", r.Pl)
	}
	if len(r.WindowLoss) == 0 {
		t.Error("window series missing")
	}
	// Higher capacity must not lose more.
	r2, err := m.AverageLoss(mean*1.5, 50000, true, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if r2.Pl > r.Pl+1e-12 {
		t.Errorf("loss increased with capacity: %v → %v", r.Pl, r2.Pl)
	}
}

func TestStatisticalMultiplexingGainAppears(t *testing.T) {
	// The paper's central result: per-source capacity needed at a loss
	// target falls as N grows.
	tr := testTrace(t, 4000)
	target := LossTarget{Pl: 1e-3}
	var prev float64 = math.Inf(1)
	for _, n := range []int{1, 4, 8} {
		m, err := NewMuxFromConfig(MuxConfig{Trace: tr, N: n, MinLagFrames: 300, Seed: 17})
		if err != nil {
			t.Fatal(err)
		}
		mean := tr.MeanRate() * float64(n)
		peak := tr.PeakRate() * float64(n) * 1.05
		lossAt := func(c float64) (float64, error) {
			q := 0.01 * c / 8 // T_max = 10 ms
			r, err := m.AverageLoss(c, q, false, Options{})
			if err != nil {
				return 0, err
			}
			return r.Pl, nil
		}
		c, err := MinCapacity(lossAt, mean*0.6, peak, target)
		if err != nil {
			t.Fatal(err)
		}
		perSource := c / float64(n)
		if perSource > prev*1.02 {
			t.Errorf("N=%d: per-source %v not below N-1 level %v", n, perSource, prev)
		}
		prev = perSource
		// Sanity: always between mean and peak.
		if perSource < tr.MeanRate()*0.95 || perSource > tr.PeakRate()*1.1 {
			t.Errorf("N=%d: per-source %v outside [mean, peak]", n, perSource)
		}
	}
}

func TestQCCurveShape(t *testing.T) {
	tr := testTrace(t, 3000)
	m, err := NewMuxFromConfig(MuxConfig{Trace: tr, N: 2, MinLagFrames: 300, Seed: 19})
	if err != nil {
		t.Fatal(err)
	}
	points, err := QCCurve(QCCurveConfig{
		Mux:      m,
		Target:   LossTarget{Pl: 1e-3},
		TmaxGrid: []float64{0.001, 0.004, 0.016, 0.064, 0.25},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 5 {
		t.Fatalf("points %d", len(points))
	}
	// Capacity must be non-increasing in buffer delay.
	for i := 1; i < len(points); i++ {
		if points[i].PerSourceBps > points[i-1].PerSourceBps*1.02 {
			t.Errorf("Q-C curve not decreasing at %v", points[i].TmaxSec)
		}
	}
	if _, err := QCCurve(QCCurveConfig{Mux: m}); err == nil {
		t.Error("empty grid should fail")
	}
	if _, err := QCCurve(QCCurveConfig{TmaxGrid: []float64{1}}); err == nil {
		t.Error("nil mux should fail")
	}
}

func TestSMGAndRealizedGain(t *testing.T) {
	tr := testTrace(t, 3000)
	points, err := SMG(SMGConfig{
		NewMux: func(n int) (Aggregator, error) {
			return NewMuxFromConfig(MuxConfig{Trace: tr, N: n, MinLagFrames: 300, Seed: 23})
		},
		Ns:      []int{1, 5},
		Target:  LossTarget{Pl: 1e-3},
		TmaxSec: 0.002,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 2 {
		t.Fatalf("points %d", len(points))
	}
	if points[1].PerSourceBps >= points[0].PerSourceBps {
		t.Errorf("no multiplexing gain: N=1 %v, N=5 %v", points[0].PerSourceBps, points[1].PerSourceBps)
	}
	gain, err := RealizedGain(points[1].PerSourceBps, tr.PeakRate(), tr.MeanRate())
	if err != nil {
		t.Fatal(err)
	}
	// The paper reports 72% at N=5; accept a broad band for the small
	// test trace.
	if gain < 0.2 || gain > 1.05 {
		t.Errorf("realized gain %v implausible", gain)
	}
	if _, err := SMG(SMGConfig{Ns: []int{1}}); err == nil {
		t.Error("nil factory should fail")
	}
}
