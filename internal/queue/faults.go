package queue

import (
	"fmt"
	"math/rand/v2"
	"sort"
)

// This file adds deterministic fault injection to the §5 FIFO server:
// seeded schedules of capacity-degradation and outage episodes, applied
// multiplicatively to the service rate. The degraded-service regime is
// where LRD video is hardest to carry (cf. Kalyanaraman et al., "TCP
// over ABR with LRD VBR background traffic"): during an episode the
// queue drains slower — or not at all — and the loss process
// concentrates exactly the way the paper's Fig. 17 burst analysis
// anticipates. Schedules are pure data derived from a seed, so a fault
// run is exactly reproducible: identical schedule + trace ⇒ identical
// P_l and P_l-WES.

// FaultEpisode is one contiguous service degradation: for Length
// intervals starting at Start, the server runs at Factor times its
// nominal capacity. Factor 0 is a full outage.
type FaultEpisode struct {
	Start  int     // first affected interval (inclusive)
	Length int     // number of affected intervals
	Factor float64 // capacity multiplier in [0, 1]
}

// FaultSchedule is a set of non-overlapping episodes sorted by start.
// The zero value is a clean schedule (no faults).
type FaultSchedule struct {
	Episodes []FaultEpisode
}

// Validate checks episode ranges, ordering and disjointness. A nil
// schedule is valid (no faults).
//
//vbrlint:ignore ctxcheck bounded validation scan over the configured episodes
func (fs *FaultSchedule) Validate() error {
	if fs == nil {
		return nil
	}
	prevEnd := 0
	for i, e := range fs.Episodes {
		if e.Start < 0 || e.Length < 1 {
			return fmt.Errorf("queue: fault episode %d has bad extent (start=%d, length=%d)", i, e.Start, e.Length)
		}
		if e.Factor < 0 || e.Factor > 1 {
			return fmt.Errorf("queue: fault episode %d has factor %v outside [0,1]", i, e.Factor)
		}
		if e.Start < prevEnd {
			return fmt.Errorf("queue: fault episode %d overlaps its predecessor", i)
		}
		prevEnd = e.Start + e.Length
	}
	return nil
}

// FactorAt returns the capacity multiplier in effect during interval i
// (1 outside every episode). Episodes are binary-searched, so the call
// is O(log e) inside the simulator's per-interval loop.
func (fs *FaultSchedule) FactorAt(i int) float64 {
	if fs == nil || len(fs.Episodes) == 0 {
		return 1
	}
	// Last episode with Start <= i.
	idx := sort.Search(len(fs.Episodes), func(j int) bool { return fs.Episodes[j].Start > i }) - 1
	if idx < 0 {
		return 1
	}
	if e := fs.Episodes[idx]; i < e.Start+e.Length {
		return e.Factor
	}
	return 1
}

// DegradedIntervals returns the total number of intervals covered by
// episodes, clipped to [0, n).
func (fs *FaultSchedule) DegradedIntervals(n int) int {
	if fs == nil {
		return 0
	}
	total := 0
	for _, e := range fs.Episodes {
		lo, hi := e.Start, e.Start+e.Length
		if lo < 0 {
			lo = 0
		}
		if hi > n {
			hi = n
		}
		if hi > lo {
			total += hi - lo
		}
	}
	return total
}

// FaultConfig parameterizes random schedule generation.
type FaultConfig struct {
	// MeanGap is the mean number of clean intervals between episodes
	// (exponentially distributed).
	MeanGap float64
	// MeanLength is the mean episode length in intervals (exponential,
	// at least 1).
	MeanLength float64
	// OutageProb is the probability that an episode is a full outage
	// (Factor 0) rather than a partial degradation.
	OutageProb float64
	// MinFactor is the lower bound of the degradation factor; partial
	// episodes draw Factor uniformly from [MinFactor, 1).
	MinFactor float64
}

// Validate checks the generation parameters.
func (c FaultConfig) Validate() error {
	switch {
	case !(c.MeanGap > 0):
		return fmt.Errorf("queue: fault mean gap must be positive, got %v", c.MeanGap)
	case !(c.MeanLength >= 1):
		return fmt.Errorf("queue: fault mean length must be ≥ 1, got %v", c.MeanLength)
	case c.OutageProb < 0 || c.OutageProb > 1:
		return fmt.Errorf("queue: outage probability must be in [0,1], got %v", c.OutageProb)
	case c.MinFactor < 0 || c.MinFactor >= 1:
		return fmt.Errorf("queue: min factor must be in [0,1), got %v", c.MinFactor)
	}
	return nil
}

// GenerateFaults draws a schedule covering intervals [0, n) from the
// seeded PCG stream: alternating exponential clean gaps and degradation
// episodes. The same (seed, n, cfg) always yields the same schedule.
//
//vbrlint:ignore ctxcheck bounded arithmetic construction of the episode schedule
func GenerateFaults(seed uint64, n int, cfg FaultConfig) (*FaultSchedule, error) {
	if n < 1 {
		return nil, fmt.Errorf("queue: fault horizon must be ≥ 1 interval, got %d", n)
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewPCG(seed, 0xfa17))
	fs := &FaultSchedule{}
	pos := 0
	for {
		gap := int(rng.ExpFloat64() * cfg.MeanGap)
		pos += gap
		if pos >= n {
			break
		}
		length := int(rng.ExpFloat64() * cfg.MeanLength)
		if length < 1 {
			length = 1
		}
		if pos+length > n {
			length = n - pos
		}
		factor := 0.0
		if rng.Float64() >= cfg.OutageProb {
			factor = cfg.MinFactor + rng.Float64()*(1-cfg.MinFactor)
		}
		fs.Episodes = append(fs.Episodes, FaultEpisode{Start: pos, Length: length, Factor: factor})
		pos += length
	}
	return fs, fs.Validate()
}

// drainBetween integrates the bytes a faulted server drains over the
// wall-clock span [t0, t1), given the nominal drain rate in bytes/s and
// the interval duration that indexes the schedule. Used by the
// cell-exact simulator, whose drain spans can cross interval (hence
// episode) boundaries.
func (fs *FaultSchedule) drainBetween(t0, t1, drainPerSec, interval float64) float64 {
	if t1 <= t0 {
		return 0
	}
	if fs == nil || len(fs.Episodes) == 0 {
		return drainPerSec * (t1 - t0)
	}
	var drained float64
	t := t0
	for t < t1 {
		i := int(t / interval)
		end := float64(i+1) * interval
		if end > t1 {
			end = t1
		}
		if end <= t { // guard against float rounding stalls
			end = t1
		}
		drained += fs.FactorAt(i) * drainPerSec * (end - t)
		t = end
	}
	return drained
}
