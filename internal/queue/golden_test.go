package queue

import (
	"math"
	"math/rand/v2"
	"testing"
)

// This file pins the legacy trace-multiplexer path bitwise to its
// behavior before the Source-interface refactor. The constants below
// are Float64bits captured by running the pre-refactor code on the
// fixed scenario; any change to lag sampling, aggregation order (float
// addition does not commute), or the loss averaging would change them.
// They must never be regenerated from current code — that would turn
// the regression test into a tautology.

// goldenHash folds a float64 series into an FNV-1a 64 hash over each
// value's IEEE-754 bits, little-endian byte by byte.
func goldenHash(xs []float64) uint64 {
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	h := uint64(offset)
	for _, v := range xs {
		bits := math.Float64bits(v)
		for i := 0; i < 8; i++ {
			h ^= (bits >> (8 * i)) & 0xff
			h *= prime
		}
	}
	return h
}

// The golden scenario: testTrace(t, 3000) (synth defaults with 3000
// frames, 6 slices/frame, 48-frame scenes, seed 1994) multiplexed
// 3 ways with 400-frame minimum lag under seed 7.
const (
	goldenComboLag1 = 1807
	goldenComboLag2 = 2263

	goldenFrameWorkloadHash = 0xed64741db1ca4174
	goldenFrameIntervalBits = 0x3fa5555555555555 // 1/24 s
	goldenSliceWorkloadHash = 0x4db7225dca6f3c26
	goldenSliceIntervalBits = 0x3f7c71c71c71c71c // 1/144 s

	goldenCapacityBits = 0x4170cc5c19fa7220 // MeanRate()·3·1.1 bits/s

	goldenFramePlBits         = 0x3f88c6361b388575
	goldenFramePlWESBits      = 0x3fbd0d2bc3ca1724
	goldenFrameTotalBytesBits = 0x41d65eafbd80f7aa
	goldenFrameLostBytesBits  = 0x4171519380553ecd
	goldenFrameMaxBacklogBits = 0x40ed4c0000000000

	goldenSlicePlBits         = 0x3f88e5fcc35a5b88
	goldenSlicePlWESBits      = 0x3fbd1a077496367f
	goldenSliceMaxBacklogBits = 0x40ed4c0000000000
)

// goldenWindowLossBits is the combo-0 per-window loss series of the
// frame-granularity run with 500-interval windows.
var goldenWindowLossBits = [6]uint64{
	0x0,
	0x3f59b58b656f213d,
	0x3f915fa95ce5e817,
	0x3fa1f302e25714d8,
	0x3f53a136f76520f3,
	0x3f941f1fc3b3d617,
}

func goldenMux(t *testing.T) *Mux {
	t.Helper()
	tr := testTrace(t, 3000)
	m, err := NewMuxFromConfig(MuxConfig{Trace: tr, N: 3, MinLagFrames: 400, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// TestGoldenLags pins the lag-combination draw: the first combination
// drawn from PCG(seed, 0x1a65) must stay exactly what the pre-refactor
// sampler produced.
func TestGoldenLags(t *testing.T) {
	m := goldenMux(t)
	rng := rand.New(rand.NewPCG(m.Seed, 0x1a65))
	lags := m.Lags(rng)
	if len(lags) != 3 || lags[0] != 0 || lags[1] != goldenComboLag1 || lags[2] != goldenComboLag2 {
		t.Fatalf("combo-0 lags = %v, want [0 %d %d]", lags, goldenComboLag1, goldenComboLag2)
	}
}

// TestGoldenWorkloads pins the aggregate workloads: same values in the
// same float-addition order, at frame and slice granularity.
func TestGoldenWorkloads(t *testing.T) {
	m := goldenMux(t)
	lags := []int{0, goldenComboLag1, goldenComboLag2}

	fw, err := m.FrameWorkload(lags)
	if err != nil {
		t.Fatal(err)
	}
	if len(fw.Bytes) != 3000 {
		t.Fatalf("frame workload has %d intervals, want 3000", len(fw.Bytes))
	}
	if bits := math.Float64bits(fw.Interval); bits != goldenFrameIntervalBits {
		t.Errorf("frame interval bits = %#x, want %#x", bits, uint64(goldenFrameIntervalBits))
	}
	if h := goldenHash(fw.Bytes); h != goldenFrameWorkloadHash {
		t.Errorf("frame workload hash = %#x, want %#x", h, uint64(goldenFrameWorkloadHash))
	}

	sw, err := m.SliceWorkload(lags)
	if err != nil {
		t.Fatal(err)
	}
	if len(sw.Bytes) != 18000 {
		t.Fatalf("slice workload has %d intervals, want 18000", len(sw.Bytes))
	}
	if bits := math.Float64bits(sw.Interval); bits != goldenSliceIntervalBits {
		t.Errorf("slice interval bits = %#x, want %#x", bits, uint64(goldenSliceIntervalBits))
	}
	if h := goldenHash(sw.Bytes); h != goldenSliceWorkloadHash {
		t.Errorf("slice workload hash = %#x, want %#x", h, uint64(goldenSliceWorkloadHash))
	}
}

// TestGoldenAverageLoss pins the full multiplexer pipeline end to end:
// six lag combinations drawn, simulated and averaged, at both
// granularities, bit for bit.
func TestGoldenAverageLoss(t *testing.T) {
	m := goldenMux(t)
	capacity := m.Trace.MeanRate() * 3 * 1.1
	if bits := math.Float64bits(capacity); bits != goldenCapacityBits {
		t.Fatalf("capacity bits = %#x, want %#x (trace generation changed?)", bits, uint64(goldenCapacityBits))
	}

	r, err := m.AverageLoss(capacity, 60000, false, Options{WindowIntervals: 500})
	if err != nil {
		t.Fatal(err)
	}
	check := func(name string, got float64, want uint64) {
		t.Helper()
		if bits := math.Float64bits(got); bits != want {
			t.Errorf("%s bits = %#x (%v), want %#x (%v)", name, bits, got, want, math.Float64frombits(want))
		}
	}
	check("frame Pl", r.Pl, goldenFramePlBits)
	check("frame PlWES", r.PlWES, goldenFramePlWESBits)
	check("frame TotalBytes", r.TotalBytes, goldenFrameTotalBytesBits)
	check("frame LostBytes", r.LostBytes, goldenFrameLostBytesBits)
	check("frame MaxBacklog", r.MaxBacklog, goldenFrameMaxBacklogBits)
	if len(r.WindowLoss) != len(goldenWindowLossBits) {
		t.Fatalf("window series has %d windows, want %d", len(r.WindowLoss), len(goldenWindowLossBits))
	}
	for i, want := range goldenWindowLossBits {
		check("window loss", r.WindowLoss[i], want)
	}

	rs, err := m.AverageLoss(capacity, 60000, true, Options{})
	if err != nil {
		t.Fatal(err)
	}
	check("slice Pl", rs.Pl, goldenSlicePlBits)
	check("slice PlWES", rs.PlWES, goldenSlicePlWESBits)
	check("slice MaxBacklog", rs.MaxBacklog, goldenSliceMaxBacklogBits)
}
