package queue

import (
	"context"
	"fmt"
	"math"
	"math/rand/v2"
	"sync/atomic"
	"testing"
	"time"

	"vbr/internal/obs"
)

// scopedCtx returns a context carrying a fresh metrics scope plus the
// registry backing it, for asserting on recorded metrics.
func scopedCtx(t *testing.T) (context.Context, *obs.Registry) {
	t.Helper()
	reg := obs.NewRegistry()
	return obs.With(context.Background(), obs.New(reg, nil)), reg
}

// TestAverageLossWindowSeriesFromFirstCombo is the regression test for
// the window-loss attribution rule: Result.WindowLoss must come from lag
// combination 0 even when combo 0 is the last to finish. The hook holds
// combo 0 at the start line until every other combo has been dispatched
// (with a timeout escape so a single-worker schedule cannot deadlock),
// making a completion-order bug — e.g. taking the series from whichever
// result lands first — deterministic instead of a rare flake.
func TestAverageLossWindowSeriesFromFirstCombo(t *testing.T) {
	tr := testTrace(t, 2000)
	m, err := NewMuxFromConfig(MuxConfig{Trace: tr, N: 3, MinLagFrames: 100, Seed: 13}) // N=3 → 6 combos
	if err != nil {
		t.Fatal(err)
	}

	var othersStarted atomic.Int64
	release := make(chan struct{})
	comboFailHook = func(c int) error {
		if c != 0 {
			if othersStarted.Add(1) == 5 {
				close(release)
			}
			return nil
		}
		select {
		case <-release:
		case <-time.After(2 * time.Second):
			// GOMAXPROCS=1 or a single runner worker would run the combos
			// sequentially starting with 0; proceed rather than deadlock.
		}
		return nil
	}
	defer func() { comboFailHook = nil }()

	mean := tr.MeanRate() * 3
	capBps, buf := mean*1.02, 50000.0
	r, err := m.AverageLoss(capBps, buf, true, Options{WindowIntervals: 600})
	if err != nil {
		t.Fatal(err)
	}
	if len(r.WindowLoss) == 0 {
		t.Fatal("window series missing")
	}

	// The series must be bit-identical to combo 0 simulated directly.
	ws, err := m.workloads(true)
	if err != nil {
		t.Fatal(err)
	}
	want, err := Simulate(ws[0], capBps, buf, Options{WindowIntervals: 600})
	if err != nil {
		t.Fatal(err)
	}
	if len(r.WindowLoss) != len(want.WindowLoss) {
		t.Fatalf("window series length %d, want %d", len(r.WindowLoss), len(want.WindowLoss))
	}
	for i := range want.WindowLoss {
		if r.WindowLoss[i] != want.WindowLoss[i] {
			t.Fatalf("window %d: %v != combo-0 value %v", i, r.WindowLoss[i], want.WindowLoss[i])
		}
	}
}

// TestAverageLossComboMetricsConsistent checks that the combo counters
// recorded on the scope agree with the Result bookkeeping under partial
// failures, and that queue.bytes.simulated sums exactly the survivors.
func TestAverageLossComboMetricsConsistent(t *testing.T) {
	tr := testTrace(t, 2000)
	m, err := NewMuxFromConfig(MuxConfig{Trace: tr, N: 3, MinLagFrames: 100, Seed: 13})
	if err != nil {
		t.Fatal(err)
	}
	comboFailHook = func(c int) error {
		if c == 1 || c == 3 {
			return fmt.Errorf("injected failure in combo %d", c)
		}
		return nil
	}
	defer func() { comboFailHook = nil }()

	ctx, reg := scopedCtx(t)
	mean := tr.MeanRate() * 3
	r, err := m.AverageLossCtx(ctx, mean*1.02, 50000, true, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if r.CombosUsed != 4 || r.CombosTotal != 6 || len(r.ComboErrors) != 2 {
		t.Fatalf("result bookkeeping: used=%d total=%d errors=%d, want 4/6/2",
			r.CombosUsed, r.CombosTotal, len(r.ComboErrors))
	}
	snap := reg.Snapshot()
	if got := snap.Counters["queue.combos.done"]; got != int64(r.CombosUsed) {
		t.Errorf("queue.combos.done = %d, want CombosUsed %d", got, r.CombosUsed)
	}
	if got := snap.Counters["queue.combos.failed"]; got != int64(len(r.ComboErrors)) {
		t.Errorf("queue.combos.failed = %d, want %d", got, len(r.ComboErrors))
	}
	if got := snap.Counters["queue.bytes.simulated"]; got != int64(r.TotalBytes) {
		t.Errorf("queue.bytes.simulated = %d, want survivor total %d", got, int64(r.TotalBytes))
	}
}

// TestMinCapacityConvergesOnAnalyticCrossing is the property test for
// the bisection: for randomized exponentially-decaying loss curves the
// analytic crossing point is known, so the search result must land
// within the bisection tolerance above it, with at most 50 probes per
// search recorded on the scope.
func TestMinCapacityConvergesOnAnalyticCrossing(t *testing.T) {
	rng := rand.New(rand.NewPCG(0x0b5, 0xcab))
	ctx, reg := scopedCtx(t)
	const trials = 25
	for trial := 0; trial < trials; trial++ {
		// loss(c) = exp(-c/scale) is strictly decreasing; the target Pl is
		// crossed exactly at c* = -scale·ln(Pl).
		scale := 1e5 * (1 + 9*rng.Float64())
		target := math.Pow(10, -1-4*rng.Float64()) // Pl ∈ [1e-5, 1e-1]
		cross := -scale * math.Log(target)
		lo := cross * (0.1 + 0.5*rng.Float64())
		hi := cross * (1.5 + 3*rng.Float64())
		loss := func(c float64) (float64, error) { return math.Exp(-c / scale), nil }

		got, err := MinCapacityCtx(ctx, loss, lo, hi, LossTarget{Pl: target})
		if err != nil {
			t.Fatalf("trial %d (scale=%g target=%g): %v", trial, scale, target, err)
		}
		if got < cross {
			t.Errorf("trial %d: capacity %v below the analytic crossing %v — target not met", trial, got, cross)
		}
		// The loop stops once hi-lo ≤ 1e-4·hi, so the returned upper
		// endpoint overshoots the crossing by at most that bracket width.
		if tol := 1e-4 * hi; got-cross > tol {
			t.Errorf("trial %d: capacity %v overshoots crossing %v by %v > tolerance %v",
				trial, got, cross, got-cross, tol)
		}
	}
	snap := reg.Snapshot()
	if got := snap.Counters["queue.capacity.searches"]; got != trials {
		t.Errorf("queue.capacity.searches = %d, want %d", got, trials)
	}
	probes := snap.Counters["queue.capacity.probes"]
	if probes <= 0 || probes > 50*trials {
		t.Errorf("queue.capacity.probes = %d, want in (0, %d] (≤ 50 per search)", probes, 50*trials)
	}
	rw := snap.Histograms["queue.capacity.bracket.relwidth"]
	if rw.Count != trials {
		t.Errorf("bracket.relwidth observations = %d, want %d", rw.Count, trials)
	}
	if rw.Max > 1e-4 {
		t.Errorf("worst relative bracket width %g exceeds the 1e-4 stop criterion", rw.Max)
	}
}

// TestMinCapacityProbeBudget pins the probe bound itself: a pathological
// bracket that cannot tighten to the relative tolerance must still stop
// at 50 probes rather than loop.
func TestMinCapacityProbeBudget(t *testing.T) {
	ctx, reg := scopedCtx(t)
	// The crossing sits at c ≈ 1, the bottom of an enormous bracket: hi
	// converges toward 1 but 50 halvings of a 1e18-wide bracket still
	// leave it ~900 wide — far above the 1e-4·hi relative tolerance — so
	// the iteration cap is what stops the search.
	loss := func(c float64) (float64, error) { return math.Exp(-c), nil }
	if _, err := MinCapacityCtx(ctx, loss, 0.5, 1e18, LossTarget{Pl: math.Exp(-1)}); err != nil {
		t.Fatal(err)
	}
	if got := reg.Snapshot().Counters["queue.capacity.probes"]; got != 50 {
		t.Errorf("probes = %d, want exactly the 50-iteration budget", got)
	}
}

// TestKneeFindsTwoSlopeJoint is the property test for Knee: on synthetic
// curves that are exactly two power laws glued at a known grid index,
// the maximum log-log curvature is at the joint.
func TestKneeFindsTwoSlopeJoint(t *testing.T) {
	rng := rand.New(rand.NewPCG(0x7e5, 0x1))
	for trial := 0; trial < 20; trial++ {
		n := 7 + rng.IntN(8)       // 7..14 points
		joint := 2 + rng.IntN(n-4) // interior, with a flank on each side
		// Distinct negative slopes: steep before the knee, shallow after —
		// the shape of the paper's Fig. 14 curves on log-log axes.
		s1 := -1.5 - rng.Float64()
		s2 := -0.1 - 0.3*rng.Float64()
		points := make([]QCPoint, n)
		for i := range points {
			x := float64(i - joint) // log T_max, zero at the joint
			var y float64           // log per-source capacity
			if i <= joint {
				y = s1 * x
			} else {
				y = s2 * x
			}
			points[i] = QCPoint{TmaxSec: math.Exp(x), PerSourceBps: math.Exp(y + 10)}
		}
		knee, err := Knee(points)
		if err != nil {
			t.Fatal(err)
		}
		if knee != points[joint] {
			t.Errorf("trial %d (n=%d joint=%d s1=%.2f s2=%.2f): knee at T_max=%g, want %g",
				trial, n, joint, s1, s2, knee.TmaxSec, points[joint].TmaxSec)
		}
	}
	if _, err := Knee([]QCPoint{{1, 1}, {2, 2}}); err == nil {
		t.Error("knee on 2 points should fail")
	}
}
