// Package fft implements a radix-2 decimation-in-time fast Fourier
// transform over complex128 together with the real-input helpers used
// throughout the repository: the periodogram of a time series (Fig. 8 of the
// paper and the Whittle estimator's input) and circular autocorrelation
// (the O(n log n) path for Fig. 7).
//
// Inputs whose length is not a power of two are handled by Bluestein's
// chirp-z algorithm so that exact-length transforms of arbitrary series
// (171,000 frames in the paper) are available without padding artifacts.
package fft

import (
	"fmt"
	"math"
	"math/cmplx"
)

// Forward computes the in-order forward DFT of x and returns a new slice.
// Any length is accepted: powers of two take the radix-2 path, everything
// else takes Bluestein.
func Forward(x []complex128) []complex128 {
	out := make([]complex128, len(x))
	copy(out, x)
	transform(out, false)
	return out
}

// Inverse computes the inverse DFT (including the 1/n normalization).
func Inverse(x []complex128) []complex128 {
	out := make([]complex128, len(x))
	copy(out, x)
	transform(out, true)
	return out
}

// transform dispatches on length and direction, operating in place.
func transform(x []complex128, inverse bool) {
	n := len(x)
	if n <= 1 {
		return
	}
	if n&(n-1) == 0 {
		radix2(x, inverse)
	} else {
		bluestein(x, inverse)
	}
	if inverse {
		inv := complex(1/float64(n), 0)
		for i := range x {
			x[i] *= inv
		}
	}
}

// radix2 is the classic iterative Cooley–Tukey FFT for power-of-two n.
// The inverse flag flips the twiddle sign; normalization is the caller's.
func radix2(x []complex128, inverse bool) {
	n := len(x)
	// Bit-reversal permutation.
	for i, j := 1, 0; i < n; i++ {
		bit := n >> 1
		for ; j&bit != 0; bit >>= 1 {
			j ^= bit
		}
		j ^= bit
		if i < j {
			x[i], x[j] = x[j], x[i]
		}
	}
	sign := -1.0
	if inverse {
		sign = 1.0
	}
	for length := 2; length <= n; length <<= 1 {
		ang := sign * 2 * math.Pi / float64(length)
		wl := cmplx.Exp(complex(0, ang))
		for start := 0; start < n; start += length {
			w := complex(1, 0)
			half := length >> 1
			for k := 0; k < half; k++ {
				u := x[start+k]
				v := x[start+k+half] * w
				x[start+k] = u + v
				x[start+k+half] = u - v
				w *= wl
			}
		}
	}
}

// bluestein computes an arbitrary-length DFT as a convolution, which is in
// turn evaluated with power-of-two FFTs.
func bluestein(x []complex128, inverse bool) {
	n := len(x)
	sign := -1.0
	if inverse {
		sign = 1.0
	}
	// Chirp factors w[k] = exp(sign * iπ k² / n). k² mod 2n avoids overflow
	// and precision loss for large k.
	w := make([]complex128, n)
	for k := 0; k < n; k++ {
		kk := int64(k) * int64(k) % int64(2*n)
		w[k] = cmplx.Exp(complex(0, sign*math.Pi*float64(kk)/float64(n)))
	}

	m := 1
	for m < 2*n-1 {
		m <<= 1
	}
	a := make([]complex128, m)
	b := make([]complex128, m)
	for k := 0; k < n; k++ {
		a[k] = x[k] * w[k]
		b[k] = cmplx.Conj(w[k])
	}
	for k := 1; k < n; k++ {
		b[m-k] = cmplx.Conj(w[k])
	}
	radix2(a, false)
	radix2(b, false)
	for i := range a {
		a[i] *= b[i]
	}
	radix2(a, true)
	invm := complex(1/float64(m), 0)
	for k := 0; k < n; k++ {
		x[k] = a[k] * invm * w[k]
	}
}

// ForwardReal computes the DFT of a real-valued series, returning the full
// complex spectrum of length len(x).
func ForwardReal(x []float64) []complex128 {
	c := make([]complex128, len(x))
	for i, v := range x {
		c[i] = complex(v, 0)
	}
	transform(c, false)
	return c
}

// Periodogram returns the ordinates I(λ_j) of the periodogram of x at the
// Fourier frequencies λ_j = 2πj/n for j = 1 .. ⌊(n-1)/2⌋, with the
// conventional normalization
//
//	I(λ_j) = |Σ_t x_t e^{-i t λ_j}|² / (2π n).
//
// The mean of x is removed first (the j = 0 ordinate is excluded), matching
// the definition used by the Whittle estimator and Fig. 8.
func Periodogram(x []float64) (freqs, ords []float64) {
	n := len(x)
	if n < 2 {
		return nil, nil
	}
	mean := 0.0
	for _, v := range x {
		mean += v
	}
	mean /= float64(n)
	c := make([]complex128, n)
	for i, v := range x {
		c[i] = complex(v-mean, 0)
	}
	transform(c, false)

	half := (n - 1) / 2
	freqs = make([]float64, half)
	ords = make([]float64, half)
	norm := 1 / (2 * math.Pi * float64(n))
	for j := 1; j <= half; j++ {
		freqs[j-1] = 2 * math.Pi * float64(j) / float64(n)
		re, im := real(c[j]), imag(c[j])
		ords[j-1] = (re*re + im*im) * norm
	}
	return freqs, ords
}

// Autocorrelation returns the biased sample autocorrelation r(0..maxLag) of
// x via FFT (zero-padded linear correlation), so r[0] == 1. The biased
// estimator (divide by n) is the one whose erratic large-lag behaviour the
// paper discusses under Fig. 7.
func Autocorrelation(x []float64, maxLag int) ([]float64, error) {
	n := len(x)
	if n == 0 {
		return nil, fmt.Errorf("fft: autocorrelation of empty series")
	}
	if maxLag < 0 || maxLag >= n {
		return nil, fmt.Errorf("fft: maxLag %d out of range for n=%d", maxLag, n)
	}
	mean := 0.0
	for _, v := range x {
		mean += v
	}
	mean /= float64(n)

	m := 1
	for m < 2*n {
		m <<= 1
	}
	c := make([]complex128, m)
	for i, v := range x {
		c[i] = complex(v-mean, 0)
	}
	transform(c, false)
	for i := range c {
		re, im := real(c[i]), imag(c[i])
		c[i] = complex(re*re+im*im, 0)
	}
	transform(c, true)

	r := make([]float64, maxLag+1)
	c0 := real(c[0])
	//vbrlint:ignore floateq exact-zero guard: only a literally constant series has zero energy c0 (stats would be an import cycle)
	if c0 == 0 {
		// Constant series: define r(0)=1, r(k)=0 to keep callers total.
		r[0] = 1
		return r, nil
	}
	for k := 0; k <= maxLag; k++ {
		r[k] = real(c[k]) / c0
	}
	return r, nil
}
