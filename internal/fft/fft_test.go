package fft

import (
	"math"
	"math/cmplx"
	"math/rand/v2"
	"testing"
	"testing/quick"
)

// naiveDFT is the O(n²) reference implementation.
func naiveDFT(x []complex128, inverse bool) []complex128 {
	n := len(x)
	out := make([]complex128, n)
	sign := -1.0
	if inverse {
		sign = 1.0
	}
	for k := 0; k < n; k++ {
		var sum complex128
		for t := 0; t < n; t++ {
			ang := sign * 2 * math.Pi * float64(k) * float64(t) / float64(n)
			sum += x[t] * cmplx.Exp(complex(0, ang))
		}
		if inverse {
			sum /= complex(float64(n), 0)
		}
		out[k] = sum
	}
	return out
}

func randComplex(n int, rng *rand.Rand) []complex128 {
	x := make([]complex128, n)
	for i := range x {
		x[i] = complex(rng.NormFloat64(), rng.NormFloat64())
	}
	return x
}

func maxErr(a, b []complex128) float64 {
	m := 0.0
	for i := range a {
		if e := cmplx.Abs(a[i] - b[i]); e > m {
			m = e
		}
	}
	return m
}

func TestForwardMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewPCG(1, 2))
	for _, n := range []int{1, 2, 3, 4, 5, 7, 8, 12, 16, 17, 31, 32, 33, 64, 100, 128, 171} {
		x := randComplex(n, rng)
		got := Forward(x)
		want := naiveDFT(x, false)
		if e := maxErr(got, want); e > 1e-9*float64(n) {
			t.Errorf("n=%d: max error %v", n, e)
		}
	}
}

func TestInverseMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewPCG(3, 4))
	for _, n := range []int{2, 3, 8, 15, 16, 27, 64, 100} {
		x := randComplex(n, rng)
		got := Inverse(x)
		want := naiveDFT(x, true)
		if e := maxErr(got, want); e > 1e-9*float64(n) {
			t.Errorf("n=%d: max error %v", n, e)
		}
	}
}

func TestForwardInverseRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewPCG(5, 6))
	for _, n := range []int{1, 2, 7, 16, 100, 171, 256, 1000} {
		x := randComplex(n, rng)
		y := Inverse(Forward(x))
		if e := maxErr(x, y); e > 1e-9*float64(n) {
			t.Errorf("n=%d: round trip error %v", n, e)
		}
	}
}

func TestParseval(t *testing.T) {
	rng := rand.New(rand.NewPCG(7, 8))
	for _, n := range []int{16, 100, 128, 500} {
		x := randComplex(n, rng)
		y := Forward(x)
		var ex, ey float64
		for i := range x {
			ex += real(x[i])*real(x[i]) + imag(x[i])*imag(x[i])
			ey += real(y[i])*real(y[i]) + imag(y[i])*imag(y[i])
		}
		ey /= float64(n)
		if math.Abs(ex-ey) > 1e-8*ex {
			t.Errorf("n=%d: Parseval violated: %v vs %v", n, ex, ey)
		}
	}
}

func TestForwardLinearityProperty(t *testing.T) {
	rng := rand.New(rand.NewPCG(9, 10))
	f := func(seed uint64) bool {
		r := rand.New(rand.NewPCG(seed, 11))
		n := 3 + int(seed%61)
		a := randComplex(n, r)
		b := randComplex(n, r)
		sum := make([]complex128, n)
		for i := range sum {
			sum[i] = a[i] + b[i]
		}
		fa, fb, fs := Forward(a), Forward(b), Forward(sum)
		for i := range fs {
			if cmplx.Abs(fs[i]-(fa[i]+fb[i])) > 1e-8*float64(n) {
				return false
			}
		}
		return true
	}
	_ = rng
	cfg := &quick.Config{MaxCount: 50}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestForwardRealMatchesComplex(t *testing.T) {
	rng := rand.New(rand.NewPCG(12, 13))
	x := make([]float64, 100)
	c := make([]complex128, 100)
	for i := range x {
		x[i] = rng.NormFloat64()
		c[i] = complex(x[i], 0)
	}
	a := ForwardReal(x)
	b := Forward(c)
	if e := maxErr(a, b); e > 1e-10 {
		t.Errorf("ForwardReal differs from Forward: %v", e)
	}
}

func TestPeriodogramSinusoid(t *testing.T) {
	// A pure sinusoid at Fourier frequency j0 concentrates all power there.
	const n = 1024
	const j0 = 37
	x := make([]float64, n)
	for t := range x {
		x[t] = math.Sin(2 * math.Pi * float64(j0) * float64(t) / n)
	}
	freqs, ords := Periodogram(x)
	if len(freqs) != (n-1)/2 {
		t.Fatalf("got %d ordinates, want %d", len(freqs), (n-1)/2)
	}
	best := 0
	for j := range ords {
		if ords[j] > ords[best] {
			best = j
		}
	}
	if best != j0-1 {
		t.Errorf("peak at index %d (freq %v), want %d", best, freqs[best], j0-1)
	}
	// All other ordinates should be negligible.
	for j, v := range ords {
		if j != best && v > 1e-10*ords[best] {
			t.Errorf("leakage at j=%d: %v", j, v)
		}
	}
}

func TestPeriodogramTotalPower(t *testing.T) {
	// Sum of periodogram ordinates ≈ variance·n/(4π·(n/2))·... use the exact
	// identity Σ_{j=1}^{n-1} |X_j|²/n = Σ (x_t - mean)² and check through it.
	rng := rand.New(rand.NewPCG(20, 21))
	n := 512
	x := make([]float64, n)
	var mean float64
	for i := range x {
		x[i] = rng.NormFloat64()
		mean += x[i]
	}
	mean /= float64(n)
	var ss float64
	for _, v := range x {
		ss += (v - mean) * (v - mean)
	}
	_, ords := Periodogram(x)
	var sum float64
	for _, v := range ords {
		sum += v
	}
	// For even n the Nyquist ordinate j=n/2 is excluded by our convention;
	// account for it: total = Σ_{j=1}^{n-1} |F_j|² / (2πn) where F is the
	// DFT of the demeaned series; by conjugate symmetry = 2·sum + Nyquist.
	d := make([]float64, n)
	for i, v := range x {
		d[i] = v - mean
	}
	f := ForwardReal(d)
	nyq := 0.0
	if n%2 == 0 {
		re, im := real(f[n/2]), imag(f[n/2])
		nyq = (re*re + im*im) / (2 * math.Pi * float64(n))
	}
	total := 2*sum + nyq
	want := ss / (2 * math.Pi)
	if math.Abs(total-want) > 1e-8*want {
		t.Errorf("total periodogram power %v, want %v", total, want)
	}
}

func TestAutocorrelationMatchesDirect(t *testing.T) {
	rng := rand.New(rand.NewPCG(30, 31))
	n := 300
	x := make([]float64, n)
	for i := range x {
		x[i] = rng.NormFloat64() + 0.8*math.Sin(float64(i)/7)
	}
	const maxLag = 50
	got, err := Autocorrelation(x, maxLag)
	if err != nil {
		t.Fatal(err)
	}
	// Direct biased estimator.
	mean := 0.0
	for _, v := range x {
		mean += v
	}
	mean /= float64(n)
	var c0 float64
	for _, v := range x {
		c0 += (v - mean) * (v - mean)
	}
	for k := 0; k <= maxLag; k++ {
		var ck float64
		for t := 0; t+k < n; t++ {
			ck += (x[t] - mean) * (x[t+k] - mean)
		}
		want := ck / c0
		if math.Abs(got[k]-want) > 1e-9 {
			t.Errorf("lag %d: got %v want %v", k, got[k], want)
		}
	}
	if math.Abs(got[0]-1) > 1e-12 {
		t.Errorf("r(0) = %v, want 1", got[0])
	}
}

func TestAutocorrelationErrors(t *testing.T) {
	if _, err := Autocorrelation(nil, 0); err == nil {
		t.Error("expected error for empty series")
	}
	if _, err := Autocorrelation([]float64{1, 2, 3}, 3); err == nil {
		t.Error("expected error for maxLag >= n")
	}
	if _, err := Autocorrelation([]float64{1, 2, 3}, -1); err == nil {
		t.Error("expected error for negative maxLag")
	}
}

func TestAutocorrelationConstantSeries(t *testing.T) {
	x := []float64{5, 5, 5, 5, 5}
	r, err := Autocorrelation(x, 3)
	if err != nil {
		t.Fatal(err)
	}
	if r[0] != 1 {
		t.Errorf("r(0) = %v, want 1", r[0])
	}
	for k := 1; k <= 3; k++ {
		if r[k] != 0 {
			t.Errorf("r(%d) = %v, want 0", k, r[k])
		}
	}
}

func BenchmarkForwardPow2(b *testing.B) {
	rng := rand.New(rand.NewPCG(1, 1))
	x := randComplex(1<<14, rng)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Forward(x)
	}
}

func BenchmarkForwardBluestein(b *testing.B) {
	rng := rand.New(rand.NewPCG(1, 1))
	x := randComplex(17100, rng)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Forward(x)
	}
}
