package stats

import (
	"math"
	"math/rand/v2"
	"testing"
	"testing/quick"
)

func approx(t *testing.T, name string, got, want, tol float64) {
	t.Helper()
	diff := math.Abs(got - want)
	if diff > tol && diff > tol*math.Abs(want) {
		t.Errorf("%s = %v, want %v (tol %v)", name, got, want, tol)
	}
}

func TestSummarize(t *testing.T) {
	s, err := Summarize([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if err != nil {
		t.Fatal(err)
	}
	approx(t, "mean", s.Mean, 5, 1e-12)
	approx(t, "std", s.Std, 2, 1e-12)
	approx(t, "cov", s.CoV, 0.4, 1e-12)
	if s.Min != 2 || s.Max != 9 {
		t.Errorf("min/max = %v/%v", s.Min, s.Max)
	}
	approx(t, "peak/mean", s.PeakMean, 1.8, 1e-12)
	if s.N != 8 {
		t.Errorf("N = %d", s.N)
	}
	if _, err := Summarize(nil); err == nil {
		t.Error("empty series should fail")
	}
}

func TestMeanVarianceEdge(t *testing.T) {
	if Mean(nil) != 0 || Variance(nil) != 0 {
		t.Error("empty slice conventions violated")
	}
	approx(t, "var const", Variance([]float64{3, 3, 3}), 0, 1e-15)
}

func TestMovingAverageConstant(t *testing.T) {
	xs := make([]float64, 100)
	for i := range xs {
		xs[i] = 7
	}
	ma, err := MovingAverage(xs, 11)
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range ma {
		if math.Abs(v-7) > 1e-12 {
			t.Fatalf("ma[%d] = %v", i, v)
		}
	}
}

func TestMovingAverageSmooths(t *testing.T) {
	// A long-window average of white noise has much smaller variance.
	rng := rand.New(rand.NewPCG(1, 2))
	xs := make([]float64, 10000)
	for i := range xs {
		xs[i] = rng.NormFloat64()
	}
	ma, err := MovingAverage(xs, 101)
	if err != nil {
		t.Fatal(err)
	}
	if len(ma) != len(xs) {
		t.Fatalf("length changed: %d", len(ma))
	}
	if v := Variance(ma[200 : len(ma)-200]); v > 0.05 {
		t.Errorf("moving average variance %v not ≈ 1/101", v)
	}
}

func TestMovingAverageWindowOne(t *testing.T) {
	xs := []float64{1, 2, 3}
	ma, err := MovingAverage(xs, 1)
	if err != nil {
		t.Fatal(err)
	}
	for i := range xs {
		if ma[i] != xs[i] {
			t.Fatalf("window 1 must be identity")
		}
	}
	if _, err := MovingAverage(xs, 0); err == nil {
		t.Error("window 0 should fail")
	}
	if _, err := MovingAverage(nil, 5); err == nil {
		t.Error("empty series should fail")
	}
}

func TestMovingAveragePreservesMeanProperty(t *testing.T) {
	f := func(seed uint64) bool {
		rng := rand.New(rand.NewPCG(seed, 99))
		n := 50 + int(seed%200)
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = rng.Float64() * 100
		}
		ma, err := MovingAverage(xs, 7)
		if err != nil {
			return false
		}
		// Every output value lies within [min, max] of the input.
		lo, hi := xs[0], xs[0]
		for _, v := range xs {
			lo = math.Min(lo, v)
			hi = math.Max(hi, v)
		}
		for _, v := range ma {
			if v < lo-1e-9 || v > hi+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestAggregate(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5, 6, 7}
	agg, err := Aggregate(xs, 2)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{1.5, 3.5, 5.5}
	if len(agg) != 3 {
		t.Fatalf("len = %d", len(agg))
	}
	for i := range want {
		approx(t, "agg", agg[i], want[i], 1e-12)
	}
	if _, err := Aggregate(xs, 0); err == nil {
		t.Error("block 0 should fail")
	}
	if _, err := Aggregate(xs, 8); err == nil {
		t.Error("block > n should fail")
	}
}

func TestAggregatePreservesMean(t *testing.T) {
	rng := rand.New(rand.NewPCG(5, 6))
	xs := make([]float64, 1000)
	for i := range xs {
		xs[i] = rng.Float64()
	}
	agg, _ := Aggregate(xs, 10)
	approx(t, "aggregate mean", Mean(agg), Mean(xs), 1e-9)
}

func TestAggregateIIDVarianceScaling(t *testing.T) {
	// For i.i.d. data Var(X^(m)) ≈ Var(X)/m — the SRD baseline the
	// variance-time plot compares against (slope -1).
	rng := rand.New(rand.NewPCG(7, 8))
	xs := make([]float64, 200000)
	for i := range xs {
		xs[i] = rng.NormFloat64()
	}
	v1 := Variance(xs)
	agg, _ := Aggregate(xs, 100)
	v100 := Variance(agg)
	approx(t, "iid variance scaling", v100, v1/100, 0.15*v1/100)
}

func TestAutocorrelationImplementationsAgree(t *testing.T) {
	rng := rand.New(rand.NewPCG(9, 10))
	xs := make([]float64, 500)
	ar := 0.0
	for i := range xs {
		ar = 0.7*ar + rng.NormFloat64()
		xs[i] = ar
	}
	a, err := Autocorrelation(xs, 60)
	if err != nil {
		t.Fatal(err)
	}
	b, err := AutocorrelationDirect(xs, 60)
	if err != nil {
		t.Fatal(err)
	}
	for k := range a {
		if math.Abs(a[k]-b[k]) > 1e-9 {
			t.Fatalf("lag %d: fft %v direct %v", k, a[k], b[k])
		}
	}
}

func TestAutocorrelationAR1Decay(t *testing.T) {
	// For AR(1) with coefficient φ, r(k) ≈ φ^k.
	rng := rand.New(rand.NewPCG(11, 12))
	const phi = 0.8
	xs := make([]float64, 300000)
	v := 0.0
	for i := range xs {
		v = phi*v + rng.NormFloat64()
		xs[i] = v
	}
	r, err := Autocorrelation(xs, 10)
	if err != nil {
		t.Fatal(err)
	}
	for k := 1; k <= 10; k++ {
		approx(t, "ar1 acf", r[k], math.Pow(phi, float64(k)), 0.05)
	}
}

func TestAutocorrelationDirectErrors(t *testing.T) {
	if _, err := AutocorrelationDirect(nil, 0); err == nil {
		t.Error("empty should fail")
	}
	if _, err := AutocorrelationDirect([]float64{1, 2}, 2); err == nil {
		t.Error("maxLag >= n should fail")
	}
	r, err := AutocorrelationDirect([]float64{4, 4, 4, 4}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if r[0] != 1 || r[1] != 0 {
		t.Error("constant series convention violated")
	}
}

func TestHistogramBasics(t *testing.T) {
	xs := []float64{0.5, 1.5, 1.6, 2.5, 3.5, -1, 10}
	h, err := NewHistogram(xs, 0, 4, 4)
	if err != nil {
		t.Fatal(err)
	}
	if h.Total != 7 {
		t.Fatalf("total %d", h.Total)
	}
	// -1 clamps into bin 0; 10 clamps into bin 3.
	wantCounts := []int{2, 2, 1, 2}
	for i, w := range wantCounts {
		if h.Counts[i] != w {
			t.Errorf("bin %d: %d, want %d", i, h.Counts[i], w)
		}
	}
	// Density integrates to 1.
	var integral float64
	for _, d := range h.Density {
		integral += d * h.Width
	}
	approx(t, "density integral", integral, 1, 1e-12)
	approx(t, "bin center", h.BinCenter(0), 0.5, 1e-12)

	if _, err := NewHistogram(xs, 0, 4, 0); err == nil {
		t.Error("0 bins should fail")
	}
	if _, err := NewHistogram(xs, 4, 0, 4); err == nil {
		t.Error("hi <= lo should fail")
	}
	if _, err := NewHistogram(nil, 0, 1, 2); err == nil {
		t.Error("empty data should fail")
	}
}

func TestECDF(t *testing.T) {
	e, err := NewECDF([]float64{3, 1, 2, 2, 5})
	if err != nil {
		t.Fatal(err)
	}
	approx(t, "cdf(0)", e.CDF(0), 0, 1e-15)
	approx(t, "cdf(2)", e.CDF(2), 0.6, 1e-15)
	approx(t, "cdf(5)", e.CDF(5), 1, 1e-15)
	approx(t, "ccdf(2)", e.CCDF(2), 0.4, 1e-15)
	approx(t, "q(0)", e.Quantile(0), 1, 1e-15)
	approx(t, "q(1)", e.Quantile(1), 5, 1e-15)
	approx(t, "q(0.5)", e.Quantile(0.5), 2, 1e-15)
	if _, err := NewECDF(nil); err == nil {
		t.Error("empty should fail")
	}
}

func TestECDFTailPoints(t *testing.T) {
	e, _ := NewECDF([]float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10})
	xs, ccdf := e.TailPoints(3)
	if len(xs) != 3 {
		t.Fatalf("len %d", len(xs))
	}
	if xs[0] != 10 || xs[1] != 9 || xs[2] != 8 {
		t.Errorf("tail xs = %v", xs)
	}
	approx(t, "ccdf[0]", ccdf[0], 0.1, 1e-15)
	approx(t, "ccdf[2]", ccdf[2], 0.3, 1e-15)
	// Request more than n clamps.
	xs, _ = e.TailPoints(50)
	if len(xs) != 10 {
		t.Errorf("clamped len %d", len(xs))
	}
}

func TestMeanConvergenceCIs(t *testing.T) {
	rng := rand.New(rand.NewPCG(13, 14))
	xs := make([]float64, 10000)
	for i := range xs {
		xs[i] = rng.NormFloat64()
	}
	cis, err := MeanConvergence(xs, []int{100, 1000, 10000}, 0.8)
	if err != nil {
		t.Fatal(err)
	}
	if len(cis) != 3 {
		t.Fatalf("len %d", len(cis))
	}
	for _, ci := range cis {
		// LRD CI must always be wider than the i.i.d. CI for H > 0.5.
		if ci.HalfLRD <= ci.HalfIID {
			t.Errorf("n=%d: LRD CI %v not wider than iid %v", ci.N, ci.HalfLRD, ci.HalfIID)
		}
	}
	// The iid half-width shrinks as 1/sqrt(n): ratio of n=100 to n=10000 ≈ 10.
	ratio := cis[0].HalfIID / cis[2].HalfIID
	approx(t, "iid CI shrink", ratio, 10, 1)
	// The LRD half-width shrinks as n^{H-1} = n^{-0.2}: ratio ≈ 100^0.2 ≈ 2.5.
	ratioLRD := cis[0].HalfLRD / cis[2].HalfLRD
	approx(t, "lrd CI shrink", ratioLRD, math.Pow(100, 0.2), 0.5)

	if _, err := MeanConvergence(xs, []int{1}, 0.8); err == nil {
		t.Error("prefix < 2 should fail")
	}
	if _, err := MeanConvergence(xs, []int{100}, 1.5); err == nil {
		t.Error("H out of range should fail")
	}
	if _, err := MeanConvergence(nil, nil, 0.8); err == nil {
		t.Error("empty series should fail")
	}
}

func TestLogSeries(t *testing.T) {
	out, err := LogSeries([]float64{1, math.E, math.E * math.E})
	if err != nil {
		t.Fatal(err)
	}
	approx(t, "log[1]", out[1], 1, 1e-12)
	if _, err := LogSeries([]float64{1, 0, 2}); err == nil {
		t.Error("nonpositive data should fail")
	}
}

func TestPeriodogramDelegation(t *testing.T) {
	xs := make([]float64, 256)
	for i := range xs {
		xs[i] = math.Sin(2 * math.Pi * 10 * float64(i) / 256)
	}
	freqs, ords := Periodogram(xs)
	if len(freqs) == 0 || len(freqs) != len(ords) {
		t.Fatal("periodogram shape wrong")
	}
	best := 0
	for i := range ords {
		if ords[i] > ords[best] {
			best = i
		}
	}
	approx(t, "peak freq", freqs[best], 2*math.Pi*10/256, 1e-9)
}
