package stats

import "math"

// AlmostEqual reports whether a and b agree to within eps, using a
// hybrid absolute/relative criterion: true when |a-b| ≤ eps or
// |a-b| ≤ eps·max(|a|, |b|). With eps = 0 it demands bitwise value
// equality, so exact guards (sentinel zeros, resume invariants) can be
// expressed through the same audited entry point instead of a raw
// float comparison.
//
// Edge cases follow IEEE 754 semantics rather than the tolerance: a
// NaN on either side is never equal to anything (including itself),
// and infinities are equal only to the same-signed infinity —
// tolerances are meaningless at ±Inf, and Inf-Inf would poison the
// difference with NaN. Subnormals fall through to the absolute branch,
// where any eps > 0 exceeds their magnitude.
func AlmostEqual(a, b, eps float64) bool {
	if math.IsNaN(a) || math.IsNaN(b) {
		return false
	}
	if math.IsInf(a, 0) || math.IsInf(b, 0) {
		//vbrlint:ignore floateq infinities carry no tolerance; same-signed Inf is the only match
		return a == b
	}
	//vbrlint:ignore floateq fast path and the documented eps=0 exact-equality contract
	if a == b {
		return true
	}
	if eps <= 0 {
		return false
	}
	diff := math.Abs(a - b)
	return diff <= eps || diff <= eps*math.Max(math.Abs(a), math.Abs(b))
}
